// Extension: tiled Cholesky (POTRF) at paper scale -- the solver workload
// class (MUMPS and friends) that motivates XKBlas's composition design.
// POTRF is a long chain of TRSM/SYRK/GEMM graphs with a low-parallelism
// critical path, so it stresses exactly what the heuristics improve: the
// latency of moving panel results between GPUs.
#include <cstdio>

#include "baselines/common.hpp"
#include "blas/tiled_factor.hpp"
#include "util/table.hpp"

using namespace xkb;
using namespace xkb::baselines;

namespace {

double run_potrf(const ModelSpec& spec, std::size_t n, std::size_t tile) {
  rt::PerfModel perf;
  rt::Platform plat(topo::Topology::dgx1(), perf, {});
  rt::RuntimeOptions ropt;
  ropt.heuristics = spec.heur;
  ropt.task_overhead = spec.task_overhead;
  ropt.prepare_window = spec.prepare_window;
  std::unique_ptr<rt::Scheduler> sched;
  if (spec.dmdas)
    sched = std::make_unique<rt::DmdasScheduler>();
  else
    sched = std::make_unique<rt::OwnerComputesScheduler>(spec.stealing);
  rt::Runtime runtime(plat, std::move(sched), ropt);

  SymbolicMatrix<double> A(n, n, 0);
  blas::EmitOptions emit;
  emit.tile = tile;
  emit.attach_functional = false;
  auto [P, Q] = blas::default_grid(plat.num_gpus());
  emit.home = [P = P, Q = Q](std::size_t i, std::size_t j) {
    return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
           static_cast<int>(j % static_cast<std::size_t>(Q));
  };
  MatrixView<double> Av = A.view();
  blas::tiled_potrf<double>(runtime, Uplo::Lower, Av, emit);
  // Results stay on device for the (hypothetical) solve that follows; bring
  // back the factor like a standalone library call would.
  MatrixView<const double> Ac = A.cview();
  for (std::size_t i = 0; i < n; i += tile)
    for (std::size_t j = 0; j <= i; j += tile)
      runtime.coherent_async(blas::detail::tile_handle(
          runtime, Ac, i, j, std::min(tile, n - i), std::min(tile, n - j)));
  const double t = runtime.run() + spec.call_overhead;
  const double flops = static_cast<double>(n) * n * n / 3.0;
  return flops / t / 1e12;
}

ModelSpec xkblas_spec(rt::HeuristicConfig heur) {
  ModelSpec s;
  s.heur = heur;
  s.task_overhead = 3e-6;
  s.prepare_window = 16;
  s.call_overhead = 1e-3;
  return s;
}

}  // namespace

int main() {
  std::printf(
      "== Extension: tiled Cholesky (DPOTRF) on the simulated DGX-1 ==\n\n");

  ModelSpec cham;
  cham.dmdas = true;
  cham.heur = {rt::SourcePolicy::kFirstValid, false};
  cham.task_overhead = 20e-6;
  cham.call_overhead = 80e-3;

  Table t({"N", "XKBlas", "XKBlas no heuristics", "dmdas model"});
  for (std::size_t n : {8192ul, 16384ul, 24576ul, 32768ul, 49152ul}) {
    const std::size_t tile = n >= 32768 ? 2048 : 1024;
    t.add_row(
        {std::to_string(n),
         Table::num(run_potrf(xkblas_spec(rt::HeuristicConfig::xkblas()), n,
                              tile), 2),
         Table::num(
             run_potrf(xkblas_spec(rt::HeuristicConfig::no_heuristic_no_topo()),
                       n, tile), 2),
         Table::num(run_potrf(cham, n, tile), 2)});
  }
  std::printf("DPOTRF (TFlop/s, lower, data-on-host, factor returned)\n%s\n",
              t.to_text().c_str());
  std::printf(
      "The factorization's critical path (panel -> solves -> update) makes "
      "it overhead- and latency-sensitive rather than bandwidth-bound: the "
      "data-movement heuristics change little here, while the lightweight "
      "runtime (3 us/task vs the dmdas model's 20 us + 80 ms setup) "
      "dominates at small and medium sizes -- the property that makes "
      "XKBlas attractive to sparse solvers like MUMPS (paper Section V).\n");
  return 0;
}
