// Table II: maximum loss/gain of performance for the XKBlas variants with
// respect to the baseline XKBlas, over matrix dimensions >= 16384:
//   * data-on-device (2D block-cyclic pre-distribution)   -> gain
//   * no heuristic (optimistic D2D disabled)              -> loss
//   * no heuristic, no topo (both heuristics disabled)    -> loss
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Table II: max loss/gain vs baseline XKBlas (N >= 16384) ==\n\n");

  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  auto no_heur = make_xkblas(rt::HeuristicConfig::no_heuristic());
  auto no_topo = make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo());

  Table t({"Kernel", "data-on-device", "no heuristic",
           "no heuristic, no topo"});
  for (Blas3 routine : {Blas3::kGemm, Blas3::kSyr2k, Blas3::kTrsm}) {
    double best_gain = -1e9, worst_heur = 1e9, worst_topo = 1e9;
    for (std::size_t n : bench::paper_sizes()) {
      if (n < 16384) continue;
      BenchConfig cfg;
      cfg.routine = routine;
      cfg.n = n;
      const auto base = bench::best_over_tiles(*xkblas, cfg);
      BenchConfig dod = cfg;
      dod.data_on_device = true;
      const auto r_dod = bench::best_over_tiles(*xkblas, dod);
      const auto r_heur = bench::best_over_tiles(*no_heur, cfg);
      const auto r_topo = bench::best_over_tiles(*no_topo, cfg);
      best_gain =
          std::max(best_gain, 100.0 * (r_dod.tflops / base.tflops - 1.0));
      worst_heur =
          std::min(worst_heur, 100.0 * (r_heur.tflops / base.tflops - 1.0));
      worst_topo =
          std::min(worst_topo, 100.0 * (r_topo.tflops / base.tflops - 1.0));
    }
    t.add_row({std::string("D") + blas3_name(routine),
               "+" + Table::num(best_gain, 1) + "%",
               Table::num(worst_heur, 1) + "%",
               Table::num(worst_topo, 1) + "%"});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "Paper reference: DGEMM +111.7%% / -43.5%% / -43%%; DSYR2K +71.1%% / "
      "-19.4%% / -53.5%%; DTRSM +52.6%% / -29.6%% / -29.3%%.\n");
  return 0;
}
