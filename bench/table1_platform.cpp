// Table I: main characteristics of the (simulated) DGX-1 multi-GPU system.
#include <cstdio>

#include "runtime/platform.hpp"
#include "util/table.hpp"

using namespace xkb;

int main() {
  const topo::Topology t = topo::Topology::dgx1();
  const rt::PerfModel perf;
  std::printf("== Table I: main characteristics of the simulated DGX-1 ==\n\n");
  Table tab({"Property", "Value"});
  tab.add_row({"Name", "Gemini (simulated)"});
  tab.add_row({"CPU", "2x Xeon E5-2698 v4 2.2GHz (modeled: host worker + "
               "4 PCIe Gen3 x16 switches)"});
  tab.add_row({"GPU", std::to_string(t.num_gpus()) +
               "x NVIDIA Tesla V100-SXM2, 32GB (simulated)"});
  tab.add_row({"GPU FP64 peak", Table::num(perf.peak_flops_dp / 1e12, 1) +
               " TFlop/s per GPU, " +
               Table::num(t.num_gpus() * perf.peak_flops_dp / 1e12, 1) +
               " TFlop/s aggregate"});
  tab.add_row({"GPU-GPU interconnect", "NVLink-2 hybrid cube-mesh "
               "(96.4 / 48.4 GB/s) + PCIe (17.2 GB/s)"});
  tab.add_row({"CPU-GPU interconnect",
               Table::num(t.host_bandwidth_gbps(0), 1) +
               " GB/s effective per PCIe switch, 2 GPUs per switch"});
  tab.add_row({"DMA latency", Table::num(t.transfer_latency() * 1e6, 1) +
               " us per transfer"});
  std::printf("%s\n", tab.to_text().c_str());
  return 0;
}
