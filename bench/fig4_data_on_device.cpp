// Figure 4: performance with data-on-device (2D block-cyclic distribution
// over the 8 GPUs, (4,2) grid) on FP64 GEMM, SYR2K and TRSM, against the
// data-on-host runs of XKBlas, Chameleon Tile and cuBLAS-XT as references.
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 4: data-on-device vs data-on-host (FP64, 8 GPUs) ==\n\n");

  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  auto chameleon = make_chameleon(/*tile_layout=*/true);
  auto cublasxt = make_cublasxt();

  for (Blas3 routine : {Blas3::kGemm, Blas3::kSyr2k, Blas3::kTrsm}) {
    Table t({"N", "Chameleon Tile", "cuBLAS-XT", "XKBlas", "XKBlas DoD"});
    for (std::size_t n : bench::paper_sizes()) {
      BenchConfig cfg;
      cfg.routine = routine;
      cfg.n = n;
      BenchConfig dod = cfg;
      dod.data_on_device = true;
      t.add_row({std::to_string(n),
                 bench::tf(bench::best_over_tiles(*chameleon, cfg)),
                 bench::tf(bench::best_over_tiles(*cublasxt, cfg)),
                 bench::tf(bench::best_over_tiles(*xkblas, cfg)),
                 bench::tf(bench::best_over_tiles(*xkblas, dod))});
    }
    std::printf("%s (TFlop/s)\n%s\n", blas3_name(routine),
                t.to_text().c_str());
  }
  return 0;
}
