// Calibration probe: one-line summaries (TFlop/s, transfer counts, time
// breakdown) for every library model at a single (N, tile, routine) point.
// Used to tune the performance model against the paper's reference numbers;
// kept as a fast smoke check of the whole baseline stack.
//
//   probe_calibration [N] [tile] [gemm|syr2k|syrk|trsm|trmm|symm]
#include <cstdio>
#include "baselines/common.hpp"
using namespace xkb;
using namespace xkb::baselines;
int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  if (argc > 3) {
    std::string r = argv[3];
    if (r == "syr2k") cfg.routine = Blas3::kSyr2k;
    if (r == "syrk") cfg.routine = Blas3::kSyrk;
    if (r == "trsm") cfg.routine = Blas3::kTrsm;
    if (r == "trmm") cfg.routine = Blas3::kTrmm;
    if (r == "symm") cfg.routine = Blas3::kSymm;
  }
  cfg.n = argc > 1 ? atoi(argv[1]) : 32768;
  cfg.tile = argc > 2 ? atoi(argv[2]) : 2048;
  auto show = [&](const char* name, std::unique_ptr<LibraryModel> m) {
    BenchResult r = m->run(cfg);
    printf("%-28s %6.2f TF  t=%.3fs  h2d=%zu d2d=%zu d2h=%zu ow=%zu fw=%zu steals=%zu tasks=%zu  kern=%.2fs htod=%.2fs ptop=%.2fs dtoh=%.2fs\n",
           name, r.tflops, r.seconds, r.transfers.h2d, r.transfers.d2d,
           r.transfers.d2h, r.transfers.optimistic_waits,
           r.transfers.forced_waits, r.steals, r.tasks,
           r.breakdown.kernel, r.breakdown.htod, r.breakdown.ptop, r.breakdown.dtoh);
  };
  show("XKBlas", make_xkblas(rt::HeuristicConfig::xkblas()));
  show("XKBlas no heur", make_xkblas(rt::HeuristicConfig::no_heuristic()));
  show("XKBlas no heur no topo", make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo()));
  show("cuBLAS-XT", make_cublasxt());
  show("Chameleon Tile", make_chameleon(true));
  show("Slate", make_slate());
  show("cuBLAS-MG", make_cublasmg());
  show("DPLASMA", make_dplasma());
  return 0;
}
