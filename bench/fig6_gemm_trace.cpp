// Figure 6: detailed execution of GEMM FP64 (N = 32768) on the 8 GPUs --
// cumulative execution time per operation class (left plot of the paper)
// and the ratio normalized over each library's total (right plot).
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 6: GEMM FP64 N=32768 -- time per GPU operation class ==\n\n");

  std::vector<std::unique_ptr<LibraryModel>> models;
  models.push_back(make_blasx());
  models.push_back(make_chameleon(/*tile_layout=*/true));
  models.push_back(make_cublasmg());
  models.push_back(make_cublasxt());
  models.push_back(make_dplasma());
  models.push_back(make_xkblas(rt::HeuristicConfig::xkblas()));

  BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  cfg.n = 32768;
  cfg.tile = 2048;
  // The tables below are filled from the xkb::obs metrics registry, and
  // every value is cross-checked against the trace-derived breakdown: two
  // independent accounting paths over the same run must agree exactly.
  cfg.obs.enabled = true;

  bool drift = false;
  Table cum({"Library", "DtoH(s)", "HtoD(s)", "PtoP(s)", "Kernel(s)",
             "Total(s)"});
  Table norm({"Library", "DtoH(%)", "HtoD(%)", "PtoP(%)", "Kernel(%)",
              "Transfers(%)"});
  for (auto& m : models) {
    const BenchResult r = m->run(cfg);
    if (!r.supported || r.failed) {
      cum.add_row({m->name(), "-", "-", "-", "-", r.failed ? "FAIL" : "-"});
      continue;
    }
    const trace::Breakdown b =
        r.obs ? bench::registry_breakdown(r) : r.breakdown;
    if (r.obs && !bench::breakdown_agrees(m->name().c_str(), b, r.breakdown))
      drift = true;
    cum.add_row({m->name(), Table::num(b.dtoh, 2), Table::num(b.htod, 2),
                 Table::num(b.ptop, 2), Table::num(b.kernel, 2),
                 Table::num(b.total(), 2)});
    const double tot = b.total();
    norm.add_row({m->name(), Table::num(100 * b.dtoh / tot, 1),
                  Table::num(100 * b.htod / tot, 1),
                  Table::num(100 * b.ptop / tot, 1),
                  Table::num(100 * b.kernel / tot, 1),
                  Table::num(100 * b.transfers() / tot, 1)});
  }
  std::printf("Cumulative execution time (all 8 GPUs):\n%s\n",
              cum.to_text().c_str());
  std::printf("Normalized ratio over total execution:\n%s\n",
              norm.to_text().c_str());
  std::printf(
      "Paper reference: XKBlas spends ~25.4%% of GPU time in data "
      "transfers, Chameleon Tile ~41.2%%; the others more.\n");
  if (drift) {
    std::fprintf(stderr,
                 "metrics registry disagrees with the trace breakdown\n");
    return 1;
  }
  return 0;
}
