// Figure 9: Gantt chart of the TRSM + GEMM composition (N = 32768, block
// size 2048) on the 8 GPUs.  Chameleon shows a synchronisation gap between
// the two routine calls; XKBlas composes them without a barrier.
#include <cstdio>

#include "baselines/composition.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 9: Gantt chart of TRSM + GEMM composition (N=32768, block "
      "2048) ==\n\n");

  ModelSpec cham;
  cham.name = "Chameleon Tile";
  cham.dmdas = true;
  cham.heur = {rt::SourcePolicy::kFirstValid, false};
  cham.task_overhead = 20e-6;
  cham.call_overhead = 80e-3;

  ModelSpec xkblas;
  xkblas.name = "XKBlas";
  xkblas.heur = rt::HeuristicConfig::xkblas();
  xkblas.task_overhead = 3e-6;
  xkblas.prepare_window = 16;
  xkblas.call_overhead = 1e-3;

  const auto rc = run_trsm_gemm(cham, 32768, 2048,
                                /*sync_between_calls=*/true,
                                /*want_gantt=*/true, 110);
  std::printf("Chameleon Tile (%.2f TFlop/s) -- note the synchronisation "
              "gap between TRSM and GEMM:\n%s\n",
              rc.tflops, rc.gantt.c_str());

  const auto rx = run_trsm_gemm(xkblas, 32768, 2048,
                                /*sync_between_calls=*/false,
                                /*want_gantt=*/true, 110);
  std::printf("XKBlas (%.2f TFlop/s) -- composed, no barrier:\n%s\n",
              rx.tflops, rx.gantt.c_str());
  return 0;
}
