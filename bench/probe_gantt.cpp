// Calibration probe: per-GPU occupancy and an ASCII Gantt chart of one
// XKBlas GEMM run -- the tool used to find load-imbalance bubbles while
// calibrating the scheduler (see DESIGN.md).
//
//   probe_gantt [N] [tile] [prepare_window]
#include <cstdio>
#include "baselines/common.hpp"
#include "trace/gantt.hpp"
using namespace xkb;
using namespace xkb::baselines;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? atoi(argv[1]) : 32768;
  std::size_t ts = argc > 2 ? atoi(argv[2]) : 2048;
  int window = argc > 3 ? atoi(argv[3]) : 16;
  ModelSpec s;
  s.name = "XKBlas";
  s.heur = rt::HeuristicConfig::xkblas();
  s.task_overhead = 3e-6;
  s.prepare_window = window;

  rt::PerfModel perf;
  rt::PlatformOptions popt;
  rt::Platform plat(topo::Topology::dgx1(), perf, popt);
  rt::RuntimeOptions ropt;
  ropt.heuristics = s.heur;
  ropt.prepare_window = s.prepare_window;
  ropt.task_overhead = s.task_overhead;
  rt::Runtime runtime(plat, std::make_unique<rt::OwnerComputesScheduler>(), ropt);
  blas::EmitOptions emit; emit.tile = ts; emit.attach_functional = false;
  auto [P, Q] = blas::default_grid(8);
  emit.home = [P=P,Q=Q](std::size_t i, std::size_t j){ return int(i%P)*Q + int(j%Q); };
  rt::Runtime& r = runtime;
  RoutinePlan plan = plan_routine(r, Blas3::kGemm, n, emit, P, Q);
  plan.emit();
  plan.coherent();
  double t = runtime.run();
  printf("makespan %.3f  tflops %.2f  steals %zu\n", t, plan.flops/t/1e12, runtime.steals());
  for (int g = 0; g < 8; ++g)
    printf("GPU%d kernel busy %.3f occupancy %.1f%%\n", g, plat.kernel_busy(g), 100*plat.kernel_busy(g)/t);
  printf("%s\n", trace::gantt_ascii(plat.trace(), 8, 110).c_str());
  return 0;
}
