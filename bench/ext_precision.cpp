// Extension: single precision (SGEMM).  The V100's FP32 peak is twice its
// FP64 peak (Table I footnote territory in the paper); with the flop rate
// doubled, the PCIe links -- moving half the bytes per element -- remain
// the limiter, so the heuristics matter even more than in FP64.
#include <cstdio>

#include "baselines/common.hpp"
#include "util/table.hpp"

using namespace xkb;
using namespace xkb::baselines;

namespace {

double run_sgemm(rt::HeuristicConfig heur, std::size_t n, std::size_t tile) {
  rt::Platform plat(topo::Topology::dgx1(), rt::PerfModel{}, {});
  rt::RuntimeOptions ropt;
  ropt.heuristics = heur;
  ropt.task_overhead = 3e-6;
  ropt.prepare_window = 16;
  rt::Runtime runtime(plat,
                      std::make_unique<rt::OwnerComputesScheduler>(), ropt);
  SymbolicMatrix<float> A(n, n, 0), B(n, n, 1), C(n, n, 2);
  blas::EmitOptions emit;
  emit.tile = tile;
  emit.attach_functional = false;
  auto [P, Q] = blas::default_grid(plat.num_gpus());
  emit.home = [P = P, Q = Q](std::size_t i, std::size_t j) {
    return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
           static_cast<int>(j % static_cast<std::size_t>(Q));
  };
  blas::tiled_gemm<float>(runtime, Op::NoTrans, Op::NoTrans, 1.0f, A.cview(),
                          B.cview(), 1.0f, C.view(), emit);
  MatrixView<const float> Cc = C.cview();
  for (std::size_t i = 0; i < n; i += tile)
    for (std::size_t j = 0; j < n; j += tile)
      runtime.coherent_async(blas::detail::tile_handle(
          runtime, Cc, i, j, std::min(tile, n - i), std::min(tile, n - j)));
  const double t = runtime.run();
  return 2.0 * double(n) * n * n / t / 1e12;
}

}  // namespace

int main() {
  std::printf("== Extension: FP32 SGEMM (peak 124.8 TFlop/s aggregate) ==\n\n");
  Table t({"N", "SGEMM XKBlas", "SGEMM no heuristics", "heuristic gain"});
  for (std::size_t n : {16384ul, 32768ul, 49152ul}) {
    const double on = run_sgemm(rt::HeuristicConfig::xkblas(), n, 2048);
    const double off =
        run_sgemm(rt::HeuristicConfig::no_heuristic_no_topo(), n, 2048);
    t.add_row({std::to_string(n), Table::num(on, 2), Table::num(off, 2),
               "+" + Table::num(100.0 * (on / off - 1.0), 1) + "%"});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "FP32 doubles the compute rate while transfers shrink only 2x in "
      "bytes: the communication share grows, and with it the value of the "
      "device-to-device heuristics.\n");
  return 0;
}
