// Shared helpers for the figure/table regeneration binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/common.hpp"
#include "baselines/library_model.hpp"
#include "util/table.hpp"

namespace xkb::bench {

/// Re-derive a per-class time breakdown from the xkb::obs metrics registry
/// ("time.*" counters; per-GPU "gpu<g>.time.*" when `gpu >= 0`).  The
/// registry is filled by the observability hooks, independently of the
/// trace records the figures normally aggregate -- so a figure binary can
/// print registry-derived values and assert both accounting paths agree.
inline trace::Breakdown registry_breakdown(const baselines::BenchResult& r,
                                           int gpu = -1) {
  trace::Breakdown b;
  if (!r.obs) return b;
  const obs::MetricsRegistry& m = r.obs->metrics();
  const std::string p = gpu < 0 ? "" : "gpu" + std::to_string(gpu) + ".";
  b.kernel = m.counter_value(p + "time.kernel");
  b.htod = m.counter_value(p + "time.htod");
  b.dtoh = m.counter_value(p + "time.dtoh");
  b.ptop = m.counter_value(p + "time.ptop");
  return b;
}

/// True when the registry-derived and trace-derived breakdowns agree to
/// float round-off; prints the first disagreement otherwise.
inline bool breakdown_agrees(const char* who, const trace::Breakdown& reg,
                             const trace::Breakdown& tr) {
  auto near = [](double a, double b) {
    return std::fabs(a - b) <=
           1e-9 * (1.0 + std::fmax(std::fabs(a), std::fabs(b)));
  };
  struct { const char* name; double a, b; } cls[] = {
      {"kernel", reg.kernel, tr.kernel},
      {"htod", reg.htod, tr.htod},
      {"dtoh", reg.dtoh, tr.dtoh},
      {"ptop", reg.ptop, tr.ptop},
  };
  for (const auto& c : cls) {
    if (!near(c.a, c.b)) {
      std::fprintf(stderr,
                   "DRIFT %s %s: registry %.12g != trace %.12g\n", who,
                   c.name, c.a, c.b);
      return false;
    }
  }
  return true;
}

/// Matrix dimensions swept by the paper's figures (up to ~57k).
inline std::vector<std::size_t> paper_sizes() {
  return {4096, 8192, 16384, 24576, 32768, 40960, 49152, 57344};
}

/// Like the paper: report the best performance over the candidate tile
/// sizes for each (library, routine, N) point.
inline baselines::BenchResult best_over_tiles(
    baselines::LibraryModel& model, baselines::BenchConfig cfg,
    const std::vector<std::size_t>& tiles = {1024, 2048, 4096}) {
  baselines::BenchResult best;
  bool have = false;
  for (std::size_t ts : tiles) {
    if (ts * 2 > cfg.n) continue;  // need some parallelism
    const double nt = static_cast<double>(cfg.n) / ts;
    if (nt * nt * nt > 40000) continue;  // bound simulation cost
    cfg.tile = ts;
    baselines::BenchResult r = model.run(cfg);
    if (!r.supported || r.failed) {
      if (!have) best = r;
      continue;
    }
    if (!have || r.tflops > best.tflops) {
      best = r;
      have = true;
    }
  }
  if (!have && best.error.empty() && best.supported) {
    cfg.tile = cfg.n / 2 ? cfg.n / 2 : cfg.n;
    best = model.run(cfg);
  }
  return best;
}

inline std::string tf(const baselines::BenchResult& r) {
  if (!r.supported) return "-";
  if (r.failed) return "FAIL";
  return Table::num(r.tflops, 2);
}

}  // namespace xkb::bench
