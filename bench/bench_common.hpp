// Shared helpers for the figure/table regeneration binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/common.hpp"
#include "baselines/library_model.hpp"
#include "util/table.hpp"

namespace xkb::bench {

/// Matrix dimensions swept by the paper's figures (up to ~57k).
inline std::vector<std::size_t> paper_sizes() {
  return {4096, 8192, 16384, 24576, 32768, 40960, 49152, 57344};
}

/// Like the paper: report the best performance over the candidate tile
/// sizes for each (library, routine, N) point.
inline baselines::BenchResult best_over_tiles(
    baselines::LibraryModel& model, baselines::BenchConfig cfg,
    const std::vector<std::size_t>& tiles = {1024, 2048, 4096}) {
  baselines::BenchResult best;
  bool have = false;
  for (std::size_t ts : tiles) {
    if (ts * 2 > cfg.n) continue;  // need some parallelism
    const double nt = static_cast<double>(cfg.n) / ts;
    if (nt * nt * nt > 40000) continue;  // bound simulation cost
    cfg.tile = ts;
    baselines::BenchResult r = model.run(cfg);
    if (!r.supported || r.failed) {
      if (!have) best = r;
      continue;
    }
    if (!have || r.tflops > best.tflops) {
      best = r;
      have = true;
    }
  }
  if (!have && best.error.empty() && best.supported) {
    cfg.tile = cfg.n / 2 ? cfg.n / 2 : cfg.n;
    best = model.run(cfg);
  }
  return best;
}

inline std::string tf(const baselines::BenchResult& r) {
  if (!r.supported) return "-";
  if (r.failed) return "FAIL";
  return Table::num(r.tflops, 2);
}

}  // namespace xkb::bench
