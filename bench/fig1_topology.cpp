// Figure 1: the hybrid cube-mesh network topology between GPUs and CPUs on
// the NVIDIA DGX-1, rendered as a link-class matrix plus adjacency lists.
#include <cstdio>

#include "topo/topology.hpp"
#include "util/table.hpp"

using namespace xkb;

int main() {
  const topo::Topology t = topo::Topology::dgx1();
  std::printf("== Fig. 1: DGX-1 hybrid cube-mesh topology ==\n\n");

  std::vector<std::string> header{"GPU"};
  for (int g = 0; g < t.num_gpus(); ++g) header.push_back(std::to_string(g));
  Table tab(header);
  for (int a = 0; a < t.num_gpus(); ++a) {
    std::vector<std::string> row{std::to_string(a)};
    for (int b = 0; b < t.num_gpus(); ++b)
      row.push_back(topo::to_string(t.link_class(a, b)));
    tab.add_row(row);
  }
  std::printf("Link classes (NV2 = 2x NVLink, NV1 = 1x NVLink):\n%s\n",
              tab.to_text().c_str());

  for (int g = 0; g < t.num_gpus(); ++g) {
    std::printf("GPU %d: NVLink peers {", g);
    bool first = true;
    for (int o = 0; o < t.num_gpus(); ++o) {
      const auto c = t.link_class(g, o);
      if (c == topo::LinkClass::kNVLink2 || c == topo::LinkClass::kNVLink1) {
        std::printf("%s%d(%s)", first ? "" : ", ", o, topo::to_string(c));
        first = false;
      }
    }
    std::printf("}, PCIe switch %d\n", t.host_link_of(g));
  }
  return 0;
}
