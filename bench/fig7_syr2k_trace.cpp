// Figure 7: execution trace of SYR2K FP64 (N = 49152) broken down by GPU,
// for Chameleon Tile, cuBLAS-XT and XKBlas.  The paper's point: Chameleon's
// dmdas balances the per-GPU load; XKBlas shows work/communication imbalance
// (its work stealing is locality-blind); cuBLAS-XT is dominated by
// transfers everywhere.
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 7: SYR2K FP64 N=49152 -- per-GPU execution breakdown ==\n\n");

  BenchConfig cfg;
  cfg.routine = Blas3::kSyr2k;
  cfg.n = 49152;
  cfg.tile = 2048;
  // Per-GPU rows come from the registry's "gpu<g>.time.*" counters and are
  // cross-checked against the per-device trace breakdown (see Fig. 6).
  cfg.obs.enabled = true;

  std::vector<std::unique_ptr<LibraryModel>> models;
  models.push_back(make_chameleon(/*tile_layout=*/true));
  models.push_back(make_cublasxt());
  models.push_back(make_xkblas(rt::HeuristicConfig::xkblas()));

  bool drift = false;
  for (auto& m : models) {
    const BenchResult r = m->run(cfg);
    std::printf("%s (%.2f TFlop/s, %.2f s):\n", m->name().c_str(), r.tflops,
                r.seconds);
    Table t({"GPU", "DtoH(s)", "HtoD(s)", "PtoP(s)", "Kernel(s)", "Busy(s)"});
    double kmin = 1e30, kmax = 0.0;
    for (std::size_t g = 0; g < r.per_gpu.size(); ++g) {
      const trace::Breakdown b = r.obs
          ? bench::registry_breakdown(r, static_cast<int>(g))
          : r.per_gpu[g];
      if (r.obs &&
          !bench::breakdown_agrees(m->name().c_str(), b, r.per_gpu[g]))
        drift = true;
      kmin = std::min(kmin, b.kernel);
      kmax = std::max(kmax, b.kernel);
      t.add_row({std::to_string(g), Table::num(b.dtoh, 2),
                 Table::num(b.htod, 2), Table::num(b.ptop, 2),
                 Table::num(b.kernel, 2), Table::num(b.total(), 2)});
    }
    std::printf("%s  kernel-time imbalance (max/min): %.2f\n\n",
                t.to_text().c_str(), kmax / (kmin > 0 ? kmin : 1.0));
  }
  if (drift) {
    std::fprintf(stderr,
                 "metrics registry disagrees with the trace breakdown\n");
    return 1;
  }
  return 0;
}
