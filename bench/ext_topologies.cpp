// Extension: the paper's portability question (Section V) -- how much do
// the two heuristics matter on other node architectures?
//   * DGX-1        : the paper's machine (hybrid cube-mesh + shared PCIe)
//   * PCIe-only    : no NVLink anywhere; both heuristics act on PCIe paths
//   * NVSwitch     : uniform all-to-all links; topology ranking is moot
//   * Summit-like  : NVLink between CPU and GPU (50 GB/s, dedicated) -- the
//     paper predicts the optimistic heuristic gains little here because the
//     host links are no longer the bottleneck.
//   * Fat-tree 2x8 : a multi-node machine described through xkb::tdl (two
//     8-GPU hosts behind leaf switches, NIC uplinks to one spine) -- every
//     row here is a routed tdl machine graph; this one exercises the NIC
//     tier and cross-node source ranking.
#include <cstdio>

#include "bench_common.hpp"
#include "tdl/presets.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Extension: heuristic gains across node topologies (DGEMM, "
      "data-on-host) ==\n\n");

  struct Node {
    const char* name;
    topo::Topology topo;
  };
  const Node nodes[] = {
      {"DGX-1", topo::Topology::dgx1()},
      {"PCIe-only x8", topo::Topology::pcie_only(8)},
      {"NVSwitch x8", topo::Topology::nvswitch(8)},
      {"Summit-like x6", topo::Topology::summit_like()},
      {"Fat-tree 2x8",
       topo::Topology::from_machine(tdl::preset_machine("fat_tree_2x8"))},
  };

  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  auto no_heur = make_xkblas(rt::HeuristicConfig::no_heuristic());
  auto no_topo = make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo());

  for (std::size_t n : {16384ul, 32768ul}) {
    Table t({"Topology", "XKBlas", "no heuristic", "no heur, no topo",
             "optimistic gain", "both-heuristics gain"});
    for (const Node& node : nodes) {
      BenchConfig cfg;
      cfg.routine = Blas3::kGemm;
      cfg.n = n;
      cfg.tile = 2048;
      cfg.topology = node.topo;
      const double full = xkblas->run(cfg).tflops;
      const double heur_off = no_heur->run(cfg).tflops;
      const double both_off = no_topo->run(cfg).tflops;
      auto pct = [](double ratio) {
        const double g = 100.0 * (ratio - 1.0);
        return (g >= 0 ? "+" : "") + Table::num(g, 1) + "%";
      };
      t.add_row({node.name, Table::num(full, 2), Table::num(heur_off, 2),
                 Table::num(both_off, 2), pct(full / heur_off),
                 pct(full / both_off)});
    }
    std::printf("N = %zu (TFlop/s)\n%s\n", n, t.to_text().c_str());
  }
  std::printf(
      "Expectation (paper Section III-C): the optimistic-heuristic gain "
      "shrinks on Summit-like nodes where CPU-GPU links are fast NVLink.\n"
      "Note the PCIe-only reversal: without NVLink, peer forwarding shares "
      "the host PCIe fabric, so duplicate host fetches are actually "
      "cheaper -- the heuristics pay off only when peer links bypass the "
      "host fabric.\n");
  return 0;
}
