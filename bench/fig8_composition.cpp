// Figure 8: composition of TRSM + GEMM FP64 (block size 2048) over 8 GPUs,
// sweeping the matrix dimension: XKBlas composes the two calls into one
// task graph; Chameleon synchronises between the calls.
#include <cstdio>

#include "baselines/composition.hpp"
#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 8: composition TRSM + GEMM FP64, block size 2048, 8 GPUs "
      "==\n\n");

  ModelSpec xkblas;
  xkblas.name = "XKBlas";
  xkblas.heur = rt::HeuristicConfig::xkblas();
  xkblas.task_overhead = 3e-6;
  xkblas.prepare_window = 16;
  xkblas.call_overhead = 1e-3;

  ModelSpec cham;
  cham.name = "Chameleon Tile";
  cham.dmdas = true;
  cham.heur = {rt::SourcePolicy::kFirstValid, false};
  cham.task_overhead = 20e-6;
  cham.call_overhead = 80e-3;

  Table t({"N", "Chameleon Tiled", "XKBlas", "XKBlas/Chameleon"});
  for (std::size_t n : bench::paper_sizes()) {
    const auto rc = run_trsm_gemm(cham, n, 2048, /*sync_between_calls=*/true);
    const auto rx = run_trsm_gemm(xkblas, n, 2048,
                                  /*sync_between_calls=*/false);
    t.add_row({std::to_string(n), Table::num(rc.tflops, 2),
               Table::num(rx.tflops, 2),
               Table::num(rx.tflops / rc.tflops, 2) + "x"});
  }
  std::printf("%s (TFlop/s)\n", t.to_text().c_str());
  std::printf(
      "Paper reference at N=32768: XKBlas 56.6 TFlop/s (near its GEMM peak "
      "of 56.9) vs Chameleon 36.6 (below its 51.3 GEMM peak).\n");
  return 0;
}
