// Extension: ablations of the runtime design choices DESIGN.md calls out:
//   * prefetch window depth (how far XKaapi fetches ahead),
//   * work stealing on/off (the source of the SYR2K imbalance),
//   * device cache capacity (eviction pressure),
//   * kernel launch overhead sensitivity (XKBlas's lightweight runtime).
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

namespace {

BenchResult run_spec(ModelSpec spec, const BenchConfig& cfg) {
  return run_with_spec(spec, cfg);
}

ModelSpec xkblas_spec() {
  ModelSpec s;
  s.name = "XKBlas";
  s.heur = rt::HeuristicConfig::xkblas();
  s.task_overhead = 3e-6;
  s.prepare_window = 16;
  s.call_overhead = 1e-3;
  return s;
}

}  // namespace

int main() {
  std::printf("== Extension: runtime design ablations (FP64, DGX-1) ==\n\n");

  BenchConfig gemm;
  gemm.routine = Blas3::kGemm;
  gemm.n = 24576;
  gemm.tile = 2048;

  {
    Table t({"prepare window", "GEMM TFlop/s"});
    for (int w : {1, 2, 4, 8, 16, 32}) {
      ModelSpec s = xkblas_spec();
      s.prepare_window = w;
      t.add_row({std::to_string(w), Table::num(run_spec(s, gemm).tflops, 2)});
    }
    std::printf("Prefetch window depth (N=24576):\n%s\n", t.to_text().c_str());
  }

  {
    Table t({"config", "SYR2K TFlop/s", "steals", "kernel imbalance"});
    BenchConfig cfg;
    cfg.routine = Blas3::kSyr2k;
    cfg.n = 49152;
    cfg.tile = 2048;
    for (bool stealing : {true, false}) {
      ModelSpec s = xkblas_spec();
      s.stealing = stealing;
      const BenchResult r = run_spec(s, cfg);
      double kmin = 1e30, kmax = 0.0;
      for (const auto& b : r.per_gpu) {
        kmin = std::min(kmin, b.kernel);
        kmax = std::max(kmax, b.kernel);
      }
      t.add_row({stealing ? "work stealing" : "no stealing",
                 Table::num(r.tflops, 2), std::to_string(r.steals),
                 Table::num(kmax / (kmin > 0 ? kmin : 1), 2)});
    }
    std::printf("Work stealing (SYR2K N=49152):\n%s\n", t.to_text().c_str());
  }

  {
    Table t({"capacity/GPU", "GEMM TFlop/s", "evict flushes"});
    for (double gb : {32.0, 6.0, 4.0, 2.0}) {
      BenchConfig cfg = gemm;
      cfg.n = 32768;  // 3 x 8 GB of operands, ~7 GB live set per GPU
      cfg.device_capacity = static_cast<std::size_t>(gb * (1ull << 30));
      ModelSpec s = xkblas_spec();
      const BenchResult r = run_spec(s, cfg);
      t.add_row({Table::num(gb, 0) + " GB",
                 r.failed ? "FAIL" : Table::num(r.tflops, 2),
                 std::to_string(r.transfers.evict_flushes)});
    }
    std::printf("Cache pressure (GEMM N=32768):\n%s\n", t.to_text().c_str());
  }

  {
    // XKaapi's read-only-first eviction vs plain LRU under pressure: LRU
    // evicts dirty tiles by recency and pays D2H flushes on the congested
    // PCIe links.
    Table t({"eviction policy", "GEMM TFlop/s", "evict flushes"});
    for (mem::EvictionPolicy pol :
         {mem::EvictionPolicy::kReadOnlyFirst, mem::EvictionPolicy::kLru}) {
      BenchConfig cfg = gemm;
      cfg.n = 32768;
      cfg.device_capacity = 2ull << 30;
      ModelSpec s = xkblas_spec();
      s.eviction = pol;
      const BenchResult r = run_spec(s, cfg);
      t.add_row({pol == mem::EvictionPolicy::kReadOnlyFirst
                     ? "read-only first (XKaapi)"
                     : "plain LRU",
                 r.failed ? "FAIL" : Table::num(r.tflops, 2),
                 std::to_string(r.transfers.evict_flushes)});
    }
    std::printf("Eviction policy at 2 GB/GPU (GEMM N=32768):\n%s\n",
                t.to_text().c_str());
  }

  {
    Table t({"per-task overhead", "GEMM N=8192 TFlop/s"});
    BenchConfig cfg = gemm;
    cfg.n = 8192;
    cfg.tile = 512;  // 4096 small tasks: overhead-sensitive regime
    for (double ov : {0.0, 3e-6, 20e-6, 100e-6}) {
      ModelSpec s = xkblas_spec();
      s.task_overhead = ov;
      t.add_row({Table::num(ov * 1e6, 0) + " us",
                 Table::num(run_spec(s, cfg).tflops, 2)});
    }
    std::printf("Runtime overhead sensitivity (small matrices):\n%s\n",
                t.to_text().c_str());
  }
  return 0;
}
