// Microbenchmark of the device-cache reservation hot path under memory
// pressure: every reserve() must evict one victim.  Compares the intrusive
// per-class LRU cache against a reference implementation of the historical
// algorithm (re-sort all residents per reservation + linear-scan erase) at
// several resident-set sizes, reporting ns per reserve/evict cycle.
//
// The point: the legacy cost grows with the resident-set size (the per-OOM
// sort is O(R log R)), the intrusive cache is flat (O(victims) per
// reservation), which is what BLASX's two-level LRU (Wang et al.) and the
// XKaapi affinity work (Bleuse et al.) assume of cache bookkeeping.
//
//   micro_cache [cycles per size, default 100000]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "mem/cache.hpp"
#include "mem/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace xkb;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kTileBytes = 8 * 8 * sizeof(double);

/// The pre-refactor eviction algorithm, kept here as the baseline: an
/// insertion-ordered resident vector re-sorted on every reservation that
/// needs space, with std::find erases.
class LegacySortCache {
 public:
  LegacySortCache(int device, std::size_t capacity)
      : device_(device), capacity_(capacity) {}

  void reserve(mem::DataHandle* h) {
    mem::Replica& r = h->dev[device_];
    if (r.resident) return;
    const std::size_t need = h->bytes();
    if (used_ + need > capacity_) {
      std::vector<mem::DataHandle*> clean, dirty;
      for (mem::DataHandle* c : resident_) {
        const mem::Replica& cr = c->dev[device_];
        if (!cr.resident || cr.pins > 0 ||
            cr.state == mem::ReplicaState::kInFlight)
          continue;
        (cr.dirty ? dirty : clean).push_back(c);
      }
      auto lru = [&](mem::DataHandle* a, mem::DataHandle* b) {
        return a->dev[device_].last_use < b->dev[device_].last_use;
      };
      std::stable_sort(clean.begin(), clean.end(), lru);
      std::stable_sort(dirty.begin(), dirty.end(), lru);
      std::size_t ci = 0, di = 0;
      while (used_ + need > capacity_) {
        mem::DataHandle* v = nullptr;
        if (ci < clean.size())
          v = clean[ci++];
        else if (di < dirty.size())
          v = dirty[di++];
        else
          throw mem::OutOfDeviceMemory(device_);
        mem::Replica& vr = v->dev[device_];
        vr.dirty = false;
        vr.state = mem::ReplicaState::kInvalid;
        vr.resident = false;
        used_ -= v->bytes();
        resident_.erase(std::find(resident_.begin(), resident_.end(), v));
      }
    }
    used_ += need;
    r.resident = true;
    resident_.push_back(h);
  }

  void touch(mem::DataHandle* h, double now) { h->dev[device_].last_use = now; }

 private:
  int device_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::vector<mem::DataHandle*> resident_;
};

/// One reserve/evict cycle per iteration: the working set is one tile larger
/// than the cache, so every reservation of a non-resident tile evicts the
/// LRU victim.  Random touches keep the recency order churning.
template <typename Cache>
double run_cycles(Cache& cache, std::vector<mem::DataHandle*>& tiles,
                  int cycles) {
  Rng rng(42);
  // Warm: fill the cache.
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    cache.reserve(tiles[i]);
    tiles[i]->dev[0].state = mem::ReplicaState::kValid;
    cache.touch(tiles[i], static_cast<double>(i));
  }
  double now = static_cast<double>(tiles.size());
  std::size_t next = tiles.size() - 1;
  const auto t0 = Clock::now();
  for (int c = 0; c < cycles; ++c) {
    mem::DataHandle* h = tiles[next % tiles.size()];
    cache.reserve(h);  // evicts exactly the current LRU victim
    h->dev[0].state = mem::ReplicaState::kValid;
    cache.touch(h, now++);
    // Touch a random resident to churn the order.
    cache.touch(tiles[rng.next_below(tiles.size())], now++);
    ++next;
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 100000;
  if (cycles <= 0) {
    std::fprintf(stderr, "usage: micro_cache [cycles > 0]\n");
    return 2;
  }
  std::printf(
      "Reserve-under-pressure cost vs resident-set size (%d cycles/point, "
      "one eviction per reserve)\n\n", cycles);
  std::printf("%12s %22s %22s %10s\n", "residents", "legacy sort-scan (ns)",
              "intrusive LRU (ns)", "speedup");
  for (std::size_t residents : {256u, 1024u, 4096u, 16384u}) {
    const std::size_t ntiles = residents + 1;
    std::vector<double> backing(ntiles);  // origin keys only; no payload

    mem::Registry reg_new(1), reg_old(1);
    std::vector<mem::DataHandle*> tiles_new, tiles_old;
    for (std::size_t i = 0; i < ntiles; ++i) {
      tiles_new.push_back(
          reg_new.intern(&backing[i], 8, 8, 512, sizeof(double)));
      tiles_old.push_back(
          reg_old.intern(&backing[i], 8, 8, 512, sizeof(double)));
    }

    mem::DeviceCache cache(0, residents * kTileBytes);
    LegacySortCache legacy(0, residents * kTileBytes);
    const double ns_new = run_cycles(cache, tiles_new, cycles);
    const double ns_old = run_cycles(legacy, tiles_old, cycles);
    std::printf("%12zu %22.1f %22.1f %9.1fx\n", residents, ns_old, ns_new,
                ns_old / ns_new);
  }
  std::printf(
      "\nFlat right-hand column = reservation cost independent of the "
      "resident-set size.\n");
  return 0;
}
