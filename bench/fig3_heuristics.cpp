// Figure 3: impact of the optimistic device-to-device and topology-aware
// heuristics on FP64 GEMM, SYR2K and TRSM (data-on-host, 8 GPUs).
//
// Series, as in the paper:
//   cuBLAS-XT                      -- reference library
//   XKBlas                         -- both heuristics enabled
//   XKBlas, no heuristic           -- optimistic D2D disabled
//   XKBlas, no heuristic, no topo  -- both disabled
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main() {
  std::printf(
      "== Fig. 3: device-to-device and topology-aware heuristics "
      "(data-on-host, FP64, 8 GPUs, DGX-1) ==\n\n");

  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  auto no_heur = make_xkblas(rt::HeuristicConfig::no_heuristic(),
                             ", no heuristic");
  auto no_topo = make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo(),
                             ", no heuristic, no topo");
  auto cublasxt = make_cublasxt();

  for (Blas3 routine : {Blas3::kGemm, Blas3::kSyr2k, Blas3::kTrsm}) {
    Table t({"N", "cuBLAS-XT", "XKBlas", "XKBlas no heur",
             "XKBlas no heur no topo"});
    for (std::size_t n : bench::paper_sizes()) {
      BenchConfig cfg;
      cfg.routine = routine;
      cfg.n = n;
      t.add_row({std::to_string(n),
                 bench::tf(bench::best_over_tiles(*cublasxt, cfg)),
                 bench::tf(bench::best_over_tiles(*xkblas, cfg)),
                 bench::tf(bench::best_over_tiles(*no_heur, cfg)),
                 bench::tf(bench::best_over_tiles(*no_topo, cfg))});
    }
    std::printf("%s (TFlop/s)\n%s\n", blas3_name(routine),
                t.to_text().c_str());
  }
  return 0;
}
