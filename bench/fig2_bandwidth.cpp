// Figure 2: bandwidth (GB/s) measured between GPUs on the simulated DGX-1.
//
// Like the paper's measurement, this times an actual large transfer on every
// directed pair through the simulator (not just printing configuration), so
// it validates the platform's channel plumbing end to end.
#include <cstdio>

#include "runtime/platform.hpp"
#include "util/table.hpp"

using namespace xkb;

int main() {
  std::printf(
      "== Fig. 2: bandwidth (GB/s) measured between GPUs (simulated "
      "DGX-1) ==\n\n");
  const std::size_t bytes = 1ull << 30;  // 1 GiB probe transfer

  rt::Platform plat(topo::Topology::dgx1(), rt::PerfModel{}, {});
  const int n = plat.num_gpus();

  std::vector<std::string> header{"D\\D"};
  for (int g = 0; g < n; ++g) header.push_back(std::to_string(g));
  Table tab(header);
  for (int src = 0; src < n; ++src) {
    std::vector<std::string> row{std::to_string(src)};
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) {
        row.push_back(
            Table::num(plat.topology().gpu_bandwidth_gbps(src, src), 2));
        continue;
      }
      auto iv = plat.copy_p2p(src, dst, bytes, {});
      plat.engine().run();
      row.push_back(
          Table::num(static_cast<double>(bytes) / iv.duration() / 1e9, 2));
    }
    tab.add_row(row);
  }
  std::printf("%s\n", tab.to_text().c_str());

  std::printf("Host <-> GPU (per PCIe switch, shared by two GPUs):\n");
  for (int g = 0; g < n; g += 2) {
    auto iv = plat.copy_h2d(g, bytes, {});
    plat.engine().run();
    std::printf("  switch %d: %.2f GB/s\n", plat.topology().host_link_of(g),
                static_cast<double>(bytes) / iv.duration() / 1e9);
  }
  return 0;
}
