// Google-benchmark microbenchmarks of the simulation substrate itself:
// event-engine throughput, channel submissions, cache operations, handle
// interning, task-graph submission, and the host reference kernels.  These
// bound how large a virtual experiment the simulator can run in real time.
#include <benchmark/benchmark.h>

#include "baselines/common.hpp"
#include "blas/host_blas.hpp"
#include "blas/tiled.hpp"
#include "mem/cache.hpp"
#include "mem/registry.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "util/rng.hpp"

namespace {

using namespace xkb;

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    int sink = 0;
    for (int i = 0; i < n; ++i)
      e.schedule_at(static_cast<double>(i % 97), [&sink] { ++sink; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

void BM_ChannelTransfers(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::Channel c(e, "link", 12.3e9, 10e-6);
    for (int i = 0; i < 1000; ++i) c.transfer(1 << 20, [] {});
    e.run();
    benchmark::DoNotOptimize(c.bytes_moved());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelTransfers);

void BM_CacheReserveRelease(benchmark::State& state) {
  mem::Registry reg(8);
  std::vector<double> backing(1 << 16);
  std::vector<mem::DataHandle*> handles;
  for (int i = 0; i < 64; ++i)
    handles.push_back(
        reg.intern(backing.data() + i * 512, 16, 16, 512, sizeof(double)));
  mem::DeviceCache cache(0, 48 * 16 * 16 * sizeof(double));
  std::size_t i = 0;
  for (auto _ : state) {
    mem::DataHandle* h = handles[i++ % handles.size()];
    cache.reserve(h);
    h->dev[0].state = mem::ReplicaState::kValid;
    cache.touch(h, static_cast<double>(i));
    benchmark::DoNotOptimize(cache.used());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheReserveRelease);

void BM_RegistryIntern(benchmark::State& state) {
  std::vector<double> backing(1 << 20);
  for (auto _ : state) {
    mem::Registry reg(8);
    for (int i = 0; i < 1024; ++i)
      reg.intern(backing.data() + i * 64, 8, 8, 512, sizeof(double));
    benchmark::DoNotOptimize(reg.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RegistryIntern);

void BM_TaskGraphSubmitExecute(benchmark::State& state) {
  const int chains = 32, depth = 16;
  std::vector<double> backing(chains);
  for (auto _ : state) {
    rt::Platform plat(topo::Topology::dgx1(), rt::PerfModel{}, {});
    rt::Runtime runtime(plat, std::make_unique<rt::OwnerComputesScheduler>(),
                        {});
    for (int c = 0; c < chains; ++c) {
      mem::DataHandle* h = runtime.registry().intern(&backing[c], 1, 1, 1,
                                                     sizeof(double));
      for (int k = 0; k < depth; ++k) {
        rt::TaskDesc d;
        d.label = "t";
        d.accesses.push_back({h, rt::Access::kRW});
        d.flops = 1e9;
        d.min_dim = 1024;
        runtime.submit(std::move(d));
      }
    }
    runtime.run();
    benchmark::DoNotOptimize(runtime.tasks_completed());
  }
  state.SetItemsProcessed(state.iterations() * chains * depth);
}
BENCHMARK(BM_TaskGraphSubmitExecute);

void BM_HostGemmKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix<double> a(n, n), b(n, n), c(n, n);
  fill_random(a, rng);
  fill_random(b, rng);
  for (auto _ : state) {
    host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a.view(), b.view(), 1.0,
                       c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_HostGemmKernel)->Arg(32)->Arg(64);

void BM_HostTrsmKernel(benchmark::State& state) {
  const std::size_t n = 64;
  Rng rng(8);
  Matrix<double> a(n, n), b(n, n);
  fill_random(a, rng);
  make_diag_dominant(a);
  fill_random(b, rng);
  for (auto _ : state) {
    host::trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                       1.0, a.view(), b.view());
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_HostTrsmKernel);

void BM_FullGemmSimulation(benchmark::State& state) {
  // Real-time cost of one paper-scale virtual experiment.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rt::Platform plat(topo::Topology::dgx1(), rt::PerfModel{}, {});
    rt::RuntimeOptions ro;
    ro.heuristics = rt::HeuristicConfig::xkblas();
    rt::Runtime runtime(plat, std::make_unique<rt::OwnerComputesScheduler>(),
                        ro);
    baselines::SymbolicMatrix<double> A(n, n, 0), B(n, n, 1), C(n, n, 2);
    blas::EmitOptions eo;
    eo.tile = 2048;
    eo.attach_functional = false;
    blas::tiled_gemm<double>(runtime, Op::NoTrans, Op::NoTrans, 1.0,
                             A.cview(), B.cview(), 1.0, C.view(), eo);
    runtime.run();
    benchmark::DoNotOptimize(runtime.tasks_completed());
  }
}
BENCHMARK(BM_FullGemmSimulation)->Arg(16384)->Arg(32768)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
