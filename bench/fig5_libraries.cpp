// Figure 5: performance of the 8 libraries on the (simulated) DGX-1 with 8
// GPUs for the 6 paper BLAS-3 subroutines, data-on-host, best tile size per
// point.  Also prints the drop-in replacement comparison of Section IV-D
// (the libraries supporting LAPACK layout for all 9 routines) and the
// Hermitian trio as an extension.
#include <cstdio>

#include "bench_common.hpp"

using namespace xkb;
using namespace xkb::baselines;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  std::printf(
      "== Fig. 5: 8 libraries x 6 BLAS-3 subroutines (FP64, data-on-host, "
      "8 GPUs) ==\n\n");

  auto models = all_models();

  std::vector<std::size_t> sizes = bench::paper_sizes();
  if (quick) sizes = {8192, 24576, 40960};

  const Blas3 routines[] = {Blas3::kGemm,  Blas3::kSymm, Blas3::kSyr2k,
                            Blas3::kSyrk,  Blas3::kTrmm, Blas3::kTrsm};
  for (Blas3 routine : routines) {
    std::vector<std::string> header{"N"};
    for (auto& m : models) header.push_back(m->name());
    Table t(header);
    for (std::size_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (auto& m : models) {
        BenchConfig cfg;
        cfg.routine = routine;
        cfg.n = n;
        row.push_back(bench::tf(bench::best_over_tiles(*m, cfg)));
      }
      t.add_row(row);
    }
    std::printf("%s (TFlop/s)\n%s\n", blas3_name(routine),
                t.to_text().c_str());
  }

  // Section IV-D: drop-in replacement ratios at a representative size.
  std::printf(
      "-- Drop-in replacement comparison (LAPACK layout, Section IV-D) --\n");
  {
    auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
    auto cublasxt = make_cublasxt();
    auto cham_lap = make_chameleon(/*tile_layout=*/false);
    BenchConfig cfg;
    cfg.routine = Blas3::kGemm;
    cfg.n = 16384;
    const double xk = bench::best_over_tiles(*xkblas, cfg).tflops;
    const double xt = bench::best_over_tiles(*cublasxt, cfg).tflops;
    const double cl = bench::best_over_tiles(*cham_lap, cfg).tflops;
    std::printf(
        "  DGEMM N=16384: XKBlas %.1f TF = %.0f%% of cuBLAS-XT (%.1f TF), "
        "%.0f%% of Chameleon LAPACK (%.1f TF)\n\n",
        xk, 100.0 * xk / xt, xt, 100.0 * xk / cl, cl);
  }

  // Extension: the Hermitian trio completing the 9 standard routines.
  std::printf("-- Extension: Hermitian routines (complex FP64) --\n");
  {
    auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
    auto cham = make_chameleon(/*tile_layout=*/true);
    auto xt = make_cublasxt();
    Table t({"Routine", "N", "cuBLAS-XT", "Chameleon Tile", "XKBlas"});
    for (Blas3 r : {Blas3::kHemm, Blas3::kHerk, Blas3::kHer2k}) {
      BenchConfig cfg;
      cfg.routine = r;
      cfg.n = 16384;
      t.add_row({blas3_name(r), "16384",
                 bench::tf(bench::best_over_tiles(*xt, cfg)),
                 bench::tf(bench::best_over_tiles(*cham, cfg)),
                 bench::tf(bench::best_over_tiles(*xkblas, cfg))});
    }
    std::printf("%s\n", t.to_text().c_str());
  }
  return 0;
}
