// Data-on-device: the paper's Section IV-C scenario through the public API.
//
// Viewing the 8 GPUs as a small distributed-memory machine, the operands
// are first distributed 2D block-cyclically with
// distribute_2d_block_cyclic_async (the ScaLAPACK mapping); the SYR2K that
// follows then runs entirely at NVLink speed, never touching the PCIe host
// links.  The example measures both scenarios and prints the gain.
#include <cstdio>

#include "core/xkblas.hpp"
#include "util/rng.hpp"

using namespace xkblas;

namespace {

double run_syr2k(bool data_on_device, double* tflops) {
  Options opt;
  opt.platform.functional = true;
  opt.tile = 64;
  Context ctx(opt);

  const std::size_t n = 512;
  xkb::Rng rng(11);
  xkb::Matrix<double> A(n, n), B(n, n), C(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);

  double t0 = 0.0;
  if (data_on_device) {
    // Pre-place every tile on its block-cyclic owner; the distribution is
    // not part of the measured time (as in the paper's Fig. 4).
    ctx.distribute_2d_block_cyclic_async<double>(A.view());
    ctx.distribute_2d_block_cyclic_async<double>(B.view());
    ctx.distribute_2d_block_cyclic_async<double>(C.view());
    t0 = ctx.sync();
  }

  ctx.syr2k_async<double>(Uplo::Lower, Op::NoTrans, 1.0, A.view(), B.view(),
                          1.0, C.view());
  if (!data_on_device) ctx.memory_coherent_async<double>(C.view());
  const double t1 = ctx.sync();

  const double flops = 2.0 * double(n) * n * (n + 1);
  *tflops = flops / (t1 - t0) / 1e12;
  return t1 - t0;
}

}  // namespace

int main() {
  double tf_host = 0.0, tf_dev = 0.0;
  const double t_host = run_syr2k(false, &tf_host);
  const double t_dev = run_syr2k(true, &tf_dev);

  std::printf("DSYR2K 512x512, tiles of 64, 8 simulated V100s\n");
  std::printf("  data-on-host   : %.3f ms (%.2f TFlop/s incl. transfers)\n",
              t_host * 1e3, tf_host);
  std::printf("  data-on-device : %.3f ms (%.2f TFlop/s, 2D block-cyclic)\n",
              t_dev * 1e3, tf_dev);
  std::printf("  gain           : +%.1f%%\n", 100.0 * (t_host / t_dev - 1.0));
  return t_dev < t_host ? 0 : 1;
}
