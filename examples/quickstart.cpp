// Quickstart: the smallest complete XKBlasSim program.
//
// Creates a simulated DGX-1, runs an asynchronous DGEMM on LAPACK-layout
// matrices, requests host coherency (the lazy copy-back of the paper), and
// verifies the numerics against the sequential reference.  The platform is
// in *functional* mode: simulated kernels execute real arithmetic on the
// simulated device memories, while the virtual clock reports what the same
// schedule would cost on the real machine.
#include <cstdio>

#include "core/xkblas.hpp"
#include "util/rng.hpp"

using namespace xkblas;

int main() {
  // A simulated DGX-1 in functional mode, tiles of 64 (small demo sizes).
  Options opt;
  opt.platform.functional = true;
  opt.tile = 64;
  Context ctx(opt);

  const std::size_t n = 256;
  xkb::Rng rng(42);
  xkb::Matrix<double> A(n, n), B(n, n), C(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  xkb::Matrix<double> ref = C;

  // Reference result, computed sequentially on the host.
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, A.view(), B.view(),
                          1.0, ref.view());

  // Asynchronous multi-GPU GEMM: submission returns immediately...
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, A.view(), B.view(),
                         1.0, C.view());
  // ...results come back to the host only when explicitly requested.
  ctx.memory_coherent_async<double>(C.view());
  const double seconds = ctx.sync();

  const double err = xkb::max_abs_diff(C, ref);
  std::printf("DGEMM %zux%zu on %d simulated V100s\n", n, n,
              ctx.platform().num_gpus());
  std::printf("  virtual time     : %.3f ms\n", seconds * 1e3);
  std::printf("  max |C - C_ref|  : %.2e\n", err);
  const auto& st = ctx.rt().data_manager().stats();
  std::printf("  transfers        : %zu HtoD, %zu DtoD, %zu DtoH "
              "(%zu duplicate HtoD avoided by the optimistic heuristic)\n",
              st.h2d, st.d2d, st.d2h, st.optimistic_waits);
  return err < 1e-10 ? 0 : 1;
}
