// Composition: the paper's Section IV-F scenario, written against the
// public API.  A "solver" pipeline --
//
//   X := L^-1 B          (TRSM: forward substitution)
//   S := X^T X + S       (GEMM: Gram matrix of the solution)
//
// -- is submitted as two asynchronous calls with *no synchronisation in
// between*: the second call inherits the data distribution the first left
// in the software cache, and dependencies flow tile-to-tile through the
// shared X handles.  This is what lets XKBlas keep all GPUs busy across
// routine boundaries (Figs. 8-9), and it is verified numerically here.
#include <cstdio>

#include "core/xkblas.hpp"
#include "trace/gantt.hpp"
#include "util/rng.hpp"

using namespace xkblas;

int main() {
  Options opt;
  opt.platform.functional = true;
  opt.tile = 64;
  Context ctx(opt);

  const std::size_t n = 256;
  xkb::Rng rng(7);
  xkb::Matrix<double> L(n, n), X(n, n), S(n, n);
  xkb::fill_random(L, rng);
  xkb::make_diag_dominant(L);
  xkb::fill_random(X, rng);  // X holds B on entry, the solution on exit
  xkb::fill_random(S, rng);

  xkb::Matrix<double> refX = X, refS = S;
  xkb::host::trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                          1.0, L.view(), refX.view());
  xkb::host::gemm<double>(Op::Trans, Op::NoTrans, 1.0, refX.view(),
                          refX.view(), 1.0, refS.view());

  // The composed pipeline: no sync() between the two calls.
  ctx.trsm_async<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                         1.0, L.view(), X.view());
  ctx.gemm_async<double>(Op::Trans, Op::NoTrans, 1.0, X.view(), X.view(), 1.0,
                         S.view());
  ctx.memory_coherent_async<double>(X.view());
  ctx.memory_coherent_async<double>(S.view());
  const double t = ctx.sync();

  std::printf("TRSM + GEMM composition, %zux%zu, %d simulated GPUs\n", n, n,
              ctx.platform().num_gpus());
  std::printf("  virtual time : %.3f ms\n", t * 1e3);
  std::printf("  |X - X_ref|  : %.2e\n", xkb::max_abs_diff(X, refX));
  std::printf("  |S - S_ref|  : %.2e\n", xkb::max_abs_diff(S, refS));

  std::printf("\nGantt chart (K kernel, H HtoD, D DtoH, P PtoP):\n%s",
              xkb::trace::gantt_ascii(ctx.trace(),
                                      ctx.platform().num_gpus(), 100)
                  .c_str());
  const bool ok = xkb::max_abs_diff(X, refX) < 1e-8 &&
                  xkb::max_abs_diff(S, refS) < 1e-6;
  return ok ? 0 : 1;
}
