// Drop-in replacement: a "legacy" blocked Cholesky factorization written
// the way a LAPACK-era application would write it -- raw column-major
// arrays, leading dimensions, character options -- with its BLAS calls
// trapped by the xkblas_* drop-in entry points (the paper's Section IV-D
// scenario, and the composition the intro motivates: real applications
// schedule *several dependent* BLAS calls, not one GEMM).
//
// Right-looking algorithm on the lower triangle, panel width nb:
//   for each panel k:
//     POTF2 on the nb x nb diagonal block   (on the CPU)
//     DTRSM: panel below the diagonal       (on the GPUs)
//     DSYRK: trailing matrix update         (on the GPUs)
//
// The CPU factorization of the diagonal block interleaves with GPU work
// through memory_coherent (GPU -> CPU) and host_overwrite (CPU -> GPU)
// declarations; everything else composes asynchronously.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/compat.hpp"
#include "util/rng.hpp"

using namespace xkblas;

namespace {

/// Unblocked Cholesky of the lower triangle of the nb x nb block at `a`.
bool potf2_lower(double* a, std::size_t nb, std::size_t lda) {
  for (std::size_t j = 0; j < nb; ++j) {
    double d = a[j + j * lda];
    for (std::size_t k = 0; k < j; ++k) d -= a[j + k * lda] * a[j + k * lda];
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a[j + j * lda] = d;
    for (std::size_t i = j + 1; i < nb; ++i) {
      double s = a[i + j * lda];
      for (std::size_t k = 0; k < j; ++k)
        s -= a[i + k * lda] * a[j + k * lda];
      a[i + j * lda] = s / d;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t n = 256, nb = 64;

  // The drop-in context: a simulated DGX-1 with tiles matching the panel.
  Options opt;
  opt.platform.functional = true;
  opt.tile = nb;
  Context ctx(opt);
  xkblas_set_context(&ctx);

  // Build a symmetric positive-definite matrix A = M M^T + n*I.
  xkb::Rng rng(99);
  xkb::Matrix<double> M(n, n), A(n, n);
  xkb::fill_random(M, rng);
  xkb::host::gemm<double>(Op::NoTrans, Op::Trans, 1.0, M.view(), M.view(),
                          0.0, A.view());
  for (std::size_t i = 0; i < n; ++i) A(i, i) += static_cast<double>(n);
  xkb::Matrix<double> orig = A;

  // ---- the legacy blocked factorization, BLAS calls trapped ----
  double* a = A.data();
  for (std::size_t k = 0; k < n; k += nb) {
    double* akk = a + k + k * n;
    // Diagonal block: bring it home, factorize on the CPU, declare the
    // overwrite so the GPUs drop their stale replicas.
    xkblas_memory_coherent_async(nb, nb, akk, n);
    xkblas_sync();
    if (!potf2_lower(akk, nb, n)) {
      std::printf("matrix not positive definite\n");
      return 1;
    }
    xkblas_host_overwrite_async(nb, nb, akk, n);

    const std::size_t rest = n - k - nb;
    if (rest == 0) break;
    // Panel solve: A[k+nb:, k] := A[k+nb:, k] * L_kk^-T.
    xkblas_dtrsm_async('R', 'L', 'T', 'N', rest, nb, 1.0, akk, n,
                       a + (k + nb) + k * n, n);
    // Trailing update: A[k+nb:, k+nb:] -= P P^T (lower triangle).
    xkblas_dsyrk_async('L', 'N', rest, nb, -1.0, a + (k + nb) + k * n, n,
                       1.0, a + (k + nb) + (k + nb) * n, n);
  }
  xkblas_memory_coherent_async(n, n, a, n);
  const double t = xkblas_sync();

  // ---- verify: L L^T must reproduce A on the lower triangle ----
  xkb::Matrix<double> L(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) L(i, j) = A(i, j);
  xkb::Matrix<double> R(n, n);
  xkb::host::gemm<double>(Op::NoTrans, Op::Trans, 1.0, L.view(), L.view(),
                          0.0, R.view());
  double err = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      err = std::max(err, std::abs(R(i, j) - orig(i, j)));

  std::printf("Blocked Cholesky %zux%zu (nb=%zu) via drop-in XKBlas calls\n",
              n, n, nb);
  std::printf("  virtual time       : %.3f ms on %d simulated GPUs\n",
              t * 1e3, ctx.platform().num_gpus());
  std::printf("  max |LL^T - A|     : %.2e (relative to ||A|| ~ %g)\n", err,
              static_cast<double>(n));
  const auto& st = ctx.rt().data_manager().stats();
  std::printf("  transfers          : %zu HtoD, %zu DtoD, %zu DtoH\n", st.h2d,
              st.d2d, st.d2h);
  xkblas_set_context(nullptr);
  return err < 1e-8 * n ? 0 : 1;
}
