// Topology explorer: how the node's interconnect shapes the value of the
// two heuristics.  Runs the same DGEMM workload on four node models
// (DGX-1, PCIe-only, NVSwitch, Summit-like) with the heuristics on and
// off, through the public API -- a compact version of bench/ext_topologies
// that an application developer can adapt to their own machine model.
#include <cstdio>

#include "core/xkblas.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace xkblas;

namespace {

double run_gemm(const xkb::topo::Topology& topo,
                xkb::rt::HeuristicConfig heur) {
  Options opt;
  opt.topology = topo;
  opt.platform.functional = true;
  opt.tile = 64;
  opt.runtime.heuristics = heur;
  Context ctx(opt);

  const std::size_t n = 512;
  xkb::Rng rng(3);
  xkb::Matrix<double> A(n, n), B(n, n), C(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);

  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, A.view(), B.view(),
                         1.0, C.view());
  ctx.memory_coherent_async<double>(C.view());
  return ctx.sync();
}

}  // namespace

int main() {
  const xkb::topo::Topology nodes[] = {
      xkb::topo::Topology::dgx1(),
      xkb::topo::Topology::pcie_only(8),
      xkb::topo::Topology::nvswitch(8),
      xkb::topo::Topology::summit_like(),
  };

  xkb::Table t({"Topology", "GPUs", "heuristics on (ms)",
                "heuristics off (ms)", "gain"});
  for (const auto& topo : nodes) {
    const double on =
        run_gemm(topo, xkb::rt::HeuristicConfig::xkblas());
    const double off =
        run_gemm(topo, xkb::rt::HeuristicConfig::no_heuristic_no_topo());
    const double gain = 100.0 * (off / on - 1.0);
    t.add_row({topo.name(), std::to_string(topo.num_gpus()),
               xkb::Table::num(on * 1e3, 3), xkb::Table::num(off * 1e3, 3),
               (gain >= 0 ? "+" : "") + xkb::Table::num(gain, 1) + "%"});
  }
  std::printf("DGEMM 512 (tiles of 64), heuristics on vs off:\n%s",
              t.to_text().c_str());
  std::printf(
      "\nThe gain concentrates where device-to-device links are fast "
      "relative to the shared host links (DGX-1, NVSwitch); it fades on "
      "Summit-like nodes whose CPU-GPU NVLinks remove the host bottleneck "
      "(the paper's prediction), and can even reverse on PCIe-only nodes "
      "where peer forwarding competes with host traffic for the same "
      "fabric.\n");
  return 0;
}
