// Minimal recursive-descent JSON reader for the repo's own artifacts
// (run ledgers, BENCH trajectory files).  This is deliberately a *reader
// for JSON we wrote ourselves*, not a general-purpose library: it accepts
// strict RFC 8259 input, keeps object keys in insertion order (so a
// parse -> serialize round trip of our canonical artifacts is stable), and
// fails with a line/column-bearing std::runtime_error on anything
// malformed.  Numbers are held as double -- every numeric field our
// emitters produce (printf %.17g / %.15g) survives that representation.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xkb::util {

class JsonValue;

/// Order-preserving object: keys in the order they appeared in the input.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind : unsigned char { kNull, kBool, kNumber, kString, kArray,
                                    kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : kind_(Kind::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : kind_(Kind::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool as_bool() const { expect(Kind::kBool, "bool"); return bool_; }
  double as_number() const { expect(Kind::kNumber, "number"); return num_; }
  const std::string& as_string() const {
    expect(Kind::kString, "string");
    return str_;
  }
  const JsonArray& as_array() const {
    expect(Kind::kArray, "array");
    return *arr_;
  }
  const JsonObject& as_object() const {
    expect(Kind::kObject, "object");
    return *obj_;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : *obj_)
      if (k == key) return &v;
    return nullptr;
  }
  /// Object member that must exist; throws naming the missing key.
  const JsonValue& at(const std::string& key) const {
    const JsonValue* v = find(key);
    if (!v)
      throw std::runtime_error("json: missing required key \"" + key + "\"");
    return *v;
  }

  /// Typed convenience accessors with defaults, for optional fields.
  double number_or(const std::string& key, double dflt) const {
    const JsonValue* v = find(key);
    return v && v->is_number() ? v->num_ : dflt;
  }
  std::string string_or(const std::string& key, std::string dflt) const {
    const JsonValue* v = find(key);
    return v && v->is_string() ? v->str_ : std::move(dflt);
  }

 private:
  void expect(Kind k, const char* what) const {
    if (kind_ != k)
      throw std::runtime_error(std::string("json: value is not a ") + what);
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // shared_ptr keeps JsonValue copyable while JsonObject/JsonArray contain
  // JsonValue (incomplete at member declaration time).
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws std::runtime_error with 1-based line:column
/// on malformed input.
JsonValue json_parse(const std::string& text);

/// json_parse over a whole file; the error message names the path.
JsonValue json_parse_file(const std::string& path);

/// Serialize a value back to compact JSON: insertion-order keys, %.17g
/// numbers (integers render without a fraction), escaped strings.  A
/// parse -> dump -> parse round trip of our canonical artifacts is stable,
/// which is what lets perf_bench --append re-emit prior trajectory points
/// byte-identically.
std::string json_dump(const JsonValue& v);

}  // namespace xkb::util
