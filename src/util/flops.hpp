// Floating-point operation counts for BLAS level-3 routines, used both by the
// benchmark harness (GFlop/s = flops / time) and by the simulator's kernel
// cost model.  Counts follow the standard LAPACK working-note conventions.
#pragma once

#include <cstdint>

namespace xkb {

enum class Blas3 {
  kGemm,
  kSymm,
  kSyrk,
  kSyr2k,
  kTrmm,
  kTrsm,
  kHemm,
  kHerk,
  kHer2k,
};

inline const char* blas3_name(Blas3 r) {
  switch (r) {
    case Blas3::kGemm: return "GEMM";
    case Blas3::kSymm: return "SYMM";
    case Blas3::kSyrk: return "SYRK";
    case Blas3::kSyr2k: return "SYR2K";
    case Blas3::kTrmm: return "TRMM";
    case Blas3::kTrsm: return "TRSM";
    case Blas3::kHemm: return "HEMM";
    case Blas3::kHerk: return "HERK";
    case Blas3::kHer2k: return "HER2K";
  }
  return "?";
}

/// Real-arithmetic flop count of C(m,n) += A(m,k) * B(k,n).
inline double gemm_flops(double m, double n, double k) { return 2.0 * m * n * k; }

/// Flops of the square (n x n), k-inner variants the paper benchmarks.
inline double routine_flops(Blas3 r, double n) {
  switch (r) {
    case Blas3::kGemm: return 2.0 * n * n * n;
    case Blas3::kSymm:
    case Blas3::kHemm: return 2.0 * n * n * n;
    case Blas3::kSyrk:
    case Blas3::kHerk: return n * n * (n + 1.0);
    case Blas3::kSyr2k:
    case Blas3::kHer2k: return 2.0 * n * n * (n + 1.0);
    case Blas3::kTrmm:
    case Blas3::kTrsm: return n * n * n;
  }
  return 0.0;
}

}  // namespace xkb
