// Source annotations consumed by the xkb-tidy static-analysis suite
// (tools/lint/): machine-checkable markers for the two discipline regimes
// the simulator's determinism story depends on.
//
//  * XKB_HOT marks a function on the engine's event hot path (schedule /
//    dispatch / queue maintenance / cache touch-evict).  Inside an XKB_HOT
//    body the `xkb-hot-path-alloc` check forbids heap allocation (non-
//    placement `new`, the malloc family, `std::make_unique`/`make_shared`)
//    and `std::function` construction -- the hot loop's zero-allocation
//    contract, previously enforced only by the perf trajectory.
//
//  * XKB_SILENT marks a function that runs on the engine's *silent* event
//    lane (fault-plan triggers, watchdog ticks).  Inside an XKB_SILENT body
//    the `xkb-silent-lane` check forbids direct calls to observable-state
//    mutators (observable-lane scheduling, trace records, metrics, the
//    engine observer): a silent callback that touched any of them would
//    break the bit-invisible no-op-fault guarantee (DESIGN.md section 8).
//
// Under Clang the markers expand to [[clang::annotate(...)]] so the
// clang-tidy plugin sees them in the AST; under other compilers they expand
// to nothing, and the portable fallback scanner (tools/lint/xkb_lint.cpp)
// keys on the literal macro token instead.  Annotate *definitions*, not
// declarations: both engines scan the function body that follows the
// marker.
//
// Suppression convention (both engines): a finding that is intentional
// carries `// NOLINT(<check>): <one-line justification>` on its line (or
// NOLINTNEXTLINE above it); whole-file exemptions live in
// tools/lint/baseline.txt with a justification per entry.  A bare NOLINT
// with no justification text is itself a lint error.
#pragma once

#if defined(__clang__)
#define XKB_HOT [[clang::annotate("xkb::hot")]]
#define XKB_SILENT [[clang::annotate("xkb::silent")]]
#else
#define XKB_HOT
#define XKB_SILENT
#endif

/// Compile-time guard that a hot-path callback's captures stay inside
/// sim::SmallFn's inline buffer (no heap fallback when it is scheduled).
/// Use at the site where the lambda is built, before handing it to the
/// engine; requires sim/small_fn.hpp to be included by the user.
#define XKB_ASSERT_INLINE_CAPTURE(cb)                              \
  static_assert(::xkb::sim::SmallFn::fits_inline<decltype(cb)>(),  \
                #cb                                                \
                " must fit SmallFn's inline buffer: growing it would put " \
                "a malloc/free pair on the engine hot path")
