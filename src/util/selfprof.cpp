#include "util/selfprof.hpp"

#include <cinttypes>
#include <cstdio>

namespace xkb::prof {

namespace detail {
SelfProfiler* g_active = nullptr;
}  // namespace detail

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kEngineRun: return "engine.run";
    case Phase::kQueueAdopt: return "queue.adopt";
    case Phase::kQueueRebuild: return "queue.rebuild";
    case Phase::kCacheTouch: return "cache.touch";
    case Phase::kCacheReserve: return "cache.reserve";
    case Phase::kDmFetch: return "dm.fetch";
    case Phase::kCount: break;
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kEngineEvents: return "engine.events";
    case Counter::kArenaSlabs: return "arena.slabs";
    case Counter::kPeakPending: return "queue.peak_pending";
    case Counter::kCount: break;
  }
  return "?";
}

namespace {

/// Estimated total over *all* calls: timed calls carry the measured time;
/// untimed calls are assumed to match the sampled mean.
double est_total_s(const PhaseStats& st) {
  if (st.timed_calls == 0) return 0.0;
  const double mean_ns =
      static_cast<double>(st.total_ns) / static_cast<double>(st.timed_calls);
  return mean_ns * static_cast<double>(st.calls) * 1e-9;
}

}  // namespace

std::string SelfProfiler::table_text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-14s %12s %10s %11s %9s %9s\n", "phase",
                "calls", "timed", "est total", "mean", "max");
  out += line;
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const PhaseStats& st = phases_[i];
    const double mean_ns =
        st.timed_calls
            ? static_cast<double>(st.total_ns) /
                  static_cast<double>(st.timed_calls)
            : 0.0;
    std::snprintf(line, sizeof line,
                  "%-14s %12" PRIu64 " %10" PRIu64 " %9.3fms %7.0fns %7.0fns\n",
                  phase_name(static_cast<Phase>(i)), st.calls, st.timed_calls,
                  est_total_s(st) * 1e3, mean_ns,
                  static_cast<double>(st.max_ns));
    out += line;
  }
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    std::snprintf(line, sizeof line, "%-14s %12" PRIu64 "\n",
                  counter_name(static_cast<Counter>(i)), counters_[i]);
    out += line;
  }
  return out;
}

std::string SelfProfiler::to_json_fragment() const {
  std::string out = "{\"phases\":[";
  char buf[256];
  for (int i = 0; i < static_cast<int>(Phase::kCount); ++i) {
    const PhaseStats& st = phases_[i];
    const double mean_ns =
        st.timed_calls
            ? static_cast<double>(st.total_ns) /
                  static_cast<double>(st.timed_calls)
            : 0.0;
    std::snprintf(
        buf, sizeof buf,
        "%s{\"phase\":\"%s\",\"calls\":%" PRIu64 ",\"timed_calls\":%" PRIu64
        ",\"est_total_s\":%.9g,\"mean_ns\":%.6g,\"max_ns\":%" PRIu64 "}",
        i ? "," : "", phase_name(static_cast<Phase>(i)), st.calls,
        st.timed_calls, est_total_s(st), mean_ns, st.max_ns);
    out += buf;
  }
  out += "],\"counters\":{";
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRIu64, i ? "," : "",
                  counter_name(static_cast<Counter>(i)), counters_[i]);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace xkb::prof
