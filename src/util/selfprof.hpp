// Host-side self-profiler: where is the *simulator itself* spending wall
// time?  The virtual clock answers nothing about that -- a run that models
// 2 seconds of GPU work may burn 20 host-seconds in queue maintenance --
// so this module hangs scoped wall-clock timers and a handful of
// allocation/queue-depth counters on the XKB_HOT paths (engine dispatch,
// calendar-queue adopt/rebuild, cache touch/reserve, DataManager fetch).
//
// Discipline: the profiler lives *strictly outside the virtual-time lane*.
// Readings never feed an event time, a scheduling decision, the trace, or
// the check hash -- with the profiler active, every pinned event-stream
// hash stays bit-identical (test_determinism pins this).  The wall-clock
// reads below are therefore sanctioned exceptions to xkb-wallclock-in-sim,
// each carrying its justification inline.
//
// Cost model: detached (the default) every instrumentation point is one
// load-and-branch on a global pointer.  Attached, ultra-hot sites (cache
// touch, bucket adopt) only *count* every call and time a 1-in-2^k sample
// of them; rare sites (queue rebuild) and long scopes (the engine run
// loop) time every call.  The measured attach cost is held under the same
// 1.3x budget as the obs layer (check_matrix --selfprof --overhead).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/annotations.hpp"

namespace xkb::prof {

/// Instrumented host-side phases, one slot each.
enum class Phase : int {
  kEngineRun = 0,   ///< Engine::run dispatch loop (whole-loop scope)
  kQueueAdopt,      ///< calendar-queue bucket adoption (sampled 1/64)
  kQueueRebuild,    ///< calendar-queue window rebuild over overflow
  kCacheTouch,      ///< DeviceCache LRU touch (sampled 1/64)
  kCacheReserve,    ///< DeviceCache reserve incl. eviction walk (1/16)
  kDmFetch,         ///< DataManager fetch planning (sampled 1/16)
  kCount
};

/// Monotonic counters without a time dimension.
enum class Counter : int {
  kEngineEvents = 0,  ///< events dispatched inside timed run scopes
  kArenaSlabs,        ///< event-arena slab allocations (hot-path allocs)
  kPeakPending,       ///< high-water pending-event count (max, not sum)
  kCount
};

struct PhaseStats {
  std::uint64_t calls = 0;        ///< every entry into the scope
  std::uint64_t timed_calls = 0;  ///< entries that read the clock
  std::uint64_t total_ns = 0;     ///< wall nanoseconds over timed calls
  std::uint64_t max_ns = 0;       ///< slowest timed call
};

const char* phase_name(Phase p);
const char* counter_name(Counter c);

/// Per-phase sampling shift: time 1 of every 2^shift calls.  0 = every
/// call.  Shifts keep the attached cost of ~10ns-scale scopes negligible
/// while the call count (exact) still scales the sampled mean.
constexpr std::array<unsigned, static_cast<int>(Phase::kCount)>
    kSampleShift = {0, 6, 0, 6, 4, 4};

class SelfProfiler;

namespace detail {
/// The active profiler, or nullptr (the overwhelmingly common case).  A
/// plain global so the hot-path guard is one relaxed load, mirroring the
/// null-checker contract of xkb::check / xkb::obs.
extern SelfProfiler* g_active;

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now()  // NOLINT(xkb-wallclock-in-sim): host-side self-profiler; readings never feed virtual time, scheduling, the trace, or the check hash (test_determinism pins hash invariance with the profiler attached)
              .time_since_epoch())
          .count());
}
}  // namespace detail

/// Aggregated host-side self-times.  Create one, activate() it around the
/// region of interest, then render with table_text()/to_json_fragment().
class SelfProfiler {
 public:
  /// The attached profiler, or nullptr when profiling is off.
  static SelfProfiler* active() { return detail::g_active; }
  /// Attach `p` (detach with nullptr).  Not reference-counted: callers
  /// scope activation around a whole run, never nest.
  static void activate(SelfProfiler* p) { detail::g_active = p; }

  void clear() {
    phases_.fill(PhaseStats{});
    counters_.fill(0);
  }

  PhaseStats& slot(Phase p) { return phases_[static_cast<int>(p)]; }
  const PhaseStats& slot(Phase p) const {
    return phases_[static_cast<int>(p)];
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<int>(c)];
  }

  XKB_HOT void count(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<int>(c)] += n;
  }
  XKB_HOT void note_max(Counter c, std::uint64_t v) {
    std::uint64_t& slot = counters_[static_cast<int>(c)];
    if (v > slot) slot = v;
  }

  /// Fixed-width per-phase self-time table (calls, timed share, total,
  /// mean, max) followed by the counters.
  std::string table_text() const;
  /// JSON object fragment `{"phases":[...],"counters":{...}}` -- embedded
  /// by perf_bench into BENCH_selfprof.json and by the run ledger.
  std::string to_json_fragment() const;

 private:
  std::array<PhaseStats, static_cast<int>(Phase::kCount)> phases_{};
  std::array<std::uint64_t, static_cast<int>(Counter::kCount)> counters_{};
};

/// RAII scope timer for one Phase.  Construction/destruction cost when no
/// profiler is attached: one global load and branch each.
class ScopedTimer {
 public:
  XKB_HOT explicit ScopedTimer(Phase p) : p_(p) {
    SelfProfiler* sp = detail::g_active;
    if (!sp) return;
    sp_ = sp;
    PhaseStats& st = sp->slot(p);
    ++st.calls;
    const unsigned shift = kSampleShift[static_cast<int>(p)];
    const std::uint64_t mask = (1ull << shift) - 1ull;
    if ((st.calls & mask) == 0) start_ = detail::now_ns();
  }
  XKB_HOT ~ScopedTimer() {
    if (start_ == 0) return;
    const std::uint64_t d = detail::now_ns() - start_;
    PhaseStats& st = sp_->slot(p_);
    ++st.timed_calls;
    st.total_ns += d;
    if (d > st.max_ns) st.max_ns = d;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Phase p_;
  SelfProfiler* sp_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Counter bump that compiles to a load-test-add; safe on XKB_HOT paths.
XKB_HOT inline void count(Counter c, std::uint64_t n = 1) {
  if (SelfProfiler* sp = detail::g_active) sp->count(c, n);
}
XKB_HOT inline void note_max(Counter c, std::uint64_t v) {
  if (SelfProfiler* sp = detail::g_active) sp->note_max(c, v);
}

}  // namespace xkb::prof
