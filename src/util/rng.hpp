// Deterministic, seedable random number generation for tests and workloads.
//
// All randomness in the project flows through SplitMix64 so that every
// experiment is exactly reproducible from its seed (a requirement for the
// deterministic discrete-event simulation and for property tests that assert
// bit-identical numeric results across scheduler configurations).
#pragma once

#include <complex>
#include <cstdint>
#include <string_view>

#include "util/matrix.hpp"

namespace xkb {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// FNV-1a of a name, for labelled sub-streams (`substream(Rng::key("dnn"))`).
  static constexpr std::uint64_t key(std::string_view name) {
    std::uint64_t h = 14695981039346656037ull;
    for (char c : name)
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
  }

  /// Derive an independent child stream keyed by `key`, without advancing
  /// this generator.  The child seed is a SplitMix64 finalize of
  /// (state, key), so distinct keys give uncorrelated streams and drawing
  /// from one sub-stream never perturbs another -- the property the
  /// workload generators rely on: adding a `dnn` graph to an experiment
  /// must not change the edges of its `random` graph.
  Rng substream(std::uint64_t key) const {
    std::uint64_t z = state_ + (key + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }
  Rng substream(std::string_view name) const { return substream(key(name)); }

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  std::uint64_t state_;
};

namespace detail {
template <typename T>
inline T random_scalar(Rng& rng) {
  return static_cast<T>(rng.uniform(-1.0, 1.0));
}
template <>
inline std::complex<float> random_scalar<std::complex<float>>(Rng& rng) {
  return {static_cast<float>(rng.uniform(-1.0, 1.0)),
          static_cast<float>(rng.uniform(-1.0, 1.0))};
}
template <>
inline std::complex<double> random_scalar<std::complex<double>>(Rng& rng) {
  return {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
}
}  // namespace detail

/// Fill a matrix with uniform values in [-1, 1) (both parts for complex).
template <typename T>
void fill_random(Matrix<T>& a, Rng& rng) {
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      a(i, j) = detail::random_scalar<T>(rng);
}

/// Make a matrix diagonally dominant (for well-conditioned TRSM tests).
template <typename T>
void make_diag_dominant(Matrix<T>& a) {
  const std::size_t n = a.rows() < a.cols() ? a.rows() : a.cols();
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<T>(static_cast<real_t<T>>(2 * a.rows()));
}

}  // namespace xkb
