#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace xkb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c]
          << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace xkb
