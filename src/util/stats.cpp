#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace xkb {

namespace {
// Two-sided 95 % Student-t critical values for df = 1..30.
constexpr double kT95[] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
}  // namespace

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() < 2) return s;
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  const std::size_t df = xs.size() - 1;
  const double t = df <= 30 ? kT95[df - 1] : 1.96;
  s.ci95_half = t * s.stddev / std::sqrt(static_cast<double>(xs.size()));
  return s;
}

}  // namespace xkb
