// Column-major (LAPACK layout) dense matrix storage and non-owning views.
//
// The paper's XKBlas supports only the LAPACK matrix layout: a matrix is a
// memory region described by (m, n, ld, wordsize) where consecutive elements
// of a column are contiguous and columns are `ld` elements apart.  Sub-matrix
// decomposition keeps the same representation (same ld, shifted origin),
// which is the property that lets XKBlas partition legacy matrices without
// copies.  `MatrixView` is exactly the paper's "memory view" tuple.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace xkb {

/// Non-owning view of a column-major matrix block: element (i,j) lives at
/// data[i + j*ld].  This is the paper's memory view (m, n, ld, wordsize).
template <typename T>
struct MatrixView {
  T* data = nullptr;
  std::size_t m = 0;   ///< rows
  std::size_t n = 0;   ///< columns
  std::size_t ld = 0;  ///< leading dimension (>= m)

  MatrixView() = default;
  MatrixView(T* d, std::size_t m_, std::size_t n_, std::size_t ld_)
      : data(d), m(m_), n(n_), ld(ld_) {
    assert(ld >= m || m == 0);
  }

  /// Mutable views convert to const views implicitly.
  template <typename U = T>
    requires(!std::is_const_v<U>)
  operator MatrixView<const U>() const {
    return MatrixView<const U>(data, m, n, ld);
  }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < m && j < n);
    return data[i + j * ld];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < m && j < n);
    return data[i + j * ld];
  }

  /// Sub-block of dimensions (bm, bn) whose (0,0) is at (i0, j0).
  MatrixView block(std::size_t i0, std::size_t j0, std::size_t bm,
                   std::size_t bn) const {
    assert(i0 + bm <= m && j0 + bn <= n);
    return MatrixView(data + i0 + j0 * ld, bm, bn, ld);
  }

  std::size_t bytes() const { return m * n * sizeof(T); }
};

/// Owning column-major matrix.  Storage is dense (ld == m).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t m, std::size_t n, T init = T{})
      : m_(m), n_(n), data_(m * n, init) {}

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }
  std::size_t ld() const { return m_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(std::size_t i, std::size_t j) {
    assert(i < m_ && j < n_);
    return data_[i + j * m_];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    assert(i < m_ && j < n_);
    return data_[i + j * m_];
  }

  MatrixView<T> view() { return MatrixView<T>(data_.data(), m_, n_, m_); }
  MatrixView<const T> view() const {
    return MatrixView<const T>(data_.data(), m_, n_, m_);
  }
  MatrixView<T> block(std::size_t i0, std::size_t j0, std::size_t bm,
                      std::size_t bn) {
    return view().block(i0, j0, bm, bn);
  }

 private:
  std::size_t m_ = 0, n_ = 0;
  std::vector<T> data_;
};

namespace detail {
template <typename T>
struct RealOf {
  using type = T;
};
template <typename T>
struct RealOf<std::complex<T>> {
  using type = T;
};
}  // namespace detail

/// Scalar type of the real part of T (T itself for real types).
template <typename T>
using real_t = typename detail::RealOf<T>::type;

/// Maximum absolute element-wise difference between two views of equal shape.
template <typename T>
real_t<T> max_abs_diff(const MatrixView<const T>& a,
                       const MatrixView<const T>& b) {
  assert(a.m == b.m && a.n == b.n);
  real_t<T> worst = 0;
  for (std::size_t j = 0; j < a.n; ++j)
    for (std::size_t i = 0; i < a.m; ++i) {
      real_t<T> d = std::abs(a(i, j) - b(i, j));
      if (d > worst) worst = d;
    }
  return worst;
}

template <typename T>
real_t<T> max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  return max_abs_diff<T>(a.view(), b.view());
}

}  // namespace xkb
