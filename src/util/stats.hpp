// Small statistics helpers used by the benchmark harness: mean, standard
// deviation and the 95 % confidence interval the paper reports as error bars.
#pragma once

#include <cstddef>
#include <vector>

namespace xkb {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;     ///< sample standard deviation
  double ci95_half = 0.0;  ///< half-width of the 95 % confidence interval
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

/// Summarise a sample.  The 95 % CI uses Student-t critical values for small
/// n (the paper averages 8 runs), falling back to 1.96 for large samples.
Summary summarize(const std::vector<double>& xs);

}  // namespace xkb
