// Plain-text table rendering for the benchmark harness: the figure/table
// binaries print the same rows/series the paper reports, in aligned columns
// plus optional CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace xkb {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Aligned fixed-width rendering.
  std::string to_text() const;
  /// Comma-separated rendering (for plotting scripts).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xkb
