#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xkb::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json: " << why << " at " << line << ":" << col;
    throw std::runtime_error(os.str());
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char get() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_++];
  }
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }
  void expect_lit(const char* lit) {
    for (const char* p = lit; *p; ++p)
      if (pos_ >= s_.size() || s_[pos_++] != *p)
        fail(std::string("expected literal \"") + lit + "\"");
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 200 levels");
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = JsonValue(parse_string()); break;
      case 't': expect_lit("true"); v = JsonValue(true); break;
      case 'f': expect_lit("false"); v = JsonValue(false); break;
      case 'n': expect_lit("null"); v = JsonValue(); break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    get();  // '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (get() != ':') fail("expected ':' after object key");
      skip_ws();
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    get();  // '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return JsonValue(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    get();  // '"'
    std::string out;
    for (;;) {
      const char c = get();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = get();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = get();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return v;
  }

  /// \uXXXX (with surrogate pairing) -> UTF-8 bytes.
  void append_escape(std::string& out) {
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired UTF-16 surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired UTF-16 surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected a value");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected digits after decimal point");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected digits in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    return JsonValue(std::strtod(tok.c_str(), nullptr));
  }

  static constexpr int kMaxDepth = 200;
  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return json_parse(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " (" + path + ")");
  }
}

namespace {

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);  // multi-byte UTF-8 passes through unchanged
        }
    }
  }
  out->push_back('"');
}

void dump_value(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_number();
      char buf[32];
      // Integers (the common case in our artifacts) render without a
      // fraction; everything else keeps full double precision.
      if (d == static_cast<double>(static_cast<long long>(d)) &&
          d >= -9.0e15 && d <= 9.0e15)
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
      else
        std::snprintf(buf, sizeof buf, "%.17g", d);
      *out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      dump_string(v.as_string(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      const JsonArray& a = v.as_array();
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) *out += ", ";
        dump_value(a[i], out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      const JsonObject& o = v.as_object();
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) *out += ", ";
        dump_string(o[i].first, out);
        *out += ": ";
        dump_value(o[i].second, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string json_dump(const JsonValue& v) {
  std::string out;
  dump_value(v, &out);
  return out;
}

}  // namespace xkb::util
