#include "baselines/workload_entry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "workload/bridge.hpp"

namespace xkb::baselines {

BenchResult run_workload(const ModelSpec& spec, const wl::WorkloadGraph& graph,
                         const WorkloadBenchConfig& cfg) {
  graph.validate();
  BenchResult res;

  rt::PerfModel perf = cfg.perf;
  perf.peak_flops_dp *= spec.peak_scale;

  rt::PlatformOptions popt;
  popt.functional = false;
  popt.kernel_streams = cfg.kernel_streams;
  popt.device_capacity = cfg.device_capacity;
  popt.eviction = spec.eviction;
  rt::Platform plat(cfg.topology, perf, popt);

  std::shared_ptr<obs::Observability> o;
  if (cfg.obs.enabled) {
    o = std::make_shared<obs::Observability>(plat.num_gpus());
    plat.set_obs(o.get());  // before the Runtime: it caches series pointers
  }

  std::unique_ptr<fault::Injector> inj;
  if (!cfg.fault_plan.empty()) {
    inj = std::make_unique<fault::Injector>(cfg.fault_plan);
    plat.set_fault(inj.get());
  }

  rt::RuntimeOptions ropt;
  ropt.heuristics = spec.heur;
  ropt.drop_inputs_after_use = spec.drop_inputs;
  ropt.task_overhead = spec.task_overhead;
  ropt.prepare_window = spec.prepare_window;
  ropt.check = cfg.check;
  std::unique_ptr<rt::Scheduler> sched;
  if (spec.dmdas)
    sched = std::make_unique<rt::DmdasScheduler>();
  else
    sched = std::make_unique<rt::OwnerComputesScheduler>(spec.stealing);
  rt::Runtime runtime(plat, std::move(sched), ropt);

  // Placement: grid-placement graphs (the composition capture) map through
  // the same (P, Q) block-cyclic grid as the BLAS emitters; layered graphs
  // spread layer points round-robin so neighbouring points land on
  // neighbouring devices and stencil halos cross real links.
  wl::BridgeOptions bopt;
  bopt.flush_outputs = spec.flush_outputs_each_task;
  std::function<int(std::size_t, std::size_t)> place;
  if (graph.grid_placement) {
    auto [P, Q] = blas::default_grid(plat.num_gpus());
    place = [P = P, Q = Q](std::size_t i, std::size_t j) {
      return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
             static_cast<int>(j % static_cast<std::size_t>(Q));
    };
  } else {
    place = [ngpus = plat.num_gpus()](std::size_t i, std::size_t) {
      return static_cast<int>(i % static_cast<std::size_t>(ngpus));
    };
  }
  if (spec.static_block_cyclic)
    bopt.force_place = place;
  else
    bopt.home = place;
  wl::Bridge bridge(runtime, graph, std::move(bopt));

  const auto ledger_meta = [&] {
    obs::LedgerMeta lm;
    lm.lib = spec.name;
    lm.routine = graph.name;
    lm.scenario = cfg.data_on_device ? "data-on-device" : "data-on-host";
    lm.seed = cfg.fault_plan.seed;
    return lm;
  };
  // Register the run identity so a watchdog-stall dump composed inside the
  // runtime still names the lib/routine.
  if (o) o->set_ledger_meta(ledger_meta());
  // Same flight-dump contract as run_with_spec: Runtime::on_stuck stashes
  // the watchdog-stall dump first ("first dump wins"); this fills in for
  // failures that bypassed it.
  const auto compose_flight = [&](const std::string& reason) {
    if (!o) return;
    if (o->flight_dump().empty()) {
      o->finalize_registry();
      const obs::RunLedger snap = obs::build_ledger(
          plat.trace(), plat.topology(), o.get(), 0, ledger_meta());
      o->set_flight_dump(o->flight().dump_json(reason, obs::ledger_json(snap)));
    }
    res.flight_json = o->flight_dump();
    res.obs = o;
  };

  double t0 = 0.0;
  rt::TransferStats s0{};  // stats issued before the measured region
  try {
    if (cfg.data_on_device) {
      bridge.distribute();
      t0 = runtime.run();
      plat.trace().clear();
      if (o) o->clear();  // observe only the measured (compute) phase
      s0 = runtime.data_manager().stats();
    }
    bridge.emit();
    if (spec.coherent_at_end && !cfg.data_on_device) bridge.coherent();
    const double t1 = runtime.run();
    res.seconds = t1 - t0 + spec.call_overhead;
    res.tflops = graph.total_flops() / res.seconds / 1e12;
  } catch (const mem::OutOfDeviceMemory& e) {
    res.failed = true;
    res.error = e.what();
    compose_flight(std::string("oom: ") + e.what());
    return res;
  } catch (const fault::FaultError& e) {
    res.failed = true;
    res.error = e.what();
    res.task_remaps = runtime.task_remaps();
    res.task_replays = runtime.task_replays();
    compose_flight(std::string("fault: ") + e.what());
    return res;
  }

  res.breakdown = plat.trace().breakdown();
  for (int g = 0; g < plat.num_gpus(); ++g)
    res.per_gpu.push_back(plat.trace().breakdown(g));
  res.transfers = runtime.data_manager().stats();
  res.steals = runtime.steals();
  res.tasks = runtime.tasks_completed();
  res.events_processed = plat.engine().events_processed();
  res.events_observable = plat.engine().observable_processed();
  res.events_peak_pending = plat.engine().peak_pending();
  if (inj) {
    res.task_remaps = runtime.task_remaps();
    res.task_replays = runtime.task_replays();
    const rt::TransferStats& ts = res.transfers;
    std::ostringstream js;
    js << "{\"injector\":" << inj->counters_json()
       << ",\"unconsumed_xfail\":" << inj->unconsumed_transfer_faults()
       << ",\"recovery\":{\"transfer_aborts\":" << ts.transfer_aborts
       << ",\"transfer_retries\":" << ts.transfer_retries
       << ",\"waiter_replans\":" << ts.waiter_replans
       << ",\"task_remaps\":" << res.task_remaps
       << ",\"task_replays\":" << res.task_replays << "}}";
    res.fault_json = js.str();
  }
  if (const check::Checker* c = runtime.checker()) {
    res.check_ok = c->ok();
    res.check_violations = c->total_violations();
    res.check_report = c->report();
    res.event_hash = c->event_hash();
  }
  if (o) {
    o->finalize_registry();
    const obs::RunReport rep =
        obs::build_report(plat.trace(), plat.topology(), o.get());
    res.metrics_json = obs::report_json(rep, o.get());
    res.ledger_json = obs::ledger_json(obs::build_ledger(
        plat.trace(), plat.topology(), o.get(), res.event_hash,
        ledger_meta()));
    res.obs = o;
    if (runtime.checker()) {
      const rt::TransferStats& ts = runtime.data_manager().stats();
      obs::Observability::ReconcileView v;
      v.h2d = ts.h2d - s0.h2d;
      v.d2h = ts.d2h - s0.d2h;
      v.d2d = ts.d2d - s0.d2d;
      v.optimistic_waits = ts.optimistic_waits - s0.optimistic_waits;
      v.forced_waits = ts.forced_waits - s0.forced_waits;
      const trace::Breakdown b = plat.trace().breakdown();
      v.htod = b.htod;
      v.dtoh = b.dtoh;
      v.ptop = b.ptop;
      v.kernel = b.kernel;
      v.htod_bytes = plat.trace().bytes(trace::OpKind::kHtoD);
      v.dtoh_bytes = plat.trace().bytes(trace::OpKind::kDtoH);
      v.ptop_bytes = plat.trace().bytes(trace::OpKind::kPtoP);
      const std::vector<std::string> mismatches = o->reconcile(v);
      if (!mismatches.empty()) {
        res.check_ok = false;
        res.check_violations += mismatches.size();
        for (const std::string& m : mismatches)
          res.check_report += "[obs] " + m + "\n";
      }
    }
  }
  return res;
}

std::vector<std::string> library_names() {
  return {"xkblas",    "blasx",     "chameleon-tile", "chameleon-lapack",
          "cublas-xt", "cublas-mg", "dplasma",        "slate"};
}

ModelSpec spec_for_library(const std::string& name, rt::HeuristicConfig heur) {
  std::unique_ptr<LibraryModel> model;
  if (name == "xkblas") model = make_xkblas(heur);
  else if (name == "blasx") model = make_blasx();
  else if (name == "chameleon-tile") model = make_chameleon(true);
  else if (name == "chameleon-lapack") model = make_chameleon(false);
  else if (name == "cublas-xt") model = make_cublasxt();
  else if (name == "cublas-mg") model = make_cublasmg();
  else if (name == "dplasma") model = make_dplasma();
  else if (name == "slate") model = make_slate();
  if (!model) {
    std::string all;
    for (const std::string& n : library_names())
      all += (all.empty() ? "" : "|") + n;
    throw std::invalid_argument("unknown library '" + name +
                                "' (accepted: " + all + ")");
  }
  auto* sm = dynamic_cast<SpecModel*>(model.get());
  if (!sm)
    throw std::invalid_argument("library '" + name +
                                "' is not spec-backed; workloads need a "
                                "ModelSpec-described model");
  return sm->spec();
}

}  // namespace xkb::baselines
