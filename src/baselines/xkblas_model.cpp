// XKBlas: the paper's library -- owner-computes placement with XKaapi work
// stealing, lazy host coherency, and the two heuristics under test
// (topology-aware source selection + optimistic device-to-device
// forwarding).  Heuristic variants of Fig. 3 are produced by passing the
// corresponding HeuristicConfig.
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_xkblas(rt::HeuristicConfig heur,
                                          std::string suffix) {
  ModelSpec s;
  s.name = "XKBlas" + suffix;
  s.heur = heur;
  s.stealing = true;
  // XKaapi's runtime is lightweight; the paper credits this for XKBlas's
  // reactivity on small matrices.
  s.task_overhead = 3e-6;
  // XKaapi prefetches deeply ahead of execution (asynchronous tasks are
  // known well in advance), which is what lets the optimistic heuristic
  // catch so many concurrent first touches.
  s.prepare_window = 16;
  s.call_overhead = 1e-3;
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
