// DPLASMA over PaRSEC: static 2D block-cyclic data distribution with the
// hierarchical DAG scheduler.  GPU support (GEMM only) stages transfers
// through host memory, without topology-aware peer selection.
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_dplasma() {
  ModelSpec s;
  s.name = "DPLASMA";
  s.heur = {rt::SourcePolicy::kHostOnly, /*optimistic=*/false};
  s.static_block_cyclic = true;
  s.stealing = false;
  s.task_overhead = 10e-6;
  s.call_overhead = 100e-3;  // PaRSEC DAG instantiation
  s.routines = {Blas3::kGemm};  // GPU-enabled GEMM only
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
