// Chameleon over StarPU with the dmdas scheduler (the configuration of the
// paper's experiments: 2 concurrent kernels per GPU, performance models
// pre-trained).  dmdas places each ready task where its expected completion
// time -- including estimated transfer cost -- is minimal, which balances
// SYRK/SYR2K better than XKaapi's work stealing (the crossover of Fig. 5).
//
// Two variants, as in the paper:
//   * Chameleon Tile: operands already in Chameleon's internal tile layout.
//   * Chameleon LAPACK: operands in LAPACK layout; the library converts
//     to/from tile layout on the host before and after the computation,
//     which is what makes it ~5x slower end to end.
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_chameleon(bool tile_layout) {
  ModelSpec s;
  s.name = tile_layout ? "Chameleon Tile" : "Chameleon LAPACK";
  s.dmdas = true;
  s.heur = {rt::SourcePolicy::kFirstValid, /*optimistic=*/false};
  s.task_overhead = 20e-6;  // StarPU per-task submission/scheduling cost
  s.call_overhead = 80e-3;  // StarPU graph unrolling + model lookups
  s.lapack_conversion = !tile_layout;
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
