#include "baselines/composition.hpp"

#include "trace/gantt.hpp"

namespace xkb::baselines {

CompositionResult run_trsm_gemm(const ModelSpec& spec, std::size_t n,
                                std::size_t tile, bool sync_between_calls,
                                bool want_gantt, int gantt_width,
                                bool with_check) {
  CompositionResult out;

  rt::PerfModel perf;
  perf.peak_flops_dp *= spec.peak_scale;
  rt::PlatformOptions popt;
  rt::Platform plat(topo::Topology::dgx1(), perf, popt);
  rt::RuntimeOptions ropt;
  ropt.heuristics = spec.heur;
  ropt.drop_inputs_after_use = spec.drop_inputs;
  ropt.task_overhead = spec.task_overhead;
  ropt.prepare_window = spec.prepare_window;
  ropt.check.enabled = with_check;
  std::unique_ptr<rt::Scheduler> sched;
  if (spec.dmdas)
    sched = std::make_unique<rt::DmdasScheduler>();
  else
    sched = std::make_unique<rt::OwnerComputesScheduler>(spec.stealing);
  rt::Runtime runtime(plat, std::move(sched), ropt);

  SymbolicMatrix<double> A(n, n, 0), B(n, n, 1), C(n, n, 2), D(n, n, 3);

  blas::EmitOptions emit;
  emit.tile = tile;
  emit.attach_functional = false;
  emit.flush_outputs_each_task = spec.flush_outputs_each_task;
  auto [P, Q] = blas::default_grid(plat.num_gpus());
  auto bc = [P = P, Q = Q](std::size_t i, std::size_t j) {
    return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
           static_cast<int>(j % static_cast<std::size_t>(Q));
  };
  if (spec.static_block_cyclic)
    emit.force_place = bc;
  else
    emit.home = bc;

  auto coherent = [&](MatrixView<const double> m) {
    for (std::size_t i = 0; i < m.m; i += tile)
      for (std::size_t j = 0; j < m.n; j += tile)
        runtime.coherent_async(blas::detail::tile_handle(
            runtime, m, i, j, std::min(tile, m.m - i),
            std::min(tile, m.n - j)));
  };

  blas::tiled_trsm<double>(runtime, Side::Left, Uplo::Lower, Op::NoTrans,
                           Diag::NonUnit, 1.0, A.cview(), B.view(), emit);
  if (sync_between_calls) {
    // Synchronous inter-call semantics: results must be coherent on the
    // host before the next routine starts (paper Section IV-F).
    coherent(B.cview());
    runtime.run();
  }
  blas::tiled_gemm<double>(runtime, Op::NoTrans, Op::NoTrans, 1.0, B.cview(),
                           D.cview(), 1.0, C.view(), emit);
  coherent(B.cview());
  coherent(C.cview());
  const double t = runtime.run();

  const double nn = static_cast<double>(n);
  const double flops = nn * nn * nn + 2.0 * nn * nn * nn;  // TRSM + GEMM
  out.seconds = t + spec.call_overhead * (sync_between_calls ? 2.0 : 1.0);
  out.tflops = flops / out.seconds / 1e12;
  out.breakdown = plat.trace().breakdown();
  if (const check::Checker* c = runtime.checker()) {
    out.check_ok = c->ok();
    out.event_hash = c->event_hash();
  }
  if (want_gantt)
    out.gantt = trace::gantt_ascii(plat.trace(), plat.num_gpus(), gantt_width);
  return out;
}

}  // namespace xkb::baselines
