// The composition benchmark of the paper's Section IV-F (Figs. 8-9):
// TRSM followed by GEMM on shared operands, submitted back to back.
//
// XKBlas composes the two calls in one task graph (point-to-point
// dependencies through the shared B tiles, no global barrier); libraries
// with synchronous inter-call semantics drain the device between the calls,
// which is the synchronisation gap visible in the paper's Gantt chart.
#pragma once

#include <string>

#include "baselines/common.hpp"

namespace xkb::baselines {

struct CompositionResult {
  double seconds = 0.0;
  double tflops = 0.0;
  trace::Breakdown breakdown;
  std::string gantt;  ///< ASCII Gantt chart (filled when requested)
  // Populated only when run_trsm_gemm was asked to run under xkb::check.
  bool check_ok = true;
  std::uint64_t event_hash = 0;  ///< FNV-1a over the simulated event stream
};

/// Run  B := A^-1 B  (TRSM)  then  C := B D + C  (GEMM) under `spec`.
/// `sync_between_calls` inserts a full drain between the two routines
/// (Chameleon-style); XKBlas runs them as one composed graph.  `with_check`
/// attaches the validation layer and captures the event-stream hash (the
/// reference the workload-bridge replay of this graph is compared against).
CompositionResult run_trsm_gemm(const ModelSpec& spec, std::size_t n,
                                std::size_t tile, bool sync_between_calls,
                                bool want_gantt = false,
                                int gantt_width = 100,
                                bool with_check = false);

}  // namespace xkb::baselines
