// BLASX: a multi-GPU level-3 BLAS with a two-level software cache that
// favours GPU-to-GPU transfers between devices sharing a PCIe switch
// (the L2 cache level).  The public code only ships GEMM, and the paper
// reports memory allocation failures above N = 45000 -- both reproduced
// here.
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_blasx() {
  ModelSpec s;
  s.name = "BLASX";
  s.heur = {rt::SourcePolicy::kSwitchPeer, /*optimistic=*/false};
  s.stealing = true;  // BLASX schedules tiles dynamically
  s.task_overhead = 4e-6;
  s.call_overhead = 10e-3;
  s.routines = {Blas3::kGemm};  // public source only contains GEMM
  // The public build exhausts device memory on matrices larger than 45000
  // (paper Fig. 5 note); reproduce the documented failure threshold.
  s.max_n = 45000;
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
