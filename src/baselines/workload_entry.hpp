// The generic-DAG entry point next to composition.cpp: run any xkb::wl
// workload graph under a library model's policy spec, with the exact same
// run skeleton, scenarios and result capture as the BLAS benchmarks -- so a
// stencil sweep and a GEMM sweep are directly comparable rows.
#pragma once

#include "baselines/common.hpp"
#include "workload/workload.hpp"

namespace xkb::baselines {

/// The workload analogue of BenchConfig (no routine/n/tile: the graph
/// carries its own shape and costs).
struct WorkloadBenchConfig {
  bool data_on_device = false;  ///< pre-place inputs on their consumers
  topo::Topology topology = topo::Topology::dgx1();
  rt::PerfModel perf;
  std::size_t device_capacity = 32ull << 30;
  int kernel_streams = 2;
  check::CheckConfig check;
  obs::ObsConfig obs;
  fault::FaultPlan fault_plan;
};

/// Run `graph` under `spec`: platform + runtime configured exactly as
/// run_with_spec, the graph bridged through wl::Bridge, results captured
/// into the same BenchResult (transfers, check verdict, metrics JSON,
/// fault counters).
BenchResult run_workload(const ModelSpec& spec, const wl::WorkloadGraph& graph,
                         const WorkloadBenchConfig& cfg);

/// The ModelSpec behind a named library model ("xkblas", "slate", ...),
/// with `heur` applied to the XKBlas variants.  Unknown names throw
/// std::invalid_argument listing every accepted value.
ModelSpec spec_for_library(const std::string& name, rt::HeuristicConfig heur);

/// All accepted spec_for_library names (CLI error messages).
std::vector<std::string> library_names();

}  // namespace xkb::baselines
