// Policy-faithful models of the BLAS libraries the paper compares against
// (Section IV-D), all running on the same simulated platform so that, as in
// the paper, performance differences come only from scheduling and data
// management policies.
//
// | Library          | Placement              | Sources        | Extras |
// |------------------|------------------------|----------------|--------|
// | XKBlas           | owner-computes + WS    | topology-aware | optimistic D2D, lazy coherency |
// | cuBLAS-XT        | static round-robin     | host only      | synchronous per call, streams inputs (no cache) |
// | BLASX            | owner-computes + WS    | switch peer    | GEMM only, 2-level cache, OOM > 45k |
// | Chameleon Tile   | dmdas                  | first valid    | tile layout native |
// | Chameleon LAPACK | dmdas                  | first valid    | host layout conversions before/after |
// | cuBLAS-MG        | static 2D block cyclic | first valid    | GEMM only, distribute+collect in time |
// | Slate            | static 2D block cyclic | host only      | batched outer products, per-step sync |
// | DPLASMA          | static 2D block cyclic | first valid    | GEMM only |
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "runtime/data_manager.hpp"
#include "runtime/perf_model.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"
#include "util/flops.hpp"

namespace xkb::baselines {

struct BenchConfig {
  Blas3 routine = Blas3::kGemm;
  std::size_t n = 16384;      ///< square matrix dimension
  std::size_t tile = 2048;
  bool data_on_device = false;  ///< 2D block-cyclic pre-distribution
  topo::Topology topology = topo::Topology::dgx1();
  rt::PerfModel perf;
  std::size_t device_capacity = 32ull << 30;
  int kernel_streams = 2;
  /// Opt-in validation layer, forwarded to RuntimeOptions::check.  When
  /// enabled the result carries the checker verdict and event-stream hash.
  check::CheckConfig check;
  /// Opt-in observability layer (metrics registry, link probes, decision
  /// trace).  When enabled the result carries the metrics JSON and the live
  /// Observability instance; combined with `check`, the obs accounting is
  /// reconciled against TransferStats and the trace breakdown.
  obs::ObsConfig obs;
  /// Opt-in fault plan (xkb::fault).  Non-empty plans arm a deterministic
  /// Injector before the run; recovery statistics and injector counters
  /// land in BenchResult::fault_json.  A FaultError (retries exhausted,
  /// unrecoverable data loss, stuck progress) is reported as a failed-but-
  /// diagnosed run, like an OOM.
  fault::FaultPlan fault_plan;

  /// Reject nonsensical configurations (n/tile of zero, tile > n, no
  /// kernel streams) with an actionable std::invalid_argument instead of a
  /// division by zero or an empty task graph deep in the run.  Called by
  /// run_with_spec.
  void validate() const;
};

struct BenchResult {
  bool supported = true;
  bool failed = false;        ///< e.g. BLASX memory allocation error
  std::string error;
  double seconds = 0.0;       ///< end-to-end virtual time
  double tflops = 0.0;
  trace::Breakdown breakdown;  ///< per-op-class busy time
  std::vector<trace::Breakdown> per_gpu;
  rt::TransferStats transfers;
  std::size_t steals = 0;
  std::size_t tasks = 0;
  // Engine event counters for the whole run (distribution + measured
  // phases): total dispatched events incl. silent machinery, and the
  // observable subset (the event-stream length the hash covers).  Feeds the
  // BENCH_e2e.json events/sec trajectory.
  std::uint64_t events_processed = 0;
  std::uint64_t events_observable = 0;
  std::uint64_t events_peak_pending = 0;
  // Populated only when BenchConfig::check.enabled was set.
  bool check_ok = true;
  std::size_t check_violations = 0;
  std::string check_report;
  std::uint64_t event_hash = 0;  ///< FNV-1a over the simulated event stream
  // Populated only when BenchConfig::obs.enabled was set.
  std::string metrics_json;  ///< report_json: span/links/critical-path/metrics
  std::string ledger_json;   ///< RunLedger artifact (schema xkb.obs.ledger/1)
  /// Flight-recorder dump (schema xkb.obs.flight/1): last-N observable
  /// events + decisions + fault marks with a ledger snapshot.  Written only
  /// when the run failed or the checker flagged a violation -- a clean run
  /// leaves it empty.
  std::string flight_json;
  std::shared_ptr<obs::Observability> obs;  ///< the live measurement layer
  // Populated only when BenchConfig::fault_plan was non-empty.
  std::size_t task_remaps = 0;   ///< tasks migrated off a failed device
  std::size_t task_replays = 0;  ///< producers re-run to rebuild lost tiles
  std::string fault_json;  ///< injector counters + runtime recovery stats
};

class LibraryModel {
 public:
  virtual ~LibraryModel() = default;
  virtual std::string name() const = 0;
  virtual bool supports(Blas3 r) const = 0;
  virtual BenchResult run(const BenchConfig& cfg) = 0;
};

/// All models in the paper's Fig. 5 order.
std::vector<std::unique_ptr<LibraryModel>> all_models();

/// The XKBlas variants of the Fig. 3 ablation.
std::unique_ptr<LibraryModel> make_xkblas(rt::HeuristicConfig heur,
                                          std::string suffix = "");
std::unique_ptr<LibraryModel> make_cublasxt();
std::unique_ptr<LibraryModel> make_blasx();
std::unique_ptr<LibraryModel> make_chameleon(bool tile_layout);
std::unique_ptr<LibraryModel> make_cublasmg();
std::unique_ptr<LibraryModel> make_slate();
std::unique_ptr<LibraryModel> make_dplasma();

}  // namespace xkb::baselines
