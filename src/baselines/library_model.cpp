#include "baselines/library_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "baselines/common.hpp"
#include "fault/injector.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"

namespace xkb::baselines {

namespace {

template <typename T>
void coherent_matrix(rt::Runtime& runtime, MatrixView<const T> m,
                     std::size_t ts) {
  for (std::size_t i = 0; i < m.m; i += ts)
    for (std::size_t j = 0; j < m.n; j += ts) {
      mem::DataHandle* h = blas::detail::tile_handle(
          runtime, m, i, j, std::min(ts, m.m - i), std::min(ts, m.n - j));
      runtime.coherent_async(h);
    }
}

template <typename T>
void distribute_matrix(rt::Runtime& runtime, MatrixView<const T> m,
                       std::size_t ts, int P, int Q) {
  for (std::size_t i = 0; i < m.m; i += ts)
    for (std::size_t j = 0; j < m.n; j += ts) {
      mem::DataHandle* h = blas::detail::tile_handle(
          runtime, m, i, j, std::min(ts, m.m - i), std::min(ts, m.n - j));
      const int dev = static_cast<int>((i / ts) % P) * Q +
                      static_cast<int>((j / ts) % Q);
      h->home_device = dev;
      rt::TaskDesc d;
      d.label = "dist";
      d.accesses.push_back({h, rt::Access::kR});
      d.forced_device = dev;
      runtime.submit(std::move(d));
    }
}

}  // namespace

RoutinePlan plan_routine(rt::Runtime& runtime, Blas3 routine, std::size_t n,
                         const blas::EmitOptions& emit, int P, int Q) {
  using Z = std::complex<double>;
  RoutinePlan plan;
  plan.flops = routine_flops(routine, static_cast<double>(n));
  const std::size_t ts = emit.tile;
  const double mat_bytes_d = static_cast<double>(n) * n * sizeof(double);
  const double mat_bytes_z = static_cast<double>(n) * n * sizeof(Z);

  auto A = std::make_shared<SymbolicMatrix<double>>(n, n, 0);
  auto B = std::make_shared<SymbolicMatrix<double>>(n, n, 1);
  auto C = std::make_shared<SymbolicMatrix<double>>(n, n, 2);
  auto ZA = std::make_shared<SymbolicMatrix<Z>>(n, n, 3);
  auto ZB = std::make_shared<SymbolicMatrix<Z>>(n, n, 4);
  auto ZC = std::make_shared<SymbolicMatrix<Z>>(n, n, 5);
  auto& rt = runtime;

  switch (routine) {
    case Blas3::kGemm:
      plan.emit = [&rt, A, B, C, emit] {
        blas::tiled_gemm(rt, Op::NoTrans, Op::NoTrans, 1.0, A->cview(),
                         B->cview(), 1.0, C->view(), emit);
      };
      plan.distribute = [&rt, A, B, C, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, B->cview(), ts, P, Q);
        distribute_matrix(rt, C->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, C, ts] { coherent_matrix(rt, C->cview(), ts); };
      plan.input_bytes = 3 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kSymm:
      plan.emit = [&rt, A, B, C, emit] {
        blas::tiled_symm(rt, Side::Left, Uplo::Lower, 1.0, A->cview(),
                         B->cview(), 1.0, C->view(), emit);
      };
      plan.distribute = [&rt, A, B, C, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, B->cview(), ts, P, Q);
        distribute_matrix(rt, C->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, C, ts] { coherent_matrix(rt, C->cview(), ts); };
      plan.input_bytes = 3 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kSyrk:
      plan.emit = [&rt, A, C, emit] {
        blas::tiled_syrk(rt, Uplo::Lower, Op::NoTrans, 1.0, A->cview(), 1.0,
                         C->view(), emit);
      };
      plan.distribute = [&rt, A, C, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, C->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, C, ts] { coherent_matrix(rt, C->cview(), ts); };
      plan.input_bytes = 2 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kSyr2k:
      plan.emit = [&rt, A, B, C, emit] {
        blas::tiled_syr2k(rt, Uplo::Lower, Op::NoTrans, 1.0, A->cview(),
                          B->cview(), 1.0, C->view(), emit);
      };
      plan.distribute = [&rt, A, B, C, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, B->cview(), ts, P, Q);
        distribute_matrix(rt, C->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, C, ts] { coherent_matrix(rt, C->cview(), ts); };
      plan.input_bytes = 3 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kTrmm:
      plan.emit = [&rt, A, B, emit] {
        blas::tiled_trmm(rt, Side::Left, Uplo::Lower, Op::NoTrans,
                         Diag::NonUnit, 1.0, A->cview(), B->view(), emit);
      };
      plan.distribute = [&rt, A, B, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, B->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, B, ts] { coherent_matrix(rt, B->cview(), ts); };
      plan.input_bytes = 2 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kTrsm:
      plan.emit = [&rt, A, B, emit] {
        blas::tiled_trsm(rt, Side::Left, Uplo::Lower, Op::NoTrans,
                         Diag::NonUnit, 1.0, A->cview(), B->view(), emit);
      };
      plan.distribute = [&rt, A, B, ts, P, Q] {
        distribute_matrix(rt, A->cview(), ts, P, Q);
        distribute_matrix(rt, B->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, B, ts] { coherent_matrix(rt, B->cview(), ts); };
      plan.input_bytes = 2 * mat_bytes_d;
      plan.output_bytes = mat_bytes_d;
      break;
    case Blas3::kHemm:
      plan.emit = [&rt, ZA, ZB, ZC, emit] {
        blas::tiled_hemm(rt, Side::Left, Uplo::Lower, Z{1.0}, ZA->cview(),
                         ZB->cview(), Z{1.0}, ZC->view(), emit);
      };
      plan.distribute = [&rt, ZA, ZB, ZC, ts, P, Q] {
        distribute_matrix(rt, ZA->cview(), ts, P, Q);
        distribute_matrix(rt, ZB->cview(), ts, P, Q);
        distribute_matrix(rt, ZC->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, ZC, ts] { coherent_matrix(rt, ZC->cview(), ts); };
      plan.flops *= 4.0;  // complex arithmetic
      plan.input_bytes = 3 * mat_bytes_z;
      plan.output_bytes = mat_bytes_z;
      break;
    case Blas3::kHerk:
      plan.emit = [&rt, ZA, ZC, emit] {
        blas::tiled_herk(rt, Uplo::Lower, Op::NoTrans, 1.0, ZA->cview(), 1.0,
                         ZC->view(), emit);
      };
      plan.distribute = [&rt, ZA, ZC, ts, P, Q] {
        distribute_matrix(rt, ZA->cview(), ts, P, Q);
        distribute_matrix(rt, ZC->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, ZC, ts] { coherent_matrix(rt, ZC->cview(), ts); };
      plan.flops *= 4.0;
      plan.input_bytes = 2 * mat_bytes_z;
      plan.output_bytes = mat_bytes_z;
      break;
    case Blas3::kHer2k:
      plan.emit = [&rt, ZA, ZB, ZC, emit] {
        blas::tiled_her2k(rt, Uplo::Lower, Op::NoTrans, Z{1.0}, ZA->cview(),
                          ZB->cview(), 1.0, ZC->view(), emit);
      };
      plan.distribute = [&rt, ZA, ZB, ZC, ts, P, Q] {
        distribute_matrix(rt, ZA->cview(), ts, P, Q);
        distribute_matrix(rt, ZB->cview(), ts, P, Q);
        distribute_matrix(rt, ZC->cview(), ts, P, Q);
      };
      plan.coherent = [&rt, ZC, ts] { coherent_matrix(rt, ZC->cview(), ts); };
      plan.flops *= 4.0;
      plan.input_bytes = 3 * mat_bytes_z;
      plan.output_bytes = mat_bytes_z;
      break;
  }
  return plan;
}

bool SpecModel::supports(Blas3 r) const {
  if (spec_.routines.empty()) return true;
  return std::find(spec_.routines.begin(), spec_.routines.end(), r) !=
         spec_.routines.end();
}

BenchResult SpecModel::run(const BenchConfig& cfg) {
  if (!supports(cfg.routine)) {
    BenchResult res;
    res.supported = false;
    return res;
  }
  return run_with_spec(spec_, cfg);
}

void BenchConfig::validate() const {
  if (n == 0)
    throw std::invalid_argument(
        "BenchConfig.n == 0: an empty matrix has no task graph to run");
  if (tile == 0)
    throw std::invalid_argument(
        "BenchConfig.tile == 0: tiling by zero divides the matrix into "
        "nothing");
  if (tile > n)
    throw std::invalid_argument(
        "BenchConfig.tile (" + std::to_string(tile) + ") exceeds n (" +
        std::to_string(n) + "): the tile grid would be empty");
  if (kernel_streams < 1)
    throw std::invalid_argument(
        "BenchConfig.kernel_streams < 1: a device needs at least one "
        "stream to execute kernels");
  if (device_capacity == 0)
    throw std::invalid_argument(
        "BenchConfig.device_capacity == 0: no replica could ever be "
        "allocated");
}

BenchResult run_with_spec(const ModelSpec& spec, const BenchConfig& cfg) {
  cfg.validate();
  BenchResult res;
  if (cfg.n > spec.max_n) {
    res.failed = true;
    res.error = "memory allocation error";
    return res;
  }

  rt::PerfModel perf = cfg.perf;
  perf.peak_flops_dp *= spec.peak_scale;

  rt::PlatformOptions popt;
  popt.functional = false;
  popt.kernel_streams = cfg.kernel_streams;
  popt.device_capacity = cfg.device_capacity;
  popt.eviction = spec.eviction;
  rt::Platform plat(cfg.topology, perf, popt);

  std::shared_ptr<obs::Observability> o;
  if (cfg.obs.enabled) {
    o = std::make_shared<obs::Observability>(plat.num_gpus());
    plat.set_obs(o.get());  // before the Runtime: it caches series pointers
  }

  std::unique_ptr<fault::Injector> inj;
  if (!cfg.fault_plan.empty()) {
    inj = std::make_unique<fault::Injector>(cfg.fault_plan);
    // Before the Runtime: its constructor binds the device-fail hook and
    // arms the plan's silent events against the engine.
    plat.set_fault(inj.get());
  }

  rt::RuntimeOptions ropt;
  ropt.heuristics = spec.heur;
  ropt.drop_inputs_after_use = spec.drop_inputs;
  ropt.task_overhead = spec.task_overhead;
  ropt.prepare_window = spec.prepare_window;
  ropt.check = cfg.check;
  std::unique_ptr<rt::Scheduler> sched;
  if (spec.dmdas)
    sched = std::make_unique<rt::DmdasScheduler>();
  else
    sched = std::make_unique<rt::OwnerComputesScheduler>(spec.stealing);
  rt::Runtime runtime(plat, std::move(sched), ropt);

  blas::EmitOptions emit;
  emit.tile = cfg.tile;
  emit.attach_functional = false;
  emit.flush_outputs_each_task = spec.flush_outputs_each_task;
  auto [P, Q] = blas::default_grid(plat.num_gpus());
  auto bc = [P = P, Q = Q](std::size_t i, std::size_t j) {
    return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
           static_cast<int>(j % static_cast<std::size_t>(Q));
  };
  if (spec.static_block_cyclic)
    emit.force_place = bc;
  else
    emit.home = bc;

  RoutinePlan plan = plan_routine(runtime, cfg.routine, cfg.n, emit, P, Q);

  const auto ledger_meta = [&] {
    obs::LedgerMeta lm;
    lm.lib = spec.name;
    lm.routine = blas3_name(cfg.routine);
    lm.scenario = cfg.data_on_device ? "data-on-device" : "data-on-host";
    lm.n = cfg.n;
    lm.tile = cfg.tile;
    lm.seed = cfg.fault_plan.seed;
    return lm;
  };
  // Register the run identity so a watchdog-stall dump composed inside the
  // runtime still names the lib/routine.
  if (o) o->set_ledger_meta(ledger_meta());
  // Compose a flight-recorder dump at a failure site.  Runtime::on_stuck
  // stashes its own dump (with the pre-stall ledger snapshot) before the
  // StuckProgress throw; "first dump wins", so this only fills in for
  // failures that bypassed on_stuck (OOM, retries exhausted, data loss,
  // checker violations seen after the run).
  const auto compose_flight = [&](const std::string& reason) {
    if (!o) return;
    if (o->flight_dump().empty()) {
      o->finalize_registry();
      const obs::RunLedger snap = obs::build_ledger(
          plat.trace(), plat.topology(), o.get(), 0, ledger_meta());
      o->set_flight_dump(o->flight().dump_json(reason, obs::ledger_json(snap)));
    }
    res.flight_json = o->flight_dump();
    res.obs = o;
  };

  double t0 = 0.0;
  rt::TransferStats s0{};  // stats issued before the measured region
  try {
    if (cfg.data_on_device) {
      plan.distribute();
      // run() reports the last *observable* instant: pending silent fault
      // events must not inflate the distribution phase's end time.
      t0 = runtime.run();
      plat.trace().clear();
      if (o) o->clear();  // observe only the measured (compute) phase
      s0 = runtime.data_manager().stats();
    }
    plan.emit();
    if (spec.coherent_at_end && !cfg.data_on_device) plan.coherent();
    const double t1 = runtime.run();
    double seconds = t1 - t0;
    seconds += spec.call_overhead;
    if (spec.lapack_conversion)
      seconds += (plan.input_bytes + plan.output_bytes) / perf.host_conv_bw;
    res.seconds = seconds;
    res.tflops = plan.flops / seconds / 1e12;
  } catch (const mem::OutOfDeviceMemory& e) {
    res.failed = true;
    res.error = e.what();
    compose_flight(std::string("oom: ") + e.what());
    return res;
  } catch (const fault::FaultError& e) {
    // Failed-but-diagnosed: the recovery machinery hit its documented
    // limits (retries exhausted, unrecoverable dirty loss, stuck run).
    res.failed = true;
    res.error = e.what();
    res.task_remaps = runtime.task_remaps();
    res.task_replays = runtime.task_replays();
    compose_flight(std::string("fault: ") + e.what());
    return res;
  }

  res.breakdown = plat.trace().breakdown();
  for (int g = 0; g < plat.num_gpus(); ++g)
    res.per_gpu.push_back(plat.trace().breakdown(g));
  res.transfers = runtime.data_manager().stats();
  res.steals = runtime.steals();
  res.tasks = runtime.tasks_completed();
  res.events_processed = plat.engine().events_processed();
  res.events_observable = plat.engine().observable_processed();
  res.events_peak_pending = plat.engine().peak_pending();
  if (inj) {
    res.task_remaps = runtime.task_remaps();
    res.task_replays = runtime.task_replays();
    const rt::TransferStats& ts = res.transfers;
    std::ostringstream js;
    js << "{\"injector\":" << inj->counters_json()
       << ",\"unconsumed_xfail\":" << inj->unconsumed_transfer_faults()
       << ",\"recovery\":{\"transfer_aborts\":" << ts.transfer_aborts
       << ",\"transfer_retries\":" << ts.transfer_retries
       << ",\"waiter_replans\":" << ts.waiter_replans
       << ",\"task_remaps\":" << res.task_remaps
       << ",\"task_replays\":" << res.task_replays << "}}";
    res.fault_json = js.str();
  }
  if (const check::Checker* c = runtime.checker()) {
    res.check_ok = c->ok();
    res.check_violations = c->total_violations();
    res.check_report = c->report();
    res.event_hash = c->event_hash();
  }
  if (o) {
    o->finalize_registry();
    const obs::RunReport rep =
        obs::build_report(plat.trace(), plat.topology(), o.get());
    res.metrics_json = obs::report_json(rep, o.get());
    res.ledger_json = obs::ledger_json(obs::build_ledger(
        plat.trace(), plat.topology(), o.get(), res.event_hash,
        ledger_meta()));
    res.obs = o;
    if (runtime.checker()) {
      // Cross-validate the two independent accounting paths: observed event
      // stream vs runtime counters and trace aggregation.
      const rt::TransferStats& ts = runtime.data_manager().stats();
      obs::Observability::ReconcileView v;
      v.h2d = ts.h2d - s0.h2d;
      v.d2h = ts.d2h - s0.d2h;
      v.d2d = ts.d2d - s0.d2d;
      v.optimistic_waits = ts.optimistic_waits - s0.optimistic_waits;
      v.forced_waits = ts.forced_waits - s0.forced_waits;
      const trace::Breakdown b = plat.trace().breakdown();
      v.htod = b.htod;
      v.dtoh = b.dtoh;
      v.ptop = b.ptop;
      v.kernel = b.kernel;
      v.htod_bytes = plat.trace().bytes(trace::OpKind::kHtoD);
      v.dtoh_bytes = plat.trace().bytes(trace::OpKind::kDtoH);
      v.ptop_bytes = plat.trace().bytes(trace::OpKind::kPtoP);
      const std::vector<std::string> mismatches = o->reconcile(v);
      if (!mismatches.empty()) {
        res.check_ok = false;
        res.check_violations += mismatches.size();
        for (const std::string& m : mismatches)
          res.check_report += "[obs] " + m + "\n";
      }
    }
  }
  if (!res.check_ok) compose_flight("checker-violation");
  return res;
}

std::vector<std::unique_ptr<LibraryModel>> all_models() {
  std::vector<std::unique_ptr<LibraryModel>> v;
  v.push_back(make_blasx());
  v.push_back(make_chameleon(/*tile_layout=*/false));  // Chameleon LAPACK
  v.push_back(make_chameleon(/*tile_layout=*/true));   // Chameleon Tile
  v.push_back(make_cublasmg());
  v.push_back(make_cublasxt());
  v.push_back(make_dplasma());
  v.push_back(make_slate());
  v.push_back(make_xkblas(rt::HeuristicConfig::xkblas()));
  return v;
}

}  // namespace xkb::baselines
