// Slate: targets distributed-memory supercomputers; accelerator support goes
// through block outer products on batched GEMM.  On a single DGX-1 node this
// design cannot exploit the NVLink fabric: all traffic crosses the four PCIe
// switches, panels are re-streamed from the host each step, and output
// blocks round-trip between host and device every panel update (host-centric
// memory management) -- which is why the paper measures it flat-lining well
// below the other libraries.
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_slate() {
  ModelSpec s;
  s.name = "Slate";
  s.heur = {rt::SourcePolicy::kHostOnly, /*optimistic=*/false};
  s.static_block_cyclic = true;
  s.stealing = false;
  s.drop_inputs = true;             // panels re-broadcast each step
  s.flush_outputs_each_task = true;  // host-centric outer products
  s.task_overhead = 5e-6;
  s.call_overhead = 60e-3;
  s.peak_scale = 0.9;  // batched GEMM below hand-tuned cuBLAS peak
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
