// Shared machinery for the library models: symbolic matrices (paper-scale
// views that are never dereferenced in timing mode), routine emission, and
// the standard run skeleton every model parameterises.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <memory>

#include "baselines/library_model.hpp"
#include "blas/tiled.hpp"
#include "runtime/runtime.hpp"

namespace xkb::baselines {

/// A matrix that exists only as an address range: timing-mode runs identify
/// tiles by origin address, so paper-scale operands (tens of GB) need no
/// real storage.  Each instance gets a disjoint address window.
template <typename T>
class SymbolicMatrix {
 public:
  SymbolicMatrix(std::size_t m, std::size_t n, int slot)
      : m_(m),
        n_(n),
        base_(reinterpret_cast<T*>(0x100000000000ull +
                                   static_cast<std::uint64_t>(slot) *
                                       0x040000000000ull)) {}

  MatrixView<T> view() { return {base_, m_, n_, m_}; }
  MatrixView<const T> cview() const { return {base_, m_, n_, m_}; }

 private:
  std::size_t m_, n_;
  T* base_;
};

/// How a model places, sources and moves data: the policy knobs that
/// distinguish the libraries of the paper's comparison.
struct ModelSpec {
  std::string name;
  bool dmdas = false;            ///< dmdas scheduler instead of owner+WS
  bool stealing = true;          ///< owner-computes work stealing
  rt::HeuristicConfig heur;      ///< source policy + optimistic flag
  bool static_block_cyclic = false;      ///< force placement by output tile
  bool drop_inputs = false;              ///< stream inputs, no cross-task cache
  bool flush_outputs_each_task = false;  ///< host-centric outer products
  double task_overhead = 0.0;    ///< per-task runtime cost (seconds)
  int prepare_window = 6;        ///< per-device prefetch depth
  /// Fixed per-call setup cost (graph unrolling, performance-model lookup,
  /// grid/handle initialisation) -- dominates at small N; calibrated from
  /// the paper's small-matrix gaps.
  double call_overhead = 0.0;
  double peak_scale = 1.0;       ///< kernel quality vs cuBLAS (Slate batched)
  bool coherent_at_end = true;   ///< D2H of results included in the time
  bool lapack_conversion = false;  ///< Chameleon LAPACK layout conversions
  std::size_t max_n = SIZE_MAX;  ///< hard failure threshold (BLASX)
  mem::EvictionPolicy eviction = mem::EvictionPolicy::kReadOnlyFirst;
  std::vector<Blas3> routines;   ///< supported routines (empty = all nine)
};

/// Type-erased benchmark instance: how to emit the task graph, pre-place the
/// operands (data-on-device), and bring results home (data-on-host).
struct RoutinePlan {
  std::function<void()> emit;
  std::function<void()> distribute;
  std::function<void()> coherent;
  double flops = 0.0;
  double input_bytes = 0.0;   ///< operand footprint (layout conversions)
  double output_bytes = 0.0;
};

/// Build the plan for one paper benchmark (square FP64; complex FP64 for
/// HEMM/HERK/HER2K) on (P, Q)-grid block-cyclic mappings.
RoutinePlan plan_routine(rt::Runtime& runtime, Blas3 routine, std::size_t n,
                         const blas::EmitOptions& emit, int P, int Q);

/// Run a paper benchmark under `spec`: the standard skeleton shared by every
/// library model (scenario handling, emission, coherency, result capture).
BenchResult run_with_spec(const ModelSpec& spec, const BenchConfig& cfg);

/// A LibraryModel entirely described by a ModelSpec.
class SpecModel : public LibraryModel {
 public:
  explicit SpecModel(ModelSpec spec) : spec_(std::move(spec)) {}
  std::string name() const override { return spec_.name; }
  bool supports(Blas3 r) const override;
  BenchResult run(const BenchConfig& cfg) override;
  /// The policy knobs, exposed for non-BLAS entry points (workloads).
  const ModelSpec& spec() const { return spec_; }

 protected:
  ModelSpec spec_;
};

}  // namespace xkb::baselines
