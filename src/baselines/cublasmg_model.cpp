// cuBLAS-MG (early access): GEMM only, matrices distributed 2D block-cyclic
// across devices.  Placement is static (owner of the C block); peer copies
// are used but without topology ranking, and there is no optimistic
// forwarding -- the gap to XKBlas the paper measures (up to 1.13x).
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_cublasmg() {
  ModelSpec s;
  s.name = "cuBLAS-MG";
  s.heur = {rt::SourcePolicy::kFirstValid, /*optimistic=*/false};
  s.static_block_cyclic = true;
  s.stealing = false;
  s.task_overhead = 2e-6;
  s.call_overhead = 90e-3;  // grid descriptor setup + explicit distribution
  s.routines = {Blas3::kGemm};  // current version only implements GEMM
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
