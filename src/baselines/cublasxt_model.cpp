// cuBLAS-XT: NVIDIA's out-of-core multi-GPU BLAS.  Tiles of the output are
// statically distributed; every input block is streamed from host memory for
// each tile product (no software cache across products) and results return
// to the host at the end of every call (synchronous semantics).  All traffic
// crosses PCIe -- no peer transfers -- which is why the paper measures it
// spending most of its time in HtoD copies (Fig. 6).
#include "baselines/common.hpp"

namespace xkb::baselines {

std::unique_ptr<LibraryModel> make_cublasxt() {
  ModelSpec s;
  s.name = "cuBLAS-XT";
  s.heur = {rt::SourcePolicy::kHostOnly, /*optimistic=*/false};
  s.static_block_cyclic = true;
  s.stealing = false;
  s.drop_inputs = true;  // streams blocks, no cross-product caching
  s.task_overhead = 2e-6;
  s.call_overhead = 5e-3;
  s.prepare_window = 3;  // shallow per-stream pipelining, no tile sharing
  return std::make_unique<SpecModel>(std::move(s));
}

}  // namespace xkb::baselines
