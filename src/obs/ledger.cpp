#include "obs/ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "trace/export.hpp"

namespace xkb::obs {

namespace {

/// %.17g: doubles round-trip exactly through the text form, so a ledger
/// parsed back compares bit-equal to the one that was serialized.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

Pick pick_from_string(const std::string& s) {
  if (s == "host") return Pick::kHost;
  if (s == "device") return Pick::kDevice;
  if (s == "wait-device") return Pick::kWaitDevice;
  if (s == "wait-host") return Pick::kWaitHost;
  throw std::runtime_error("ledger: unknown pick \"" + s + "\"");
}

std::string pct(double f) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * f);
  return buf;
}

/// Fixed category order of the makespan decomposition.
constexpr const char* kCats[] = {"kernel", "2xNVLink", "1xNVLink",
                                 "PCIe",   "host",     "idle"};

double cat_of(const CriticalPath& cp, int i) {
  switch (i) {
    case 0: return cp.kernel;
    case 1: return cp.nvlink2;
    case 2: return cp.nvlink1;
    case 3: return cp.pcie;
    case 4: return cp.host;
    case 5: return cp.idle;
  }
  return 0.0;
}

std::string render_decision(const Decision& d) {
  std::ostringstream os;
  os << "tile " << d.handle << " -> gpu" << d.dst << " pick=" << to_string(d.pick);
  if (d.picked_dev >= 0)
    os << "(gpu" << d.picked_dev << ")";
  else
    os << "(host)";
  if (d.forced) os << " forced";
  os << " @ t=" << num(d.t) << "  candidates: ";
  if (d.candidates.empty()) os << "(none)";
  bool first = true;
  for (const Decision::Candidate& c : d.candidates) {
    os << (first ? "" : "; ") << "gpu" << c.dev << " rank" << c.rank
       << (c.in_flight ? " in-flight" : "");
    first = false;
  }
  return os.str();
}

}  // namespace

RunLedger build_ledger(const trace::Trace& tr, const topo::Topology& topo,
                       const Observability* o, std::uint64_t event_hash,
                       LedgerMeta meta) {
  RunLedger l;
  l.prov = Provenance::current(RunLedger::kSchema, RunLedger::kVersion,
                               meta.seed);
  l.meta = std::move(meta);
  l.report = build_report(tr, topo, o);
  l.event_hash = event_hash;
  l.link_queues.resize(l.report.links.size());
  if (o) {
    // Raw queue histograms, matched to report rows by link name (kernel
    // lanes and probe-less rows keep an empty histogram).
    std::map<std::string, const LinkProbe*> by_name;
    for (const auto& p : o->links()) by_name[p->name()] = p.get();
    for (std::size_t i = 0; i < l.report.links.size(); ++i) {
      auto it = by_name.find(l.report.links[i].name);
      if (it == by_name.end()) continue;
      const DelayHistogram& h = it->second->queue();
      LinkQueue& q = l.link_queues[i];
      q.count = h.count;
      q.n = h.n;
      q.sum = h.sum;
      q.max = h.max;
    }
    l.decisions = o->decisions();
    for (const auto& [k, v] : o->metrics().counters())
      l.counters.emplace_back(k, v);
  }
  return l;
}

std::string ledger_json(const RunLedger& l) {
  std::ostringstream out;
  out << "{\n";
  out << "\"provenance\": " << l.prov.to_json() << ",\n";
  out << "\"meta\": {\"lib\": \"" << trace::json_escape(l.meta.lib)
      << "\", \"routine\": \"" << trace::json_escape(l.meta.routine)
      << "\", \"scenario\": \"" << trace::json_escape(l.meta.scenario)
      << "\", \"n\": " << l.meta.n << ", \"tile\": " << l.meta.tile
      << ", \"seed\": " << l.meta.seed << "},\n";
  out << "\"span\": " << num(l.report.span) << ",\n";
  out << "\"event_hash\": \"" << hex64(l.event_hash) << "\",\n";
  const trace::Breakdown& b = l.report.breakdown;
  out << "\"breakdown\": {\"kernel\": " << num(b.kernel)
      << ", \"htod\": " << num(b.htod) << ", \"dtoh\": " << num(b.dtoh)
      << ", \"ptop\": " << num(b.ptop) << "},\n";
  const CriticalPath& cp = l.report.cp;
  out << "\"critical_path\": {\"kernel\": " << num(cp.kernel)
      << ", \"nvlink2\": " << num(cp.nvlink2)
      << ", \"nvlink1\": " << num(cp.nvlink1) << ", \"pcie\": " << num(cp.pcie)
      << ", \"host\": " << num(cp.host) << ", \"idle\": " << num(cp.idle)
      << ", \"span\": " << num(cp.span) << ", \"ops\": " << cp.ops.size()
      << "},\n";
  out << "\"links\": [";
  for (std::size_t i = 0; i < l.report.links.size(); ++i) {
    const LinkRow& r = l.report.links[i];
    const LinkQueue q =
        i < l.link_queues.size() ? l.link_queues[i] : LinkQueue{};
    out << (i ? ",\n " : "\n ");
    out << "{\"name\": \"" << trace::json_escape(r.name) << "\", \"class\": \""
        << trace::json_escape(r.cls) << "\", \"busy\": " << num(r.busy)
        << ", \"util\": " << num(r.util) << ", \"bytes\": " << r.bytes
        << ", \"ops\": " << r.ops << ", \"queue\": {\"mean\": " << num(r.q_mean)
        << ", \"p95\": " << num(r.q_p95) << ", \"max\": " << num(r.q_max)
        << ", \"n\": " << q.n << ", \"sum\": " << num(q.sum)
        << ", \"buckets\": [";
    for (int k = 0; k < DelayHistogram::kBuckets; ++k)
      out << (k ? "," : "") << q.count[static_cast<std::size_t>(k)];
    out << "]}}";
  }
  out << (l.report.links.empty() ? "" : "\n") << "],\n";
  out << "\"counters\": {";
  for (std::size_t i = 0; i < l.counters.size(); ++i)
    out << (i ? ", " : "") << "\"" << trace::json_escape(l.counters[i].first)
        << "\": " << num(l.counters[i].second);
  out << "},\n";
  out << "\"flows\": " << l.report.flows << ",\n";
  out << "\"decisions\": [";
  for (std::size_t i = 0; i < l.decisions.size(); ++i) {
    const Decision& d = l.decisions[i];
    out << (i ? ",\n " : "\n ");
    out << "{\"t\": " << num(d.t) << ", \"handle\": " << d.handle
        << ", \"dst\": " << d.dst << ", \"pick\": \"" << to_string(d.pick)
        << "\", \"picked_dev\": " << d.picked_dev << ", \"forced\": "
        << (d.forced ? "true" : "false") << ", \"cands\": [";
    for (std::size_t c = 0; c < d.candidates.size(); ++c) {
      const Decision::Candidate& cd = d.candidates[c];
      out << (c ? "," : "") << "[" << cd.dev << "," << cd.rank << ","
          << (cd.in_flight ? 1 : 0) << "]";
    }
    out << "]}";
  }
  out << (l.decisions.empty() ? "" : "\n") << "]\n";
  out << "}\n";
  return out.str();
}

RunLedger ledger_from_json(const util::JsonValue& doc) {
  RunLedger l;
  const util::JsonValue& prov = doc.at("provenance");
  const std::string tag = prov.at("schema").as_string();
  const std::string want =
      std::string(RunLedger::kSchema) + "/" + std::to_string(RunLedger::kVersion);
  if (tag != want)
    throw std::runtime_error("ledger: schema mismatch: file has \"" + tag +
                             "\", this build reads \"" + want + "\"");
  l.prov.schema = RunLedger::kSchema;
  l.prov.version = RunLedger::kVersion;
  l.prov.git = prov.string_or("git", "unknown");
  l.prov.build_type = prov.string_or("build_type", "unknown");
  l.prov.date = prov.string_or("date", "unset");
  l.prov.seed = static_cast<std::uint64_t>(prov.number_or("seed", 0.0));

  const util::JsonValue& meta = doc.at("meta");
  l.meta.lib = meta.string_or("lib", "");
  l.meta.routine = meta.string_or("routine", "");
  l.meta.scenario = meta.string_or("scenario", "");
  l.meta.n = static_cast<std::size_t>(meta.number_or("n", 0.0));
  l.meta.tile = static_cast<std::size_t>(meta.number_or("tile", 0.0));
  l.meta.seed = static_cast<std::uint64_t>(meta.number_or("seed", 0.0));

  l.report.span = doc.at("span").as_number();
  l.event_hash = parse_hex64(doc.at("event_hash").as_string());
  const util::JsonValue& b = doc.at("breakdown");
  l.report.breakdown.kernel = b.at("kernel").as_number();
  l.report.breakdown.htod = b.at("htod").as_number();
  l.report.breakdown.dtoh = b.at("dtoh").as_number();
  l.report.breakdown.ptop = b.at("ptop").as_number();
  const util::JsonValue& cp = doc.at("critical_path");
  l.report.cp.kernel = cp.at("kernel").as_number();
  l.report.cp.nvlink2 = cp.at("nvlink2").as_number();
  l.report.cp.nvlink1 = cp.at("nvlink1").as_number();
  l.report.cp.pcie = cp.at("pcie").as_number();
  l.report.cp.host = cp.at("host").as_number();
  l.report.cp.idle = cp.at("idle").as_number();
  l.report.cp.span = cp.at("span").as_number();
  // The JSON keeps only the step *count* (the differ needs no more).
  // Preserve it as placeholder steps so serialize -> parse -> serialize is
  // a fixed point.
  l.report.cp.ops.resize(
      static_cast<std::size_t>(cp.at("ops").as_number()));

  for (const util::JsonValue& lk : doc.at("links").as_array()) {
    LinkRow r;
    r.name = lk.at("name").as_string();
    r.cls = lk.at("class").as_string();
    r.busy = lk.at("busy").as_number();
    r.util = lk.at("util").as_number();
    r.bytes = static_cast<std::size_t>(lk.at("bytes").as_number());
    r.ops = static_cast<std::uint64_t>(lk.at("ops").as_number());
    const util::JsonValue& q = lk.at("queue");
    r.q_mean = q.at("mean").as_number();
    r.q_p95 = q.at("p95").as_number();
    r.q_max = q.at("max").as_number();
    LinkQueue lq;
    lq.n = static_cast<std::uint64_t>(q.number_or("n", 0.0));
    lq.sum = q.number_or("sum", 0.0);
    lq.max = r.q_max;
    if (const util::JsonValue* bk = q.find("buckets")) {
      const util::JsonArray& arr = bk->as_array();
      for (std::size_t i = 0; i < arr.size() && i < lq.count.size(); ++i)
        lq.count[i] = static_cast<std::uint64_t>(arr[i].as_number());
    }
    l.report.links.push_back(std::move(r));
    l.link_queues.push_back(lq);
  }

  for (const auto& [k, v] : doc.at("counters").as_object())
    l.counters.emplace_back(k, v.as_number());

  l.report.flows = static_cast<std::size_t>(doc.number_or("flows", 0.0));

  for (const util::JsonValue& dv : doc.at("decisions").as_array()) {
    Decision d;
    d.t = dv.at("t").as_number();
    d.handle = static_cast<std::uint64_t>(dv.at("handle").as_number());
    d.dst = static_cast<int>(dv.at("dst").as_number());
    d.pick = pick_from_string(dv.at("pick").as_string());
    d.picked_dev = static_cast<int>(dv.at("picked_dev").as_number());
    d.forced = dv.at("forced").as_bool();
    for (const util::JsonValue& cv : dv.at("cands").as_array()) {
      const util::JsonArray& tup = cv.as_array();
      if (tup.size() != 3)
        throw std::runtime_error("ledger: malformed candidate tuple");
      Decision::Candidate c;
      c.dev = static_cast<int>(tup[0].as_number());
      c.rank = static_cast<int>(tup[1].as_number());
      c.in_flight = tup[2].as_number() != 0.0;
      d.candidates.push_back(c);
    }
    l.decisions.push_back(std::move(d));
  }
  l.report.decisions = l.decisions.size();
  return l;
}

RunLedger ledger_from_file(const std::string& path) {
  return ledger_from_json(util::json_parse_file(path));
}

LedgerDiff diff_ledgers(const RunLedger& a, const RunLedger& b) {
  LedgerDiff d;
  d.span_a = a.report.span;
  d.span_b = b.report.span;
  d.hashes_equal = a.event_hash == b.event_hash;

  double attributed = 0.0;
  for (int i = 0; i < 6; ++i) {
    CatDelta c;
    c.name = kCats[i];
    c.a = cat_of(a.report.cp, i);
    c.b = cat_of(b.report.cp, i);
    attributed += c.delta();
    d.cats.push_back(std::move(c));
  }
  const double dspan = d.dspan();
  if (dspan == 0.0) {
    d.coverage = 1.0;
  } else {
    const double cov = 1.0 - std::fabs(dspan - attributed) / std::fabs(dspan);
    d.coverage = std::clamp(cov, 0.0, 1.0);
  }

  // First diverging source decision.
  const std::size_t na = a.decisions.size(), nb = b.decisions.size();
  const std::size_t common = std::min(na, nb);
  auto same = [](const Decision& x, const Decision& y) {
    if (x.t != y.t || x.handle != y.handle || x.dst != y.dst ||
        x.pick != y.pick || x.picked_dev != y.picked_dev ||
        x.forced != y.forced ||
        x.candidates.size() != y.candidates.size())
      return false;
    for (std::size_t i = 0; i < x.candidates.size(); ++i) {
      const Decision::Candidate &cx = x.candidates[i], &cy = y.candidates[i];
      if (cx.dev != cy.dev || cx.rank != cy.rank ||
          cx.in_flight != cy.in_flight)
        return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < common; ++i) {
    if (!same(a.decisions[i], b.decisions[i])) {
      d.first_divergence = i;
      break;
    }
  }
  if (d.first_divergence == LedgerDiff::kNoDivergence && na != nb) {
    d.first_divergence = common;
    d.a_ended = na == common;
    d.b_ended = nb == common;
  }

  // Per-link deltas over the union of names, A's order first, then rows
  // only B has (sorted as B lists them).
  std::map<std::string, std::size_t> b_index;
  for (std::size_t i = 0; i < b.report.links.size(); ++i)
    b_index[b.report.links[i].name] = i;
  std::vector<bool> b_used(b.report.links.size(), false);
  for (const LinkRow& r : a.report.links) {
    LinkDelta ld;
    ld.name = r.name;
    ld.cls = r.cls;
    ld.busy_a = r.busy;
    ld.util_a = r.util;
    ld.bytes_a = static_cast<double>(r.bytes);
    ld.ops_a = static_cast<double>(r.ops);
    auto it = b_index.find(r.name);
    if (it != b_index.end()) {
      const LinkRow& rb = b.report.links[it->second];
      b_used[it->second] = true;
      ld.busy_b = rb.busy;
      ld.util_b = rb.util;
      ld.bytes_b = static_cast<double>(rb.bytes);
      ld.ops_b = static_cast<double>(rb.ops);
    }
    d.links.push_back(std::move(ld));
  }
  for (std::size_t i = 0; i < b.report.links.size(); ++i) {
    if (b_used[i]) continue;
    const LinkRow& rb = b.report.links[i];
    LinkDelta ld;
    ld.name = rb.name;
    ld.cls = rb.cls;
    ld.busy_b = rb.busy;
    ld.util_b = rb.util;
    ld.bytes_b = static_cast<double>(rb.bytes);
    ld.ops_b = static_cast<double>(rb.ops);
    d.links.push_back(std::move(ld));
  }
  return d;
}

std::string diff_text(const RunLedger& a, const RunLedger& b,
                      const LedgerDiff& d) {
  std::ostringstream out;
  auto side = [&](const char* tag, const RunLedger& l) {
    out << tag << ": lib=" << l.meta.lib << " routine=" << l.meta.routine
        << " scenario=" << l.meta.scenario << " n=" << l.meta.n
        << " tile=" << l.meta.tile << " span=" << num(l.report.span)
        << "s hash=" << hex64(l.event_hash) << " (" << l.prov.git << ", "
        << l.prov.build_type << ")\n";
  };
  out << "== run diff ==\n";
  side("A", a);
  side("B", b);
  out << "\nmakespan delta (B - A): " << num(d.dspan()) << " s ("
      << pct(d.span_a > 0.0 ? d.dspan() / d.span_a : 0.0) << " of A)\n";
  out << "event hashes: " << (d.hashes_equal ? "equal" : "differ") << "\n";

  out << "\nmakespan decomposition (critical-path attribution, s):\n";
  char line[160];
  std::snprintf(line, sizeof line, "  %-10s %16s %16s %16s\n", "category",
                "A", "B", "delta");
  out << line;
  double attributed = 0.0;
  for (const CatDelta& c : d.cats) {
    std::snprintf(line, sizeof line, "  %-10s %16.9f %16.9f %+16.9f\n",
                  c.name.c_str(), c.a, c.b, c.delta());
    out << line;
    attributed += c.delta();
  }
  std::snprintf(line, sizeof line,
                "  attributed %+.9f s of %+.9f s delta (coverage %s)\n",
                attributed, d.dspan(), pct(d.coverage).c_str());
  out << line;

  out << "\nsource decisions: A=" << a.decisions.size()
      << " B=" << b.decisions.size() << "\n";
  if (d.first_divergence == LedgerDiff::kNoDivergence) {
    out << "decision streams identical\n";
  } else {
    out << "first divergence at decision index " << d.first_divergence << ":\n";
    if (d.first_divergence < a.decisions.size())
      out << "  A: " << render_decision(a.decisions[d.first_divergence])
          << "\n";
    else
      out << "  A: (stream ended after " << a.decisions.size()
          << " decisions)\n";
    if (d.first_divergence < b.decisions.size())
      out << "  B: " << render_decision(b.decisions[d.first_divergence])
          << "\n";
    else
      out << "  B: (stream ended after " << b.decisions.size()
          << " decisions)\n";
  }

  out << "\nper-link deltas (B - A):\n";
  std::snprintf(line, sizeof line, "  %-10s %-9s %11s %8s %15s %9s\n", "name",
                "class", "dbusy(s)", "dutil", "dbytes", "dops");
  out << line;
  for (const LinkDelta& l : d.links) {
    std::snprintf(line, sizeof line,
                  "  %-10s %-9s %+11.6f %+8.4f %+15.0f %+9.0f\n",
                  l.name.c_str(), l.cls.c_str(), l.busy_b - l.busy_a,
                  l.util_b - l.util_a, l.bytes_b - l.bytes_a,
                  l.ops_b - l.ops_a);
    out << line;
  }
  return out.str();
}

std::string diff_json(const RunLedger& a, const RunLedger& b,
                      const LedgerDiff& d) {
  std::ostringstream out;
  Provenance p = Provenance::current("xkb.obs.rundiff", 1, a.meta.seed);
  out << "{\n";
  out << "\"provenance\": " << p.to_json() << ",\n";
  auto side = [&](const char* tag, const RunLedger& l) {
    out << "\"" << tag << "\": {\"lib\": \"" << trace::json_escape(l.meta.lib)
        << "\", \"routine\": \"" << trace::json_escape(l.meta.routine)
        << "\", \"scenario\": \"" << trace::json_escape(l.meta.scenario)
        << "\", \"n\": " << l.meta.n << ", \"tile\": " << l.meta.tile
        << ", \"span\": " << num(l.report.span) << ", \"event_hash\": \""
        << hex64(l.event_hash) << "\", \"decisions\": " << l.decisions.size()
        << "},\n";
  };
  side("a", a);
  side("b", b);
  out << "\"dspan\": " << num(d.dspan()) << ",\n";
  out << "\"coverage\": " << num(d.coverage) << ",\n";
  out << "\"hashes_equal\": " << (d.hashes_equal ? "true" : "false") << ",\n";
  out << "\"categories\": [";
  for (std::size_t i = 0; i < d.cats.size(); ++i) {
    const CatDelta& c = d.cats[i];
    out << (i ? ", " : "") << "{\"name\": \"" << c.name << "\", \"a\": "
        << num(c.a) << ", \"b\": " << num(c.b) << ", \"delta\": "
        << num(c.delta()) << "}";
  }
  out << "],\n";
  if (d.first_divergence == LedgerDiff::kNoDivergence) {
    out << "\"first_divergence\": null,\n";
  } else {
    out << "\"first_divergence\": {\"index\": " << d.first_divergence;
    if (d.first_divergence < a.decisions.size())
      out << ", \"a\": \""
          << trace::json_escape(render_decision(a.decisions[d.first_divergence]))
          << "\"";
    else
      out << ", \"a\": null";
    if (d.first_divergence < b.decisions.size())
      out << ", \"b\": \""
          << trace::json_escape(render_decision(b.decisions[d.first_divergence]))
          << "\"";
    else
      out << ", \"b\": null";
    out << "},\n";
  }
  out << "\"links\": [";
  for (std::size_t i = 0; i < d.links.size(); ++i) {
    const LinkDelta& l = d.links[i];
    out << (i ? ",\n " : "\n ") << "{\"name\": \"" << trace::json_escape(l.name)
        << "\", \"class\": \"" << trace::json_escape(l.cls)
        << "\", \"dbusy\": " << num(l.busy_b - l.busy_a) << ", \"dutil\": "
        << num(l.util_b - l.util_a) << ", \"dbytes\": "
        << num(l.bytes_b - l.bytes_a) << ", \"dops\": "
        << num(l.ops_b - l.ops_a) << "}";
  }
  out << (d.links.empty() ? "" : "\n") << "]\n";
  out << "}\n";
  return out.str();
}

}  // namespace xkb::obs
