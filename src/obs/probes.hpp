// Link-utilization probes: passive sim::UsageProbe implementations attached
// to every directed channel of the platform (host PCIe switches per
// direction, every peer link, the host worker).
//
// Each probe accumulates busy time, operation count, payload bytes and a
// queueing-delay histogram -- the "how saturated was each NVLink/PCIe
// channel" evidence the paper presents through nvprof (Section IV-E) and
// that BLASX/XKaapi-style schedulers are motivated by.  Probes see *all*
// occupancy, including the shadow host-link occupancy that PCIe peer copies
// crossing the QPI fabric impose, which the op trace intentionally omits.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/resource.hpp"

namespace xkb::obs {

/// Log-scale queueing-delay histogram (seconds).  Bucket i holds delays in
/// (kBounds[i-1], kBounds[i]]; bucket 0 holds exact zeros (uncontended).
struct DelayHistogram {
  static constexpr int kBuckets = 8;
  /// Upper bounds of buckets 0..6; bucket 7 is unbounded.
  static constexpr std::array<double, kBuckets - 1> kBounds = {
      0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};

  std::array<std::uint64_t, kBuckets> count{};
  std::uint64_t n = 0;
  double sum = 0.0;
  double max = 0.0;

  void add(double d);
  double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
  /// `max` for the last bucket.  Coarse by design: the histogram keeps no
  /// raw samples.
  double quantile(double q) const;
  /// Pointwise accumulation: bucket counts, n and sum add; max takes the
  /// larger.  Exact because buckets share the fixed kBounds edges.
  void merge(const DelayHistogram& o) {
    for (int i = 0; i < kBuckets; ++i) count[i] += o.count[i];
    n += o.n;
    sum += o.sum;
    if (o.max > max) max = o.max;
  }
  void clear() { *this = DelayHistogram{}; }
};

/// Which platform resource a probe watches (report grouping).
enum class LinkDir : std::uint8_t { kH2D, kD2H, kP2P, kHost };

class LinkProbe final : public sim::UsageProbe {
 public:
  LinkProbe(std::string name, std::string cls, LinkDir dir, int src, int dst)
      : name_(std::move(name)), cls_(std::move(cls)), dir_(dir), src_(src),
        dst_(dst) {}

  void on_op(sim::Time submitted, sim::Interval iv,
             std::size_t bytes) override {
    busy_ += iv.duration();
    ++ops_;
    bytes_ += bytes;
    if (iv.end > last_end_) last_end_ = iv.end;
    queue_.add(iv.start - submitted);
  }

  const std::string& name() const { return name_; }
  /// Link class label: "2xNVLink" | "1xNVLink" | "PCIe" | "host".
  const std::string& cls() const { return cls_; }
  LinkDir dir() const { return dir_; }
  int src() const { return src_; }
  int dst() const { return dst_; }

  double busy() const { return busy_; }
  std::uint64_t ops() const { return ops_; }
  std::size_t bytes() const { return bytes_; }
  sim::Time last_end() const { return last_end_; }
  const DelayHistogram& queue() const { return queue_; }

  /// Fraction of [0, span] this link was occupied; 0 when span is 0.
  double utilization(sim::Time span) const {
    return span > 0.0 ? busy_ / span : 0.0;
  }

  void reset() {
    busy_ = 0.0;
    ops_ = 0;
    bytes_ = 0;
    last_end_ = 0.0;
    queue_.clear();
  }

 private:
  std::string name_, cls_;
  LinkDir dir_;
  int src_, dst_;
  double busy_ = 0.0;
  std::uint64_t ops_ = 0;
  std::size_t bytes_ = 0;
  sim::Time last_end_ = 0.0;
  DelayHistogram queue_;
};

}  // namespace xkb::obs
