#include "obs/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "obs/provenance.hpp"
#include "trace/export.hpp"

namespace xkb::obs {

namespace {

using trace::OpKind;
using trace::Record;

/// Accumulator for link rows re-derived from trace records (no live probes).
struct DerivedRow {
  std::string cls;
  double busy = 0.0;
  std::size_t bytes = 0;
  std::uint64_t ops = 0;
  DelayHistogram q;
};

LinkRow to_row(const std::string& name, const DerivedRow& d, double span) {
  LinkRow row;
  row.name = name;
  row.cls = d.cls;
  row.busy = d.busy;
  row.util = span > 0.0 ? d.busy / span : 0.0;
  row.bytes = d.bytes;
  row.ops = d.ops;
  row.q_mean = d.q.mean();
  row.q_p95 = d.q.quantile(0.95);
  row.q_max = d.q.max;
  return row;
}

}  // namespace

RunReport build_report(const trace::Trace& tr, const topo::Topology& topo,
                       const Observability* o) {
  RunReport r;
  r.breakdown = tr.breakdown();
  r.cp = critical_path(tr, topo);
  // The traced window is [t0, last end]: a data-on-device run clears the
  // trace after its distribution phase, so utilization denominators must
  // not include the un-traced prefix.
  const double t0 = tr.t0();
  r.span = tr.span();
  if (o && o->span() > r.span) r.span = o->span();
  r.span -= t0;

  if (o) {
    for (const auto& l : o->links()) {
      if (l->ops() == 0) continue;
      LinkRow row;
      row.name = l->name();
      row.cls = l->cls();
      row.busy = l->busy();
      row.util = l->utilization(r.span);
      row.bytes = l->bytes();
      row.ops = l->ops();
      row.q_mean = l->queue().mean();
      row.q_p95 = l->queue().quantile(0.95);
      row.q_max = l->queue().max;
      r.links.push_back(std::move(row));
    }
    r.flows = o->flows().size();
    r.decisions = o->decisions().size();
  } else {
    // No live probes: re-derive per-link occupancy from the records.  This
    // path misses the shadow host-link occupancy of cross-switch PCIe peer
    // copies (the probes see it, the op trace intentionally omits it).
    std::map<std::string, DerivedRow> rows;
    for (const Record& rec : tr.records()) {
      std::string name;
      std::string cls;
      switch (rec.kind) {
        case OpKind::kHtoD:
          name = "h2d" + std::to_string(topo.host_link_of(rec.device));
          cls = "host";
          break;
        case OpKind::kDtoH:
          name = "d2h" + std::to_string(topo.host_link_of(rec.device));
          cls = "host";
          break;
        case OpKind::kPtoP:
          name = "p2p" + std::to_string(rec.peer) + "-" +
                 std::to_string(rec.device);
          cls = link_class_label(topo.link_class(rec.peer, rec.device));
          break;
        case OpKind::kKernel:
          continue;  // kernel lanes are appended below for both paths
      }
      DerivedRow& d = rows[name];
      d.cls = cls;
      d.busy += rec.end - rec.start;
      d.bytes += rec.bytes;
      ++d.ops;
      d.q.add(rec.queued);
    }
    for (const auto& [name, d] : rows)
      r.links.push_back(to_row(name, d, r.span));
  }

  // GPU compute lanes, from the kernel records (both paths).
  std::map<int, DerivedRow> lanes;
  for (const Record& rec : tr.records()) {
    if (rec.kind != OpKind::kKernel) continue;
    DerivedRow& d = lanes[rec.device];
    d.cls = "kernel";
    d.busy += rec.end - rec.start;
    ++d.ops;
    d.q.add(rec.queued);
  }
  for (const auto& [dev, d] : lanes) {
    std::string name = "k";
    name += std::to_string(dev);
    r.links.push_back(to_row(name, d, r.span));
  }

  return r;
}

std::string report_text(const RunReport& r) {
  std::ostringstream out;
  out << "== run report ==\n";
  out << "span: " << std::fixed << std::setprecision(6) << r.span << " s\n";
  out << "breakdown (s): kernel " << r.breakdown.kernel << "  HtoD "
      << r.breakdown.htod << "  DtoH " << r.breakdown.dtoh << "  PtoP "
      << r.breakdown.ptop << "\n";
  if (r.decisions || r.flows)
    out << "decisions: " << r.decisions << "  forwarding chains: " << r.flows
        << "\n";

  out << "\nlink utilization:\n";
  out << "  " << std::left << std::setw(10) << "name" << std::setw(10)
      << "class" << std::right << std::setw(10) << "busy(s)" << std::setw(8)
      << "util%" << std::setw(14) << "bytes" << std::setw(8) << "ops"
      << std::setw(11) << "q.mean(s)" << std::setw(11) << "q.p95(s)"
      << std::setw(11) << "q.max(s)" << "\n";
  for (const LinkRow& l : r.links) {
    out << "  " << std::left << std::setw(10) << l.name << std::setw(10)
        << l.cls << std::right << std::fixed << std::setprecision(4)
        << std::setw(10) << l.busy << std::setprecision(1) << std::setw(7)
        << 100.0 * l.util << "%" << std::setw(14) << l.bytes << std::setw(8)
        << l.ops << std::scientific << std::setprecision(2) << std::setw(11)
        << l.q_mean << std::setw(11) << l.q_p95 << std::setw(11) << l.q_max
        << "\n";
    out << std::defaultfloat;
  }

  // Most contended links by total queueing delay (mean * ops).
  std::vector<const LinkRow*> byq;
  for (const LinkRow& l : r.links)
    if (l.q_mean > 0.0) byq.push_back(&l);
  std::sort(byq.begin(), byq.end(), [](const LinkRow* a, const LinkRow* b) {
    const double qa = a->q_mean * static_cast<double>(a->ops);
    const double qb = b->q_mean * static_cast<double>(b->ops);
    if (qa != qb) return qa > qb;
    return a->name < b->name;
  });
  if (!byq.empty()) {
    out << "\nmost contended (total queueing delay):\n";
    for (std::size_t i = 0; i < byq.size() && i < 3; ++i) {
      const LinkRow& l = *byq[i];
      out << "  " << (i + 1) << ". " << l.name << " (" << l.cls << "): "
          << std::fixed << std::setprecision(6)
          << l.q_mean * static_cast<double>(l.ops) << " s over " << l.ops
          << " ops\n";
    }
  }

  const CriticalPath& cp = r.cp;
  out << "\ncritical path (" << cp.ops.size() << " ops, span " << std::fixed
      << std::setprecision(6) << cp.span << " s):\n";
  out << "  kernel " << cp.kernel << "  2xNVLink " << cp.nvlink2
      << "  1xNVLink " << cp.nvlink1 << "  PCIe " << cp.pcie << "  host "
      << cp.host << "  idle " << cp.idle << "\n";
  out << "  NVLink share of critical-path transfer time: " << std::fixed
      << std::setprecision(1) << 100.0 * cp.nvlink_share() << "%\n";
  return out.str();
}

std::string report_json(const RunReport& r, const Observability* o) {
  std::ostringstream out;
  out.precision(15);
  out << "{\n";
  out << "  \"provenance\": "
      << Provenance::current("xkb.obs.metrics", 1).to_json() << ",\n";
  out << "  \"span\": " << r.span << ",\n";
  out << "  \"breakdown\": {\"kernel\": " << r.breakdown.kernel
      << ", \"htod\": " << r.breakdown.htod << ", \"dtoh\": "
      << r.breakdown.dtoh << ", \"ptop\": " << r.breakdown.ptop << "},\n";
  out << "  \"decisions\": " << r.decisions << ",\n";
  out << "  \"flows\": " << r.flows << ",\n";
  out << "  \"links\": [";
  bool first = true;
  for (const LinkRow& l : r.links) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << trace::json_escape(l.name)
        << "\", \"class\": \"" << l.cls << "\", \"busy\": " << l.busy
        << ", \"util\": " << l.util << ", \"bytes\": " << l.bytes
        << ", \"ops\": " << l.ops << ", \"queue\": {\"mean\": " << l.q_mean
        << ", \"p95\": " << l.q_p95 << ", \"max\": " << l.q_max << "}}";
  }
  out << (first ? "" : "\n  ") << "],\n";
  const CriticalPath& cp = r.cp;
  out << "  \"critical_path\": {\n";
  out << "    \"kernel\": " << cp.kernel << ",\n";
  out << "    \"nvlink2\": " << cp.nvlink2 << ",\n";
  out << "    \"nvlink1\": " << cp.nvlink1 << ",\n";
  out << "    \"pcie\": " << cp.pcie << ",\n";
  out << "    \"host\": " << cp.host << ",\n";
  out << "    \"idle\": " << cp.idle << ",\n";
  out << "    \"span\": " << cp.span << ",\n";
  out << "    \"transfer\": " << cp.transfers() << ",\n";
  out << "    \"nvlink_transfer_share\": " << cp.nvlink_share() << ",\n";
  out << "    \"ops\": " << cp.ops.size() << ",\n";
  out << "    \"kernels\": {";
  first = true;
  for (const auto& [label, t] : cp.kernel_by_label) {
    out << (first ? "" : ", ") << "\"" << trace::json_escape(label)
        << "\": " << t;
    first = false;
  }
  out << "}\n  }";
  if (o) out << ",\n  \"metrics\": " << o->metrics().to_json();
  out << "\n}\n";
  return out.str();
}

std::string to_chrome_json(const trace::Trace& tr, const Observability& o) {
  std::string base = trace::to_chrome_json(tr);
  // Reopen the base array: strip the closing "\n]\n".
  const std::size_t close = base.rfind(']');
  if (close == std::string::npos) return base;
  std::size_t cut = close;
  while (cut > 0 && (base[cut - 1] == '\n' || base[cut - 1] == ' ')) --cut;
  base.resize(cut);

  std::ostringstream out;
  out.precision(15);
  auto emit = [&](const std::string& ev) { out << ",\n  " << ev; };

  // "decide" sub-track names for every device that recorded a decision.
  std::vector<bool> has_dec;
  for (const Decision& d : o.decisions()) {
    if (d.dst >= static_cast<int>(has_dec.size()))
      has_dec.resize(static_cast<std::size_t>(d.dst) + 1, false);
    if (d.dst >= 0) has_dec[static_cast<std::size_t>(d.dst)] = true;
  }
  for (std::size_t g = 0; g < has_dec.size(); ++g) {
    if (!has_dec[g]) continue;
    std::ostringstream m;
    m << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << g
      << ", \"tid\": 4, \"args\": {\"name\": \"decide\"}}";
    emit(m.str());
  }

  // Source-selection decisions as instant events with the candidate set.
  for (const Decision& d : o.decisions()) {
    std::ostringstream e;
    e.precision(15);
    e << "{\"name\": \"pick:" << to_string(d.pick)
      << "\", \"cat\": \"decision\", \"ph\": \"i\", \"s\": \"t\", \"pid\": "
      << d.dst << ", \"tid\": 4, \"ts\": " << d.t * 1e6
      << ", \"args\": {\"tile\": " << d.handle << ", \"picked_dev\": "
      << d.picked_dev << ", \"forced\": " << (d.forced ? "true" : "false")
      << ", \"candidates\": \"";
    bool cf = true;
    for (const Decision::Candidate& c : d.candidates) {
      e << (cf ? "" : "; ") << "gpu" << c.dev << " rank" << c.rank
        << (c.in_flight ? " in-flight" : "");
      cf = false;
    }
    e << "\"}}";
    emit(e.str());
  }

  // Fault-plan applications and recovery milestones as global instants on
  // a dedicated "faults" track, so a brownout or device loss can be read
  // in context with the transfers it perturbed.
  if (!o.fault_marks().empty()) {
    emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 990"
         ", \"args\": {\"name\": \"faults\"}}");
    for (const FaultMark& f : o.fault_marks()) {
      std::ostringstream e;
      e.precision(15);
      e << "{\"name\": \"" << trace::json_escape(f.what)
        << "\", \"cat\": \"fault\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 990"
        << ", \"tid\": 0, \"ts\": " << f.t * 1e6
        << ", \"args\": {\"detail\": \"" << trace::json_escape(f.detail)
        << "\"}}";
      emit(e.str());
    }
  }

  // Ready-queue depth as counter tracks (one per device).
  for (const auto& [name, s] : o.metrics().series_map()) {
    if (name.rfind("ready.gpu", 0) != 0 || s.empty()) continue;
    const int pid = std::stoi(name.substr(9));
    for (const SeriesPoint& p : s.points()) {
      std::ostringstream e;
      e.precision(15);
      e << "{\"name\": \"ready-queue\", \"ph\": \"C\", \"pid\": " << pid
        << ", \"ts\": " << p.t * 1e6 << ", \"args\": {\"depth\": " << p.v
        << "}}";
      emit(e.str());
    }
  }

  // Forwarding chains as flow arrows: reception -> chained D2D copy.  The
  // binding points sit mid-slice so the arrows attach to the right events.
  int id = 0;
  for (const Flow& f : o.flows()) {
    const char* name = f.forced ? "forced-chain" : "optimistic-chain";
    const double ts_s = (f.src_iv.start + f.src_iv.end) * 0.5e6;
    const double ts_f = (f.dst_iv.start + f.dst_iv.end) * 0.5e6;
    std::ostringstream s;
    s.precision(15);
    s << "{\"name\": \"" << name << "\", \"cat\": \"chain\", \"ph\": \"s\""
      << ", \"id\": " << id << ", \"pid\": " << f.src_dev << ", \"tid\": "
      << f.src_tid << ", \"ts\": " << ts_s << "}";
    emit(s.str());
    std::ostringstream e;
    e.precision(15);
    e << "{\"name\": \"" << name << "\", \"cat\": \"chain\", \"ph\": \"f\""
      << ", \"bp\": \"e\", \"id\": " << id << ", \"pid\": " << f.dst_dev
      << ", \"tid\": 3, \"ts\": " << ts_f << "}";
    emit(e.str());
    ++id;
  }

  // Object form (Chrome/Perfetto accept both): lets the export carry the
  // same provenance stamp as every other emitted artifact.
  return "{\n\"provenance\": " +
         Provenance::current("xkb.obs.trace", 1).to_json() +
         ",\n\"traceEvents\": " + base + out.str() + "\n]\n}\n";
}

}  // namespace xkb::obs
