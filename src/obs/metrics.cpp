#include "obs/metrics.hpp"

#include <sstream>

namespace xkb::obs {

double Series::max() const {
  double m = 0.0;
  for (const SeriesPoint& p : pts_)
    if (p.v > m) m = p.v;
  return m;
}

double MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::reset_values() {
  for (auto& [k, v] : counters_) v = 0.0;
  for (auto& [k, v] : gauges_) v = 0.0;
  for (auto& [k, s] : series_) s.clear();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out.precision(15);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << k << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << k << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [k, s] : series_) {
    out << (first ? "\n" : ",\n") << "    \"" << k << "\": [";
    bool p0 = true;
    for (const SeriesPoint& p : s.points()) {
      out << (p0 ? "" : ", ") << '[' << p.t << ", " << p.v << ']';
      p0 = false;
    }
    out << ']';
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}";
  return out.str();
}

}  // namespace xkb::obs
