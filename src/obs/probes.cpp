#include "obs/probes.hpp"

#include <algorithm>

namespace xkb::obs {

constexpr std::array<double, DelayHistogram::kBuckets - 1>
    DelayHistogram::kBounds;

void DelayHistogram::add(double d) {
  if (d < 0.0) d = 0.0;  // numeric noise from interval arithmetic
  ++n;
  sum += d;
  if (d > max) max = d;
  for (int i = 0; i < kBuckets - 1; ++i) {
    if (d <= kBounds[i]) {
      ++count[i];
      return;
    }
  }
  ++count[kBuckets - 1];
}

double DelayHistogram::quantile(double q) const {
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += count[i];
    if (static_cast<double>(seen) >= target)
      // Bucket upper bound, capped by the observed maximum (the histogram
      // keeps no raw samples, so this is as tight as it gets).
      return std::min(i < kBuckets - 1 ? kBounds[i] : max, max);
  }
  return max;
}

}  // namespace xkb::obs
