#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/provenance.hpp"
#include "trace/export.hpp"

namespace xkb::obs {

const char* to_string(FlightEntry::Kind k) {
  switch (k) {
    case FlightEntry::Kind::kKernel: return "kernel";
    case FlightEntry::Kind::kTransfer: return "transfer";
    case FlightEntry::Kind::kWait: return "wait";
    case FlightEntry::Kind::kDecision: return "decision";
    case FlightEntry::Kind::kFault: return "fault";
  }
  return "?";
}

void FlightRecorder::note(sim::Time t, FlightEntry::Kind kind, int a, int b,
                          std::uint64_t handle, std::size_t bytes,
                          const char* tag) {
  FlightEntry e;
  e.t = t;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.handle = handle;
  e.bytes = bytes;
  if (tag) {
    std::strncpy(e.tag, tag, FlightEntry::kTagLen - 1);
    e.tag[FlightEntry::kTagLen - 1] = '\0';
  }
  record(e);
}

std::vector<FlightEntry> FlightRecorder::timeline() const {
  std::vector<FlightEntry> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ring_[static_cast<std::size_t>((first + i) % cap_)]);
  return out;
}

std::string FlightRecorder::dump_json(
    const std::string& reason, const std::string& ledger_snapshot_json) const {
  std::ostringstream out;
  const Provenance p = Provenance::current("xkb.obs.flight", 1);
  out << "{\n";
  out << "\"provenance\": " << p.to_json() << ",\n";
  out << "\"reason\": \"" << trace::json_escape(reason) << "\",\n";
  out << "\"events_seen\": " << total_ << ",\n";
  out << "\"events_retained\": " << size() << ",\n";
  out << "\"timeline\": [";
  const std::vector<FlightEntry> tl = timeline();
  char buf[256];
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const FlightEntry& e = tl[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"t\": %.17g, \"kind\": \"%s\", \"a\": %d, \"b\": %d, "
                  "\"handle\": %llu, \"bytes\": %zu, \"tag\": \"%s\"}",
                  i ? ",\n " : "\n ", e.t, to_string(e.kind), e.a, e.b,
                  static_cast<unsigned long long>(e.handle), e.bytes,
                  trace::json_escape(e.tag).c_str());
    out << buf;
  }
  out << (tl.empty() ? "" : "\n") << "],\n";
  out << "\"ledger\": "
      << (ledger_snapshot_json.empty() ? "null" : ledger_snapshot_json);
  out << "\n}\n";
  return out.str();
}

}  // namespace xkb::obs
