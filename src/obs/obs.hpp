// xkb::obs -- the runtime-wide observability layer.
//
// Where xkb::check answers "is the run *correct*", xkb::obs answers "*why*
// is the run this fast (or slow)": which link every transfer crossed and how
// contended it was, which replica candidates the DataManager saw when it
// picked a source, where optimistic D2D forwarding chains flowed, and which
// operations actually bound the makespan (critical_path.hpp).  The paper
// argues its Section III heuristics through exactly this evidence (nvprof
// class breakdowns, Figs. 6-7 and 9); this layer reproduces it from the
// simulator with zero overhead when detached (one null-pointer test per
// observation point, same contract as the checker).
//
// Ownership: an Observability instance is created by the driver (bench
// skeleton, CLI, test) and attached to the Platform *before* the Runtime is
// constructed (the runtime caches series pointers for per-event queue-depth
// sampling).  It depends only on sim/topo/trace -- never on runtime -- so
// every layer above can feed it events.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace xkb::obs {

/// Caller-supplied identity of the run a ledger describes.  Lives here
/// (not ledger.hpp) because the Observability instance carries it: crash
/// dumps composed deep inside the runtime -- where lib/routine are not in
/// scope -- reuse the registered identity.
struct LedgerMeta {
  std::string lib;       ///< "xkblas", "nohint-notopo", ...
  std::string routine;   ///< "gemm", "trsm", workload name, ...
  std::string scenario;  ///< "data-on-host" | "data-on-device"
  std::size_t n = 0, tile = 0;
  std::uint64_t seed = 0;
};

}  // namespace xkb::obs

namespace xkb::obs {

/// Opt-in switch carried by BenchConfig (parallel to check::CheckConfig).
struct ObsConfig {
  bool enabled = false;
};

/// What the DataManager picked (mirror of DataManager::Source::Kind; the
/// mirror avoids an include cycle with runtime/, as in xkb::check).
enum class Pick : std::uint8_t { kHost, kDevice, kWaitDevice, kWaitHost };
const char* to_string(Pick p);

enum class Xfer : std::uint8_t { kH2D, kD2D, kD2H };

/// How an ensure_valid request hit the software cache.
enum class CacheRef : std::uint8_t { kHit, kMiss, kInFlightHit };

/// One source-selection decision: every replica candidate the policy saw
/// (with its P2P performance rank) and what it picked.  Rendered as instant
/// events in the Chrome export so a questionable source choice can be
/// inspected in context.
struct Decision {
  sim::Time t = 0.0;
  std::uint64_t handle = 0;  ///< tile id
  int dst = -1;              ///< requesting device
  Pick pick = Pick::kHost;
  int picked_dev = -1;  ///< device source/wait target, -1 for host
  bool forced = false;  ///< kWaitDevice only: coherence-forced, not chosen
  struct Candidate {
    int dev = -1;
    int rank = 0;          ///< topo::p2p_perf_rank(dev, dst)
    bool in_flight = false;  ///< optimistic candidate (reception ongoing)
  };
  std::vector<Candidate> candidates;
};

/// A fault-plan event or recovery action, stamped at the virtual instant it
/// applied.  Rendered as instant events on a dedicated "faults" track in
/// the Chrome export and folded into fault.* registry counters.
struct FaultMark {
  sim::Time t = 0.0;
  std::string what;    ///< counter key: brownout, link_down, device_fail, ...
  std::string detail;  ///< human-readable description for the export
};

/// One transfer-forwarding chain: a reception on `src_dev` whose completion
/// triggered a device-to-device copy to `dst_dev` (the Section III-C
/// optimistic heuristic, or a coherence-forced wait).  Rendered as a flow
/// arrow between the two slices in the Chrome export.
struct Flow {
  std::uint64_t handle = 0;
  int src_dev = -1, dst_dev = -1;
  int src_tid = 1;  ///< Chrome sub-track of the incoming reception
  bool forced = false;
  sim::Interval src_iv;  ///< the reception that was waited on
  sim::Interval dst_iv;  ///< the forwarded D2D copy
};

/// Virtual-time op totals by class, mirroring trace::Breakdown / the
/// TransferStats counters so the two accounting paths can be reconciled.
struct OpTotals {
  double htod = 0.0, dtoh = 0.0, ptop = 0.0, kernel = 0.0;
  std::size_t htod_bytes = 0, dtoh_bytes = 0, ptop_bytes = 0;
  std::size_t h2d = 0, d2h = 0, d2d = 0;  ///< transfer counts
};

class Observability {
 public:
  explicit Observability(int num_gpus);

  int num_gpus() const { return gpus_; }
  MetricsRegistry& metrics() { return reg_; }
  const MetricsRegistry& metrics() const { return reg_; }

  // --- platform hooks ---
  /// Create (and own) a probe for one directed channel; the platform
  /// attaches the returned pointer to the sim resource.
  sim::UsageProbe* make_link_probe(std::string name, std::string cls,
                                   LinkDir dir, int src, int dst);
  void on_kernel(int dev, const std::string& label, sim::Interval iv);

  // --- data-manager hooks ---
  void on_cache_ref(int dev, CacheRef ref);
  void on_evict(int dev, bool dirty);
  /// A kWaitDevice decision: the request on `dst` now waits for the
  /// reception ongoing on `src` (forced = coherence, else optimistic).
  void on_wait(std::uint64_t handle, int src, int dst, bool forced);
  void on_decision(Decision d);
  /// `chained` marks a D2D copy issued by a reception-completion waiter
  /// (the forwarding leg of a wait) -- it closes the pending Flow.
  void on_transfer(Xfer k, std::uint64_t handle, int src, int dst,
                   sim::Interval iv, std::size_t bytes, bool chained);

  // --- fault hooks (platform link mutations + runtime recovery) ---
  /// Record a fault instant: `what` is the counter key (becomes the
  /// registry counter "fault.<what>"), `detail` the export description.
  void on_fault_mark(sim::Time t, std::string what, std::string detail);
  /// Count a recovery action without an export-worthy instant (retries,
  /// re-plans, remaps...): bumps "fault.<what>" only.
  void count_fault(const std::string& what, double n = 1.0);

  // --- runtime hooks ---
  /// The ready-queue-depth series of `dev` ("ready.gpu<dev>"); the runtime
  /// caches the pointer and samples it on every scheduling event.
  Series* ready_series(int dev);

  // --- run identity ---
  /// Registered by the bench skeleton before the run so crash dumps
  /// composed inside the runtime (watchdog stall) still name the run.
  void set_ledger_meta(LedgerMeta m) { ledger_meta_ = std::move(m); }
  const LedgerMeta& ledger_meta() const { return ledger_meta_; }

  // --- flight recorder ---
  /// Last-N ring fed by the hooks above; always recording while attached.
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  /// Stash the crash dump composed at the failure site (watchdog stall,
  /// checker violation, exception unwind); the bench skeleton retrieves it
  /// after the catch.  First dump wins -- the failure closest to the cause.
  void set_flight_dump(std::string json) {
    if (flight_dump_.empty()) flight_dump_ = std::move(json);
  }
  const std::string& flight_dump() const { return flight_dump_; }

  // --- results ---
  const std::vector<std::unique_ptr<LinkProbe>>& links() const {
    return links_;
  }
  const std::vector<Decision>& decisions() const { return decisions_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<FaultMark>& fault_marks() const { return fault_marks_; }
  const OpTotals& totals() const { return all_; }
  /// Per-device totals with the trace's attribution: HtoD/PtoP to the
  /// receiving device, DtoH to the source device, kernels to theirs.
  const OpTotals& totals(int dev) const { return per_gpu_[dev]; }
  /// Latest virtual time observed by any hook or probe.
  sim::Time span() const;

  /// Reset every measurement in place (probes stay attached, cached series
  /// pointers stay valid).  Called where multi-phase runs clear the trace.
  void clear();

  /// Fold the measured values into the registry under canonical names
  /// (transfers.*, waits.*, cache.*, evict.*, time.*, bytes.*, link.*,
  /// gpu<g>.*).  Idempotent; call before exporting the registry.
  void finalize_registry();

  /// Independently maintained runtime counters, for cross-validation.
  struct ReconcileView {
    std::size_t h2d = 0, d2h = 0, d2d = 0;
    std::size_t optimistic_waits = 0, forced_waits = 0;
    double htod = 0.0, dtoh = 0.0, ptop = 0.0, kernel = 0.0;
    std::size_t htod_bytes = 0, dtoh_bytes = 0, ptop_bytes = 0;
  };
  /// Compare the observed event stream against `v` (TransferStats +
  /// Trace::breakdown/bytes); one message per mismatch, empty when the two
  /// accounting paths agree.  Run under --check this becomes a violation.
  std::vector<std::string> reconcile(const ReconcileView& v) const;

 private:
  int gpus_;
  MetricsRegistry reg_;
  std::vector<std::unique_ptr<LinkProbe>> links_;
  std::vector<Decision> decisions_;
  std::vector<Flow> flows_;
  std::vector<FaultMark> fault_marks_;
  std::vector<std::pair<std::string, double>> fault_counts_;  // insertion order
  OpTotals all_;
  std::vector<OpTotals> per_gpu_;
  std::vector<Series*> ready_;  ///< cached "ready.gpu<g>" series

  FlightRecorder flight_;
  std::string flight_dump_;
  LedgerMeta ledger_meta_;

  std::vector<std::uint64_t> hits_, misses_, inflight_hits_;
  std::vector<std::uint64_t> evict_clean_, evict_dirty_;
  std::uint64_t opt_waits_ = 0, forced_waits_ = 0;
  sim::Time last_event_ = 0.0;

  /// Last reception per (handle, device) + pending wait flags, for flow
  /// reconstruction.  Key packs the device into the handle id's low bits.
  struct PendingRx {
    int tid = 1;
    sim::Interval iv;
  };
  static std::uint64_t rx_key(std::uint64_t handle, int dev) {
    return (handle << 8) | static_cast<std::uint64_t>(dev);
  }
  std::unordered_map<std::uint64_t, PendingRx> pending_rx_;
  /// (handle, dst) -> forced flag of the wait that will chain to dst.
  std::unordered_map<std::uint64_t, bool> pending_wait_;
};

}  // namespace xkb::obs
