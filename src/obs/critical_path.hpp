// Critical-path attribution: which operations actually bound the makespan.
//
// The executed schedule recorded in a Trace is a DAG whose edges are implied
// by the simulator's event times: an operation's predecessor on the critical
// path is whichever operation ended exactly when it starts (a FIFO hand-off
// on the same resource -- the sim copies end times into start times
// bit-exactly) or finished within the small task-overhead slack before it
// (a dependence completion).  Candidates are ranked by causal plausibility:
// same-resource hand-off beats an operation that delivered/produced the data
// the current op consumes, which beats an unrelated coincidence of end
// times.  Walking backwards from the operation that finishes last and
// classifying each step by link class yields the paper's core argument in
// one number: how much of the binding transfer time the heuristics moved
// from PCIe/host links onto NVLink (Sections III-B/III-C, Figs. 6-7).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "topo/topology.hpp"
#include "trace/trace.hpp"

namespace xkb::obs {

/// Report label for a peer link class: "2xNVLink" | "1xNVLink" | "PCIe".
const char* link_class_label(topo::LinkClass c);

/// One step of the critical path, in execution order.
struct CpStep {
  std::size_t record = 0;  ///< index into Trace::records()
  double gap_before = 0.0;  ///< idle time between predecessor end and start
};

struct CriticalPath {
  double kernel = 0.0;
  double nvlink2 = 0.0;  ///< PtoP over 2x-bonded NVLink
  double nvlink1 = 0.0;  ///< PtoP over a single NVLink lane
  double pcie = 0.0;     ///< PtoP over the PCIe/QPI fabric
  double host = 0.0;     ///< HtoD/DtoH over a host link
  double idle = 0.0;     ///< gaps with no exactly-adjacent predecessor
  double span = 0.0;     ///< makespan of the trace
  std::map<std::string, double> kernel_by_label;
  std::vector<CpStep> ops;  ///< the path, first op to makespan op

  double transfers() const { return nvlink2 + nvlink1 + pcie + host; }
  double nvlink() const { return nvlink2 + nvlink1; }
  double total() const { return kernel + transfers(); }
  /// Fraction of critical-path transfer time carried by NVLink; 0 when the
  /// path holds no transfers.
  double nvlink_share() const {
    const double t = transfers();
    return t > 0.0 ? nvlink() / t : 0.0;
  }
};

/// Walk the executed DAG backwards from the record with the latest end time.
/// `topo` classifies PtoP records (via Record::peer) into link classes.
CriticalPath critical_path(const trace::Trace& tr, const topo::Topology& topo);

}  // namespace xkb::obs
