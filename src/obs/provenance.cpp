#include "obs/provenance.hpp"

#include <cstdlib>

#include "trace/export.hpp"

#ifndef XKB_GIT_DESCRIBE
#define XKB_GIT_DESCRIBE "unknown"
#endif
#ifndef XKB_BUILD_TYPE
#define XKB_BUILD_TYPE "unknown"
#endif

namespace xkb::obs {

namespace {

std::string env_or(const char* var, const char* dflt) {
  const char* v = std::getenv(var);
  return (v && *v) ? std::string(v) : std::string(dflt);
}

}  // namespace

Provenance Provenance::current(std::string schema, int version,
                               std::uint64_t seed) {
  Provenance p;
  p.schema = std::move(schema);
  p.version = version;
  p.git = env_or("XKB_GIT_DESCRIBE", XKB_GIT_DESCRIBE);
  p.build_type = env_or("XKB_BUILD_TYPE", XKB_BUILD_TYPE);
  p.date = env_or("XKB_RUN_DATE", "unset");
  p.seed = seed;
  return p;
}

std::string Provenance::to_json() const {
  std::string out = "{";
  out += "\"schema\": \"" + trace::json_escape(tag()) + "\", ";
  out += "\"git\": \"" + trace::json_escape(git) + "\", ";
  out += "\"build_type\": \"" + trace::json_escape(build_type) + "\", ";
  out += "\"date\": \"" + trace::json_escape(date) + "\", ";
  out += "\"seed\": " + std::to_string(seed);
  out += "}";
  return out;
}

}  // namespace xkb::obs
