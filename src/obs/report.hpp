// Human- and machine-readable run reports: per-link utilization and
// queueing-delay tables, the trace breakdown, and the critical-path
// attribution -- the output of `tools/trace_report` and of
// `xkbsim_cli --metrics-out`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/obs.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"

namespace xkb::obs {

/// One row of the utilization table: a directed link or a GPU compute lane.
struct LinkRow {
  std::string name;  ///< "h2d0", "p2p3-1", "k5", ...
  std::string cls;   ///< "2xNVLink" | "1xNVLink" | "PCIe" | "host" | "kernel"
  double busy = 0.0;
  double util = 0.0;  ///< busy / span
  std::size_t bytes = 0;
  std::uint64_t ops = 0;
  double q_mean = 0.0, q_p95 = 0.0, q_max = 0.0;  ///< queueing delay (s)
};

struct RunReport {
  double span = 0.0;
  trace::Breakdown breakdown;
  std::vector<LinkRow> links;
  CriticalPath cp;
  std::size_t flows = 0;      ///< reconstructed forwarding chains (obs only)
  std::size_t decisions = 0;  ///< recorded source decisions (obs only)
};

/// Build a report from a trace.  With `o`, link rows come from the live
/// probes (which also see the shadow host-link occupancy of cross-switch
/// PCIe peer copies); without, they are re-derived from the records alone.
RunReport build_report(const trace::Trace& tr, const topo::Topology& topo,
                       const Observability* o = nullptr);

/// Fixed-width text rendering: utilization table, most-contended links,
/// critical-path breakdown with the NVLink transfer share.
std::string report_text(const RunReport& r);

/// JSON rendering; with `o`, the metrics registry is embedded under
/// "metrics" (o->finalize_registry() must have run).
std::string report_json(const RunReport& r, const Observability* o = nullptr);

/// Chrome trace-event JSON enriched with the observability record: ready-
/// queue counter tracks, source-decision instant events on a "decide"
/// sub-track, and flow arrows connecting each optimistic/forced forwarding
/// chain's reception to its D2D copy.
std::string to_chrome_json(const trace::Trace& tr, const Observability& o);

}  // namespace xkb::obs
