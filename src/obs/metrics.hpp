// Metrics registry: named counters, gauges and virtual-time series, sampled
// on simulator events and exportable as JSON.
//
// This is the machine-readable side of xkb::obs -- the BENCH trajectory's
// harness: every `xkbsim_cli --metrics-out`, `tools/trace_report` and
// `bench/fig*` run can dump the same named values (scheduler ready-queue
// depth per device, cache hits/misses/evictions, bytes per directed link,
// optimistic vs forced waits, per-class op time) and diff them across
// configurations.  Keys are ordered (std::map) so two identical runs emit
// byte-identical JSON, which the determinism tests rely on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace xkb::obs {

struct SeriesPoint {
  sim::Time t = 0.0;
  double v = 0.0;
};

/// A step series over virtual time.  Consecutive samples with the same value
/// are deduplicated (the series records *changes*); a second sample at the
/// same instant overwrites (last write at an instant wins).
class Series {
 public:
  void sample(sim::Time t, double v) {
    if (!pts_.empty()) {
      if (pts_.back().v == v) return;
      if (pts_.back().t == t) {
        pts_.back().v = v;
        return;
      }
    }
    pts_.push_back({t, v});
  }

  const std::vector<SeriesPoint>& points() const { return pts_; }
  bool empty() const { return pts_.empty(); }
  double last() const { return pts_.empty() ? 0.0 : pts_.back().v; }
  double max() const;
  void clear() { pts_.clear(); }

 private:
  std::vector<SeriesPoint> pts_;
};

class MetricsRegistry {
 public:
  /// Reference to the named counter, created at 0 on first use.  Stable
  /// address: hot paths cache the pointer instead of re-hashing the name.
  double& counter(const std::string& name) { return counters_[name]; }
  void inc(const std::string& name, double d = 1.0) { counters_[name] += d; }
  double counter_value(const std::string& name) const;
  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }
  double gauge_value(const std::string& name) const;

  /// Named series, created empty on first use.  Stable address (node-based
  /// map): the runtime caches Series* for per-event sampling.
  Series& series(const std::string& name) { return series_[name]; }

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Series>& series_map() const { return series_; }

  /// Zero counters/gauges and clear series points IN PLACE: registered
  /// names and their addresses survive (multi-phase runs reset between the
  /// distribution and compute phases while hot-path pointers stay cached).
  void reset_values();

  /// {"counters": {...}, "gauges": {...}, "series": {"name": [[t,v],...]}}
  std::string to_json() const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Series> series_;
};

}  // namespace xkb::obs
