#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>

namespace xkb::obs {

namespace {

constexpr double kTieTol = 1e-9;  // exact-time matching slack
// How far before an op's start its enabler may have finished and still be
// matched (the runtime inserts a few microseconds of task overhead between a
// dependence completing and the dependent op starting; that sliver counts
// as idle on the path, not as a break in it).
constexpr double kEnableSlack = 1e-5;

using trace::OpKind;
using trace::Record;

/// Identity of the serial resource a record occupied, for preferring FIFO
/// hand-offs when several operations end exactly when one starts.
struct ResKey {
  int kind = 0, a = 0, b = 0;
  bool operator==(const ResKey& o) const {
    return kind == o.kind && a == o.a && b == o.b;
  }
};

ResKey res_key(const Record& r, const topo::Topology& topo) {
  switch (r.kind) {
    case OpKind::kKernel: return {0, r.device, r.lane};
    case OpKind::kHtoD: return {1, topo.host_link_of(r.device), 0};
    case OpKind::kDtoH: return {2, topo.host_link_of(r.device), 0};
    case OpKind::kPtoP: return {3, r.peer, r.device};
  }
  return {};
}

/// Could `c` plausibly have enabled `r`?  The trace has no dependence edges,
/// so the walk scores candidates: a FIFO hand-off on the same resource is
/// certain (2); an operation that delivers data where `r` consumes it, or
/// produces data where `r` reads it, is plausible (1); an unrelated
/// coincidence of end times scores 0.
int enable_score(const Record& c, const Record& r, const ResKey& c_key,
                 const ResKey& r_key) {
  if (c_key == r_key) return 2;
  switch (r.kind) {
    case OpKind::kKernel:
      // A kernel starts when its last missing operand lands on its device.
      if ((c.kind == OpKind::kPtoP || c.kind == OpKind::kHtoD) &&
          c.device == r.device)
        return 1;
      break;
    case OpKind::kPtoP:
      // A peer copy out of r.peer starts when the tile is produced there
      // (kernel) or arrives there (reception chained forward).
      if (c.kind == OpKind::kKernel && c.device == r.peer) return 1;
      if ((c.kind == OpKind::kPtoP || c.kind == OpKind::kHtoD) &&
          c.device == r.peer)
        return 1;
      break;
    case OpKind::kDtoH:
      // A write-back starts when the dirty tile's producer finishes.
      if (c.kind == OpKind::kKernel && c.device == r.device) return 1;
      break;
    case OpKind::kHtoD:
      // A host upload can be gated by the eviction that freed the slot or
      // by the write-back that made the host copy valid.
      if (c.kind == OpKind::kDtoH) return 1;
      break;
  }
  return 0;
}

}  // namespace

const char* link_class_label(topo::LinkClass c) {
  switch (c) {
    case topo::LinkClass::kNVLink2: return "2xNVLink";
    case topo::LinkClass::kNVLink1: return "1xNVLink";
    case topo::LinkClass::kPCIeP2P: return "PCIe";
    case topo::LinkClass::kNIC: return "NIC";
    default: return "none";
  }
}

CriticalPath critical_path(const trace::Trace& tr,
                           const topo::Topology& topo) {
  CriticalPath cp;
  const std::vector<Record>& recs = tr.records();
  if (recs.empty()) return cp;

  // Records sorted by end time, for predecessor lookups.
  std::vector<std::size_t> by_end(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) by_end[i] = i;
  std::sort(by_end.begin(), by_end.end(), [&recs](std::size_t a,
                                                  std::size_t b) {
    if (recs[a].end != recs[b].end) return recs[a].end < recs[b].end;
    return a < b;
  });

  // The traced window: a trace cleared mid-run (data-on-device compute
  // phase) starts at t0 > 0, and everything before it is out of scope.
  const double t0 = tr.t0();

  // Start from the operation that finishes last (the makespan event).
  std::size_t cur = by_end.back();
  cp.span = recs[cur].end - t0;

  std::vector<CpStep> rev;  // path in reverse (makespan op first)
  // Step cap: a well-formed walk visits each record at most once.
  for (std::size_t steps = 0; steps <= recs.size(); ++steps) {
    const Record& r = recs[cur];
    switch (r.kind) {
      case OpKind::kKernel:
        cp.kernel += r.end - r.start;
        cp.kernel_by_label[r.label] += r.end - r.start;
        break;
      case OpKind::kHtoD:
      case OpKind::kDtoH:
        cp.host += r.end - r.start;
        break;
      case OpKind::kPtoP: {
        const double d = r.end - r.start;
        switch (topo.link_class(r.peer, r.device)) {
          case topo::LinkClass::kNVLink2: cp.nvlink2 += d; break;
          case topo::LinkClass::kNVLink1: cp.nvlink1 += d; break;
          default: cp.pcie += d; break;
        }
        break;
      }
    }
    rev.push_back({cur, 0.0});

    if (r.start - t0 <= kTieTol) break;  // reached the window start

    // Predecessor: a record ending at r.start (FIFO hand-off) or within the
    // enable slack before it (dependence completion plus task overhead).
    // Prefer by causal score, then the latest end (least idle), then the
    // longest, then the lowest index -- deterministic on ties.
    auto lo = std::lower_bound(
        by_end.begin(), by_end.end(), r.start - kEnableSlack,
        [&recs](std::size_t i, double t) { return recs[i].end < t; });
    bool found = false;
    std::size_t best = 0;
    int best_score = -1;
    double best_end = 0.0, best_dur = -1.0;
    const ResKey want = res_key(r, topo);
    for (auto it = lo; it != by_end.end() && recs[*it].end <= r.start + kTieTol;
         ++it) {
      if (*it == cur) continue;
      const Record& c = recs[*it];
      const int score = enable_score(c, r, res_key(c, topo), want);
      const double dur = c.end - c.start;
      bool better = !found;
      if (found && score != best_score) better = score > best_score;
      else if (found && std::fabs(c.end - best_end) > kTieTol)
        better = c.end > best_end;
      else if (found && std::fabs(dur - best_dur) > kTieTol)
        better = dur > best_dur;
      else if (found)
        better = *it < best;
      if (better) {
        found = true;
        best = *it;
        best_score = score;
        best_end = c.end;
        best_dur = dur;
      }
    }
    if (found) {
      const double gap = r.start - recs[best].end;
      if (gap > kTieTol) {
        cp.idle += gap;
        rev.back().gap_before = gap;
      }
      cur = best;
      continue;
    }

    // Nothing ended within the slack: the machine sat idle.  Jump to the
    // latest record ending strictly before this start.
    if (lo == by_end.begin()) {
      cp.idle += r.start - t0;  // leading idle before the first path op
      break;
    }
    const std::size_t prev = *(lo - 1);
    const double gap = r.start - recs[prev].end;
    cp.idle += gap;
    rev.back().gap_before = gap;
    cur = prev;
  }

  cp.ops.assign(rev.rbegin(), rev.rend());
  return cp;
}

}  // namespace xkb::obs
