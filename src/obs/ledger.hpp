// Run ledger: a run's complete observable summary as one versioned JSON
// artifact, plus the differ that turns two ledgers into a causal report.
//
// A ledger captures everything the obs layer can attest about a finished
// run -- metrics registry counters, per-link utilization with queueing
// histograms, the full source-decision stream, the critical-path
// attribution, and the check event hash -- so "why did this PR shift the
// Chameleon-Tile rows" and "why did CI's makespan drift" become offline
// questions: save a ledger per side, run `tools/run_diff`, read the
// decomposition.  The differ explains a makespan delta three ways:
//
//   1. critical-path attribution shifts (kernel / 2xNVLink / 1xNVLink /
//      PCIe / host / idle) that sum to the delta, with a coverage figure;
//   2. the first diverging source decision -- which choose_source pick
//      differed, at what virtual time, with both candidate sets side by
//      side (the earliest *cause* visible in the observable record);
//   3. per-link byte/busy/utilization deltas (the effect's footprint).
//
// Everything is deterministic: a ledger serializes with fixed key order
// and %.17g times, and diffing the same two ledgers twice is
// byte-identical (the CI drift gate relies on this).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "util/json.hpp"

namespace xkb::obs {

/// Raw queueing histogram for one link row (report rows only keep the
/// mean/p95/max digest; the ledger keeps the buckets so a differ can see
/// *where* contention moved).
struct LinkQueue {
  std::array<std::uint64_t, DelayHistogram::kBuckets> count{};
  std::uint64_t n = 0;
  double sum = 0.0, max = 0.0;
};

struct RunLedger {
  static constexpr const char* kSchema = "xkb.obs.ledger";
  static constexpr int kVersion = 1;

  Provenance prov;
  LedgerMeta meta;
  RunReport report;           ///< span, breakdown, links, cp, flows, decisions
  std::vector<LinkQueue> link_queues;  ///< raw histogram per report.links row
  std::vector<Decision> decisions;     ///< full source-decision stream
  std::vector<std::pair<std::string, double>> counters;  ///< registry counters
  std::uint64_t event_hash = 0;  ///< xkb::check stream hash (0 = unchecked)
};

/// Assemble a ledger from a finished run.  `o` may be null (trace-only
/// ledger: no decisions, counters, or link histograms).
RunLedger build_ledger(const trace::Trace& tr, const topo::Topology& topo,
                       const Observability* o, std::uint64_t event_hash,
                       LedgerMeta meta);

/// Canonical JSON (schema xkb.obs.ledger/1, fixed key order, %.17g).
std::string ledger_json(const RunLedger& l);

/// Parse a ledger back from its JSON form; throws std::runtime_error on a
/// schema mismatch or malformed document.
RunLedger ledger_from_json(const util::JsonValue& doc);
RunLedger ledger_from_file(const std::string& path);

// --- differ ---

/// One named attribution category of the makespan decomposition.
struct CatDelta {
  std::string name;  ///< kernel | 2xNVLink | 1xNVLink | PCIe | host | idle
  double a = 0.0, b = 0.0;
  double delta() const { return b - a; }
};

/// Per-link byte/occupancy shift (union of both ledgers' link rows).
struct LinkDelta {
  std::string name, cls;
  double busy_a = 0.0, busy_b = 0.0;
  double util_a = 0.0, util_b = 0.0;
  double bytes_a = 0.0, bytes_b = 0.0;
  double ops_a = 0.0, ops_b = 0.0;
};

struct LedgerDiff {
  double span_a = 0.0, span_b = 0.0;
  double dspan() const { return span_b - span_a; }

  std::vector<CatDelta> cats;  ///< fixed order; deltas sum to ~dspan
  /// Share of |dspan| explained by the named categories: 1 - |residual| /
  /// |dspan| (1.0 when dspan is 0).  The acceptance gate requires >= 0.9.
  double coverage = 1.0;

  bool hashes_equal = false;

  /// First index where the decision streams differ; npos when they agree
  /// (including both empty).  `*_end` flags a stream that simply ended.
  static constexpr std::size_t kNoDivergence = static_cast<std::size_t>(-1);
  std::size_t first_divergence = kNoDivergence;
  bool a_ended = false, b_ended = false;

  std::vector<LinkDelta> links;
};

LedgerDiff diff_ledgers(const RunLedger& a, const RunLedger& b);

/// Deterministic human-readable causal report (run_diff's stdout).
std::string diff_text(const RunLedger& a, const RunLedger& b,
                      const LedgerDiff& d);

/// Deterministic JSON rendering of the diff (schema xkb.obs.rundiff/1).
std::string diff_json(const RunLedger& a, const RunLedger& b,
                      const LedgerDiff& d);

}  // namespace xkb::obs
