// Artifact provenance: every JSON file the simulator or its tools emit
// (metrics reports, run ledgers, chaos/workload/perf bench results,
// flight-recorder dumps) carries a "provenance" object identifying the
// schema it conforms to and the build that produced it.  Without it a
// BENCH point or a ledger on disk is unmoored -- you cannot tell whether
// two artifacts are comparable, which commit a regression first appeared
// in, or whether a Debug build polluted a perf trajectory.
//
// Determinism: nothing here reads a clock.  The git revision and build
// type are baked in at configure time (XKB_GIT_DESCRIBE / XKB_BUILD_TYPE
// compile definitions) and overridable via same-named environment
// variables; the date is *passed in by the harness* (XKB_RUN_DATE env or
// an explicit tool flag) and defaults to "unset", so two runs in the same
// environment produce byte-identical artifacts.
#pragma once

#include <cstdint>
#include <string>

namespace xkb::obs {

struct Provenance {
  std::string schema;      ///< schema id, e.g. "xkb.obs.ledger"
  int version = 1;         ///< schema version; together: "<schema>/<version>"
  std::string git;         ///< git describe of the producing build
  std::string build_type;  ///< CMAKE_BUILD_TYPE of the producing build
  std::string date;        ///< harness-supplied timestamp ("unset" if none)
  std::uint64_t seed = 0;  ///< dominant seed of the run (0 when seedless)

  /// Combined schema tag, e.g. "xkb.obs.ledger/1".
  std::string tag() const { return schema + "/" + std::to_string(version); }

  /// Provenance for this build: git/build_type from compile definitions
  /// (environment overrides honoured), date from XKB_RUN_DATE.
  static Provenance current(std::string schema, int version,
                            std::uint64_t seed = 0);

  /// Canonical JSON object (fixed key order; embed under "provenance").
  std::string to_json() const;
};

}  // namespace xkb::obs
