#include "obs/obs.hpp"

#include <algorithm>
#include <sstream>

namespace xkb::obs {

const char* to_string(Pick p) {
  switch (p) {
    case Pick::kHost: return "host";
    case Pick::kDevice: return "device";
    case Pick::kWaitDevice: return "wait-device";
    case Pick::kWaitHost: return "wait-host";
  }
  return "?";
}

Observability::Observability(int num_gpus)
    : gpus_(num_gpus),
      per_gpu_(static_cast<std::size_t>(num_gpus)),
      ready_(static_cast<std::size_t>(num_gpus), nullptr),
      hits_(static_cast<std::size_t>(num_gpus), 0),
      misses_(static_cast<std::size_t>(num_gpus), 0),
      inflight_hits_(static_cast<std::size_t>(num_gpus), 0),
      evict_clean_(static_cast<std::size_t>(num_gpus), 0),
      evict_dirty_(static_cast<std::size_t>(num_gpus), 0) {}

sim::UsageProbe* Observability::make_link_probe(std::string name,
                                                std::string cls, LinkDir dir,
                                                int src, int dst) {
  links_.push_back(std::make_unique<LinkProbe>(std::move(name),
                                               std::move(cls), dir, src, dst));
  return links_.back().get();
}

void Observability::on_kernel(int dev, const std::string& label,
                              sim::Interval iv) {
  all_.kernel += iv.duration();
  per_gpu_[static_cast<std::size_t>(dev)].kernel += iv.duration();
  if (iv.end > last_event_) last_event_ = iv.end;
  flight_.note(iv.end, FlightEntry::Kind::kKernel, dev, -1, 0, 0,
               label.c_str());
}

void Observability::on_cache_ref(int dev, CacheRef ref) {
  auto d = static_cast<std::size_t>(dev);
  switch (ref) {
    case CacheRef::kHit: ++hits_[d]; break;
    case CacheRef::kMiss: ++misses_[d]; break;
    case CacheRef::kInFlightHit: ++inflight_hits_[d]; break;
  }
}

void Observability::on_evict(int dev, bool dirty) {
  auto d = static_cast<std::size_t>(dev);
  if (dirty)
    ++evict_dirty_[d];
  else
    ++evict_clean_[d];
}

void Observability::on_wait(std::uint64_t handle, int src, int dst,
                            bool forced) {
  if (forced)
    ++forced_waits_;
  else
    ++opt_waits_;
  pending_wait_[rx_key(handle, dst)] = forced;
  flight_.note(last_event_, FlightEntry::Kind::kWait, src, dst, handle, 0,
               forced ? "forced" : "optimistic");
}

void Observability::on_decision(Decision d) {
  if (d.t > last_event_) last_event_ = d.t;
  flight_.note(d.t, FlightEntry::Kind::kDecision, d.picked_dev, d.dst,
               d.handle, 0, to_string(d.pick));
  decisions_.push_back(std::move(d));
}

void Observability::on_fault_mark(sim::Time t, std::string what,
                                  std::string detail) {
  if (t > last_event_) last_event_ = t;
  count_fault(what);
  flight_.note(t, FlightEntry::Kind::kFault, -1, -1, 0, 0, what.c_str());
  fault_marks_.push_back(FaultMark{t, std::move(what), std::move(detail)});
}

void Observability::count_fault(const std::string& what, double n) {
  for (auto& kv : fault_counts_)
    if (kv.first == what) {
      kv.second += n;
      return;
    }
  fault_counts_.emplace_back(what, n);
}

void Observability::on_transfer(Xfer k, std::uint64_t handle, int src, int dst,
                                sim::Interval iv, std::size_t bytes,
                                bool chained) {
  const double dur = iv.duration();
  if (iv.end > last_event_) last_event_ = iv.end;
  {
    const char* tag = k == Xfer::kH2D ? "h2d" : k == Xfer::kD2D ? "d2d"
                                                                : "d2h";
    flight_.note(iv.end, FlightEntry::Kind::kTransfer,
                 k == Xfer::kH2D ? -1 : src, k == Xfer::kD2H ? -1 : dst,
                 handle, bytes, chained ? (k == Xfer::kD2D ? "d2d-chained"
                                                           : tag)
                                        : tag);
  }
  switch (k) {
    case Xfer::kH2D: {
      auto& g = per_gpu_[static_cast<std::size_t>(dst)];
      all_.htod += dur;
      all_.htod_bytes += bytes;
      ++all_.h2d;
      g.htod += dur;
      g.htod_bytes += bytes;
      ++g.h2d;
      pending_rx_[rx_key(handle, dst)] = PendingRx{1, iv};
      break;
    }
    case Xfer::kD2D: {
      auto& g = per_gpu_[static_cast<std::size_t>(dst)];
      all_.ptop += dur;
      all_.ptop_bytes += bytes;
      ++all_.d2d;
      g.ptop += dur;
      g.ptop_bytes += bytes;
      ++g.d2d;
      if (chained) {
        // This copy is the forwarding leg of a wait: connect it back to the
        // reception it chained off (still the most recent rx on `src`).
        auto rx = pending_rx_.find(rx_key(handle, src));
        auto w = pending_wait_.find(rx_key(handle, dst));
        if (rx != pending_rx_.end()) {
          Flow f;
          f.handle = handle;
          f.src_dev = src;
          f.dst_dev = dst;
          f.src_tid = rx->second.tid;
          f.src_iv = rx->second.iv;
          f.dst_iv = iv;
          f.forced = w != pending_wait_.end() && w->second;
          flows_.push_back(f);
        }
        if (w != pending_wait_.end()) pending_wait_.erase(w);
      }
      pending_rx_[rx_key(handle, dst)] = PendingRx{3, iv};
      break;
    }
    case Xfer::kD2H: {
      auto& g = per_gpu_[static_cast<std::size_t>(src)];
      all_.dtoh += dur;
      all_.dtoh_bytes += bytes;
      ++all_.d2h;
      g.dtoh += dur;
      g.dtoh_bytes += bytes;
      ++g.d2h;
      break;
    }
  }
}

Series* Observability::ready_series(int dev) {
  auto d = static_cast<std::size_t>(dev);
  if (!ready_[d])
    ready_[d] = &reg_.series("ready.gpu" + std::to_string(dev));
  return ready_[d];
}

sim::Time Observability::span() const {
  sim::Time s = last_event_;
  for (const auto& l : links_)
    if (l->last_end() > s) s = l->last_end();
  return s;
}

void Observability::clear() {
  for (auto& l : links_) l->reset();
  decisions_.clear();
  flows_.clear();
  fault_marks_.clear();
  fault_counts_.clear();
  all_ = OpTotals{};
  for (auto& g : per_gpu_) g = OpTotals{};
  std::fill(hits_.begin(), hits_.end(), 0);
  std::fill(misses_.begin(), misses_.end(), 0);
  std::fill(inflight_hits_.begin(), inflight_hits_.end(), 0);
  std::fill(evict_clean_.begin(), evict_clean_.end(), 0);
  std::fill(evict_dirty_.begin(), evict_dirty_.end(), 0);
  opt_waits_ = forced_waits_ = 0;
  last_event_ = 0.0;
  pending_rx_.clear();
  pending_wait_.clear();
  flight_.clear();
  flight_dump_.clear();
  reg_.reset_values();
}

void Observability::finalize_registry() {
  auto set = [this](const std::string& k, double v) { reg_.counter(k) = v; };
  set("transfers.h2d", static_cast<double>(all_.h2d));
  set("transfers.d2d", static_cast<double>(all_.d2d));
  set("transfers.d2h", static_cast<double>(all_.d2h));
  set("waits.optimistic", static_cast<double>(opt_waits_));
  set("waits.forced", static_cast<double>(forced_waits_));
  set("time.kernel", all_.kernel);
  set("time.htod", all_.htod);
  set("time.dtoh", all_.dtoh);
  set("time.ptop", all_.ptop);
  set("bytes.htod", static_cast<double>(all_.htod_bytes));
  set("bytes.dtoh", static_cast<double>(all_.dtoh_bytes));
  set("bytes.ptop", static_cast<double>(all_.ptop_bytes));
  set("decisions", static_cast<double>(decisions_.size()));
  set("flows", static_cast<double>(flows_.size()));
  for (const auto& kv : fault_counts_) set("fault." + kv.first, kv.second);
  std::uint64_t hits = 0, misses = 0, inflight = 0, ec = 0, ed = 0;
  for (int g = 0; g < gpus_; ++g) {
    auto d = static_cast<std::size_t>(g);
    hits += hits_[d];
    misses += misses_[d];
    inflight += inflight_hits_[d];
    ec += evict_clean_[d];
    ed += evict_dirty_[d];
    const std::string p = "gpu" + std::to_string(g) + ".";
    const OpTotals& t = per_gpu_[d];
    set(p + "time.kernel", t.kernel);
    set(p + "time.htod", t.htod);
    set(p + "time.dtoh", t.dtoh);
    set(p + "time.ptop", t.ptop);
    set(p + "cache.hits", static_cast<double>(hits_[d]));
    set(p + "cache.misses", static_cast<double>(misses_[d]));
    set(p + "cache.inflight_hits", static_cast<double>(inflight_hits_[d]));
    set(p + "evict.clean", static_cast<double>(evict_clean_[d]));
    set(p + "evict.dirty", static_cast<double>(evict_dirty_[d]));
  }
  set("cache.hits", static_cast<double>(hits));
  set("cache.misses", static_cast<double>(misses));
  set("cache.inflight_hits", static_cast<double>(inflight));
  set("evict.clean", static_cast<double>(ec));
  set("evict.dirty", static_cast<double>(ed));
  for (const auto& l : links_) {
    set("link." + l->name() + ".bytes", static_cast<double>(l->bytes()));
    set("link." + l->name() + ".busy", l->busy());
    set("link." + l->name() + ".ops", static_cast<double>(l->ops()));
  }
  reg_.set_gauge("span", span());
}

std::vector<std::string> Observability::reconcile(
    const ReconcileView& v) const {
  std::vector<std::string> out;
  auto chk_u = [&out](const char* what, std::size_t obs, std::size_t other) {
    if (obs != other) {
      std::ostringstream os;
      os << "obs reconcile: " << what << " observed " << obs
         << " != runtime " << other;
      out.push_back(os.str());
    }
  };
  auto chk_t = [&out](const char* what, double obs, double other) {
    const double tol = 1e-9 * (1.0 + (obs > other ? obs : other));
    const double diff = obs > other ? obs - other : other - obs;
    if (diff > tol) {
      std::ostringstream os;
      os.precision(17);
      os << "obs reconcile: " << what << " observed " << obs
         << " != trace " << other;
      out.push_back(os.str());
    }
  };
  chk_u("h2d transfer count", all_.h2d, v.h2d);
  chk_u("d2h transfer count", all_.d2h, v.d2h);
  chk_u("d2d transfer count", all_.d2d, v.d2d);
  chk_u("optimistic waits", opt_waits_, v.optimistic_waits);
  chk_u("forced waits", forced_waits_, v.forced_waits);
  chk_u("htod bytes", all_.htod_bytes, v.htod_bytes);
  chk_u("dtoh bytes", all_.dtoh_bytes, v.dtoh_bytes);
  chk_u("ptop bytes", all_.ptop_bytes, v.ptop_bytes);
  chk_t("htod time", all_.htod, v.htod);
  chk_t("dtoh time", all_.dtoh, v.dtoh);
  chk_t("ptop time", all_.ptop, v.ptop);
  chk_t("kernel time", all_.kernel, v.kernel);
  return out;
}

}  // namespace xkb::obs
