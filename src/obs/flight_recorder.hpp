// Crash flight recorder: a bounded ring of the last N observable events,
// source decisions, and fault-lane triggers, dumped together with a
// ledger snapshot when a run dies -- watchdog stall, checker violation,
// or an exception unwinding out of Engine::run.  A chaos_matrix failure
// then reads as a last-seconds timeline ("brownout hit p2p1-0, three
// transfers queued behind it, gpu1's fetch picked wait-device, nothing
// progressed since t=...") instead of a bare hash mismatch or a
// StuckProgress one-liner.
//
// The ring records through the same Observability hooks the metrics
// already use, so it costs one bounded-copy per observed event and
// nothing on the simulation's virtual-time lane; recording is always on
// while an Observability instance is attached.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace xkb::obs {

struct FlightEntry {
  enum class Kind : std::uint8_t {
    kKernel,    ///< kernel completion (a = device)
    kTransfer,  ///< h2d/d2d/d2h completion (a = src or -1 host, b = dst)
    kWait,      ///< wait-for-inflight decision applied (a = src, b = dst)
    kDecision,  ///< choose_source pick (a = picked_dev, b = dst)
    kFault,     ///< fault-plan trigger or recovery action
  };
  static constexpr std::size_t kTagLen = 48;

  sim::Time t = 0.0;
  Kind kind = Kind::kKernel;
  int a = -1, b = -1;
  std::uint64_t handle = 0;
  std::size_t bytes = 0;
  char tag[kTagLen] = {};  ///< label / pick / fault kind, truncated
};

const char* to_string(FlightEntry::Kind k);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : cap_(capacity ? capacity : 1) {
    ring_.resize(cap_);
  }

  /// Push one entry, overwriting the oldest once the ring is full.
  void record(const FlightEntry& e) {
    ring_[static_cast<std::size_t>(total_ % cap_)] = e;
    ++total_;
  }

  /// Convenience: build the entry in place (tag truncated to kTagLen-1).
  void note(sim::Time t, FlightEntry::Kind kind, int a, int b,
            std::uint64_t handle, std::size_t bytes, const char* tag);

  std::uint64_t total() const { return total_; }
  std::size_t capacity() const { return cap_; }
  std::size_t size() const {
    return total_ < cap_ ? static_cast<std::size_t>(total_) : cap_;
  }

  /// Retained entries, oldest first.
  std::vector<FlightEntry> timeline() const;

  void clear() { total_ = 0; }

  /// The dump artifact (schema xkb.obs.flight/1): reason, drop stats, the
  /// last-N timeline, and the caller-built ledger snapshot embedded
  /// verbatim under "ledger" (pass "null" when no ledger is available).
  std::string dump_json(const std::string& reason,
                        const std::string& ledger_snapshot_json) const;

 private:
  std::size_t cap_;
  std::uint64_t total_ = 0;
  std::vector<FlightEntry> ring_;
};

}  // namespace xkb::obs
