#include "core/compat.hpp"

#include <memory>
#include <stdexcept>

namespace xkblas {

namespace {

Context* g_context = nullptr;
std::unique_ptr<Context> g_default;

template <typename T>
MatrixView<const T> cview(const T* p, std::size_t m, std::size_t n,
                          std::size_t ld) {
  return MatrixView<const T>(p, m, n, ld);
}
template <typename T>
MatrixView<T> mview(T* p, std::size_t m, std::size_t n, std::size_t ld) {
  return MatrixView<T>(p, m, n, ld);
}

/// Dimensions of a stored operand whose op()-shape is rows x cols.
std::pair<std::size_t, std::size_t> stored_dims(Op op, std::size_t rows,
                                                std::size_t cols) {
  return op == Op::NoTrans ? std::make_pair(rows, cols)
                           : std::make_pair(cols, rows);
}

}  // namespace

void xkblas_set_context(Context* ctx) { g_context = ctx; }

Context& xkblas_context() {
  if (g_context) return *g_context;
  if (!g_default) {
    Options opt;
    opt.platform.functional = true;
    opt.tile = 256;
    g_default = std::make_unique<Context>(opt);
  }
  return *g_default;
}

Op op_from_char(char t) {
  switch (t) {
    case 'N': case 'n': return Op::NoTrans;
    case 'T': case 't': return Op::Trans;
    case 'C': case 'c': return Op::ConjTrans;
  }
  throw std::invalid_argument("bad trans option");
}
Uplo uplo_from_char(char u) {
  switch (u) {
    case 'L': case 'l': return Uplo::Lower;
    case 'U': case 'u': return Uplo::Upper;
  }
  throw std::invalid_argument("bad uplo option");
}
Side side_from_char(char s) {
  switch (s) {
    case 'L': case 'l': return Side::Left;
    case 'R': case 'r': return Side::Right;
  }
  throw std::invalid_argument("bad side option");
}
Diag diag_from_char(char d) {
  switch (d) {
    case 'N': case 'n': return Diag::NonUnit;
    case 'U': case 'u': return Diag::Unit;
  }
  throw std::invalid_argument("bad diag option");
}

namespace {

template <typename T>
void gemm_impl(char transa, char transb, std::size_t m, std::size_t n,
               std::size_t k, T alpha, const T* a, std::size_t lda,
               const T* b, std::size_t ldb, T beta, T* c, std::size_t ldc) {
  const Op opa = op_from_char(transa), opb = op_from_char(transb);
  const auto [am, an] = stored_dims(opa, m, k);
  const auto [bm, bn] = stored_dims(opb, k, n);
  xkblas_context().gemm_async<T>(opa, opb, alpha, cview(a, am, an, lda),
                                 cview(b, bm, bn, ldb), beta,
                                 mview(c, m, n, ldc));
}

template <typename T>
void trxm_impl(bool solve, char side, char uplo, char transa, char diag,
               std::size_t m, std::size_t n, T alpha, const T* a,
               std::size_t lda, T* b, std::size_t ldb) {
  const Side s = side_from_char(side);
  const std::size_t na = s == Side::Left ? m : n;
  Context& ctx = xkblas_context();
  if (solve)
    ctx.trsm_async<T>(s, uplo_from_char(uplo), op_from_char(transa),
                      diag_from_char(diag), alpha, cview(a, na, na, lda),
                      mview(b, m, n, ldb));
  else
    ctx.trmm_async<T>(s, uplo_from_char(uplo), op_from_char(transa),
                      diag_from_char(diag), alpha, cview(a, na, na, lda),
                      mview(b, m, n, ldb));
}

template <typename T>
void symm_impl(char side, char uplo, std::size_t m, std::size_t n, T alpha,
               const T* a, std::size_t lda, const T* b, std::size_t ldb,
               T beta, T* c, std::size_t ldc, bool hermitian) {
  const Side s = side_from_char(side);
  const std::size_t na = s == Side::Left ? m : n;
  Context& ctx = xkblas_context();
  if constexpr (!std::is_floating_point_v<T>) {
    if (hermitian) {
      ctx.hemm_async<T>(s, uplo_from_char(uplo), alpha, cview(a, na, na, lda),
                        cview(b, m, n, ldb), beta, mview(c, m, n, ldc));
      return;
    }
  }
  (void)hermitian;
  ctx.symm_async<T>(s, uplo_from_char(uplo), alpha, cview(a, na, na, lda),
                    cview(b, m, n, ldb), beta, mview(c, m, n, ldc));
}

template <typename T>
void syrk_impl(char uplo, char trans, std::size_t n, std::size_t k, T alpha,
               const T* a, std::size_t lda, T beta, T* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().syrk_async<T>(uplo_from_char(uplo), op, alpha,
                                 cview(a, am, an, lda), beta,
                                 mview(c, n, n, ldc));
}

template <typename T>
void syr2k_impl(char uplo, char trans, std::size_t n, std::size_t k, T alpha,
                const T* a, std::size_t lda, const T* b, std::size_t ldb,
                T beta, T* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().syr2k_async<T>(uplo_from_char(uplo), op, alpha,
                                  cview(a, am, an, lda),
                                  cview(b, am, an, ldb), beta,
                                  mview(c, n, n, ldc));
}

template <typename T>
void herk_impl(char uplo, char trans, std::size_t n, std::size_t k,
               xkb::real_t<T> alpha, const T* a, std::size_t lda,
               xkb::real_t<T> beta, T* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().herk_async<T>(uplo_from_char(uplo), op, alpha,
                                 cview(a, am, an, lda), beta,
                                 mview(c, n, n, ldc));
}

template <typename T>
void her2k_impl(char uplo, char trans, std::size_t n, std::size_t k, T alpha,
                const T* a, std::size_t lda, const T* b, std::size_t ldb,
                xkb::real_t<T> beta, T* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().her2k_async<T>(uplo_from_char(uplo), op, alpha,
                                  cview(a, am, an, lda),
                                  cview(b, am, an, ldb), beta,
                                  mview(c, n, n, ldc));
}

}  // namespace

void xkblas_dgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, double alpha,
                        const double* a, std::size_t lda, const double* b,
                        std::size_t ldb, double beta, double* c,
                        std::size_t ldc) {
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_dsymm_async(char side, char uplo, std::size_t m, std::size_t n,
                        double alpha, const double* a, std::size_t lda,
                        const double* b, std::size_t ldb, double beta,
                        double* c, std::size_t ldc) {
  const Side s = side_from_char(side);
  const std::size_t na = s == Side::Left ? m : n;
  xkblas_context().symm_async<double>(
      s, uplo_from_char(uplo), alpha, cview(a, na, na, lda),
      cview(b, m, n, ldb), beta, mview(c, m, n, ldc));
}

void xkblas_dsyrk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        double alpha, const double* a, std::size_t lda,
                        double beta, double* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().syrk_async<double>(uplo_from_char(uplo), op, alpha,
                                      cview(a, am, an, lda), beta,
                                      mview(c, n, n, ldc));
}

void xkblas_dsyr2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         double alpha, const double* a, std::size_t lda,
                         const double* b, std::size_t ldb, double beta,
                         double* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  const auto [bm, bn] = stored_dims(op, n, k);
  xkblas_context().syr2k_async<double>(
      uplo_from_char(uplo), op, alpha, cview(a, am, an, lda),
      cview(b, bm, bn, ldb), beta, mview(c, n, n, ldc));
}

void xkblas_dtrmm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, double alpha,
                        const double* a, std::size_t lda, double* b,
                        std::size_t ldb) {
  trxm_impl(false, side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void xkblas_dtrsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, double alpha,
                        const double* a, std::size_t lda, double* b,
                        std::size_t ldb) {
  trxm_impl(true, side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void xkblas_sgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, float alpha,
                        const float* a, std::size_t lda, const float* b,
                        std::size_t ldb, float beta, float* c,
                        std::size_t ldc) {
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_ssymm_async(char side, char uplo, std::size_t m, std::size_t n,
                        float alpha, const float* a, std::size_t lda,
                        const float* b, std::size_t ldb, float beta, float* c,
                        std::size_t ldc) {
  symm_impl(side, uplo, m, n, alpha, a, lda, b, ldb, beta, c, ldc, false);
}

void xkblas_ssyrk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        float alpha, const float* a, std::size_t lda,
                        float beta, float* c, std::size_t ldc) {
  syrk_impl(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
}

void xkblas_ssyr2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         float alpha, const float* a, std::size_t lda,
                         const float* b, std::size_t ldb, float beta,
                         float* c, std::size_t ldc) {
  syr2k_impl(uplo, trans, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_strmm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, float alpha,
                        const float* a, std::size_t lda, float* b,
                        std::size_t ldb) {
  trxm_impl(false, side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void xkblas_strsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, float alpha,
                        const float* a, std::size_t lda, float* b,
                        std::size_t ldb) {
  trxm_impl(true, side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void xkblas_cgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, cfloat alpha,
                        const cfloat* a, std::size_t lda, const cfloat* b,
                        std::size_t ldb, cfloat beta, cfloat* c,
                        std::size_t ldc) {
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_chemm_async(char side, char uplo, std::size_t m, std::size_t n,
                        cfloat alpha, const cfloat* a, std::size_t lda,
                        const cfloat* b, std::size_t ldb, cfloat beta,
                        cfloat* c, std::size_t ldc) {
  symm_impl(side, uplo, m, n, alpha, a, lda, b, ldb, beta, c, ldc, true);
}

void xkblas_cherk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        float alpha, const cfloat* a, std::size_t lda,
                        float beta, cfloat* c, std::size_t ldc) {
  herk_impl(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
}

void xkblas_cher2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         cfloat alpha, const cfloat* a, std::size_t lda,
                         const cfloat* b, std::size_t ldb, float beta,
                         cfloat* c, std::size_t ldc) {
  her2k_impl(uplo, trans, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_ctrsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, cfloat alpha,
                        const cfloat* a, std::size_t lda, cfloat* b,
                        std::size_t ldb) {
  trxm_impl(true, side, uplo, transa, diag, m, n, alpha, a, lda, b, ldb);
}

void xkblas_zgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, zdouble alpha,
                        const zdouble* a, std::size_t lda, const zdouble* b,
                        std::size_t ldb, zdouble beta, zdouble* c,
                        std::size_t ldc) {
  gemm_impl(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void xkblas_zhemm_async(char side, char uplo, std::size_t m, std::size_t n,
                        zdouble alpha, const zdouble* a, std::size_t lda,
                        const zdouble* b, std::size_t ldb, zdouble beta,
                        zdouble* c, std::size_t ldc) {
  const Side s = side_from_char(side);
  const std::size_t na = s == Side::Left ? m : n;
  xkblas_context().hemm_async<zdouble>(
      s, uplo_from_char(uplo), alpha, cview(a, na, na, lda),
      cview(b, m, n, ldb), beta, mview(c, m, n, ldc));
}

void xkblas_zherk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        double alpha, const zdouble* a, std::size_t lda,
                        double beta, zdouble* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  xkblas_context().herk_async<zdouble>(uplo_from_char(uplo), op, alpha,
                                       cview(a, am, an, lda), beta,
                                       mview(c, n, n, ldc));
}

void xkblas_zher2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         zdouble alpha, const zdouble* a, std::size_t lda,
                         const zdouble* b, std::size_t ldb, double beta,
                         zdouble* c, std::size_t ldc) {
  const Op op = op_from_char(trans);
  const auto [am, an] = stored_dims(op, n, k);
  const auto [bm, bn] = stored_dims(op, n, k);
  xkblas_context().her2k_async<zdouble>(
      uplo_from_char(uplo), op, alpha, cview(a, am, an, lda),
      cview(b, bm, bn, ldb), beta, mview(c, n, n, ldc));
}

void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const double* a, std::size_t lda) {
  xkblas_context().memory_coherent_async<double>(cview(a, m, n, lda));
}
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const float* a, std::size_t lda) {
  xkblas_context().memory_coherent_async<float>(cview(a, m, n, lda));
}
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const zdouble* a, std::size_t lda) {
  xkblas_context().memory_coherent_async<zdouble>(cview(a, m, n, lda));
}
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const cfloat* a, std::size_t lda) {
  xkblas_context().memory_coherent_async<cfloat>(cview(a, m, n, lda));
}

void xkblas_distribute_2dblock_cyclic_async(std::size_t m, std::size_t n,
                                            const double* a,
                                            std::size_t lda) {
  xkblas_context().distribute_2d_block_cyclic_async<double>(
      cview(a, m, n, lda));
}

void xkblas_host_overwrite_async(std::size_t m, std::size_t n,
                                 const double* a, std::size_t lda) {
  xkblas_context().host_overwrite_async<double>(cview(a, m, n, lda));
}

double xkblas_sync() { return xkblas_context().sync(); }

}  // namespace xkblas
