// Drop-in, C-style BLAS entry points.
//
// The real XKBlas ships a dynamic library that traps Fortran/C BLAS calls
// (like NVBLAS does for cuBLAS-XT) and offloads them to the GPUs -- the
// paper's Section IV-D drop-in replacement scenario.  This header mirrors
// that surface: free functions with raw column-major pointers, leading
// dimensions and character options ('N'/'T'/'C', 'L'/'U', ...), operating
// on a process-wide default Context that can be replaced for testing or
// configuration.
//
//   xkblas_dtrsm_async('L', 'L', 'N', 'N', n, n, 1.0, a, n, b, n);
//   xkblas_dgemm_async('T', 'N', n, n, n, 1.0, b, n, b, n, 1.0, c, n);
//   xkblas_memory_coherent_async(n, n, c, n);
//   xkblas_sync();
#pragma once

#include <complex>
#include <cstddef>

#include "core/xkblas.hpp"

namespace xkblas {

/// Replace the process-wide context (ownership stays with the caller).
/// Passing nullptr reverts to a lazily created default (simulated DGX-1,
/// functional mode, tile 256).
void xkblas_set_context(Context* ctx);

/// The context the compat calls go to (creates the default on first use).
Context& xkblas_context();

/// Parse BLAS character options ('N','T','C' / 'L','U' / 'L','R' / 'N','U').
Op op_from_char(char t);
Uplo uplo_from_char(char u);
Side side_from_char(char s);
Diag diag_from_char(char d);

// ---- double precision ----
void xkblas_dgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, double alpha,
                        const double* a, std::size_t lda, const double* b,
                        std::size_t ldb, double beta, double* c,
                        std::size_t ldc);
void xkblas_dsymm_async(char side, char uplo, std::size_t m, std::size_t n,
                        double alpha, const double* a, std::size_t lda,
                        const double* b, std::size_t ldb, double beta,
                        double* c, std::size_t ldc);
void xkblas_dsyrk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        double alpha, const double* a, std::size_t lda,
                        double beta, double* c, std::size_t ldc);
void xkblas_dsyr2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         double alpha, const double* a, std::size_t lda,
                         const double* b, std::size_t ldb, double beta,
                         double* c, std::size_t ldc);
void xkblas_dtrmm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, double alpha,
                        const double* a, std::size_t lda, double* b,
                        std::size_t ldb);
void xkblas_dtrsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, double alpha,
                        const double* a, std::size_t lda, double* b,
                        std::size_t ldb);

// ---- single precision ----
void xkblas_sgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, float alpha,
                        const float* a, std::size_t lda, const float* b,
                        std::size_t ldb, float beta, float* c,
                        std::size_t ldc);
void xkblas_ssymm_async(char side, char uplo, std::size_t m, std::size_t n,
                        float alpha, const float* a, std::size_t lda,
                        const float* b, std::size_t ldb, float beta, float* c,
                        std::size_t ldc);
void xkblas_ssyrk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        float alpha, const float* a, std::size_t lda,
                        float beta, float* c, std::size_t ldc);
void xkblas_ssyr2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         float alpha, const float* a, std::size_t lda,
                         const float* b, std::size_t ldb, float beta,
                         float* c, std::size_t ldc);
void xkblas_strmm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, float alpha,
                        const float* a, std::size_t lda, float* b,
                        std::size_t ldb);
void xkblas_strsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, float alpha,
                        const float* a, std::size_t lda, float* b,
                        std::size_t ldb);

// ---- complex single ----
using cfloat = std::complex<float>;
void xkblas_cgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, cfloat alpha,
                        const cfloat* a, std::size_t lda, const cfloat* b,
                        std::size_t ldb, cfloat beta, cfloat* c,
                        std::size_t ldc);
void xkblas_chemm_async(char side, char uplo, std::size_t m, std::size_t n,
                        cfloat alpha, const cfloat* a, std::size_t lda,
                        const cfloat* b, std::size_t ldb, cfloat beta,
                        cfloat* c, std::size_t ldc);
void xkblas_cherk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        float alpha, const cfloat* a, std::size_t lda,
                        float beta, cfloat* c, std::size_t ldc);
void xkblas_cher2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         cfloat alpha, const cfloat* a, std::size_t lda,
                         const cfloat* b, std::size_t ldb, float beta,
                         cfloat* c, std::size_t ldc);
void xkblas_ctrsm_async(char side, char uplo, char transa, char diag,
                        std::size_t m, std::size_t n, cfloat alpha,
                        const cfloat* a, std::size_t lda, cfloat* b,
                        std::size_t ldb);

// ---- complex double (the Hermitian trio completing the 9 routines) ----
using zdouble = std::complex<double>;
void xkblas_zgemm_async(char transa, char transb, std::size_t m,
                        std::size_t n, std::size_t k, zdouble alpha,
                        const zdouble* a, std::size_t lda, const zdouble* b,
                        std::size_t ldb, zdouble beta, zdouble* c,
                        std::size_t ldc);
void xkblas_zhemm_async(char side, char uplo, std::size_t m, std::size_t n,
                        zdouble alpha, const zdouble* a, std::size_t lda,
                        const zdouble* b, std::size_t ldb, zdouble beta,
                        zdouble* c, std::size_t ldc);
void xkblas_zherk_async(char uplo, char trans, std::size_t n, std::size_t k,
                        double alpha, const zdouble* a, std::size_t lda,
                        double beta, zdouble* c, std::size_t ldc);
void xkblas_zher2k_async(char uplo, char trans, std::size_t n, std::size_t k,
                         zdouble alpha, const zdouble* a, std::size_t lda,
                         const zdouble* b, std::size_t ldb, double beta,
                         zdouble* c, std::size_t ldc);

// ---- data management ----
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const double* a, std::size_t lda);
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const float* a, std::size_t lda);
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const zdouble* a, std::size_t lda);
void xkblas_memory_coherent_async(std::size_t m, std::size_t n,
                                  const cfloat* a, std::size_t lda);
void xkblas_distribute_2dblock_cyclic_async(std::size_t m, std::size_t n,
                                            const double* a, std::size_t lda);

/// Declare a CPU-side overwrite of host data (see Context::host_overwrite_async).
void xkblas_host_overwrite_async(std::size_t m, std::size_t n,
                                 const double* a, std::size_t lda);

/// Wait for all submitted work; returns the virtual time in seconds.
double xkblas_sync();

}  // namespace xkblas
