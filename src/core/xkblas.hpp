// The XKBlas-like public API: an asynchronous, LAPACK-layout BLAS level-3
// library for (simulated) multi-GPU nodes.
//
// This is the paper's primary artifact.  Key properties reproduced here:
//   * every routine is asynchronous (`*_async`): it only submits tasks;
//   * only the LAPACK matrix layout is supported -- tiles are sub-matrix
//     views, never host-side copies into a tile layout;
//   * lazy host coherency: results come back to the CPU only through
//     `memory_coherent_async`, enabling composition of successive BLAS
//     calls without round trips (paper Section IV-F);
//   * `distribute_2d_block_cyclic_async` pre-places tiles for the
//     data-on-device scenario of Section IV-C;
//   * the two topology heuristics are configuration switches
//     (rt::HeuristicConfig) consulted by the data manager.
//
// Usage:
//   xkblas::Context ctx;                        // a simulated DGX-1
//   ctx.gemm_async(Op::NoTrans, Op::NoTrans, 1.0, A, B, 0.0, C);
//   ctx.memory_coherent_async(C);
//   double t = ctx.sync();                      // virtual seconds
#pragma once

#include <cstddef>
#include <memory>

#include "blas/tiled.hpp"
#include "blas/tiled_factor.hpp"
#include "runtime/runtime.hpp"
#include "trace/trace.hpp"

namespace xkblas {

using xkb::Diag;
using xkb::Matrix;
using xkb::MatrixView;
using xkb::Op;
using xkb::Side;
using xkb::Uplo;

enum class SchedulerKind { kOwnerComputes, kDmdas, kRoundRobin };

struct Options {
  xkb::topo::Topology topology = xkb::topo::Topology::dgx1();
  xkb::rt::PerfModel perf;
  xkb::rt::PlatformOptions platform;
  xkb::rt::RuntimeOptions runtime;
  SchedulerKind scheduler = SchedulerKind::kOwnerComputes;
  std::size_t tile = 2048;
  /// Attach functional payloads to tasks (needed in functional platforms).
  bool functional_tasks = true;
};

class Context {
 public:
  explicit Context(Options opt = {});
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // ---- asynchronous BLAS level-3 (LAPACK layout views) ----
  template <typename T>
  void gemm_async(Op opa, Op opb, T alpha, MatrixView<const T> a,
                  MatrixView<const T> b, T beta, MatrixView<T> c) {
    xkb::blas::tiled_gemm(rt(), opa, opb, alpha, a, b, beta, c, emit_);
  }
  template <typename T>
  void symm_async(Side side, Uplo uplo, T alpha, MatrixView<const T> a,
                  MatrixView<const T> b, T beta, MatrixView<T> c) {
    xkb::blas::tiled_symm(rt(), side, uplo, alpha, a, b, beta, c, emit_);
  }
  template <typename T>
  void syrk_async(Uplo uplo, Op op, T alpha, MatrixView<const T> a, T beta,
                  MatrixView<T> c) {
    xkb::blas::tiled_syrk(rt(), uplo, op, alpha, a, beta, c, emit_);
  }
  template <typename T>
  void syr2k_async(Uplo uplo, Op op, T alpha, MatrixView<const T> a,
                   MatrixView<const T> b, T beta, MatrixView<T> c) {
    xkb::blas::tiled_syr2k(rt(), uplo, op, alpha, a, b, beta, c, emit_);
  }
  template <typename T>
  void trmm_async(Side side, Uplo uplo, Op op, Diag diag, T alpha,
                  MatrixView<const T> a, MatrixView<T> b) {
    xkb::blas::tiled_trmm(rt(), side, uplo, op, diag, alpha, a, b, emit_);
  }
  template <typename T>
  void trsm_async(Side side, Uplo uplo, Op op, Diag diag, T alpha,
                  MatrixView<const T> a, MatrixView<T> b) {
    xkb::blas::tiled_trsm(rt(), side, uplo, op, diag, alpha, a, b, emit_);
  }
  template <typename T>
  void hemm_async(Side side, Uplo uplo, T alpha, MatrixView<const T> a,
                  MatrixView<const T> b, T beta, MatrixView<T> c) {
    xkb::blas::tiled_hemm(rt(), side, uplo, alpha, a, b, beta, c, emit_);
  }
  template <typename T>
  void herk_async(Uplo uplo, Op op, xkb::real_t<T> alpha,
                  MatrixView<const T> a, xkb::real_t<T> beta,
                  MatrixView<T> c) {
    xkb::blas::tiled_herk(rt(), uplo, op, alpha, a, beta, c, emit_);
  }
  template <typename T>
  void her2k_async(Uplo uplo, Op op, T alpha, MatrixView<const T> a,
                   MatrixView<const T> b, xkb::real_t<T> beta,
                   MatrixView<T> c) {
    xkb::blas::tiled_her2k(rt(), uplo, op, alpha, a, b, beta, c, emit_);
  }

  // ---- one-sided factorizations (composition of BLAS-3 graphs) ----

  /// Tiled Cholesky of the uplo triangle of A, in place (A = L L^T).
  template <typename T>
  void potrf_async(Uplo uplo, MatrixView<T> a) {
    xkb::blas::tiled_potrf(rt(), uplo, a, emit_);
  }
  /// Tiled LU without pivoting, in place (A = L U, L unit-lower).
  template <typename T>
  void getrf_nopiv_async(MatrixView<T> a) {
    xkb::blas::tiled_getrf_nopiv(rt(), a, emit_);
  }

  /// Solve A X = B given a Cholesky factor from potrf_async (in place on B).
  template <typename T>
  void potrs_async(Uplo uplo, MatrixView<const T> a, MatrixView<T> b) {
    if (uplo == Uplo::Lower) {
      trsm_async<T>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                    T{1}, a, b);
      trsm_async<T>(Side::Left, Uplo::Lower, Op::Trans, Diag::NonUnit, T{1},
                    a, b);
    } else {
      trsm_async<T>(Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit, T{1},
                    a, b);
      trsm_async<T>(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                    T{1}, a, b);
    }
  }

  /// Cholesky solve: factor A (destroyed) and solve A X = B, all composed
  /// in one task graph without intermediate synchronisation.
  template <typename T>
  void posv_async(Uplo uplo, MatrixView<T> a, MatrixView<T> b) {
    potrf_async<T>(uplo, a);
    potrs_async<T>(uplo, a, b);
  }

  /// Solve A X = B given an LU factor from getrf_nopiv_async (in place).
  template <typename T>
  void getrs_nopiv_async(MatrixView<const T> a, MatrixView<T> b) {
    trsm_async<T>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, T{1}, a,
                  b);
    trsm_async<T>(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit, T{1},
                  a, b);
  }

  /// LU solve without pivoting: factor A (destroyed) and solve A X = B.
  template <typename T>
  void gesv_nopiv_async(MatrixView<T> a, MatrixView<T> b) {
    getrf_nopiv_async<T>(a);
    getrs_nopiv_async<T>(a, b);
  }

  // ---- data management ----

  /// Request that the host copy of every tile of `m` become valid once the
  /// tasks producing them complete (xkblas_memory_coherent_async).
  template <typename T>
  void memory_coherent_async(MatrixView<const T> m) {
    for_each_tile(m, [&](xkb::mem::DataHandle* h) { rt().coherent_async(h); });
  }

  /// Declare that the CPU overwrote (part of) `m` on the host: device
  /// replicas of its tiles are invalidated once pending accesses complete,
  /// and subsequent tasks re-fetch the fresh host data.  This is how mixed
  /// CPU/GPU pipelines (e.g. a blocked Cholesky whose diagonal blocks
  /// factorize on the CPU) stay coherent without global barriers.
  template <typename T>
  void host_overwrite_async(MatrixView<const T> m) {
    for_each_tile(m, [&](xkb::mem::DataHandle* h) {
      xkb::rt::TaskDesc d;
      d.label = "host_write";
      d.accesses.push_back({h, xkb::rt::Access::kW});
      d.host_task = true;
      rt().submit(std::move(d));
    });
  }

  /// Distribute the tiles of `m` over the GPUs in a 2D block-cyclic pattern
  /// (xkblas_distribute_2Dblock_cyclic_async); also sets tile homes so the
  /// owner-computes scheduler follows the distribution.
  template <typename T>
  void distribute_2d_block_cyclic_async(MatrixView<const T> m, int P = -1,
                                        int Q = -1);

  /// Run the simulation until all submitted work completes; returns the
  /// current virtual time (seconds since Context creation).
  double sync();

  // ---- introspection ----
  xkb::rt::Runtime& rt() { return *rt_; }
  xkb::rt::Platform& platform() { return *plat_; }
  xkb::trace::Trace& trace() { return plat_->trace(); }
  const Options& options() const { return opt_; }
  double now() const;

 private:
  template <typename T, typename F>
  void for_each_tile(MatrixView<const T> m, F&& f);

  Options opt_;
  xkb::blas::EmitOptions emit_;
  std::unique_ptr<xkb::rt::Platform> plat_;
  std::unique_ptr<xkb::rt::Runtime> rt_;
};

// ---- template member definitions ----

template <typename T, typename F>
void Context::for_each_tile(MatrixView<const T> m, F&& f) {
  const std::size_t ts = opt_.tile;
  for (std::size_t i = 0; i < m.m; i += ts)
    for (std::size_t j = 0; j < m.n; j += ts) {
      const std::size_t bm = std::min(ts, m.m - i);
      const std::size_t bn = std::min(ts, m.n - j);
      f(xkb::blas::detail::tile_handle(rt(), m, i, j, bm, bn));
    }
}

template <typename T>
void Context::distribute_2d_block_cyclic_async(MatrixView<const T> m, int P,
                                               int Q) {
  if (P <= 0 || Q <= 0) {
    auto [p, q] = xkb::blas::default_grid(plat_->num_gpus());
    P = p;
    Q = q;
  }
  const std::size_t ts = opt_.tile;
  for (std::size_t i = 0; i < m.m; i += ts)
    for (std::size_t j = 0; j < m.n; j += ts) {
      const std::size_t bm = std::min(ts, m.m - i);
      const std::size_t bn = std::min(ts, m.n - j);
      xkb::mem::DataHandle* h =
          xkb::blas::detail::tile_handle(rt(), m, i, j, bm, bn);
      const int dev = static_cast<int>((i / ts) % P) * Q +
                      static_cast<int>((j / ts) % Q);
      h->home_device = dev;
      xkb::rt::TaskDesc d;
      d.label = "dist";
      d.accesses.push_back({h, xkb::rt::Access::kR});
      d.forced_device = dev;
      rt().submit(std::move(d));
    }
}

}  // namespace xkblas
