#include "core/xkblas.hpp"

namespace xkblas {

namespace {
std::unique_ptr<xkb::rt::Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kOwnerComputes:
      return std::make_unique<xkb::rt::OwnerComputesScheduler>();
    case SchedulerKind::kDmdas:
      return std::make_unique<xkb::rt::DmdasScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<xkb::rt::RoundRobinScheduler>();
  }
  return nullptr;
}
}  // namespace

Context::Context(Options opt) : opt_(std::move(opt)) {
  plat_ = std::make_unique<xkb::rt::Platform>(opt_.topology, opt_.perf,
                                              opt_.platform);
  rt_ = std::make_unique<xkb::rt::Runtime>(
      *plat_, make_scheduler(opt_.scheduler), opt_.runtime);

  emit_.tile = opt_.tile;
  emit_.attach_functional = opt_.functional_tasks;
  // Owner-computes default mapping: the paper's (P, Q) block-cyclic grid.
  auto [P, Q] = xkb::blas::default_grid(plat_->num_gpus());
  emit_.home = [P = P, Q = Q](std::size_t i, std::size_t j) {
    return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
           static_cast<int>(j % static_cast<std::size_t>(Q));
  };
}

Context::~Context() = default;

double Context::sync() { return rt_->run(); }

double Context::now() const { return plat_->engine().now(); }

}  // namespace xkblas
