// Handle registry: interns tiles by their host origin address so that
// successive BLAS calls on the same matrices share handles -- the property
// behind the paper's composition of BLAS kernels (Section IV-F): a second
// routine inherits the data distribution left in the cache by the first.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/handle.hpp"

namespace xkb::mem {

class Registry {
 public:
  explicit Registry(int num_devices) : num_devices_(num_devices) {}

  /// Find or create the handle for the tile whose (0,0) element lives at
  /// `origin`.  Dimensions must match on every lookup (XKBlas requires a
  /// consistent blocking across composed calls).
  DataHandle* intern(void* origin, std::size_t m, std::size_t n,
                     std::size_t ld, std::size_t wordsize);

  /// Look up without creating (nullptr if unknown).
  DataHandle* find(void* origin) const;

  std::size_t size() const { return handles_.size(); }
  int num_devices() const { return num_devices_; }

  /// All handles, in creation order (deterministic iteration).
  const std::vector<DataHandle*>& all() const { return order_; }

  /// Drop all handles (between independent experiments).
  void clear();

 private:
  int num_devices_;
  std::unordered_map<void*, std::unique_ptr<DataHandle>> handles_;
  std::vector<DataHandle*> order_;
  std::uint64_t next_id_ = 1;
};

}  // namespace xkb::mem
