#include "mem/cache.hpp"

#include <algorithm>
#include <cassert>

namespace xkb::mem {

DeviceCache::Reservation DeviceCache::reserve(DataHandle* h) {
  Reservation out;
  Replica& r = h->dev[device_];
  if (r.resident) return out;  // already accounted

  const std::size_t need = h->bytes();
  if (used_ + need > capacity_) {
    // Victim scan: evictable = resident, unpinned, not in flight.
    // kReadOnlyFirst (XKaapi): clean replicas first, LRU within a class.
    // kLru: one list, strictly by recency.
    std::vector<DataHandle*> clean, dirty;
    for (DataHandle* c : resident_) {
      const Replica& cr = c->dev[device_];
      if (!cr.resident || cr.pins > 0 || cr.state == ReplicaState::kInFlight)
        continue;
      if (policy_ == EvictionPolicy::kLru)
        clean.push_back(c);  // single class; dirtiness checked at eviction
      else
        (cr.dirty ? dirty : clean).push_back(c);
    }
    auto lru = [&](DataHandle* a, DataHandle* b) {
      return a->dev[device_].last_use < b->dev[device_].last_use;
    };
    std::stable_sort(clean.begin(), clean.end(), lru);
    std::stable_sort(dirty.begin(), dirty.end(), lru);

    auto evict_one = [&](DataHandle* v, bool is_dirty) {
      Replica& vr = v->dev[device_];
      vr.state = ReplicaState::kInvalid;
      vr.resident = false;
      used_ -= v->bytes();
      ++evictions_;
      resident_set_.erase(v);
      resident_.erase(std::find(resident_.begin(), resident_.end(), v));
      if (!v->dev_buf.empty()) {
        // Dirty functional buffers are kept alive by the caller until the
        // flush copies them out; clean buffers can be dropped now.
        if (!is_dirty) {
          v->dev_buf[device_].clear();
          v->dev_buf[device_].shrink_to_fit();
        }
      }
      (is_dirty ? out.dirty_evicted : out.clean_evicted).push_back(v);
    };

    std::size_t ci = 0, di = 0;
    while (used_ + need > capacity_) {
      if (ci < clean.size()) {
        DataHandle* v = clean[ci++];
        const bool is_dirty = v->dev[device_].dirty;
        if (is_dirty) v->dev[device_].dirty = false;  // caller flushes
        evict_one(v, is_dirty);
      } else if (di < dirty.size()) {
        DataHandle* v = dirty[di++];
        v->dev[device_].dirty = false;  // caller flushes it to host
        evict_one(v, true);
      } else {
        throw OutOfDeviceMemory(device_);
      }
    }
  }

  used_ += need;
  r.resident = true;
  resident_.push_back(h);
  resident_set_.insert(h);
  return out;
}

void DeviceCache::release(DataHandle* h) {
  Replica& r = h->dev[device_];
  if (!r.resident) return;
  r.resident = false;
  r.state = ReplicaState::kInvalid;
  used_ -= h->bytes();
  resident_set_.erase(h);
  resident_.erase(std::find(resident_.begin(), resident_.end(), h));
}

}  // namespace xkb::mem
