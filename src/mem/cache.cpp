#include "mem/cache.hpp"

#include <cassert>

#include "util/annotations.hpp"
#include "util/selfprof.hpp"

namespace xkb::mem {

namespace {

/// Victim-order key: ascending LRU stamp, ties broken by residency order
/// (the order reserve() was called in), exactly like the historical
/// stable_sort over the insertion-ordered resident vector.
inline bool key_less(const Replica& a, const Replica& b) {
  if (a.last_use != b.last_use) return a.last_use < b.last_use;
  return a.lru_seq < b.lru_seq;
}

}  // namespace

XKB_HOT void DeviceCache::link_sorted(DataHandle* h, From hint) {
  Replica& r = h->dev[device_];
  const int cls = class_of(r);
  LruList& l = lists_[cls];
  // Find `after`: the rightmost entry with a key below r's.  Both walks land
  // on the same node; the hint only picks the end the key is expected to be
  // near, so the common cases (touch to MRU, reserve of a long-cold replica)
  // stay O(1).
  DataHandle* after;
  if (hint == From::kTail) {
    after = l.tail;
    while (after && key_less(r, after->dev[device_]))
      after = after->dev[device_].lru_prev;
  } else {
    DataHandle* before = l.head;
    while (before && !key_less(r, before->dev[device_]))
      before = before->dev[device_].lru_next;
    after = before ? before->dev[device_].lru_prev : l.tail;
  }
  r.lru_class = static_cast<std::int8_t>(cls);
  r.lru_prev = after;
  if (after) {
    r.lru_next = after->dev[device_].lru_next;
    after->dev[device_].lru_next = h;
  } else {
    r.lru_next = l.head;
    l.head = h;
  }
  if (r.lru_next)
    r.lru_next->dev[device_].lru_prev = h;
  else
    l.tail = h;
}

XKB_HOT void DeviceCache::unlink(DataHandle* h) {
  Replica& r = h->dev[device_];
  assert(r.lru_class >= 0 && "unlinking a replica that is not listed");
  LruList& l = lists_[r.lru_class];
  if (r.lru_prev)
    r.lru_prev->dev[device_].lru_next = r.lru_next;
  else
    l.head = r.lru_next;
  if (r.lru_next)
    r.lru_next->dev[device_].lru_prev = r.lru_prev;
  else
    l.tail = r.lru_prev;
  r.lru_prev = r.lru_next = nullptr;
  r.lru_class = -1;
}

XKB_HOT void DeviceCache::touch(DataHandle* h, sim::Time now) {
  prof::ScopedTimer pt(prof::Phase::kCacheTouch);
  Replica& r = h->dev[device_];
  r.last_use = now;
  if (r.lru_class < 0) return;  // not resident: stamp only
  unlink(h);
  link_sorted(h, From::kTail);
}

XKB_HOT void DeviceCache::set_dirty(DataHandle* h, bool dirty) {
  Replica& r = h->dev[device_];
  if (r.dirty == dirty) return;
  if (r.lru_class < 0) {  // not resident: the bit alone suffices
    r.dirty = dirty;
    return;
  }
  unlink(h);
  r.dirty = dirty;
  link_sorted(h, From::kTail);
}

XKB_HOT DeviceCache::Reservation DeviceCache::reserve(DataHandle* h) {
  prof::ScopedTimer pt(prof::Phase::kCacheReserve);
  Reservation out;
  Replica& r = h->dev[device_];
  if (r.resident) return out;  // already accounted

  const std::size_t need = h->bytes();
  if (used_ + need > capacity_) {
    auto evict_one = [&](DataHandle* v, bool is_dirty) {
      Replica& vr = v->dev[device_];
      vr.state = ReplicaState::kInvalid;
      vr.resident = false;
      used_ -= v->bytes();
      ++evictions_;
      --resident_count_;
      unlink(v);
      if (!v->dev_buf.empty()) {
        // Dirty functional buffers are kept alive by the caller until the
        // flush copies them out; clean buffers can be dropped now.
        if (!is_dirty) {
          v->dev_buf[device_].clear();
          v->dev_buf[device_].shrink_to_fit();
        }
      }
      (is_dirty ? out.dirty_evicted : out.clean_evicted).push_back(v);
    };

    // Walk each class list from its LRU end, skipping residents that are
    // pinned or in flight.  kReadOnlyFirst drains the clean list before the
    // dirty one; under kLru every resident lives in the "clean" list and
    // dirtiness is checked per victim (a dirty victim's flush is still the
    // caller's job).
    for (int cls : {kClean, kDirty}) {
      DataHandle* v = lists_[cls].head;
      while (v && used_ + need > capacity_) {
        DataHandle* next = v->dev[device_].lru_next;
        Replica& vr = v->dev[device_];
        if (vr.pins == 0 && vr.state != ReplicaState::kInFlight) {
          const bool is_dirty = vr.dirty;
          assert((cls == kClean || is_dirty) &&
                 "clean replica linked on the dirty list");
          assert((policy_ == EvictionPolicy::kLru || cls == kDirty ||
                  !is_dirty) &&
                 "dirty replica linked on the clean list: set_dirty bypassed");
          if (is_dirty) vr.dirty = false;  // caller flushes it to host
          evict_one(v, is_dirty);
        }
        v = next;
      }
    }
    if (used_ + need > capacity_) throw OutOfDeviceMemory(device_);
  }

  used_ += need;
  r.resident = true;
  ++resident_count_;
  r.lru_seq = next_seq_++;
  // A replica re-entering the cache keeps the last_use of its previous life
  // (exactly like the historical resort-everything scan saw it), which puts
  // it near the LRU end until its arrival touch().
  link_sorted(h, From::kHead);
  return out;
}

XKB_HOT void DeviceCache::release(DataHandle* h) {
  Replica& r = h->dev[device_];
  if (!r.resident) return;
  assert(!r.dirty &&
         "releasing a dirty replica discards its bytes; flush it to the host "
         "(or clear the bit when a newer version supersedes it) first");
  r.resident = false;
  r.state = ReplicaState::kInvalid;
  used_ -= h->bytes();
  --resident_count_;
  unlink(h);
}

}  // namespace xkb::mem
