// Per-device software cache: capacity accounting and the XKaapi eviction
// policy ("when a GPU cache becomes full, the eviction strategy prioritizes
// read-only data first").
//
// The cache does not own replica state -- DataHandle is the single source of
// truth -- it indexes resident handles per device and picks eviction victims.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "mem/handle.hpp"

namespace xkb::mem {

/// Thrown when a reservation cannot be satisfied even after eviction
/// (emulates a cudaMalloc failure; the BLASX baseline hits this above
/// N = 45000, like the real library in the paper).
class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(int device)
      : std::runtime_error("out of device memory on GPU " +
                           std::to_string(device)),
        device(device) {}
  int device;
};

/// Victim-selection policy.  kReadOnlyFirst is XKaapi's strategy (the
/// paper, Section II-C): clean replicas are dropped before dirty ones,
/// which avoids flush traffic on the congested PCIe links; kLru ignores
/// dirtiness and evicts strictly by recency (the ablation baseline).
enum class EvictionPolicy { kReadOnlyFirst, kLru };

class DeviceCache {
 public:
  DeviceCache(int device, std::size_t capacity_bytes,
              EvictionPolicy policy = EvictionPolicy::kReadOnlyFirst)
      : device_(device), capacity_(capacity_bytes), policy_(policy) {}

  int device() const { return device_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Reserve room for `h` on this device, evicting victims if needed.
  /// Victims are returned so the caller (DataManager) can flush dirty ones;
  /// clean victims are already invalidated.  Throws OutOfDeviceMemory when
  /// pinned data alone exceeds capacity.
  struct Reservation {
    std::vector<DataHandle*> clean_evicted;  ///< dropped, no flush needed
    std::vector<DataHandle*> dirty_evicted;  ///< caller must flush to host
  };
  Reservation reserve(DataHandle* h);

  /// Release the reservation (replica no longer resident).
  void release(DataHandle* h);

  /// Number of distinct resident handles.
  std::size_t resident_count() const { return resident_.size(); }

  std::size_t evictions() const { return evictions_; }

 private:
  int device_;
  std::size_t capacity_;
  EvictionPolicy policy_;
  std::size_t used_ = 0;
  std::size_t evictions_ = 0;
  // Deterministic iteration for victim selection: keep insertion order.
  std::vector<DataHandle*> resident_;
  std::unordered_set<DataHandle*> resident_set_;
};

}  // namespace xkb::mem
