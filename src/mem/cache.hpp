// Per-device software cache: capacity accounting and the XKaapi eviction
// policy ("when a GPU cache becomes full, the eviction strategy prioritizes
// read-only data first").
//
// The cache does not own replica state -- DataHandle is the single source of
// truth -- it indexes resident handles per device and picks eviction victims.
//
// Victim bookkeeping is intrusive: each resident replica is linked into one
// of two per-cache LRU lists (clean / dirty; a single list under kLru),
// ordered by (last_use, residency sequence).  That is the same victim order
// the historical implementation produced by sorting all residents on every
// reservation, but touch, removal and class changes are now O(1) amortized
// and eviction is O(victims + skipped pinned/in-flight residents) instead of
// O(residents log residents) per reservation under memory pressure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "mem/handle.hpp"

namespace xkb::mem {

/// Thrown when a reservation cannot be satisfied even after eviction
/// (emulates a cudaMalloc failure; the BLASX baseline hits this above
/// N = 45000, like the real library in the paper).
class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(int device)
      : std::runtime_error("out of device memory on GPU " +
                           std::to_string(device)),
        device(device) {}
  int device;
};

/// Victim-selection policy.  kReadOnlyFirst is XKaapi's strategy (the
/// paper, Section II-C): clean replicas are dropped before dirty ones,
/// which avoids flush traffic on the congested PCIe links; kLru ignores
/// dirtiness and evicts strictly by recency (the ablation baseline).
enum class EvictionPolicy { kReadOnlyFirst, kLru };

class DeviceCache {
 public:
  DeviceCache(int device, std::size_t capacity_bytes,
              EvictionPolicy policy = EvictionPolicy::kReadOnlyFirst)
      : device_(device), capacity_(capacity_bytes), policy_(policy) {}

  int device() const { return device_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Reserve room for `h` on this device, evicting victims if needed.
  /// Victims are returned so the caller (DataManager) can flush dirty ones;
  /// clean victims are already invalidated.  Throws OutOfDeviceMemory when
  /// pinned data alone exceeds capacity.
  struct Reservation {
    std::vector<DataHandle*> clean_evicted;  ///< dropped, no flush needed
    std::vector<DataHandle*> dirty_evicted;  ///< caller must flush to host
  };
  Reservation reserve(DataHandle* h);

  /// Release the reservation (replica no longer resident).  The replica must
  /// be clean: releasing a dirty replica would silently discard its bytes --
  /// callers that intend to supersede a dirty copy (a newer version exists)
  /// clear the dirty bit first; everything else must go through the flush
  /// path.
  void release(DataHandle* h);

  /// Record a use of the resident replica: stamps `last_use = now` and moves
  /// the replica to the MRU end of its victim list.  O(1) amortized (walks
  /// only same-timestamp entries).  Safe on non-resident replicas (stamps
  /// last_use only).
  void touch(DataHandle* h, sim::Time now);

  /// Flip the replica's dirty bit, re-homing it between the clean and dirty
  /// victim lists under kReadOnlyFirst.  All dirty-bit changes of a resident
  /// replica must go through here so the class lists stay truthful.
  void set_dirty(DataHandle* h, bool dirty);

  /// Number of distinct resident handles.
  std::size_t resident_count() const { return resident_count_; }

  std::size_t evictions() const { return evictions_; }

 private:
  // Victim-class list indices.  Under kLru everything lives in kClean.
  static constexpr int kClean = 0;
  static constexpr int kDirty = 1;

  struct LruList {
    DataHandle* head = nullptr;  ///< least recently used
    DataHandle* tail = nullptr;  ///< most recently used
  };

  int class_of(const Replica& r) const {
    return (policy_ == EvictionPolicy::kReadOnlyFirst && r.dirty) ? kDirty
                                                                  : kClean;
  }
  /// Which end of the list link_sorted() starts its walk from.  The sorted
  /// position is unique either way ((last_use, lru_seq) keys are distinct);
  /// the hint only decides which end is O(1): kTail for freshly-touched
  /// replicas (key near the MRU end), kHead for newly-reserved replicas,
  /// whose stale last_use from before their last eviction sorts them near
  /// the LRU end.
  enum class From { kHead, kTail };

  /// Insert into its class list at the position sorted by (last_use,
  /// lru_seq), walking from the hinted end.
  void link_sorted(DataHandle* h, From hint);
  void unlink(DataHandle* h);

  int device_;
  std::size_t capacity_;
  EvictionPolicy policy_;
  std::size_t used_ = 0;
  std::size_t evictions_ = 0;
  std::size_t resident_count_ = 0;
  std::uint64_t next_seq_ = 0;
  LruList lists_[2];
};

}  // namespace xkb::mem
