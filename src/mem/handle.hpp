// Data handles: the unit of the multi-GPU software cache.
//
// One handle describes one matrix tile (a LAPACK-layout sub-matrix on the
// host) and tracks every replica of it across device memories, following the
// paper's XKaapi software cache:
//   * per-device replica state {Invalid, Valid, InFlight},
//   * a dirty bit (device copy newer than host) with lazy host coherency --
//     the host copy is repaired only by an explicit memory_coherent,
//   * the InFlight state plus arrival callbacks are the metadata extension
//     of Section III-C that enables the optimistic device-to-device
//     heuristic ("wait for the end of the reception of a copy before
//     forwarding it"),
//   * LRU stamps and pin counts feed the eviction policy (read-only data
//     evicted first, as in XKaapi).
//
// On device, a tile is stored in "compact tile form": dense column-major
// with ld == m, mirroring the paper's cudaMemcpy2D compaction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/small_fn.hpp"

namespace xkb::mem {

enum class ReplicaState : std::uint8_t {
  kInvalid,   ///< no usable copy here
  kInFlight,  ///< a copy is being received (DMA in progress)
  kValid,     ///< usable copy present
};

/// Diagnostic name of a replica state (xkb::check violation messages).
constexpr const char* to_string(ReplicaState s) {
  switch (s) {
    case ReplicaState::kInvalid: return "invalid";
    case ReplicaState::kInFlight: return "in-flight";
    case ReplicaState::kValid: return "valid";
  }
  return "?";
}

struct DataHandle;

/// Where an in-flight replica's bytes are coming from (Replica::fetch_src).
inline constexpr int kFetchHost = -1;    ///< H2D from the host copy
inline constexpr int kFetchIdle = -2;    ///< no fetch in progress
inline constexpr int kFetchParked = -3;  ///< parked until a replay rewrites

/// Per-location replica bookkeeping (host uses the same record as devices).
struct Replica {
  ReplicaState state = ReplicaState::kInvalid;
  bool dirty = false;        ///< newer than every other copy
  bool resident = false;     ///< bytes reserved in this memory
  int pins = 0;              ///< active users (unpinned replicas are evictable)
  sim::Time eta = 0.0;       ///< arrival time when kInFlight
  sim::Time last_use = 0.0;  ///< LRU stamp (kept for trace/debug output)
  std::vector<sim::Callback> waiters;  ///< run when kInFlight -> kValid

  // Fetch provenance (xkb::fault recovery).  Pre-fault, an in-flight
  // reception was an opaque promise: a completion lambda somewhere in the
  // engine queue.  Recovery must be able to cancel and re-plan that
  // promise, so the reception now carries explicit metadata:
  //   * fetch_gen is bumped whenever the pending fetch is aborted or
  //     re-planned; every completion callback captures the generation it
  //     was issued under and no-ops on mismatch (the DES analogue of
  //     cancelling a DMA),
  //   * fetch_src records where the bytes come from (device id, kFetchHost,
  //     or kFetchParked while waiting for a lost tile to be recomputed),
  //   * fetch_waiting marks a chained reception: registered on the source
  //     replica's chained_dsts, no transfer issued yet,
  //   * fetch_attempts counts failed attempts for the retry-backoff cap.
  std::uint32_t fetch_gen = 0;
  std::uint16_t fetch_attempts = 0;
  int fetch_src = kFetchIdle;
  bool fetch_waiting = false;
  std::vector<int> chained_dsts;  ///< receptions chained on THIS arrival

  // Intrusive LRU linkage, owned by the DeviceCache the replica is resident
  // in.  Device replicas only; the host Replica is never cached.  The cache
  // keeps one doubly-linked list per victim class (clean/dirty) ordered by
  // (last_use, lru_seq), which is exactly the victim order of the historical
  // sort-based scan: ascending LRU stamp, ties broken by residency order.
  DataHandle* lru_prev = nullptr;
  DataHandle* lru_next = nullptr;
  std::uint64_t lru_seq = 0;  ///< residency order, assigned at reserve()
  std::int8_t lru_class = -1; ///< DeviceCache list index, -1 when unlinked
};

/// Sparse per-device replica table.  Historically every handle carried a
/// dense `std::vector<Replica>` sized num_devices -- on a 1024-device fat
/// tree that is a megabyte-scale allocation per *tile*, dominated by
/// never-touched entries.  A replica map materialises an entry only when a
/// device first touches the tile; an absent entry *is* the default Replica
/// (kInvalid, clean, unpinned), so reads of untouched devices go through the
/// const accessors and observe exactly what the dense table held.
///
/// Entries are never erased: the intrusive LRU pointers inside a Replica are
/// linked into DeviceCache lists, and std::map's stable node addresses are
/// what make those links (and the `Replica&` references held across engine
/// callbacks) safe.  "Active" therefore means ever-touched, which is bounded
/// by the devices a tile actually visited -- the O(active) the topo_bench
/// memory gate measures.  Iteration is ascending by device id, matching the
/// historical `for (g = 0; g < n; ++g)` scan order wherever a dense loop was
/// converted to an active-entry walk (determinism: identical effect order).
class ReplicaMap {
 public:
  /// Mutable access materialises the entry (default Replica on first touch).
  Replica& operator[](int g) { return map_[g]; }

  /// Const access never inserts: untouched devices read as the default
  /// (invalid) replica.
  const Replica& operator[](int g) const {
    const auto it = map_.find(g);
    return it == map_.end() ? kAbsent : it->second;
  }

  /// Non-inserting lookup for hot read-mostly scans (steal locality,
  /// device-failure purge): nullptr when the device never touched the tile.
  const Replica* peek(int g) const {
    const auto it = map_.find(g);
    return it == map_.end() ? nullptr : &it->second;
  }
  Replica* peek(int g) {
    const auto it = map_.find(g);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Number of materialised entries (the topo_bench memory gate).
  std::size_t active() const { return map_.size(); }

  // Ascending-by-device iteration over materialised entries.
  auto begin() { return map_.begin(); }
  auto end() { return map_.end(); }
  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  std::map<int, Replica> map_;
  inline static const Replica kAbsent{};
};

struct DataHandle {
  std::uint64_t id = 0;

  // Host memory view (the paper's (m, n, ld, wordsize) tuple).
  void* host_ptr = nullptr;
  std::size_t m = 0, n = 0, ld = 0, wordsize = 0;

  /// Dense tile size on a device (compact tile form).
  std::size_t bytes() const { return m * n * wordsize; }

  Replica host;  ///< the host-memory copy
  ReplicaMap dev;  ///< per-GPU replicas, materialised on first touch

  /// Preferred owner device for owner-computes placement (-1 = none).  Set
  /// by 2D block-cyclic distribution or by the tiled-algorithm emitters.
  int home_device = -1;

  /// Monotonic write counter.  Eviction flushes are not dataflow-ordered:
  /// a newer write can land while a flush is in flight, and the flush must
  /// then discard its (stale) payload instead of publishing it to the host.
  std::uint64_t version = 0;

  /// Functional-mode device buffers (dense m*n*wordsize), empty in
  /// timing-only mode.
  std::vector<std::vector<std::byte>> dev_buf;

  /// Devices currently holding a valid copy (host excluded), ascending.
  std::vector<int> valid_devices() const {
    std::vector<int> out;
    for (const auto& [g, r] : dev)
      if (r.state == ReplicaState::kValid) out.push_back(g);
    return out;
  }

  /// Devices with a copy in flight (for the optimistic heuristic).
  std::vector<int> inflight_devices() const {
    std::vector<int> out;
    for (const auto& [g, r] : dev)
      if (r.state == ReplicaState::kInFlight) out.push_back(g);
    return out;
  }

  /// The device holding the dirty (authoritative) copy, or -1.
  int dirty_device() const {
    for (const auto& [g, r] : dev)
      if (r.dirty) return g;
    return -1;
  }

  bool valid_anywhere() const {
    if (host.state == ReplicaState::kValid) return true;
    for (const auto& [g, r] : dev) {
      (void)g;
      if (r.state == ReplicaState::kValid) return true;
    }
    return false;
  }
};

}  // namespace xkb::mem
