#include "mem/registry.hpp"

#include <cassert>
#include <stdexcept>

namespace xkb::mem {

DataHandle* Registry::intern(void* origin, std::size_t m, std::size_t n,
                             std::size_t ld, std::size_t wordsize) {
  auto it = handles_.find(origin);
  if (it != handles_.end()) {
    DataHandle* h = it->second.get();
    if (h->m != m || h->n != n || h->ld != ld || h->wordsize != wordsize)
      throw std::invalid_argument(
          "Registry::intern: tile re-registered with different geometry; "
          "composed XKBlas calls must use a consistent blocking");
    return h;
  }
  auto h = std::make_unique<DataHandle>();
  h->id = next_id_++;
  h->host_ptr = origin;
  h->m = m;
  h->n = n;
  h->ld = ld;
  h->wordsize = wordsize;
  h->host.state = ReplicaState::kValid;  // user data starts on the host
  h->host.resident = true;
  // Device replicas materialise lazily on first touch (ReplicaMap).
  DataHandle* raw = h.get();
  order_.push_back(raw);
  handles_.emplace(origin, std::move(h));
  return raw;
}

DataHandle* Registry::find(void* origin) const {
  auto it = handles_.find(origin);
  return it == handles_.end() ? nullptr : it->second.get();
}

void Registry::clear() {
  handles_.clear();
  order_.clear();
  next_id_ = 1;
}

}  // namespace xkb::mem
