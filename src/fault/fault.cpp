#include "fault/fault.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/rng.hpp"

namespace xkb::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kTransferFail: return "xfail";
    case FaultKind::kDeviceFail: return "device-fail";
  }
  return "?";
}

const char* to_string(TransferKind k) {
  switch (k) {
    case TransferKind::kH2D: return "h2d";
    case TransferKind::kD2D: return "d2d";
    case TransferKind::kD2H: return "d2h";
    case TransferKind::kAny: return "any";
  }
  return "?";
}

namespace {

/// An endpoint renders as its symbolic name when one was given (so a parsed
/// plan round-trips through to_text unchanged), else as its index.
std::string ep(const std::string& name, int idx) {
  return name.empty() ? std::to_string(idx) : name;
}

}  // namespace

std::string FaultPlan::to_text() const {
  std::ostringstream os;
  os << "seed " << seed << "\n";
  if (fail_prob > 0.0) os << "fail-prob " << fail_prob << "\n";
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kBrownout:
        os << "brownout " << e.t << " " << ep(e.a_name, e.a) << " "
           << ep(e.b_name, e.b) << " " << e.fraction;
        if (e.duration > 0) os << " " << e.duration;
        os << "\n";
        break;
      case FaultKind::kLinkDown:
        os << "link-down " << e.t << " " << ep(e.a_name, e.a) << " "
           << ep(e.b_name, e.b) << "\n";
        break;
      case FaultKind::kTransferFail:
        os << "xfail " << e.t << " " << to_string(e.xfer) << " "
           << ep(e.a_name, e.a) << " " << ep(e.b_name, e.b) << "\n";
        break;
      case FaultKind::kDeviceFail:
        os << "device-fail " << e.t << " " << ep(e.a_name, e.a) << "\n";
        break;
    }
  }
  return os.str();
}

namespace {

[[noreturn]] void bad_line(int lineno, const std::string& line,
                           const std::string& why) {
  throw std::invalid_argument("fault plan line " + std::to_string(lineno) +
                              ": " + why + " in '" + line + "'");
}

double want_num(std::istringstream& is, int lineno, const std::string& line,
                const char* what) {
  double v = 0.0;
  if (!(is >> v)) bad_line(lineno, line, std::string("missing/bad ") + what);
  // stream extraction happily parses "nan" and "inf"; both sail through
  // every range check below (NaN comparisons are all false) and then break
  // the engine's time arithmetic, so reject them at the source.
  if (!std::isfinite(v))
    bad_line(lineno, line, std::string(what) + " must be finite");
  return v;
}

int want_int(std::istringstream& is, int lineno, const std::string& line,
             const char* what) {
  double v = want_num(is, lineno, line, what);
  if (v != std::floor(v))
    bad_line(lineno, line, std::string(what) + " must be an integer");
  // A double outside int's range makes the cast undefined, not clamped.
  if (v < -2147483648.0 || v > 2147483647.0)
    bad_line(lineno, line, std::string(what) + " is out of range");
  return static_cast<int>(v);
}

std::uint64_t want_u64(std::istringstream& is, int lineno,
                       const std::string& line, const char* what) {
  // Parsed as a decimal token, not through double: a seed like
  // 18446744073709551615 is exact here but rounds (and the cast from
  // double would be undefined) via want_num.
  std::string w;
  if (!(is >> w)) bad_line(lineno, line, std::string("missing/bad ") + what);
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(w, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (w[0] == '-' || pos != w.size())
    bad_line(lineno, line,
             std::string(what) + " must be a non-negative integer");
  return v;
}

void want_done(std::istringstream& is, int lineno, const std::string& line) {
  std::string extra;
  if (is >> extra) bad_line(lineno, line, "trailing junk '" + extra + "'");
}

/// An endpoint token is either a device index or a .tpo node name.  tdl
/// names start with a letter, so the two token classes never overlap: a
/// leading letter or '_' means name, anything else must parse as an
/// integer under want_int's rules.  The parsed index (or -1 for a name,
/// resolved at arm time) goes to `idx`, the name (or empty) to `name`.
void want_endpoint(std::istringstream& is, int lineno, const std::string& line,
                   const char* what, int& idx, std::string& name) {
  std::string w;
  if (!(is >> w)) bad_line(lineno, line, std::string("missing/bad ") + what);
  if (std::isalpha(static_cast<unsigned char>(w[0])) || w[0] == '_') {
    name = w;
    idx = -1;
    return;
  }
  std::istringstream token(w);
  idx = want_int(token, lineno, line, what);
  want_done(token, lineno, line);
  name.clear();
}

/// True when both endpoints are statically known to be the same node.  A
/// mixed name/index pair can only be checked after the name resolves, so
/// that case defers to Injector::arm().
bool same_endpoint(const FaultEvent& e) {
  if (e.a_name.empty() && e.b_name.empty()) return e.a == e.b;
  if (!e.a_name.empty() && !e.b_name.empty()) return e.a_name == e.b_name;
  return false;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    std::istringstream is(hash == std::string::npos ? line
                                                    : line.substr(0, hash));
    std::string word;
    if (!(is >> word)) continue;  // blank / comment-only
    if (word == "seed") {
      plan.seed = want_u64(is, lineno, line, "seed");
      want_done(is, lineno, line);
    } else if (word == "fail-prob") {
      plan.fail_prob = want_num(is, lineno, line, "probability");
      if (plan.fail_prob < 0.0 || plan.fail_prob > 1.0)
        bad_line(lineno, line, "fail-prob must be in [0, 1]");
    } else if (word == "brownout") {
      FaultEvent e;
      e.kind = FaultKind::kBrownout;
      e.t = want_num(is, lineno, line, "time");
      want_endpoint(is, lineno, line, "endpoint a", e.a, e.a_name);
      want_endpoint(is, lineno, line, "endpoint b", e.b, e.b_name);
      e.fraction = want_num(is, lineno, line, "fraction");
      double dur = 0.0;
      if (is >> dur) {
        if (!std::isfinite(dur)) bad_line(lineno, line, "duration must be finite");
        e.duration = dur;
        want_done(is, lineno, line);
      } else {
        is.clear();
      }
      if (e.t < 0 || (e.a_name.empty() && e.a < 0) ||
          (e.b_name.empty() && e.b < 0) || same_endpoint(e))
        bad_line(lineno, line, "bad brownout endpoints/time");
      if (e.fraction <= 0.0 || e.fraction > 1.0)
        bad_line(lineno, line, "brownout fraction must be in (0, 1]");
      if (e.duration < 0) bad_line(lineno, line, "negative duration");
      plan.events.push_back(e);
    } else if (word == "link-down") {
      FaultEvent e;
      e.kind = FaultKind::kLinkDown;
      e.t = want_num(is, lineno, line, "time");
      want_endpoint(is, lineno, line, "endpoint a", e.a, e.a_name);
      want_endpoint(is, lineno, line, "endpoint b", e.b, e.b_name);
      want_done(is, lineno, line);
      if (e.t < 0 || (e.a_name.empty() && e.a < 0) ||
          (e.b_name.empty() && e.b < 0) || same_endpoint(e))
        bad_line(lineno, line, "bad link-down endpoints/time");
      plan.events.push_back(e);
    } else if (word == "xfail") {
      FaultEvent e;
      e.kind = FaultKind::kTransferFail;
      e.t = want_num(is, lineno, line, "time");
      std::string kind;
      if (!(is >> kind)) bad_line(lineno, line, "missing transfer kind");
      if (kind == "h2d") e.xfer = TransferKind::kH2D;
      else if (kind == "d2d") e.xfer = TransferKind::kD2D;
      else if (kind == "d2h") e.xfer = TransferKind::kD2H;
      else if (kind == "any") e.xfer = TransferKind::kAny;
      else bad_line(lineno, line, "unknown transfer kind '" + kind + "'");
      want_endpoint(is, lineno, line, "src", e.a, e.a_name);
      want_endpoint(is, lineno, line, "dst", e.b, e.b_name);
      want_done(is, lineno, line);
      // -1 stays the wildcard for index endpoints; a named endpoint is
      // never a wildcard (it resolves to a concrete device at arm time).
      if (e.t < 0 || (e.a_name.empty() && e.a < -1) ||
          (e.b_name.empty() && e.b < -1))
        bad_line(lineno, line, "bad xfail spec");
      plan.events.push_back(e);
    } else if (word == "device-fail") {
      FaultEvent e;
      e.kind = FaultKind::kDeviceFail;
      e.t = want_num(is, lineno, line, "time");
      want_endpoint(is, lineno, line, "device", e.a, e.a_name);
      want_done(is, lineno, line);
      if (e.t < 0 || (e.a_name.empty() && e.a < 0))
        bad_line(lineno, line, "bad device-fail spec");
      plan.events.push_back(e);
    } else {
      bad_line(lineno, line, "unknown directive '" + word + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("cannot open fault plan file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

FaultPlan FaultPlan::random(std::uint64_t seed, int num_gpus,
                            sim::Time horizon) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  if (num_gpus < 2 || horizon <= 0) return plan;
  const auto pair = [&] {
    const int a = static_cast<int>(rng.next_below(num_gpus));
    int b = static_cast<int>(rng.next_below(num_gpus - 1));
    if (b >= a) ++b;
    return std::pair<int, int>(a, b);
  };
  // Two brownouts: one transient, one lasting to the end of the run.
  for (int i = 0; i < 2; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kBrownout;
    e.t = rng.uniform(0.0, horizon * 0.5);
    std::tie(e.a, e.b) = pair();
    e.fraction = rng.uniform(0.1, 0.6);
    e.duration = (i == 0) ? rng.uniform(horizon * 0.1, horizon * 0.4) : 0.0;
    plan.events.push_back(e);
  }
  // One route demotion.
  {
    FaultEvent e;
    e.kind = FaultKind::kLinkDown;
    e.t = rng.uniform(0.0, horizon * 0.5);
    std::tie(e.a, e.b) = pair();
    plan.events.push_back(e);
  }
  // A sprinkle of transfer failures.
  plan.fail_prob = 0.01;
  return plan;
}

}  // namespace xkb::fault
