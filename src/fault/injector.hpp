// The fault Injector arms a FaultPlan against a simulation engine and
// answers, at transfer-issue time, "does this copy fail?".
//
// Layering: xkb::fault sits below the runtime (runtime links against it),
// so the injector never names Platform or Runtime.  Instead the platform
// and runtime bind callbacks -- the platform for link mutations, the
// runtime for device failure -- and the injector schedules *silent*
// engine events that invoke them.  Silent events keep the observable
// event stream (and the xkb::check hash) untouched by fault machinery
// itself; only the fault's *consequences* (slower transfers, re-plans,
// remaps) show up, which is exactly what the healed-before-use
// equivalence tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace xkb::fault {

class Injector {
 public:
  struct Hooks {
    std::function<void(int, int, double)> brownout;  ///< (a, b, fraction)
    std::function<void(int, int)> restore;           ///< heal a<->b
    std::function<void(int, int)> link_down;         ///< demote a<->b
    std::function<void(int)> device_fail;
    /// Map a .tpo device name to its index (-1 = unknown).  Bound by
    /// Platform::set_fault; arm() needs it only for plans that use
    /// symbolic endpoints.
    std::function<int(const std::string&)> resolve_device;
  };

  struct Counters {
    std::size_t brownouts = 0;
    std::size_t heals = 0;
    std::size_t link_downs = 0;
    std::size_t device_fails = 0;
    std::size_t injected_transfer_failures = 0;
  };

  explicit Injector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  const FaultPlan& plan() const { return plan_; }
  RetryPolicy& retry() { return retry_; }
  const RetryPolicy& retry() const { return retry_; }

  /// Bind the platform-side link hooks (brownout/restore/link_down) --
  /// called by Platform::set_fault -- and the runtime-side device_fail
  /// hook -- called by the Runtime constructor.  Hooks accumulate: a
  /// later bind overwrites only the non-null members.
  void bind(Hooks hooks);

  /// Schedule every plan event as a silent engine event (idempotent).
  /// Throws FaultError if the plan needs a hook nobody bound (e.g. a
  /// device-fail event with no runtime attached).
  void arm(sim::Engine& eng, int num_gpus);
  bool armed() const { return armed_; }

  /// Decide whether the transfer being issued right now fails in flight.
  /// Consumes at most one matching pending `xfail` event (wildcards
  /// match any endpoint; d2h matches dst -1) and otherwise draws from
  /// the seeded probability stream.  Deterministic because transfer
  /// issue order is.
  bool should_fail_transfer(TransferKind k, int src, int dst, sim::Time now);

  const Counters& counters() const { return counters_; }

  /// Targeted xfail events nobody consumed (plan aimed at a transfer
  /// that never happened) -- surfaced in reports so a plan that silently
  /// misses is visible.
  std::size_t unconsumed_transfer_faults() const;

  /// Injector-side counters as a JSON object (the chaos driver merges
  /// this with runtime recovery statistics).
  std::string counters_json() const;

 private:
  // Silent-lane trigger bodies, one per fault class.  arm() schedules them
  // via schedule_silent_*; the XKB_SILENT annotation lets the xkb-tidy
  // silent-lane check prove they never touch observable state (trace,
  // metrics, observer, observable-lane scheduling) directly -- the
  // bit-invisible no-op-fault guarantee.  Consequences become observable
  // only through the bound hooks, at the platform/runtime layer.
  void fire_brownout(const FaultEvent& e);
  void fire_heal(const FaultEvent& e);
  void fire_link_down(const FaultEvent& e);
  void fire_device_fail(const FaultEvent& e);

  FaultPlan plan_;
  Rng rng_;
  RetryPolicy retry_;
  Hooks hooks_;
  Counters counters_;
  std::vector<char> xfail_consumed_;  // parallel to plan_.events
  bool armed_ = false;
};

}  // namespace xkb::fault
