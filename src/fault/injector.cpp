#include "fault/injector.hpp"

#include <sstream>

namespace xkb::fault {

void Injector::bind(Hooks hooks) {
  if (hooks.brownout) hooks_.brownout = std::move(hooks.brownout);
  if (hooks.restore) hooks_.restore = std::move(hooks.restore);
  if (hooks.link_down) hooks_.link_down = std::move(hooks.link_down);
  if (hooks.device_fail) hooks_.device_fail = std::move(hooks.device_fail);
  if (hooks.resolve_device) hooks_.resolve_device = std::move(hooks.resolve_device);
}

void Injector::arm(sim::Engine& eng, int num_gpus) {
  if (armed_) return;
  armed_ = true;
  xfail_consumed_.assign(plan_.events.size(), 0);
  // Resolve symbolic (.tpo-name) endpoints into device indices before any
  // range check or scheduling: the silent events capture the event by
  // value, so the indices must be final here.
  for (FaultEvent& e : plan_.events) {
    const auto resolve = [&](const std::string& name, int& idx) {
      if (name.empty()) return;
      if (!hooks_.resolve_device)
        throw FaultError("fault plan names device '" + name +
                         "' but no topology is bound to resolve it");
      idx = hooks_.resolve_device(name);
      if (idx < 0)
        throw FaultError(std::string(to_string(e.kind)) +
                         " names unknown device '" + name + "'");
    };
    resolve(e.a_name, e.a);
    resolve(e.b_name, e.b);
    if ((e.kind == FaultKind::kBrownout || e.kind == FaultKind::kLinkDown) &&
        e.a == e.b)
      throw FaultError(std::string(to_string(e.kind)) +
                       " endpoints resolve to the same device");
  }
  for (const FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case FaultKind::kBrownout: {
        if (!hooks_.brownout || !hooks_.restore)
          throw FaultError("fault plan has a brownout but no platform bound");
        if (e.a >= num_gpus || e.b >= num_gpus)
          throw FaultError("brownout names GPU beyond this topology");
        eng.schedule_silent_at(e.t, [this, e] { fire_brownout(e); });
        if (e.duration > 0)
          eng.schedule_silent_at(e.t + e.duration,
                                 [this, e] { fire_heal(e); });
        break;
      }
      case FaultKind::kLinkDown: {
        if (!hooks_.link_down)
          throw FaultError("fault plan has a link-down but no platform bound");
        if (e.a >= num_gpus || e.b >= num_gpus)
          throw FaultError("link-down names GPU beyond this topology");
        eng.schedule_silent_at(e.t, [this, e] { fire_link_down(e); });
        break;
      }
      case FaultKind::kDeviceFail: {
        if (!hooks_.device_fail)
          throw FaultError(
              "fault plan has a device-fail but no runtime bound to recover");
        if (e.a >= num_gpus)
          throw FaultError("device-fail names GPU beyond this topology");
        eng.schedule_silent_at(e.t, [this, e] { fire_device_fail(e); });
        break;
      }
      case FaultKind::kTransferFail:
        break;  // consumed lazily by should_fail_transfer
    }
  }
}

XKB_SILENT void Injector::fire_brownout(const FaultEvent& e) {
  ++counters_.brownouts;
  hooks_.brownout(e.a, e.b, e.fraction);
}

XKB_SILENT void Injector::fire_heal(const FaultEvent& e) {
  ++counters_.heals;
  hooks_.restore(e.a, e.b);
}

XKB_SILENT void Injector::fire_link_down(const FaultEvent& e) {
  ++counters_.link_downs;
  hooks_.link_down(e.a, e.b);
}

XKB_SILENT void Injector::fire_device_fail(const FaultEvent& e) {
  ++counters_.device_fails;
  hooks_.device_fail(e.a);
}

bool Injector::should_fail_transfer(TransferKind k, int src, int dst,
                                    sim::Time now) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kTransferFail || xfail_consumed_[i]) continue;
    if (e.t > now) continue;
    if (e.xfer != TransferKind::kAny && e.xfer != k) continue;
    if (e.a != -1 && e.a != src) continue;
    if (e.b != -1 && e.b != dst) continue;
    xfail_consumed_[i] = 1;
    ++counters_.injected_transfer_failures;
    return true;
  }
  if (plan_.fail_prob > 0.0 && rng_.next_double() < plan_.fail_prob) {
    ++counters_.injected_transfer_failures;
    return true;
  }
  return false;
}

std::size_t Injector::unconsumed_transfer_faults() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < plan_.events.size(); ++i)
    if (plan_.events[i].kind == FaultKind::kTransferFail &&
        (xfail_consumed_.empty() || !xfail_consumed_[i]))
      ++n;
  return n;
}

std::string Injector::counters_json() const {
  std::ostringstream os;
  os << "{\"brownouts\":" << counters_.brownouts
     << ",\"heals\":" << counters_.heals
     << ",\"link_downs\":" << counters_.link_downs
     << ",\"device_fails\":" << counters_.device_fails
     << ",\"injected_transfer_failures\":"
     << counters_.injected_transfer_failures
     << ",\"unconsumed_transfer_faults\":" << unconsumed_transfer_faults()
     << "}";
  return os.str();
}

}  // namespace xkb::fault
