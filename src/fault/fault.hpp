// xkb::fault -- deterministic, seeded fault plans.
//
// A FaultPlan is a list of virtual-time fault events (plus an optional
// per-transfer failure probability) that an Injector arms against the
// simulation engine.  Everything is deterministic: events fire at fixed
// virtual times in plan order, and probabilistic transfer failures draw
// from a SplitMix64 stream seeded by the plan, consumed in the (itself
// deterministic) transfer-issue order.  Two runs of the same workload
// under the same plan therefore produce bit-identical observable event
// streams -- the property the xkb::check event-stream hash verifies.
//
// The text format (one directive per line, '#' comments):
//
//   seed 42
//   fail-prob 0.01
//   brownout    <t> <a> <b> <fraction> [<duration>]
//   link-down   <t> <a> <b>
//   xfail       <t> <h2d|d2d|d2h|any> <src|-1> <dst|-1>
//   device-fail <t> <gpu>
//
// brownout scales link a<->b to <fraction> of nominal bandwidth at time
// <t>, healing after <duration> (omitted or 0 = permanent).  link-down
// demotes the route one step (2xNVLink -> 1xNVLink -> PCIe floor).  xfail
// aborts the first matching transfer issued at or after <t> (-1 endpoints
// are wildcards; d2h's dst is the host, use -1).  device-fail removes the
// GPU for good.
//
// Every device endpoint may be given either as an index or as the device's
// .tpo node name ("brownout 0.01 gpu0 gpu3 0.25"): a token starting with a
// letter is a name (tdl names never parse as integers), resolved against
// the armed machine's topology when the Injector arms the plan.  Named
// plans survive device renumbering across topology descriptions; unknown
// names fail arm() with the offending event.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace xkb::fault {

/// Base for every error the fault/recovery machinery can raise.  The bench
/// driver catches this (like OutOfDeviceMemory) and reports a failed-but-
/// diagnosed run rather than crashing the matrix.
class FaultError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A transfer kept failing past the retry policy's cap.
class TransferRetriesExhausted : public FaultError {
  using FaultError::FaultError;
};

/// Recovery could not preserve the last current copy of some tile: the
/// dirty replica died with no surviving copy and no replayable producer.
class UnrecoverableDataLoss : public FaultError {
  using FaultError::FaultError;
};

/// The watchdog saw outstanding work with no observable progress.
class StuckProgress : public FaultError {
  using FaultError::FaultError;
};

enum class FaultKind : std::uint8_t {
  kBrownout,      ///< link bandwidth drops to a fraction of nominal
  kLinkDown,      ///< route demoted one step (NV2 -> NV1 -> PCIe)
  kTransferFail,  ///< the next matching transfer aborts in flight
  kDeviceFail,    ///< whole-GPU loss
};

enum class TransferKind : std::uint8_t { kH2D, kD2D, kD2H, kAny };

const char* to_string(FaultKind k);
const char* to_string(TransferKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kBrownout;
  sim::Time t = 0.0;
  int a = -1;              ///< link endpoint / failed device / xfail src (-1 any)
  int b = -1;              ///< link endpoint / xfail dst (-1 any)
  double fraction = 1.0;   ///< brownout: fraction of nominal bandwidth
  sim::Time duration = 0;  ///< brownout: heal after this long (0 = permanent)
  TransferKind xfer = TransferKind::kAny;  ///< xfail: which transfer class
  /// Symbolic endpoints (.tpo device names).  Non-empty names override the
  /// index fields; the Injector resolves them against the topology at
  /// arm() time and writes the indices back into a/b.
  std::string a_name;
  std::string b_name;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double fail_prob = 0.0;  ///< per-transfer abort probability (0 = off)
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty() && fail_prob <= 0.0; }

  /// Serialize back to the text format (round-trips through parse()).
  std::string to_text() const;

  /// Parse the text format; throws std::invalid_argument naming the
  /// offending line and directive on any malformed input.
  static FaultPlan parse(const std::string& text);
  static FaultPlan parse_file(const std::string& path);

  /// A reproducible plan for `--fault-seed`: a handful of brownouts, one
  /// route demotion and a low transfer-failure probability spread over
  /// [0, horizon) on an `num_gpus`-device machine, all drawn from `seed`.
  static FaultPlan random(std::uint64_t seed, int num_gpus, sim::Time horizon);
};

/// Capped exponential backoff for transient transfer failures, in virtual
/// time: attempt k (1-based) waits min(base * 2^(k-1), cap) before the
/// fetch is re-planned.  More than `max_transfer_retries` failed attempts
/// for the same reception raises TransferRetriesExhausted.
struct RetryPolicy {
  int max_transfer_retries = 6;
  double backoff_base = 25e-6;
  double backoff_cap = 2e-3;

  double backoff_for(int attempt) const {
    double d = backoff_base;
    for (int i = 1; i < attempt && d < backoff_cap; ++i) d *= 2.0;
    return d < backoff_cap ? d : backoff_cap;
  }
};

}  // namespace xkb::fault
