#include "sim/resource.hpp"

#include <cassert>

#include "util/annotations.hpp"

namespace xkb::sim {

XKB_HOT Interval FifoResource::submit(Time duration, Callback on_done,
                              std::size_t bytes) {
  assert(duration >= 0.0);
  const Time start = free_at_ > eng_->now() ? free_at_ : eng_->now();
  const Time end = start + duration;
  free_at_ = end;
  busy_ += duration;
  ++ops_;
  if (probe_) probe_->on_op(eng_->now(), Interval{start, end}, bytes);
  if (on_done)
    eng_->schedule_at(end, std::move(on_done));
  return Interval{start, end};
}

Time FifoResource::available_at() const {
  return free_at_ > eng_->now() ? free_at_ : eng_->now();
}

void Channel::set_bandwidth(double bytes_per_second) {
  assert(bytes_per_second > 0.0 &&
         "channel bandwidth must be positive (malformed fault plan?)");
  bw_ = bytes_per_second;
  inv_bw_ = 1.0 / bytes_per_second;
  memo_valid_ = false;  // memoized division is for the old rate
}

XKB_HOT Interval Channel::transfer(std::size_t bytes, Callback on_done) {
  bytes_ += bytes;
  // Exact division, memoized: tiled workloads transfer the same byte count
  // over and over, so in steady state this is a compare instead of a
  // divide.  The cached reciprocal is NOT used here -- bytes * inv_bw_ can
  // differ from bytes / bw_ by 1 ulp, which would flip event-time bits and
  // with them every xkb::check event-stream hash.
  if (!memo_valid_ || bytes != memo_bytes_) {
    memo_bytes_ = bytes;
    memo_xfer_ = static_cast<double>(bytes) / bw_;
    memo_valid_ = true;
  }
  const Time dur = latency_ + memo_xfer_;
  return submit(dur, std::move(on_done), bytes);
}

}  // namespace xkb::sim
