#include "sim/resource.hpp"

#include <cassert>

namespace xkb::sim {

Interval FifoResource::submit(Time duration, Callback on_done,
                              std::size_t bytes) {
  assert(duration >= 0.0);
  const Time start = free_at_ > eng_->now() ? free_at_ : eng_->now();
  const Time end = start + duration;
  free_at_ = end;
  busy_ += duration;
  ++ops_;
  if (probe_) probe_->on_op(eng_->now(), Interval{start, end}, bytes);
  if (on_done)
    eng_->schedule_at(end, std::move(on_done));
  return Interval{start, end};
}

Time FifoResource::available_at() const {
  return free_at_ > eng_->now() ? free_at_ : eng_->now();
}

Interval Channel::transfer(std::size_t bytes, Callback on_done) {
  bytes_ += bytes;
  const Time dur = latency_ + static_cast<double>(bytes) / bw_;
  return submit(dur, std::move(on_done), bytes);
}

}  // namespace xkb::sim
