// Serial FIFO resources of the simulated platform.
//
// A `FifoResource` models anything that processes one operation at a time in
// submission order: a directed interconnect link (NVLink lane pair, PCIe
// switch direction) or a CUDA stream.  Submitting an operation returns its
// (start, end) interval, and the completion callback fires at `end` in
// virtual time.  Utilisation counters feed the trace/occupancy reports.
#pragma once

#include <cstddef>
#include <string>

#include "sim/engine.hpp"

namespace xkb::sim {

struct Interval {
  Time start = 0.0;
  Time end = 0.0;
  Time duration() const { return end - start; }
};

/// Passive per-resource usage observer: sees every submission with its
/// submit time (queueing delay = interval start - submit time), the occupied
/// interval, and the payload size (0 for non-transfer occupancy).  Used by
/// the xkb::obs link-utilization probes; at most one per resource, null to
/// detach, one pointer test per submission when unset.
struct UsageProbe {
  virtual ~UsageProbe() = default;
  virtual void on_op(Time submitted, Interval iv, std::size_t bytes) = 0;
};

class FifoResource {
 public:
  FifoResource(Engine& eng, std::string name)
      : eng_(&eng), name_(std::move(name)) {}

  /// Occupy the resource for `duration` seconds, FIFO after earlier work.
  /// `on_done` (may be empty) fires at the returned interval's end.
  /// `bytes` is reported to the attached probe only (payload accounting).
  Interval submit(Time duration, Callback on_done, std::size_t bytes = 0);

  /// Earliest time a new submission would start.
  Time available_at() const;

  Time busy_time() const { return busy_; }
  std::size_t ops() const { return ops_; }
  const std::string& name() const { return name_; }

  void set_probe(UsageProbe* p) { probe_ = p; }
  UsageProbe* probe() const { return probe_; }

 private:
  Engine* eng_;
  std::string name_;
  Time free_at_ = 0.0;
  Time busy_ = 0.0;
  std::size_t ops_ = 0;
  UsageProbe* probe_ = nullptr;
};

/// A directed link: converts bytes to occupancy time using a bandwidth and a
/// fixed per-transfer latency.  Bandwidth is in bytes/second.
class Channel : public FifoResource {
 public:
  Channel(Engine& eng, std::string name, double bytes_per_second,
          Time latency)
      : FifoResource(eng, std::move(name)), latency_(latency) {
    set_bandwidth(bytes_per_second);
  }

  Interval transfer(std::size_t bytes, Callback on_done);

  double bandwidth() const { return bw_; }

  /// Cached 1/bandwidth (seconds per byte), refreshed by set_bandwidth.
  /// For *estimates* only (duration previews, bench math): multiplying by
  /// the reciprocal is up to 1 ulp away from the exact `bytes / bw_`
  /// division that transfer() feeds into event times, and the xkb::check
  /// event-stream hash folds raw time bits, so the scheduling path must
  /// keep the division (memoized -- see transfer()).
  double inv_bandwidth() const { return inv_bw_; }

  /// Estimated occupancy for `bytes` (latency + bytes * inv_bw).  Cheap,
  /// division-free, and within 1 ulp of what transfer() would charge.
  Time estimate(std::size_t bytes) const {
    return latency_ + static_cast<double>(bytes) * inv_bw_;
  }

  /// Retarget the link's bandwidth (bytes/second).  Transfers submitted
  /// after the call use the new rate; occupancy intervals already scheduled
  /// keep their end times (a DMA in flight finishes at the speed it was
  /// granted -- the brownout applies to what queues behind it).  Used by
  /// xkb::fault for link brownouts and route demotion.  Asserts bw > 0: a
  /// malformed fault plan must not silently produce inf/NaN occupancy.
  void set_bandwidth(double bytes_per_second);

  std::size_t bytes_moved() const { return bytes_; }

 private:
  double bw_ = 0.0;
  double inv_bw_ = 0.0;
  Time latency_;
  std::size_t bytes_ = 0;
  // One-entry memo of the exact per-transfer division: tiled workloads
  // move the same few byte sizes millions of times, so the hot path almost
  // never divides, yet stays bit-identical to `bytes / bw_`.
  mutable std::size_t memo_bytes_ = 0;
  mutable Time memo_xfer_ = 0.0;
  mutable bool memo_valid_ = false;
};

}  // namespace xkb::sim
