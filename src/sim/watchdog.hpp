// Stuck-progress watchdog for the discrete-event engine.
//
// Fault recovery introduces, for the first time, code paths where a bug
// could leave the runtime waiting forever on an arrival that was aborted
// and never re-planned.  In a discrete-event simulator that does not hang
// the process -- the queue simply drains with work outstanding -- but a
// *self-re-arming* silent tick turns the failure mode back into something
// diagnosable: if the workload reports outstanding work while no
// observable event has been processed for `stuck_ticks` consecutive
// ticks, the watchdog invokes `on_stuck` (which typically throws with a
// stuck-task dump).  Ticks are silent engine events, so an armed watchdog
// never perturbs the observable event stream, the xkb::check hash, or the
// measured makespan.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"

namespace xkb::sim {

class Watchdog {
 public:
  struct Options {
    Time interval = 10e-3;  // virtual seconds between ticks
    int stuck_ticks = 3;    // progress-free ticks before declaring stuck
  };

  /// `outstanding` reports how much work is still pending (0 = drained);
  /// `on_stuck(outstanding)` is invoked once when stuckness is declared.
  Watchdog(Engine& eng, Options opt, std::function<std::uint64_t()> outstanding,
           std::function<void(std::uint64_t)> on_stuck)
      : eng_(&eng),
        opt_(opt),
        outstanding_(std::move(outstanding)),
        on_stuck_(std::move(on_stuck)) {}

  /// Arm (idempotent).  The watchdog disarms itself when `outstanding`
  /// reports 0 -- otherwise its own ticks would keep the queue alive
  /// forever -- so callers re-arm whenever new work is submitted.
  void ensure_armed() {
    if (armed_) return;
    armed_ = true;
    quiet_ticks_ = 0;
    last_observable_ = eng_->observable_processed();
    eng_->schedule_silent_after(opt_.interval, [this] { tick(); });
  }

  bool armed() const { return armed_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  // Runs on the silent lane: must re-arm via schedule_silent_* only and
  // never touch observable state (enforced by xkb-tidy's silent-lane
  // check) -- an armed-but-never-stuck watchdog leaves the observable
  // event stream bit-identical to an unarmed run.
  XKB_SILENT void tick() {
    ++ticks_;
    const std::uint64_t pending = outstanding_();
    if (pending == 0) {  // drained: stop re-arming, queue may empty
      armed_ = false;
      return;
    }
    const std::uint64_t seen = eng_->observable_processed();
    quiet_ticks_ = (seen == last_observable_) ? quiet_ticks_ + 1 : 0;
    last_observable_ = seen;
    // Stuckness needs two conditions, not one.  Progress-free ticks alone
    // also describe a *legitimately idle* service: work is outstanding at
    // the caller's level (a queued job waiting for its retry timer, a
    // tenant stream between arrivals) while the next step is already
    // scheduled as a future observable event.  Only when no observable
    // event is pending either can nothing ever complete the outstanding
    // work -- that is the genuinely stuck state worth a dump.  Keep
    // ticking through idle gaps; quiet_ticks_ keeps counting, so the
    // moment the last scheduled event has run with work still pending,
    // the next tick declares stuckness without a fresh grace period.
    if (quiet_ticks_ >= opt_.stuck_ticks && eng_->observable_pending() == 0) {
      armed_ = false;
      on_stuck_(pending);
      return;  // on_stuck may not throw; do not re-arm either way
    }
    eng_->schedule_silent_after(opt_.interval, [this] { tick(); });
  }

  Engine* eng_;
  Options opt_;
  std::function<std::uint64_t()> outstanding_;
  std::function<void(std::uint64_t)> on_stuck_;
  bool armed_ = false;
  int quiet_ticks_ = 0;
  std::uint64_t last_observable_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace xkb::sim
