#include "sim/engine.hpp"

#include <cassert>

namespace xkb::sim {

void Engine::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;  // release builds: clamp (see header contract)
  queue_.push(Event{t, seq_++, std::move(cb), /*observable=*/true});
}

void Engine::schedule_silent_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(cb), /*observable=*/false});
}

void Engine::dispatch(Event ev) {
  now_ = ev.t;
  ++processed_;
  if (ev.observable) {
    ++observable_processed_;
    last_observable_time_ = ev.t;
    if (observer_) observer_(ev.t, observable_seq_);
    ++observable_seq_;
  }
  ev.cb();
}

Time Engine::run() {
  while (!queue_.empty()) {
    // The callback may schedule new events, so move it out before popping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(ev));
  }
  // The queue may have drained on a *silent* event (a watchdog tick or
  // fault-plan trigger beyond the last completion).  Rewind to the
  // observable frontier so that silent machinery leaves no trace once the
  // queue is empty: work submitted for a subsequent phase resumes from the
  // instant the previous phase observably ended, keeping multi-phase runs
  // bit-identical to runs without any silent events.
  now_ = last_observable_time_;
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(std::move(ev));
  }
  if (now_ < deadline && queue_.empty()) return now_;
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  seq_ = 0;
  processed_ = 0;
  observable_seq_ = 0;
  observable_processed_ = 0;
  last_observable_time_ = 0.0;
}

}  // namespace xkb::sim
