#include "sim/engine.hpp"

#include <cassert>

namespace xkb::sim {

void Engine::schedule_at(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  if (t < now_) t = now_;  // release builds: clamp (see header contract)
  queue_.push(Event{t, seq_++, std::move(cb)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    // The callback may schedule new events, so move it out before popping.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    if (observer_) observer_(ev.t, ev.seq);
    ev.cb();
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    if (observer_) observer_(ev.t, ev.seq);
    ev.cb();
  }
  if (now_ < deadline && queue_.empty()) return now_;
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

void Engine::reset() {
  while (!queue_.empty()) queue_.pop();
  now_ = 0.0;
  seq_ = 0;
  processed_ = 0;
}

}  // namespace xkb::sim
