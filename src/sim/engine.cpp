#include "sim/engine.hpp"

#include <cstdlib>
#include <cstring>

namespace xkb::sim {

namespace {

Engine::QueueImpl initial_default_impl() {
  if (const char* env = std::getenv("XKB_ENGINE_QUEUE")) {
    if (std::strcmp(env, "heap") == 0) return Engine::QueueImpl::kHeap;
  }
  return Engine::QueueImpl::kCalendar;
}

Engine::QueueImpl& default_impl_slot() {
  static Engine::QueueImpl impl = initial_default_impl();
  return impl;
}

}  // namespace

Engine::QueueImpl Engine::default_queue_impl() { return default_impl_slot(); }

void Engine::set_default_queue_impl(QueueImpl impl) {
  default_impl_slot() = impl;
}

XKB_HOT void Engine::dispatch(EventNode* n) {
  now_ = n->t;
  ++processed_;
  if (n->observable) {
    assert(observable_pending_ > 0);
    --observable_pending_;
    ++observable_processed_;
    last_observable_time_ = n->t;
    if (observer_) observer_(n->t, observable_seq_);
    ++observable_seq_;
  }
  // Invoke in place: the node is already out of the queue, so a callback
  // that schedules new work (arena slabs are stable, this slot is still
  // live) or resets the engine (drain_all only sees queued nodes) cannot
  // invalidate it.  The guard returns the node to the arena after the call
  // -- including on throw (fault paths propagate FaultError through run()),
  // so the callback's captures are always destroyed exactly once.
  struct NodeGuard {
    EventArena* arena;
    EventNode* n;
    ~NodeGuard() { arena->destroy(n); }
  } guard{&arena_, n};
  n->cb();
}

XKB_HOT Time Engine::run() {
  {
    // Self-profiler scope over the whole dispatch loop: one clock-read
    // pair per run() call, with the exact event count alongside, rather
    // than per-event timers that would distort the 100ns-scale dispatch.
    prof::ScopedTimer pt(prof::Phase::kEngineRun);
    const std::uint64_t before = processed_;
    while (EventNode* n = queue_.pop()) dispatch(n);
    prof::count(prof::Counter::kEngineEvents, processed_ - before);
    prof::note_max(prof::Counter::kPeakPending, arena_.peak_live());
  }
  // The queue may have drained on a *silent* event (a watchdog tick or
  // fault-plan trigger beyond the last completion).  Rewind to the
  // observable frontier so that silent machinery leaves no trace once the
  // queue is empty: work submitted for a subsequent phase resumes from the
  // instant the previous phase observably ended, keeping multi-phase runs
  // bit-identical to runs without any silent events.
  now_ = last_observable_time_;
  return now_;
}

XKB_HOT Time Engine::run_until(Time deadline) {
  {
    prof::ScopedTimer pt(prof::Phase::kEngineRun);
    const std::uint64_t before = processed_;
    while (EventNode* n = queue_.peek()) {
      if (n->t > deadline) break;
      dispatch(queue_.pop());
    }
    prof::count(prof::Counter::kEngineEvents, processed_ - before);
    prof::note_max(prof::Counter::kPeakPending, arena_.peak_live());
  }
  if (queue_.empty()) {
    // Same drain contract as run(): rewind past any trailing silent events
    // so a watchdog tick or fault trigger beyond the last completion never
    // leaks into the clock seen by a later phase.
    now_ = last_observable_time_;
    return now_;
  }
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

void Engine::reset() {
  clear_events();
  now_ = 0.0;
  seq_ = 0;
  processed_ = 0;
  observable_seq_ = 0;
  observable_processed_ = 0;
  last_observable_time_ = 0.0;
}

void Engine::clear_events() {
  queue_.drain_all([this](EventNode* n) { arena_.destroy(n); });
  observable_pending_ = 0;
}

}  // namespace xkb::sim
