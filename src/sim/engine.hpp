// Deterministic discrete-event simulation engine.
//
// The whole reproduction executes in virtual time on this engine: transfers
// occupy link channels, kernels occupy per-device streams, and the runtime
// reacts to completion events.  Determinism is guaranteed by ordering events
// by (time, insertion sequence); two runs with the same inputs produce the
// same schedule, which the test suite relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xkb::sim {

/// Virtual time in seconds.
using Time = double;

using Callback = std::function<void()>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `t`.
  ///
  /// Contract: `t` must be >= now().  Scheduling into the past is a caller
  /// bug -- it would break the monotonicity every resource relies on -- and
  /// is diagnosed by an assert in debug builds; release builds clamp the
  /// event to now() (it runs next, after already-queued same-time events).
  void schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `dt` seconds from now.
  void schedule_after(Time dt, Callback cb) { schedule_at(now_ + dt, std::move(cb)); }

  /// Run events until the queue drains.  Returns the final virtual time.
  Time run();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  Time run_until(Time deadline);

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const { return queue_.empty(); }

  /// Reset the clock and drop all pending events (for back-to-back runs).
  /// Pending callbacks (and whatever they capture) are destroyed.
  void reset();

  /// Observer invoked for every event, just before its callback runs, with
  /// the event's (time, insertion sequence).  Used by xkb::check to hash
  /// the event stream; at most one observer, empty to detach.
  using Observer = std::function<void(Time, std::uint64_t)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  Observer observer_;
};

}  // namespace xkb::sim
