// Deterministic discrete-event simulation engine.
//
// The whole reproduction executes in virtual time on this engine: transfers
// occupy link channels, kernels occupy per-device streams, and the runtime
// reacts to completion events.  Determinism is guaranteed by ordering events
// by (time, insertion sequence); two runs with the same inputs produce the
// same schedule, which the test suite relies on.
//
// Storage and ordering live in sim/event_queue.hpp: events are arena-
// allocated nodes dispatched from a two-tier calendar queue (or, for
// differential testing, a binary heap with the identical dispatch order).
// Callbacks are `sim::Callback` (SmallFn): move-only with a large inline
// buffer, so the hot schedule/dispatch loop performs no heap allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "util/annotations.hpp"

namespace xkb::sim {

using Callback = SmallFn;

class Engine {
 public:
  using QueueImpl = EventQueue::Impl;

  Engine() : Engine(default_queue_impl()) {}
  explicit Engine(QueueImpl impl) : queue_(impl) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() { clear_events(); }

  /// Queue implementation used by engines default-constructed afterwards.
  /// Overridable via the XKB_ENGINE_QUEUE environment variable ("calendar"
  /// or "heap"); the differential determinism tests flip it per run.
  static QueueImpl default_queue_impl();
  static void set_default_queue_impl(QueueImpl impl);

  QueueImpl queue_impl() const { return queue_.impl(); }

  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `t`.
  ///
  /// Contract: `t` must be >= now().  Scheduling into the past is a caller
  /// bug -- it would break the monotonicity every resource relies on -- and
  /// is diagnosed by an assert in debug builds; release builds clamp the
  /// event to now() (it runs next, after already-queued same-time events).
  template <class F>
  XKB_HOT void schedule_at(Time t, F&& cb) {
    assert(t >= now_ && "cannot schedule into the past");
    if (t < now_) t = now_;  // release builds: clamp (see contract above)
    ++observable_pending_;
    queue_.push(
        arena_.create(t, seq_++, /*observable=*/true, std::forward<F>(cb)));
  }

  /// Schedule `cb` to run `dt` seconds from now.
  template <class F>
  XKB_HOT void schedule_after(Time dt, F&& cb) {
    schedule_at(now_ + dt, std::forward<F>(cb));
  }

  /// Schedule a *silent* event: it executes like any other (ordered by
  /// (time, global sequence)) but is invisible to the observer, does not
  /// advance last_observable_time(), and does not consume an observable
  /// ordinal.  Used by xkb::fault for fault-plan triggers and watchdog
  /// ticks, so that a fault that ends up affecting nothing leaves the
  /// observable event stream -- and therefore the xkb::check event-stream
  /// hash -- bit-identical to a fault-free run.
  template <class F>
  XKB_HOT void schedule_silent_at(Time t, F&& cb) {
    assert(t >= now_ && "cannot schedule into the past");
    if (t < now_) t = now_;
    queue_.push(
        arena_.create(t, seq_++, /*observable=*/false, std::forward<F>(cb)));
  }
  template <class F>
  XKB_HOT void schedule_silent_after(Time dt, F&& cb) {
    schedule_silent_at(now_ + dt, std::forward<F>(cb));
  }

  /// Run events until the queue drains.  Returns the final virtual time,
  /// which is the last *observable* instant: if the queue drained on a
  /// trailing silent event (watchdog tick, fault trigger past the last
  /// completion), the clock rewinds to the observable frontier so silent
  /// machinery cannot delay work submitted for a subsequent phase.
  Time run();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// An event exactly at `deadline` runs.  Shares run()'s drain contract:
  /// if the queue drained (even on a trailing silent event), the clock
  /// rests at the observable frontier, not at the silent tail or the
  /// deadline.
  Time run_until(Time deadline);

  std::uint64_t events_processed() const { return processed_; }

  /// Count and timestamp of observable (non-silent) events only.  The
  /// timestamp is the makespan as the workload experienced it: silent
  /// bookkeeping (a watchdog tick beyond the last completion, a fault
  /// trigger on an idle link) never inflates it.
  std::uint64_t observable_processed() const { return observable_processed_; }
  Time last_observable_time() const { return last_observable_time_; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Observable events currently queued.  This is the "is progress still
  /// scheduled?" signal: as long as at least one observable event is
  /// pending, the simulation is legitimately *waiting* (a future arrival,
  /// a kernel completion, a retry timer), not stuck.  The watchdog uses it
  /// to distinguish "no runnable work right now" from "work outstanding
  /// with nothing left that could ever complete it".
  std::size_t observable_pending() const { return observable_pending_; }

  /// High-water mark of simultaneously pending events over the engine's
  /// lifetime (not reset by reset()): the resident queue depth this
  /// run actually exercised.
  std::size_t peak_pending() const { return arena_.peak_live(); }

  /// Reset the clock and drop all pending events (for back-to-back runs).
  /// Pending callbacks (and whatever they capture) are destroyed.  O(n).
  void reset();

  /// Observer invoked for every *observable* event, just before its
  /// callback runs, with the event's (time, observable ordinal).  The
  /// ordinal counts observable events only -- silent events still occupy a
  /// slot in the global tie-break sequence, but the observer never sees a
  /// gap, so the xkb::check event-stream hash is unperturbed by silent
  /// machinery.  At most one observer, empty to detach.
  using Observer = std::function<void(Time, std::uint64_t)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  void dispatch(EventNode* n);
  void clear_events();

  EventArena arena_;
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t observable_seq_ = 0;
  std::uint64_t observable_processed_ = 0;
  std::size_t observable_pending_ = 0;
  Time last_observable_time_ = 0.0;
  Observer observer_;
};

}  // namespace xkb::sim
