// Deterministic discrete-event simulation engine.
//
// The whole reproduction executes in virtual time on this engine: transfers
// occupy link channels, kernels occupy per-device streams, and the runtime
// reacts to completion events.  Determinism is guaranteed by ordering events
// by (time, insertion sequence); two runs with the same inputs produce the
// same schedule, which the test suite relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xkb::sim {

/// Virtual time in seconds.
using Time = double;

using Callback = std::function<void()>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` to run at absolute virtual time `t`.
  ///
  /// Contract: `t` must be >= now().  Scheduling into the past is a caller
  /// bug -- it would break the monotonicity every resource relies on -- and
  /// is diagnosed by an assert in debug builds; release builds clamp the
  /// event to now() (it runs next, after already-queued same-time events).
  void schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `dt` seconds from now.
  void schedule_after(Time dt, Callback cb) { schedule_at(now_ + dt, std::move(cb)); }

  /// Schedule a *silent* event: it executes like any other (ordered by
  /// (time, global sequence)) but is invisible to the observer, does not
  /// advance last_observable_time(), and does not consume an observable
  /// ordinal.  Used by xkb::fault for fault-plan triggers and watchdog
  /// ticks, so that a fault that ends up affecting nothing leaves the
  /// observable event stream -- and therefore the xkb::check event-stream
  /// hash -- bit-identical to a fault-free run.
  void schedule_silent_at(Time t, Callback cb);
  void schedule_silent_after(Time dt, Callback cb) {
    schedule_silent_at(now_ + dt, std::move(cb));
  }

  /// Run events until the queue drains.  Returns the final virtual time,
  /// which is the last *observable* instant: if the queue drained on a
  /// trailing silent event (watchdog tick, fault trigger past the last
  /// completion), the clock rewinds to the observable frontier so silent
  /// machinery cannot delay work submitted for a subsequent phase.
  Time run();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  Time run_until(Time deadline);

  std::uint64_t events_processed() const { return processed_; }

  /// Count and timestamp of observable (non-silent) events only.  The
  /// timestamp is the makespan as the workload experienced it: silent
  /// bookkeeping (a watchdog tick beyond the last completion, a fault
  /// trigger on an idle link) never inflates it.
  std::uint64_t observable_processed() const { return observable_processed_; }
  Time last_observable_time() const { return last_observable_time_; }

  bool empty() const { return queue_.empty(); }

  /// Reset the clock and drop all pending events (for back-to-back runs).
  /// Pending callbacks (and whatever they capture) are destroyed.
  void reset();

  /// Observer invoked for every *observable* event, just before its
  /// callback runs, with the event's (time, observable ordinal).  The
  /// ordinal counts observable events only -- silent events still occupy a
  /// slot in the global tie-break sequence, but the observer never sees a
  /// gap, so the xkb::check event-stream hash is unperturbed by silent
  /// machinery.  At most one observer, empty to detach.
  using Observer = std::function<void(Time, std::uint64_t)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
    bool observable;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event ev);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t observable_seq_ = 0;
  std::uint64_t observable_processed_ = 0;
  Time last_observable_time_ = 0.0;
  Observer observer_;
};

}  // namespace xkb::sim
