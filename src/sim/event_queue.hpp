// Event storage and ordering for the discrete-event engine.
//
// Two pieces, both built for the hot scheduling loop:
//
//  * `EventArena` -- a slab allocator for event nodes.  Nodes live in
//    fixed-size slabs and recycle through a free list, so steady-state
//    scheduling performs zero allocator traffic: a paper-scale GEMM churns
//    through millions of events but only ever allocates as many slabs as
//    its peak queue depth requires.
//
//  * `EventQueue` -- a two-tier calendar (ladder) queue over arena nodes,
//    with a `std::priority_queue`-equivalent binary-heap fallback
//    (`Impl::kHeap`) kept for differential testing: both impls dispatch in
//    exactly the same total order, keyed by (time, insertion sequence), so
//    the xkb::check event-stream hash is bit-identical whichever is active.
//
// Calendar structure.  Near-future events hash into `buckets_` over the
// window [win_start_, win_start_ + nbuckets * width_); far-future events
// wait unsorted in `overflow_`.  The cursor bucket is *adopted* into
// `sorted_`, a descending-sorted vector whose back() is the global minimum.
// The queue stores (t, seq, node*) entries, not bare pointers: sorts and
// binary searches then run over contiguous keys instead of chasing node
// pointers across arena slabs, which is what keeps adoption cheap at
// paper-scale queue depths (tens of thousands of resident events).
//
// Ordering invariant: the bucket index map f(t) = floor((t - win_start) *
// inv_width) is monotone in t, so bucket k holds exactly the events whose
// times fall in f's k-th preimage interval; every element of `sorted_`
// (the adopted bucket cur_) therefore precedes, by (t, seq), every element
// of any bucket after the cursor and every overflow element.  Pushes that
// land at or before the cursor bucket insert directly into `sorted_`
// (binary search near the back, since t >= now); pushes beyond it go to
// their bucket or to overflow.  When the window is exhausted the queue
// rebuilds from `overflow_`: the new window starts at the overflow
// minimum, so bucket 0 is non-empty and every rebuild makes strict
// progress.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_fn.hpp"
#include "util/annotations.hpp"
#include "util/selfprof.hpp"

namespace xkb::sim {

/// Virtual time in seconds.
using Time = double;

/// One pending event.  Owned by the `EventArena`; referenced (never owned)
/// by the `EventQueue`.  Cache-line aligned: with the 80-byte SmallFn
/// buffer the node is exactly two 64-byte lines, so the queue can prefetch
/// a whole upcoming node with two touches and dispatch never straddles a
/// third line.
struct alignas(64) EventNode {
  Time t;
  std::uint64_t seq;
  bool observable;
  SmallFn cb;
};
static_assert(sizeof(EventNode) == 128,
              "EventNode must span exactly two 64-byte cache lines: the "
              "queue's prefetch pipeline issues exactly two line touches "
              "per upcoming node");
static_assert(alignof(EventNode) == 64,
              "EventNode must start on a cache-line boundary or a node "
              "straddles three lines and the two-touch prefetch is short");
static_assert(sizeof(SmallFn) == 96,
              "SmallFn (2 dispatch pointers + 80-byte inline buffer) sizes "
              "the EventNode to its two-line budget; resize both together");

/// Hint the prefetcher at a node about to be dispatched.
inline void prefetch_node(const EventNode* n) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(n, 0, 3);
  __builtin_prefetch(reinterpret_cast<const char*>(n) + 64, 0, 3);
#else
  (void)n;
#endif
}

/// Slab allocator for `EventNode`.  Slabs are stable (never moved or freed
/// until the arena dies); destroyed nodes recycle through a LIFO free list
/// (the hottest slot is reused first).
class EventArena {
 public:
  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  template <class F>
  XKB_HOT EventNode* create(Time t, std::uint64_t seq, bool observable,
                            F&& f) {
    void* slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = fresh_slot();  // cold: slab growth, amortized to zero
    }
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return ::new (slot)
        EventNode{t, seq, observable, SmallFn(std::forward<F>(f))};
  }

  XKB_HOT void destroy(EventNode* n) {
    n->~EventNode();
    free_.push_back(n);
    --live_;
  }

  std::size_t live() const { return live_; }
  /// High-water mark of simultaneously pending events -- the resident
  /// queue depth a benchmark should reproduce to be representative.
  std::size_t peak_live() const { return peak_live_; }
  std::size_t slabs() const { return slabs_.size(); }

 private:
  static constexpr std::size_t kSlabNodes = 256;
  struct alignas(alignof(EventNode)) RawSlot {
    unsigned char bytes[sizeof(EventNode)];
  };

  void* fresh_slot() {
    if (slabs_.empty() || next_in_slab_ == kSlabNodes) {
      slabs_.push_back(std::make_unique<RawSlot[]>(kSlabNodes));
      next_in_slab_ = 0;
      prof::count(prof::Counter::kArenaSlabs);
    }
    return &slabs_.back()[next_in_slab_++];
  }

  std::vector<std::unique_ptr<RawSlot[]>> slabs_;
  std::vector<void*> free_;
  std::size_t next_in_slab_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

class EventQueue {
 public:
  enum class Impl : std::uint8_t {
    kCalendar,  ///< two-tier calendar queue (production)
    kHeap,      ///< binary heap, dispatch-order-identical (differential ref)
  };

  explicit EventQueue(Impl impl = Impl::kCalendar) : impl_(impl) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Impl impl() const { return impl_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(EventNode* n);

  /// Earliest event by (t, seq), or nullptr when empty.  May advance the
  /// calendar cursor / trigger a rebuild, but never changes the dispatch
  /// order.
  EventNode* peek();

  /// Remove and return the earliest event, or nullptr when empty.
  EventNode* pop();

  /// Visit every pending node in unspecified order and leave the queue
  /// empty.  O(n); used by Engine::reset and the engine destructor to
  /// return nodes to the arena without a full ordered drain.
  template <class Fn>
  void drain_all(Fn&& fn) {
    for (const Entry& e : sorted_) fn(e.n);
    sorted_.clear();
    for (auto& b : buckets_) {
      for (const Entry& e : b) fn(e.n);
      b.clear();
    }
    for (const Entry& e : overflow_) fn(e.n);
    overflow_.clear();
    for (const Entry& e : heap_) fn(e.n);
    heap_.clear();
    size_ = 0;
    width_ = 0.0;
    inv_width_ = 0.0;
    win_start_ = 0.0;
    cur_ = 0;
    adopted_ = false;
  }

 private:
  /// Ordering key copied out of the node, so every compare during sorts,
  /// sifts and binary searches touches contiguous queue memory only.
  struct Entry {
    Time t;
    std::uint64_t seq;
    EventNode* n;
  };

  void sorted_insert(Entry e);
  void adopt(std::size_t k);
  bool advance();
  void rebuild();

  Impl impl_;
  std::size_t size_ = 0;

  // -- calendar tier --
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> sorted_;    ///< adopted bucket, descending; back() = min
  std::vector<Entry> overflow_;  ///< beyond the window, unsorted
  Time win_start_ = 0.0;
  double width_ = 0.0;      ///< 0 = no window yet (everything overflows)
  double inv_width_ = 0.0;  ///< 1/width_, the hot-path bucket index factor
  std::size_t cur_ = 0;
  bool adopted_ = false;

  // -- heap tier (Impl::kHeap only) --
  std::vector<Entry> heap_;
};

}  // namespace xkb::sim
