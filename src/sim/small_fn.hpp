// Small-buffer move-only callable: the engine's event callback type.
//
// `std::function` heap-allocates any closure larger than the libstdc++
// small-object budget (two words), which every hot completion lambda in
// sim/resource.cpp and runtime/ exceeds -- a malloc/free pair per simulated
// event.  SmallFn is the replacement: a move-only type-erased `void()`
// callable with a large inline buffer sized for the biggest hot-path
// closures, so scheduling an event never touches the allocator.  Closures
// that do exceed the buffer (rare, cold paths only) fall back to the heap
// transparently.
//
// Move-only is a feature, not a limitation: event callbacks are invoked at
// most once and owned by exactly one queue slot, so requiring movability
// (but not copyability) lets callbacks capture move-only state and makes
// accidental double-ownership a compile error.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/annotations.hpp"

namespace xkb::sim {

class SmallFn {
 public:
  /// Inline capture budget.  Sized so every closure on the transfer and
  /// kernel-completion hot paths (runtime/, sim/resource.cpp, xkb::fault)
  /// fits without a heap fallback; with the two dispatch pointers the whole
  /// object is 96 bytes, which lands an arena `EventNode` on exactly one
  /// 64-byte cache-line pair.
  static constexpr std::size_t kInlineSize = 80;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT: match std::function idiom

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  XKB_HOT SmallFn(F&& f) {  // NOLINT: implicit by design, like std::function
    if constexpr (fits_inline<D>() && std::is_trivially_copyable_v<D>) {
      // Fast path for the dominant hot-path shape: captures of plain
      // pointers and scalars.  manage_ stays null -- destroy is a no-op
      // and move is a raw buffer copy -- so dispatching such an event
      // never makes an indirect management call.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); };
    } else if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            std::launder(reinterpret_cast<D*>(self))->~D();
            break;
          case Op::kMove: {
            D* src = std::launder(reinterpret_cast<D*>(other));
            ::new (self) D(std::move(*src));
            src->~D();
            break;
          }
        }
      };
    } else {
      // Deliberate cold fallback: a capture over the 80-byte budget
      // heap-allocates here instead of failing to compile; hot-path
      // captures are pinned inline by the XKB_ASSERT_INLINE_CAPTURE
      // guards at their construction sites.
      // NOLINTNEXTLINE(xkb-hot-path-alloc): cold oversize-capture fallback
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* b) { (**std::launder(reinterpret_cast<D**>(b)))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            delete *std::launder(reinterpret_cast<D**>(self));
            break;
          case Op::kMove:
            ::new (self) D*(*std::launder(reinterpret_cast<D**>(other)));
            break;
        }
      };
    }
  }

  SmallFn(SmallFn&& o) noexcept { steal(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Whether a decayed callable of type D would avoid the heap fallback.
  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void reset() noexcept {
    if (invoke_) {
      if (manage_) manage_(Op::kDestroy, buf_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

 private:
  enum class Op : unsigned char { kDestroy, kMove };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, void* self, void* other);

  void steal(SmallFn& o) noexcept {
    if (!o.invoke_) return;
    if (o.manage_)
      o.manage_(Op::kMove, buf_, o.buf_);
    else
      std::memcpy(buf_, o.buf_, kInlineSize);  // trivially-copyable capture
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  // Dispatch pointers first: inside an arena EventNode this puts invoke_
  // on the same cache line as the event time, so a dispatch that was
  // prefetched one line deep can already issue the indirect call.
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
};

}  // namespace xkb::sim
