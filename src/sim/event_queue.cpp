#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

namespace xkb::sim {

namespace {

constexpr double kNoWindow = 0.0;

}  // namespace

// Both tiers use the same "descending by (t, seq)" relation: for the heap
// it makes the front the earliest entry (matching the original
// std::priority_queue<Event, ..., Later>), and for the adopted bucket it
// puts the minimum at back() so pop is a pop_back.

XKB_HOT void EventQueue::push(EventNode* n) {
  ++size_;
  const Entry e{n->t, n->seq, n};
  if (impl_ == Impl::kHeap) {
    auto lt = [](const Entry& a, const Entry& b) {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    };
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), lt);
    return;
  }
  if (width_ == kNoWindow) {  // no window yet: first peek will build one
    overflow_.push_back(e);
    return;
  }
  const double rel = (e.t - win_start_) * inv_width_;
  if (!(rel < static_cast<double>(buckets_.size()))) {
    overflow_.push_back(e);
    return;
  }
  std::size_t idx = rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  // At or before the cursor: the bucket was already adopted (or passed), so
  // the entry must join the sorted run to keep back() the global minimum.
  if (idx < cur_ || (idx == cur_ && adopted_)) {
    sorted_insert(e);
  } else {
    buckets_[idx].push_back(e);
  }
}

XKB_HOT void EventQueue::sorted_insert(Entry e) {
  auto desc = [](const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  };
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), e, desc);
  sorted_.insert(it, e);
}

XKB_HOT void EventQueue::adopt(std::size_t k) {
  prof::ScopedTimer pt(prof::Phase::kQueueAdopt);
  auto desc = [](const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  };
  cur_ = k;
  adopted_ = true;
  sorted_.swap(buckets_[k]);
  // Density-based widths keep buckets at a handful of entries; dodge the
  // std::sort call entirely for the overwhelmingly common tiny cases.
  if (sorted_.size() == 2) {
    if (desc(sorted_[1], sorted_[0])) std::swap(sorted_[0], sorted_[1]);
  } else if (sorted_.size() > 2) {
    std::sort(sorted_.begin(), sorted_.end(), desc);
  }
  // The adopted bucket is the next few dispatches in order; start pulling
  // all of its nodes in now (capped -- an overloaded bucket's tail is far
  // enough out that prefetching it here would only thrash).
  const std::size_t m = sorted_.size();
  const std::size_t stop = m > 8 ? m - 8 : 0;
  for (std::size_t i = m; i-- > stop;) prefetch_node(sorted_[i].n);
  // Also warm the *successor* bucket's entry array.  Its entries were
  // written when their events were scheduled -- thousands of events ago --
  // so the next adopt would otherwise stall on a cold read before it can
  // even learn which nodes to prefetch.  Warming one bucket ahead keeps
  // the two-level entry->node pipeline covered.
  for (std::size_t j = k + 1; j < buckets_.size() && j <= k + 32; ++j) {
    if (!buckets_[j].empty()) {
#if defined(__GNUC__) || defined(__clang__)
      const char* p = reinterpret_cast<const char*>(buckets_[j].data());
      __builtin_prefetch(p, 0, 3);
      __builtin_prefetch(p + 64, 0, 3);
#endif
      break;
    }
  }
}

// Move the cursor to the next non-empty bucket (adopting it), rebuilding
// the window from overflow when the current one is exhausted.  Returns
// false only when the queue is empty.  Precondition: sorted_ is empty.
bool EventQueue::advance() {
  for (;;) {
    if (width_ != kNoWindow) {
      std::size_t k = adopted_ ? cur_ + 1 : cur_;
      for (; k < buckets_.size(); ++k) {
        if (!buckets_[k].empty()) {
          adopt(k);
          return true;
        }
      }
      // Window exhausted; park the cursor past the end so late pushes that
      // still map into the old window go through sorted_insert.
      cur_ = buckets_.size();
      adopted_ = false;
    }
    if (overflow_.empty()) return false;
    rebuild();
  }
}

// Respan the window over the overflow set: win_start_ = overflow minimum
// (so bucket 0 is non-empty and progress is strict), nbuckets a power of
// two in [64, 65536] tracking the population.
//
// The width is *density-based*, not span-based: width = the median event
// spacing of the earliest half of the overflow set.  A span-based width
// ((mx - mn) / nbuckets) collapses under the skew every real run has -- a
// dense near-future region (in-flight transfers/kernels within
// microseconds) plus a sparse far tail (fault triggers, watchdog ticks
// milliseconds out) -- cramming tens of thousands of near events into a
// handful of buckets whose adoption then costs O(bucket) per event.  With
// median-spacing buckets the dense region gets occupancy ~1; the far tail
// simply stays in overflow and is redistributed by a later (cheap, rare)
// rebuild when the cursor gets there.
void EventQueue::rebuild() {
  prof::ScopedTimer pt(prof::Phase::kQueueRebuild);
  Time mn = overflow_.front().t;
  Time mx = mn;
  for (const Entry& e : overflow_) {
    if (e.t < mn) mn = e.t;
    if (e.t > mx) mx = e.t;
  }
  // Track the population so the window can cover (at target occupancy)
  // everything resident: a cap that lags the population forces a rebuild
  // every fraction of a pass, and at scale-out depths (hundreds of
  // thousands resident) re-streaming the overflow plus its nth_element
  // becomes the dominant per-event cost.  Bucket headers are reclaimed on
  // the next rebuild after a population drop, so small runs never pay for
  // a large one's peak.
  std::size_t nbuckets = 64;
  while (nbuckets < overflow_.size() && nbuckets < (1u << 20)) nbuckets <<= 1;
  auto asc = [](const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  };
  const std::size_t q = overflow_.size() / 2;
  std::nth_element(overflow_.begin(), overflow_.begin() + q, overflow_.end(),
                   asc);
  // (nth_element permutes overflow_, which is fine: dispatch order is
  // decided by the per-bucket sort and the (t, seq) key, never by the
  // redistribution order below.)
  // Target a few entries per bucket rather than exactly one: adopting a
  // 4-entry bucket costs barely more than a 1-entry one, while quartering
  // the cursor advances and bucket-header traffic.
  double w = 4.0 * (overflow_[q].t - mn) / static_cast<double>(q > 0 ? q : 1);
  if (!(w > 0.0) || !std::isfinite(w)) {
    // Degenerate dense prefix (at least half the events at one instant):
    // fall back to the span-based width; if that is degenerate too, any
    // positive width is correct -- everything lands in bucket 0 and gets
    // sorted there.
    w = (mx - mn) / static_cast<double>(nbuckets);
    if (!(w > 0.0) || !std::isfinite(w)) w = 1.0;
  }
  // Widen a hair so the maximum maps strictly inside the window instead of
  // bouncing straight back to overflow.
  w *= 1.0 + 1e-9;
  win_start_ = mn;
  width_ = w;
  inv_width_ = 1.0 / w;
  if (buckets_.size() < nbuckets) buckets_.resize(nbuckets);
  for (auto& b : buckets_) b.clear();
  if (buckets_.size() > nbuckets) buckets_.resize(nbuckets);
  cur_ = 0;
  adopted_ = false;

  std::vector<Entry> pending;
  pending.swap(overflow_);
  for (const Entry& e : pending) {
    const double rel = (e.t - win_start_) * inv_width_;
    if (!(rel < static_cast<double>(nbuckets))) {
      overflow_.push_back(e);
      continue;
    }
    std::size_t idx = rel <= 0.0 ? 0 : static_cast<std::size_t>(rel);
    if (idx >= nbuckets) idx = nbuckets - 1;
    buckets_[idx].push_back(e);
  }
}

XKB_HOT EventNode* EventQueue::peek() {
  if (impl_ == Impl::kHeap) return heap_.empty() ? nullptr : heap_.front().n;
  if (size_ == 0) return nullptr;
  while (sorted_.empty()) {
    if (!advance()) return nullptr;  // unreachable while size_ > 0
  }
  return sorted_.back().n;
}

XKB_HOT EventNode* EventQueue::pop() {
  if (impl_ == Impl::kHeap) {
    if (heap_.empty()) return nullptr;
    auto lt = [](const Entry& a, const Entry& b) {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    };
    std::pop_heap(heap_.begin(), heap_.end(), lt);
    EventNode* n = heap_.back().n;
    heap_.pop_back();
    --size_;
    if (!heap_.empty()) prefetch_node(heap_.front().n);
    return n;
  }
  if (size_ == 0) return nullptr;
  while (sorted_.empty()) {
    if (!advance()) return nullptr;
  }
  EventNode* n = sorted_.back().n;
  sorted_.pop_back();
  --size_;
  // Pull the next two nodes' lines in while the caller dispatches this
  // one: dispatch order is uncorrelated with arena layout, so without the
  // hint nearly every dispatch opens with a cold read, and one event of
  // lead time is not always enough to cover a trip to memory.
  const std::size_t m = sorted_.size();
  if (m) prefetch_node(sorted_[m - 1].n);
  if (m > 1) prefetch_node(sorted_[m - 2].n);
  return n;
}

}  // namespace xkb::sim
