#include "workload/bridge.hpp"

#include <stdexcept>

namespace xkb::wl {

namespace {

rt::Access to_rt(Mode m) {
  switch (m) {
    case Mode::kR: return rt::Access::kR;
    case Mode::kW: return rt::Access::kW;
    case Mode::kRW: return rt::Access::kRW;
  }
  return rt::Access::kR;
}

}  // namespace

Bridge::Bridge(rt::Runtime& runtime, const WorkloadGraph& graph,
               BridgeOptions opt)
    : rt_(runtime), g_(graph), opt_(std::move(opt)) {
  g_.validate();
  // One synthetic 16 MiB address slot per tile: origins are opaque intern
  // keys, but disjoint slots keep the window readable in traces and leave
  // room for the SymbolicMatrix windows below 0x600000000000.
  constexpr std::uint64_t kSlot = 0x1000000ull;
  handles_.reserve(g_.tiles.size());
  for (std::size_t i = 0; i < g_.tiles.size(); ++i) {
    const TileSpec& t = g_.tiles[i];
    void* origin = reinterpret_cast<void*>(opt_.base_address + i * kSlot);
    handles_.push_back(
        rt_.registry().intern(origin, t.m, t.n, t.m, t.wordsize));
  }
}

int Bridge::place_of(const TaskSpec& t) const {
  if (opt_.force_place) return opt_.force_place(t.place_i, t.place_j);
  if (opt_.home) return opt_.home(t.place_i, t.place_j);
  return -1;
}

// Every bridge submission funnels through here so the completion hook and
// the submission counter cannot drift apart.  The hook chains *after* any
// bookkeeping on_complete the bridge attached (e.g. the flush path's
// replica release): by the time the caller observes "task done", the
// bridge's own side effects for that task have happened.
void Bridge::submit(rt::TaskDesc d) {
  if (opt_.task_done) {
    if (d.on_complete) {
      d.on_complete = [first = std::move(d.on_complete),
                       then = opt_.task_done] {
        first();
        then();
      };
    } else {
      d.on_complete = opt_.task_done;
    }
  }
  ++submitted_;
  rt_.submit(std::move(d));
}

void Bridge::distribute() {
  // Map each input tile to the device of the first task that touches it
  // (its first consumer under owner-computes), then stage it there with a
  // forced read task, exactly like the baselines' block-cyclic
  // distribution phase.
  std::vector<int> first_place(g_.tiles.size(), -1);
  for (const TaskSpec& t : g_.tasks)
    for (const TaskAccessSpec& a : t.accesses)
      if (first_place[a.tile] < 0) first_place[a.tile] = place_of(t);
  const int ngpus = rt_.num_gpus();
  for (std::uint32_t id : g_.input_tiles()) {
    int dev = first_place[id];
    if (dev < 0) dev = static_cast<int>(id) % ngpus;
    mem::DataHandle* h = handles_[id];
    h->home_device = dev;
    rt::TaskDesc d;
    d.label = "dist";
    d.accesses.push_back({h, rt::Access::kR});
    d.forced_device = dev;
    submit(std::move(d));
  }
}

void Bridge::emit() {
  for (const TaskSpec& t : g_.tasks) {
    rt::TaskDesc d;
    d.label = t.label;
    d.flops = t.flops;
    d.min_dim = t.min_dim;
    d.eff_factor = t.eff_factor;
    d.accesses.reserve(t.accesses.size());
    for (const TaskAccessSpec& a : t.accesses)
      d.accesses.push_back({handles_[a.tile], to_rt(a.mode)});
    // blas::detail::set_home_and_place, keyed by the task's place coords.
    const int oa = t.out_access();
    if (oa >= 0 && opt_.home) {
      mem::DataHandle* out = d.accesses[static_cast<std::size_t>(oa)].handle;
      if (out->home_device < 0)
        out->home_device = opt_.home(t.place_i, t.place_j);
    }
    if (opt_.force_place) d.forced_device = opt_.force_place(t.place_i, t.place_j);
    std::vector<mem::DataHandle*> written;
    if (opt_.flush_outputs)
      for (const rt::TaskAccess& a : d.accesses)
        if (a.mode != rt::Access::kR) written.push_back(a.handle);
    submit(std::move(d));
    // Host round trip of every written tile (blas::detail::submit_task's
    // flush_outputs_each_task path).
    for (mem::DataHandle* h : written) {
      rt::TaskDesc f;
      f.label = "flush";
      f.accesses.push_back({h, rt::Access::kR});
      f.host_task = true;
      f.on_complete = [this, h] {
        for (auto& [g, r] : h->dev) {
          if (r.resident && r.pins == 0 && !r.dirty &&
              r.state == mem::ReplicaState::kValid) {
            rt_.platform().cache(g).release(h);
            if (!h->dev_buf.empty()) {
              h->dev_buf[g].clear();
              h->dev_buf[g].shrink_to_fit();
            }
          }
        }
      };
      submit(std::move(f));
    }
  }
}

void Bridge::coherent() {
  for (std::uint32_t id : g_.coherent) {
    ++submitted_;
    rt_.coherent_async(handles_[id], opt_.task_done);
  }
}

}  // namespace xkb::wl
