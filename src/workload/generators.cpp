// Parametric task-graph generators (the task-bench family + a libdnn-style
// DNN pipeline) and the Fig. 8 composition capture.
//
// Every generator is deterministic from its WorkloadSpec: the seeded ones
// (random, dnn) draw from per-generator Rng sub-streams keyed by the
// generator name, so building one workload never perturbs the edges of
// another built from the same master seed.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace xkb::wl {

namespace {

/// Side of the (square) tile holding ~`bytes` of `wordsize`-byte elements.
std::size_t tile_side(std::size_t bytes, std::size_t wordsize) {
  const double elems = static_cast<double>(bytes) /
                       static_cast<double>(wordsize);
  const auto side = static_cast<std::size_t>(std::lround(std::sqrt(elems)));
  return side == 0 ? 1 : side;
}

std::size_t ceil_log2(std::size_t x) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < x) ++l;
  return l;
}

void check_size(const WorkloadSpec& spec, std::size_t tasks) {
  if (spec.width == 0 || spec.depth == 0)
    throw std::invalid_argument("workload '" + spec.to_string() +
                                "': width and depth must be positive");
  constexpr std::size_t kMaxTasks = 500000;
  if (tasks > kMaxTasks)
    throw std::invalid_argument(
        "workload '" + spec.to_string() + "': " + std::to_string(tasks) +
        " tasks exceed the " + std::to_string(kMaxTasks) + " cap");
}

/// Shared skeleton of the layered generators: width points per layer, depth
/// layers; layer 0 reads its *input* halo (the dependency pattern applied to
/// the external input tiles -- the first sweep needs its neighbours too, and
/// since inputs stay host-valid after a data-on-device distribution these
/// remote reads are where the optimistic-forwarding heuristic bites); every
/// task writes its own output tile; the last layer's outputs are made
/// coherent.  `deps(t, p)` returns the points of layer t-1 (the inputs, for
/// t == 0) that task (t, p) reads (ascending, deduplicated by the caller;
/// empty at t == 0 means "own input only").
template <typename DepsFn>
WorkloadGraph layered(const WorkloadSpec& spec, DepsFn deps) {
  check_size(spec, spec.width * spec.depth);
  WorkloadGraph g;
  g.name = spec.to_string();
  const std::size_t side = tile_side(spec.bytes, 8);
  const char* label = to_string(spec.kind);

  std::vector<std::uint32_t> inputs;
  for (std::size_t p = 0; p < spec.width; ++p)
    inputs.push_back(g.add_tile(side, side));

  std::vector<std::uint32_t> prev;  // output tiles of the previous layer
  for (std::size_t t = 0; t < spec.depth; ++t) {
    std::vector<std::uint32_t> cur;
    for (std::size_t p = 0; p < spec.width; ++p) {
      TaskSpec task;
      task.label = label;
      task.flops = spec.flops;
      task.min_dim = side;
      task.place_i = p;
      task.place_j = t;
      if (t == 0) {
        std::vector<std::size_t> d = deps(0, p);
        if (d.empty()) d.push_back(p);
        for (std::size_t q : d)
          task.accesses.push_back({inputs[q], Mode::kR});
      } else {
        for (std::size_t q : deps(t, p))
          task.accesses.push_back({prev[q], Mode::kR});
      }
      const std::uint32_t out = g.add_tile(side, side);
      task.accesses.push_back({out, Mode::kW});
      cur.push_back(out);
      g.tasks.push_back(std::move(task));
    }
    prev = std::move(cur);
  }
  g.coherent = prev;
  return g;
}

WorkloadGraph gen_trivial(const WorkloadSpec& spec) {
  // task-bench's TRIVIAL: no inter-task dependencies at all -- the pure
  // compute-scaling control (layer 0 still loads its inputs).
  return layered(spec, [](std::size_t, std::size_t) {
    return std::vector<std::size_t>{};
  });
}

WorkloadGraph gen_stencil(const WorkloadSpec& spec) {
  const std::size_t W = spec.width;
  return layered(spec, [W](std::size_t, std::size_t p) {
    std::vector<std::size_t> d;
    if (p > 0) d.push_back(p - 1);
    d.push_back(p);
    if (p + 1 < W) d.push_back(p + 1);
    return d;
  });
}

WorkloadGraph gen_nearest(const WorkloadSpec& spec) {
  const std::size_t W = spec.width, r = spec.radix;
  return layered(spec, [W, r](std::size_t, std::size_t p) {
    std::vector<std::size_t> d;
    const std::size_t lo = p > r ? p - r : 0;
    const std::size_t hi = std::min(W - 1, p + r);
    for (std::size_t q = lo; q <= hi; ++q) d.push_back(q);
    return d;
  });
}

WorkloadGraph gen_fft(const WorkloadSpec& spec) {
  const std::size_t W = spec.width;
  const std::size_t logw = std::max<std::size_t>(1, ceil_log2(W));
  return layered(spec, [W, logw](std::size_t t, std::size_t p) {
    if (t == 0) return std::vector<std::size_t>{p};  // load own input
    const std::size_t stride = std::size_t{1} << ((t - 1) % logw);
    const std::size_t partner = p ^ stride;
    std::vector<std::size_t> d{p};
    if (partner < W) d.push_back(partner);
    std::sort(d.begin(), d.end());
    return d;
  });
}

WorkloadGraph gen_random(const WorkloadSpec& spec) {
  // Seeded Erdos-Renyi layer-to-layer edges, drawn from the generator's own
  // sub-stream in (t, p, q) order; every task keeps at least one incoming
  // edge so the graph stays connected layer to layer.
  auto rng = std::make_shared<Rng>(Rng(spec.seed).substream("random"));
  const std::size_t W = spec.width;
  const double prob = spec.prob;
  return layered(spec, [rng, W, prob](std::size_t, std::size_t) {
    std::vector<std::size_t> d;
    for (std::size_t q = 0; q < W; ++q)
      if (rng->next_double() < prob) d.push_back(q);
    if (d.empty()) d.push_back(rng->next_below(W));
    return d;
  });
}

WorkloadGraph gen_tree(const WorkloadSpec& spec) {
  // Binary reduction: the layer width halves until one point remains (then
  // continues as a chain if depth allows), task (t, p) combining points
  // (2p, 2p+1) of the layer below -- the traffic shape of an allreduce leg.
  check_size(spec, spec.width * spec.depth);
  WorkloadGraph g;
  g.name = spec.to_string();
  const std::size_t side = tile_side(spec.bytes, 8);

  std::vector<std::uint32_t> inputs;
  for (std::size_t p = 0; p < spec.width; ++p)
    inputs.push_back(g.add_tile(side, side));

  std::vector<std::uint32_t> prev;
  std::size_t w = spec.width;
  for (std::size_t t = 0; t < spec.depth; ++t) {
    if (t > 0) w = (w + 1) / 2;
    std::vector<std::uint32_t> cur;
    for (std::size_t p = 0; p < w; ++p) {
      TaskSpec task;
      task.label = "tree";
      task.flops = spec.flops;
      task.min_dim = side;
      task.place_i = p;
      task.place_j = t;
      if (t == 0) {
        task.accesses.push_back({inputs[p], Mode::kR});
      } else {
        task.accesses.push_back({prev[2 * p], Mode::kR});
        if (2 * p + 1 < prev.size())
          task.accesses.push_back({prev[2 * p + 1], Mode::kR});
      }
      const std::uint32_t out = g.add_tile(side, side);
      task.accesses.push_back({out, Mode::kW});
      cur.push_back(out);
      g.tasks.push_back(std::move(task));
    }
    prev = std::move(cur);
  }
  g.coherent = prev;
  return g;
}

WorkloadGraph gen_dnn(const WorkloadSpec& spec) {
  // Data-parallel training pipeline (libdnn-style layer graphs): `width`
  // model replicas (shards) run `depth` layers forward and backward; every
  // layer's weight tile is broadcast-read by all shards (the traffic the
  // optimistic D2D heuristic deduplicates), and the per-shard weight
  // gradients are combined by a binary reduction tree before the weight
  // update (the cross-GPU traffic topology-aware sourcing routes over
  // NVLink).  Per-layer costs are jittered from the "dnn" sub-stream to
  // model heterogeneous layers.
  const std::size_t W = spec.width, L = spec.depth;
  check_size(spec, 3 * W * L + W + L);
  WorkloadGraph g;
  g.name = spec.to_string();
  const std::size_t side = tile_side(spec.bytes, 8);
  Rng rng = Rng(spec.seed).substream("dnn");
  std::vector<double> layer_cost(L);
  for (std::size_t l = 0; l < L; ++l)
    layer_cost[l] = spec.flops * rng.uniform(0.75, 1.25);
  const double red_flops =
      static_cast<double>(side) * static_cast<double>(side);

  // act[l][p]: activations entering layer l (act[0] = external inputs).
  std::vector<std::vector<std::uint32_t>> act(L + 1);
  for (std::size_t p = 0; p < W; ++p)
    act[0].push_back(g.add_tile(side, side));
  std::vector<std::uint32_t> weight(L);
  for (std::size_t l = 0; l < L; ++l)
    weight[l] = g.add_tile(side, side);

  auto task = [&](const char* label, double flops, std::size_t pi,
                  std::size_t pj, std::vector<TaskAccessSpec> acc) {
    TaskSpec t;
    t.label = label;
    t.flops = flops;
    t.min_dim = side;
    t.place_i = pi;
    t.place_j = pj;
    t.accesses = std::move(acc);
    g.tasks.push_back(std::move(t));
  };

  // Forward pass.
  for (std::size_t l = 0; l < L; ++l)
    for (std::size_t p = 0; p < W; ++p) {
      const std::uint32_t out = g.add_tile(side, side);
      act[l + 1].push_back(out);
      task("fwd", layer_cost[l], p, l,
           {{act[l][p], Mode::kR}, {weight[l], Mode::kR}, {out, Mode::kW}});
    }

  // Loss gradient per shard.
  std::vector<std::vector<std::uint32_t>> grad(L + 1);
  grad[L].resize(W);
  for (std::size_t p = 0; p < W; ++p) {
    grad[L][p] = g.add_tile(side, side);
    task("loss", spec.flops, p, L,
         {{act[L][p], Mode::kR}, {grad[L][p], Mode::kW}});
  }

  // Backward pass: each step produces the input gradient and a per-shard
  // weight-gradient partial.
  std::vector<std::vector<std::uint32_t>> wgrad(L);
  for (std::size_t li = L; li-- > 0;) {
    grad[li].resize(W);
    wgrad[li].resize(W);
    for (std::size_t p = 0; p < W; ++p) {
      grad[li][p] = g.add_tile(side, side);
      wgrad[li][p] = g.add_tile(side, side);
      task("bwd", layer_cost[li], p, li,
           {{grad[li + 1][p], Mode::kR},
            {act[li][p], Mode::kR},
            {weight[li], Mode::kR},
            {grad[li][p], Mode::kW},
            {wgrad[li][p], Mode::kW}});
    }
  }

  // Weight-gradient reduction tree + weight update, per layer.
  for (std::size_t l = 0; l < L; ++l) {
    for (std::size_t h = 1; h < W; h *= 2)
      for (std::size_t a = 0; a + h < W; a += 2 * h)
        task("wred", red_flops, a, l,
             {{wgrad[l][a + h], Mode::kR}, {wgrad[l][a], Mode::kRW}});
    task("wupd", red_flops, 0, l,
         {{wgrad[l][0], Mode::kR}, {weight[l], Mode::kRW}});
  }

  // Trained weights come home (exercises lazy coherency + D2H).
  g.coherent = weight;
  return g;
}

}  // namespace

WorkloadGraph composition_graph(std::size_t n, std::size_t ts) {
  // The Fig. 8 graph: B := A^-1 B (TRSM, Left/Lower/NoTrans/NonUnit,
  // alpha=1) then C := B D + C (GEMM, NoTrans/NoTrans, alpha=beta=1), as
  // one composed task stream.  Tile-creation order and task fields mirror
  // blas::tiled_trsm / blas::tiled_gemm line by line -- test_workload.cpp
  // asserts the bridged replay is bit-identical to the
  // baselines/composition.cpp emission, so a drift here is a test failure,
  // not a silent skew.
  if (n == 0 || ts == 0 || ts > n)
    throw std::invalid_argument(
        "composition workload: need 0 < tile <= n");
  WorkloadGraph g;
  WorkloadSpec spec;
  spec.kind = Generator::kComposition;
  spec.n = n;
  spec.tile = ts;
  g.name = spec.to_string();
  g.grid_placement = true;

  enum Mat : int { A, B, C, D };
  std::map<std::tuple<int, std::size_t, std::size_t>, std::uint32_t> ids;
  auto tile = [&](Mat mt, std::size_t i, std::size_t j) {
    const auto key = std::make_tuple(static_cast<int>(mt), i, j);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    const std::uint32_t id = g.add_tile(std::min(ts, n - i * ts),
                                        std::min(ts, n - j * ts));
    ids.emplace(key, id);
    return id;
  };
  const std::size_t Nt = (n + ts - 1) / ts;
  auto bdim = [&](std::size_t k) { return std::min(ts, n - k * ts); };

  // TRSM: forward substitution over row blocks of B.
  for (std::size_t k = 0; k < Nt; ++k) {
    const std::size_t bk = bdim(k);
    const std::uint32_t hAkk = tile(A, k, k);
    for (std::size_t j = 0; j < Nt; ++j) {
      const std::size_t bj = bdim(j);
      const std::uint32_t hBk = tile(B, k, j);
      TaskSpec t;
      t.label = "trsm";
      t.accesses = {{hAkk, Mode::kR}, {hBk, Mode::kRW}};
      t.flops = static_cast<double>(bk) * bj * bk;
      t.min_dim = std::min(bk, bj);
      t.eff_factor = 0.5;  // triangular solves run well below GEMM speed
      t.place_i = k;
      t.place_j = j;
      g.tasks.push_back(std::move(t));

      for (std::size_t m = k + 1; m < Nt; ++m) {
        const std::size_t bm = bdim(m);
        const std::uint32_t hAmk = tile(A, m, k);
        const std::uint32_t hBm = tile(B, m, j);
        TaskSpec u;
        u.label = "trsm";
        u.accesses = {{hAmk, Mode::kR}, {hBk, Mode::kR}, {hBm, Mode::kRW}};
        u.flops = 2.0 * static_cast<double>(bm) * bj * bk;
        u.min_dim = std::min({bm, bj, bk});
        u.place_i = m;
        u.place_j = j;
        g.tasks.push_back(std::move(u));
      }
    }
  }

  // GEMM: C += B D over the freshly solved B.
  for (std::size_t i = 0; i < Nt; ++i)
    for (std::size_t j = 0; j < Nt; ++j) {
      const std::size_t bm = bdim(i), bn = bdim(j);
      const std::uint32_t hC = tile(C, i, j);
      for (std::size_t l = 0; l < Nt; ++l) {
        const std::size_t bk = bdim(l);
        const std::uint32_t hB = tile(B, i, l);
        const std::uint32_t hD = tile(D, l, j);
        TaskSpec t;
        t.label = "gemm";
        t.accesses = {{hB, Mode::kR}, {hD, Mode::kR}, {hC, Mode::kRW}};
        t.flops = 2.0 * static_cast<double>(bm) * bn * bk;
        t.min_dim = std::min({bm, bn, bk});
        t.place_i = i;
        t.place_j = j;
        g.tasks.push_back(std::move(t));
      }
    }

  // Lazy coherency on the two results, in the composition.cpp order.
  for (std::size_t i = 0; i < Nt; ++i)
    for (std::size_t j = 0; j < Nt; ++j) g.coherent.push_back(tile(B, i, j));
  for (std::size_t i = 0; i < Nt; ++i)
    for (std::size_t j = 0; j < Nt; ++j) g.coherent.push_back(tile(C, i, j));
  return g;
}

WorkloadGraph build(const WorkloadSpec& spec) {
  WorkloadGraph g;
  switch (spec.kind) {
    case Generator::kTrivial: g = gen_trivial(spec); break;
    case Generator::kStencil1d: g = gen_stencil(spec); break;
    case Generator::kNearest: g = gen_nearest(spec); break;
    case Generator::kFft: g = gen_fft(spec); break;
    case Generator::kTree: g = gen_tree(spec); break;
    case Generator::kRandom: g = gen_random(spec); break;
    case Generator::kDnn: g = gen_dnn(spec); break;
    case Generator::kComposition:
      g = composition_graph(spec.n, spec.tile);
      break;
  }
  g.validate();
  return g;
}

}  // namespace xkb::wl
