#include "workload/workload.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xkb::wl {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kR: return "r";
    case Mode::kW: return "w";
    case Mode::kRW: return "rw";
  }
  return "?";
}

const char* to_string(Generator g) {
  switch (g) {
    case Generator::kTrivial: return "trivial";
    case Generator::kStencil1d: return "stencil_1d";
    case Generator::kNearest: return "nearest";
    case Generator::kFft: return "fft";
    case Generator::kTree: return "tree";
    case Generator::kRandom: return "random";
    case Generator::kDnn: return "dnn";
    case Generator::kComposition: return "composition";
  }
  return "?";
}

std::vector<std::string> generator_names() {
  return {"trivial", "stencil_1d", "nearest", "fft",
          "tree",    "random",     "dnn",     "composition"};
}

double WorkloadGraph::total_flops() const {
  double f = 0.0;
  for (const TaskSpec& t : tasks) f += t.flops;
  return f;
}

std::size_t WorkloadGraph::edge_count() const {
  std::size_t e = 0;
  for (const TaskSpec& t : tasks)
    for (const TaskAccessSpec& a : t.accesses)
      if (a.mode != Mode::kW) ++e;
  return e;
}

std::vector<std::uint32_t> WorkloadGraph::input_tiles() const {
  std::vector<char> seen(tiles.size(), 0), input(tiles.size(), 0);
  for (const TaskSpec& t : tasks)
    for (const TaskAccessSpec& a : t.accesses) {
      if (!seen[a.tile]) {
        seen[a.tile] = 1;
        if (a.mode != Mode::kW) input[a.tile] = 1;
      }
    }
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < tiles.size(); ++i)
    if (input[i]) out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

void WorkloadGraph::validate() const {
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (tiles[i].m == 0 || tiles[i].n == 0 || tiles[i].wordsize == 0)
      throw std::invalid_argument("workload '" + name + "': tile " +
                                  std::to_string(i) +
                                  " has a zero dimension or wordsize");
    // m * n * wordsize must not wrap: a silently overflowed byte count
    // makes allocation and transfer times nonsense without ever failing.
    const std::size_t kMax = std::numeric_limits<std::size_t>::max();
    if (tiles[i].m > kMax / tiles[i].n ||
        tiles[i].m * tiles[i].n > kMax / tiles[i].wordsize)
      throw std::invalid_argument("workload '" + name + "': tile " +
                                  std::to_string(i) +
                                  " byte size overflows");
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskSpec& t = tasks[i];
    // Kernel duration is flops / (peak * eff(min_dim) * eff_factor):
    // negative or non-finite flops produce events scheduled before "now"
    // (engine contract violation), and eff_factor <= 0 produces negative
    // or infinite durations.
    if (!std::isfinite(t.flops) || t.flops < 0.0)
      throw std::invalid_argument("workload '" + name + "': task " +
                                  std::to_string(i) + " ('" + t.label +
                                  "') has negative or non-finite flops");
    if (!std::isfinite(t.eff_factor) || t.eff_factor <= 0.0)
      throw std::invalid_argument("workload '" + name + "': task " +
                                  std::to_string(i) + " ('" + t.label +
                                  "') needs a positive finite eff_factor");
    if (t.accesses.empty())
      throw std::invalid_argument("workload '" + name + "': task " +
                                  std::to_string(i) + " ('" + t.label +
                                  "') accesses no tiles");
    for (const TaskAccessSpec& a : t.accesses)
      if (a.tile >= tiles.size())
        throw std::invalid_argument(
            "workload '" + name + "': task " + std::to_string(i) + " ('" +
            t.label + "') references tile " + std::to_string(a.tile) +
            " but only " + std::to_string(tiles.size()) + " tiles exist");
  }
  for (std::uint32_t c : coherent)
    if (c >= tiles.size())
      throw std::invalid_argument(
          "workload '" + name + "': coherent list references tile " +
          std::to_string(c) + " but only " + std::to_string(tiles.size()) +
          " tiles exist");
}

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string joined_names() {
  std::string s;
  for (const std::string& n : generator_names())
    s += (s.empty() ? "" : "|") + n;
  return s;
}

}  // namespace

std::string WorkloadSpec::to_string() const {
  std::ostringstream os;
  os << wl::to_string(kind) << ":";
  if (kind == Generator::kComposition) {
    os << "n=" << n << ",tile=" << tile;
    return os.str();
  }
  os << "width=" << width << ",depth=" << depth << ",flops=" << fmt_double(flops)
     << ",bytes=" << bytes;
  if (kind == Generator::kNearest) os << ",radix=" << radix;
  if (kind == Generator::kRandom) os << ",prob=" << fmt_double(prob);
  if (kind == Generator::kRandom || kind == Generator::kDnn)
    os << ",seed=" << seed;
  return os.str();
}

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  WorkloadSpec spec;
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);

  bool known = false;
  const std::vector<std::string> names = generator_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) {
      spec.kind = static_cast<Generator>(i);
      known = true;
    }
  if (!known)
    throw std::invalid_argument("unknown workload generator '" + name +
                                "' (accepted: " + joined_names() + ")");

  if (colon == std::string::npos) return spec;
  std::string params = text.substr(colon + 1);
  std::istringstream in(params);
  std::string kv;
  while (std::getline(in, kv, ',')) {
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("workload spec '" + text + "': '" + kv +
                                  "' is not key=value");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    auto as_size = [&](const char* field) -> std::size_t {
      std::size_t pos = 0;
      unsigned long long x = 0;
      try {
        x = std::stoull(val, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (val.empty() || val[0] == '-' || pos != val.size())
        throw std::invalid_argument("workload spec field '" +
                                    std::string(field) + "': '" + val +
                                    "' is not a non-negative integer");
      return static_cast<std::size_t>(x);
    };
    auto as_double = [&](const char* field) -> double {
      std::size_t pos = 0;
      double x = 0.0;
      try {
        x = std::stod(val, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (val.empty() || pos != val.size())
        throw std::invalid_argument("workload spec field '" +
                                    std::string(field) + "': '" + val +
                                    "' is not a number");
      return x;
    };
    if (key == "width") spec.width = as_size("width");
    else if (key == "depth") spec.depth = as_size("depth");
    else if (key == "flops") spec.flops = as_double("flops");
    else if (key == "bytes") spec.bytes = as_size("bytes");
    else if (key == "seed") spec.seed = as_size("seed");
    else if (key == "radix") spec.radix = as_size("radix");
    else if (key == "prob") spec.prob = as_double("prob");
    else if (key == "n") spec.n = as_size("n");
    else if (key == "tile") spec.tile = as_size("tile");
    else
      throw std::invalid_argument(
          "workload spec '" + text + "': unknown key '" + key +
          "' (accepted: width depth flops bytes seed radix prob n tile)");
  }
  return spec;
}

}  // namespace xkb::wl
