// xkb::wl -- generic task-graph workloads.
//
// The paper evaluates its two runtime heuristics (topology-aware source
// selection, optimistic D2D forwarding) on six BLAS-3 routines, but both are
// properties of the *data-flow runtime*, not of BLAS.  This subsystem feeds
// arbitrary tiled task graphs through the same runtime, so any multi-GPU
// traffic pattern can exercise -- and be measured under -- the heuristics:
//
//   * parametric generators in the task-bench family (trivial, stencil_1d,
//     nearest, fft, tree, random), each width x depth with per-task FLOPs
//     and per-tile bytes;
//   * a `dnn` generator building forward/backward layer pipelines with
//     data-parallel weight broadcast and weight-gradient reduction trees
//     (libdnn-style), the traffic shape of multi-GPU training;
//   * a `composition` capture of the paper's Fig. 8 TRSM+GEMM graph,
//     bit-identical to the baselines/composition.cpp emission;
//   * a small text DAG format (.wlg) with line-precise parse errors and a
//     canonical writer, so external traces can be replayed.
//
// A graph is pure data (tiles + tasks + access modes); workload/bridge.hpp
// maps it onto rt::Runtime tasks and mem::Registry handles, which is what
// makes xkb::check invariants, xkb::obs capture and xkb::fault recovery
// apply unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xkb::wl {

/// Access mode of one task on one tile (mirror of rt::Access; the mirror
/// keeps the graph layer free of runtime headers, as in xkb::check).
enum class Mode : std::uint8_t { kR, kW, kRW };

const char* to_string(Mode m);

/// One logical tile: a dense m x n array of `wordsize`-byte elements.  The
/// bridge interns one mem::DataHandle per tile, so replicas, coherence and
/// eviction behave exactly as for a BLAS matrix tile.
struct TileSpec {
  std::size_t m = 0, n = 0, wordsize = 8;
  std::size_t bytes() const { return m * n * wordsize; }
  bool operator==(const TileSpec&) const = default;
};

struct TaskAccessSpec {
  std::uint32_t tile = 0;
  Mode mode = Mode::kR;
  bool operator==(const TaskAccessSpec&) const = default;
};

/// One task: label + cost model + ordered tile accesses.  Dependencies are
/// *derived* by the runtime from access modes in submission order (readers
/// after the last writer, writers after all readers), exactly as for BLAS.
struct TaskSpec {
  std::string label;
  std::vector<TaskAccessSpec> accesses;
  double flops = 0.0;
  std::size_t min_dim = 0;   ///< limiting dimension for the efficiency curve
  double eff_factor = 1.0;   ///< kernel-quality multiplier vs peak GEMM
  /// Placement coordinates: generators use (point-in-layer, layer); the
  /// composition capture uses the output tile's (i, j) grid position.  The
  /// run harness maps them to a home device (owner-computes) or a forced
  /// device (static baselines).
  std::size_t place_i = 0, place_j = 0;
  bool operator==(const TaskSpec&) const = default;

  /// The first written (kW/kRW) access, or -1: the tile whose placement
  /// coordinate anchors the task (owner-computes "output tile").
  int out_access() const {
    for (std::size_t a = 0; a < accesses.size(); ++a)
      if (accesses[a].mode != Mode::kR) return static_cast<int>(a);
    return -1;
  }
};

struct WorkloadGraph {
  std::string name;
  std::vector<TileSpec> tiles;   ///< creation order == handle intern order
  std::vector<TaskSpec> tasks;   ///< submission order
  /// Tiles flushed to the host after the last task (lazy coherency made
  /// explicit, like xkblas_memory_coherent_async on the results).
  std::vector<std::uint32_t> coherent;
  /// Placement hint for the run harness: true = map place coords through
  /// the (P, Q) block-cyclic grid (composition capture, matches the BLAS
  /// emitters); false = layered graph, spread points round-robin.
  bool grid_placement = false;

  std::uint32_t add_tile(std::size_t m, std::size_t n,
                         std::size_t wordsize = 8) {
    tiles.push_back({m, n, wordsize});
    return static_cast<std::uint32_t>(tiles.size() - 1);
  }

  double total_flops() const;
  /// Number of read (kR/kRW) accesses: the data-flow edge count.
  std::size_t edge_count() const;
  /// Tiles whose first access in task order is a read: external inputs,
  /// valid on the host at t=0 (and pre-distributed in data-on-device runs).
  std::vector<std::uint32_t> input_tiles() const;

  /// Reject malformed graphs (out-of-range tile ids, empty access lists,
  /// degenerate tiles) with an actionable std::invalid_argument naming the
  /// offending task/tile.
  void validate() const;

  bool operator==(const WorkloadGraph&) const = default;
};

/// The parametric generator family.
enum class Generator : std::uint8_t {
  kTrivial,    ///< width x depth independent tasks (embarrassingly parallel)
  kStencil1d,  ///< each point reads {p-1, p, p+1} of the previous layer
  kNearest,    ///< each point reads the previous layer within `radix`
  kFft,        ///< butterfly: {p, p XOR 2^(t-1 mod log2 width)}
  kTree,       ///< binary reduction, width halves per layer
  kRandom,     ///< seeded Erdos-Renyi layer-to-layer edges (prob, >= 1 dep)
  kDnn,        ///< fwd/bwd layer pipeline + weight-gradient reduction
  kComposition,///< the Fig. 8 TRSM+GEMM graph (n, tile)
};

const char* to_string(Generator g);

/// All accepted generator names, in declaration order (CLI error messages).
std::vector<std::string> generator_names();

/// A parsed workload specification, e.g.
///   "stencil_1d:width=16,depth=32,flops=5e8,bytes=4194304,seed=7"
///   "dnn:width=8,depth=12"
///   "composition:n=16384,tile=2048"
struct WorkloadSpec {
  Generator kind = Generator::kStencil1d;
  std::size_t width = 8;     ///< points per layer (dnn: data-parallel shards)
  std::size_t depth = 8;     ///< layers (dnn: network layers)
  double flops = 5e8;        ///< per compute task
  std::size_t bytes = 4u << 20;  ///< per tile (rounded to a square tile)
  std::uint64_t seed = 42;   ///< master seed (random/dnn substreams)
  std::size_t radix = 2;     ///< nearest: neighbourhood half-width
  double prob = 0.15;        ///< random: edge probability
  std::size_t n = 8192, tile = 2048;  ///< composition only

  /// Canonical spec string (parse(to_string()) round-trips).
  std::string to_string() const;

  /// Parse "name:key=value,...".  Unknown generator names and keys throw
  /// std::invalid_argument listing every accepted value.
  static WorkloadSpec parse(const std::string& text);
};

/// Build the graph for `spec`; throws std::invalid_argument on degenerate
/// parameters (zero width/depth, oversized graphs).
WorkloadGraph build(const WorkloadSpec& spec);

/// The Fig. 8 composition (TRSM then GEMM on shared B), captured as a
/// workload graph.  Tile-creation and task-submission order replicate
/// blas::tiled_trsm + blas::tiled_gemm exactly, so bridging this graph into
/// a runtime configured like baselines/composition.cpp reproduces that
/// path's event stream bit for bit (asserted by test_workload.cpp).
WorkloadGraph composition_graph(std::size_t n, std::size_t tile);

// --- .wlg text DAG format ------------------------------------------------
//
//   workload <name>
//   tile <id> <m> <n> <wordsize>
//   task <label> <flops> <min_dim> <eff_factor> <place_i> <place_j>
//        <mode>:<tile> [...]        (one line; mode in {r, w, rw})
//   coherent <tile> [...]
//   grid-placement                  # optional, sets grid_placement
//
// '#' starts a comment; blank lines are ignored.  write_wlg emits the
// canonical form; write_wlg(parse_wlg(text)) == text for canonical files.

std::string write_wlg(const WorkloadGraph& g);

/// Parse the text format; throws std::invalid_argument as
/// "<origin>:<line>: <directive>: field '<name>': ..." on malformed input.
WorkloadGraph parse_wlg(const std::string& text,
                        const std::string& origin = "<wlg>");
WorkloadGraph parse_wlg_file(const std::string& path);

}  // namespace xkb::wl
