// The workload -> runtime bridge: maps a WorkloadGraph onto rt::Runtime
// tasks and mem::Registry handles.
//
// Each tile is interned once, at a synthetic origin address in a dedicated
// window, so replicas, MSI coherence, lazy host coherency, LRU eviction,
// choose_source, optimistic waits, xkb::check invariants, xkb::obs capture
// and xkb::fault recovery all treat workload tiles exactly like BLAS matrix
// tiles -- the bridge adds no second data path.  Placement mirrors
// blas::EmitOptions: a `home` hint applied to the task's first written tile
// (only if that tile has no home yet) and an optional `force_place` that
// bypasses the scheduler, both keyed by the task's (place_i, place_j).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/runtime.hpp"
#include "workload/workload.hpp"

namespace xkb::wl {

struct BridgeOptions {
  /// Home-device hint for a task's output tile from its placement coords;
  /// only applied when the tile has no home yet (owner-computes mapping,
  /// exactly blas::EmitOptions::home).
  std::function<int(std::size_t i, std::size_t j)> home;
  /// Force the device of every task from its placement coords; empty = let
  /// the scheduler decide (static baselines, blas::EmitOptions::force_place).
  std::function<int(std::size_t i, std::size_t j)> force_place;
  /// After every task that writes a tile, flush the tile to the host and
  /// drop its device replicas (host-centric libraries like Slate; mirrors
  /// blas::EmitOptions::flush_outputs_each_task).
  bool flush_outputs = false;
  /// Base of the synthetic address window (disjoint from the SymbolicMatrix
  /// windows, so workloads compose with BLAS calls in one runtime).
  std::uint64_t base_address = 0x600000000000ull;
  /// Invoked once per bridge-submitted task on completion (compute tasks,
  /// dist staging, output flushes and coherence flushes alike), chained
  /// after any bookkeeping the bridge attaches itself.  With
  /// tasks_submitted() this lets a caller that multiplexes many graphs
  /// through one runtime (xkb::svc) detect when *this* graph is done.
  std::function<void()> task_done;
};

class Bridge {
 public:
  /// Interns one handle per graph tile, in tile-id order (so registry
  /// creation order is deterministic and matches the graph).
  Bridge(rt::Runtime& runtime, const WorkloadGraph& graph,
         BridgeOptions opt = {});

  mem::DataHandle* handle(std::uint32_t tile) const { return handles_[tile]; }

  /// Pre-place every external input tile on the device its first consumer
  /// is mapped to, via a forced "dist" read task (the data-on-device
  /// scenario; mirrors baselines' distribute_matrix).
  void distribute();

  /// Submit every task in graph order; dependencies are derived by the
  /// runtime from the access modes.
  void emit();

  /// Queue dataflow-ordered host flushes of the graph's coherent tiles
  /// (xkblas_memory_coherent_async semantics).
  void coherent();

  /// Tasks this bridge has submitted so far (every emit/distribute/flush/
  /// coherent submission).  Together with BridgeOptions::task_done this is
  /// the graph's completion ledger: the graph is done when the done
  /// callback has fired tasks_submitted() times.
  std::size_t tasks_submitted() const { return submitted_; }

 private:
  int place_of(const TaskSpec& t) const;
  void submit(rt::TaskDesc d);

  rt::Runtime& rt_;
  const WorkloadGraph& g_;
  BridgeOptions opt_;
  std::vector<mem::DataHandle*> handles_;
  std::size_t submitted_ = 0;
};

}  // namespace xkb::wl
