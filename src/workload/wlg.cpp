// The .wlg text DAG format: a canonical writer and a line-precise parser.
//
// Error contract (tested): every parse failure is one std::invalid_argument
// whose message is "<origin>:<line>: <directive>: field '<name>': <what>",
// so a malformed trace points at the exact line and field to fix -- the
// same style as fault::FaultPlan's plan-file errors.
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "workload/workload.hpp"

namespace xkb::wl {

namespace {

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Context for one line being parsed; all field errors funnel through fail().
struct LineCtx {
  const std::string& origin;
  std::size_t line = 0;
  std::string directive;

  [[noreturn]] void fail(const std::string& field,
                         const std::string& what) const {
    throw std::invalid_argument(origin + ":" + std::to_string(line) + ": " +
                                directive + ": field '" + field + "': " +
                                what);
  }

  std::string word(std::istringstream& in, const char* field) const {
    std::string w;
    if (!(in >> w)) fail(field, "missing value");
    return w;
  }

  std::size_t size_field(std::istringstream& in, const char* field) const {
    const std::string w = word(in, field);
    std::size_t pos = 0;
    unsigned long long x = 0;
    try {
      x = std::stoull(w, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (w[0] == '-' || pos != w.size())
      fail(field, "'" + w + "' is not a non-negative integer");
    return static_cast<std::size_t>(x);
  }

  double double_field(std::istringstream& in, const char* field) const {
    const std::string w = word(in, field);
    std::size_t pos = 0;
    double x = 0.0;
    try {
      x = std::stod(w, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != w.size()) fail(field, "'" + w + "' is not a number");
    // stod accepts "nan" and "inf", which defeat every downstream range
    // check (NaN comparisons are all false) and poison kernel-duration
    // arithmetic; a .wlg file never legitimately contains either.
    if (!std::isfinite(x)) fail(field, "'" + w + "' is not finite");
    return x;
  }
};

}  // namespace

std::string write_wlg(const WorkloadGraph& g) {
  std::ostringstream os;
  os << "# xkb workload graph\n";
  os << "workload " << (g.name.empty() ? std::string("unnamed") : g.name)
     << "\n";
  if (g.grid_placement) os << "grid-placement\n";
  for (std::size_t i = 0; i < g.tiles.size(); ++i)
    os << "tile " << i << " " << g.tiles[i].m << " " << g.tiles[i].n << " "
       << g.tiles[i].wordsize << "\n";
  for (const TaskSpec& t : g.tasks) {
    os << "task " << t.label << " " << fmt_double(t.flops) << " " << t.min_dim
       << " " << fmt_double(t.eff_factor) << " " << t.place_i << " "
       << t.place_j;
    for (const TaskAccessSpec& a : t.accesses)
      os << " " << to_string(a.mode) << ":" << a.tile;
    os << "\n";
  }
  if (!g.coherent.empty()) {
    os << "coherent";
    for (std::uint32_t c : g.coherent) os << " " << c;
    os << "\n";
  }
  return os.str();
}

WorkloadGraph parse_wlg(const std::string& text, const std::string& origin) {
  WorkloadGraph g;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool saw_workload = false;

  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line
    LineCtx ctx{origin, lineno, directive};

    if (directive == "workload") {
      g.name = ctx.word(ls, "name");
      saw_workload = true;
    } else if (directive == "grid-placement") {
      g.grid_placement = true;
    } else if (directive == "tile") {
      const std::size_t id = ctx.size_field(ls, "id");
      if (id != g.tiles.size())
        ctx.fail("id", "expected " + std::to_string(g.tiles.size()) +
                           " (tiles must be declared in id order), got " +
                           std::to_string(id));
      TileSpec t;
      t.m = ctx.size_field(ls, "m");
      t.n = ctx.size_field(ls, "n");
      t.wordsize = ctx.size_field(ls, "wordsize");
      if (t.m == 0 || t.n == 0 || t.wordsize == 0)
        ctx.fail("m/n/wordsize", "dimensions must be positive");
      g.tiles.push_back(t);
    } else if (directive == "task") {
      TaskSpec t;
      t.label = ctx.word(ls, "label");
      t.flops = ctx.double_field(ls, "flops");
      t.min_dim = ctx.size_field(ls, "min_dim");
      t.eff_factor = ctx.double_field(ls, "eff_factor");
      t.place_i = ctx.size_field(ls, "place_i");
      t.place_j = ctx.size_field(ls, "place_j");
      std::string acc;
      while (ls >> acc) {
        const std::size_t colon = acc.find(':');
        if (colon == std::string::npos)
          ctx.fail("access", "'" + acc + "' is not <mode>:<tile>");
        const std::string mode = acc.substr(0, colon);
        const std::string tile = acc.substr(colon + 1);
        TaskAccessSpec a;
        if (mode == "r") a.mode = Mode::kR;
        else if (mode == "w") a.mode = Mode::kW;
        else if (mode == "rw") a.mode = Mode::kRW;
        else
          ctx.fail("access", "mode '" + mode + "' is not one of r, w, rw");
        std::size_t pos = 0;
        unsigned long long id = 0;
        try {
          id = std::stoull(tile, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        if (tile.empty() || pos != tile.size())
          ctx.fail("access", "tile id '" + tile + "' is not an integer");
        if (id >= g.tiles.size())
          ctx.fail("access", "tile " + tile + " not declared (have " +
                                 std::to_string(g.tiles.size()) + " tiles)");
        a.tile = static_cast<std::uint32_t>(id);
        t.accesses.push_back(a);
      }
      if (t.accesses.empty()) ctx.fail("access", "task accesses no tiles");
      g.tasks.push_back(std::move(t));
    } else if (directive == "coherent") {
      std::string w;
      bool any = false;
      while (ls >> w) {
        any = true;
        std::size_t pos = 0;
        unsigned long long id = 0;
        try {
          id = std::stoull(w, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        if (pos != w.size())
          ctx.fail("tile", "'" + w + "' is not an integer");
        if (id >= g.tiles.size())
          ctx.fail("tile", "tile " + w + " not declared (have " +
                               std::to_string(g.tiles.size()) + " tiles)");
        g.coherent.push_back(static_cast<std::uint32_t>(id));
      }
      if (!any) ctx.fail("tile", "missing value");
    } else {
      ctx.fail("directive",
               "unknown directive (accepted: workload, grid-placement, "
               "tile, task, coherent)");
    }
  }
  if (!saw_workload)
    throw std::invalid_argument(origin +
                                ":1: workload: field 'name': missing "
                                "'workload <name>' header");
  g.validate();
  return g;
}

WorkloadGraph parse_wlg_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::invalid_argument("workload file '" + path +
                                "': cannot open for reading");
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_wlg(buf.str(), path);
}

}  // namespace xkb::wl
