// Sparse-free vector clocks for the happens-before race detector.
//
// Components ("lanes") are the serial execution contexts of the simulated
// platform: one per device kernel stream plus one for the host worker.  A
// clock V happens-before W iff V <= W componentwise and V != W; two clocks
// with neither ordering are concurrent, which for two conflicting tile
// accesses means a race.  Clocks grow on demand (missing components read 0)
// so the checker does not need the lane count up front.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xkb::check {

class VectorClock {
 public:
  VectorClock() = default;

  std::uint64_t at(std::size_t lane) const {
    return lane < c_.size() ? c_[lane] : 0;
  }

  /// Advance this clock's own component (a new event on `lane`).
  void tick(std::size_t lane) {
    if (lane >= c_.size()) c_.resize(lane + 1, 0);
    ++c_[lane];
  }

  /// Componentwise maximum (import every happens-before edge of `o`).
  void join(const VectorClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0);
    for (std::size_t i = 0; i < o.c_.size(); ++i)
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
  }

  /// true iff this clock happens-before-or-equals `o` (componentwise <=).
  bool leq(const VectorClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i)
      if (c_[i] > o.at(i)) return false;
    return true;
  }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (i != 0) s += ",";
      s += std::to_string(c_[i]);
    }
    return s + "]";
  }

 private:
  std::vector<std::uint64_t> c_;
};

}  // namespace xkb::check
