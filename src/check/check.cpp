#include "check/check.hpp"

#include <algorithm>
#include <bit>
#include <functional>

namespace xkb::check {

namespace {

// Event tags folded into the FNV stream hash (stable across builds).
enum : std::uint64_t {
  kTagSubmit = 0x51,
  kTagKernel = 0x52,
  kTagFinish = 0x53,
  kTagComplete = 0x54,
  kTagSource = 0x55,
  kTagTransfer = 0x56,
  kTagArrival = 0x57,
  kTagWritten = 0x58,
  kTagHostWrite = 0x59,
  kTagFlushIssue = 0x5a,
  kTagFlushDone = 0x5b,
  kTagEvict = 0x5c,
  kTagEngine = 0x5d,
  kTagAbort = 0x5e,
  kTagDevFail = 0x5f,
  kTagLost = 0x60,
  kTagPromote = 0x61,
  kTagReplay = 0x62,
  kTagRemap = 0x63,
};

}  // namespace

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kRace: return "race";
    case ViolationKind::kCoherence: return "coherence";
    case ViolationKind::kStats: return "stats";
    case ViolationKind::kProgress: return "progress";
  }
  return "?";
}

Checker::Checker(const CheckConfig& cfg, int num_gpus, int kernel_streams,
                 Policy policy, bool optimistic_d2d)
    : cfg_(cfg),
      gpus_(num_gpus),
      streams_(static_cast<std::size_t>(kernel_streams)),
      policy_(policy),
      optimistic_(optimistic_d2d) {}

Checker::Shadow& Checker::shadow(const mem::DataHandle* h) {
  auto it = shadows_.find(h);
  if (it != shadows_.end()) return it->second;
  Shadow s;
  const std::size_t n = static_cast<std::size_t>(gpus_);
  s.dev_version.assign(n, Shadow::kNoVersion);
  s.in_version.assign(n, Shadow::kNoVersion);
  s.in_vc.resize(n);
  s.arrival_vc.resize(n);
  // User data starts on the host (mem::Registry interns host-valid handles);
  // version 0 is the initial host content.
  s.host_version = 0;
  return shadows_.emplace(h, std::move(s)).first->second;
}

Checker::TaskInfo* Checker::task(std::uint64_t id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

VectorClock& Checker::lane_clock(std::size_t lane) {
  if (lane >= lanes_.size()) lanes_.resize(lane + 1);
  return lanes_[lane];
}

void Checker::violation(ViolationKind kind, std::string msg) {
  ++total_violations_;
  if (violations_.size() < cfg_.max_recorded)
    violations_.push_back({kind, std::move(msg)});
}

void Checker::fold_time(sim::Time t) {
  fold(std::bit_cast<std::uint64_t>(t));
}

// ---------------------------------------------------------------------------
// Task-graph / execution events
// ---------------------------------------------------------------------------

void Checker::on_submit(
    std::uint64_t id, std::string label,
    const std::vector<std::pair<const mem::DataHandle*, Mode>>& accesses,
    std::vector<std::uint64_t> preds) {
  TaskInfo ti;
  ti.label = std::move(label);
  ti.accesses.reserve(accesses.size());
  fold(kTagSubmit);
  fold(id);
  for (const auto& [h, m] : accesses) {
    ti.accesses.push_back({h, m});
    shadow(h);  // materialize shadow state on first sight
    fold(h->id);
    fold(static_cast<std::uint64_t>(m));
  }
  // The runtime now sorts predecessors by task id (never by pointer), so
  // the incoming order is already reproducible; keep folding in sorted
  // order anyway so the hash never depends on any caller's ordering.
  std::sort(preds.begin(), preds.end());
  for (std::uint64_t p : preds) fold(p);
  ti.preds = std::move(preds);
  ti.submit_vc = completed_vc_;
  tasks_.emplace(id, std::move(ti));
  task_order_.push_back(id);
}

void Checker::stamp(std::uint64_t id, TaskInfo& t, std::size_t lane) {
  t.vc.join(t.submit_vc);
  for (std::uint64_t p : t.preds) {
    TaskInfo* pt = task(p);
    // In a healthy run every predecessor completed before this task became
    // ready; an incomplete predecessor here means the dependence edge was
    // lost (fault injection) and the race detector below will flag the
    // unordered accesses.
    if (pt && pt->completed) t.vc.join(pt->vc);
  }
  VectorClock& lc = lane_clock(lane);
  t.vc.join(lc);
  t.vc.tick(lane);
  lc = t.vc;
  t.vc_set = true;
  (void)id;
}

void Checker::check_reads(std::uint64_t id, TaskInfo& t) {
  if (!cfg_.races) return;
  for (const AccessRec& a : t.accesses) {
    if (a.mode == Mode::kW) continue;
    Shadow& s = shadow(a.handle);
    if (s.write_task != 0 && s.write_task != id && !s.write_vc.leq(t.vc))
      violation(ViolationKind::kRace,
                "race: read of tile " + std::to_string(a.handle->id) +
                    " by task " + std::to_string(id) + " '" + t.label +
                    "' is not ordered after write by task " +
                    std::to_string(s.write_task) + " '" + s.write_label +
                    "' (reader clock " + t.vc.to_string() +
                    ", writer clock " + s.write_vc.to_string() + ")");
    s.readers.push_back({id, t.vc});
  }
}

void Checker::record_writes(std::uint64_t id, TaskInfo& t, int dev,
                            sim::Time /*now*/) {
  for (const AccessRec& a : t.accesses) {
    if (a.mode == Mode::kR) continue;
    Shadow& s = shadow(a.handle);
    if (cfg_.races) {
      if (s.write_task != 0 && s.write_task != id && !s.write_vc.leq(t.vc))
        violation(ViolationKind::kRace,
                  "race: write of tile " + std::to_string(a.handle->id) +
                      " by task " + std::to_string(id) + " '" + t.label +
                      "' is not ordered after write by task " +
                      std::to_string(s.write_task) + " '" + s.write_label +
                      "'");
      for (const ReaderRec& r : s.readers) {
        if (r.task == id) continue;
        if (!r.vc.leq(t.vc)) {
          const TaskInfo* rt = task(r.task);
          violation(ViolationKind::kRace,
                    "race: write of tile " + std::to_string(a.handle->id) +
                        " by task " + std::to_string(id) + " '" + t.label +
                        "' is not ordered after read by task " +
                        std::to_string(r.task) + " '" +
                        (rt ? rt->label : "?") + "'");
        }
      }
    }
    s.write_vc = t.vc;
    s.write_task = id;
    s.write_label = t.label;
    s.readers.clear();
    if (dev < 0) s.host_vc.join(t.vc);  // host-side writer (host_write)
  }
}

void Checker::on_kernel_issue(std::uint64_t id, int dev, int lane,
                              sim::Time start, sim::Time end) {
  fold(kTagKernel);
  fold(id);
  fold(static_cast<std::uint64_t>(dev));
  fold_time(start);
  fold_time(end);
  TaskInfo* t = task(id);
  if (!t) return;
  t->device = dev;
  if (cfg_.coherence && device_failed(dev))
    violation(ViolationKind::kCoherence,
              "kernel of task " + std::to_string(id) + " '" + t->label +
                  "' issued on blacklisted GPU " + std::to_string(dev));
  // Import the happens-before edges carried by the operand receptions, then
  // verify freshness: a kernel must start with every read operand valid on
  // its device and holding the latest version.
  for (const AccessRec& a : t->accesses) {
    if (a.mode == Mode::kW) continue;
    Shadow& s = shadow(a.handle);
    t->vc.join(s.arrival_vc[static_cast<std::size_t>(dev)]);
    if (cfg_.coherence) {
      const mem::Replica& r = a.handle->dev[static_cast<std::size_t>(dev)];
      if (r.state != mem::ReplicaState::kValid)
        violation(ViolationKind::kCoherence,
                  "kernel of task " + std::to_string(id) + " '" + t->label +
                      "' started on GPU " + std::to_string(dev) +
                      " with operand tile " + std::to_string(a.handle->id) +
                      " in state '" + mem::to_string(r.state) + "'");
      else if (s.dev_version[static_cast<std::size_t>(dev)] != s.version)
        violation(ViolationKind::kCoherence,
                  "stale read: task " + std::to_string(id) + " '" + t->label +
                      "' on GPU " + std::to_string(dev) + " reads tile " +
                      std::to_string(a.handle->id) + " at version " +
                      std::to_string(s.dev_version[static_cast<std::size_t>(
                          dev)]) +
                      " but the latest write is version " +
                      std::to_string(s.version));
    }
  }
  stamp(id, *t, lane_kernel(dev, lane));
  check_reads(id, *t);
}

void Checker::on_task_finish(std::uint64_t id, int dev, sim::Time now) {
  fold(kTagFinish);
  fold(id);
  fold_time(now);
  TaskInfo* t = task(id);
  if (!t) return;
  t->finished = true;
  if (!t->vc_set) {
    // Kernel-less placement task (e.g. the 2D block-cyclic distribution):
    // no stream lane, so order it on the device's virtual lane.  Its reads
    // still carry the arrival edges and are checked like kernel reads.
    for (const AccessRec& a : t->accesses) {
      if (a.mode == Mode::kW) continue;
      Shadow& s = shadow(a.handle);
      t->vc.join(s.arrival_vc[static_cast<std::size_t>(dev)]);
      if (cfg_.coherence &&
          s.dev_version[static_cast<std::size_t>(dev)] != s.version)
        violation(ViolationKind::kCoherence,
                  "stale read: placement task " + std::to_string(id) + " '" +
                      t->label + "' on GPU " + std::to_string(dev) +
                      " observes tile " + std::to_string(a.handle->id) +
                      " at version " +
                      std::to_string(
                          s.dev_version[static_cast<std::size_t>(dev)]) +
                      ", latest is " + std::to_string(s.version));
    }
    stamp(id, *t, lane_virtual(dev));
    check_reads(id, *t);
  }
  record_writes(id, *t, dev, now);
}

void Checker::on_task_complete(std::uint64_t id, sim::Time now) {
  fold(kTagComplete);
  fold(id);
  fold_time(now);
  TaskInfo* t = task(id);
  if (!t) return;
  if (!t->vc_set) {
    // Host-side task (memory_coherent / host_write): executes on the host
    // lane; reads carry the host copy's happens-before edges.
    for (const AccessRec& a : t->accesses) {
      if (a.mode == Mode::kW) continue;
      Shadow& s = shadow(a.handle);
      t->vc.join(s.host_vc);
      if (cfg_.coherence && s.host_version != s.version)
        violation(ViolationKind::kCoherence,
                  "host task " + std::to_string(id) + " '" + t->label +
                      "' observes tile " + std::to_string(a.handle->id) +
                      " at host version " + std::to_string(s.host_version) +
                      ", latest is " + std::to_string(s.version));
    }
    stamp(id, *t, /*host lane=*/0);
    check_reads(id, *t);
    record_writes(id, *t, /*dev=*/-1, now);
  }
  t->completed = true;
  if (t->vc_set) completed_vc_.join(t->vc);
}

// ---------------------------------------------------------------------------
// Replica-protocol events
// ---------------------------------------------------------------------------

void Checker::on_source_choice(const mem::DataHandle* h, int dst,
                               SourceKind kind, int src, bool forced) {
  fold(kTagSource);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dst));
  fold(static_cast<std::uint64_t>(kind));
  fold(static_cast<std::uint64_t>(src) + 1);
  if (!cfg_.coherence) return;
  const bool host_valid = h->host.state == mem::ReplicaState::kValid;
  Shadow& s = shadow(h);
  switch (kind) {
    case SourceKind::kHost:
      if (!host_valid)
        violation(ViolationKind::kCoherence,
                  "choose_source picked the host for tile " +
                      std::to_string(h->id) + " -> GPU " +
                      std::to_string(dst) + " but the host copy is not valid");
      break;
    case SourceKind::kDevice: {
      const mem::Replica& r = h->dev[static_cast<std::size_t>(src)];
      if (device_failed(src))
        violation(ViolationKind::kCoherence,
                  "choose_source picked failed GPU " + std::to_string(src) +
                      " as source for tile " + std::to_string(h->id) +
                      " -> GPU " + std::to_string(dst));
      if (r.state != mem::ReplicaState::kValid)
        violation(ViolationKind::kCoherence,
                  "choose_source picked invalid replica on GPU " +
                      std::to_string(src) + " for tile " +
                      std::to_string(h->id) + " -> GPU " +
                      std::to_string(dst));
      else if (s.dev_version[static_cast<std::size_t>(src)] != s.version)
        violation(ViolationKind::kCoherence,
                  "choose_source picked stale replica on GPU " +
                      std::to_string(src) + " for tile " +
                      std::to_string(h->id) + " (version " +
                      std::to_string(
                          s.dev_version[static_cast<std::size_t>(src)]) +
                      ", latest " + std::to_string(s.version) + ")");
      if (policy_ == Policy::kHostOnly && host_valid)
        violation(ViolationKind::kCoherence,
                  "host-only source policy chose a device source for tile " +
                      std::to_string(h->id) +
                      " although the host copy is valid");
      break;
    }
    case SourceKind::kWaitDevice: {
      const mem::Replica& r = h->dev[static_cast<std::size_t>(src)];
      if (device_failed(src))
        violation(ViolationKind::kCoherence,
                  "choose_source chained tile " + std::to_string(h->id) +
                      " on a reception at failed GPU " + std::to_string(src));
      if (r.state != mem::ReplicaState::kInFlight)
        violation(ViolationKind::kCoherence,
                  "optimistic forwarding chained on GPU " +
                      std::to_string(src) + " for tile " +
                      std::to_string(h->id) +
                      " but no reception is in flight there");
      if (!forced) {
        ++optimistic_seen_;
        if (!optimistic_)
          violation(ViolationKind::kCoherence,
                    "optimistic wait chosen for tile " +
                        std::to_string(h->id) +
                        " although optimistic_d2d is disabled");
        if (!host_valid)
          violation(ViolationKind::kCoherence,
                    "optimistic wait for tile " + std::to_string(h->id) +
                        " marked as chosen, but the host copy is invalid "
                        "(it should be a forced wait)");
      } else {
        ++forced_seen_;
        if (host_valid)
          violation(ViolationKind::kCoherence,
                    "forced wait for tile " + std::to_string(h->id) +
                        " although a valid host copy exists");
      }
      break;
    }
    case SourceKind::kWaitHost:
      if (h->host.state != mem::ReplicaState::kInFlight)
        violation(ViolationKind::kCoherence,
                  "waiting on a host reception for tile " +
                      std::to_string(h->id) +
                      " but the host copy is not in flight");
      break;
  }
}

void Checker::on_transfer_issue(TransferKind k, const mem::DataHandle* h,
                                int src, int dst, sim::Time start,
                                sim::Time end) {
  fold(kTagTransfer);
  fold(static_cast<std::uint64_t>(k));
  fold(h->id);
  fold(static_cast<std::uint64_t>(src) + 1);
  fold(static_cast<std::uint64_t>(dst));
  fold_time(start);
  fold_time(end);
  Shadow& s = shadow(h);
  const auto d = static_cast<std::size_t>(dst);
  if (cfg_.coherence && device_failed(dst))
    violation(ViolationKind::kCoherence,
              "transfer of tile " + std::to_string(h->id) +
                  " issued towards blacklisted GPU " + std::to_string(dst));
  if (cfg_.coherence && k == TransferKind::kD2D && device_failed(src))
    violation(ViolationKind::kCoherence,
              "D2D of tile " + std::to_string(h->id) +
                  " issued from blacklisted GPU " + std::to_string(src));
  if (k == TransferKind::kH2D) {
    ++h2d_seen_;
    if (cfg_.coherence && h->host.state != mem::ReplicaState::kValid)
      violation(ViolationKind::kCoherence,
                "H2D issued for tile " + std::to_string(h->id) + " -> GPU " +
                    std::to_string(dst) + " with an invalid host copy");
    if (cfg_.coherence && s.host_version != s.version)
      violation(ViolationKind::kCoherence,
                "H2D issued for tile " + std::to_string(h->id) +
                    " carries stale host version " +
                    std::to_string(s.host_version) + " (latest " +
                    std::to_string(s.version) + ")");
    s.in_version[d] = s.host_version;
    s.in_vc[d] = s.host_vc;
  } else if (k == TransferKind::kD2D) {
    ++d2d_seen_;
    const auto sd = static_cast<std::size_t>(src);
    if (cfg_.coherence &&
        h->dev[sd].state != mem::ReplicaState::kValid)
      violation(ViolationKind::kCoherence,
                "D2D issued for tile " + std::to_string(h->id) + " from GPU " +
                    std::to_string(src) + " whose replica is not valid");
    if (cfg_.coherence && s.dev_version[sd] != s.version)
      violation(ViolationKind::kCoherence,
                "D2D issued for tile " + std::to_string(h->id) + " from GPU " +
                    std::to_string(src) + " holding stale version " +
                    std::to_string(s.dev_version[sd]) + " (latest " +
                    std::to_string(s.version) + ")");
    s.in_version[d] = s.dev_version[sd];
    s.in_vc[d] = s.arrival_vc[sd];
    s.in_vc[d].join(s.write_vc);
  }
}

void Checker::on_arrival(const mem::DataHandle* h, int dev, sim::Time now) {
  fold(kTagArrival);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dev));
  fold_time(now);
  ++arrivals_;
  Shadow& s = shadow(h);
  const auto d = static_cast<std::size_t>(dev);
  if (cfg_.coherence && s.in_version[d] == Shadow::kNoVersion)
    violation(ViolationKind::kCoherence,
              "arrival of tile " + std::to_string(h->id) + " on GPU " +
                  std::to_string(dev) + " without a matching transfer issue");
  else if (cfg_.coherence && s.in_version[d] != s.version)
    violation(ViolationKind::kCoherence,
              "arrival delivered stale version " +
                  std::to_string(s.in_version[d]) + " of tile " +
                  std::to_string(h->id) + " to GPU " + std::to_string(dev) +
                  " (latest " + std::to_string(s.version) + ")");
  s.dev_version[d] = s.in_version[d];
  s.in_version[d] = Shadow::kNoVersion;
  s.arrival_vc[d].join(s.in_vc[d]);
}

void Checker::on_mark_written(const mem::DataHandle* h, int dev,
                              sim::Time now) {
  fold(kTagWritten);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dev));
  fold_time(now);
  Shadow& s = shadow(h);
  ++s.version;
  for (std::size_t g = 0; g < s.dev_version.size(); ++g)
    if (g != static_cast<std::size_t>(dev)) s.dev_version[g] = Shadow::kNoVersion;
  s.dev_version[static_cast<std::size_t>(dev)] = s.version;
  if (!cfg_.coherence) return;
  // At most one dirty replica, and it must be the writer's.
  int dirty_count = 0;
  for (const auto& [g, r] : h->dev) {
    if (r.dirty) ++dirty_count;
    if (g != dev && r.state == mem::ReplicaState::kValid)
      violation(ViolationKind::kCoherence,
                "write to tile " + std::to_string(h->id) + " on GPU " +
                    std::to_string(dev) +
                    " left a valid peer replica on GPU " + std::to_string(g));
  }
  if (dirty_count != 1 || !h->dev[dev].dirty)
    violation(ViolationKind::kCoherence,
              "tile " + std::to_string(h->id) + " has " +
                  std::to_string(dirty_count) +
                  " dirty replicas after a write on GPU " +
                  std::to_string(dev) + " (expected exactly the writer's)");
  if (h->host.state == mem::ReplicaState::kValid)
    violation(ViolationKind::kCoherence,
              "host copy of tile " + std::to_string(h->id) +
                  " still valid after a device write (lazy coherency "
                  "requires invalidation)");
}

void Checker::on_host_write(const mem::DataHandle* h) {
  fold(kTagHostWrite);
  fold(h->id);
  Shadow& s = shadow(h);
  ++s.version;
  s.host_version = s.version;
  for (auto& v : s.dev_version) v = Shadow::kNoVersion;
  if (!cfg_.coherence) return;
  for (const auto& [g, r] : h->dev)
    if (r.state != mem::ReplicaState::kInvalid)
      violation(ViolationKind::kCoherence,
                "host write to tile " + std::to_string(h->id) +
                    " left a non-invalid replica on GPU " + std::to_string(g));
}

void Checker::on_host_flush_issue(const mem::DataHandle* h, int src,
                                  std::uint64_t version) {
  fold(kTagFlushIssue);
  fold(h->id);
  fold(static_cast<std::uint64_t>(src));
  fold(version);
  ++d2h_seen_;
  Shadow& s = shadow(h);
  s.d2h_inflight = true;
  if (cfg_.coherence && device_failed(src))
    violation(ViolationKind::kCoherence,
              "host flush of tile " + std::to_string(h->id) +
                  " issued from blacklisted GPU " + std::to_string(src));
  if (cfg_.coherence && version != s.version)
    violation(ViolationKind::kCoherence,
              "flush of tile " + std::to_string(h->id) + " from GPU " +
                  std::to_string(src) + " issued for version " +
                  std::to_string(version) + " but the latest is " +
                  std::to_string(s.version));
}

void Checker::on_host_flush_done(const mem::DataHandle* h, int src, bool stale,
                                 std::uint64_t version, sim::Time now) {
  fold(kTagFlushDone);
  fold(h->id);
  fold(static_cast<std::uint64_t>(src));
  fold(stale ? 1u : 0u);
  fold_time(now);
  Shadow& s = shadow(h);
  s.d2h_inflight = false;
  if (stale) return;  // payload discarded; a re-flush (if any) re-issues
  if (cfg_.coherence && version != s.version)
    violation(ViolationKind::kCoherence,
              "flush published stale version " + std::to_string(version) +
                  " of tile " + std::to_string(h->id) +
                  " to the host (latest " + std::to_string(s.version) + ")");
  s.host_version = version;
  s.host_vc.join(s.arrival_vc[static_cast<std::size_t>(src)]);
  s.host_vc.join(s.write_vc);
}

void Checker::on_evict(const mem::DataHandle* h, int dev, bool was_dirty) {
  fold(kTagEvict);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dev));
  fold(was_dirty ? 1u : 0u);
  if (!cfg_.coherence) return;
  Shadow& s = shadow(h);
  if (was_dirty) {
    // The caller is about to flush the evicted bytes; they must be current.
    if (s.dev_version[static_cast<std::size_t>(dev)] != s.version)
      violation(ViolationKind::kCoherence,
                "dirty eviction of tile " + std::to_string(h->id) +
                    " from GPU " + std::to_string(dev) +
                    " holds stale version " +
                    std::to_string(s.dev_version[static_cast<std::size_t>(
                        dev)]) +
                    " (latest " + std::to_string(s.version) + ")");
    return;
  }
  if (!current_version_survives(h, s, dev))
    violation(ViolationKind::kCoherence,
              "eviction dropped the last copy of tile " +
                  std::to_string(h->id) + " version " +
                  std::to_string(s.version) + " (from GPU " +
                  std::to_string(dev) + ")");
}

bool Checker::current_version_survives(const mem::DataHandle* h,
                                       const Shadow& s,
                                       int excluding_dev) const {
  if (h->host.state == mem::ReplicaState::kValid &&
      s.host_version == s.version)
    return true;
  if (s.d2h_inflight) return true;  // a flush of the current version is due
  for (const auto& [g, r] : h->dev) {
    if (g == excluding_dev) continue;
    const auto gi = static_cast<std::size_t>(g);
    if (r.state == mem::ReplicaState::kValid && s.dev_version[gi] == s.version)
      return true;
    if (r.state == mem::ReplicaState::kInFlight &&
        s.in_version[gi] == s.version)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fault-recovery events
// ---------------------------------------------------------------------------

void Checker::on_transfer_abort(TransferKind k, const mem::DataHandle* h,
                                int src, int dst, std::size_t attempts,
                                std::size_t cap) {
  fold(kTagAbort);
  fold(static_cast<std::uint64_t>(k));
  fold(h->id);
  fold(static_cast<std::uint64_t>(src) + 1);
  fold(static_cast<std::uint64_t>(dst) + 1);
  fold(attempts);
  Shadow& s = shadow(h);
  if (k == TransferKind::kD2H) {
    ++d2h_aborts_seen_;
    // The flush will never publish; stop counting it as survival evidence.
    s.d2h_inflight = false;
  } else {
    ++rx_aborts_seen_;
    if (dst >= 0) {
      // The reception was cancelled: no arrival will consume the in-flight
      // version, so clear it (current_version_survives must not count a
      // copy that is no longer coming).
      const auto d = static_cast<std::size_t>(dst);
      s.in_version[d] = Shadow::kNoVersion;
      s.in_vc[d] = VectorClock{};
    }
  }
  if (cap != 0 && attempts > cap)
    violation(ViolationKind::kCoherence,
              "unbounded retry: transfer of tile " + std::to_string(h->id) +
                  " -> " + (dst < 0 ? std::string("host")
                                    : "GPU " + std::to_string(dst)) +
                  " aborted on attempt " + std::to_string(attempts) +
                  " past the retry cap of " + std::to_string(cap));
}

void Checker::on_device_failure(int dev) {
  fold(kTagDevFail);
  fold(static_cast<std::uint64_t>(dev));
  if (failed_devs_.empty()) failed_devs_.assign(static_cast<std::size_t>(gpus_), 0);
  if (dev >= 0 && dev < gpus_) failed_devs_[static_cast<std::size_t>(dev)] = 1;
}

void Checker::on_replica_lost(const mem::DataHandle* h, int dev,
                              bool was_dirty) {
  fold(kTagLost);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dev));
  fold(was_dirty ? 1u : 0u);
  Shadow& s = shadow(h);
  const auto d = static_cast<std::size_t>(dev);
  s.dev_version[d] = Shadow::kNoVersion;
  s.in_version[d] = Shadow::kNoVersion;  // any reception to the dead GPU dies
  if (!cfg_.coherence) return;
  // If the purge dropped the last holder of the current version, recovery
  // owes us a replay (or a diagnosed data loss, which aborts the run before
  // finalize).  A surviving copy -- promoted or not -- settles it here.
  if (!current_version_survives(h, s, dev))
    pending_recovery_[h] =
        "tile " + std::to_string(h->id) + " version " +
        std::to_string(s.version) + " lost with " +
        (was_dirty ? std::string("dirty") : std::string("clean")) +
        " replica on failed GPU " + std::to_string(dev);
}

void Checker::on_promote(const mem::DataHandle* h, int dev) {
  fold(kTagPromote);
  fold(h->id);
  fold(static_cast<std::uint64_t>(dev));
  Shadow& s = shadow(h);
  pending_recovery_.erase(h);
  if (!cfg_.coherence) return;
  const mem::Replica& r = h->dev[static_cast<std::size_t>(dev)];
  if (r.state != mem::ReplicaState::kValid || !r.dirty)
    violation(ViolationKind::kCoherence,
              "promotion of tile " + std::to_string(h->id) + " on GPU " +
                  std::to_string(dev) +
                  " did not leave a valid dirty replica");
  else if (s.dev_version[static_cast<std::size_t>(dev)] != s.version)
    violation(ViolationKind::kCoherence,
              "promoted replica of tile " + std::to_string(h->id) +
                  " on GPU " + std::to_string(dev) + " holds stale version " +
                  std::to_string(s.dev_version[static_cast<std::size_t>(dev)]) +
                  " (latest " + std::to_string(s.version) + ")");
}

void Checker::on_replay(const mem::DataHandle* h, std::uint64_t task) {
  fold(kTagReplay);
  fold(h->id);
  fold(task);
  // The replayed producer flows through on_submit/on_mark_written like any
  // task; once it rewrites the tile the current version exists again.
  pending_recovery_.erase(h);
}

void Checker::on_task_remap(std::uint64_t id, int from_dev, int to_dev) {
  fold(kTagRemap);
  fold(id);
  fold(static_cast<std::uint64_t>(from_dev));
  fold(static_cast<std::uint64_t>(to_dev));
  TaskInfo* t = task(id);
  if (!t) return;
  // The execution on from_dev was cancelled: forget its stamp and recorded
  // reads so the re-execution on to_dev re-orders them from scratch.
  if (t->vc_set)
    // NOLINTNEXTLINE(xkb-unordered-observable): pure erase of this task's
    // reader records; no observable state derives from visitation order.
    for (auto& [h, s] : shadows_) {
      auto it = std::remove_if(s.readers.begin(), s.readers.end(),
                               [id](const ReaderRec& r) { return r.task == id; });
      s.readers.erase(it, s.readers.end());
    }
  t->vc = VectorClock{};
  t->vc_set = false;
  t->finished = false;
  t->device = to_dev;
}

// ---------------------------------------------------------------------------
// Engine events, finalization, reporting
// ---------------------------------------------------------------------------

void Checker::on_engine_event(sim::Time t, std::uint64_t seq) {
  fold(kTagEngine);
  fold(seq);
  fold_time(t);
}

void Checker::finalize(const StatsView& st) {
  // --- counter reconciliation -------------------------------------------
  auto expect_eq = [this](std::size_t got, std::size_t want,
                          const char* what) {
    if (got != want)
      violation(ViolationKind::kStats,
                std::string(what) + " counter mismatch: runtime reports " +
                    std::to_string(got) + ", checker observed " +
                    std::to_string(want));
  };
  expect_eq(st.h2d, h2d_seen_, "h2d");
  expect_eq(st.d2h, d2h_seen_, "d2h");
  expect_eq(st.d2d, d2d_seen_, "d2d");
  expect_eq(st.optimistic_waits, optimistic_seen_, "optimistic_waits");
  expect_eq(st.forced_waits, forced_seen_, "forced_waits");
  expect_eq(st.transfer_aborts, rx_aborts_seen_ + d2h_aborts_seen_,
            "transfer_aborts");
  if (!optimistic_ && st.optimistic_waits != 0)
    violation(ViolationKind::kStats,
              "optimistic_waits = " + std::to_string(st.optimistic_waits) +
                  " under an ablation configuration (must be 0)");
  // Every issued reception either materializes a replica or was aborted by
  // fault recovery -- nothing may simply evaporate.
  if (st.completed == st.submitted &&
      h2d_seen_ + d2d_seen_ != arrivals_ + rx_aborts_seen_)
    violation(ViolationKind::kStats,
              "transfer ledger does not balance: " +
                  std::to_string(h2d_seen_) + " H2D + " +
                  std::to_string(d2d_seen_) + " D2D issued, but " +
                  std::to_string(arrivals_) + " replicas materialized and " +
                  std::to_string(rx_aborts_seen_) + " receptions aborted");

  // --- progress audit ---------------------------------------------------
  if (cfg_.progress && st.completed != st.submitted) {
    std::size_t stuck = 0;
    std::string dump;
    for (std::uint64_t id : task_order_) {
      const TaskInfo& t = tasks_.at(id);
      if (t.completed) continue;
      ++stuck;
      if (stuck <= 8) {
        std::string waits;
        for (std::uint64_t p : t.preds) {
          const TaskInfo* pt = task(p);
          if (pt && !pt->completed)
            waits += (waits.empty() ? "" : ",") + std::to_string(p);
        }
        dump += "\n  task " + std::to_string(id) + " '" + t.label +
                "' waiting on [" + waits + "]";
      }
    }
    violation(ViolationKind::kProgress,
              "engine drained with " + std::to_string(stuck) + " of " +
                  std::to_string(st.submitted) +
                  " tasks incomplete (deadlock or dropped completion)" +
                  dump);

    // Wait-for cycle detection over the incomplete tasks: task -> its
    // incomplete predecessors.  A cycle is a hard failure with the cycle
    // dumped; acyclic stuck graphs point at a dropped completion event.
    std::unordered_map<std::uint64_t, int> color;  // 0 new, 1 open, 2 done
    std::vector<std::uint64_t> path;
    std::string cycle;
    std::function<bool(std::uint64_t)> dfs = [&](std::uint64_t id) -> bool {
      color[id] = 1;
      path.push_back(id);
      const TaskInfo* t = task(id);
      if (t)
        for (std::uint64_t p : t->preds) {
          const TaskInfo* pt = task(p);
          if (!pt || pt->completed) continue;
          if (color[p] == 1) {
            auto it = std::find(path.begin(), path.end(), p);
            for (; it != path.end(); ++it)
              cycle += (cycle.empty() ? "" : " -> ") + std::to_string(*it);
            cycle += " -> " + std::to_string(p);
            return true;
          }
          if (color[p] == 0 && dfs(p)) return true;
        }
      path.pop_back();
      color[id] = 2;
      return false;
    };
    for (std::uint64_t id : task_order_) {
      const TaskInfo& t = tasks_.at(id);
      if (!t.completed && color[id] == 0 && dfs(id)) {
        violation(ViolationKind::kProgress,
                  "wait-for cycle detected: " + cycle);
        break;
      }
    }
  }

  // --- final protocol scan ----------------------------------------------
  if (cfg_.coherence) {
    // Both maps are keyed by DataHandle pointers; iterating them directly
    // would emit violations in heap-address order -- nondeterministic
    // output from the very layer that certifies determinism (flagged by
    // xkb-tidy's unordered-observable check).  Scan snapshots sorted by
    // stable tile id instead.
    auto by_tile_id = [](auto* a, auto* b) { return a->id < b->id; };
    std::vector<const mem::DataHandle*> pending;
    pending.reserve(pending_recovery_.size());
    for (const auto& [h, msg] : pending_recovery_)  // NOLINT(xkb-unordered-observable): order-independent snapshot, sorted below
      pending.push_back(h);
    std::sort(pending.begin(), pending.end(), by_tile_id);
    for (const mem::DataHandle* h : pending)
      violation(ViolationKind::kCoherence,
                "unresolved recovery: " + pending_recovery_.at(h) +
                    " and neither a surviving copy nor a replay restored it");
    std::vector<const mem::DataHandle*> tiles;
    tiles.reserve(shadows_.size());
    for (const auto& [h, s] : shadows_)  // NOLINT(xkb-unordered-observable): order-independent snapshot, sorted below
      tiles.push_back(h);
    std::sort(tiles.begin(), tiles.end(), by_tile_id);
    for (const mem::DataHandle* h : tiles) {
      const Shadow& s = shadows_.at(h);
      if (pending_recovery_.count(h)) continue;  // already reported above
      int dirty = 0;
      for (const auto& [g, r] : h->dev) {
        if (r.dirty) ++dirty;
        if (r.pins != 0)
          violation(ViolationKind::kCoherence,
                    "pin leak: tile " + std::to_string(h->id) + " on GPU " +
                        std::to_string(g) + " still has " +
                        std::to_string(r.pins) + " pins after the run");
      }
      if (dirty > 1)
        violation(ViolationKind::kCoherence,
                  "tile " + std::to_string(h->id) + " ends the run with " +
                      std::to_string(dirty) + " dirty replicas");
      if (st.completed == st.submitted &&
          !current_version_survives(h, s, /*excluding_dev=*/-1))
        violation(ViolationKind::kCoherence,
                  "tile " + std::to_string(h->id) +
                      " lost its current version " +
                      std::to_string(s.version) + " by the end of the run");
    }
  }
}

std::string Checker::report() const {
  if (total_violations_ == 0) return {};
  std::string out = "xkb::check found " + std::to_string(total_violations_) +
                    " violation(s):\n";
  for (const Violation& v : violations_)
    out += std::string("  [") + to_string(v.kind) + "] " + v.message + "\n";
  if (total_violations_ > violations_.size())
    out += "  ... and " +
           std::to_string(total_violations_ - violations_.size()) +
           " more (recording capped)\n";
  return out;
}

}  // namespace xkb::check
