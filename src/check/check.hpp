// xkb::check -- an opt-in validation layer for the simulated runtime.
//
// The checker observes every semantically relevant event of a run (task
// graph construction, kernel issue/finish, replica transitions, transfers,
// evictions, engine events) and verifies three families of properties:
//
//  1. Happens-before race detection: vector clocks are propagated along
//     task-dependence edges, stream/lane FIFO order and transfer
//     completions; two conflicting accesses (R/W or W/W) to the same tile
//     that are not ordered by those edges are reported as a race.  This
//     catches scheduler/dependency bugs that otherwise only show up as a
//     wrong makespan (or wrong bits in functional mode).
//  2. Coherence-protocol invariants of the MSI-like replica state machine:
//     every read observes the latest version, `choose_source` never selects
//     an invalid or stale replica, optimistic forwarding only chains on a
//     genuinely in-flight reception, at most one dirty replica per tile,
//     eviction never drops the last copy of the current version, and the
//     TransferStats counters reconcile with the observed event stream
//     (e.g. `optimistic_waits == 0` under the ablation configurations).
//  3. Progress and determinism: after the engine drains, every submitted
//     task must have completed -- if not, the wait-for graph is dumped and
//     searched for cycles (deadlock) -- and an FNV-1a hash of the full
//     event stream is exposed so two runs of the same configuration can be
//     asserted bit-identical.
//
// The checker depends only on `mem` and `sim`; the runtime layers feed it
// events through the hooks below (mirrored enums avoid an include cycle
// with `runtime/`).  It is always compiled and costs one null-pointer test
// per hook when disabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/vector_clock.hpp"
#include "mem/handle.hpp"
#include "sim/engine.hpp"

namespace xkb::check {

/// Access mode of a task operand (mirror of rt::Access).
enum class Mode : std::uint8_t { kR, kW, kRW };

/// Source-selection policy in force (mirror of rt::SourcePolicy).
enum class Policy : std::uint8_t {
  kTopologyAware,
  kFirstValid,
  kSwitchPeer,
  kHostOnly,
};

/// What choose_source decided (mirror of DataManager::Source::Kind).
enum class SourceKind : std::uint8_t { kHost, kDevice, kWaitDevice, kWaitHost };

enum class TransferKind : std::uint8_t { kH2D, kD2D, kD2H };

/// Test-only fault injection, honoured by the runtime only when a checker
/// is attached.  Used by the checker's own mutant tests: a checker that
/// cannot fail its mutants proves nothing.
struct Faults {
  /// Swallow the completion of this task id: successors never run
  /// (simulates a dropped completion event; the progress auditor must
  /// report the stuck tasks).
  std::uint64_t drop_completion_task = 0;
  /// Skip the dependence edge pred -> succ at submit time (simulates a
  /// reordered/lost dependence; the race detector must report the
  /// unordered conflicting accesses).
  std::uint64_t skip_edge_pred = 0;
  std::uint64_t skip_edge_succ = 0;
};

struct CheckConfig {
  bool enabled = false;
  bool races = true;      ///< vector-clock happens-before checking
  bool coherence = true;  ///< replica-protocol invariants
  bool progress = true;   ///< completion audit + wait-for cycle detection
  /// Violations beyond this many are counted but not recorded verbatim.
  std::size_t max_recorded = 64;
  Faults faults;  ///< test-only
};

enum class ViolationKind : std::uint8_t {
  kRace,
  kCoherence,
  kStats,
  kProgress,
};

const char* to_string(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::kCoherence;
  std::string message;
};

/// Mirror of the runtime counters the checker reconciles against
/// (rt::TransferStats plus the task counters).
struct StatsView {
  std::size_t h2d = 0, d2h = 0, d2d = 0;
  std::size_t optimistic_waits = 0, forced_waits = 0;
  std::size_t submitted = 0, completed = 0;
  std::size_t transfer_aborts = 0;  ///< fault-injected/recovery aborts
};

class Checker {
 public:
  Checker(const CheckConfig& cfg, int num_gpus, int kernel_streams,
          Policy policy, bool optimistic_d2d);

  const CheckConfig& config() const { return cfg_; }
  const Faults& faults() const { return cfg_.faults; }

  // --- task-graph / execution events (fed by rt::Runtime) ---
  void on_submit(
      std::uint64_t task, std::string label,
      const std::vector<std::pair<const mem::DataHandle*, Mode>>& accesses,
      std::vector<std::uint64_t> preds);
  /// Kernel handed to stream `lane` of `dev` (lane FIFO order == issue
  /// order).  Performs the read-side race + staleness checks.
  void on_kernel_issue(std::uint64_t task, int dev, int lane, sim::Time start,
                       sim::Time end);
  /// Kernel (or kernel-less placement task) finished on `dev`: performs the
  /// write-side race checks and records the write's vector clock.
  void on_task_finish(std::uint64_t task, int dev, sim::Time t);
  /// Task fully completed (successors about to be notified).
  void on_task_complete(std::uint64_t task, sim::Time t);

  // --- replica-protocol events (fed by rt::DataManager) ---
  void on_source_choice(const mem::DataHandle* h, int dst, SourceKind kind,
                        int src, bool forced);
  void on_transfer_issue(TransferKind k, const mem::DataHandle* h, int src,
                         int dst, sim::Time start, sim::Time end);
  /// A replica reception completed on `dev` (kInFlight -> kValid).
  void on_arrival(const mem::DataHandle* h, int dev, sim::Time t);
  void on_mark_written(const mem::DataHandle* h, int dev, sim::Time t);
  void on_host_write(const mem::DataHandle* h);
  void on_host_flush_issue(const mem::DataHandle* h, int src,
                           std::uint64_t version);
  void on_host_flush_done(const mem::DataHandle* h, int src, bool stale,
                          std::uint64_t version, sim::Time t);
  /// A resident replica was evicted from `dev` (already released).
  void on_evict(const mem::DataHandle* h, int dev, bool was_dirty);

  // --- fault-recovery events (fed by rt::DataManager / rt::Runtime) ---
  /// An issued transfer aborted before completion (injected failure, or
  /// cancelled because an endpoint died).  `dst` is -1 for D2H flushes.
  /// `attempts`/`cap` drive the bounded-retries invariant (0/0 for aborts
  /// that are not retries of the same reception, e.g. device-loss purges).
  void on_transfer_abort(TransferKind k, const mem::DataHandle* h, int src,
                         int dst, std::size_t attempts, std::size_t cap);
  /// GPU `dev` was blacklisted.  From here on, no source choice, D2D issue
  /// or kernel may touch it.
  void on_device_failure(int dev);
  /// The replica of `h` on (failed) `dev` was purged.  If it was the last
  /// holder of the current version, the handle enters the needs-recovery
  /// set: a matching on_replay must follow, or finalize reports the loss.
  void on_replica_lost(const mem::DataHandle* h, int dev, bool was_dirty);
  /// A surviving replica on `dev` was promoted to dirty, replacing a dirty
  /// copy lost to a device failure.  It must hold the current version.
  void on_promote(const mem::DataHandle* h, int dev);
  /// The producer of `h`'s lost dirty replica was resubmitted as `task`.
  void on_replay(const mem::DataHandle* h, std::uint64_t task);
  /// A not-yet-finished task migrated off a failed device; its recorded
  /// (now cancelled) reads are dropped so the re-execution re-orders them.
  void on_task_remap(std::uint64_t task, int from_dev, int to_dev);

  // --- engine events (fed by sim::Engine's observer hook) ---
  void on_engine_event(sim::Time t, std::uint64_t seq);

  /// End-of-run audit: counter reconciliation, completion/progress check
  /// with wait-for cycle detection, final protocol scan (dirty uniqueness,
  /// pin leaks, data loss).
  void finalize(const StatsView& s);

  bool ok() const { return total_violations_ == 0; }
  std::size_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }
  /// FNV-1a 64-bit hash over the observed event stream.
  std::uint64_t event_hash() const { return hash_; }
  /// Human-readable summary of all recorded violations (empty string when
  /// the run is clean).
  std::string report() const;

 private:
  struct AccessRec {
    const mem::DataHandle* handle = nullptr;
    Mode mode = Mode::kR;
  };
  struct TaskInfo {
    std::string label;
    std::vector<AccessRec> accesses;
    std::vector<std::uint64_t> preds;
    VectorClock vc;  ///< the task's event clock, valid once `vc_set`
    /// Join of the clocks of every task already completed when this one was
    /// submitted.  Tasks that finished before `t` even existed happen-before
    /// everything `t` does -- the runtime rightly creates no dependence edge
    /// for them (multi-phase runs: distribute, run, then emit compute), so
    /// the edge has to come from the submit point itself.  Snapshotted at
    /// submit, NOT read at stamp time: by stamp time concurrent tasks may
    /// have completed, and joining those would mask real races.
    VectorClock submit_vc;
    bool vc_set = false;
    bool finished = false;
    bool completed = false;
    int device = -1;
  };
  struct ReaderRec {
    std::uint64_t task = 0;
    VectorClock vc;
  };
  /// Shadow replica bookkeeping, keyed by handle.  `kNoVersion` marks a
  /// location that never held a copy.
  struct Shadow {
    static constexpr std::uint64_t kNoVersion = ~0ull;
    std::uint64_t version = 0;       ///< writes observed so far
    std::uint64_t host_version = 0;  ///< version the host copy holds
    std::vector<std::uint64_t> dev_version;
    std::vector<std::uint64_t> in_version;  ///< version carried by in-flight rx
    std::vector<VectorClock> in_vc;         ///< HB carried by in-flight rx
    std::vector<VectorClock> arrival_vc;    ///< HB carried by the last arrival
    VectorClock host_vc;                    ///< HB carried by the host copy
    VectorClock write_vc;                   ///< clock of the last write event
    std::uint64_t write_task = 0;
    std::string write_label;
    std::vector<ReaderRec> readers;  ///< reads since the last write
    bool d2h_inflight = false;
  };

  Shadow& shadow(const mem::DataHandle* h);
  TaskInfo* task(std::uint64_t id);
  std::size_t lane_kernel(int dev, int lane) const {
    return 1 + static_cast<std::size_t>(dev) * streams_ +
           static_cast<std::size_t>(lane);
  }
  std::size_t lane_virtual(int dev) const {
    return 1 + static_cast<std::size_t>(gpus_) * streams_ +
           static_cast<std::size_t>(dev);
  }
  VectorClock& lane_clock(std::size_t lane);

  /// Join every happens-before edge into `t`'s clock and stamp it with a
  /// fresh event on `lane` (also advancing the lane clock).
  void stamp(std::uint64_t id, TaskInfo& t, std::size_t lane);
  void check_reads(std::uint64_t id, TaskInfo& t);
  void record_writes(std::uint64_t id, TaskInfo& t, int dev, sim::Time now);

  void violation(ViolationKind kind, std::string msg);
  void fold(std::uint64_t v) {
    hash_ = (hash_ ^ v) * 1099511628211ull;  // FNV-1a 64, 8 bytes at a time
  }
  void fold_time(sim::Time t);

  /// True when some location (or in-flight reception) still holds the
  /// current version of `h`.
  bool current_version_survives(const mem::DataHandle* h, const Shadow& s,
                                int excluding_dev) const;

  CheckConfig cfg_;
  int gpus_;
  std::size_t streams_;
  Policy policy_;
  bool optimistic_;

  std::unordered_map<std::uint64_t, TaskInfo> tasks_;
  std::vector<std::uint64_t> task_order_;  ///< submission order (audit dump)
  std::unordered_map<const mem::DataHandle*, Shadow> shadows_;
  std::vector<VectorClock> lanes_;
  VectorClock completed_vc_;  ///< join of all completed tasks' clocks

  // Observed-event counters, reconciled against StatsView in finalize().
  std::size_t h2d_seen_ = 0, d2h_seen_ = 0, d2d_seen_ = 0;
  std::size_t arrivals_ = 0;
  std::size_t optimistic_seen_ = 0, forced_seen_ = 0;

  // Fault-recovery bookkeeping.
  std::size_t rx_aborts_seen_ = 0;   ///< aborted H2D/D2D receptions
  std::size_t d2h_aborts_seen_ = 0;  ///< aborted host flushes
  std::vector<char> failed_devs_;    ///< blacklisted GPUs (empty = none)
  bool device_failed(int dev) const {
    return dev >= 0 && static_cast<std::size_t>(dev) < failed_devs_.size() &&
           failed_devs_[static_cast<std::size_t>(dev)] != 0;
  }
  /// Tiles whose last current copy died with a failed device; must be
  /// resolved by on_replay before finalize.
  std::unordered_map<const mem::DataHandle*, std::string> pending_recovery_;

  std::vector<Violation> violations_;
  std::size_t total_violations_ = 0;
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace xkb::check
