// Kernel-time cost model of a simulated GPU.
//
// Calibrated against the V100-SXM2 of the paper's DGX-1 (7.8 DP TFlop/s
// peak).  Tile kernels reach a size-dependent fraction of peak: the
// efficiency curve is the classic saturating  eff(d) = d / (d + d_half)
// where d is the limiting tile dimension -- cuBLAS DGEMM on a 2048^3 tile
// runs at ~90 % of peak, ~82 % at 1024, which this curve reproduces.
// Less regular kernels (TRSM, TRMM) apply an additional efficiency factor
// supplied by the algorithm emitters.
#pragma once

#include <cstddef>

namespace xkb::rt {

struct PerfModel {
  double peak_flops_dp = 7.8e12;   ///< per-GPU FP64 peak (V100-SXM2)
  double sp_speedup = 2.0;         ///< FP32 peak / FP64 peak
  double eff_half_dim = 230.0;     ///< tile dim at which eff = 0.5
  double kernel_latency = 8e-6;    ///< launch + scheduling overhead, seconds
  double host_conv_bw = 10e9;      ///< host layout-conversion bandwidth, B/s
  double host_flops = 0.6e12;      ///< host CPU aggregate flops (2x20 cores)

  /// Time of a tile kernel doing `flops` real floating-point operations
  /// whose limiting tile dimension is `min_dim`.
  double kernel_time(double flops, std::size_t min_dim, double eff_factor,
                     bool single_precision) const;

  /// Achieved fraction of peak for a tile of limiting dimension d.
  double efficiency(std::size_t min_dim) const;
};

}  // namespace xkb::rt
