#include "runtime/perf_model.hpp"

namespace xkb::rt {

double PerfModel::efficiency(std::size_t min_dim) const {
  const double d = static_cast<double>(min_dim);
  return d / (d + eff_half_dim);
}

double PerfModel::kernel_time(double flops, std::size_t min_dim,
                              double eff_factor,
                              bool single_precision) const {
  const double peak =
      single_precision ? peak_flops_dp * sp_speedup : peak_flops_dp;
  const double eff = efficiency(min_dim) * eff_factor;
  if (flops <= 0.0) return kernel_latency;
  return kernel_latency + flops / (peak * eff);
}

}  // namespace xkb::rt
