// DataManager: the transfer engine, and the home of the paper's two
// contributions.
//
// The scheduler decides *where* a task runs; the DataManager decides *where
// its input tiles come from*.  Source selection lives in a single function,
// `choose_source`, controlled by HeuristicConfig:
//
//   * SourcePolicy::kTopologyAware (Section III-B): among devices holding a
//     valid replica, pick the one with the highest P2P performance rank
//     w.r.t. the destination (2xNVLink > 1xNVLink > PCIe), as returned by
//     the cuDeviceGetP2PAttribute analogue.
//   * SourcePolicy::kFirstValid: the paper's "no topo" ablation -- the first
//     valid device source in index order, regardless of link quality.
//   * SourcePolicy::kSwitchPeer: BLASX's two-level cache -- device-to-device
//     only from a GPU sharing the same PCIe switch, otherwise the host.
//   * SourcePolicy::kHostOnly: libraries that never exploit peer links
//     (Slate, cuBLAS-XT): always fetch from host memory.
//
//   * optimistic_d2d (Section III-C): when no device holds a valid replica
//     yet but one is *in flight* to some GPU, wait for that reception to
//     finish and forward device-to-device, instead of issuing a duplicate
//     host-to-device transfer over the congested PCIe links.  Disabled: fall
//     back to the host as source (duplicate transfer).
//
// Everything else here is the XKaapi software-cache mechanics: MSI-like
// validity, lazy host coherency, eviction flushes, pinning.
//
// Fault recovery (xkb::fault) threads through the same machinery: every
// transfer completion is guarded by the replica's `fetch_gen`, so an
// aborted or superseded copy is a no-op when its callback finally runs;
// transient failures re-plan the fetch after a capped exponential backoff
// in virtual time; and `on_device_failure` purges a dead GPU's replicas,
// promotes a surviving copy of lost dirty data (or asks the runtime to
// replay the producer), and re-plans every in-flight reception that was
// sourced from -- or chained on -- the dead device.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/registry.hpp"
#include "runtime/platform.hpp"
#include "runtime/task.hpp"

namespace xkb::rt {

enum class SourcePolicy {
  kTopologyAware,
  kFirstValid,
  kSwitchPeer,
  kHostOnly,
};

struct HeuristicConfig {
  SourcePolicy source = SourcePolicy::kTopologyAware;
  bool optimistic_d2d = true;

  /// The paper's full XKBlas configuration.
  static HeuristicConfig xkblas() { return {SourcePolicy::kTopologyAware, true}; }
  /// "XKBlas, no heuristic": optimistic transfer forwarding disabled.
  static HeuristicConfig no_heuristic() {
    return {SourcePolicy::kTopologyAware, false};
  }
  /// "XKBlas, no heuristic, no topo": both contributions disabled.
  static HeuristicConfig no_heuristic_no_topo() {
    return {SourcePolicy::kFirstValid, false};
  }
};

/// Counters exposed for experiments and tests.
struct TransferStats {
  std::size_t h2d = 0;               ///< host-to-device transfers issued
  std::size_t d2h = 0;
  std::size_t d2d = 0;               ///< device-to-device transfers issued
  /// Duplicate H2D avoided by the Section III-C heuristic: a valid host copy
  /// existed but we chained on an in-flight peer reception instead.  Only
  /// incremented when HeuristicConfig::optimistic_d2d chose to wait -- the
  /// ablation configurations must report 0 here.
  std::size_t optimistic_waits = 0;
  /// Waits forced by coherence, not chosen by the heuristic: the only copy
  /// of the data was in flight, so there was nothing else to copy from.
  /// These fire under every HeuristicConfig.
  std::size_t forced_waits = 0;
  std::size_t evict_flushes = 0;
  std::size_t oom_deferrals = 0;  ///< acquisitions deferred under pressure
  /// Transfers that died in flight: injected transient failures plus copies
  /// cancelled because an endpoint device failed.
  std::size_t transfer_aborts = 0;
  /// Fetches re-issued after a transient failure's backoff elapsed.
  std::size_t transfer_retries = 0;
  /// Optimistic/forced waiters whose awaited source device failed while
  /// their chained reception was pending: each was re-planned to a
  /// surviving source (or the host) instead of deadlocking.
  std::size_t waiter_replans = 0;
};

class DataManager {
 public:
  DataManager(Platform& plat, HeuristicConfig cfg) : plat_(&plat), cfg_(cfg) {}

  const HeuristicConfig& config() const { return cfg_; }
  const TransferStats& stats() const { return stats_; }

  /// Make `h` usable on `dev` under `mode`; `done` fires (possibly on the
  /// next engine event) when the replica is ready.  The replica is pinned
  /// until `unpin` -- callers unpin at task completion.
  void acquire(mem::DataHandle* h, int dev, Access mode, sim::Callback done);

  void unpin(mem::DataHandle* h, int dev);

  /// Coherence action after a kernel wrote `h` on `dev`: this replica
  /// becomes the unique valid (dirty) copy; every other replica and the
  /// host copy are invalidated (lazy host coherency).
  void mark_written(mem::DataHandle* h, int dev);

  /// Copy the authoritative replica back to the host (memory_coherent).
  /// `done` fires when the host copy is valid; immediate if already so.
  void flush_to_host(mem::DataHandle* h, sim::Callback done);

  /// Declare that the CPU overwrote the host copy: device replicas are
  /// dropped and the host becomes the sole valid copy.  Callers must order
  /// this after pending accesses (the runtime submits it as a writer task).
  void host_write(mem::DataHandle* h);

  /// Place a valid replica on `dev` without a consuming task (used by the
  /// 2D block-cyclic distribution routine).  Does not pin.
  void prefetch(mem::DataHandle* h, int dev, sim::Callback done);

  /// Device-failure recovery, called by the runtime after the topology
  /// blacklisted `g`.  For every handle (in `handles` order, so the walk is
  /// deterministic): abort an active host flush sourced at `g`, cancel the
  /// reception into `g`, purge `g`'s replica, promote a surviving copy of a
  /// lost dirty replica -- or ask `replay(h, reason)` to resubmit the
  /// producer, parking dependent fetches until its mark_written -- and
  /// re-plan every live reception that was sourced from `g`.  Throws
  /// UnrecoverableDataLoss when the last copy of a current version died and
  /// the producer is not replayable (`reason` says why).
  void on_device_failure(int g, const std::vector<mem::DataHandle*>& handles,
                         const std::function<bool(mem::DataHandle*,
                                                  std::string&)>& replay);

  /// True while `h`'s current version is gone and a producer replay is in
  /// flight; fetches of `h` park (Replica::fetch_src == kFetchParked) until
  /// the replay's mark_written re-plans them.
  bool replay_pending(const mem::DataHandle* h) const {
    return replay_pending_.count(h) != 0;
  }

 private:
  struct Source {
    enum Kind { kHost, kDevice, kWaitDevice, kWaitHost, kNone } kind = kHost;
    int dev = -1;
    /// kWaitDevice only: true when the wait is forced (the in-flight copy is
    /// the only one anywhere) rather than chosen by the optimistic heuristic.
    bool forced = false;
  };

  Source choose_source(const mem::DataHandle& h, int dst) const;

  void acquire_write(mem::DataHandle* h, int dev, sim::Callback done);
  void ensure_valid(mem::DataHandle* h, int dev, sim::Callback done);
  /// Source selection + issue for a replica already in kInFlight: runs
  /// choose_source (with the destination masked out, so a re-plan never
  /// picks itself), emits the decision to obs/check, and issues the copy
  /// or registers the chain.  kNone parks the fetch when a producer replay
  /// is pending, else raises UnrecoverableDataLoss.
  void plan_fetch(mem::DataHandle* h, int dev);
  /// Cancel whatever fetch `dev`'s in-flight replica was waiting on (bumps
  /// fetch_gen) and plan a fresh one.  No-op unless the replica is
  /// kInFlight and not parked-for-replay.
  void replan_fetch(mem::DataHandle* h, int dev);
  /// A transfer into `dev` died in flight: count the abort, cap-check the
  /// retry budget, and schedule the gen-guarded re-plan after backoff.
  void reception_failed(mem::DataHandle* h, int src, int dst);
  /// A host flush from `src` died in flight: like reception_failed for the
  /// host copy; the retry re-reads from whichever device is dirty by then.
  void flush_failed(mem::DataHandle* h, int src, bool drop_buffer);
  /// Walk the wait-chain feeding the in-flight reception at `dev`: true
  /// iff it terminates in an actual transfer from the host or a live
  /// device.  Chaining on an unfed reception (parked, or sourced from a
  /// failed GPU) would deadlock or cycle.
  bool reception_fed(const mem::DataHandle& h, int dev) const;
  void reserve_with_flushes(mem::DataHandle* h, int dev);
  void issue_h2d(mem::DataHandle* h, int dst);
  /// `chained` marks the forwarding leg of a kWaitDevice wait (issued by a
  /// reception-completion waiter) -- observability links it back to the
  /// reception it chained off.
  void issue_p2p(mem::DataHandle* h, int src, int dst, bool chained = false);
  void complete_arrival(mem::DataHandle* h, int dev);
  void flush_from_device(mem::DataHandle* h, int src, bool drop_buffer);

  /// Defer-and-retry on device-memory pressure: returns false when the
  /// reservation could not be made and a retry was scheduled.  Progress
  /// requires the device capacity to cover the prepare window's pinned
  /// working set (window x task footprint + one eviction-flush slot);
  /// below that the deferral loop is bounded and ends in
  /// OutOfDeviceMemory.
  ///
  /// `done` is the caller's completion callback; it is consumed (moved into
  /// the scheduled `(this->*retry)(h, dev, done)` continuation) only on the
  /// deferral path, so on success the caller still owns it.  Taking it by
  /// reference plus a member-pointer retry keeps `done` move-only: the old
  /// shape (a retry lambda capturing `done` by copy) forced a copyable
  /// callback and an extra closure copy per deferral.
  using RetryFn = void (DataManager::*)(mem::DataHandle*, int, sim::Callback);
  bool try_reserve_or_defer(mem::DataHandle* h, int dev, sim::Callback& done,
                            RetryFn retry);

  Platform* plat_;
  HeuristicConfig cfg_;
  TransferStats stats_;
  std::size_t consecutive_oom_ = 0;
  /// Handles whose current version died with a GPU and whose producer is
  /// being replayed; mark_written clears the entry and re-plans parked
  /// fetches.
  std::unordered_set<const mem::DataHandle*> replay_pending_;
};

}  // namespace xkb::rt
