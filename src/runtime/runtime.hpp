// The XKaapi-like data-flow runtime: dependency tracking, per-device task
// queues with a bounded prefetch window, work stealing, and completion-driven
// execution on the simulated platform.
//
// Life of a task:
//   submit() derives dependencies from access modes (readers after the last
//   writer, writers after all readers) -> when the last dependency completes
//   the scheduler places the task on a device -> the device pulls it into its
//   prepare window and the DataManager fetches operands (this is where the
//   paper's heuristics act) -> when all operands are valid the kernel is
//   submitted to the least-loaded kernel stream -> completion propagates to
//   successors.  Devices that run out of assigned work steal from the most
//   loaded peer (OwnerComputesScheduler only).
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "check/check.hpp"
#include "mem/registry.hpp"
#include "runtime/data_manager.hpp"
#include "runtime/platform.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "sim/watchdog.hpp"

namespace xkb::obs {
class Series;
}

namespace xkb::rt {

struct RuntimeOptions {
  HeuristicConfig heuristics;
  /// Max tasks per device concurrently fetching operands.  Bounds prefetch
  /// depth (and hence transient memory) like the real runtime's pending
  /// window.
  int prepare_window = 6;
  /// A victim must have at least this many queued tasks to be stolen from.
  int steal_min_victim = 2;
  /// Locality-aware stealing (an XKaapi option): only steal a task if some
  /// of its operands are already valid on the thief, scanning the victim's
  /// queue from the back.  Reduces transfer traffic at the price of less
  /// aggressive balancing.
  bool locality_stealing = false;
  /// Drop read-only replicas once their consumer finishes (models streaming
  /// libraries like cuBLAS-XT that do not cache inputs across tile products).
  bool drop_inputs_after_use = false;
  /// Per-task CPU-side runtime overhead, added to every kernel occupancy
  /// (task creation + scheduling cost; the paper credits XKBlas's small
  /// runtime for its reactivity on small matrices).
  double task_overhead = 0.0;
  /// Opt-in validation layer (race detection, coherence invariants,
  /// progress audit, event-stream hash).  Off by default: when disabled the
  /// run pays one null-pointer test per observation point.
  check::CheckConfig check;

  /// Reject nonsensical configurations with an actionable message instead
  /// of a hang or a silent misbehaviour deep in the run.  Called by the
  /// Runtime constructor; throws std::invalid_argument.
  void validate() const;
};

class Runtime {
 public:
  Runtime(Platform& plat, std::unique_ptr<Scheduler> sched,
          RuntimeOptions opt = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  mem::Registry& registry() { return registry_; }
  DataManager& data_manager() { return dm_; }
  Platform& platform() { return *plat_; }
  Scheduler& scheduler() { return *sched_; }

  /// Submit a task; dependencies are derived from its accesses.
  void submit(TaskDesc desc);

  /// Make the host copy of `h` valid once all producing tasks completed
  /// (the paper's xkblas_memory_coherent_async).  `on_complete` (optional)
  /// is invoked when the flush task finishes -- the service layer uses it
  /// to count a job's coherence tasks like any other task.
  void coherent_async(mem::DataHandle* h, std::function<void()> on_complete = {});

  /// Drain the simulation; returns the virtual completion time (the instant
  /// of the last *observable* event, so silent fault-plan or watchdog ticks
  /// never stretch the measured makespan).  When a checker is attached this
  /// also runs its end-of-run audit (counter reconciliation, completion
  /// check, final protocol scan).
  ///
  /// Exactly drain() followed by finalize_checks() -- the one-workload,
  /// one-exit entry point.  Long-running callers (xkb::svc) use the two
  /// halves directly: drain() may be re-entered after a caught FaultError
  /// to keep serving the surviving jobs, and finalize_checks() runs once,
  /// at end of service, only when no jobs were abandoned mid-flight.
  double run();

  /// First half of run(): drain the engine's event queue and return the
  /// last observable instant.  No end-of-run audit, no completion assert --
  /// callable again after a FaultError unwound the dispatch loop.
  double drain();

  /// Second half of run(): the checker's end-of-run audit when one is
  /// attached, otherwise the completed == submitted sanity assert.  Call
  /// once, when every submitted task is expected to have finished.
  void finalize_checks();

  /// The validation layer, or nullptr when RuntimeOptions::check.enabled
  /// was false.  Inspect checker()->ok() / report() / event_hash() after
  /// run().
  const check::Checker* checker() const { return checker_.get(); }

  // --- introspection for schedulers, tests and benches ---
  int num_gpus() const { return plat_->num_gpus(); }
  std::size_t queue_length(int dev) const { return devs_[dev].assigned.size(); }
  std::size_t tasks_submitted() const { return submitted_; }
  std::size_t tasks_completed() const { return completed_; }
  std::size_t steals() const { return steals_; }
  /// Not-yet-finished tasks migrated off a failed device.
  std::size_t task_remaps() const { return remaps_; }
  /// Producer tasks resubmitted to rebuild lost dirty tiles.
  std::size_t task_replays() const { return replays_; }

  /// Device-failure recovery entry point (bound to the fault injector's
  /// device_fail hook; exposed for tests): blacklist `g` in the platform,
  /// recover its replicas through the DataManager (promote survivors,
  /// replay producers), migrate its queued and in-flight tasks to live
  /// devices, and refill the prepare windows.
  void on_device_failure(int g);

 private:
  struct DevState {
    std::deque<Task*> assigned;
    int preparing = 0;
    bool in_queued = false;       ///< membership in Runtime::queued_
    bool steal_eligible = false;  ///< counted in Runtime::steal_eligible_
  };
  struct HandleSeq {
    Task* last_writer = nullptr;
    std::vector<Task*> readers;
    /// The completed task whose write produced the handle's current
    /// version -- the one a replay must re-execute (last_writer may be a
    /// later, not-yet-run writer).
    Task* version_writer = nullptr;
  };

  void on_ready(Task* t);
  void fill(int dev);
  void fill_all();
  /// Re-sync queued_ / steal_eligible_ after any mutation of
  /// devs_[g].assigned.  Every push/pop site calls this so fill_all can walk
  /// only devices that can actually start work (O(active), not O(devices)).
  void queue_changed(int g);
  Task* steal_for(int thief);
  void start_prepare(Task* t, int dev);
  void on_operands_ready(Task* t);
  void on_kernel_done(Task* t);
  void complete(Task* t);
  void run_host_task(Task* t);

  /// Validate that `h`'s lost current version can be rebuilt by re-running
  /// its producer; on success queue the resubmission (flushed after the
  /// DataManager's recovery scan finishes, so every needs-replay handle is
  /// registered before any replay fetches operands).  On failure `reason`
  /// explains why (kRW pre-image destroyed, inputs overwritten, ...).
  bool replay_producer(mem::DataHandle* h, std::string& reason);
  /// Submit a replayed producer, bypassing writer-after-reader edges on its
  /// output: pending readers are data-parked on the regenerated version,
  /// not ordered before it (ordering them first would deadlock).
  Task* submit_replay(TaskDesc desc, mem::DataHandle* out);
  int pick_alive_device(Task* t);
  [[noreturn]] void on_stuck(std::uint64_t pending);

  Platform* plat_;
  std::unique_ptr<Scheduler> sched_;
  RuntimeOptions opt_;
  std::unique_ptr<check::Checker> checker_;  // before dm_: observes its events
  mem::Registry registry_;
  DataManager dm_;

  std::vector<std::unique_ptr<Task>> tasks_;
  std::unordered_map<mem::DataHandle*, HandleSeq> seq_;
  std::vector<DevState> devs_;
  /// Devices with a non-empty assigned queue (ascending, mirrors DevState).
  std::set<int> queued_;
  /// Devices holding >= steal_min_victim queued tasks -- when zero, no
  /// steal_for scan can find a victim and fill_all skips idle devices.
  int steal_eligible_ = 0;
  /// Cached "ready.gpu<g>" series when an Observability layer was attached
  /// to the platform before construction; empty otherwise.
  std::vector<obs::Series*> ready_series_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t steals_ = 0;
  std::size_t remaps_ = 0;
  std::size_t replays_ = 0;
  std::uint64_t next_id_ = 1;

  /// Armed only when a fault injector is attached: silent ticks that turn a
  /// drained-queue-with-outstanding-work bug into a StuckProgress throw.
  std::unique_ptr<sim::Watchdog> watchdog_;
  /// Producer resubmissions validated during a device-failure scan, flushed
  /// once the DataManager's recovery pass returns.
  std::vector<std::pair<TaskDesc, mem::DataHandle*>> pending_replays_;
};

}  // namespace xkb::rt
