// The simulated multi-GPU machine: topology + channels + streams + caches.
//
// A Platform instantiates the resources the discrete-event simulation runs
// on, mirroring the DGX-1 of the paper:
//   * per host-link (PCIe switch) one channel per direction -- two GPUs
//     share each switch, so their H2D traffic contends, a first-order
//     limiter the paper identifies;
//   * per directed GPU pair one peer channel at the Fig. 2 bandwidth;
//   * per GPU one h2d/d2h submission view plus `kernel_streams` concurrent
//     kernel streams (XKaapi runs each operation type on its own stream
//     with multiple kernel streams -- Section II-B);
//   * per GPU a software-cache capacity (32 GB on the V100-SXM2).
// All operations are recorded in the Trace.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache.hpp"
#include "runtime/perf_model.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "topo/topology.hpp"
#include "trace/trace.hpp"

namespace xkb::check {
class Checker;
}

namespace xkb::obs {
class Observability;
}

namespace xkb::fault {
class Injector;
}

namespace xkb::rt {

struct PlatformOptions {
  /// Execute functional kernel payloads and real byte movement (tests);
  /// when false only virtual time advances (paper-scale benches).
  bool functional = false;
  int kernel_streams = 2;
  std::size_t device_capacity = 32ull << 30;  ///< bytes per GPU (V100 32GB)
  bool tracing = true;
  mem::EvictionPolicy eviction = mem::EvictionPolicy::kReadOnlyFirst;
};

class Platform {
 public:
  Platform(topo::Topology topo, PerfModel perf, PlatformOptions opt);

  sim::Engine& engine() { return engine_; }
  const topo::Topology& topology() const { return topo_; }
  const PerfModel& perf() const { return perf_; }
  const PlatformOptions& options() const { return opt_; }
  trace::Trace& trace() { return trace_; }
  mem::DeviceCache& cache(int dev) { return *caches_[dev]; }
  int num_gpus() const { return topo_.num_gpus(); }

  /// Attach/detach the validation layer (owned by the Runtime).  The
  /// DataManager reaches the checker through here; null when disabled.
  void set_checker(check::Checker* c) { checker_ = c; }
  check::Checker* checker() const { return checker_; }

  /// Attach/detach the observability layer: registers a link-utilization
  /// probe on every directed channel (host links per direction, every peer
  /// channel, the host worker).  Must run before the Runtime is constructed
  /// (it caches registry series pointers); null detaches all probes.
  void set_obs(obs::Observability* o);
  obs::Observability* obs() const { return obs_; }

  /// Attach the fault injector (owned by the caller, like obs): binds the
  /// platform-side link hooks so plan events can mutate the live topology
  /// and channels.  Must run before the Runtime is constructed -- the
  /// Runtime binds the device-failure hook and arms the plan.  The
  /// DataManager reaches the injector through here; null when disabled.
  void set_fault(fault::Injector* f);
  fault::Injector* fault() const { return fault_; }

  // Fault application (invoked by the injector's silent plan events and,
  // for device failure, by the Runtime after draining).  Each mutates the
  // dynamic topology state *and* mirrors the new bandwidth onto the live
  // channels, so both the heuristics' rank view and the DES cost model
  // shift at the same virtual instant.
  void apply_link_brownout(int a, int b, double fraction);
  void apply_link_heal(int a, int b);
  void apply_link_down(int a, int b);
  void apply_device_failure(int g);

  bool device_failed(int g) const { return topo_.device_failed(g); }
  int num_alive_gpus() const { return topo_.num_alive_gpus(); }

  /// Host -> device copy over the GPU's (possibly shared) host link.
  sim::Interval copy_h2d(int dev, std::size_t bytes, sim::Callback done);
  /// Device -> host copy.
  sim::Interval copy_d2h(int dev, std::size_t bytes, sim::Callback done);
  /// Direct peer copy (src must have a peer path to dst).
  sim::Interval copy_p2p(int src, int dst, std::size_t bytes,
                         sim::Callback done);

  /// Launch a kernel on the least-loaded kernel stream of `dev`.  The
  /// chosen stream index is written to `lane_out` when non-null (the
  /// checker's lane-FIFO happens-before edges need it).
  sim::Interval launch_kernel(int dev, double seconds, double flops,
                              const std::string& label, sim::Callback done,
                              int* lane_out = nullptr);

  /// Host-side work (layout conversions of the Chameleon LAPACK baseline).
  sim::Interval host_work(double seconds, sim::Callback done);

  /// Earliest time a new kernel could start on `dev`.
  sim::Time kernel_available_at(int dev) const;

  /// Aggregate busy time of all kernel streams of `dev`.
  double kernel_busy(int dev) const;

  /// Peer channels materialised so far (lazy: one per directed pair that
  /// actually moved bytes -- the topo_bench memory gate reads this).
  std::size_t num_p2p_channels() const { return p2p_.size(); }

 private:
  topo::Topology topo_;
  PerfModel perf_;
  PlatformOptions opt_;
  sim::Engine engine_;
  trace::Trace trace_;

  std::vector<std::unique_ptr<sim::Channel>> h2d_;  // per host link
  std::vector<std::unique_ptr<sim::Channel>> d2h_;  // per host link
  /// Directed peer channels, created on first use.  A 1024-device machine
  /// only pays for the pairs its workload actually exercises; creation is
  /// deterministic (single-threaded DES, and a Channel's constructor has no
  /// engine side effects).  std::map so detach/re-attach walks a sorted,
  /// stable order.
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel>> p2p_;
  std::vector<std::vector<std::unique_ptr<sim::FifoResource>>> kstreams_;
  std::unique_ptr<sim::FifoResource> host_worker_;
  std::vector<std::unique_ptr<mem::DeviceCache>> caches_;
  check::Checker* checker_ = nullptr;
  obs::Observability* obs_ = nullptr;
  fault::Injector* fault_ = nullptr;

  void sync_link_bandwidth(int a, int b);
  sim::Channel& p2p_channel(int src, int dst);
};

}  // namespace xkb::rt
