#include "runtime/scheduler.hpp"

#include <limits>

#include "runtime/runtime.hpp"

namespace xkb::rt {

int OwnerComputesScheduler::place(const Task& t, Runtime& rt) {
  // Owner-computes: run where the output tile lives.  The home (set by the
  // 2D block-cyclic default mapping or an explicit distribution) takes
  // precedence over the current dirty location so that a stolen task does
  // not permanently migrate its whole dependency chain.
  for (const TaskAccess& a : t.desc.accesses) {
    if (a.mode == Access::kR) continue;
    const mem::DataHandle* h = a.handle;
    if (h->home_device >= 0) return h->home_device;
    const int dirty = h->dirty_device();
    if (dirty >= 0) return dirty;
    const auto valid = h->valid_devices();
    if (!valid.empty()) return valid.front();
  }
  // No located output (e.g. first touch without a home): spread round-robin.
  return static_cast<int>(rr_++ % rt.num_gpus());
}

int DmdasScheduler::place(const Task& t, Runtime& rt) {
  Platform& plat = rt.platform();
  const auto& topo = plat.topology();
  const int n = rt.num_gpus();
  if (eta_.size() != static_cast<std::size_t>(n)) eta_.assign(n, 0.0);
  const double now = plat.engine().now();

  const double ktime =
      plat.perf().kernel_time(t.desc.flops, t.desc.min_dim, t.desc.eff_factor,
                              t.desc.single_precision);

  int best = 0;
  double best_cost = std::numeric_limits<double>::max();
  for (int g = 0; g < n; ++g) {
    // Estimated cost of moving the operands this device is missing.
    double xfer = 0.0;
    for (const TaskAccess& a : t.desc.accesses) {
      if (a.mode == Access::kW) continue;
      const mem::DataHandle* h = a.handle;
      if (h->dev[g].state == mem::ReplicaState::kValid) continue;
      if (h->dev[g].state == mem::ReplicaState::kInFlight) {
        // Already on its way here: the cost is the remaining wait, not a
        // fresh transfer (charging a full transfer double-counts the data).
        xfer += std::max(0.0, h->dev[g].eta - now);
        continue;
      }
      double bw = topo.host_bandwidth_gbps(g);
      for (int s : h->valid_devices())
        bw = std::max(bw, topo.gpu_bandwidth_gbps(s, g));
      xfer += static_cast<double>(h->bytes()) / (bw * 1e9);
    }
    const double start = std::max(eta_[g], now);
    const double done = start + xfer + ktime;
    if (done < best_cost) {
      best_cost = done;
      best = g;
    }
  }
  eta_[best] = best_cost;
  return best;
}

int RoundRobinScheduler::place(const Task&, Runtime& rt) {
  return static_cast<int>(next_++ % rt.num_gpus());
}

}  // namespace xkb::rt
