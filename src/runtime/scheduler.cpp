#include "runtime/scheduler.hpp"

#include <cassert>
#include <limits>

#include "runtime/runtime.hpp"

namespace xkb::rt {

int OwnerComputesScheduler::place(const Task& t, Runtime& rt) {
  Platform& plat = rt.platform();
  // Owner-computes: run where the output tile lives.  The home (set by the
  // 2D block-cyclic default mapping or an explicit distribution) takes
  // precedence over the current dirty location so that a stolen task does
  // not permanently migrate its whole dependency chain.  A failed device
  // cannot be an owner any more: fall through to the next locator.
  for (const TaskAccess& a : t.desc.accesses) {
    if (a.mode == Access::kR) continue;
    const mem::DataHandle* h = a.handle;
    if (h->home_device >= 0 && !plat.device_failed(h->home_device))
      return h->home_device;
    const int dirty = h->dirty_device();
    if (dirty >= 0 && !plat.device_failed(dirty)) return dirty;
    for (int g : h->valid_devices())
      if (!plat.device_failed(g)) return g;
  }
  // No located output (e.g. first touch without a home): spread round-robin
  // over the surviving devices.
  const int n = rt.num_gpus();
  for (int i = 0; i < n; ++i) {
    const int g = static_cast<int>(rr_++ % n);
    if (!plat.device_failed(g)) return g;
  }
  return 0;  // unreachable while at least one device is alive
}

int DmdasScheduler::place(const Task& t, Runtime& rt) {
  Platform& plat = rt.platform();
  const auto& topo = plat.topology();
  const int n = rt.num_gpus();
  if (eta_.size() != static_cast<std::size_t>(n)) eta_.assign(n, 0.0);
  const double now = plat.engine().now();

  const double ktime =
      plat.perf().kernel_time(t.desc.flops, t.desc.min_dim, t.desc.eff_factor,
                              t.desc.single_precision);

  int best = -1;
  double best_cost = std::numeric_limits<double>::max();
  for (int g = 0; g < n; ++g) {
    if (plat.device_failed(g)) continue;
    // Estimated cost of moving the operands this device is missing.
    double xfer = 0.0;
    for (const TaskAccess& a : t.desc.accesses) {
      if (a.mode == Access::kW) continue;
      const mem::DataHandle* h = a.handle;
      if (h->dev[g].state == mem::ReplicaState::kValid) continue;
      if (h->dev[g].state == mem::ReplicaState::kInFlight) {
        // Already on its way here: the cost is the remaining wait, not a
        // fresh transfer (charging a full transfer double-counts the data).
        xfer += std::max(0.0, h->dev[g].eta - now);
        continue;
      }
      double bw = topo.host_bandwidth_gbps(g);
      for (int s : h->valid_devices())
        bw = std::max(bw, topo.gpu_bandwidth_gbps(s, g));
      xfer += static_cast<double>(h->bytes()) / (bw * 1e9);
    }
    const double start = std::max(eta_[g], now);
    const double done = start + xfer + ktime;
    if (done < best_cost) {
      best_cost = done;
      best = g;
    }
  }
  assert(best >= 0 && "dmdas: no alive device to place on");
  eta_[best] = best_cost;
  return best;
}

int RoundRobinScheduler::place(const Task&, Runtime& rt) {
  const int n = rt.num_gpus();
  for (int i = 0; i < n; ++i) {
    const int g = static_cast<int>(next_++ % n);
    if (!rt.platform().device_failed(g)) return g;
  }
  return 0;  // unreachable while at least one device is alive
}

}  // namespace xkb::rt
