#include "runtime/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/injector.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"

namespace xkb::rt {

namespace {

check::Mode mirror(Access a) {
  switch (a) {
    case Access::kR: return check::Mode::kR;
    case Access::kW: return check::Mode::kW;
    case Access::kRW: return check::Mode::kRW;
  }
  return check::Mode::kR;
}

check::Policy mirror(SourcePolicy p) {
  switch (p) {
    case SourcePolicy::kTopologyAware: return check::Policy::kTopologyAware;
    case SourcePolicy::kFirstValid: return check::Policy::kFirstValid;
    case SourcePolicy::kSwitchPeer: return check::Policy::kSwitchPeer;
    case SourcePolicy::kHostOnly: return check::Policy::kHostOnly;
  }
  return check::Policy::kTopologyAware;
}

}  // namespace

void RuntimeOptions::validate() const {
  if (prepare_window <= 0)
    throw std::invalid_argument(
        "RuntimeOptions::prepare_window must be >= 1 (got " +
        std::to_string(prepare_window) +
        "): a non-positive window never starts preparing any task");
  if (steal_min_victim < 1)
    throw std::invalid_argument(
        "RuntimeOptions::steal_min_victim must be >= 1 (got " +
        std::to_string(steal_min_victim) +
        "): a victim cannot be robbed of tasks it does not have");
  if (!(task_overhead >= 0.0))
    throw std::invalid_argument(
        "RuntimeOptions::task_overhead must be a non-negative number of"
        " seconds (got " +
        std::to_string(task_overhead) + ")");
}

Runtime::Runtime(Platform& plat, std::unique_ptr<Scheduler> sched,
                 RuntimeOptions opt)
    : plat_(&plat),
      sched_(std::move(sched)),
      opt_(opt),
      registry_(plat.num_gpus()),
      dm_(plat, opt.heuristics),
      devs_(plat.num_gpus()) {
  opt_.validate();  // before any observer is registered on the engine
  if (opt_.check.enabled) {
    checker_ = std::make_unique<check::Checker>(
        opt_.check, plat.num_gpus(), plat.options().kernel_streams,
        mirror(opt_.heuristics.source), opt_.heuristics.optimistic_d2d);
    plat_->set_checker(checker_.get());
    plat_->engine().set_observer(
        [c = checker_.get()](sim::Time t, std::uint64_t seq) {
          c->on_engine_event(t, seq);
        });
  }
  if (obs::Observability* o = plat_->obs()) {
    ready_series_.reserve(static_cast<std::size_t>(plat.num_gpus()));
    for (int g = 0; g < plat.num_gpus(); ++g)
      ready_series_.push_back(o->ready_series(g));
  }
  if (fault::Injector* f = plat_->fault()) {
    fault::Injector::Hooks hk;
    hk.device_fail = [this](int g) { on_device_failure(g); };
    f->bind(std::move(hk));
    f->arm(plat_->engine(), plat.num_gpus());
    watchdog_ = std::make_unique<sim::Watchdog>(
        plat_->engine(), sim::Watchdog::Options{},
        [this] { return static_cast<std::uint64_t>(submitted_ - completed_); },
        [this](std::uint64_t pending) { on_stuck(pending); });
  }
}

Runtime::~Runtime() {
  if (checker_) {
    plat_->set_checker(nullptr);
    plat_->engine().set_observer({});
  }
}

void Runtime::submit(TaskDesc desc) {
  tasks_.push_back(std::make_unique<Task>(std::move(desc)));
  Task* t = tasks_.back().get();
  t->id = next_id_++;
  ++submitted_;

  // Derive dependencies from program order of accesses.
  std::vector<Task*> preds;
  for (const TaskAccess& a : t->desc.accesses) {
    HandleSeq& hs = seq_[a.handle];
    if (a.mode == Access::kR) {
      if (hs.last_writer && !hs.last_writer->done)
        preds.push_back(hs.last_writer);
      hs.readers.push_back(t);
    } else {
      if (hs.last_writer && !hs.last_writer->done)
        preds.push_back(hs.last_writer);
      for (Task* r : hs.readers)
        if (!r->done && r != t) preds.push_back(r);
      hs.readers.clear();
      hs.last_writer = t;
    }
  }
  // Dedup in *id* order, never pointer order: sorting Task pointers would
  // bake heap addresses into pred_ids (an xkb-address-ordering violation)
  // and force every downstream consumer to re-sort defensively.
  std::sort(preds.begin(), preds.end(),
            [](const Task* a, const Task* b) { return a->id < b->id; });
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  preds.erase(std::remove(preds.begin(), preds.end(), t), preds.end());
  if (checker_) {
    // Test-only fault: lose one dependence edge (the checker's race
    // detector must catch the resulting unordered accesses).
    const check::Faults& f = checker_->faults();
    if (f.skip_edge_succ == t->id)
      preds.erase(std::remove_if(preds.begin(), preds.end(),
                                 [&](Task* p) {
                                   return p->id == f.skip_edge_pred;
                                 }),
                  preds.end());
  }
  for (Task* p : preds) {
    p->successors.push_back(t);
    ++t->pending_deps;
  }
  if (checker_) {
    std::vector<std::pair<const mem::DataHandle*, check::Mode>> acc;
    acc.reserve(t->desc.accesses.size());
    for (const TaskAccess& a : t->desc.accesses)
      acc.emplace_back(a.handle, mirror(a.mode));
    std::vector<std::uint64_t> pred_ids;
    pred_ids.reserve(preds.size());
    for (Task* p : preds) pred_ids.push_back(p->id);
    checker_->on_submit(t->id, t->desc.label, acc, std::move(pred_ids));
  }
  if (watchdog_) watchdog_->ensure_armed();
  if (t->pending_deps == 0) on_ready(t);
}

Task* Runtime::submit_replay(TaskDesc desc, mem::DataHandle* out) {
  tasks_.push_back(std::make_unique<Task>(std::move(desc)));
  Task* t = tasks_.back().get();
  t->id = next_id_++;
  ++submitted_;

  std::vector<Task*> preds;
  for (const TaskAccess& a : t->desc.accesses) {
    HandleSeq& hs = seq_[a.handle];
    if (a.handle == out && a.mode != Access::kR) {
      // Regenerating the lost version in place: pending readers are parked
      // on the *data* (they re-plan off this write's mark_written), not
      // ordered before it -- writer-after-reader edges here would deadlock,
      // since those readers are waiting for this very write.
      hs.version_writer = nullptr;  // stale until the replay completes
      if (!hs.last_writer || hs.last_writer->done) hs.last_writer = t;
      continue;
    }
    if (hs.last_writer && !hs.last_writer->done) preds.push_back(hs.last_writer);
    hs.readers.push_back(t);
  }
  std::sort(preds.begin(), preds.end(),
            [](const Task* a, const Task* b) { return a->id < b->id; });
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  for (Task* p : preds) {
    p->successors.push_back(t);
    ++t->pending_deps;
  }
  if (checker_) {
    std::vector<std::pair<const mem::DataHandle*, check::Mode>> acc;
    acc.reserve(t->desc.accesses.size());
    for (const TaskAccess& a : t->desc.accesses)
      acc.emplace_back(a.handle, mirror(a.mode));
    std::vector<std::uint64_t> pred_ids;
    pred_ids.reserve(preds.size());
    for (Task* p : preds) pred_ids.push_back(p->id);
    checker_->on_submit(t->id, t->desc.label, acc, std::move(pred_ids));
  }
  if (watchdog_) watchdog_->ensure_armed();
  if (t->pending_deps == 0) on_ready(t);
  return t;
}

void Runtime::coherent_async(mem::DataHandle* h,
                             std::function<void()> on_complete) {
  TaskDesc d;
  d.label = "coherent";
  d.accesses.push_back({h, Access::kR});
  d.host_task = true;
  d.on_complete = std::move(on_complete);
  submit(std::move(d));
}

void Runtime::on_ready(Task* t) {
  if (t->desc.host_task) {
    run_host_task(t);
    return;
  }
  int dev = t->desc.forced_device;
  if (dev >= 0 && plat_->device_failed(dev)) dev = -1;  // owner died: re-place
  if (dev < 0) dev = sched_->place(*t, *this);
  assert(dev >= 0 && dev < num_gpus() && !plat_->device_failed(dev));
  t->device = dev;
  devs_[dev].assigned.push_back(t);
  queue_changed(dev);
  fill_all();
}

void Runtime::queue_changed(int g) {
  DevState& ds = devs_[g];
  const bool queued = !ds.assigned.empty();
  if (queued != ds.in_queued) {
    if (queued)
      queued_.insert(g);
    else
      queued_.erase(g);
    ds.in_queued = queued;
  }
  const bool eligible =
      ds.assigned.size() >= static_cast<std::size_t>(opt_.steal_min_victim);
  if (eligible != ds.steal_eligible) {
    steal_eligible_ += eligible ? 1 : -1;
    ds.steal_eligible = eligible;
  }
}

void Runtime::fill_all() {
  // A device can start work only if it has queued tasks or can steal some.
  // When no victim is steal-eligible, fill(g) of an unqueued device is a
  // no-op (its own queue is empty and steal_for early-outs), so walking the
  // queued set -- ascending, like the historical 0..n loop visited them --
  // produces the identical effect sequence at O(active) instead of
  // O(devices) per event.  With an eligible victim the full scan runs:
  // any idle device might steal, exactly as before.
  if (sched_->allows_stealing() && steal_eligible_ > 0) {
    for (int g = 0; g < num_gpus(); ++g) fill(g);
  } else {
    // Local snapshot: fill() mutates queued_, and a zero-operand task can
    // complete synchronously and re-enter fill_all() mid-walk.
    const std::vector<int> snapshot(queued_.begin(), queued_.end());
    for (int g : snapshot) fill(g);
  }
  if (!ready_series_.empty()) {
    const sim::Time now = plat_->engine().now();
    for (int g = 0; g < num_gpus(); ++g)
      ready_series_[g]->sample(now,
                               static_cast<double>(devs_[g].assigned.size()));
  }
}

void Runtime::fill(int dev) {
  if (plat_->device_failed(dev)) return;
  DevState& ds = devs_[dev];
  while (ds.preparing < opt_.prepare_window) {
    Task* t = nullptr;
    if (!ds.assigned.empty()) {
      t = ds.assigned.front();
      ds.assigned.pop_front();
      queue_changed(dev);
    } else if (sched_->allows_stealing()) {
      t = steal_for(dev);
    }
    if (!t) break;
    start_prepare(t, dev);
  }
}

Task* Runtime::steal_for(int thief) {
  // No device holds steal_min_victim queued tasks: the victim scan below
  // cannot find one, so skip its O(devices) walk entirely.  The counter is
  // exact (queue_changed tracks the >= threshold per device), so this
  // early-out never changes which task is stolen.
  if (steal_eligible_ == 0) return nullptr;
  int victim = -1;
  std::size_t most = static_cast<std::size_t>(opt_.steal_min_victim);
  for (int g = 0; g < num_gpus(); ++g) {
    if (g == thief || plat_->device_failed(g)) continue;
    if (devs_[g].assigned.size() >= most) {
      most = devs_[g].assigned.size();
      victim = g;
    }
  }
  if (victim < 0) return nullptr;
  std::deque<Task*>& q = devs_[victim].assigned;
  if (opt_.locality_stealing) {
    // Prefer a task with at least one operand already on the thief.  peek()
    // keeps the probe read-only: a locality scan must not materialise
    // replica entries on every candidate's operands.
    for (auto it = q.rbegin(); it != q.rend(); ++it) {
      bool local = false;
      for (const TaskAccess& a : (*it)->desc.accesses) {
        const mem::Replica* r = a.handle->dev.peek(thief);
        if (r && r->state == mem::ReplicaState::kValid) {
          local = true;
          break;
        }
      }
      if (local) {
        Task* t = *it;
        q.erase(std::next(it).base());
        ++steals_;
        queue_changed(victim);
        return t;
      }
    }
    return nullptr;  // nothing local: stay idle rather than move data
  }
  Task* t = q.back();
  q.pop_back();
  ++steals_;
  queue_changed(victim);
  return t;
}

void Runtime::start_prepare(Task* t, int dev) {
  t->prepared = true;
  t->device = dev;
  devs_[dev].preparing++;
  t->operands_missing = static_cast<int>(t->desc.accesses.size());
  if (t->operands_missing == 0) {
    on_operands_ready(t);
    return;
  }
  for (const TaskAccess& a : t->desc.accesses) {
    // The epoch guard cancels acquisitions of executions that were migrated
    // off a failed device: a stale arrival must not tick the re-execution's
    // operand count.
    auto arrived = [this, t, e = t->epoch] {
      if (t->epoch != e || t->done) return;
      if (--t->operands_missing == 0) on_operands_ready(t);
    };
    XKB_ASSERT_INLINE_CAPTURE(arrived);
    dm_.acquire(a.handle, dev, a.mode, std::move(arrived));
  }
}

void Runtime::on_operands_ready(Task* t) {
  const int dev = t->device;
  devs_[dev].preparing--;
  if (t->desc.flops <= 0.0 && !t->desc.fn) {
    // Pure data-placement task (2D block-cyclic distribution): no kernel.
    on_kernel_done(t);
  } else {
    const double sec = opt_.task_overhead +
                       plat_->perf().kernel_time(
                           t->desc.flops, t->desc.min_dim, t->desc.eff_factor,
                           t->desc.single_precision);
    int lane = 0;
    auto done = [this, t, e = t->epoch] {
      if (t->epoch != e) return;  // migrated
      on_kernel_done(t);
    };
    XKB_ASSERT_INLINE_CAPTURE(done);
    auto iv = plat_->launch_kernel(dev, sec, t->desc.flops, t->desc.label,
                                   std::move(done), &lane);
    if (checker_) checker_->on_kernel_issue(t->id, dev, lane, iv.start, iv.end);
  }
  fill_all();
}

void Runtime::on_kernel_done(Task* t) {
  const int dev = t->device;
  if (plat_->options().functional && t->desc.fn)
    t->desc.fn(FunctionalCtx(&t->desc.accesses, dev));
  // Race bookkeeping before the protocol transitions: the write's clock is
  // recorded first, then mark_written bumps the shadow versions.
  if (checker_) checker_->on_task_finish(t->id, dev, plat_->engine().now());
  for (const TaskAccess& a : t->desc.accesses)
    if (a.mode != Access::kR) dm_.mark_written(a.handle, dev);
  // Replay bookkeeping: remember what this task produced and what versions
  // it consumed (a replay is only sound while its inputs are unchanged).
  t->access_versions.clear();
  t->access_versions.reserve(t->desc.accesses.size());
  for (const TaskAccess& a : t->desc.accesses)
    t->access_versions.push_back(a.handle->version);
  for (const TaskAccess& a : t->desc.accesses)
    if (a.mode != Access::kR) seq_[a.handle].version_writer = t;
  for (const TaskAccess& a : t->desc.accesses) dm_.unpin(a.handle, dev);
  if (opt_.drop_inputs_after_use) {
    for (const TaskAccess& a : t->desc.accesses) {
      mem::Replica& r = a.handle->dev[dev];
      if (a.mode == Access::kR && r.pins == 0 && !r.dirty && r.resident &&
          r.state == mem::ReplicaState::kValid) {
        plat_->cache(dev).release(a.handle);
        if (!a.handle->dev_buf.empty()) {
          a.handle->dev_buf[dev].clear();
          a.handle->dev_buf[dev].shrink_to_fit();
        }
      }
    }
  }
  complete(t);
}

void Runtime::run_host_task(Task* t) {
  t->operands_missing = static_cast<int>(t->desc.accesses.size());
  auto finish = [this, t] {
    if (t->desc.host_seconds > 0.0)
      plat_->host_work(t->desc.host_seconds, [this, t] { complete(t); });
    else
      complete(t);
  };
  if (t->operands_missing == 0) {
    finish();
    return;
  }
  for (const TaskAccess& a : t->desc.accesses) {
    if (a.mode == Access::kR) {
      // memory_coherent: pull the authoritative copy back to the host.
      auto flushed = [this, t, finish] {
        if (--t->operands_missing == 0) finish();
      };
      XKB_ASSERT_INLINE_CAPTURE(flushed);
      dm_.flush_to_host(a.handle, std::move(flushed));
    } else {
      // host_overwrite: the CPU produced new data; device replicas die.
      dm_.host_write(a.handle);
      if (--t->operands_missing == 0) finish();
    }
  }
}

void Runtime::complete(Task* t) {
  assert(!t->done);
  t->done = true;
  ++completed_;
  if (checker_) {
    checker_->on_task_complete(t->id, plat_->engine().now());
    // Test-only fault: swallow the completion event -- successors never
    // become ready and the progress auditor must report them as stuck.
    if (checker_->faults().drop_completion_task == t->id) {
      --completed_;  // the runtime itself never saw the event
      return;
    }
  }
  if (t->desc.on_complete) t->desc.on_complete();
  for (Task* s : t->successors)
    if (--s->pending_deps == 0) on_ready(s);
  fill_all();
}

void Runtime::on_device_failure(int g) {
  if (plat_->device_failed(g)) return;  // idempotent
  if (plat_->num_alive_gpus() <= 1)
    throw fault::FaultError("device-fail of gpu" + std::to_string(g) +
                            ": no surviving GPU to recover onto");
  plat_->apply_device_failure(g);  // topology blacklist + obs fault mark
  if (checker_) checker_->on_device_failure(g);

  // Detach g's queued work before replica recovery: the re-planned fetches
  // and replay submissions below must never land on its queues.
  std::deque<Task*> queued = std::move(devs_[g].assigned);
  devs_[g].assigned.clear();
  queue_changed(g);
  std::vector<Task*> inflight;
  for (const auto& up : tasks_) {
    Task* t = up.get();
    if (!t->done && t->prepared && !t->desc.host_task && t->device == g)
      inflight.push_back(t);
  }
  devs_[g].preparing = 0;

  // Replica recovery.  The callback only *validates* producer replays and
  // queues their descriptions; actual submission happens after the scan, so
  // every needs-replay handle is registered before any replay task starts
  // fetching operands (which may themselves be lost tiles that park).
  pending_replays_.clear();
  dm_.on_device_failure(g, registry_.all(),
                        [this](mem::DataHandle* h, std::string& reason) {
                          return replay_producer(h, reason);
                        });
  auto replays = std::move(pending_replays_);
  pending_replays_.clear();
  for (auto& [desc, out] : replays) {
    Task* nt = submit_replay(std::move(desc), out);
    ++replays_;
    if (checker_) checker_->on_replay(out, nt->id);
    if (obs::Observability* o = plat_->obs()) o->count_fault("replay");
  }

  // Migrate in-flight executions: the epoch bump turns their outstanding
  // operand-arrival and kernel-completion callbacks into dead letters, and
  // the task restarts preparation on a live device (at the front of its
  // queue: it already burned window budget once).
  for (Task* t : inflight) {
    t->epoch++;
    t->prepared = false;
    t->operands_missing = 0;
    const int nd = pick_alive_device(t);
    if (checker_) checker_->on_task_remap(t->id, g, nd);
    if (obs::Observability* o = plat_->obs()) o->count_fault("task_remap");
    ++remaps_;
    t->device = nd;
    devs_[nd].assigned.push_front(t);
    queue_changed(nd);
  }
  // Queued (never-started) tasks just re-place.
  for (Task* t : queued) {
    const int nd = pick_alive_device(t);
    t->device = nd;
    devs_[nd].assigned.push_back(t);
    queue_changed(nd);
  }
  if (watchdog_) watchdog_->ensure_armed();
  fill_all();
}

bool Runtime::replay_producer(mem::DataHandle* h, std::string& reason) {
  auto it = seq_.find(h);
  Task* p = it != seq_.end() ? it->second.version_writer : nullptr;
  if (!p) {
    reason = "no completed producer is recorded for the current version";
    return false;
  }
  if (!p->done) return true;  // its in-flight re-execution rewrites the tile
  int writes = 0;
  for (std::size_t i = 0; i < p->desc.accesses.size(); ++i) {
    const TaskAccess& a = p->desc.accesses[i];
    if (a.mode == Access::kRW) {
      reason = "producer '" + p->desc.label + "' (task " +
               std::to_string(p->id) +
               ") updates the tile in place: its pre-image died with the"
               " replica";
      return false;
    }
    if (a.mode == Access::kW) ++writes;
    if (a.mode == Access::kR && i < p->access_versions.size() &&
        a.handle->version != p->access_versions[i]) {
      reason = "input tile " + std::to_string(a.handle->id) +
               " of producer '" + p->desc.label +
               "' was overwritten after it ran (version " +
               std::to_string(a.handle->version) + ", consumed " +
               std::to_string(p->access_versions[i]) + ")";
      return false;
    }
  }
  if (writes != 1) {
    reason = "producer '" + p->desc.label + "' writes " +
             std::to_string(writes) +
             " tiles: a multi-output replay would clobber live data";
    return false;
  }
  TaskDesc d = p->desc;
  d.label += "+replay";
  d.forced_device = -1;  // the original owner may be the dead device
  d.on_complete = {};    // bookkeeping already ran on the original completion
  pending_replays_.emplace_back(std::move(d), h);
  return true;
}

int Runtime::pick_alive_device(Task* t) {
  int nd = t->desc.forced_device;
  if (nd < 0 || plat_->device_failed(nd)) nd = sched_->place(*t, *this);
  if (nd < 0 || nd >= num_gpus() || plat_->device_failed(nd)) {
    nd = -1;
    for (int d = 0; d < num_gpus(); ++d)
      if (!plat_->device_failed(d)) {
        nd = d;
        break;
      }
  }
  assert(nd >= 0 && "no alive device to place on");
  return nd;
}

void Runtime::on_stuck(std::uint64_t pending) {
  std::ostringstream os;
  os << "no observable progress while " << pending
     << " tasks are outstanding; first stuck tasks:";
  int shown = 0;
  for (const auto& up : tasks_) {
    const Task* t = up.get();
    if (t->done) continue;
    if (++shown > 8) {
      os << "\n  ...";
      break;
    }
    os << "\n  task " << t->id << " '" << t->desc.label << "' dev "
       << t->device << " deps=" << t->pending_deps
       << " operands_missing=" << t->operands_missing
       << (t->prepared ? " (preparing)" : "");
  }
  // Compose the flight-recorder dump at the stall site, where the last-N
  // timeline still shows the events leading up to it.  The dump is stashed
  // on the Observability instance; the bench skeleton retrieves it after
  // the throw unwinds Engine::run.
  if (obs::Observability* o = plat_->obs()) {
    o->finalize_registry();
    obs::LedgerMeta lm = o->ledger_meta();  // registered by the skeleton
    if (lm.lib.empty()) lm.lib = "(stalled)";
    const obs::RunLedger snap = obs::build_ledger(
        plat_->trace(), plat_->topology(), o, 0, std::move(lm));
    o->set_flight_dump(o->flight().dump_json("watchdog-stall: " + os.str(),
                                             obs::ledger_json(snap)));
  }
  throw fault::StuckProgress(os.str());
}

double Runtime::drain() {
  plat_->engine().run();
  // Silent events (fault plans, watchdog ticks) may outlive the workload;
  // the makespan is the instant of the last observable event.
  return plat_->engine().last_observable_time();
}

void Runtime::finalize_checks() {
  if (checker_) {
    const TransferStats& ts = dm_.stats();
    check::StatsView sv;
    sv.h2d = ts.h2d;
    sv.d2h = ts.d2h;
    sv.d2d = ts.d2d;
    sv.optimistic_waits = ts.optimistic_waits;
    sv.forced_waits = ts.forced_waits;
    sv.transfer_aborts = ts.transfer_aborts;
    sv.submitted = submitted_;
    sv.completed = completed_;
    checker_->finalize(sv);
  } else {
    assert(completed_ == submitted_ && "tasks stuck: dependency or data bug");
  }
}

double Runtime::run() {
  const double t = drain();
  finalize_checks();
  return t;
}

}  // namespace xkb::rt
