// Task placement policies.
//
// The paper's point is that its heuristics are *scheduler-agnostic*: they sit
// between the scheduler's placement decision and the transfer engine.  We
// therefore keep placement behind one interface and provide the policies the
// evaluated libraries use:
//
//   * OwnerComputesScheduler -- XKaapi/XKBlas: map a task to the device that
//     owns its output tile (dirty replica, else the tile's home from the 2D
//     block-cyclic default mapping), with work stealing when a device runs
//     dry.  The stealing is locality-blind, which is how the paper explains
//     the SYR2K/SYRK work imbalance it observes on XKBlas.
//   * DmdasScheduler -- the StarPU dmdas policy used for Chameleon: place
//     each ready task where its estimated completion time (device ETA +
//     estimated transfer cost + kernel time) is minimal.  No stealing.
//   * RoundRobinScheduler -- static interleaving (cuBLAS-XT-style block
//     distribution when the baseline does not force placement itself).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/task.hpp"

namespace xkb::rt {

class Runtime;

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Choose the device for a task whose dependencies are satisfied.
  virtual int place(const Task& t, Runtime& rt) = 0;
  virtual bool allows_stealing() const { return false; }
  virtual const char* name() const = 0;
};

class OwnerComputesScheduler : public Scheduler {
 public:
  explicit OwnerComputesScheduler(bool stealing = true)
      : stealing_(stealing) {}
  int place(const Task& t, Runtime& rt) override;
  bool allows_stealing() const override { return stealing_; }
  const char* name() const override { return "owner-computes+ws"; }

 private:
  bool stealing_;
  std::uint64_t rr_ = 0;  // fallback for tasks with no located output
};

class DmdasScheduler : public Scheduler {
 public:
  int place(const Task& t, Runtime& rt) override;
  const char* name() const override { return "dmdas"; }

 private:
  std::vector<double> eta_;  // estimated ready time per device
};

class RoundRobinScheduler : public Scheduler {
 public:
  int place(const Task& t, Runtime& rt) override;
  const char* name() const override { return "round-robin"; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace xkb::rt
