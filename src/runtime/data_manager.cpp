#include "runtime/data_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <sstream>
#include <utility>

#include "check/check.hpp"
#include "fault/injector.hpp"
#include "obs/obs.hpp"
#include "util/selfprof.hpp"

namespace xkb::rt {

namespace {

/// Host -> dense: compact a strided LAPACK-layout tile into tile form
/// (the cudaMemcpy2D compaction of the paper: ld becomes m).
void pack_tile(const mem::DataHandle& h, std::byte* dst) {
  const auto* src = static_cast<const std::byte*>(h.host_ptr);
  const std::size_t col = h.m * h.wordsize;
  for (std::size_t j = 0; j < h.n; ++j)
    std::memcpy(dst + j * col, src + j * h.ld * h.wordsize, col);
}

/// Dense -> host: scatter a compact tile back into the strided host view.
void unpack_tile(const mem::DataHandle& h, const std::byte* src) {
  auto* dst = static_cast<std::byte*>(h.host_ptr);
  const std::size_t col = h.m * h.wordsize;
  for (std::size_t j = 0; j < h.n; ++j)
    std::memcpy(dst + j * h.ld * h.wordsize, src + j * col, col);
}

std::string endpoint_name(int dev) {
  return dev >= 0 ? "gpu" + std::to_string(dev) : std::string("host");
}

}  // namespace

void DataManager::acquire(mem::DataHandle* h, int dev, Access mode,
                          sim::Callback done) {
  mem::Replica& r = h->dev[dev];
  r.pins++;  // pinned from request to task completion
  if (mode == Access::kW) {
    // Write-only: allocation suffices, no data movement.
    acquire_write(h, dev, std::move(done));
    return;
  }
  ensure_valid(h, dev, std::move(done));
}

void DataManager::acquire_write(mem::DataHandle* h, int dev,
                                sim::Callback done) {
  if (!try_reserve_or_defer(h, dev, done, &DataManager::acquire_write)) return;
  plat_->engine().schedule_after(0.0, std::move(done));
}

bool DataManager::try_reserve_or_defer(mem::DataHandle* h, int dev,
                                       sim::Callback& done, RetryFn retry) {
  try {
    reserve_with_flushes(h, dev);
    consecutive_oom_ = 0;
    return true;
  } catch (const mem::OutOfDeviceMemory&) {
    // Everything evictable is pinned by in-flight work: wait for some of it
    // to complete and retry.  A long streak with no successful reservation
    // anywhere means the working set genuinely exceeds device memory.
    if (++consecutive_oom_ > 100000) throw;
    stats_.oom_deferrals++;
    plat_->engine().schedule_after(
        50e-6, [this, h, dev, retry, done = std::move(done)]() mutable {
          (this->*retry)(h, dev, std::move(done));
        });
    return false;
  }
}

void DataManager::prefetch(mem::DataHandle* h, int dev, sim::Callback done) {
  ensure_valid(h, dev, std::move(done));
}

void DataManager::unpin(mem::DataHandle* h, int dev) {
  mem::Replica& r = h->dev[dev];
  assert(r.pins > 0);
  r.pins--;
}

void DataManager::ensure_valid(mem::DataHandle* h, int dev,
                               sim::Callback done) {
  mem::Replica& r = h->dev[dev];
  if (r.state == mem::ReplicaState::kValid) {
    if (obs::Observability* o = plat_->obs())
      o->on_cache_ref(dev, obs::CacheRef::kHit);
    plat_->cache(dev).touch(h, plat_->engine().now());
    plat_->engine().schedule_after(0.0, std::move(done));
    return;
  }
  if (r.state == mem::ReplicaState::kInFlight) {
    if (obs::Observability* o = plat_->obs())
      o->on_cache_ref(dev, obs::CacheRef::kInFlightHit);
    r.waiters.push_back(std::move(done));
    return;
  }

  if (!try_reserve_or_defer(h, dev, done, &DataManager::ensure_valid)) return;

  if (obs::Observability* o = plat_->obs())
    o->on_cache_ref(dev, obs::CacheRef::kMiss);
  if (plat_->options().functional && h->dev_buf.empty())
    h->dev_buf.resize(plat_->num_gpus());
  if (plat_->options().functional && h->dev_buf[dev].size() != h->bytes())
    h->dev_buf[dev].resize(h->bytes());
  r.state = mem::ReplicaState::kInFlight;
  r.waiters.push_back(std::move(done));
  plan_fetch(h, dev);
}

void DataManager::plan_fetch(mem::DataHandle* h, int dev) {
  prof::ScopedTimer pt(prof::Phase::kDmFetch);
  mem::Replica& r = h->dev[dev];
  assert(r.state == mem::ReplicaState::kInFlight);
  // Mask the destination while choosing: a re-planned fetch is itself
  // kInFlight and must never pick (or chain on) itself.
  r.state = mem::ReplicaState::kInvalid;
  const Source s = choose_source(*h, dev);
  r.state = mem::ReplicaState::kInFlight;

  if (s.kind == Source::kNone) {
    // No copy of the bytes exists anywhere.  Legal only while a producer
    // replay is rebuilding the tile: park until its mark_written re-plans.
    if (!replay_pending_.count(h)) {
      std::ostringstream os;
      os << "no copy of tile " << h->id << " (version " << h->version
         << ") exists anywhere and no replay is pending: fetch to gpu" << dev
         << " cannot be satisfied";
      throw fault::UnrecoverableDataLoss(os.str());
    }
    r.fetch_src = mem::kFetchParked;
    r.fetch_waiting = false;
    if (obs::Observability* o = plat_->obs()) o->count_fault("parked_fetch");
    return;
  }

  if (obs::Observability* o = plat_->obs()) {
    obs::Decision d;
    d.t = plat_->engine().now();
    d.handle = h->id;
    d.dst = dev;
    switch (s.kind) {
      case Source::kHost: d.pick = obs::Pick::kHost; break;
      case Source::kDevice: d.pick = obs::Pick::kDevice; break;
      case Source::kWaitDevice: d.pick = obs::Pick::kWaitDevice; break;
      case Source::kWaitHost: d.pick = obs::Pick::kWaitHost; break;
      case Source::kNone: break;  // handled above
    }
    d.picked_dev = s.dev;
    d.forced = s.forced;
    const auto& topo = plat_->topology();
    for (int g : h->valid_devices())
      d.candidates.push_back({g, topo.p2p_perf_rank(g, dev), false});
    for (int g : h->inflight_devices())
      if (g != dev) d.candidates.push_back({g, topo.p2p_perf_rank(g, dev), true});
    o->on_decision(std::move(d));
  }
  if (check::Checker* c = plat_->checker()) {
    check::SourceKind k = check::SourceKind::kHost;
    switch (s.kind) {
      case Source::kHost: k = check::SourceKind::kHost; break;
      case Source::kDevice: k = check::SourceKind::kDevice; break;
      case Source::kWaitDevice: k = check::SourceKind::kWaitDevice; break;
      case Source::kWaitHost: k = check::SourceKind::kWaitHost; break;
      case Source::kNone: break;  // handled above
    }
    c->on_source_choice(h, dev, k, s.dev, s.forced);
  }

  switch (s.kind) {
    case Source::kHost:
      issue_h2d(h, dev);
      break;
    case Source::kDevice:
      h->dev[s.dev].pins++;  // keep the source alive during the copy
      issue_p2p(h, s.dev, dev);
      break;
    case Source::kWaitDevice: {
      // Chain on the in-flight reception.  Only waits *chosen* by the
      // optimistic heuristic count towards its ablation counter; waits forced
      // by coherence (the in-flight copy is the only one) fire under every
      // configuration and are tallied separately.
      const int g = s.dev;
      (s.forced ? stats_.forced_waits : stats_.optimistic_waits)++;
      if (obs::Observability* o = plat_->obs())
        o->on_wait(h->id, g, dev, s.forced);
      h->dev[g].pins++;  // survive until the forwarding copy completes
      r.eta = h->dev[g].eta;  // rough: refined when the copy is issued
      r.fetch_src = g;
      r.fetch_waiting = true;
      h->dev[g].chained_dsts.push_back(dev);
      break;
    }
    case Source::kWaitHost:
      r.fetch_src = mem::kFetchHost;
      r.fetch_waiting = true;
      h->host.chained_dsts.push_back(dev);
      break;
    case Source::kNone:
      break;  // handled above
  }
}

void DataManager::replan_fetch(mem::DataHandle* h, int dev) {
  mem::Replica& r = h->dev[dev];
  if (r.state != mem::ReplicaState::kInFlight) return;
  r.fetch_gen++;  // cancel whatever copy or chain was feeding this replica
  r.fetch_src = mem::kFetchIdle;
  r.fetch_waiting = false;
  plan_fetch(h, dev);
}

bool DataManager::reception_fed(const mem::DataHandle& h, int dev) const {
  int cur = dev;
  for (int hops = 0; hops <= plat_->num_gpus(); ++hops) {
    const mem::Replica& r = h.dev[cur];
    if (r.state != mem::ReplicaState::kInFlight) return false;
    if (r.fetch_src == mem::kFetchIdle || r.fetch_src == mem::kFetchParked)
      return false;  // aborted (awaiting backoff) or parked for a replay
    if (r.fetch_src == mem::kFetchHost) return true;
    if (plat_->device_failed(r.fetch_src)) return false;
    if (!r.fetch_waiting) return true;  // an actual copy feeds the chain
    cur = r.fetch_src;
  }
  return false;  // cycle: never chain on it
}

DataManager::Source DataManager::choose_source(const mem::DataHandle& h,
                                               int dst) const {
  const auto& topo = plat_->topology();
  // Failed devices are filtered defensively: mid-recovery, a handle later in
  // the purge order may still show a "valid" replica on the dead GPU.
  std::vector<int> valid;
  for (int g : h.valid_devices())
    if (!plat_->device_failed(g)) valid.push_back(g);
  // Candidates to chain on: live receptions whose wait-chain terminates in
  // an actual transfer (chaining on a parked or orphaned reception would
  // deadlock, and mutual chains would cycle).
  auto fed_flying = [&] {
    std::vector<int> out;
    for (int g : h.inflight_devices())
      if (g != dst && !plat_->device_failed(g) && reception_fed(h, g))
        out.push_back(g);
    return out;
  };

  if (!valid.empty()) {
    switch (cfg_.source) {
      case SourcePolicy::kTopologyAware: {
        int best = valid.front();
        for (int g : valid)
          if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst))
            best = g;
        if (topo.p2p_perf_rank(best, dst) > 0) return {Source::kDevice, best};
        break;  // no peer path: fall through to the host
      }
      case SourcePolicy::kFirstValid:
        if (topo.p2p_perf_rank(valid.front(), dst) > 0)
          return {Source::kDevice, valid.front()};
        break;
      case SourcePolicy::kSwitchPeer: {
        for (int g : valid)
          if (topo.host_link_of(g) == topo.host_link_of(dst))
            return {Source::kDevice, g};
        break;  // no switch peer holds it: use the host
      }
      case SourcePolicy::kHostOnly:
        break;
    }
  }

  if (h.host.state == mem::ReplicaState::kValid) {
    // Optimistic heuristic: a duplicate H2D can be avoided by waiting for an
    // ongoing reception on a peer GPU and forwarding from there.
    if (cfg_.optimistic_d2d) {
      const std::vector<int> flying = fed_flying();
      if (!flying.empty()) {
        int best = flying.front();
        for (int g : flying)
          if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst))
            best = g;
        if (topo.p2p_perf_rank(best, dst) > 0)
          return {Source::kWaitDevice, best};
      }
    }
    return {Source::kHost, -1};
  }

  // Host copy not valid.  If some device holds the data but has no peer path
  // (or the policy refused it), we still must produce the bytes: fall back to
  // the authoritative device copy.
  if (!valid.empty()) return {Source::kDevice, valid.front()};

  if (h.host.state == mem::ReplicaState::kInFlight)
    return {Source::kWaitHost, -1};

  const std::vector<int> flying = fed_flying();
  if (flying.empty()) return {Source::kNone, -1};
  // Forced wait (not a heuristic): the only copy is in flight.
  int best = flying.front();
  for (int g : flying)
    if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst)) best = g;
  return {Source::kWaitDevice, best, /*forced=*/true};
}

void DataManager::reserve_with_flushes(mem::DataHandle* h, int dev) {
  auto res = plat_->cache(dev).reserve(h);
  if (check::Checker* c = plat_->checker())
    for (mem::DataHandle* v : res.clean_evicted)
      c->on_evict(v, dev, /*was_dirty=*/false);
  if (obs::Observability* o = plat_->obs())
    for (std::size_t i = 0; i < res.clean_evicted.size(); ++i)
      o->on_evict(dev, /*dirty=*/false);
  for (mem::DataHandle* v : res.dirty_evicted) {
    stats_.evict_flushes++;
    if (check::Checker* c = plat_->checker())
      c->on_evict(v, dev, /*was_dirty=*/true);
    if (obs::Observability* o = plat_->obs()) o->on_evict(dev, /*dirty=*/true);
    flush_from_device(v, dev, /*drop_buffer=*/true);
  }
  if (plat_->options().functional) {
    if (h->dev_buf.empty()) h->dev_buf.resize(plat_->num_gpus());
    if (h->dev_buf[dev].size() != h->bytes()) h->dev_buf[dev].resize(h->bytes());
  }
}

void DataManager::issue_h2d(mem::DataHandle* h, int dst) {
  mem::Replica& r = h->dev[dst];
  r.fetch_src = mem::kFetchHost;
  r.fetch_waiting = false;
  const std::uint32_t gen = r.fetch_gen;
  bool fail = false;
  if (fault::Injector* f = plat_->fault())
    fail = f->should_fail_transfer(fault::TransferKind::kH2D, -1, dst,
                                   plat_->engine().now());
  stats_.h2d++;
  auto iv = plat_->copy_h2d(dst, h->bytes(), [this, h, dst, gen, fail] {
    mem::Replica& r = h->dev[dst];
    // Cancelled mid-flight (re-plan or device failure): whoever bumped the
    // generation owns the cleanup; this completion is a dead DMA.
    if (r.fetch_gen != gen || r.state != mem::ReplicaState::kInFlight) return;
    if (fail) {
      reception_failed(h, mem::kFetchHost, dst);
      return;
    }
    if (plat_->options().functional) pack_tile(*h, h->dev_buf[dst].data());
    complete_arrival(h, dst);
  });
  if (check::Checker* c = plat_->checker())
    c->on_transfer_issue(check::TransferKind::kH2D, h, -1, dst, iv.start,
                         iv.end);
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kH2D, h->id, -1, dst, iv, h->bytes(),
                   /*chained=*/false);
  r.eta = iv.end;
}

void DataManager::issue_p2p(mem::DataHandle* h, int src, int dst,
                            bool chained) {
  assert(h->dev[src].state == mem::ReplicaState::kValid);
  mem::Replica& r = h->dev[dst];
  r.fetch_src = src;
  r.fetch_waiting = false;
  const std::uint32_t gen = r.fetch_gen;
  bool fail = false;
  if (fault::Injector* f = plat_->fault())
    fail = f->should_fail_transfer(fault::TransferKind::kD2D, src, dst,
                                   plat_->engine().now());
  stats_.d2d++;
  auto iv = plat_->copy_p2p(src, dst, h->bytes(), [this, h, src, dst, gen,
                                                   fail] {
    mem::Replica& r = h->dev[dst];
    if (r.fetch_gen != gen || r.state != mem::ReplicaState::kInFlight) return;
    if (fail) {
      reception_failed(h, src, dst);  // drops the source pin
      return;
    }
    if (plat_->options().functional)
      std::memcpy(h->dev_buf[dst].data(), h->dev_buf[src].data(), h->bytes());
    unpin(h, src);
    complete_arrival(h, dst);
  });
  if (check::Checker* c = plat_->checker())
    c->on_transfer_issue(check::TransferKind::kD2D, h, src, dst, iv.start,
                         iv.end);
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kD2D, h->id, src, dst, iv, h->bytes(), chained);
  r.eta = iv.end;
}

void DataManager::reception_failed(mem::DataHandle* h, int src, int dst) {
  fault::Injector* f = plat_->fault();
  assert(f && "transfer failure without an injector");
  mem::Replica& r = h->dev[dst];
  if (src >= 0 && !plat_->device_failed(src)) unpin(h, src);
  r.fetch_attempts++;
  const fault::RetryPolicy& rp = f->retry();
  const int attempts = r.fetch_attempts;
  if (obs::Observability* o = plat_->obs()) {
    std::ostringstream os;
    os << (src >= 0 ? "d2d" : "h2d") << " tile " << h->id << " "
       << endpoint_name(src) << "->gpu" << dst << " attempt " << attempts;
    o->on_fault_mark(plat_->engine().now(), "transfer_abort", os.str());
  }
  if (attempts > rp.max_transfer_retries) {
    std::ostringstream os;
    os << "transfer of tile " << h->id << " to gpu" << dst << " from "
       << endpoint_name(src) << " failed " << attempts
       << " times (retry cap " << rp.max_transfer_retries
       << "): giving up";
    throw fault::TransferRetriesExhausted(os.str());
  }
  stats_.transfer_aborts++;
  if (check::Checker* c = plat_->checker())
    c->on_transfer_abort(src >= 0 ? check::TransferKind::kD2D
                                  : check::TransferKind::kH2D,
                         h, src, dst, static_cast<std::size_t>(attempts),
                         static_cast<std::size_t>(rp.max_transfer_retries));
  r.fetch_gen++;
  r.fetch_src = mem::kFetchIdle;
  r.fetch_waiting = false;
  const std::uint32_t gen = r.fetch_gen;
  const double delay = rp.backoff_for(attempts);
  auto retry = [this, h, dst, gen] {
    mem::Replica& rr = h->dev[dst];
    if (rr.fetch_gen != gen || rr.state != mem::ReplicaState::kInFlight)
      return;  // superseded while backing off (e.g. device-failure re-plan)
    stats_.transfer_retries++;
    if (obs::Observability* o = plat_->obs()) o->count_fault("transfer_retry");
    plan_fetch(h, dst);
  };
  XKB_ASSERT_INLINE_CAPTURE(retry);
  plat_->engine().schedule_after(delay, std::move(retry));
}

void DataManager::complete_arrival(mem::DataHandle* h, int dev) {
  mem::Replica& r = h->dev[dev];
  assert(r.state == mem::ReplicaState::kInFlight);
  r.state = mem::ReplicaState::kValid;
  r.fetch_src = mem::kFetchIdle;
  r.fetch_waiting = false;
  r.fetch_attempts = 0;
  if (check::Checker* c = plat_->checker())
    c->on_arrival(h, dev, plat_->engine().now());
  plat_->cache(dev).touch(h, plat_->engine().now());
  // Forward to every reception chained on this arrival (Section III-C).
  // Chains cancelled by recovery removed themselves from the list, so
  // whatever is left is still waiting on us.
  auto chains = std::move(r.chained_dsts);
  r.chained_dsts.clear();
  for (int d : chains) {
    mem::Replica& rd = h->dev[d];
    if (rd.state == mem::ReplicaState::kInFlight && rd.fetch_waiting &&
        rd.fetch_src == dev) {
      issue_p2p(h, dev, d, /*chained=*/true);
    } else {
      unpin(h, dev);  // stale entry: drop its registration pin
    }
  }
  auto waiters = std::move(r.waiters);
  r.waiters.clear();
  for (auto& w : waiters) w();
}

void DataManager::mark_written(mem::DataHandle* h, int dev) {
  // Dependencies guarantee no reader transfer overlaps a writer kernel --
  // except fetches parked for this very write (a producer replay), which
  // re-plan below once the new version exists.
  std::vector<int> parked;
  for (auto& [g, o] : h->dev) {
    if (g == dev) continue;
    if (o.state == mem::ReplicaState::kInFlight) {
      if (o.fetch_src == mem::kFetchParked) {
        parked.push_back(g);
        continue;
      }
      assert(false && "write raced an in-flight replica: dependency bug");
    }
    // A dirty peer replica is intentionally superseded by the new version:
    // clear the bit before release (which refuses dirty replicas, since
    // anywhere else that would silently discard unsaved bytes).
    plat_->cache(g).set_dirty(h, false);
    if (o.resident) {
      plat_->cache(g).release(h);
      if (!h->dev_buf.empty()) {
        h->dev_buf[g].clear();
        h->dev_buf[g].shrink_to_fit();
      }
    }
  }
  h->version++;
  bool reflush_host = false;
  if (h->host.state == mem::ReplicaState::kValid) {
    h->host.state = mem::ReplicaState::kInvalid;  // lazy host coherency
  } else if (h->host.state == mem::ReplicaState::kInFlight &&
             h->host.fetch_src == mem::kFetchIdle) {
    // The flush feeding the host promise was aborted (its source GPU died,
    // or it is a promise parked on this very replay).  The old version is
    // gone for good: serve waiters from the new one, or drop the promise.
    if (!h->host.waiters.empty() || !h->host.chained_dsts.empty())
      reflush_host = true;
    else
      h->host.state = mem::ReplicaState::kInvalid;
  }
  // Any *active* flush's completion detects the version bump itself,
  // discards the stale payload and re-flushes for waiters.

  mem::Replica& r = h->dev[dev];
  const bool was_parked = r.state == mem::ReplicaState::kInFlight &&
                          r.fetch_src == mem::kFetchParked;
  r.state = mem::ReplicaState::kValid;
  r.fetch_gen++;  // supersede any stale fetch bookkeeping on the writer
  r.fetch_src = mem::kFetchIdle;
  r.fetch_waiting = false;
  r.fetch_attempts = 0;
  plat_->cache(dev).set_dirty(h, true);
  plat_->cache(dev).touch(h, plat_->engine().now());
  if (check::Checker* c = plat_->checker())
    c->on_mark_written(h, dev, plat_->engine().now());
  replay_pending_.erase(h);
  if (was_parked) {
    // The replay landed on the very device a parked fetch was promised to:
    // the write itself satisfies the promise.
    auto waiters = std::move(r.waiters);
    r.waiters.clear();
    for (auto& w : waiters) w();
  }
  for (int g : parked) replan_fetch(h, g);
  if (reflush_host) flush_from_device(h, dev, /*drop_buffer=*/false);
}

void DataManager::host_write(mem::DataHandle* h) {
  // A stale eviction flush may still be in flight; bumping the version
  // makes its completion discard the payload instead of overwriting the
  // CPU's new data.
  h->version++;
  std::vector<int> parked;
  for (auto& [g, r] : h->dev) {
    if (r.state == mem::ReplicaState::kInFlight) {
      if (r.fetch_src == mem::kFetchParked) {
        parked.push_back(g);
        continue;
      }
      assert(false && "host write raced a device transfer: dependency bug");
    }
    // The CPU's new bytes supersede any dirty device copy: clear the bit
    // before release so the intentional discard is explicit.
    plat_->cache(g).set_dirty(h, false);
    if (r.resident) {
      plat_->cache(g).release(h);
      if (!h->dev_buf.empty()) {
        h->dev_buf[g].clear();
        h->dev_buf[g].shrink_to_fit();
      }
    }
  }
  h->host.state = mem::ReplicaState::kValid;
  h->host.fetch_src = mem::kFetchIdle;  // any aborted flush is superseded
  if (check::Checker* c = plat_->checker()) c->on_host_write(h);
  replay_pending_.erase(h);
  for (int g : parked) replan_fetch(h, g);
  // Receptions chained on a host flush promise: the CPU write supersedes
  // the flush, so feed them from the (now valid) host copy directly.
  auto chains = std::move(h->host.chained_dsts);
  h->host.chained_dsts.clear();
  for (int d : chains) {
    mem::Replica& rd = h->dev[d];
    if (rd.state == mem::ReplicaState::kInFlight && rd.fetch_waiting &&
        rd.fetch_src == mem::kFetchHost)
      issue_h2d(h, d);
  }
}

void DataManager::flush_to_host(mem::DataHandle* h, sim::Callback done) {
  if (h->host.state == mem::ReplicaState::kValid) {
    plat_->engine().schedule_after(0.0, std::move(done));
    return;
  }
  if (h->host.state == mem::ReplicaState::kInFlight) {
    h->host.waiters.push_back(std::move(done));
    return;
  }
  const int src = h->dirty_device();
  if (src < 0) {
    // Only legal while a producer replay is rebuilding the tile: park the
    // host promise; the replay's mark_written re-flushes for the waiter.
    assert(replay_pending_.count(h) &&
           "host invalid but no device holds a dirty copy");
    h->host.state = mem::ReplicaState::kInFlight;
    h->host.fetch_src = mem::kFetchIdle;
    h->host.waiters.push_back(std::move(done));
    return;
  }
  h->host.waiters.push_back(std::move(done));
  flush_from_device(h, src, /*drop_buffer=*/false);  // pins src internally
}

void DataManager::flush_from_device(mem::DataHandle* h, int src,
                                    bool drop_buffer) {
  h->host.state = mem::ReplicaState::kInFlight;
  h->host.fetch_gen++;  // supersede any older flush still airborne
  h->host.fetch_src = src;
  const std::uint32_t gen = h->host.fetch_gen;
  bool fail = false;
  if (fault::Injector* f = plat_->fault())
    fail = f->should_fail_transfer(fault::TransferKind::kD2H, src, -1,
                                   plat_->engine().now());
  h->dev[src].pins++;
  stats_.d2h++;
  const std::uint64_t v0 = h->version;
  if (check::Checker* c = plat_->checker()) c->on_host_flush_issue(h, src, v0);
  auto iv = plat_->copy_d2h(src, h->bytes(), [this, h, src, drop_buffer, v0,
                                              gen, fail] {
    // The source pin is released even when this flush was superseded by a
    // newer one -- unless the device died, which zeroed its pin counts.
    if (!plat_->device_failed(src)) h->dev[src].pins--;
    if (h->host.fetch_gen != gen) return;  // aborted or superseded
    h->host.fetch_src = mem::kFetchIdle;
    if (fail) {
      flush_failed(h, src, drop_buffer);
      return;
    }
    if (check::Checker* c = plat_->checker())
      c->on_host_flush_done(h, src, /*stale=*/h->version != v0, v0,
                            plat_->engine().now());

    if (h->version != v0) {
      // A newer version was produced while this (eviction) flush was in
      // flight: the copied bytes are stale and must not reach the host.
      if (plat_->options().functional && drop_buffer &&
          !h->dev[src].resident) {
        h->dev_buf[src].clear();
        h->dev_buf[src].shrink_to_fit();
      }
      if (h->host.state == mem::ReplicaState::kInFlight) {
        // Waiters still expect a valid host copy: restart from the current
        // authoritative replica (the CPU may instead have overwritten the
        // host meanwhile, in which case host is already kValid).
        const int nsrc = h->dirty_device();
        assert(nsrc >= 0 && "host awaited but no authoritative copy");
        flush_from_device(h, nsrc, /*drop_buffer=*/false);
      }
      return;
    }

    if (plat_->options().functional) {
      unpack_tile(*h, h->dev_buf[src].data());
      // Only drop the buffer if the replica was not re-reserved while this
      // flush was in flight -- a new acquisition may already own it and
      // will fill it from the (now valid) host copy.
      if (drop_buffer && !h->dev[src].resident) {
        h->dev_buf[src].clear();
        h->dev_buf[src].shrink_to_fit();
      }
    }
    if (h->dev[src].resident) plat_->cache(src).set_dirty(h, false);
    h->host.state = mem::ReplicaState::kValid;
    h->host.fetch_attempts = 0;
    auto waiters = std::move(h->host.waiters);
    h->host.waiters.clear();
    for (auto& w : waiters) w();
    // Receptions that chained on this flush (kWaitHost): fetch them now.
    auto chains = std::move(h->host.chained_dsts);
    h->host.chained_dsts.clear();
    for (int d : chains) {
      mem::Replica& rd = h->dev[d];
      if (rd.state == mem::ReplicaState::kInFlight && rd.fetch_waiting &&
          rd.fetch_src == mem::kFetchHost)
        issue_h2d(h, d);
    }
  });
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kD2H, h->id, src, -1, iv, h->bytes(),
                   /*chained=*/false);
}

void DataManager::flush_failed(mem::DataHandle* h, int src, bool drop_buffer) {
  fault::Injector* f = plat_->fault();
  assert(f && "flush failure without an injector");
  h->host.fetch_attempts++;
  const fault::RetryPolicy& rp = f->retry();
  const int attempts = h->host.fetch_attempts;
  if (obs::Observability* o = plat_->obs()) {
    std::ostringstream os;
    os << "d2h tile " << h->id << " gpu" << src << "->host attempt "
       << attempts;
    o->on_fault_mark(plat_->engine().now(), "transfer_abort", os.str());
  }
  if (attempts > rp.max_transfer_retries) {
    std::ostringstream os;
    os << "flush of tile " << h->id << " from gpu" << src << " to the host"
       << " failed " << attempts << " times (retry cap "
       << rp.max_transfer_retries << "): giving up";
    throw fault::TransferRetriesExhausted(os.str());
  }
  stats_.transfer_aborts++;
  if (check::Checker* c = plat_->checker())
    c->on_transfer_abort(check::TransferKind::kD2H, h, src, -1,
                         static_cast<std::size_t>(attempts),
                         static_cast<std::size_t>(rp.max_transfer_retries));
  h->host.fetch_gen++;
  const std::uint32_t gen = h->host.fetch_gen;
  const double delay = rp.backoff_for(attempts);
  auto retry = [this, h, src, drop_buffer, gen] {
    if (h->host.fetch_gen != gen ||
        h->host.state != mem::ReplicaState::kInFlight)
      return;  // superseded (device failure re-planned, or CPU overwrote)
    stats_.transfer_retries++;
    if (obs::Observability* o = plat_->obs()) o->count_fault("transfer_retry");
    // Re-read from whichever device is authoritative by now; for an
    // eviction flush the replica is already invalid (the bytes only live
    // in its buffer), so retry against the original source.
    const int nsrc = h->dirty_device();
    flush_from_device(h, nsrc >= 0 ? nsrc : src,
                      nsrc >= 0 ? false : drop_buffer);
  };
  XKB_ASSERT_INLINE_CAPTURE(retry);
  plat_->engine().schedule_after(delay, std::move(retry));
}

void DataManager::on_device_failure(
    int g, const std::vector<mem::DataHandle*>& handles,
    const std::function<bool(mem::DataHandle*, std::string&)>& replay) {
  std::vector<std::pair<mem::DataHandle*, bool>> lost;  // (handle, was_dirty)
  std::vector<mem::DataHandle*> flush_aborted;

  // Pass 1: cancel everything touching g and purge its replicas, so no
  // later source choice (including the ones replays will trigger) can see
  // the dead device's state.
  for (mem::DataHandle* h : handles) {
    // peek: a handle the dead device never touched has nothing to purge,
    // and the scan must not materialise a replica entry per handle.
    mem::Replica* rp = h->dev.peek(g);
    if (rp && rp->state == mem::ReplicaState::kInFlight) {
      mem::Replica& r = *rp;
      // The reception *into* g: detach it from whatever was feeding it.
      if (r.fetch_waiting && r.fetch_src >= 0) {
        auto& cd = h->dev[r.fetch_src].chained_dsts;
        cd.erase(std::remove(cd.begin(), cd.end(), g), cd.end());
        if (!plat_->device_failed(r.fetch_src)) unpin(h, r.fetch_src);
      } else if (r.fetch_waiting && r.fetch_src == mem::kFetchHost) {
        auto& cd = h->host.chained_dsts;
        cd.erase(std::remove(cd.begin(), cd.end(), g), cd.end());
      } else if (r.fetch_src >= 0 || r.fetch_src == mem::kFetchHost) {
        // An actual copy toward g is airborne: abort it.
        stats_.transfer_aborts++;
        if (check::Checker* c = plat_->checker())
          c->on_transfer_abort(r.fetch_src >= 0 ? check::TransferKind::kD2D
                                                : check::TransferKind::kH2D,
                               h, r.fetch_src, g, 0, 0);
        if (obs::Observability* o = plat_->obs()) {
          std::ostringstream os;
          os << (r.fetch_src >= 0 ? "d2d" : "h2d") << " tile " << h->id
             << " " << endpoint_name(r.fetch_src) << "->gpu" << g
             << " cancelled: destination died";
          o->on_fault_mark(plat_->engine().now(), "transfer_abort", os.str());
        }
        if (r.fetch_src >= 0 && !plat_->device_failed(r.fetch_src))
          unpin(h, r.fetch_src);
      }
    }
    // A host flush reading from g dies with it.
    if (h->host.state == mem::ReplicaState::kInFlight &&
        h->host.fetch_src == g) {
      stats_.transfer_aborts++;
      if (check::Checker* c = plat_->checker())
        c->on_transfer_abort(check::TransferKind::kD2H, h, g, -1, 0, 0);
      if (obs::Observability* o = plat_->obs()) {
        std::ostringstream os;
        os << "d2h tile " << h->id << " gpu" << g
           << "->host cancelled: source died";
        o->on_fault_mark(plat_->engine().now(), "transfer_abort", os.str());
      }
      h->host.fetch_gen++;
      h->host.fetch_src = mem::kFetchIdle;
      flush_aborted.push_back(h);
    }
    // Purge the replica itself (nothing to purge when g never touched h).
    if (!rp) continue;
    mem::Replica& r = *rp;
    const bool was_valid = r.state == mem::ReplicaState::kValid;
    const bool was_dirty = r.dirty;
    if (r.resident) {
      plat_->cache(g).set_dirty(h, false);
      plat_->cache(g).release(h);
      if (!h->dev_buf.empty()) {
        h->dev_buf[g].clear();
        h->dev_buf[g].shrink_to_fit();
      }
    }
    r.state = mem::ReplicaState::kInvalid;
    r.pins = 0;
    r.waiters.clear();
    r.chained_dsts.clear();  // dependents re-plan in pass 3
    r.fetch_gen++;  // cancel any airborne copy toward g
    r.fetch_src = mem::kFetchIdle;
    r.fetch_waiting = false;
    r.fetch_attempts = 0;
    r.eta = 0.0;
    if (was_valid) {
      if (check::Checker* c = plat_->checker())
        c->on_replica_lost(h, g, was_dirty);
      if (obs::Observability* o = plat_->obs())
        o->count_fault("replica_lost");
      if (was_dirty) lost.emplace_back(h, true);
    }
  }

  // Pass 2: recover lost dirty data -- promote a surviving current copy,
  // or arrange a producer replay.  Every needs-replay handle is registered
  // before any replay task is actually submitted (the runtime defers the
  // submissions until this call returns), so their operand fetches park
  // instead of tripping the no-copy diagnostic.
  for (auto& [h, was_dirty] : lost) {
    int survivor = -1;
    for (const auto& [d, rd] : h->dev)
      if (d != g && !plat_->device_failed(d) &&
          rd.state == mem::ReplicaState::kValid) {
        survivor = d;
        break;
      }
    if (survivor >= 0) {
      plat_->cache(survivor).set_dirty(h, true);
      if (check::Checker* c = plat_->checker()) c->on_promote(h, survivor);
      if (obs::Observability* o = plat_->obs()) o->count_fault("promote");
      continue;
    }
    if (replay_pending_.count(h)) continue;
    std::string reason = "no producer recorded";
    if (replay && replay(h, reason)) {
      replay_pending_.insert(h);
      continue;
    }
    std::ostringstream os;
    os << "gpu" << g << " died holding the only copy of tile " << h->id
       << " (version " << h->version << ") and its producer cannot be"
       << " replayed: " << reason;
    throw fault::UnrecoverableDataLoss(os.str());
  }
  // Aborted flushes: resume from a surviving authoritative copy, or fall
  // back to replaying the producer (an eviction flush may have carried the
  // last copy of the bytes).
  for (mem::DataHandle* h : flush_aborted) {
    if (h->host.state != mem::ReplicaState::kInFlight ||
        h->host.fetch_src != mem::kFetchIdle)
      continue;  // already resumed
    const int nsrc = h->dirty_device();
    if (nsrc >= 0 && !plat_->device_failed(nsrc)) {
      flush_from_device(h, nsrc, /*drop_buffer=*/false);
      continue;
    }
    if (replay_pending_.count(h)) continue;  // mark_written re-flushes
    std::string reason = "no producer recorded";
    if (replay && replay(h, reason)) {
      replay_pending_.insert(h);
      continue;
    }
    std::ostringstream os;
    os << "gpu" << g << " died while flushing the only copy of tile "
       << h->id << " (version " << h->version
       << ") to the host and its producer cannot be replayed: " << reason;
    throw fault::UnrecoverableDataLoss(os.str());
  }

  // Pass 3: re-plan every live reception that was fed by g -- actual
  // copies out of g (aborted above via the generation bump) and chains
  // registered on its arrivals.
  for (mem::DataHandle* h : handles) {
    for (auto& [d, rd] : h->dev) {
      if (d == g || plat_->device_failed(d)) continue;
      if (rd.state != mem::ReplicaState::kInFlight || rd.fetch_src != g)
        continue;
      if (!rd.fetch_waiting) {
        // The copy g->d was airborne; its completion is now a dead DMA.
        stats_.transfer_aborts++;
        if (check::Checker* c = plat_->checker())
          c->on_transfer_abort(check::TransferKind::kD2D, h, g, d, 0, 0);
        if (obs::Observability* o = plat_->obs()) {
          std::ostringstream os;
          os << "d2d tile " << h->id << " gpu" << g << "->gpu" << d
             << " cancelled: source died";
          o->on_fault_mark(plat_->engine().now(), "transfer_abort", os.str());
        }
      } else {
        // A waiter chained on g's pending arrival: the wait can never be
        // satisfied, so the re-plan below picks a surviving source.
        stats_.waiter_replans++;
        if (obs::Observability* o = plat_->obs())
          o->count_fault("waiter_replan");
      }
      replan_fetch(h, d);
    }
  }
}

}  // namespace xkb::rt
