#include "runtime/data_manager.hpp"

#include <cassert>
#include <cstring>
#include <utility>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace xkb::rt {

namespace {

/// Host -> dense: compact a strided LAPACK-layout tile into tile form
/// (the cudaMemcpy2D compaction of the paper: ld becomes m).
void pack_tile(const mem::DataHandle& h, std::byte* dst) {
  const auto* src = static_cast<const std::byte*>(h.host_ptr);
  const std::size_t col = h.m * h.wordsize;
  for (std::size_t j = 0; j < h.n; ++j)
    std::memcpy(dst + j * col, src + j * h.ld * h.wordsize, col);
}

/// Dense -> host: scatter a compact tile back into the strided host view.
void unpack_tile(const mem::DataHandle& h, const std::byte* src) {
  auto* dst = static_cast<std::byte*>(h.host_ptr);
  const std::size_t col = h.m * h.wordsize;
  for (std::size_t j = 0; j < h.n; ++j)
    std::memcpy(dst + j * h.ld * h.wordsize, src + j * col, col);
}

}  // namespace

void DataManager::acquire(mem::DataHandle* h, int dev, Access mode,
                          sim::Callback done) {
  mem::Replica& r = h->dev[dev];
  r.pins++;  // pinned from request to task completion
  if (mode == Access::kW) {
    // Write-only: allocation suffices, no data movement.
    acquire_write(h, dev, std::move(done));
    return;
  }
  ensure_valid(h, dev, std::move(done));
}

void DataManager::acquire_write(mem::DataHandle* h, int dev,
                                sim::Callback done) {
  auto retry = [this, h, dev, done]() mutable {
    acquire_write(h, dev, std::move(done));
  };
  if (!try_reserve_or_defer(h, dev, std::move(retry))) return;
  plat_->engine().schedule_after(0.0, std::move(done));
}

bool DataManager::try_reserve_or_defer(mem::DataHandle* h, int dev,
                                       std::function<void()> retry) {
  try {
    reserve_with_flushes(h, dev);
    consecutive_oom_ = 0;
    return true;
  } catch (const mem::OutOfDeviceMemory&) {
    // Everything evictable is pinned by in-flight work: wait for some of it
    // to complete and retry.  A long streak with no successful reservation
    // anywhere means the working set genuinely exceeds device memory.
    if (++consecutive_oom_ > 100000) throw;
    stats_.oom_deferrals++;
    plat_->engine().schedule_after(50e-6, std::move(retry));
    return false;
  }
}

void DataManager::prefetch(mem::DataHandle* h, int dev, sim::Callback done) {
  ensure_valid(h, dev, std::move(done));
}

void DataManager::unpin(mem::DataHandle* h, int dev) {
  mem::Replica& r = h->dev[dev];
  assert(r.pins > 0);
  r.pins--;
}

void DataManager::ensure_valid(mem::DataHandle* h, int dev,
                               sim::Callback done) {
  mem::Replica& r = h->dev[dev];
  if (r.state == mem::ReplicaState::kValid) {
    if (obs::Observability* o = plat_->obs())
      o->on_cache_ref(dev, obs::CacheRef::kHit);
    plat_->cache(dev).touch(h, plat_->engine().now());
    plat_->engine().schedule_after(0.0, std::move(done));
    return;
  }
  if (r.state == mem::ReplicaState::kInFlight) {
    if (obs::Observability* o = plat_->obs())
      o->on_cache_ref(dev, obs::CacheRef::kInFlightHit);
    r.waiters.push_back(std::move(done));
    return;
  }

  auto retry = [this, h, dev, done]() mutable {
    ensure_valid(h, dev, std::move(done));
  };
  if (!try_reserve_or_defer(h, dev, std::move(retry))) return;

  const Source s = choose_source(*h, dev);
  if (obs::Observability* o = plat_->obs()) {
    o->on_cache_ref(dev, obs::CacheRef::kMiss);
    obs::Decision d;
    d.t = plat_->engine().now();
    d.handle = h->id;
    d.dst = dev;
    switch (s.kind) {
      case Source::kHost: d.pick = obs::Pick::kHost; break;
      case Source::kDevice: d.pick = obs::Pick::kDevice; break;
      case Source::kWaitDevice: d.pick = obs::Pick::kWaitDevice; break;
      case Source::kWaitHost: d.pick = obs::Pick::kWaitHost; break;
    }
    d.picked_dev = s.dev;
    d.forced = s.forced;
    const auto& topo = plat_->topology();
    for (int g : h->valid_devices())
      d.candidates.push_back({g, topo.p2p_perf_rank(g, dev), false});
    for (int g : h->inflight_devices())
      d.candidates.push_back({g, topo.p2p_perf_rank(g, dev), true});
    o->on_decision(std::move(d));
  }
  if (check::Checker* c = plat_->checker()) {
    check::SourceKind k = check::SourceKind::kHost;
    switch (s.kind) {
      case Source::kHost: k = check::SourceKind::kHost; break;
      case Source::kDevice: k = check::SourceKind::kDevice; break;
      case Source::kWaitDevice: k = check::SourceKind::kWaitDevice; break;
      case Source::kWaitHost: k = check::SourceKind::kWaitHost; break;
    }
    c->on_source_choice(h, dev, k, s.dev, s.forced);
  }
  if (plat_->options().functional && h->dev_buf.empty())
    h->dev_buf.resize(plat_->num_gpus());
  if (plat_->options().functional && h->dev_buf[dev].size() != h->bytes())
    h->dev_buf[dev].resize(h->bytes());
  r.state = mem::ReplicaState::kInFlight;
  r.waiters.push_back(std::move(done));

  switch (s.kind) {
    case Source::kHost:
      issue_h2d(h, dev);
      break;
    case Source::kDevice:
      h->dev[s.dev].pins++;  // keep the source alive during the copy
      issue_p2p(h, s.dev, dev);
      break;
    case Source::kWaitDevice: {
      // Chain on the in-flight reception.  Only waits *chosen* by the
      // optimistic heuristic count towards its ablation counter; waits forced
      // by coherence (the in-flight copy is the only one) fire under every
      // configuration and are tallied separately.
      const int g = s.dev;
      (s.forced ? stats_.forced_waits : stats_.optimistic_waits)++;
      if (obs::Observability* o = plat_->obs())
        o->on_wait(h->id, g, dev, s.forced);
      h->dev[g].pins++;  // survive until the forwarding copy completes
      r.eta = h->dev[g].eta;  // rough: refined when the copy is issued
      h->dev[g].waiters.push_back(
          [this, h, g, dev] { issue_p2p(h, g, dev, /*chained=*/true); });
      break;
    }
    case Source::kWaitHost:
      h->host.waiters.push_back([this, h, dev] { issue_h2d(h, dev); });
      break;
  }
}

DataManager::Source DataManager::choose_source(const mem::DataHandle& h,
                                               int dst) const {
  const auto& topo = plat_->topology();
  const std::vector<int> valid = h.valid_devices();

  if (!valid.empty()) {
    switch (cfg_.source) {
      case SourcePolicy::kTopologyAware: {
        int best = valid.front();
        for (int g : valid)
          if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst))
            best = g;
        if (topo.p2p_perf_rank(best, dst) > 0) return {Source::kDevice, best};
        break;  // no peer path: fall through to the host
      }
      case SourcePolicy::kFirstValid:
        if (topo.p2p_perf_rank(valid.front(), dst) > 0)
          return {Source::kDevice, valid.front()};
        break;
      case SourcePolicy::kSwitchPeer: {
        for (int g : valid)
          if (topo.host_link_of(g) == topo.host_link_of(dst))
            return {Source::kDevice, g};
        break;  // no switch peer holds it: use the host
      }
      case SourcePolicy::kHostOnly:
        break;
    }
  }

  if (h.host.state == mem::ReplicaState::kValid) {
    // Optimistic heuristic: a duplicate H2D can be avoided by waiting for an
    // ongoing reception on a peer GPU and forwarding from there.
    if (cfg_.optimistic_d2d) {
      const std::vector<int> flying = h.inflight_devices();
      if (!flying.empty()) {
        int best = flying.front();
        for (int g : flying)
          if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst))
            best = g;
        if (topo.p2p_perf_rank(best, dst) > 0)
          return {Source::kWaitDevice, best};
      }
    }
    return {Source::kHost, -1};
  }

  // Host copy not valid.  If some device holds the data but has no peer path
  // (or the policy refused it), we still must produce the bytes: fall back to
  // the authoritative device copy.
  if (!valid.empty()) return {Source::kDevice, valid.front()};

  if (h.host.state == mem::ReplicaState::kInFlight)
    return {Source::kWaitHost, -1};

  const std::vector<int> flying = h.inflight_devices();
  assert(!flying.empty() && "no copy of the data exists anywhere");
  // Forced wait (not a heuristic): the only copy is in flight.
  int best = flying.front();
  for (int g : flying)
    if (topo.p2p_perf_rank(g, dst) > topo.p2p_perf_rank(best, dst)) best = g;
  return {Source::kWaitDevice, best, /*forced=*/true};
}

void DataManager::reserve_with_flushes(mem::DataHandle* h, int dev) {
  auto res = plat_->cache(dev).reserve(h);
  if (check::Checker* c = plat_->checker())
    for (mem::DataHandle* v : res.clean_evicted)
      c->on_evict(v, dev, /*was_dirty=*/false);
  if (obs::Observability* o = plat_->obs())
    for (std::size_t i = 0; i < res.clean_evicted.size(); ++i)
      o->on_evict(dev, /*dirty=*/false);
  for (mem::DataHandle* v : res.dirty_evicted) {
    stats_.evict_flushes++;
    if (check::Checker* c = plat_->checker())
      c->on_evict(v, dev, /*was_dirty=*/true);
    if (obs::Observability* o = plat_->obs()) o->on_evict(dev, /*dirty=*/true);
    flush_from_device(v, dev, /*drop_buffer=*/true);
  }
  if (plat_->options().functional) {
    if (h->dev_buf.empty()) h->dev_buf.resize(plat_->num_gpus());
    if (h->dev_buf[dev].size() != h->bytes()) h->dev_buf[dev].resize(h->bytes());
  }
}

void DataManager::issue_h2d(mem::DataHandle* h, int dst) {
  stats_.h2d++;
  auto iv = plat_->copy_h2d(dst, h->bytes(), [this, h, dst] {
    if (plat_->options().functional) pack_tile(*h, h->dev_buf[dst].data());
    complete_arrival(h, dst);
  });
  if (check::Checker* c = plat_->checker())
    c->on_transfer_issue(check::TransferKind::kH2D, h, -1, dst, iv.start,
                         iv.end);
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kH2D, h->id, -1, dst, iv, h->bytes(),
                   /*chained=*/false);
  h->dev[dst].eta = iv.end;
}

void DataManager::issue_p2p(mem::DataHandle* h, int src, int dst,
                            bool chained) {
  assert(h->dev[src].state == mem::ReplicaState::kValid);
  stats_.d2d++;
  auto iv = plat_->copy_p2p(src, dst, h->bytes(), [this, h, src, dst] {
    if (plat_->options().functional)
      std::memcpy(h->dev_buf[dst].data(), h->dev_buf[src].data(), h->bytes());
    unpin(h, src);
    complete_arrival(h, dst);
  });
  if (check::Checker* c = plat_->checker())
    c->on_transfer_issue(check::TransferKind::kD2D, h, src, dst, iv.start,
                         iv.end);
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kD2D, h->id, src, dst, iv, h->bytes(), chained);
  h->dev[dst].eta = iv.end;
}

void DataManager::complete_arrival(mem::DataHandle* h, int dev) {
  mem::Replica& r = h->dev[dev];
  assert(r.state == mem::ReplicaState::kInFlight);
  r.state = mem::ReplicaState::kValid;
  if (check::Checker* c = plat_->checker())
    c->on_arrival(h, dev, plat_->engine().now());
  plat_->cache(dev).touch(h, plat_->engine().now());
  auto waiters = std::move(r.waiters);
  r.waiters.clear();
  for (auto& w : waiters) w();
}

void DataManager::mark_written(mem::DataHandle* h, int dev) {
  // Dependencies guarantee no reader transfer overlaps a writer kernel.
  for (int g = 0; g < plat_->num_gpus(); ++g) {
    if (g == dev) continue;
    mem::Replica& o = h->dev[g];
    assert(o.state != mem::ReplicaState::kInFlight &&
           "write raced an in-flight replica: dependency bug");
    // A dirty peer replica is intentionally superseded by the new version:
    // clear the bit before release (which refuses dirty replicas, since
    // anywhere else that would silently discard unsaved bytes).
    plat_->cache(g).set_dirty(h, false);
    if (o.resident) {
      plat_->cache(g).release(h);
      if (!h->dev_buf.empty()) {
        h->dev_buf[g].clear();
        h->dev_buf[g].shrink_to_fit();
      }
    }
  }
  h->version++;
  // If an eviction flush of the previous version is in flight, leave the
  // host marked kInFlight: its completion detects the version mismatch,
  // discards the stale payload and re-flushes for any waiters.
  if (h->host.state == mem::ReplicaState::kValid)
    h->host.state = mem::ReplicaState::kInvalid;  // lazy host coherency

  mem::Replica& r = h->dev[dev];
  r.state = mem::ReplicaState::kValid;
  plat_->cache(dev).set_dirty(h, true);
  plat_->cache(dev).touch(h, plat_->engine().now());
  if (check::Checker* c = plat_->checker())
    c->on_mark_written(h, dev, plat_->engine().now());
}

void DataManager::host_write(mem::DataHandle* h) {
  // A stale eviction flush may still be in flight; bumping the version
  // makes its completion discard the payload instead of overwriting the
  // CPU's new data.
  h->version++;
  for (int g = 0; g < plat_->num_gpus(); ++g) {
    mem::Replica& r = h->dev[g];
    assert(r.state != mem::ReplicaState::kInFlight &&
           "host write raced a device transfer: dependency bug");
    // The CPU's new bytes supersede any dirty device copy: clear the bit
    // before release so the intentional discard is explicit.
    plat_->cache(g).set_dirty(h, false);
    if (r.resident) {
      plat_->cache(g).release(h);
      if (!h->dev_buf.empty()) {
        h->dev_buf[g].clear();
        h->dev_buf[g].shrink_to_fit();
      }
    }
  }
  h->host.state = mem::ReplicaState::kValid;
  if (check::Checker* c = plat_->checker()) c->on_host_write(h);
}

void DataManager::flush_to_host(mem::DataHandle* h, sim::Callback done) {
  if (h->host.state == mem::ReplicaState::kValid) {
    plat_->engine().schedule_after(0.0, std::move(done));
    return;
  }
  if (h->host.state == mem::ReplicaState::kInFlight) {
    h->host.waiters.push_back(std::move(done));
    return;
  }
  const int src = h->dirty_device();
  assert(src >= 0 && "host invalid but no device holds a dirty copy");
  h->host.waiters.push_back(std::move(done));
  flush_from_device(h, src, /*drop_buffer=*/false);  // pins src internally
}

void DataManager::flush_from_device(mem::DataHandle* h, int src,
                                    bool drop_buffer) {
  h->host.state = mem::ReplicaState::kInFlight;
  h->dev[src].pins++;
  stats_.d2h++;
  const std::uint64_t v0 = h->version;
  if (check::Checker* c = plat_->checker()) c->on_host_flush_issue(h, src, v0);
  auto iv = plat_->copy_d2h(src, h->bytes(), [this, h, src, drop_buffer, v0] {
    h->dev[src].pins--;
    if (check::Checker* c = plat_->checker())
      c->on_host_flush_done(h, src, /*stale=*/h->version != v0, v0,
                            plat_->engine().now());

    if (h->version != v0) {
      // A newer version was produced while this (eviction) flush was in
      // flight: the copied bytes are stale and must not reach the host.
      if (plat_->options().functional && drop_buffer &&
          !h->dev[src].resident) {
        h->dev_buf[src].clear();
        h->dev_buf[src].shrink_to_fit();
      }
      if (h->host.state == mem::ReplicaState::kInFlight) {
        // Waiters still expect a valid host copy: restart from the current
        // authoritative replica (the CPU may instead have overwritten the
        // host meanwhile, in which case host is already kValid).
        const int nsrc = h->dirty_device();
        assert(nsrc >= 0 && "host awaited but no authoritative copy");
        flush_from_device(h, nsrc, /*drop_buffer=*/false);
      }
      return;
    }

    if (plat_->options().functional) {
      unpack_tile(*h, h->dev_buf[src].data());
      // Only drop the buffer if the replica was not re-reserved while this
      // flush was in flight -- a new acquisition may already own it and
      // will fill it from the (now valid) host copy.
      if (drop_buffer && !h->dev[src].resident) {
        h->dev_buf[src].clear();
        h->dev_buf[src].shrink_to_fit();
      }
    }
    if (h->dev[src].resident) plat_->cache(src).set_dirty(h, false);
    h->host.state = mem::ReplicaState::kValid;
    auto waiters = std::move(h->host.waiters);
    h->host.waiters.clear();
    for (auto& w : waiters) w();
  });
  if (obs::Observability* o = plat_->obs())
    o->on_transfer(obs::Xfer::kD2H, h->id, src, -1, iv, h->bytes(),
                   /*chained=*/false);
}

}  // namespace xkb::rt
