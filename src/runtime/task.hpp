// Data-flow tasks: the XKaapi dependent-task model.
//
// A task declares accesses to data handles with a mode (R / W / RW); the
// runtime derives dependencies from the program order of accesses (readers
// after the last writer, writers after all previous readers and the writer),
// which is exactly the asynchronous semantics that lets XKBlas compose BLAS
// calls without global synchronisation (paper Section IV-F).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/handle.hpp"

namespace xkb::rt {

enum class Access : std::uint8_t { kR, kW, kRW };

struct TaskAccess {
  mem::DataHandle* handle = nullptr;
  Access mode = Access::kR;
};

/// View the functional payload gets: one dense device buffer per access.
class FunctionalCtx {
 public:
  FunctionalCtx(const std::vector<TaskAccess>* acc, int device)
      : acc_(acc), device_(device) {}

  /// Raw pointer to the dense (ld == m) device replica of access `i`.
  void* ptr(std::size_t i) const {
    mem::DataHandle* h = (*acc_)[i].handle;
    return h->dev_buf[device_].data();
  }
  mem::DataHandle* handle(std::size_t i) const { return (*acc_)[i].handle; }
  int device() const { return device_; }

 private:
  const std::vector<TaskAccess>* acc_;
  int device_;
};

/// User-facing task description, submitted to Runtime::submit.
struct TaskDesc {
  std::string label;
  std::vector<TaskAccess> accesses;
  double flops = 0.0;          ///< real-arithmetic flop count (cost model)
  std::size_t min_dim = 0;     ///< limiting tile dimension (efficiency curve)
  double eff_factor = 1.0;     ///< kernel-specific efficiency multiplier
  bool single_precision = false;
  int forced_device = -1;      ///< >=0 bypasses the scheduler
  std::function<void(const FunctionalCtx&)> fn;  ///< functional payload

  /// Host-side task (memory_coherent, layout conversions): flushes its R
  /// accesses to the host, then occupies the host worker for host_seconds.
  bool host_task = false;
  double host_seconds = 0.0;

  /// Invoked when the task completes (bookkeeping hooks, e.g. dropping
  /// device replicas after a host round trip).
  std::function<void()> on_complete;
};

/// Internal task record with scheduling state.
struct Task {
  explicit Task(TaskDesc d) : desc(std::move(d)) {}

  TaskDesc desc;
  std::uint64_t id = 0;

  // Dependency state.
  int pending_deps = 0;
  std::vector<Task*> successors;

  // Execution state.
  int device = -1;
  int operands_missing = 0;
  bool prepared = false;   ///< operand acquisition started (no longer stealable)
  bool done = false;

  /// Bumped when a device failure migrates the task mid-preparation or
  /// mid-kernel: operand-acquisition and kernel-completion callbacks
  /// capture the epoch they were issued under and no-op on mismatch, so a
  /// cancelled execution cannot complete the re-executed task.
  std::uint32_t epoch = 0;

  /// Version of each operand at completion time (filled by the runtime when
  /// the task finishes).  A producer replay is only sound while its inputs
  /// are still at the versions it originally consumed.
  std::vector<std::uint64_t> access_versions;
};

}  // namespace xkb::rt
