#include "runtime/platform.hpp"

#include <cassert>
#include <limits>

#include "fault/injector.hpp"
#include "obs/critical_path.hpp"
#include "obs/obs.hpp"

namespace xkb::rt {

namespace {
constexpr double kGB = 1e9;
}

Platform::Platform(topo::Topology topo, PerfModel perf, PlatformOptions opt)
    : topo_(std::move(topo)), perf_(perf), opt_(opt) {
  const int n = topo_.num_gpus();
  trace_.set_enabled(opt_.tracing);

  // Host links: bandwidth taken from the first GPU on each link.
  h2d_.resize(topo_.num_host_links());
  d2h_.resize(topo_.num_host_links());
  for (int g = 0; g < n; ++g) {
    const int l = topo_.host_link_of(g);
    if (!h2d_[l]) {
      const double bw = topo_.host_bandwidth_gbps(g) * kGB;
      h2d_[l] = std::make_unique<sim::Channel>(
          engine_, "h2d" + std::to_string(l), bw, topo_.transfer_latency());
      d2h_[l] = std::make_unique<sim::Channel>(
          engine_, "d2h" + std::to_string(l), bw, topo_.transfer_latency());
    }
  }

  // Directed peer channels.
  p2p_.resize(static_cast<std::size_t>(n) * n);
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      if (topo_.link_class(s, d) == topo::LinkClass::kNone) continue;
      p2p_[static_cast<std::size_t>(s) * n + d] = std::make_unique<sim::Channel>(
          engine_, "p2p" + std::to_string(s) + "-" + std::to_string(d),
          topo_.gpu_bandwidth_gbps(s, d) * kGB, topo_.transfer_latency());
    }

  // Kernel streams enable *submission* concurrency on real GPUs but share
  // the SMs: concurrent kernels time-slice rather than multiply throughput.
  // A single FIFO per device models the aggregate compute correctly; the
  // kernel_streams option is kept for trace labelling.
  kstreams_.resize(n);
  for (int g = 0; g < n; ++g)
    kstreams_[g].push_back(
        std::make_unique<sim::FifoResource>(engine_, "k" + std::to_string(g)));

  host_worker_ = std::make_unique<sim::FifoResource>(engine_, "host");

  caches_.reserve(n);
  for (int g = 0; g < n; ++g)
    caches_.push_back(std::make_unique<mem::DeviceCache>(
        g, opt_.device_capacity, opt_.eviction));
}

void Platform::set_obs(obs::Observability* o) {
  obs_ = o;
  const int n = topo_.num_gpus();
  for (int l = 0; l < topo_.num_host_links(); ++l) {
    if (!h2d_[l]) continue;
    h2d_[l]->set_probe(o ? o->make_link_probe("h2d" + std::to_string(l),
                                              "host", obs::LinkDir::kH2D, -1,
                                              l)
                         : nullptr);
    d2h_[l]->set_probe(o ? o->make_link_probe("d2h" + std::to_string(l),
                                              "host", obs::LinkDir::kD2H, l,
                                              -1)
                         : nullptr);
  }
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d) {
      auto* ch = p2p_[static_cast<std::size_t>(s) * n + d].get();
      if (!ch) continue;
      ch->set_probe(o ? o->make_link_probe(
                            ch->name(),
                            obs::link_class_label(topo_.link_class(s, d)),
                            obs::LinkDir::kP2P, s, d)
                      : nullptr);
    }
  host_worker_->set_probe(
      o ? o->make_link_probe("host", "host", obs::LinkDir::kHost, -1, -1)
        : nullptr);
}

void Platform::set_fault(fault::Injector* f) {
  fault_ = f;
  if (!f) return;
  fault::Injector::Hooks hooks;
  hooks.brownout = [this](int a, int b, double frac) {
    apply_link_brownout(a, b, frac);
  };
  hooks.restore = [this](int a, int b) { apply_link_heal(a, b); };
  hooks.link_down = [this](int a, int b) { apply_link_down(a, b); };
  f->bind(std::move(hooks));
}

void Platform::sync_link_bandwidth(int a, int b) {
  const int n = topo_.num_gpus();
  if (auto* ch = p2p_[static_cast<std::size_t>(a) * n + b].get())
    ch->set_bandwidth(topo_.gpu_bandwidth_gbps(a, b) * kGB);
  if (auto* ch = p2p_[static_cast<std::size_t>(b) * n + a].get())
    ch->set_bandwidth(topo_.gpu_bandwidth_gbps(b, a) * kGB);
}

void Platform::apply_link_brownout(int a, int b, double fraction) {
  topo_.scale_link_bandwidth(a, b, fraction);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "brownout",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " at " + std::to_string(fraction) + "x nominal");
}

void Platform::apply_link_heal(int a, int b) {
  topo_.restore_link(a, b);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "link_heal",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " restored to nominal");
}

void Platform::apply_link_down(int a, int b) {
  const topo::LinkClass c = topo_.demote_link(a, b);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "link_down",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " demoted to " + topo::to_string(c));
}

void Platform::apply_device_failure(int g) {
  topo_.set_device_failed(g);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "device_fail",
                        "GPU " + std::to_string(g) + " failed");
}

sim::Interval Platform::copy_h2d(int dev, std::size_t bytes,
                                 sim::Callback done) {
  const sim::Time t0 = engine_.now();
  auto iv = h2d_[topo_.host_link_of(dev)]->transfer(bytes, std::move(done));
  trace::Record rec{dev,   trace::OpKind::kHtoD, iv.start, iv.end,
                    bytes, 0.0,                  0,        "HtoD"};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::copy_d2h(int dev, std::size_t bytes,
                                 sim::Callback done) {
  const sim::Time t0 = engine_.now();
  auto iv = d2h_[topo_.host_link_of(dev)]->transfer(bytes, std::move(done));
  trace::Record rec{dev,   trace::OpKind::kDtoH, iv.start, iv.end,
                    bytes, 0.0,                  0,        "DtoH"};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::copy_p2p(int src, int dst, std::size_t bytes,
                                 sim::Callback done) {
  auto* ch = p2p_[static_cast<std::size_t>(src) * topo_.num_gpus() + dst].get();
  assert(ch && "no peer path between GPUs");
  const sim::Time t0 = engine_.now();
  auto iv = ch->transfer(bytes, std::move(done));
  // Peer traffic between GPUs that do not share a PCIe switch crosses the
  // host PCIe fabric (switch -> CPU -> QPI -> CPU -> switch) and therefore
  // steals bandwidth from concurrent host transfers on both end links.
  // NVLink peers bypass PCIe entirely.  This is the physical reason the
  // topology-aware heuristic matters: a rank-blind source choice that lands
  // on a PCIe path degrades the already-saturated host links.
  if (topo_.link_class(src, dst) == topo::LinkClass::kPCIeP2P &&
      topo_.host_link_of(src) != topo_.host_link_of(dst)) {
    d2h_[topo_.host_link_of(src)]->submit(iv.duration(), {});
    h2d_[topo_.host_link_of(dst)]->submit(iv.duration(), {});
  }
  trace::Record rec{dst,   trace::OpKind::kPtoP, iv.start, iv.end,
                    bytes, 0.0,                  0,
                    "PtoP from " + std::to_string(src)};
  rec.peer = src;
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::launch_kernel(int dev, double seconds, double flops,
                                      const std::string& label,
                                      sim::Callback done, int* lane_out) {
  // Pick the stream that frees up first (deterministic tie-break by index).
  sim::FifoResource* best = kstreams_[dev][0].get();
  int lane = 0;
  for (std::size_t k = 1; k < kstreams_[dev].size(); ++k)
    if (kstreams_[dev][k]->available_at() < best->available_at()) {
      best = kstreams_[dev][k].get();
      lane = static_cast<int>(k);
    }
  const sim::Time t0 = engine_.now();
  auto iv = best->submit(seconds, std::move(done));
  trace::Record rec{dev, trace::OpKind::kKernel, iv.start, iv.end,
                    0,   flops,                  lane,     label};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  if (obs_) obs_->on_kernel(dev, label, iv);
  if (lane_out) *lane_out = lane;
  return iv;
}

sim::Interval Platform::host_work(double seconds, sim::Callback done) {
  return host_worker_->submit(seconds, std::move(done));
}

sim::Time Platform::kernel_available_at(int dev) const {
  sim::Time best = std::numeric_limits<sim::Time>::max();
  for (const auto& s : kstreams_[dev]) best = std::min(best, s->available_at());
  return best;
}

double Platform::kernel_busy(int dev) const {
  double total = 0.0;
  for (const auto& s : kstreams_[dev]) total += s->busy_time();
  return total;
}

}  // namespace xkb::rt
