#include "runtime/platform.hpp"

#include <cassert>
#include <limits>

#include "fault/injector.hpp"
#include "obs/critical_path.hpp"
#include "obs/obs.hpp"

namespace xkb::rt {

namespace {
constexpr double kGB = 1e9;
}

Platform::Platform(topo::Topology topo, PerfModel perf, PlatformOptions opt)
    : topo_(std::move(topo)), perf_(perf), opt_(opt) {
  const int n = topo_.num_gpus();
  trace_.set_enabled(opt_.tracing);

  // Host links: bandwidth and route latency taken from the first GPU on
  // each link (GPUs sharing a switch share its uplink characteristics).
  h2d_.resize(topo_.num_host_links());
  d2h_.resize(topo_.num_host_links());
  for (int g = 0; g < n; ++g) {
    const int l = topo_.host_link_of(g);
    if (!h2d_[l]) {
      const double bw = topo_.host_bandwidth_gbps(g) * kGB;
      const double lat = topo_.host_transfer_latency(g);
      h2d_[l] = std::make_unique<sim::Channel>(
          engine_, "h2d" + std::to_string(l), bw, lat);
      d2h_[l] = std::make_unique<sim::Channel>(
          engine_, "d2h" + std::to_string(l), bw, lat);
    }
  }
  // Peer channels are created lazily on first use (p2p_channel): a
  // 1024-device fat tree has ~10^6 directed pairs, of which a stencil
  // touches a few thousand.

  // Kernel streams enable *submission* concurrency on real GPUs but share
  // the SMs: concurrent kernels time-slice rather than multiply throughput.
  // A single FIFO per device models the aggregate compute correctly; the
  // kernel_streams option is kept for trace labelling.
  kstreams_.resize(n);
  for (int g = 0; g < n; ++g)
    kstreams_[g].push_back(
        std::make_unique<sim::FifoResource>(engine_, "k" + std::to_string(g)));

  host_worker_ = std::make_unique<sim::FifoResource>(engine_, "host");

  caches_.reserve(n);
  for (int g = 0; g < n; ++g)
    caches_.push_back(std::make_unique<mem::DeviceCache>(
        g, opt_.device_capacity, opt_.eviction));
}

void Platform::set_obs(obs::Observability* o) {
  obs_ = o;
  for (int l = 0; l < topo_.num_host_links(); ++l) {
    if (!h2d_[l]) continue;
    h2d_[l]->set_probe(o ? o->make_link_probe("h2d" + std::to_string(l),
                                              "host", obs::LinkDir::kH2D, -1,
                                              l)
                         : nullptr);
    d2h_[l]->set_probe(o ? o->make_link_probe("d2h" + std::to_string(l),
                                              "host", obs::LinkDir::kD2H, l,
                                              -1)
                         : nullptr);
  }
  // Peer channels created after this call pick their probe up at creation
  // (p2p_channel); channels already materialised are walked here in sorted
  // pair order.
  for (auto& [key, ch] : p2p_)
    ch->set_probe(o ? o->make_link_probe(
                          ch->name(),
                          obs::link_class_label(
                              topo_.link_class(key.first, key.second)),
                          obs::LinkDir::kP2P, key.first, key.second)
                    : nullptr);
  host_worker_->set_probe(
      o ? o->make_link_probe("host", "host", obs::LinkDir::kHost, -1, -1)
        : nullptr);
}

sim::Channel& Platform::p2p_channel(int src, int dst) {
  const std::pair<int, int> key{src, dst};
  auto it = p2p_.find(key);
  if (it == p2p_.end()) {
    auto ch = std::make_unique<sim::Channel>(
        engine_, "p2p" + std::to_string(src) + "-" + std::to_string(dst),
        topo_.gpu_bandwidth_gbps(src, dst) * kGB,
        topo_.transfer_latency(src, dst));
    if (obs_)
      ch->set_probe(obs_->make_link_probe(
          ch->name(), obs::link_class_label(topo_.link_class(src, dst)),
          obs::LinkDir::kP2P, src, dst));
    it = p2p_.emplace(key, std::move(ch)).first;
  }
  return *it->second;
}

void Platform::set_fault(fault::Injector* f) {
  fault_ = f;
  if (!f) return;
  fault::Injector::Hooks hooks;
  hooks.brownout = [this](int a, int b, double frac) {
    apply_link_brownout(a, b, frac);
  };
  hooks.restore = [this](int a, int b) { apply_link_heal(a, b); };
  hooks.link_down = [this](int a, int b) { apply_link_down(a, b); };
  hooks.resolve_device = [this](const std::string& name) {
    return topo_.device_index(name);
  };
  f->bind(std::move(hooks));
}

void Platform::sync_link_bandwidth(int a, int b) {
  // Only live channels need the mirror; a pair whose channel has not been
  // materialised yet will read the topology's current bandwidth when it is.
  if (auto it = p2p_.find({a, b}); it != p2p_.end())
    it->second->set_bandwidth(topo_.gpu_bandwidth_gbps(a, b) * kGB);
  if (auto it = p2p_.find({b, a}); it != p2p_.end())
    it->second->set_bandwidth(topo_.gpu_bandwidth_gbps(b, a) * kGB);
}

void Platform::apply_link_brownout(int a, int b, double fraction) {
  topo_.scale_link_bandwidth(a, b, fraction);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "brownout",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " at " + std::to_string(fraction) + "x nominal");
}

void Platform::apply_link_heal(int a, int b) {
  topo_.restore_link(a, b);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "link_heal",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " restored to nominal");
}

void Platform::apply_link_down(int a, int b) {
  const topo::LinkClass c = topo_.demote_link(a, b);
  sync_link_bandwidth(a, b);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "link_down",
                        "link " + std::to_string(a) + "-" + std::to_string(b) +
                            " demoted to " + topo::to_string(c));
}

void Platform::apply_device_failure(int g) {
  topo_.set_device_failed(g);
  if (obs_)
    obs_->on_fault_mark(engine_.now(), "device_fail",
                        "GPU " + std::to_string(g) + " failed");
}

sim::Interval Platform::copy_h2d(int dev, std::size_t bytes,
                                 sim::Callback done) {
  const sim::Time t0 = engine_.now();
  auto iv = h2d_[topo_.host_link_of(dev)]->transfer(bytes, std::move(done));
  trace::Record rec{dev,   trace::OpKind::kHtoD, iv.start, iv.end,
                    bytes, 0.0,                  0,        "HtoD"};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::copy_d2h(int dev, std::size_t bytes,
                                 sim::Callback done) {
  const sim::Time t0 = engine_.now();
  auto iv = d2h_[topo_.host_link_of(dev)]->transfer(bytes, std::move(done));
  trace::Record rec{dev,   trace::OpKind::kDtoH, iv.start, iv.end,
                    bytes, 0.0,                  0,        "DtoH"};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::copy_p2p(int src, int dst, std::size_t bytes,
                                 sim::Callback done) {
  assert(topo_.link_class(src, dst) != topo::LinkClass::kNone &&
         "no peer path between GPUs");
  const sim::Time t0 = engine_.now();
  auto iv = p2p_channel(src, dst).transfer(bytes, std::move(done));
  // Peer traffic between GPUs that do not share a PCIe switch crosses the
  // host PCIe fabric (switch -> CPU -> QPI -> CPU -> switch) and therefore
  // steals bandwidth from concurrent host transfers on both end links.
  // NVLink peers bypass PCIe entirely.  This is the physical reason the
  // topology-aware heuristic matters: a rank-blind source choice that lands
  // on a PCIe path degrades the already-saturated host links.
  if (topo_.link_class(src, dst) == topo::LinkClass::kPCIeP2P &&
      topo_.host_link_of(src) != topo_.host_link_of(dst)) {
    d2h_[topo_.host_link_of(src)]->submit(iv.duration(), {});
    h2d_[topo_.host_link_of(dst)]->submit(iv.duration(), {});
  }
  trace::Record rec{dst,   trace::OpKind::kPtoP, iv.start, iv.end,
                    bytes, 0.0,                  0,
                    "PtoP from " + std::to_string(src)};
  rec.peer = src;
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  return iv;
}

sim::Interval Platform::launch_kernel(int dev, double seconds, double flops,
                                      const std::string& label,
                                      sim::Callback done, int* lane_out) {
  // Pick the stream that frees up first (deterministic tie-break by index).
  sim::FifoResource* best = kstreams_[dev][0].get();
  int lane = 0;
  for (std::size_t k = 1; k < kstreams_[dev].size(); ++k)
    if (kstreams_[dev][k]->available_at() < best->available_at()) {
      best = kstreams_[dev][k].get();
      lane = static_cast<int>(k);
    }
  const sim::Time t0 = engine_.now();
  auto iv = best->submit(seconds, std::move(done));
  trace::Record rec{dev, trace::OpKind::kKernel, iv.start, iv.end,
                    0,   flops,                  lane,     label};
  rec.queued = iv.start - t0;
  trace_.add(std::move(rec));
  if (obs_) obs_->on_kernel(dev, label, iv);
  if (lane_out) *lane_out = lane;
  return iv;
}

sim::Interval Platform::host_work(double seconds, sim::Callback done) {
  return host_worker_->submit(seconds, std::move(done));
}

sim::Time Platform::kernel_available_at(int dev) const {
  sim::Time best = std::numeric_limits<sim::Time>::max();
  for (const auto& s : kstreams_[dev]) best = std::min(best, s->available_at());
  return best;
}

double Platform::kernel_busy(int dev) const {
  double total = 0.0;
  for (const auto& s : kstreams_[dev]) total += s->busy_time();
  return total;
}

}  // namespace xkb::rt
