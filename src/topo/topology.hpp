// Interconnect topology models of multi-GPU nodes.
//
// The central model is the NVIDIA DGX-1 hybrid cube-mesh of the paper's
// Fig. 1: eight V100s, each with six NVLink-2 lanes arranged so that some
// GPU pairs share two lanes (~96 GB/s measured), some one lane (~48 GB/s),
// and the remaining pairs fall back to PCIe/QPI paths (~17 GB/s).  Hosts
// reach GPUs through four PCIe Gen3 x16 switches (~16 GB/s each), each
// shared by two GPUs.  The bandwidth numbers below are the measured values
// of the paper's Fig. 2.
//
// `p2p_perf_rank` mirrors CUDA's cuDeviceGetP2PAttribute(
// CU_DEVICE_P2P_ATTRIBUTE_PERFORMANCE_RANK): a relative ordering of link
// quality that the topology-aware heuristic consumes -- the heuristic never
// sees raw bandwidths, exactly as in the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xkb::topo {

enum class LinkClass {
  kSelf,      ///< same device (local memory)
  kNVLink2,   ///< two bonded NVLink-2 lanes
  kNVLink1,   ///< one NVLink-2 lane
  kPCIeP2P,   ///< peer access over PCIe/QPI fabric
  kNone,      ///< no peer path (must stage through host)
};

const char* to_string(LinkClass c);

class Topology {
 public:
  /// The DGX-1 machine of the paper (Table I / Figs. 1-2).
  static Topology dgx1();

  /// A node whose GPUs only share PCIe (no NVLink): the "worst case" for the
  /// topology heuristic, used by ablation benches.
  static Topology pcie_only(int num_gpus);

  /// An NVSwitch-style all-to-all node (DGX-2/A100-like): every pair enjoys
  /// the same high-bandwidth link, so source selection is rank-insensitive.
  static Topology nvswitch(int num_gpus, double gpu_gpu_gbps = 240.0);

  /// A Summit/Sierra-like node: NVLink between CPU and GPU (50 GB/s per
  /// GPU), GPUs grouped per socket.  The paper predicts the optimistic
  /// heuristic gains little here because host links are no longer the
  /// bottleneck -- bench/ext_topologies tests that prediction.
  static Topology summit_like();

  int num_gpus() const { return num_gpus_; }
  const std::string& name() const { return name_; }

  LinkClass link_class(int src, int dst) const;

  /// Measured unidirectional bandwidth in GB/s between device memories
  /// (src==dst gives local memory bandwidth).
  double gpu_bandwidth_gbps(int src, int dst) const;

  /// Relative link performance rank for P2P copies: higher is better,
  /// 0 means no peer access.  Analogous to cuDeviceGetP2PAttribute.
  int p2p_perf_rank(int src, int dst) const;

  /// Index of the host link (PCIe switch or NVLink brick) a GPU hangs off.
  /// GPUs may share a host link (DGX-1: two GPUs per PCIe switch).
  int host_link_of(int gpu) const { return host_link_of_[gpu]; }
  int num_host_links() const { return num_host_links_; }
  /// Unidirectional host<->GPU bandwidth of that link, GB/s.
  double host_bandwidth_gbps(int gpu) const { return host_bw_gbps_[gpu]; }

  /// Per-transfer latency (seconds) for any DMA on this machine.
  double transfer_latency() const { return latency_s_; }

  /// GPUs sorted by decreasing link quality from `dst`'s perspective,
  /// excluding `dst` itself (helper for the topology-aware heuristic).
  std::vector<int> peers_by_rank(int dst) const;

  // --- dynamic link state (xkb::fault) -------------------------------------
  //
  // A topology is immutable hardware description until a fault plan starts
  // mutating it.  The first mutation snapshots the nominal link table so
  // brownouts can be healed and demotions expressed as fractions of the
  // machine's real capability.  Mutations re-shape `p2p_perf_rank` (and
  // therefore `choose_source` / dmdas ETA estimates) immediately; the
  // Platform mirrors the bandwidth changes onto the live sim::Channels.

  /// Demote a P2P route one step down the paper's link hierarchy:
  /// 2xNVLink -> 1xNVLink (half nominal bandwidth) -> PCIe fabric fallback.
  /// PCIe is the floor -- total disconnection of a *device* is modelled by
  /// set_device_failed, not by removing routes.  Returns the new class.
  LinkClass demote_link(int a, int b);

  /// Brownout: scale the link's bandwidth to `fraction` of nominal without
  /// changing its class (lane error retraining throttles throughput before
  /// the driver re-routes).  `restore_link` heals class and bandwidth.
  void scale_link_bandwidth(int a, int b, double fraction);
  void restore_link(int a, int b);

  /// Blacklist a device: every route touching it reports p2p_perf_rank 0.
  void set_device_failed(int gpu);
  bool device_failed(int gpu) const {
    return !failed_.empty() && failed_[static_cast<std::size_t>(gpu)] != 0;
  }
  int num_alive_gpus() const;

  /// Bandwidth of the PCIe fabric a demoted route falls back to, GB/s.
  double pcie_fallback_gbps() const { return pcie_fallback_gbps_; }

 private:
  Topology(std::string name, int n);

  void set_link(int a, int b, LinkClass c, double gbps);  // symmetric
  void snapshot_nominal();
  std::size_t at(int a, int b) const {
    return static_cast<std::size_t>(a) * num_gpus_ + b;
  }

  std::string name_;
  int num_gpus_ = 0;
  std::vector<LinkClass> link_;   // n*n
  std::vector<double> bw_gbps_;   // n*n
  std::vector<LinkClass> nominal_link_;  // empty until first fault mutation
  std::vector<double> nominal_bw_;
  std::vector<char> failed_;      // empty until first device failure
  std::vector<int> host_link_of_;
  std::vector<double> host_bw_gbps_;
  int num_host_links_ = 0;
  double latency_s_ = 10e-6;
  double pcie_fallback_gbps_ = 17.2;
};

}  // namespace xkb::topo
