// Interconnect topology models of multi-GPU (and multi-node) machines.
//
// Historically this class carried hardwired n*n tables for one DGX-1 plus
// three ad-hoc presets.  It is now a *routed view* over an xkb::tdl machine
// graph: a .tpo description (or a preset builder) declares devices, hosts,
// switches and links, and every quantity served here -- link_class,
// gpu_bandwidth_gbps, p2p_perf_rank, host_link_of, transfer latencies -- is
// derived from shortest-bottleneck paths over that graph (tdl/routing.hpp).
// The DGX-1 of the paper's Fig. 1/2 is just presets/dgx1.tpo, and routing
// reproduces its historical tables bit-identically (pinned by
// test_topology and the determinism hashes).
//
// Representation is sparse: direct links per pair, a per-device attachment
// list, and lazily computed fabric rows over the small switch/host graph.
// A 1024-device fat tree never materialises a 1024x1024 table; memory is
// O(active links), which tools/topo_bench gates.
//
// `p2p_perf_rank` mirrors CUDA's cuDeviceGetP2PAttribute(
// CU_DEVICE_P2P_ATTRIBUTE_PERFORMANCE_RANK): a relative ordering of link
// quality that the topology-aware heuristic consumes -- the heuristic never
// sees raw bandwidths, exactly as in the paper.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tdl/machine.hpp"
#include "tdl/routing.hpp"

namespace xkb::topo {

using tdl::LinkClass;
using tdl::to_string;

class Topology {
 public:
  /// The DGX-1 machine of the paper (Table I / Figs. 1-2).
  static Topology dgx1();

  /// A node whose GPUs only share PCIe (no NVLink): the "worst case" for the
  /// topology heuristic, used by ablation benches.
  static Topology pcie_only(int num_gpus);

  /// An NVSwitch-style all-to-all node (DGX-2/A100-like): every pair enjoys
  /// the same high-bandwidth link, so source selection is rank-insensitive.
  static Topology nvswitch(int num_gpus, double gpu_gpu_gbps = 240.0);

  /// A Summit/Sierra-like node: NVLink between CPU and GPU (50 GB/s per
  /// GPU), GPUs grouped per socket.  The paper predicts the optimistic
  /// heuristic gains little here because host links are no longer the
  /// bottleneck -- bench/ext_topologies tests that prediction.
  static Topology summit_like();

  /// Route any machine description (throws std::invalid_argument if some
  /// device cannot reach a host).
  static Topology from_machine(const tdl::Machine& m);
  static Topology from_tpo_text(const std::string& text,
                                const std::string& origin);
  static Topology from_tpo_file(const std::string& path);

  int num_gpus() const { return num_gpus_; }
  const std::string& name() const { return name_; }

  /// The machine description this topology was routed from (canonical
  /// source for write_tpo round-trips and tools).
  const tdl::Machine& machine() const { return machine_; }

  /// Device node name ("gpu3"), and the inverse lookup (-1 if unknown) --
  /// fault plans may target links by device name instead of index.
  const std::string& device_name(int gpu) const {
    return dev_names_[static_cast<std::size_t>(gpu)];
  }
  int device_index(const std::string& name) const;

  LinkClass link_class(int src, int dst) const;

  /// Measured unidirectional bandwidth in GB/s between device memories
  /// (src==dst gives local memory bandwidth).
  double gpu_bandwidth_gbps(int src, int dst) const;

  /// Relative link performance rank for P2P copies: higher is better,
  /// 0 means no peer access.  Analogous to cuDeviceGetP2PAttribute.
  int p2p_perf_rank(int src, int dst) const;

  /// Index of the host link (PCIe switch or NVLink brick) a GPU hangs off.
  /// GPUs may share a host link (DGX-1: two GPUs per PCIe switch).
  int host_link_of(int gpu) const {
    return host_link_of_[static_cast<std::size_t>(gpu)];
  }
  int num_host_links() const { return num_host_links_; }
  /// Unidirectional host<->GPU bandwidth of that link, GB/s.
  double host_bandwidth_gbps(int gpu) const {
    return host_bw_gbps_[static_cast<std::size_t>(gpu)];
  }

  /// Default per-transfer DMA latency (seconds) of this machine.
  double transfer_latency() const { return latency_s_; }
  /// Per-route latency: the MAX of per-link latencies along the path (DMA
  /// setup overlaps stage-by-stage; an all-default graph reports exactly
  /// the global value).
  double transfer_latency(int src, int dst) const;
  /// Latency of the GPU's host link route.
  double host_transfer_latency(int gpu) const {
    return host_lat_s_[static_cast<std::size_t>(gpu)];
  }

  /// GPUs sorted by decreasing link quality from `dst`'s perspective,
  /// excluding `dst` itself (helper for the topology-aware heuristic).
  std::vector<int> peers_by_rank(int dst) const;

  // --- dynamic link state (xkb::fault) -------------------------------------
  //
  // A topology is immutable hardware description until a fault plan starts
  // mutating it.  Mutations are graph-edge operations on the routed pair:
  // the first mutation of a pair snapshots its nominal metrics so brownouts
  // can be healed and demotions expressed as fractions of the machine's
  // real capability.  A mutated fabric pair materialises a sparse override
  // entry; healing removes it again.  Mutations re-shape `p2p_perf_rank`
  // (and therefore `choose_source` / dmdas ETA estimates) immediately; the
  // Platform mirrors the bandwidth changes onto the live sim::Channels.

  /// Demote a P2P route one step down the paper's link hierarchy:
  /// 2xNVLink -> 1xNVLink (half nominal bandwidth) -> PCIe fabric fallback.
  /// PCIe (and NIC) is the floor -- total disconnection of a *device* is
  /// modelled by set_device_failed, not by removing routes.  Returns the
  /// new class.
  LinkClass demote_link(int a, int b);

  /// Brownout: scale the link's bandwidth to `fraction` of nominal without
  /// changing its class (lane error retraining throttles throughput before
  /// the driver re-routes).  `restore_link` heals class and bandwidth.
  void scale_link_bandwidth(int a, int b, double fraction);
  void restore_link(int a, int b);

  /// Blacklist a device: every route touching it reports p2p_perf_rank 0.
  void set_device_failed(int gpu);
  bool device_failed(int gpu) const {
    return !failed_.empty() && failed_[static_cast<std::size_t>(gpu)] != 0;
  }
  int num_alive_gpus() const;

  /// Bandwidth of the PCIe fabric a demoted route falls back to, GB/s.
  double pcie_fallback_gbps() const { return pcie_fallback_gbps_; }

  // --- scale accounting (tools/topo_bench memory gate) ---------------------

  /// Bytes held by the sparse routing state (direct links + overrides,
  /// attachment lists, infra graph, cached fabric rows).  The dense
  /// counterfactual is dense_bytes(): n*n link-class + bandwidth tables.
  std::size_t sparse_bytes() const;
  static std::size_t dense_bytes(int num_gpus);
  /// Number of lazily materialised fabric rows (grows with *used* routes).
  std::size_t fabric_rows_cached() const { return fabric_rows_.size(); }

 private:
  Topology() = default;

  /// Routed metrics for a pair: the direct link if one exists (authoritative,
  /// including fault overrides), otherwise the best fabric route.
  tdl::PathMetrics pair(int a, int b) const;
  tdl::PathMetrics fabric(int a, int b) const;
  const std::vector<tdl::PathMetrics>& fabric_row(int infra) const;
  std::pair<int, int> norm(int a, int b) const {
    return {a < b ? a : b, a < b ? b : a};
  }
  /// Direct entry for mutation, materialising a fabric override if needed;
  /// snapshots the pair's nominal metrics on first mutation.  Returns null
  /// for pairs with no route at all.
  tdl::PathMetrics* ensure_entry(int a, int b);

  tdl::Machine machine_;
  std::string name_;
  int num_gpus_ = 0;
  std::vector<std::string> dev_names_;
  std::vector<double> local_bw_gbps_;

  std::map<std::pair<int, int>, tdl::PathMetrics> direct_;
  struct Nominal {
    bool had_direct = false;
    tdl::PathMetrics m;
  };
  std::map<std::pair<int, int>, Nominal> nominal_;  // per mutated pair

  std::vector<std::vector<tdl::Attach>> attach_;
  tdl::InfraGraph infra_;
  mutable std::map<int, std::vector<tdl::PathMetrics>> fabric_rows_;

  std::vector<char> failed_;  // empty until first device failure
  std::vector<int> host_link_of_;
  std::vector<double> host_bw_gbps_;
  std::vector<double> host_lat_s_;
  int num_host_links_ = 0;
  double latency_s_ = 10e-6;
  double pcie_fallback_gbps_ = 17.2;
};

}  // namespace xkb::topo
