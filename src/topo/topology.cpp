#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>

#include "tdl/presets.hpp"
#include "tdl/tpo.hpp"

namespace xkb::topo {

Topology Topology::from_machine(const tdl::Machine& m) {
  tdl::Routed r = tdl::route(m);
  Topology t;
  t.machine_ = m;
  t.name_ = r.machine_name;
  t.num_gpus_ = r.num_devices;
  t.dev_names_ = std::move(r.dev_names);
  t.local_bw_gbps_ = std::move(r.local_bw_gbps);
  t.direct_ = std::move(r.direct);
  t.attach_ = std::move(r.attach);
  t.infra_ = std::move(r.infra);
  t.host_link_of_ = std::move(r.host_link_of);
  t.host_bw_gbps_ = std::move(r.host_bw_gbps);
  t.host_lat_s_ = std::move(r.host_lat_s);
  t.num_host_links_ = r.num_host_links;
  t.latency_s_ = r.default_latency_s;
  t.pcie_fallback_gbps_ = r.pcie_fallback_gbps;
  return t;
}

Topology Topology::from_tpo_text(const std::string& text,
                                 const std::string& origin) {
  return from_machine(tdl::parse_tpo(text, origin));
}

Topology Topology::from_tpo_file(const std::string& path) {
  return from_machine(tdl::parse_tpo_file(path));
}

Topology Topology::dgx1() { return from_machine(tdl::dgx1_machine()); }

Topology Topology::pcie_only(int num_gpus) {
  return from_machine(tdl::pcie_only_machine(num_gpus));
}

Topology Topology::nvswitch(int num_gpus, double gpu_gpu_gbps) {
  return from_machine(tdl::nvswitch_machine(num_gpus, gpu_gpu_gbps));
}

Topology Topology::summit_like() {
  return from_machine(tdl::summit_like_machine());
}

int Topology::device_index(const std::string& name) const {
  for (std::size_t g = 0; g < dev_names_.size(); ++g)
    if (dev_names_[g] == name) return static_cast<int>(g);
  return -1;
}

const std::vector<tdl::PathMetrics>& Topology::fabric_row(int infra) const {
  auto it = fabric_rows_.find(infra);
  if (it == fabric_rows_.end())
    it = fabric_rows_
             .emplace(infra, tdl::widest_paths(infra_, infra, false))
             .first;
  return it->second;
}

tdl::PathMetrics Topology::fabric(int a, int b) const {
  tdl::PathMetrics best;  // bw 0 = unreachable
  for (const tdl::Attach& aa : attach_[static_cast<std::size_t>(a)]) {
    const tdl::PathMetrics head =
        tdl::extend(tdl::identity_path(), aa.cls, aa.bw_gbps, aa.lat_s,
                    aa.rank);
    for (const tdl::Attach& ab : attach_[static_cast<std::size_t>(b)]) {
      tdl::PathMetrics cand;
      if (aa.infra == ab.infra) {
        cand = tdl::extend(head, ab.cls, ab.bw_gbps, ab.lat_s, ab.rank);
      } else {
        const tdl::PathMetrics& mid =
            fabric_row(aa.infra)[static_cast<std::size_t>(ab.infra)];
        if (!mid.ok()) continue;
        cand = head;
        cand.cls = std::max(cand.cls, mid.cls);
        cand.bw_gbps = std::min(cand.bw_gbps, mid.bw_gbps);
        cand.lat_s = std::max(cand.lat_s, mid.lat_s);
        cand.rank = std::min(cand.rank, mid.rank);
        cand.hops += mid.hops;
        cand = tdl::extend(cand, ab.cls, ab.bw_gbps, ab.lat_s, ab.rank);
      }
      if (!best.ok() || tdl::path_better(cand, best)) best = cand;
    }
  }
  return best;
}

tdl::PathMetrics Topology::pair(int a, int b) const {
  tdl::PathMetrics pm;
  if (a == b) {
    pm.cls = LinkClass::kSelf;
    pm.bw_gbps = local_bw_gbps_[static_cast<std::size_t>(a)];
    pm.lat_s = 0.0;
    pm.rank = tdl::default_rank(LinkClass::kSelf);
    return pm;
  }
  const auto it = direct_.find(norm(a, b));
  if (it != direct_.end()) return it->second;
  return fabric(a, b);
}

LinkClass Topology::link_class(int src, int dst) const {
  return pair(src, dst).cls;
}

double Topology::gpu_bandwidth_gbps(int src, int dst) const {
  return pair(src, dst).bw_gbps;
}

int Topology::p2p_perf_rank(int src, int dst) const {
  if (device_failed(src) || device_failed(dst)) return 0;
  const tdl::PathMetrics pm = pair(src, dst);
  if (!pm.ok()) return 0;
  return std::min(pm.rank, tdl::default_rank(LinkClass::kSelf));
}

double Topology::transfer_latency(int src, int dst) const {
  if (src == dst) return 0.0;
  return pair(src, dst).lat_s;
}

std::vector<int> Topology::peers_by_rank(int dst) const {
  std::vector<int> peers;
  peers.reserve(static_cast<std::size_t>(num_gpus_ > 0 ? num_gpus_ - 1 : 0));
  for (int g = 0; g < num_gpus_; ++g)
    if (g != dst) peers.push_back(g);
  std::stable_sort(peers.begin(), peers.end(), [&](int a, int b) {
    return p2p_perf_rank(a, dst) > p2p_perf_rank(b, dst);
  });
  return peers;
}

tdl::PathMetrics* Topology::ensure_entry(int a, int b) {
  const std::pair<int, int> key = norm(a, b);
  auto it = direct_.find(key);
  if (it != direct_.end()) {
    nominal_.emplace(key, Nominal{true, it->second});
    return &it->second;
  }
  const tdl::PathMetrics pm = fabric(a, b);
  if (!pm.ok()) return nullptr;  // no route at all: nothing to mutate
  nominal_.emplace(key, Nominal{false, pm});
  return &direct_.emplace(key, pm).first->second;
}

LinkClass Topology::demote_link(int a, int b) {
  assert(a != b && a >= 0 && b >= 0 && a < num_gpus_ && b < num_gpus_);
  const tdl::PathMetrics cur = pair(a, b);
  switch (cur.cls) {
    case LinkClass::kNVLink2: {
      tdl::PathMetrics* e = ensure_entry(a, b);
      // One of the two bonded lanes retires: half the nominal pair rate.
      e->cls = LinkClass::kNVLink1;
      e->bw_gbps = nominal_.at(norm(a, b)).m.bw_gbps * 0.5;
      e->rank = tdl::default_rank(LinkClass::kNVLink1);
      return e->cls;
    }
    case LinkClass::kNVLink1: {
      tdl::PathMetrics* e = ensure_entry(a, b);
      e->cls = LinkClass::kPCIeP2P;
      e->bw_gbps = pcie_fallback_gbps_;
      e->rank = tdl::default_rank(LinkClass::kPCIeP2P);
      return e->cls;
    }
    case LinkClass::kPCIeP2P:  // the floor: the fabric route remains
    case LinkClass::kNIC:
    case LinkClass::kSelf:
    case LinkClass::kNone:
      return cur.cls;
  }
  return cur.cls;
}

void Topology::scale_link_bandwidth(int a, int b, double fraction) {
  assert(a != b && fraction > 0.0);
  tdl::PathMetrics* e = ensure_entry(a, b);
  if (!e) return;
  e->bw_gbps = nominal_.at(norm(a, b)).m.bw_gbps * fraction;
}

void Topology::restore_link(int a, int b) {
  assert(a != b);
  const auto it = nominal_.find(norm(a, b));
  if (it == nominal_.end()) return;  // never mutated: nothing to heal
  if (it->second.had_direct)
    direct_[norm(a, b)] = it->second.m;
  else
    direct_.erase(norm(a, b));  // fabric pair: drop the override again
}

void Topology::set_device_failed(int gpu) {
  assert(gpu >= 0 && gpu < num_gpus_);
  if (failed_.empty()) failed_.assign(static_cast<std::size_t>(num_gpus_), 0);
  failed_[static_cast<std::size_t>(gpu)] = 1;
}

int Topology::num_alive_gpus() const {
  if (failed_.empty()) return num_gpus_;
  int n = 0;
  for (int g = 0; g < num_gpus_; ++g)
    if (!device_failed(g)) ++n;
  return n;
}

std::size_t Topology::sparse_bytes() const {
  // Map nodes cost key + value + ~3 pointers of bookkeeping each.
  constexpr std::size_t kNode = 3 * sizeof(void*);
  std::size_t total = 0;
  total += direct_.size() *
           (sizeof(std::pair<int, int>) + sizeof(tdl::PathMetrics) + kNode);
  total += nominal_.size() *
           (sizeof(std::pair<int, int>) + sizeof(Nominal) + kNode);
  for (const auto& at : attach_) total += at.size() * sizeof(tdl::Attach);
  total += attach_.size() * sizeof(std::vector<tdl::Attach>);
  for (const auto& adj : infra_.adj)
    total += adj.size() * sizeof(tdl::InfraEdge);
  total += infra_.adj.size() *
           (sizeof(std::vector<tdl::InfraEdge>) + sizeof(char));
  for (const auto& [k, row] : fabric_rows_) {
    (void)k;
    total += row.size() * sizeof(tdl::PathMetrics) + kNode + sizeof(int);
  }
  total += host_link_of_.size() * sizeof(int);
  total += host_bw_gbps_.size() * sizeof(double);
  total += host_lat_s_.size() * sizeof(double);
  total += local_bw_gbps_.size() * sizeof(double);
  total += failed_.size();
  return total;
}

std::size_t Topology::dense_bytes(int num_gpus) {
  const std::size_t n = static_cast<std::size_t>(num_gpus);
  // The historical representation: n*n link classes and n*n bandwidths
  // (doubled again by the nominal snapshot after the first fault mutation).
  return n * n * (sizeof(LinkClass) + sizeof(double));
}

}  // namespace xkb::topo
