#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>

namespace xkb::topo {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kNVLink2: return "NV2";
    case LinkClass::kNVLink1: return "NV1";
    case LinkClass::kPCIeP2P: return "PCIe";
    case LinkClass::kNone: return "none";
  }
  return "?";
}

Topology::Topology(std::string name, int n)
    : name_(std::move(name)),
      num_gpus_(n),
      link_(static_cast<std::size_t>(n) * n, LinkClass::kNone),
      bw_gbps_(static_cast<std::size_t>(n) * n, 0.0),
      host_link_of_(n, 0),
      host_bw_gbps_(n, 16.0) {
  for (int i = 0; i < n; ++i) {
    link_[static_cast<std::size_t>(i) * n + i] = LinkClass::kSelf;
    bw_gbps_[static_cast<std::size_t>(i) * n + i] = 750.0;  // HBM2 local
  }
}

void Topology::set_link(int a, int b, LinkClass c, double gbps) {
  assert(a != b);
  link_[static_cast<std::size_t>(a) * num_gpus_ + b] = c;
  link_[static_cast<std::size_t>(b) * num_gpus_ + a] = c;
  bw_gbps_[static_cast<std::size_t>(a) * num_gpus_ + b] = gbps;
  bw_gbps_[static_cast<std::size_t>(b) * num_gpus_ + a] = gbps;
}

LinkClass Topology::link_class(int src, int dst) const {
  return link_[static_cast<std::size_t>(src) * num_gpus_ + dst];
}

double Topology::gpu_bandwidth_gbps(int src, int dst) const {
  return bw_gbps_[static_cast<std::size_t>(src) * num_gpus_ + dst];
}

int Topology::p2p_perf_rank(int src, int dst) const {
  if (device_failed(src) || device_failed(dst)) return 0;
  switch (link_class(src, dst)) {
    case LinkClass::kSelf: return 4;
    case LinkClass::kNVLink2: return 3;
    case LinkClass::kNVLink1: return 2;
    case LinkClass::kPCIeP2P: return 1;
    case LinkClass::kNone: return 0;
  }
  return 0;
}

std::vector<int> Topology::peers_by_rank(int dst) const {
  std::vector<int> peers;
  peers.reserve(num_gpus_ - 1);
  for (int g = 0; g < num_gpus_; ++g)
    if (g != dst) peers.push_back(g);
  std::stable_sort(peers.begin(), peers.end(), [&](int a, int b) {
    return p2p_perf_rank(a, dst) > p2p_perf_rank(b, dst);
  });
  return peers;
}

void Topology::snapshot_nominal() {
  if (nominal_link_.empty()) {
    nominal_link_ = link_;
    nominal_bw_ = bw_gbps_;
  }
}

LinkClass Topology::demote_link(int a, int b) {
  assert(a != b && a >= 0 && b >= 0 && a < num_gpus_ && b < num_gpus_);
  snapshot_nominal();
  LinkClass next = link_[at(a, b)];
  double bw = bw_gbps_[at(a, b)];
  switch (link_[at(a, b)]) {
    case LinkClass::kNVLink2:
      // One of the two bonded lanes retires: half the nominal pair rate.
      next = LinkClass::kNVLink1;
      bw = nominal_bw_[at(a, b)] * 0.5;
      break;
    case LinkClass::kNVLink1:
      next = LinkClass::kPCIeP2P;
      bw = pcie_fallback_gbps_;
      break;
    case LinkClass::kPCIeP2P:  // the floor: the fabric route remains
    case LinkClass::kSelf:
    case LinkClass::kNone:
      return link_[at(a, b)];
  }
  set_link(a, b, next, bw);
  return next;
}

void Topology::scale_link_bandwidth(int a, int b, double fraction) {
  assert(a != b && fraction > 0.0);
  snapshot_nominal();
  set_link(a, b, link_[at(a, b)], nominal_bw_[at(a, b)] * fraction);
}

void Topology::restore_link(int a, int b) {
  assert(a != b);
  if (nominal_link_.empty()) return;  // never mutated: nothing to heal
  set_link(a, b, nominal_link_[at(a, b)], nominal_bw_[at(a, b)]);
}

void Topology::set_device_failed(int gpu) {
  assert(gpu >= 0 && gpu < num_gpus_);
  if (failed_.empty()) failed_.assign(static_cast<std::size_t>(num_gpus_), 0);
  failed_[static_cast<std::size_t>(gpu)] = 1;
}

int Topology::num_alive_gpus() const {
  if (failed_.empty()) return num_gpus_;
  int n = 0;
  for (int g = 0; g < num_gpus_; ++g)
    if (!device_failed(g)) ++n;
  return n;
}

Topology Topology::dgx1() {
  Topology t("DGX-1", 8);
  // Double-NVLink pairs (~96 GB/s measured, Fig. 2 green cells).
  const int nv2[][2] = {{0, 3}, {0, 4}, {1, 2}, {1, 5},
                        {2, 3}, {4, 7}, {5, 6}, {6, 7}};
  for (auto& p : nv2) t.set_link(p[0], p[1], LinkClass::kNVLink2, 96.4);
  // Single-NVLink pairs (~48 GB/s, Fig. 2 orange cells).
  const int nv1[][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 6},
                        {3, 7}, {4, 5}, {4, 6}, {5, 7}};
  for (auto& p : nv1) t.set_link(p[0], p[1], LinkClass::kNVLink1, 48.4);
  // Everything else goes over PCIe/QPI (~17 GB/s).
  for (int a = 0; a < 8; ++a)
    for (int b = a + 1; b < 8; ++b)
      if (t.link_class(a, b) == LinkClass::kNone)
        t.set_link(a, b, LinkClass::kPCIeP2P, 17.2);
  // Four PCIe Gen3 x16 switches, each shared by two adjacent GPUs.  The
  // effective pinned-memory bandwidth of a Gen3 x16 link is ~12 GB/s, well
  // below the 16 GB/s signalling rate.
  for (int g = 0; g < 8; ++g) {
    t.host_link_of_[g] = g / 2;
    t.host_bw_gbps_[g] = 12.3;
  }
  t.num_host_links_ = 4;
  return t;
}

Topology Topology::pcie_only(int num_gpus) {
  Topology t("PCIe-only", num_gpus);
  t.pcie_fallback_gbps_ = 12.0;
  for (int a = 0; a < num_gpus; ++a)
    for (int b = a + 1; b < num_gpus; ++b)
      t.set_link(a, b, LinkClass::kPCIeP2P, 12.0);
  for (int g = 0; g < num_gpus; ++g) {
    t.host_link_of_[g] = g / 2;
    t.host_bw_gbps_[g] = 16.0;
  }
  t.num_host_links_ = (num_gpus + 1) / 2;
  return t;
}

Topology Topology::nvswitch(int num_gpus, double gpu_gpu_gbps) {
  Topology t("NVSwitch", num_gpus);
  for (int a = 0; a < num_gpus; ++a)
    for (int b = a + 1; b < num_gpus; ++b)
      t.set_link(a, b, LinkClass::kNVLink2, gpu_gpu_gbps);
  for (int g = 0; g < num_gpus; ++g) {
    t.host_link_of_[g] = g / 2;
    t.host_bw_gbps_[g] = 16.0;
  }
  t.num_host_links_ = (num_gpus + 1) / 2;
  return t;
}

Topology Topology::summit_like() {
  Topology t("Summit-like", 6);
  // Within a socket group {0,1,2} / {3,4,5}: one NVLink brick each pair.
  for (int s = 0; s < 2; ++s) {
    const int base = 3 * s;
    t.set_link(base + 0, base + 1, LinkClass::kNVLink1, 48.4);
    t.set_link(base + 0, base + 2, LinkClass::kNVLink1, 48.4);
    t.set_link(base + 1, base + 2, LinkClass::kNVLink1, 48.4);
  }
  // Across sockets: staged over the X-bus.
  for (int a = 0; a < 3; ++a)
    for (int b = 3; b < 6; ++b)
      t.set_link(a, b, LinkClass::kPCIeP2P, 17.2);
  // Each GPU has its own 50 GB/s NVLink path to its CPU.
  for (int g = 0; g < 6; ++g) {
    t.host_link_of_[g] = g;  // dedicated, not shared
    t.host_bw_gbps_[g] = 50.0;
  }
  t.num_host_links_ = 6;
  return t;
}

}  // namespace xkb::topo
