// xkb::svc -- multi-tenant service mode on one shared simulated platform.
//
// One run = one workload = one exit is the batch model every bench driver
// uses; the service layer replaces it with a long-running loop: many
// tenants submit WorkloadGraph jobs over virtual time onto one Runtime,
// and the service survives overload and faults instead of exiting.
//
//   * Admission control: bounded per-tenant and global queues shed load
//     with typed rejections (QueueFull / QuotaExceeded / Brownout) rather
//     than growing unboundedly.
//   * Deadlines: each attempt gets a budget in virtual time, enforced by
//     silent-lane timers (a deadline that fires on an already-finished
//     attempt is a no-op and must not perturb the observable stream --
//     the same invisibility contract as fault triggers and watchdog
//     ticks).  Expired or failed attempts retry with capped exponential
//     backoff; exhaustion produces a dead-letter record.
//   * Arbitration: fair-share (weighted consumed service) or strict
//     priority, pluggable per service; every tie breaks on stable ids.
//   * Graceful degradation: a device failure mid-stream shrinks the
//     concurrency budget proportionally (the runtime itself blacklists
//     the device and re-queues its tasks); queue pressure past a
//     high-water mark enters brownout, shedding low-priority arrivals
//     until pressure recedes; a FaultError that unwinds the dispatch
//     loop fails only the in-flight attempts (retried through the same
//     backoff ladder) and the service keeps draining.
//
// Everything is deterministic: tenants and queues iterate in stable id
// order, timers are ordered by the engine's (time, sequence) pair, and a
// seeded soak reruns bit-identically (event hash + ledger bytes), which
// tools/service_bench gates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "runtime/runtime.hpp"
#include "sim/watchdog.hpp"
#include "workload/bridge.hpp"
#include "workload/workload.hpp"

namespace xkb::svc {

/// Misconfiguration of the service itself (bad tenant id, invalid
/// options); never raised by load or faults, which are shed or absorbed.
class ServiceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Arbitration : std::uint8_t { kFairShare, kStrictPriority };
const char* to_string(Arbitration a);
/// Accepts "fair-share"/"fair" and "strict-priority"/"priority".
Arbitration arbitration_from(const std::string& name);

/// Typed admission rejections, in check order: brownout gates first (the
/// degradation ladder overrides individual budgets), then the tenant's
/// in-system quota, then queue capacity.
enum class Reject : std::uint8_t { kQueueFull, kQuotaExceeded, kBrownout };
const char* to_string(Reject r);

enum class JobState : std::uint8_t {
  kQueued,      ///< admitted, waiting for a run slot
  kRunning,     ///< bridged onto the runtime, tasks in flight
  kBackoff,     ///< attempt failed/expired, waiting for the retry timer
  kCompleted,   ///< terminal: every task of the last attempt finished
  kDeadLetter,  ///< terminal: retries exhausted (or unservable on arrival)
};
const char* to_string(JobState s);

struct TenantSpec {
  std::string name;
  int priority = 0;   ///< strict-priority: higher runs first
  double share = 1.0; ///< fair-share weight (> 0)
  std::size_t queue_cap = 64;  ///< waiting jobs (0 = admit only into a free slot)
  std::size_t max_in_system = std::numeric_limits<std::size_t>::max() / 2;
  double deadline = 0.0;  ///< default per-attempt budget, seconds (0 = none)
};

struct JobSpec {
  std::string name;
  std::shared_ptr<const wl::WorkloadGraph> graph;
  double deadline = -1.0;  ///< per-attempt budget; < 0 = tenant default
};

struct SubmitResult {
  bool admitted = false;
  /// Job id when admitted or dead-lettered; rejected arrivals leave no
  /// job behind (load shedding is cheap by design).
  std::uint64_t job = 0;
  Reject reason = Reject::kQueueFull;  ///< meaningful when !admitted
  bool dead_letter = false;  ///< admitted=false, but recorded (unservable)
};

/// Terminal outcome of one job, appended in completion order (which is
/// itself deterministic).  `reason` is empty for completed jobs.
struct JobRecord {
  std::uint64_t id = 0;
  int tenant = -1;
  std::string name;
  JobState state = JobState::kCompleted;
  double arrival = 0.0;
  double started = -1.0;   ///< first launch instant (-1 = never launched)
  double finished = -1.0;  ///< completion / dead-letter instant
  int attempts = 1;
  bool deadline_missed = false;  ///< finished after the attempt's deadline
  std::string reason;
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_brownout = 0;
  std::uint64_t expired = 0;   ///< attempts that timed out waiting in queue
  std::uint64_t retries = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t deadline_miss = 0;  ///< completed, but past the deadline
};

struct ServiceStats : TenantStats {
  std::uint64_t brownout_enters = 0;
  std::uint64_t brownout_exits = 0;
  std::uint64_t runtime_faults = 0;   ///< FaultErrors absorbed by drain()
  std::uint64_t aborted_attempts = 0; ///< in-flight attempts failed by those
};

struct ServiceOptions {
  Arbitration arbitration = Arbitration::kFairShare;
  /// Jobs concurrently bridged onto the runtime.  Scaled down
  /// proportionally while devices are blacklisted (degradation ladder
  /// step 3), never below 1.
  int max_running = 4;
  std::size_t global_queue_cap = 256;
  /// Attempts beyond the first; attempt max_retries+1 failing dead-letters.
  int max_retries = 3;
  double backoff_base = 250e-6;  ///< attempt k retries after min(base*2^(k-1), cap)
  double backoff_cap = 10e-3;
  /// Brownout hysteresis on global queue fill (queued / global_queue_cap):
  /// enter at >= high water, exit at <= low water.  While in brownout only
  /// tenants with priority >= brownout_priority_floor are admitted.
  double brownout_high_water = 0.75;
  double brownout_low_water = 0.5;
  int brownout_priority_floor = 1;
  /// Each attempt interns its tiles in a private address window:
  /// base + k * stride for the k-th launch overall, above the wl::Bridge
  /// default window, so concurrent jobs never alias and xkb::check sees
  /// per-attempt handles.
  std::uint64_t window_base = 0x700000000000ull;
  std::uint64_t window_stride = 0x100000000ull;  ///< 4 GiB: 256 tile slots
  /// Arm a service-level watchdog (jobs in system as the outstanding
  /// signal).  Relies on Engine::observable_pending() to stay quiet over
  /// legitimate idle gaps between arrivals.
  bool watchdog = true;
  sim::Watchdog::Options watchdog_opt{};

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// The service layer.  Construct over a Runtime (whose platform may carry
/// obs/fault/check layers), add tenants, schedule `submit` calls as
/// observable engine events (tools/service_bench replays an ArrivalTrace
/// that way), then `drain()`.
class Service {
 public:
  Service(rt::Runtime& runtime, ServiceOptions opt = {});

  /// Register a tenant; returns its id (dense, in registration order).
  /// Tenants must be registered before the first submit.
  int add_tenant(TenantSpec spec);

  /// Submit a job at the current virtual time.  Runs the admission state
  /// machine; a rejected job is not recorded, an unservable one (deadline
  /// below the graph's critical-task lower bound) dead-letters
  /// immediately.
  SubmitResult submit(int tenant, JobSpec spec);

  /// Drain the platform until every admitted job reached a terminal
  /// state.  FaultErrors that unwind the dispatch loop are absorbed:
  /// the in-flight attempts fail into the retry ladder and draining
  /// resumes.  Returns the final virtual time; runs the runtime's
  /// end-of-run audit when no attempt had to be abandoned.
  double drain();

  // --- introspection -----------------------------------------------------
  const ServiceOptions& options() const { return opt_; }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantSpec& tenant(int t) const { return tenants_.at(t).spec; }
  const TenantStats& tenant_stats(int t) const { return tenants_.at(t).stats; }
  const ServiceStats& stats() const { return stats_; }
  const std::vector<JobRecord>& records() const { return records_; }
  const std::vector<std::string>& fault_notes() const { return fault_notes_; }
  bool brownout() const { return brownout_; }
  std::size_t queued() const { return total_queued_; }
  std::size_t peak_queued() const { return peak_queued_; }
  std::size_t running() const { return running_; }
  std::uint64_t in_system() const { return in_system_; }
  int effective_max_running() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    int tenant = -1;
    JobSpec spec;
    JobState state = JobState::kQueued;
    double arrival = 0.0;
    double started = -1.0;
    double deadline_rel = 0.0;  ///< per-attempt budget (0 = none)
    double deadline_at = 0.0;   ///< absolute, for the current attempt
    double min_service = 0.0;   ///< max kernel time over the graph's tasks
    int attempts = 1;
    bool deadline_missed = false;
    std::unique_ptr<wl::Bridge> bridge;  ///< alive while kRunning
    std::size_t tasks_total = 0;
    std::size_t tasks_done = 0;
    bool emitting = false;  ///< tasks may complete synchronously during emit
  };
  struct Tenant {
    TenantSpec spec;
    std::deque<std::uint64_t> queue;  ///< FIFO of queued job ids
    std::uint64_t in_system = 0;      ///< queued + running + backoff
    double consumed = 0.0;  ///< fair-share: launched flops / share
    TenantStats stats;
  };

  sim::Engine& engine() const { return rt_.platform().engine(); }
  double min_service_time(const wl::WorkloadGraph& g) const;
  Job& make_job(int tenant, JobSpec spec, double deadline_rel,
                double min_service);
  bool admit(int tenant, bool retry, Reject* why);
  void enqueue(Job& job);
  void pump();
  int pick_tenant() const;
  void launch(Job& job);
  void arm_deadline(Job& job);
  void deadline_fired(std::uint64_t id, int attempt);
  void deadline_shim(std::uint64_t id, int attempt);  // XKB_SILENT (defn)
  void on_task_done(std::uint64_t id, int attempt);
  void finish(Job& job);
  void fail_attempt(Job& job, const std::string& reason);
  void retry_fired(std::uint64_t id);
  void dead_letter(Job& job, const std::string& reason);
  void record_terminal(Job& job, const std::string& reason);
  void update_brownout();
  void abort_running(const std::string& reason);

  rt::Runtime& rt_;
  ServiceOptions opt_;
  std::vector<Tenant> tenants_;
  std::vector<std::unique_ptr<Job>> jobs_;  ///< indexed by job id
  std::vector<JobRecord> records_;
  std::vector<std::string> fault_notes_;
  ServiceStats stats_;
  std::size_t total_queued_ = 0;
  std::size_t peak_queued_ = 0;
  std::size_t running_ = 0;
  std::uint64_t in_system_ = 0;  ///< queued + running + backoff
  std::uint64_t launches_ = 0;   ///< window allocator cursor
  bool brownout_ = false;
  /// Injector-style indirection: the silent shim calls through this plain
  /// member so the XKB_SILENT body itself provably touches no observable
  /// state; consequences (retry timers, admission changes) surface on the
  /// observable lane they are scheduled onto.
  std::function<void(std::uint64_t, int)> on_deadline_;
  std::unique_ptr<sim::Watchdog> watchdog_;
};

}  // namespace xkb::svc
