// Arrival traces for the service layer: the .svt text format plus the
// seeded Poisson generator behind tools/service_bench --soak.
//
// A trace is the complete, replayable input of a multi-tenant soak: the
// tenant table and a time-ordered stream of job arrivals.  The text form
// (one directive per line, '#' comments) mirrors the .wlg / FaultPlan
// formats -- line-precise errors, a canonical writer, and a fuzz harness
// (tests/fuzz/fuzz_svc_trace.cpp) over the parser:
//
//   service-trace <name>
//   seed 42
//   tenant <name> <priority> <share> <queue-cap> <max-in-system> <deadline>
//   arrive <t> <tenant-index> <job-name> <workload-spec> [<deadline>]
//
// Tenant indices refer to `tenant` lines in order (0-based).  The
// workload spec is the wl::WorkloadSpec string ("stencil_1d:width=4,...");
// an omitted arrival deadline (-1 in canonical form) means the tenant
// default.  Arrival times must be finite, non-negative and non-decreasing
// -- replay order is line order, which keeps the soak deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/svc.hpp"

namespace xkb::svc {

struct Arrival {
  double t = 0.0;
  int tenant = 0;
  std::string job;        ///< stable job label ("interactive-j17")
  std::string spec;       ///< wl::WorkloadSpec string
  double deadline = -1.0; ///< per-attempt budget; < 0 = tenant default
};

struct ArrivalTrace {
  std::string name = "soak";
  std::uint64_t seed = 1;  ///< generator seed (provenance; replay ignores it)
  std::vector<TenantSpec> tenants;
  std::vector<Arrival> arrivals;

  /// Canonical text (parse(to_text()) round-trips to identical text).
  std::string to_text() const;

  /// Parse the text format; throws std::invalid_argument naming the line
  /// and field on malformed input, including any violation of the
  /// validate() invariants below.
  static ArrivalTrace parse(const std::string& text);
  static ArrivalTrace parse_file(const std::string& path);

  /// Structural invariants the service replay relies on: at least one
  /// tenant, in-range tenant indices, finite non-decreasing times, every
  /// workload spec parseable.  Throws std::invalid_argument.
  void validate() const;
};

/// Weighted catalogue of job shapes a generated tenant draws from.
struct TrafficMix {
  struct Entry {
    std::string spec;   ///< wl::WorkloadSpec string
    double weight = 1;  ///< relative draw probability
  };
  std::vector<Entry> entries;

  /// The default soak blend: small stencil / dnn / random DAGs plus the
  /// BLAS composition capture -- "BLAS routines + dnn steps + random
  /// DAGs" on one platform.
  static TrafficMix mixed();
};

/// Generate a seeded Poisson trace: every tenant draws exponential
/// inter-arrival gaps at `rate_hz` from its own Rng::substream of `seed`
/// (keyed "svc.arrivals"/tenant), and job shapes from "svc.mix"/tenant,
/// so adding a tenant never perturbs another tenant's stream.  The merged
/// trace is time-ordered with ties broken by tenant id, capped at
/// `total_jobs` arrivals overall.
ArrivalTrace poisson_trace(std::uint64_t seed,
                           const std::vector<TenantSpec>& tenants,
                           double rate_hz, std::size_t total_jobs,
                           const TrafficMix& mix = TrafficMix::mixed());

}  // namespace xkb::svc
