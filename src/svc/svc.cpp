#include "svc/svc.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/annotations.hpp"

namespace xkb::svc {

const char* to_string(Arbitration a) {
  switch (a) {
    case Arbitration::kFairShare: return "fair-share";
    case Arbitration::kStrictPriority: return "strict-priority";
  }
  return "?";
}

Arbitration arbitration_from(const std::string& name) {
  if (name == "fair-share" || name == "fair") return Arbitration::kFairShare;
  if (name == "strict-priority" || name == "priority")
    return Arbitration::kStrictPriority;
  throw std::invalid_argument(
      "unknown arbitration '" + name +
      "' (accepted: fair-share|fair|strict-priority|priority)");
}

const char* to_string(Reject r) {
  switch (r) {
    case Reject::kQueueFull: return "QueueFull";
    case Reject::kQuotaExceeded: return "QuotaExceeded";
    case Reject::kBrownout: return "Brownout";
  }
  return "?";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kBackoff: return "backoff";
    case JobState::kCompleted: return "completed";
    case JobState::kDeadLetter: return "dead-letter";
  }
  return "?";
}

void ServiceOptions::validate() const {
  if (max_running < 1)
    throw std::invalid_argument("ServiceOptions::max_running must be >= 1");
  if (max_retries < 0)
    throw std::invalid_argument("ServiceOptions::max_retries must be >= 0");
  if (!(backoff_base > 0.0) || !(backoff_cap >= backoff_base))
    throw std::invalid_argument(
        "ServiceOptions backoff: need 0 < backoff_base <= backoff_cap");
  if (!(brownout_high_water > 0.0) || brownout_high_water > 1.0 ||
      !(brownout_low_water >= 0.0) ||
      brownout_low_water >= brownout_high_water)
    throw std::invalid_argument(
        "ServiceOptions brownout: need 0 <= low_water < high_water <= 1");
  if (window_stride == 0)
    throw std::invalid_argument("ServiceOptions::window_stride must be > 0");
}

Service::Service(rt::Runtime& runtime, ServiceOptions opt)
    : rt_(runtime), opt_(opt) {
  opt_.validate();
  on_deadline_ = [this](std::uint64_t id, int attempt) {
    deadline_fired(id, attempt);
  };
  if (opt_.watchdog) {
    watchdog_ = std::make_unique<sim::Watchdog>(
        engine(), opt_.watchdog_opt, [this] { return in_system_; },
        [this](std::uint64_t pending) {
          std::ostringstream os;
          os << "service stuck: " << pending << " jobs in system ("
             << total_queued_ << " queued, " << running_
             << " running) with no observable progress and nothing scheduled";
          throw fault::StuckProgress(os.str());
        });
  }
}

int Service::add_tenant(TenantSpec spec) {
  if (spec.name.empty())
    spec.name = "tenant" + std::to_string(tenants_.size());
  if (!(spec.share > 0.0))
    throw std::invalid_argument("TenantSpec::share must be > 0 for '" +
                                spec.name + "'");
  if (!(spec.deadline >= 0.0))
    throw std::invalid_argument("TenantSpec::deadline must be >= 0 for '" +
                                spec.name + "'");
  Tenant tn;
  tn.spec = std::move(spec);
  tenants_.push_back(std::move(tn));
  return static_cast<int>(tenants_.size()) - 1;
}

int Service::effective_max_running() const {
  // Degradation ladder step 3: concurrency shrinks with the machine.  A
  // blacklisted device reduces the budget proportionally (never below one
  // job), so the service keeps draining at reduced throughput instead of
  // piling the full load onto the survivors.
  const int total = rt_.num_gpus();
  int alive = 0;
  for (int g = 0; g < total; ++g)
    if (!rt_.platform().device_failed(g)) ++alive;
  if (alive <= 0) return 1;  // the runtime itself throws on total loss
  return std::max(1, opt_.max_running * alive / total);
}

double Service::min_service_time(const wl::WorkloadGraph& g) const {
  // Every task must run somewhere, so no attempt can finish faster than
  // its slowest single kernel: a cheap, deterministic lower bound that
  // lets admission dead-letter unservable deadlines up front instead of
  // burning retries on a job that can never make it.
  const rt::PerfModel& perf = rt_.platform().perf();
  double lb = 0.0;
  for (const wl::TaskSpec& t : g.tasks)
    lb = std::max(lb, perf.kernel_time(t.flops, t.min_dim, t.eff_factor,
                                       /*single_precision=*/false));
  return lb;
}

Service::Job& Service::make_job(int tenant, JobSpec spec, double deadline_rel,
                                double min_service) {
  auto up = std::make_unique<Job>();
  Job& job = *up;
  job.id = jobs_.size();
  job.tenant = tenant;
  job.arrival = engine().now();
  job.deadline_rel = deadline_rel;
  job.min_service = min_service;
  job.spec = std::move(spec);
  jobs_.push_back(std::move(up));
  return job;
}

SubmitResult Service::submit(int tenant, JobSpec spec) {
  if (tenant < 0 || tenant >= num_tenants())
    throw ServiceError("submit: unknown tenant id " + std::to_string(tenant));
  if (!spec.graph) throw ServiceError("submit: job without a graph");
  Tenant& tn = tenants_[tenant];
  ++stats_.submitted;
  ++tn.stats.submitted;
  const double deadline_rel =
      spec.deadline >= 0.0 ? spec.deadline : tn.spec.deadline;
  const double min_service = min_service_time(*spec.graph);
  if (spec.name.empty())
    spec.name = tn.spec.name + "-j" + std::to_string(tn.stats.submitted);

  SubmitResult res;
  if (deadline_rel > 0.0 && deadline_rel < min_service) {
    // Unservable on arrival: the budget is below the graph's single-task
    // lower bound, so every attempt would expire.  Straight to the
    // dead-letter record -- no queue slot, no retries.
    Job& job = make_job(tenant, std::move(spec), deadline_rel, min_service);
    res.job = job.id;
    job.attempts = 0;  // never attempted
    ++in_system_;  // record_terminal releases it
    ++tn.in_system;
    std::ostringstream os;
    os << "deadline " << deadline_rel << "s below minimum service time "
       << min_service << "s";
    dead_letter(job, os.str());
    res.dead_letter = true;
    return res;
  }
  if (!admit(tenant, /*retry=*/false, &res.reason)) return res;
  Job& job = make_job(tenant, std::move(spec), deadline_rel, min_service);
  res.job = job.id;
  res.admitted = true;
  ++stats_.admitted;
  ++tn.stats.admitted;
  ++in_system_;
  ++tn.in_system;
  enqueue(job);
  if (watchdog_) watchdog_->ensure_armed();
  pump();
  return res;
}

// Admission state machine, shared by arrivals and retries.  Order:
// brownout gate, then quota, then queue capacity.  Retries keep the
// in-system quota they already hold, so only the first two gates apply a
// second time plus queue capacity.
bool Service::admit(int tenant, bool retry, Reject* why) {
  Tenant& tn = tenants_[tenant];
  if (brownout_ && tn.spec.priority < opt_.brownout_priority_floor) {
    ++stats_.rejected_brownout;
    ++tn.stats.rejected_brownout;
    *why = Reject::kBrownout;
    return false;
  }
  if (!retry && tn.in_system >= tn.spec.max_in_system) {
    ++stats_.rejected_quota;
    ++tn.stats.rejected_quota;
    *why = Reject::kQuotaExceeded;
    return false;
  }
  // A free run slot implies every queue is empty (pump() is called after
  // each state change), so the arrival will launch immediately and no
  // queue capacity applies -- this is what makes a zero-capacity queue
  // mean "admit only straight into a slot".
  const bool free_slot =
      running_ < static_cast<std::size_t>(effective_max_running());
  if (!free_slot) {
    if (tn.queue.size() >= tn.spec.queue_cap ||
        total_queued_ >= opt_.global_queue_cap) {
      ++stats_.rejected_queue_full;
      ++tn.stats.rejected_queue_full;
      *why = Reject::kQueueFull;
      return false;
    }
  }
  return true;
}

void Service::enqueue(Job& job) {
  job.state = JobState::kQueued;
  tenants_[job.tenant].queue.push_back(job.id);
  ++total_queued_;
  peak_queued_ = std::max(peak_queued_, total_queued_);
  update_brownout();
  arm_deadline(job);
}

// Pick the next tenant to serve among those with queued work; -1 if none.
// Fair-share: least weighted service consumed so far; strict priority:
// highest priority.  Both tie-break on the lowest queued job id -- the
// stable order the determinism gate relies on.
int Service::pick_tenant() const {
  int best = -1;
  for (int t = 0; t < num_tenants(); ++t) {
    const Tenant& tn = tenants_[t];
    if (tn.queue.empty()) continue;
    if (best < 0) {
      best = t;
      continue;
    }
    const Tenant& bt = tenants_[best];
    if (opt_.arbitration == Arbitration::kStrictPriority) {
      if (tn.spec.priority > bt.spec.priority ||
          (tn.spec.priority == bt.spec.priority &&
           tn.queue.front() < bt.queue.front()))
        best = t;
    } else {
      if (tn.consumed < bt.consumed ||
          (tn.consumed == bt.consumed &&
           tn.queue.front() < bt.queue.front()))
        best = t;
    }
  }
  return best;
}

void Service::pump() {
  while (running_ < static_cast<std::size_t>(effective_max_running())) {
    const int t = pick_tenant();
    if (t < 0) break;
    Tenant& tn = tenants_[t];
    const std::uint64_t id = tn.queue.front();
    tn.queue.pop_front();
    --total_queued_;
    launch(*jobs_[id]);
  }
  update_brownout();
}

void Service::launch(Job& job) {
  Tenant& tn = tenants_[job.tenant];
  const wl::WorkloadGraph& g = *job.spec.graph;
  constexpr std::uint64_t kSlot = 0x1000000ull;  // wl::Bridge tile slot
  if (g.tiles.size() * kSlot > opt_.window_stride)
    throw ServiceError("job '" + job.spec.name + "' has " +
                       std::to_string(g.tiles.size()) +
                       " tiles; raise ServiceOptions::window_stride");
  job.state = JobState::kRunning;
  if (job.started < 0) job.started = engine().now();
  ++running_;
  // Fair-share accounting at launch: weighted service the tenant has
  // consumed.  Charged up front (not on completion) so the policy reacts
  // before a burst from one tenant monopolises every slot.
  tn.consumed += g.total_flops() / tn.spec.share;

  wl::BridgeOptions bopt;
  bopt.base_address = opt_.window_base + launches_ * opt_.window_stride;
  ++launches_;
  // Owner-computes home placement, spread over the devices alive *now*;
  // jobs launched after a device failure never pick the corpse as home.
  std::vector<int> alive;
  for (int d = 0; d < rt_.num_gpus(); ++d)
    if (!rt_.platform().device_failed(d)) alive.push_back(d);
  bopt.home = [alive](std::size_t i, std::size_t) {
    return alive[i % alive.size()];
  };
  bopt.task_done = [this, id = job.id, attempt = job.attempts] {
    on_task_done(id, attempt);
  };
  job.bridge = std::make_unique<wl::Bridge>(rt_, g, std::move(bopt));
  job.tasks_done = 0;
  job.emitting = true;
  job.bridge->emit();
  job.bridge->coherent();
  job.emitting = false;
  job.tasks_total = job.bridge->tasks_submitted();
  if (job.tasks_done >= job.tasks_total) finish(job);
}

void Service::arm_deadline(Job& job) {
  if (job.deadline_rel <= 0.0) return;
  job.deadline_at = engine().now() + job.deadline_rel;
  engine().schedule_silent_at(
      job.deadline_at,
      [this, id = job.id, attempt = job.attempts] {
        deadline_shim(id, attempt);
      });
}

// Silent-lane entry: Injector-style indirection through a std::function
// member, so this body provably touches no observable state itself.  A
// deadline that fires on a finished or superseded attempt is a no-op --
// the event stream stays bit-identical to a run without deadlines.
XKB_SILENT void Service::deadline_shim(std::uint64_t id, int attempt) {
  on_deadline_(id, attempt);
}

void Service::deadline_fired(std::uint64_t id, int attempt) {
  Job& job = *jobs_[id];
  if (attempt != job.attempts) return;  // superseded by a retry
  switch (job.state) {
    case JobState::kQueued: {
      // Timed out waiting for a slot: pull it out of the queue and send
      // the attempt through the retry ladder.
      Tenant& tn = tenants_[job.tenant];
      auto it = std::find(tn.queue.begin(), tn.queue.end(), id);
      assert(it != tn.queue.end());
      tn.queue.erase(it);
      --total_queued_;
      update_brownout();
      ++stats_.expired;
      ++tn.stats.expired;
      fail_attempt(job, "expired in queue");
      break;
    }
    case JobState::kRunning:
      // The runtime cannot preempt a bridged attempt (degradation-ladder
      // choice, DESIGN.md): let it finish and count the miss.
      job.deadline_missed = true;
      break;
    case JobState::kBackoff:
    case JobState::kCompleted:
    case JobState::kDeadLetter:
      break;  // no-op: nothing to expire
  }
}

void Service::on_task_done(std::uint64_t id, int attempt) {
  Job& job = *jobs_[id];
  if (attempt != job.attempts || job.state != JobState::kRunning)
    return;  // a task of an aborted attempt straggling home
  ++job.tasks_done;
  if (!job.emitting && job.tasks_done >= job.tasks_total) finish(job);
}

void Service::finish(Job& job) {
  Tenant& tn = tenants_[job.tenant];
  job.state = JobState::kCompleted;
  --running_;
  if (job.deadline_rel > 0.0 && engine().now() > job.deadline_at)
    job.deadline_missed = true;
  if (job.deadline_missed) {
    ++stats_.deadline_miss;
    ++tn.stats.deadline_miss;
  }
  ++stats_.completed;
  ++tn.stats.completed;
  job.bridge.reset();
  record_terminal(job, "");
  pump();
}

// Attempt `job.attempts` failed (queue expiry or a runtime fault).  Either
// schedule the next attempt after capped exponential backoff, or give up
// into a dead-letter record.
void Service::fail_attempt(Job& job, const std::string& reason) {
  if (job.attempts > opt_.max_retries) {
    dead_letter(job, reason + " (attempt " + std::to_string(job.attempts) +
                         " of " + std::to_string(opt_.max_retries + 1) + ")");
    return;
  }
  Tenant& tn = tenants_[job.tenant];
  ++stats_.retries;
  ++tn.stats.retries;
  ++job.attempts;
  job.state = JobState::kBackoff;
  double d = opt_.backoff_base;
  for (int i = 2; i < job.attempts && d < opt_.backoff_cap; ++i) d *= 2.0;
  d = std::min(d, opt_.backoff_cap);
  // Retry timers are *observable*: a retry that fires re-enters admission
  // and can launch work, so it is part of the workload's own stream (and
  // keeps the engine alive across an otherwise idle gap).
  engine().schedule_after(d, [this, id = job.id] { retry_fired(id); });
}

void Service::retry_fired(std::uint64_t id) {
  Job& job = *jobs_[id];
  if (job.state != JobState::kBackoff) return;
  Reject why = Reject::kQueueFull;
  if (!admit(job.tenant, /*retry=*/true, &why)) {
    fail_attempt(job,
                 std::string("re-admission rejected: ") + to_string(why));
    return;
  }
  enqueue(job);
  if (watchdog_) watchdog_->ensure_armed();
  pump();
}

void Service::dead_letter(Job& job, const std::string& reason) {
  Tenant& tn = tenants_[job.tenant];
  job.state = JobState::kDeadLetter;
  job.bridge.reset();
  ++stats_.dead_letters;
  ++tn.stats.dead_letters;
  record_terminal(job, reason);
}

void Service::record_terminal(Job& job, const std::string& reason) {
  assert(in_system_ > 0);
  --in_system_;
  assert(tenants_[job.tenant].in_system > 0);
  --tenants_[job.tenant].in_system;
  JobRecord r;
  r.id = job.id;
  r.tenant = job.tenant;
  r.name = job.spec.name;
  r.state = job.state;
  r.arrival = job.arrival;
  r.started = job.started;
  r.finished = engine().now();
  r.attempts = job.attempts;
  r.deadline_missed = job.deadline_missed;
  r.reason = reason;
  records_.push_back(std::move(r));
  job.spec.graph.reset();  // jobs_ keeps only the terminal skeleton
}

void Service::update_brownout() {
  const double fill =
      opt_.global_queue_cap == 0
          ? (total_queued_ > 0 ? 1.0 : 0.0)
          : static_cast<double>(total_queued_) /
                static_cast<double>(opt_.global_queue_cap);
  if (!brownout_ && fill >= opt_.brownout_high_water) {
    brownout_ = true;
    ++stats_.brownout_enters;
  } else if (brownout_ && fill <= opt_.brownout_low_water) {
    brownout_ = false;
    ++stats_.brownout_exits;
  }
}

// A FaultError unwound the dispatch loop: every in-flight attempt is
// poisoned (its tasks may never complete).  Fail them into the retry
// ladder -- a retried attempt gets a fresh bridge in a fresh window, so
// stragglers from the old attempt are ignored by the epoch guard in
// on_task_done.
void Service::abort_running(const std::string& reason) {
  for (const auto& up : jobs_) {
    Job& job = *up;
    if (job.state != JobState::kRunning) continue;
    ++stats_.aborted_attempts;
    --running_;
    job.bridge.reset();
    fail_attempt(job, "runtime fault: " + reason);
  }
  pump();
}

double Service::drain() {
  double t = 0.0;
  for (;;) {
    try {
      t = rt_.drain();
    } catch (const fault::FaultError& e) {
      ++stats_.runtime_faults;
      fault_notes_.push_back(e.what());
      abort_running(e.what());
      continue;  // degradation ladder step 4: keep serving the survivors
    }
    break;  // engine fully drained
  }
  // The audit expects every submitted task to have completed; after an
  // aborted attempt that is exactly what we cannot promise, so the
  // stats_.aborted_attempts counter gates it (surfaced in reports).
  if (stats_.aborted_attempts == 0) rt_.finalize_checks();
  return t;
}

}  // namespace xkb::svc
