#include "svc/arrivals.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"

namespace xkb::svc {

namespace {

std::string tenant_name_or(const TenantSpec& t, std::size_t i) {
  return t.name.empty() ? "tenant" + std::to_string(i) : t.name;
}

[[noreturn]] void bad_line(int lineno, const std::string& line,
                           const std::string& why) {
  throw std::invalid_argument("service trace line " + std::to_string(lineno) +
                              ": " + why + " in '" + line + "'");
}

double want_num(std::istringstream& is, int lineno, const std::string& line,
                const char* what) {
  double v = 0.0;
  if (!(is >> v)) bad_line(lineno, line, std::string("missing/bad ") + what);
  // "nan"/"inf" parse as doubles, slip past every range check (NaN
  // comparisons are all false) and then poison engine time arithmetic --
  // reject at the source, like the fault-plan parser.
  if (!std::isfinite(v))
    bad_line(lineno, line, std::string(what) + " must be finite");
  return v;
}

int want_int(std::istringstream& is, int lineno, const std::string& line,
             const char* what) {
  double v = want_num(is, lineno, line, what);
  if (v != std::floor(v))
    bad_line(lineno, line, std::string(what) + " must be an integer");
  if (v < -2147483648.0 || v > 2147483647.0)
    bad_line(lineno, line, std::string(what) + " is out of range");
  return static_cast<int>(v);
}

std::uint64_t want_u64(std::istringstream& is, int lineno,
                       const std::string& line, const char* what) {
  std::string w;
  if (!(is >> w)) bad_line(lineno, line, std::string("missing/bad ") + what);
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(w, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (w[0] == '-' || pos != w.size())
    bad_line(lineno, line,
             std::string(what) + " must be a non-negative integer");
  return v;
}

std::string want_word(std::istringstream& is, int lineno,
                      const std::string& line, const char* what) {
  std::string w;
  if (!(is >> w)) bad_line(lineno, line, std::string("missing ") + what);
  return w;
}

void want_done(std::istringstream& is, int lineno, const std::string& line) {
  std::string extra;
  if (is >> extra) bad_line(lineno, line, "trailing junk '" + extra + "'");
}

}  // namespace

std::string ArrivalTrace::to_text() const {
  std::ostringstream os;
  os << "service-trace " << (name.empty() ? "soak" : name) << "\n";
  os << "seed " << seed << "\n";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantSpec& t = tenants[i];
    os << "tenant " << tenant_name_or(t, i) << " " << t.priority << " "
       << t.share << " " << t.queue_cap << " " << t.max_in_system << " "
       << t.deadline << "\n";
  }
  for (const Arrival& a : arrivals) {
    os << "arrive " << a.t << " " << a.tenant << " " << a.job << " " << a.spec
       << " " << (a.deadline < 0.0 ? -1.0 : a.deadline) << "\n";
  }
  return os.str();
}

ArrivalTrace ArrivalTrace::parse(const std::string& text) {
  ArrivalTrace tr;
  tr.name.clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  double last_t = 0.0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    std::istringstream is(hash == std::string::npos ? line
                                                    : line.substr(0, hash));
    std::string word;
    if (!(is >> word)) continue;  // blank / comment-only
    if (word == "service-trace") {
      tr.name = want_word(is, lineno, line, "trace name");
      want_done(is, lineno, line);
    } else if (word == "seed") {
      tr.seed = want_u64(is, lineno, line, "seed");
      want_done(is, lineno, line);
    } else if (word == "tenant") {
      if (!tr.arrivals.empty())
        bad_line(lineno, line, "tenant after the first arrival");
      TenantSpec t;
      t.name = want_word(is, lineno, line, "tenant name");
      t.priority = want_int(is, lineno, line, "priority");
      t.share = want_num(is, lineno, line, "share");
      if (!(t.share > 0.0)) bad_line(lineno, line, "share must be > 0");
      t.queue_cap =
          static_cast<std::size_t>(want_u64(is, lineno, line, "queue-cap"));
      t.max_in_system = static_cast<std::size_t>(
          want_u64(is, lineno, line, "max-in-system"));
      t.deadline = want_num(is, lineno, line, "deadline");
      if (t.deadline < 0.0) bad_line(lineno, line, "deadline must be >= 0");
      want_done(is, lineno, line);
      tr.tenants.push_back(std::move(t));
    } else if (word == "arrive") {
      Arrival a;
      a.t = want_num(is, lineno, line, "time");
      if (a.t < 0.0) bad_line(lineno, line, "time must be >= 0");
      if (a.t < last_t)
        bad_line(lineno, line, "arrival times must be non-decreasing");
      last_t = a.t;
      a.tenant = want_int(is, lineno, line, "tenant index");
      if (a.tenant < 0 ||
          a.tenant >= static_cast<int>(tr.tenants.size()))
        bad_line(lineno, line,
                 "tenant index out of range (tenants declared so far: " +
                     std::to_string(tr.tenants.size()) + ")");
      a.job = want_word(is, lineno, line, "job name");
      a.spec = want_word(is, lineno, line, "workload spec");
      try {
        (void)wl::WorkloadSpec::parse(a.spec);
      } catch (const std::invalid_argument& e) {
        bad_line(lineno, line, std::string("bad workload spec: ") + e.what());
      }
      // Optional per-arrival deadline; any negative value means "tenant
      // default" and canonicalises to -1.
      double dl = -1.0;
      std::string dtok;
      if (is >> dtok) {
        std::istringstream ds(dtok);
        double v = 0.0;
        char extra = 0;
        if (!(ds >> v) || (ds >> extra))
          bad_line(lineno, line, "bad deadline '" + dtok + "'");
        if (!std::isfinite(v))
          bad_line(lineno, line, "deadline must be finite");
        dl = v < 0.0 ? -1.0 : v;
        want_done(is, lineno, line);
      }
      a.deadline = dl;
      tr.arrivals.push_back(std::move(a));
    } else {
      bad_line(lineno, line, "unknown directive '" + word + "'");
    }
  }
  if (tr.name.empty())
    throw std::invalid_argument(
        "service trace: missing 'service-trace <name>' header");
  tr.validate();
  return tr;
}

ArrivalTrace ArrivalTrace::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::invalid_argument("service trace: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

void ArrivalTrace::validate() const {
  if (tenants.empty())
    throw std::invalid_argument("service trace '" + name + "': no tenants");
  double last_t = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    if (!(a.t >= 0.0) || !std::isfinite(a.t))
      throw std::invalid_argument("service trace '" + name + "': arrival " +
                                  std::to_string(i) + " has a bad time");
    if (a.t < last_t)
      throw std::invalid_argument("service trace '" + name + "': arrival " +
                                  std::to_string(i) + " goes back in time");
    last_t = a.t;
    if (a.tenant < 0 || a.tenant >= static_cast<int>(tenants.size()))
      throw std::invalid_argument("service trace '" + name + "': arrival " +
                                  std::to_string(i) +
                                  " references an unknown tenant");
    (void)wl::WorkloadSpec::parse(a.spec);  // throws with the spec's message
  }
}

TrafficMix TrafficMix::mixed() {
  TrafficMix m;
  m.entries = {
      // Small layered DAGs: halo exchanges cross real links.
      {"stencil_1d:width=4,depth=3,flops=2e8,bytes=1048576", 3.0},
      // Training-step shape: data-parallel shards + a reduce spine.
      {"dnn:width=2,depth=3,flops=2e8,bytes=1048576", 2.0},
      // Adversarial dependency structure, seeded.
      {"random:width=4,depth=3,flops=2e8,bytes=1048576,prob=0.3,seed=11", 2.0},
      // The BLAS composition capture (TRSM then GEMM on shared B).
      {"composition:n=2048,tile=1024", 1.0},
  };
  return m;
}

ArrivalTrace poisson_trace(std::uint64_t seed,
                           const std::vector<TenantSpec>& tenants,
                           double rate_hz, std::size_t total_jobs,
                           const TrafficMix& mix) {
  if (tenants.empty())
    throw std::invalid_argument("poisson_trace: no tenants");
  if (!(rate_hz > 0.0) || !std::isfinite(rate_hz))
    throw std::invalid_argument("poisson_trace: rate must be > 0");
  if (mix.entries.empty())
    throw std::invalid_argument("poisson_trace: empty traffic mix");
  double total_w = 0.0;
  for (const TrafficMix::Entry& e : mix.entries) {
    if (!(e.weight > 0.0))
      throw std::invalid_argument("poisson_trace: mix weights must be > 0");
    total_w += e.weight;
  }

  ArrivalTrace tr;
  tr.name = "poisson";
  tr.seed = seed;
  tr.tenants = tenants;
  const Rng root(seed);

  // Per-tenant independent substreams: the arrival clock and the shape
  // draw never share state, and neither depends on how many *other*
  // tenants exist -- adding a tenant leaves every existing stream intact.
  struct Stream {
    Rng gaps;
    Rng shapes;
    double next_t = 0.0;
    std::size_t count = 0;
  };
  std::vector<Stream> streams;
  streams.reserve(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    Stream s{root.substream("svc.arrivals").substream(i),
             root.substream("svc.mix").substream(i), 0.0, 0};
    s.next_t = -std::log(1.0 - s.gaps.next_double()) / rate_hz;
    streams.push_back(std::move(s));
  }

  tr.arrivals.reserve(total_jobs);
  for (std::size_t n = 0; n < total_jobs; ++n) {
    // Merge in time order, ties to the lowest tenant id.
    std::size_t best = 0;
    for (std::size_t i = 1; i < streams.size(); ++i)
      if (streams[i].next_t < streams[best].next_t) best = i;
    Stream& s = streams[best];
    Arrival a;
    a.t = s.next_t;
    a.tenant = static_cast<int>(best);
    a.job = tenant_name_or(tenants[best], best) + "-j" +
            std::to_string(++s.count);
    double u = s.shapes.next_double() * total_w;
    a.spec = mix.entries.back().spec;
    for (const TrafficMix::Entry& e : mix.entries) {
      if (u < e.weight) {
        a.spec = e.spec;
        break;
      }
      u -= e.weight;
    }
    tr.arrivals.push_back(std::move(a));
    s.next_t += -std::log(1.0 - s.gaps.next_double()) / rate_hz;
  }
  tr.validate();
  return tr;
}

}  // namespace xkb::svc
