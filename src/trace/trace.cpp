#include "trace/trace.hpp"

#include <algorithm>

namespace xkb::trace {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kHtoD: return "memcpy HtoD";
    case OpKind::kDtoH: return "memcpy DtoH";
    case OpKind::kPtoP: return "memcpy PtoP";
    case OpKind::kKernel: return "GPU Kernel";
  }
  return "?";
}

bool parse_kind(const std::string& s, OpKind& out) {
  for (OpKind k : {OpKind::kHtoD, OpKind::kDtoH, OpKind::kPtoP,
                   OpKind::kKernel}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void Trace::add(Record r) {
  if (!enabled_) return;
  max_device_ = std::max(max_device_, r.device);
  records_.push_back(std::move(r));
}

void Trace::clear() {
  records_.clear();
  max_device_ = -1;
}

Breakdown Trace::breakdown(int device) const {
  Breakdown b;
  for (const Record& r : records_) {
    if (device >= 0 && r.device != device) continue;
    const double d = r.end - r.start;
    switch (r.kind) {
      case OpKind::kHtoD: b.htod += d; break;
      case OpKind::kDtoH: b.dtoh += d; break;
      case OpKind::kPtoP: b.ptop += d; break;
      case OpKind::kKernel: b.kernel += d; break;
    }
  }
  return b;
}

sim::Time Trace::span() const {
  sim::Time t = 0.0;
  for (const Record& r : records_) t = std::max(t, r.end);
  return t;
}

sim::Time Trace::t0() const {
  if (records_.empty()) return 0.0;
  sim::Time t = records_.front().start;
  for (const Record& r : records_) t = std::min(t, r.start);
  return t;
}

std::size_t Trace::bytes(OpKind kind) const {
  std::size_t total = 0;
  for (const Record& r : records_)
    if (r.kind == kind) total += r.bytes;
  return total;
}

}  // namespace xkb::trace
