// ASCII rendering of execution traces: per-GPU Gantt charts (paper Fig. 9)
// and per-GPU stacked time tables (paper Fig. 7).
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace xkb::trace {

/// Render one row per GPU over [0, span]; each column is a time bucket.
/// Glyphs: 'K' kernel, 'H' HtoD, 'D' DtoH, 'P' PtoP, '.' idle; when several
/// op classes overlap in a bucket, kernels win (they indicate useful work).
std::string gantt_ascii(const Trace& t, int num_devices, int width = 100);

/// Per-GPU table of time per op class (Fig. 7 style).
std::string per_gpu_table(const Trace& t, int num_devices);

}  // namespace xkb::trace
