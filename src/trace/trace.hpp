// Execution tracing, the simulator's equivalent of the paper's nvprof
// methodology (Section IV-E): every GPU operation -- memcpy HtoD / DtoH /
// PtoP and kernel execution -- is recorded with its device, virtual-time
// interval and payload, then aggregated into the cumulative and normalized
// breakdowns of Figs. 6-7 and the Gantt charts of Fig. 9.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace xkb::trace {

enum class OpKind { kHtoD, kDtoH, kPtoP, kKernel };

const char* to_string(OpKind k);
/// Inverse of to_string; returns false when `s` names no OpKind.
bool parse_kind(const std::string& s, OpKind& out);

struct Record {
  int device = 0;  ///< device executing/receiving the operation
  OpKind kind = OpKind::kKernel;
  sim::Time start = 0.0;
  sim::Time end = 0.0;
  std::size_t bytes = 0;  ///< transfers only
  double flops = 0.0;     ///< kernels only
  int lane = 0;           ///< stream index within the device
  std::string label;      ///< kernel name / transfer peer
  int peer = -1;          ///< PtoP only: source device (link identity)
  /// Queueing delay: seconds the op waited behind earlier work on its
  /// resource (interval start - submission time).  Feeds the per-link
  /// contention statistics of xkb::obs and tools/trace_report.
  sim::Time queued = 0.0;
};

/// Per-class time totals ("cumulative execution time" of Fig. 6).
struct Breakdown {
  double htod = 0.0, dtoh = 0.0, ptop = 0.0, kernel = 0.0;
  double total() const { return htod + dtoh + ptop + kernel; }
  double transfers() const { return htod + dtoh + ptop; }
};

class Trace {
 public:
  void add(Record r);
  void clear();
  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  const std::vector<Record>& records() const { return records_; }

  /// Sum of operation durations by class; device == -1 sums over all GPUs.
  Breakdown breakdown(int device = -1) const;

  /// Latest end time over all records (the makespan of the traced region).
  sim::Time span() const;

  /// Earliest start time over all records.  Non-zero when the trace was
  /// cleared mid-run (e.g. after a data-on-device distribution phase) --
  /// the traced window is [t0(), span()].
  sim::Time t0() const;

  /// Bytes moved per transfer class.
  std::size_t bytes(OpKind kind) const;

  int max_device() const { return max_device_; }

 private:
  bool enabled_ = true;
  std::vector<Record> records_;
  int max_device_ = -1;
};

}  // namespace xkb::trace
