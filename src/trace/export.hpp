// Trace export: CSV (one row per GPU operation) and Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto), so simulated executions can be
// inspected with the same tooling one would point at real nvprof output.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace xkb::trace {

/// CSV with header: device,kind,start,end,bytes,flops,lane,peer,queued,label.
/// Labels containing commas, quotes or newlines are RFC-4180 quoted.
std::string to_csv(const Trace& t);

/// Inverse of to_csv: parse a CSV dump back into a Trace (tools/trace_report
/// consumes saved traces).  Throws std::invalid_argument on malformed input.
Trace from_csv(const std::string& csv);

/// Chrome trace-event JSON ("X" complete events, one track per GPU, one
/// sub-track per lane/op-class; "M" metadata events name the pid "GPU n" and
/// the tids kernel/HtoD/DtoH/PtoP).  Timestamps in microseconds of virtual
/// time.
std::string to_chrome_json(const Trace& t);

/// JSON string escaping (quotes, backslashes and all control characters),
/// shared with the enriched xkb::obs exporter.
std::string json_escape(const std::string& s);

/// Chrome-trace tid for an op class (0 kernel, 1 HtoD, 2 DtoH, 3 PtoP):
/// the per-GPU sub-track layout both exporters agree on.
int chrome_tid(OpKind k);

}  // namespace xkb::trace
