// Trace export: CSV (one row per GPU operation) and Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto), so simulated executions can be
// inspected with the same tooling one would point at real nvprof output.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace xkb::trace {

/// CSV with header: device,kind,start,end,bytes,flops,lane,label.
std::string to_csv(const Trace& t);

/// Chrome trace-event JSON ("X" complete events, one track per GPU, one
/// sub-track per lane/op-class).  Timestamps in microseconds of virtual time.
std::string to_chrome_json(const Trace& t);

}  // namespace xkb::trace
