#include "trace/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/table.hpp"

namespace xkb::trace {

std::string gantt_ascii(const Trace& t, int num_devices, int width) {
  const double span = t.span();
  std::ostringstream out;
  if (span <= 0.0 || width <= 0) return "(empty trace)\n";

  // Priority per glyph when ops overlap within a bucket.
  auto glyph_rank = [](char c) {
    switch (c) {
      case 'K': return 4;
      case 'P': return 3;
      case 'H': return 2;
      case 'D': return 1;
      default: return 0;
    }
  };
  auto kind_glyph = [](OpKind k) {
    switch (k) {
      case OpKind::kHtoD: return 'H';
      case OpKind::kDtoH: return 'D';
      case OpKind::kPtoP: return 'P';
      case OpKind::kKernel: return 'K';
    }
    return '?';
  };

  std::vector<std::string> rows(num_devices, std::string(width, '.'));
  for (const Record& r : t.records()) {
    if (r.device < 0 || r.device >= num_devices) continue;
    int b0 = static_cast<int>(r.start / span * width);
    int b1 = static_cast<int>(r.end / span * width);
    b0 = std::clamp(b0, 0, width - 1);
    b1 = std::clamp(b1, b0, width - 1);
    const char g = kind_glyph(r.kind);
    for (int b = b0; b <= b1; ++b)
      if (glyph_rank(g) > glyph_rank(rows[r.device][b])) rows[r.device][b] = g;
  }

  out << "time ->  0 .. " << span * 1e3 << " ms   "
      << "(K kernel, H HtoD, D DtoH, P PtoP, . idle)\n";
  for (int d = 0; d < num_devices; ++d)
    out << "GPU " << d << " |" << rows[d] << "|\n";
  return out.str();
}

std::string per_gpu_table(const Trace& t, int num_devices) {
  xkb::Table tab({"GPU", "HtoD(s)", "DtoH(s)", "PtoP(s)", "Kernel(s)",
                  "Transfers(s)", "Busy(s)"});
  for (int d = 0; d < num_devices; ++d) {
    const Breakdown b = t.breakdown(d);
    tab.add_row({std::to_string(d), xkb::Table::num(b.htod, 3),
                 xkb::Table::num(b.dtoh, 3), xkb::Table::num(b.ptop, 3),
                 xkb::Table::num(b.kernel, 3),
                 xkb::Table::num(b.transfers(), 3),
                 xkb::Table::num(b.total(), 3)});
  }
  return tab.to_text();
}

}  // namespace xkb::trace
