#include "trace/export.hpp"

#include <sstream>

namespace xkb::trace {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_csv(const Trace& t) {
  std::ostringstream out;
  out << "device,kind,start,end,bytes,flops,lane,label\n";
  for (const Record& r : t.records()) {
    out << r.device << ',' << to_string(r.kind) << ',' << r.start << ','
        << r.end << ',' << r.bytes << ',' << r.flops << ',' << r.lane << ','
        << r.label << '\n';
  }
  return out.str();
}

std::string to_chrome_json(const Trace& t) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  for (const Record& r : t.records()) {
    if (!first) out << ",\n";
    first = false;
    // tid separates kernels (0) from transfer classes (1..3) per GPU.
    int tid = 0;
    switch (r.kind) {
      case OpKind::kKernel: tid = 0; break;
      case OpKind::kHtoD: tid = 1; break;
      case OpKind::kDtoH: tid = 2; break;
      case OpKind::kPtoP: tid = 3; break;
    }
    out << "  {\"name\": \"" << json_escape(r.label) << "\", \"cat\": \""
        << to_string(r.kind) << "\", \"ph\": \"X\", \"pid\": " << r.device
        << ", \"tid\": " << tid << ", \"ts\": " << r.start * 1e6
        << ", \"dur\": " << (r.end - r.start) * 1e6 << "}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace xkb::trace
