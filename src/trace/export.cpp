#include "trace/export.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace xkb::trace {

namespace {

/// RFC-4180 field quoting: only labels with a comma, quote or newline need
/// it; embedded quotes are doubled.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

/// Split one logical CSV line into fields, honouring quoted fields
/// (embedded commas and newlines survive; doubled quotes are decoded).
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

int chrome_tid(OpKind k) {
  switch (k) {
    case OpKind::kKernel: return 0;
    case OpKind::kHtoD: return 1;
    case OpKind::kDtoH: return 2;
    case OpKind::kPtoP: return 3;
  }
  return 0;
}

std::string to_csv(const Trace& t) {
  std::ostringstream out;
  out.precision(17);  // round-trip doubles exactly (critical-path matching)
  out << "device,kind,start,end,bytes,flops,lane,peer,queued,label\n";
  for (const Record& r : t.records()) {
    out << r.device << ',' << to_string(r.kind) << ',' << r.start << ','
        << r.end << ',' << r.bytes << ',' << r.flops << ',' << r.lane << ','
        << r.peer << ',' << r.queued << ',' << csv_escape(r.label) << '\n';
  }
  return out.str();
}

Trace from_csv(const std::string& csv) {
  Trace t;
  std::istringstream in(csv);
  std::string line, part;
  bool header = true;
  while (std::getline(in, line)) {
    // A quoted label may contain newlines: keep appending physical lines
    // while the quote count is odd (an RFC-4180 record spans them).
    while (std::count(line.begin(), line.end(), '"') % 2 != 0 &&
           std::getline(in, part))
      line += '\n' + part;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (header) {
      header = false;
      if (line.rfind("device,", 0) != 0)
        throw std::invalid_argument("trace CSV: missing header row");
      continue;
    }
    const std::vector<std::string> f = split_csv_line(line);
    if (f.size() != 10)
      throw std::invalid_argument("trace CSV: expected 10 fields, got " +
                                  std::to_string(f.size()));
    Record r;
    r.device = std::stoi(f[0]);
    if (!parse_kind(f[1], r.kind))
      throw std::invalid_argument("trace CSV: unknown op kind '" + f[1] + "'");
    r.start = std::stod(f[2]);
    r.end = std::stod(f[3]);
    r.bytes = std::stoul(f[4]);
    r.flops = std::stod(f[5]);
    r.lane = std::stoi(f[6]);
    r.peer = std::stoi(f[7]);
    r.queued = std::stod(f[8]);
    r.label = f[9];
    t.add(std::move(r));
  }
  return t;
}

std::string to_chrome_json(const Trace& t) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << ev;
  };

  // Metadata events: name the processes ("GPU n") and the per-class
  // sub-tracks so Perfetto shows labelled rows instead of bare ids.
  std::set<int> pids;
  for (const Record& r : t.records()) pids.insert(r.device);
  static const char* kTidNames[] = {"kernel", "HtoD", "DtoH", "PtoP"};
  for (int pid : pids) {
    std::ostringstream m;
    m << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"args\": {\"name\": \"GPU " << pid << "\"}}";
    emit(m.str());
    for (int tid = 0; tid < 4; ++tid) {
      std::ostringstream n;
      n << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
        << kTidNames[tid] << "\"}}";
      emit(n.str());
    }
  }

  for (const Record& r : t.records()) {
    std::ostringstream e;
    e << "{\"name\": \"" << json_escape(r.label) << "\", \"cat\": \""
      << to_string(r.kind) << "\", \"ph\": \"X\", \"pid\": " << r.device
      << ", \"tid\": " << chrome_tid(r.kind) << ", \"ts\": " << r.start * 1e6
      << ", \"dur\": " << (r.end - r.start) * 1e6 << "}";
    emit(e.str());
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace xkb::trace
