// Reference host implementations of the unblocked factorization kernels
// used by the tiled factorization algorithms (and as ground truth in
// tests): Cholesky (POTRF) and LU without pivoting (GETRF-nopiv).
#pragma once

#include <cmath>
#include <stdexcept>

#include "blas/blas_types.hpp"
#include "util/matrix.hpp"

namespace xkb::host {

/// Unblocked Cholesky factorization of the `uplo` triangle of the n x n
/// matrix in place: A = L L^T (Lower) or A = U^T U (Upper).  Throws
/// std::domain_error if A is not positive definite.
template <typename T>
void potrf(Uplo uplo, MatrixView<T> a) {
  const std::size_t n = a.n;
  if (uplo == Uplo::Lower) {
    for (std::size_t j = 0; j < n; ++j) {
      T d = a(j, j);
      for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
      if (!(static_cast<double>(d) > 0.0))
        throw std::domain_error("potrf: matrix not positive definite");
      d = static_cast<T>(std::sqrt(static_cast<double>(d)));
      a(j, j) = d;
      for (std::size_t i = j + 1; i < n; ++i) {
        T s = a(i, j);
        for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
        a(i, j) = s / d;
      }
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      T d = a(j, j);
      for (std::size_t k = 0; k < j; ++k) d -= a(k, j) * a(k, j);
      if (!(static_cast<double>(d) > 0.0))
        throw std::domain_error("potrf: matrix not positive definite");
      d = static_cast<T>(std::sqrt(static_cast<double>(d)));
      a(j, j) = d;
      for (std::size_t i = j + 1; i < n; ++i) {
        T s = a(j, i);
        for (std::size_t k = 0; k < j; ++k) s -= a(k, j) * a(k, i);
        a(j, i) = s / d;
      }
    }
  }
}

/// Unblocked LU factorization without pivoting, in place: A = L U with L
/// unit-lower and U upper.  Suitable for diagonally dominant matrices.
template <typename T>
void getrf_nopiv(MatrixView<T> a) {
  const std::size_t n = a.m < a.n ? a.m : a.n;
  for (std::size_t k = 0; k < n; ++k) {
    const T piv = a(k, k);
    if (piv == T{})
      throw std::domain_error("getrf_nopiv: zero pivot");
    for (std::size_t i = k + 1; i < a.m; ++i) {
      a(i, k) = a(i, k) / piv;
      for (std::size_t j = k + 1; j < a.n; ++j)
        a(i, j) -= a(i, k) * a(k, j);
    }
  }
}

}  // namespace xkb::host
