// Tiled task-graph generators for the nine BLAS level-3 routines.
//
// These mirror the asynchronous tiled algorithms XKBlas takes from
// Chameleon/PLASMA (paper Section III), with the XKBlas twists:
//   * tiles are LAPACK-layout sub-matrix views (same ld, shifted origin),
//     never copied into a tile layout on the host;
//   * no implicit copy-back instructions -- host coherency is a separate,
//     explicit operation (lazy coherency);
//   * every generator only *submits tasks* to a Runtime; composition of
//     successive calls falls out of the shared handle registry.
//
// Each tile task carries both a cost model (flops, limiting dimension,
// kernel-specific efficiency) and an optional functional payload that runs
// the corresponding reference kernel on the simulated device buffers.
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>

#include "blas/blas_types.hpp"
#include "blas/host_blas.hpp"
#include "runtime/runtime.hpp"
#include "util/matrix.hpp"

namespace xkb::blas {

/// Emission controls shared by all generators.
struct EmitOptions {
  std::size_t tile = 2048;
  /// Attach functional payloads (tests); benches skip them to save memory.
  bool attach_functional = true;
  /// Force the device of every task writing output tile (i,j); return -1 to
  /// let the scheduler decide.  Used by static baselines (cuBLAS-XT, Slate).
  std::function<int(std::size_t i, std::size_t j)> force_place;
  /// Home-device hint for output tile (i,j) (owner-computes default
  /// mapping); only applied when the tile has no home yet.
  std::function<int(std::size_t i, std::size_t j)> home;
  /// After every task that writes a tile, flush the tile to the host and
  /// drop its device replicas (dataflow-ordered).  Models host-centric
  /// libraries like Slate whose output blocks round-trip every panel step.
  bool flush_outputs_each_task = false;
};

/// (P, Q) process grid used for default block-cyclic mappings; the paper
/// uses a (4,2) grid on 8 GPUs.
inline std::pair<int, int> default_grid(int ngpus) {
  int p = 1;
  for (int d = 1; d * d <= ngpus; ++d)
    if (ngpus % d == 0) p = d;
  return {ngpus / p, p};  // P >= Q, e.g. (4,2) for 8
}

namespace detail {

template <typename T>
inline constexpr double flop_scale = 1.0;
template <typename S>
inline constexpr double flop_scale<std::complex<S>> = 4.0;

template <typename T>
inline constexpr bool is_single = sizeof(real_t<T>) == 4;

inline std::size_t nt(std::size_t extent, std::size_t ts) {
  return (extent + ts - 1) / ts;
}

inline Op flip(Op op) { return op == Op::NoTrans ? Op::Trans : Op::NoTrans; }
inline Op flip_conj(Op op) {
  return op == Op::NoTrans ? Op::ConjTrans : Op::NoTrans;
}

/// Intern the handle of the stored tile of `m` whose top-left element is
/// (i0, j0) with dimensions (bm, bn).
template <typename T>
mem::DataHandle* tile_handle(rt::Runtime& rt, MatrixView<const T> m,
                             std::size_t i0, std::size_t j0, std::size_t bm,
                             std::size_t bn) {
  const T* origin = m.data + i0 + j0 * m.ld;
  return rt.registry().intern(const_cast<T*>(origin), bm, bn, m.ld,
                              sizeof(T));
}

/// Build a dense device-buffer view for access `i` of a functional context.
template <typename T>
MatrixView<const T> in_view(const rt::FunctionalCtx& ctx, std::size_t i) {
  const mem::DataHandle* h = ctx.handle(i);
  return {static_cast<const T*>(ctx.ptr(i)), h->m, h->n, h->m};
}
template <typename T>
MatrixView<T> out_view(const rt::FunctionalCtx& ctx, std::size_t i) {
  const mem::DataHandle* h = ctx.handle(i);
  return {static_cast<T*>(ctx.ptr(i)), h->m, h->n, h->m};
}

/// GEMM tile task: C = alpha op(A) op(B) + beta C (the workhorse of every
/// routine's off-diagonal updates).
template <typename T>
rt::TaskDesc gemm_task(Op opa, Op opb, T alpha, mem::DataHandle* hA,
                       mem::DataHandle* hB, T beta, mem::DataHandle* hC,
                       bool functional) {
  rt::TaskDesc d;
  d.label = "gemm";
  const bool write_only = (beta == T{});
  d.accesses = {{hA, rt::Access::kR},
                {hB, rt::Access::kR},
                {hC, write_only ? rt::Access::kW : rt::Access::kRW}};
  const std::size_t k = (opa == Op::NoTrans) ? hA->n : hA->m;
  d.flops = 2.0 * static_cast<double>(hC->m) * static_cast<double>(hC->n) *
            static_cast<double>(k) * flop_scale<T>;
  d.min_dim = std::min({hC->m, hC->n, k});
  d.single_precision = is_single<T>;
  if (functional)
    d.fn = [opa, opb, alpha, beta](const rt::FunctionalCtx& ctx) {
      host::gemm(opa, opb, alpha, in_view<T>(ctx, 0), in_view<T>(ctx, 1),
                 beta, out_view<T>(ctx, 2));
    };
  return d;
}

template <typename T>
void set_home_and_place(rt::TaskDesc& d, mem::DataHandle* hOut,
                        std::size_t i, std::size_t j, const EmitOptions& o) {
  if (o.home && hOut->home_device < 0)
    hOut->home_device = o.home(i, j);
  if (o.force_place) d.forced_device = o.force_place(i, j);
}

/// Submit a task; when the emitter is configured for host round trips,
/// chase it with a dataflow-ordered flush of every written tile.
inline void submit_task(rt::Runtime& rt, rt::TaskDesc d,
                        const EmitOptions& o) {
  std::vector<mem::DataHandle*> written;
  if (o.flush_outputs_each_task)
    for (const rt::TaskAccess& a : d.accesses)
      if (a.mode != rt::Access::kR) written.push_back(a.handle);
  rt.submit(std::move(d));
  for (mem::DataHandle* h : written) {
    rt::TaskDesc f;
    f.label = "flush";
    f.accesses.push_back({h, rt::Access::kR});
    f.host_task = true;
    f.on_complete = [&rt, h] {
      for (auto& [g, r] : h->dev) {
        if (r.resident && r.pins == 0 && !r.dirty &&
            r.state == mem::ReplicaState::kValid) {
          rt.platform().cache(g).release(h);
          if (!h->dev_buf.empty()) {
            h->dev_buf[g].clear();
            h->dev_buf[g].shrink_to_fit();
          }
        }
      }
    };
    rt.submit(std::move(f));
  }
}

}  // namespace detail

/// C = alpha op(A) op(B) + beta C.
template <typename T>
void tiled_gemm(rt::Runtime& rt, Op opa, Op opb, T alpha,
                MatrixView<const T> A, MatrixView<const T> B, T beta,
                MatrixView<T> C, const EmitOptions& o) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t K = (opa == Op::NoTrans) ? A.n : A.m;
  const std::size_t Mt = nt(C.m, ts), Nt = nt(C.n, ts), Kt = nt(K, ts);
  for (std::size_t i = 0; i < Mt; ++i)
    for (std::size_t j = 0; j < Nt; ++j) {
      const std::size_t bm = std::min(ts, C.m - i * ts);
      const std::size_t bn = std::min(ts, C.n - j * ts);
      MatrixView<const T> Cc(C.data, C.m, C.n, C.ld);
      mem::DataHandle* hC = tile_handle(rt, Cc, i * ts, j * ts, bm, bn);
      for (std::size_t l = 0; l < Kt; ++l) {
        const std::size_t bk = std::min(ts, K - l * ts);
        mem::DataHandle* hA =
            (opa == Op::NoTrans)
                ? tile_handle(rt, A, i * ts, l * ts, bm, bk)
                : tile_handle(rt, A, l * ts, i * ts, bk, bm);
        mem::DataHandle* hB =
            (opb == Op::NoTrans)
                ? tile_handle(rt, B, l * ts, j * ts, bk, bn)
                : tile_handle(rt, B, j * ts, l * ts, bn, bk);
        rt::TaskDesc d = gemm_task(opa, opb, alpha, hA, hB,
                                   l == 0 ? beta : T{1}, hC,
                                   o.attach_functional);
        set_home_and_place<T>(d, hC, i, j, o);
        detail::submit_task(rt, std::move(d), o);
      }
    }
}

/// C = alpha op(A) op(A)^T + beta C on the `uplo` triangle (SYRK), or the
/// Hermitian variant when `hermitian` (HERK: op(A)^H, real alpha/beta).
template <typename T>
void tiled_syrk(rt::Runtime& rt, Uplo uplo, Op op, T alpha,
                MatrixView<const T> A, T beta, MatrixView<T> C,
                const EmitOptions& o, bool hermitian = false) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t K = (op == Op::NoTrans) ? A.n : A.m;
  const std::size_t Nt = nt(C.n, ts), Kt = nt(K, ts);
  for (std::size_t j = 0; j < Nt; ++j) {
    for (std::size_t i = 0; i < Nt; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      const std::size_t bm = std::min(ts, C.n - i * ts);
      const std::size_t bn = std::min(ts, C.n - j * ts);
      MatrixView<const T> Cc(C.data, C.m, C.n, C.ld);
      mem::DataHandle* hC = tile_handle(rt, Cc, i * ts, j * ts, bm, bn);
      for (std::size_t l = 0; l < Kt; ++l) {
        const std::size_t bk = std::min(ts, K - l * ts);
        auto arow = [&](std::size_t r) {
          return (op == Op::NoTrans)
                     ? tile_handle(rt, A, r * ts, l * ts,
                                   std::min(ts, C.n - r * ts), bk)
                     : tile_handle(rt, A, l * ts, r * ts, bk,
                                   std::min(ts, C.n - r * ts));
        };
        const T b = (l == 0) ? beta : T{1};
        rt::TaskDesc d;
        if (i == j) {
          mem::DataHandle* hA = arow(i);
          d.label = hermitian ? "herk" : "syrk";
          d.accesses = {{hA, rt::Access::kR},
                        {hC, (l == 0 && beta == T{}) ? rt::Access::kW
                                                     : rt::Access::kRW}};
          d.flops = static_cast<double>(bn) * (bn + 1.0) * bk * flop_scale<T>;
          d.min_dim = std::min(bn, bk);
          d.eff_factor = 0.95;
          d.single_precision = is_single<T>;
          if (o.attach_functional) {
            if (hermitian) {
              if constexpr (!std::is_floating_point_v<T>) {
                const real_t<T> ra = std::real(alpha), rb = std::real(b);
                d.fn = [uplo, op, ra, rb](const rt::FunctionalCtx& ctx) {
                  host::herk(uplo, op, ra, in_view<T>(ctx, 0), rb,
                             out_view<T>(ctx, 1));
                };
              }
            } else {
              d.fn = [uplo, op, alpha, b](const rt::FunctionalCtx& ctx) {
                host::syrk(uplo, op, alpha, in_view<T>(ctx, 0), b,
                           out_view<T>(ctx, 1));
              };
            }
          }
        } else {
          // Off-diagonal tile: a plain GEMM between two row panels of A.
          mem::DataHandle* hAi = arow(i);
          mem::DataHandle* hAj = arow(j);
          const Op opb = hermitian ? flip_conj(op) : flip(op);
          d = gemm_task(op, opb, alpha, hAi, hAj, b, hC,
                        o.attach_functional);
          d.label = hermitian ? "herk" : "syrk";
        }
        set_home_and_place<T>(d, hC, i, j, o);
        detail::submit_task(rt, std::move(d), o);
      }
    }
  }
}

/// C = alpha op(A) op(B)^T + alpha op(B) op(A)^T + beta C on the triangle
/// (SYR2K) or the Hermitian rank-2k variant when `hermitian` (HER2K).
template <typename T>
void tiled_syr2k(rt::Runtime& rt, Uplo uplo, Op op, T alpha,
                 MatrixView<const T> A, MatrixView<const T> B, T beta,
                 MatrixView<T> C, const EmitOptions& o,
                 bool hermitian = false) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t K = (op == Op::NoTrans) ? A.n : A.m;
  const std::size_t Nt = nt(C.n, ts), Kt = nt(K, ts);
  for (std::size_t j = 0; j < Nt; ++j) {
    for (std::size_t i = 0; i < Nt; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      const std::size_t bm = std::min(ts, C.n - i * ts);
      const std::size_t bn = std::min(ts, C.n - j * ts);
      MatrixView<const T> Cc(C.data, C.m, C.n, C.ld);
      mem::DataHandle* hC = tile_handle(rt, Cc, i * ts, j * ts, bm, bn);
      for (std::size_t l = 0; l < Kt; ++l) {
        const std::size_t bk = std::min(ts, K - l * ts);
        auto panel = [&](MatrixView<const T> M, std::size_t r) {
          return (op == Op::NoTrans)
                     ? tile_handle(rt, M, r * ts, l * ts,
                                   std::min(ts, C.n - r * ts), bk)
                     : tile_handle(rt, M, l * ts, r * ts, bk,
                                   std::min(ts, C.n - r * ts));
        };
        const T b = (l == 0) ? beta : T{1};
        rt::TaskDesc d;
        d.label = hermitian ? "her2k" : "syr2k";
        d.single_precision = is_single<T>;
        if (i == j) {
          mem::DataHandle* hAi = panel(A, i);
          mem::DataHandle* hBi = panel(B, i);
          d.accesses = {{hAi, rt::Access::kR},
                        {hBi, rt::Access::kR},
                        {hC, (l == 0 && beta == T{}) ? rt::Access::kW
                                                     : rt::Access::kRW}};
          d.flops =
              2.0 * static_cast<double>(bn) * (bn + 1.0) * bk * flop_scale<T>;
          d.min_dim = std::min(bn, bk);
          d.eff_factor = 0.95;
          if (o.attach_functional) {
            if (hermitian) {
              if constexpr (!std::is_floating_point_v<T>) {
                const real_t<T> rb = std::real(b);
                d.fn = [uplo, op, alpha, rb](const rt::FunctionalCtx& ctx) {
                  host::her2k(uplo, op, alpha, in_view<T>(ctx, 0),
                              in_view<T>(ctx, 1), rb, out_view<T>(ctx, 2));
                };
              }
            } else {
              d.fn = [uplo, op, alpha, b](const rt::FunctionalCtx& ctx) {
                host::syr2k(uplo, op, alpha, in_view<T>(ctx, 0),
                            in_view<T>(ctx, 1), b, out_view<T>(ctx, 2));
              };
            }
          }
        } else {
          // Fused off-diagonal update:
          //   C_ij += alpha A_i B_j^T' + alpha' B_i A_j^T'.
          mem::DataHandle* hAi = panel(A, i);
          mem::DataHandle* hBj = panel(B, j);
          mem::DataHandle* hBi = panel(B, i);
          mem::DataHandle* hAj = panel(A, j);
          d.accesses = {{hAi, rt::Access::kR},
                        {hBj, rt::Access::kR},
                        {hBi, rt::Access::kR},
                        {hAj, rt::Access::kR},
                        {hC, (l == 0 && beta == T{}) ? rt::Access::kW
                                                     : rt::Access::kRW}};
          d.flops = 4.0 * static_cast<double>(bm) * bn * bk * flop_scale<T>;
          d.min_dim = std::min({bm, bn, bk});
          const Op opb = hermitian ? flip_conj(op) : flip(op);
          if (o.attach_functional) {
            const T a2 = hermitian ? conj_if(alpha) : alpha;
            d.fn = [op, opb, alpha, a2, b](const rt::FunctionalCtx& ctx) {
              host::gemm(op, opb, alpha, in_view<T>(ctx, 0),
                         in_view<T>(ctx, 1), b, out_view<T>(ctx, 4));
              host::gemm(op, opb, a2, in_view<T>(ctx, 2), in_view<T>(ctx, 3),
                         T{1}, out_view<T>(ctx, 4));
            };
          }
        }
        set_home_and_place<T>(d, hC, i, j, o);
        detail::submit_task(rt, std::move(d), o);
      }
    }
  }
}

/// C = alpha A_sym B + beta C (Side::Left) or alpha B A_sym + beta C
/// (Side::Right); Hermitian variant when `hermitian` (HEMM).
template <typename T>
void tiled_symm(rt::Runtime& rt, Side side, Uplo uplo, T alpha,
                MatrixView<const T> A, MatrixView<const T> B, T beta,
                MatrixView<T> C, const EmitOptions& o,
                bool hermitian = false) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t Mt = nt(C.m, ts), Nt = nt(C.n, ts);
  const std::size_t Lt = (side == Side::Left) ? Mt : Nt;
  const std::size_t Lext = (side == Side::Left) ? C.m : C.n;
  for (std::size_t i = 0; i < Mt; ++i)
    for (std::size_t j = 0; j < Nt; ++j) {
      const std::size_t bm = std::min(ts, C.m - i * ts);
      const std::size_t bn = std::min(ts, C.n - j * ts);
      MatrixView<const T> Cc(C.data, C.m, C.n, C.ld);
      mem::DataHandle* hC = tile_handle(rt, Cc, i * ts, j * ts, bm, bn);
      for (std::size_t l = 0; l < Lt; ++l) {
        const std::size_t bl = std::min(ts, Lext - l * ts);
        const T b = (l == 0) ? beta : T{1};
        const std::size_t diag_idx = (side == Side::Left) ? i : j;
        rt::TaskDesc d;
        d.single_precision = is_single<T>;
        if (l == diag_idx) {
          // Diagonal block of the symmetric operand: SYMM/HEMM tile kernel.
          mem::DataHandle* hAd =
              tile_handle(rt, A, l * ts, l * ts, bl, bl);
          mem::DataHandle* hB =
              (side == Side::Left)
                  ? tile_handle(rt, B, l * ts, j * ts, bl, bn)
                  : tile_handle(rt, B, i * ts, l * ts, bm, bl);
          d.label = hermitian ? "hemm" : "symm";
          d.accesses = {{hAd, rt::Access::kR},
                        {hB, rt::Access::kR},
                        {hC, (l == 0 && beta == T{}) ? rt::Access::kW
                                                     : rt::Access::kRW}};
          d.flops = 2.0 * static_cast<double>(bm) * bn * bl * flop_scale<T>;
          d.min_dim = std::min({bm, bn, bl});
          d.eff_factor = 0.95;
          if (o.attach_functional) {
            if (hermitian) {
              if constexpr (!std::is_floating_point_v<T>) {
                d.fn = [side, uplo, alpha, b](const rt::FunctionalCtx& ctx) {
                  host::hemm(side, uplo, alpha, in_view<T>(ctx, 0),
                             in_view<T>(ctx, 1), b, out_view<T>(ctx, 2));
                };
              }
            } else {
              d.fn = [side, uplo, alpha, b](const rt::FunctionalCtx& ctx) {
                host::symm(side, uplo, alpha, in_view<T>(ctx, 0),
                           in_view<T>(ctx, 1), b, out_view<T>(ctx, 2));
              };
            }
          }
        } else {
          // Off-diagonal block: the stored tile of A, possibly transposed.
          const std::size_t r = (side == Side::Left) ? i : l;
          const std::size_t c = (side == Side::Left) ? l : j;
          const bool stored = (uplo == Uplo::Lower) ? (r >= c) : (r <= c);
          const Op opsym =
              stored ? Op::NoTrans
                     : (hermitian ? Op::ConjTrans : Op::Trans);
          const std::size_t sr = stored ? r : c;
          const std::size_t sc = stored ? c : r;
          const std::size_t srm = std::min(ts, Lext - sr * ts);
          const std::size_t scn = std::min(ts, Lext - sc * ts);
          mem::DataHandle* hAs =
              tile_handle(rt, A, sr * ts, sc * ts, srm, scn);
          if (side == Side::Left) {
            mem::DataHandle* hB = tile_handle(rt, B, l * ts, j * ts, bl, bn);
            d = gemm_task(opsym, Op::NoTrans, alpha, hAs, hB, b, hC,
                          o.attach_functional);
          } else {
            mem::DataHandle* hB = tile_handle(rt, B, i * ts, l * ts, bm, bl);
            d = gemm_task(Op::NoTrans, opsym, alpha, hB, hAs, b, hC,
                          o.attach_functional);
          }
          d.label = hermitian ? "hemm" : "symm";
        }
        set_home_and_place<T>(d, hC, i, j, o);
        detail::submit_task(rt, std::move(d), o);
      }
    }
}

/// B = alpha op(A) B (Side::Left) or alpha B op(A) (Side::Right), with A
/// triangular; in place on B.
template <typename T>
void tiled_trmm(rt::Runtime& rt, Side side, Uplo uplo, Op op, Diag diag,
                T alpha, MatrixView<const T> A, MatrixView<T> B,
                const EmitOptions& o) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t Mt = nt(B.m, ts), Nt = nt(B.n, ts);
  const std::size_t Kt = (side == Side::Left) ? Mt : Nt;
  const std::size_t Kext = (side == Side::Left) ? B.m : B.n;
  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);
  MatrixView<const T> Bc(B.data, B.m, B.n, B.ld);

  // Left, effective lower: row block k reads original row blocks l < k, so
  // process k descending (their TRMM runs later).  Mirrored for the other
  // combinations.
  const bool descending = (side == Side::Left) ? eff_lower : !eff_lower;

  for (std::size_t step = 0; step < Kt; ++step) {
    const std::size_t k = descending ? Kt - 1 - step : step;
    const std::size_t bk = std::min(ts, Kext - k * ts);
    mem::DataHandle* hAkk = tile_handle(rt, A, k * ts, k * ts, bk, bk);
    const std::size_t other = (side == Side::Left) ? Nt : Mt;
    for (std::size_t j = 0; j < other; ++j) {
      const std::size_t bj = std::min(
          ts, ((side == Side::Left) ? B.n : B.m) - j * ts);
      const std::size_t bi = (side == Side::Left) ? bk : bj;
      const std::size_t bn2 = (side == Side::Left) ? bj : bk;
      const std::size_t ti = (side == Side::Left) ? k : j;
      const std::size_t tj = (side == Side::Left) ? j : k;
      mem::DataHandle* hBk =
          tile_handle(rt, Bc, ti * ts, tj * ts, bi, bn2);

      // Diagonal TRMM tile.
      rt::TaskDesc d;
      d.label = "trmm";
      d.accesses = {{hAkk, rt::Access::kR}, {hBk, rt::Access::kRW}};
      d.flops = static_cast<double>(bi) * bn2 * bk * flop_scale<T>;
      d.min_dim = std::min(bi, bn2);
      d.eff_factor = 0.8;
      d.single_precision = is_single<T>;
      if (o.attach_functional)
        d.fn = [side, uplo, op, diag, alpha](const rt::FunctionalCtx& ctx) {
          host::trmm(side, uplo, op, diag, alpha, in_view<T>(ctx, 0),
                     out_view<T>(ctx, 1));
        };
      set_home_and_place<T>(d, hBk, ti, tj, o);
      detail::submit_task(rt, std::move(d), o);

      // Off-diagonal accumulations from the original B blocks.
      for (std::size_t l = 0; l < Kt; ++l) {
        // Left needs op(A)[k,l] != 0, Right needs op(A)[l,k] != 0.
        const bool contributes = (side == Side::Left)
                                     ? (eff_lower ? l < k : l > k)
                                     : (eff_lower ? l > k : l < k);
        if (!contributes) continue;
        const std::size_t bl = std::min(ts, Kext - l * ts);
        // Stored tile of op(A)[k,l] (Left) / op(A)[l,k] (Right).
        const std::size_t rr = (side == Side::Left) ? k : l;
        const std::size_t cc = (side == Side::Left) ? l : k;
        const std::size_t sr = (op == Op::NoTrans) ? rr : cc;
        const std::size_t sc = (op == Op::NoTrans) ? cc : rr;
        mem::DataHandle* hAkl =
            tile_handle(rt, A, sr * ts, sc * ts,
                        std::min(ts, Kext - sr * ts),
                        std::min(ts, Kext - sc * ts));
        rt::TaskDesc g;
        if (side == Side::Left) {
          mem::DataHandle* hBl = tile_handle(rt, Bc, l * ts, j * ts, bl, bj);
          g = gemm_task(op, Op::NoTrans, alpha, hAkl, hBl, T{1}, hBk,
                        o.attach_functional);
        } else {
          mem::DataHandle* hBl = tile_handle(rt, Bc, j * ts, l * ts, bj, bl);
          g = gemm_task(Op::NoTrans, op, alpha, hBl, hAkl, T{1}, hBk,
                        o.attach_functional);
        }
        g.label = "trmm";
        set_home_and_place<T>(g, hBk, ti, tj, o);
        detail::submit_task(rt, std::move(g), o);
      }
    }
  }
}

/// Solve op(A) X = alpha B (Side::Left) or X op(A) = alpha B (Side::Right);
/// X overwrites B.  A triangular.
template <typename T>
void tiled_trsm(rt::Runtime& rt, Side side, Uplo uplo, Op op, Diag diag,
                T alpha, MatrixView<const T> A, MatrixView<T> B,
                const EmitOptions& o) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t Mt = nt(B.m, ts), Nt = nt(B.n, ts);
  const std::size_t Kt = (side == Side::Left) ? Mt : Nt;
  const std::size_t Kext = (side == Side::Left) ? B.m : B.n;
  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);
  MatrixView<const T> Bc(B.data, B.m, B.n, B.ld);

  // Forward substitution (ascending) when the effective factor is lower for
  // Side::Left; Side::Right mirrors the order.
  const bool ascending = (side == Side::Left) ? eff_lower : !eff_lower;

  for (std::size_t step = 0; step < Kt; ++step) {
    const std::size_t k = ascending ? step : Kt - 1 - step;
    const bool first = (step == 0);
    const std::size_t bk = std::min(ts, Kext - k * ts);
    mem::DataHandle* hAkk = tile_handle(rt, A, k * ts, k * ts, bk, bk);
    const std::size_t other = (side == Side::Left) ? Nt : Mt;
    const T alpha_k = first ? alpha : T{1};

    for (std::size_t j = 0; j < other; ++j) {
      const std::size_t bj = std::min(
          ts, ((side == Side::Left) ? B.n : B.m) - j * ts);
      const std::size_t ti = (side == Side::Left) ? k : j;
      const std::size_t tj = (side == Side::Left) ? j : k;
      const std::size_t bi = (side == Side::Left) ? bk : bj;
      const std::size_t bn2 = (side == Side::Left) ? bj : bk;
      mem::DataHandle* hBk = tile_handle(rt, Bc, ti * ts, tj * ts, bi, bn2);

      rt::TaskDesc d;
      d.label = "trsm";
      d.accesses = {{hAkk, rt::Access::kR}, {hBk, rt::Access::kRW}};
      d.flops = static_cast<double>(bi) * bn2 * bk * flop_scale<T>;
      d.min_dim = std::min(bi, bn2);
      d.eff_factor = 0.5;  // triangular solves run well below GEMM speed
      d.single_precision = is_single<T>;
      if (o.attach_functional)
        d.fn = [side, uplo, op, diag, alpha_k](const rt::FunctionalCtx& ctx) {
          host::trsm(side, uplo, op, diag, alpha_k, in_view<T>(ctx, 0),
                     out_view<T>(ctx, 1));
        };
      set_home_and_place<T>(d, hBk, ti, tj, o);
      detail::submit_task(rt, std::move(d), o);

      // Update the not-yet-solved blocks with the fresh X_k.
      for (std::size_t m = 0; m < Kt; ++m) {
        const bool remaining = ascending ? m > k : m < k;
        if (!remaining) continue;
        const std::size_t bmm = std::min(ts, Kext - m * ts);
        const std::size_t sr = (op == Op::NoTrans)
                                   ? ((side == Side::Left) ? m : k)
                                   : ((side == Side::Left) ? k : m);
        const std::size_t sc = (op == Op::NoTrans)
                                   ? ((side == Side::Left) ? k : m)
                                   : ((side == Side::Left) ? m : k);
        mem::DataHandle* hAmk =
            tile_handle(rt, A, sr * ts, sc * ts,
                        std::min(ts, Kext - sr * ts),
                        std::min(ts, Kext - sc * ts));
        const T beta_step = first ? alpha : T{1};
        rt::TaskDesc g;
        if (side == Side::Left) {
          mem::DataHandle* hBm = tile_handle(rt, Bc, m * ts, j * ts, bmm, bj);
          g = gemm_task(op, Op::NoTrans, T{-1}, hAmk, hBk, beta_step, hBm,
                        o.attach_functional);
          set_home_and_place<T>(g, hBm, m, j, o);
        } else {
          mem::DataHandle* hBm = tile_handle(rt, Bc, j * ts, m * ts, bj, bmm);
          g = gemm_task(Op::NoTrans, op, T{-1}, hBk, hAmk, beta_step, hBm,
                        o.attach_functional);
          set_home_and_place<T>(g, hBm, j, m, o);
        }
        g.label = "trsm";
        detail::submit_task(rt, std::move(g), o);
      }
    }
  }
}

/// HEMM / HERK / HER2K: the Hermitian trio (complex element types).
template <typename T>
void tiled_hemm(rt::Runtime& rt, Side side, Uplo uplo, T alpha,
                MatrixView<const T> A, MatrixView<const T> B, T beta,
                MatrixView<T> C, const EmitOptions& o) {
  static_assert(!std::is_floating_point_v<T>, "HEMM requires a complex type");
  tiled_symm(rt, side, uplo, alpha, A, B, beta, C, o, /*hermitian=*/true);
}

template <typename T>
void tiled_herk(rt::Runtime& rt, Uplo uplo, Op op, real_t<T> alpha,
                MatrixView<const T> A, real_t<T> beta, MatrixView<T> C,
                const EmitOptions& o) {
  static_assert(!std::is_floating_point_v<T>, "HERK requires a complex type");
  tiled_syrk(rt, uplo, op, T{alpha}, A, T{beta}, C, o, /*hermitian=*/true);
}

template <typename T>
void tiled_her2k(rt::Runtime& rt, Uplo uplo, Op op, T alpha,
                 MatrixView<const T> A, MatrixView<const T> B,
                 real_t<T> beta, MatrixView<T> C, const EmitOptions& o) {
  static_assert(!std::is_floating_point_v<T>, "HER2K requires a complex type");
  tiled_syr2k(rt, uplo, op, alpha, A, B, T{beta}, C, o, /*hermitian=*/true);
}

}  // namespace xkb::blas
