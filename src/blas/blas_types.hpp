// BLAS option enumerations shared by reference kernels, tiled algorithms and
// the public XKBlas-style API.
#pragma once

#include <complex>

namespace xkb {

enum class Op { NoTrans, Trans, ConjTrans };
enum class Uplo { Lower, Upper };
enum class Side { Left, Right };
enum class Diag { NonUnit, Unit };

inline const char* to_string(Op v) {
  switch (v) {
    case Op::NoTrans: return "N";
    case Op::Trans: return "T";
    case Op::ConjTrans: return "C";
  }
  return "?";
}
inline const char* to_string(Uplo v) { return v == Uplo::Lower ? "L" : "U"; }
inline const char* to_string(Side v) { return v == Side::Left ? "L" : "R"; }
inline const char* to_string(Diag v) { return v == Diag::NonUnit ? "N" : "U"; }

/// conj() that is the identity for real scalar types.
template <typename T>
inline T conj_if(T v) {
  return v;
}
template <typename T>
inline std::complex<T> conj_if(std::complex<T> v) {
  return std::conj(v);
}

}  // namespace xkb
