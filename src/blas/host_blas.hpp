// Reference host implementations of the nine standard BLAS level-3 routines
// on column-major (LAPACK layout) views.
//
// These serve three roles in the reproduction:
//   1. ground truth for tests of the tiled algorithms and of the simulated
//      multi-GPU execution (functional mode must match these bit-for-bit for
//      deterministic schedules, and to rounding for reordered reductions);
//   2. the functional payload of simulated GPU kernels: when the simulator
//      runs in functional mode, a "device kernel" executes one of these on
//      the device's replica buffers;
//   3. the CPU-side kernels of baseline models that compute on the host
//      (e.g. Chameleon LAPACK layout conversions are host work).
//
// They are deliberately straightforward loop nests: correctness and clarity
// over speed, since paper-scale performance comes from the simulator's cost
// model, not from host execution.
#pragma once

#include <cassert>

#include "blas/blas_types.hpp"
#include "util/matrix.hpp"

namespace xkb::host {

namespace detail {
/// Element (i,j) of op(A) where A is the stored matrix.
template <typename T>
inline T op_elem(const MatrixView<const T>& a, Op op, std::size_t i,
                 std::size_t j) {
  switch (op) {
    case Op::NoTrans: return a(i, j);
    case Op::Trans: return a(j, i);
    case Op::ConjTrans: return conj_if(a(j, i));
  }
  return T{};
}

/// Element (i,j) of a symmetric matrix stored in the uplo triangle.
template <typename T>
inline T sy_elem(const MatrixView<const T>& a, Uplo uplo, std::size_t i,
                 std::size_t j) {
  if ((uplo == Uplo::Lower && i >= j) || (uplo == Uplo::Upper && i <= j))
    return a(i, j);
  return a(j, i);
}

/// Element (i,j) of a Hermitian matrix stored in the uplo triangle.
template <typename T>
inline T he_elem(const MatrixView<const T>& a, Uplo uplo, std::size_t i,
                 std::size_t j) {
  // BLAS convention: imaginary parts of the diagonal are assumed zero.
  if (i == j) return T{std::real(a(i, i))};
  if ((uplo == Uplo::Lower && i > j) || (uplo == Uplo::Upper && i < j))
    return a(i, j);
  return conj_if(a(j, i));
}

/// Element (i,j) of a triangular matrix with optional implicit unit diagonal.
template <typename T>
inline T tr_elem(const MatrixView<const T>& a, Uplo uplo, Op op, Diag diag,
                 std::size_t i, std::size_t j) {
  std::size_t si = i, sj = j;
  if (op != Op::NoTrans) std::swap(si, sj);
  if (si == sj && diag == Diag::Unit) return T{1};
  const bool stored =
      (uplo == Uplo::Lower) ? (si >= sj) : (si <= sj);
  if (!stored) return T{};
  T v = a(si, sj);
  if (op == Op::ConjTrans && si != sj) v = conj_if(v);
  return v;
}
}  // namespace detail

/// C = alpha * op(A) * op(B) + beta * C, with C m-by-n and inner dim k.
template <typename T>
void gemm(Op opa, Op opb, T alpha, MatrixView<const T> a,
          MatrixView<const T> b, T beta, MatrixView<T> c) {
  const std::size_t m = c.m, n = c.n;
  const std::size_t k = (opa == Op::NoTrans) ? a.n : a.m;
  assert(((opa == Op::NoTrans) ? a.m : a.n) == m);
  assert(((opb == Op::NoTrans) ? b.m : b.n) == k);
  assert(((opb == Op::NoTrans) ? b.n : b.m) == n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      T acc{};
      for (std::size_t l = 0; l < k; ++l)
        acc += detail::op_elem(a, opa, i, l) * detail::op_elem(b, opb, l, j);
      c(i, j) = (beta == T{}) ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

/// C = alpha*A*B + beta*C (Side::Left) or alpha*B*A + beta*C (Side::Right),
/// A symmetric stored in `uplo`, C m-by-n.
template <typename T>
void symm(Side side, Uplo uplo, T alpha, MatrixView<const T> a,
          MatrixView<const T> b, T beta, MatrixView<T> c) {
  const std::size_t m = c.m, n = c.n;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      T acc{};
      if (side == Side::Left) {
        for (std::size_t l = 0; l < m; ++l)
          acc += detail::sy_elem(a, uplo, i, l) * b(l, j);
      } else {
        for (std::size_t l = 0; l < n; ++l)
          acc += b(i, l) * detail::sy_elem(a, uplo, l, j);
      }
      c(i, j) = (beta == T{}) ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

/// Hermitian variant of symm.
template <typename T>
void hemm(Side side, Uplo uplo, T alpha, MatrixView<const T> a,
          MatrixView<const T> b, T beta, MatrixView<T> c) {
  const std::size_t m = c.m, n = c.n;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      T acc{};
      if (side == Side::Left) {
        for (std::size_t l = 0; l < m; ++l)
          acc += detail::he_elem(a, uplo, i, l) * b(l, j);
      } else {
        for (std::size_t l = 0; l < n; ++l)
          acc += b(i, l) * detail::he_elem(a, uplo, l, j);
      }
      c(i, j) = (beta == T{}) ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

/// C = alpha * op(A) * op(A)^T + beta * C, only the `uplo` triangle of the
/// n-by-n C is referenced/updated.  op is NoTrans (A n-by-k) or Trans.
template <typename T>
void syrk(Uplo uplo, Op op, T alpha, MatrixView<const T> a, T beta,
          MatrixView<T> c) {
  const std::size_t n = c.n;
  const std::size_t k = (op == Op::NoTrans) ? a.n : a.m;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      T acc{};
      for (std::size_t l = 0; l < k; ++l)
        acc += detail::op_elem(a, op, i, l) * detail::op_elem(a, op, j, l);
      c(i, j) = (beta == T{}) ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

/// C = alpha*op(A)*op(B)^T + alpha*op(B)*op(A)^T + beta*C on the uplo triangle.
template <typename T>
void syr2k(Uplo uplo, Op op, T alpha, MatrixView<const T> a,
           MatrixView<const T> b, T beta, MatrixView<T> c) {
  const std::size_t n = c.n;
  const std::size_t k = (op == Op::NoTrans) ? a.n : a.m;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      T acc{};
      for (std::size_t l = 0; l < k; ++l)
        acc += detail::op_elem(a, op, i, l) * detail::op_elem(b, op, j, l) +
               detail::op_elem(b, op, i, l) * detail::op_elem(a, op, j, l);
      c(i, j) = (beta == T{}) ? alpha * acc : alpha * acc + beta * c(i, j);
    }
}

/// Hermitian rank-k update: C = alpha*op(A)*op(A)^H + beta*C (alpha, beta
/// real).  op is NoTrans or ConjTrans.
template <typename T>
void herk(Uplo uplo, Op op, real_t<T> alpha, MatrixView<const T> a,
          real_t<T> beta, MatrixView<T> c) {
  const std::size_t n = c.n;
  const std::size_t k = (op == Op::NoTrans) ? a.n : a.m;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      T acc{};
      for (std::size_t l = 0; l < k; ++l) {
        const T ai = (op == Op::NoTrans) ? a(i, l) : conj_if(a(l, i));
        const T aj = (op == Op::NoTrans) ? a(j, l) : conj_if(a(l, j));
        acc += ai * conj_if(aj);
      }
      c(i, j) = (beta == real_t<T>{}) ? T{alpha} * acc
                                       : T{alpha} * acc + T{beta} * c(i, j);
    }
}

/// Hermitian rank-2k update: C = alpha*op(A)*op(B)^H + conj(alpha)*op(B)*op(A)^H
/// + beta*C (beta real).
template <typename T>
void her2k(Uplo uplo, Op op, T alpha, MatrixView<const T> a,
           MatrixView<const T> b, real_t<T> beta, MatrixView<T> c) {
  const std::size_t n = c.n;
  const std::size_t k = (op == Op::NoTrans) ? a.n : a.m;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if (uplo == Uplo::Lower ? i < j : i > j) continue;
      T acc{};
      for (std::size_t l = 0; l < k; ++l) {
        const T ai = (op == Op::NoTrans) ? a(i, l) : conj_if(a(l, i));
        const T aj = (op == Op::NoTrans) ? a(j, l) : conj_if(a(l, j));
        const T bi = (op == Op::NoTrans) ? b(i, l) : conj_if(b(l, i));
        const T bj = (op == Op::NoTrans) ? b(j, l) : conj_if(b(l, j));
        acc += alpha * ai * conj_if(bj) + conj_if(alpha) * bi * conj_if(aj);
      }
      c(i, j) = (beta == real_t<T>{}) ? acc : acc + T{beta} * c(i, j);
    }
}

/// B = alpha * op(A) * B (Side::Left) or alpha * B * op(A) (Side::Right),
/// A triangular in `uplo` with optional unit diagonal.  In place on B.
template <typename T>
void trmm(Side side, Uplo uplo, Op op, Diag diag, T alpha,
          MatrixView<const T> a, MatrixView<T> b) {
  const std::size_t m = b.m, n = b.n;
  Matrix<T> tmp(m, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      T acc{};
      if (side == Side::Left) {
        for (std::size_t l = 0; l < m; ++l)
          acc += detail::tr_elem(a, uplo, op, diag, i, l) * b(l, j);
      } else {
        for (std::size_t l = 0; l < n; ++l)
          acc += b(i, l) * detail::tr_elem(a, uplo, op, diag, l, j);
      }
      tmp(i, j) = alpha * acc;
    }
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) b(i, j) = tmp(i, j);
}

/// Solve op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right); X overwrites B.  A triangular in `uplo`.
template <typename T>
void trsm(Side side, Uplo uplo, Op op, Diag diag, T alpha,
          MatrixView<const T> a, MatrixView<T> b) {
  const std::size_t m = b.m, n = b.n;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) b(i, j) = alpha * b(i, j);

  // The effective triangular factor op(A) is lower when (uplo==Lower) XOR
  // (op!=NoTrans) -- forward substitution; otherwise backward substitution.
  const bool eff_lower = (uplo == Uplo::Lower) == (op == Op::NoTrans);
  auto diag_of = [&](std::size_t i) {
    return detail::tr_elem(a, uplo, op, diag, i, i);
  };

  if (side == Side::Left) {
    // Solve op(A) X = B column by column.
    for (std::size_t j = 0; j < n; ++j) {
      if (eff_lower) {
        for (std::size_t i = 0; i < m; ++i) {
          T acc = b(i, j);
          for (std::size_t l = 0; l < i; ++l)
            acc -= detail::tr_elem(a, uplo, op, diag, i, l) * b(l, j);
          b(i, j) = acc / diag_of(i);
        }
      } else {
        for (std::size_t ii = m; ii-- > 0;) {
          T acc = b(ii, j);
          for (std::size_t l = ii + 1; l < m; ++l)
            acc -= detail::tr_elem(a, uplo, op, diag, ii, l) * b(l, j);
          b(ii, j) = acc / diag_of(ii);
        }
      }
    }
  } else {
    // Solve X op(A) = B row by row: x_{i,:} op(A) = b_{i,:}.
    for (std::size_t i = 0; i < m; ++i) {
      if (eff_lower) {
        // op(A) lower: columns solved from last to first.
        for (std::size_t jj = n; jj-- > 0;) {
          T acc = b(i, jj);
          for (std::size_t l = jj + 1; l < n; ++l)
            acc -= b(i, l) * detail::tr_elem(a, uplo, op, diag, l, jj);
          b(i, jj) = acc / diag_of(jj);
        }
      } else {
        for (std::size_t jj = 0; jj < n; ++jj) {
          T acc = b(i, jj);
          for (std::size_t l = 0; l < jj; ++l)
            acc -= b(i, l) * detail::tr_elem(a, uplo, op, diag, l, jj);
          b(i, jj) = acc / diag_of(jj);
        }
      }
    }
  }
}

}  // namespace xkb::host
