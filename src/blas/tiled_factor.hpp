// Tiled one-sided factorizations on top of the BLAS-3 task graphs:
// Cholesky (POTRF) and LU without pivoting (GETRF-nopiv).
//
// These are the paper's motivating use case: real applications (sparse
// direct solvers like MUMPS, which supports XKBlas) schedule *sequences of
// dependent BLAS calls*, and the composition machinery -- shared tile
// handles, point-to-point dependencies, lazy coherency -- is what keeps the
// GPUs busy across panels.  Each factorization below is literally a
// composition of the tiled TRSM/SYRK/GEMM generators plus one small
// diagonal-kernel task per panel.
#pragma once

#include "blas/host_lapack.hpp"
#include "blas/tiled.hpp"

namespace xkb::blas {

/// Tiled Cholesky of the `uplo` triangle of the n x n matrix A, in place.
/// Right-looking: POTRF(diag) -> TRSM(panel) -> SYRK/GEMM(trailing).
template <typename T>
void tiled_potrf(rt::Runtime& rt, Uplo uplo, MatrixView<T> A,
                 const EmitOptions& o) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t Nt = nt(A.n, ts);
  MatrixView<const T> Ac(A.data, A.m, A.n, A.ld);

  for (std::size_t k = 0; k < Nt; ++k) {
    const std::size_t bk = std::min(ts, A.n - k * ts);
    mem::DataHandle* hAkk = tile_handle(rt, Ac, k * ts, k * ts, bk, bk);

    // Diagonal factorization tile kernel.
    rt::TaskDesc d;
    d.label = "potrf";
    d.accesses = {{hAkk, rt::Access::kRW}};
    d.flops = static_cast<double>(bk) * bk * bk / 3.0 * flop_scale<T>;
    d.min_dim = bk;
    d.eff_factor = 0.3;  // panel factorizations run far below GEMM speed
    d.single_precision = is_single<T>;
    if (o.attach_functional)
      d.fn = [uplo](const rt::FunctionalCtx& ctx) {
        host::potrf(uplo, out_view<T>(ctx, 0));
      };
    set_home_and_place<T>(d, hAkk, k, k, o);
    submit_task(rt, std::move(d), o);

    // Panel solve + trailing update, expressed through the BLAS generators
    // on sub-views (this is composition, not a monolithic algorithm).
    const std::size_t rest = A.n - (k + 1) * ts;
    if (rest == 0 || (k + 1) * ts >= A.n) continue;
    if (uplo == Uplo::Lower) {
      MatrixView<const T> Lkk(A.data + k * ts + k * ts * A.ld, bk, bk, A.ld);
      MatrixView<T> panel(A.data + (k + 1) * ts + k * ts * A.ld, rest, bk,
                          A.ld);
      tiled_trsm<T>(rt, Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit,
                    T{1}, Lkk, panel, o);
      MatrixView<const T> panel_c(panel.data, rest, bk, A.ld);
      MatrixView<T> trailing(A.data + (k + 1) * ts + (k + 1) * ts * A.ld,
                             rest, rest, A.ld);
      tiled_syrk<T>(rt, Uplo::Lower, Op::NoTrans, T{-1}, panel_c, T{1},
                    trailing, o);
    } else {
      MatrixView<const T> Ukk(A.data + k * ts + k * ts * A.ld, bk, bk, A.ld);
      MatrixView<T> panel(A.data + k * ts + (k + 1) * ts * A.ld, bk, rest,
                          A.ld);
      tiled_trsm<T>(rt, Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit,
                    T{1}, Ukk, panel, o);
      MatrixView<const T> panel_c(panel.data, bk, rest, A.ld);
      MatrixView<T> trailing(A.data + (k + 1) * ts + (k + 1) * ts * A.ld,
                             rest, rest, A.ld);
      tiled_syrk<T>(rt, Uplo::Upper, Op::Trans, T{-1}, panel_c, T{1},
                    trailing, o);
    }
  }
}

/// Tiled LU without pivoting of the square matrix A, in place (L unit-lower,
/// U upper).  Right-looking: GETRF(diag) -> TRSM(row & column panels) ->
/// GEMM(trailing).
template <typename T>
void tiled_getrf_nopiv(rt::Runtime& rt, MatrixView<T> A,
                       const EmitOptions& o) {
  using namespace detail;
  const std::size_t ts = o.tile;
  const std::size_t Nt = nt(A.n, ts);
  MatrixView<const T> Ac(A.data, A.m, A.n, A.ld);

  for (std::size_t k = 0; k < Nt; ++k) {
    const std::size_t bk = std::min(ts, A.n - k * ts);
    mem::DataHandle* hAkk = tile_handle(rt, Ac, k * ts, k * ts, bk, bk);

    rt::TaskDesc d;
    d.label = "getrf";
    d.accesses = {{hAkk, rt::Access::kRW}};
    d.flops = 2.0 / 3.0 * static_cast<double>(bk) * bk * bk * flop_scale<T>;
    d.min_dim = bk;
    d.eff_factor = 0.3;
    d.single_precision = is_single<T>;
    if (o.attach_functional)
      d.fn = [](const rt::FunctionalCtx& ctx) {
        host::getrf_nopiv(out_view<T>(ctx, 0));
      };
    set_home_and_place<T>(d, hAkk, k, k, o);
    submit_task(rt, std::move(d), o);

    const std::size_t rest = A.n - (k + 1) * ts;
    if (rest == 0 || (k + 1) * ts >= A.n) continue;
    MatrixView<const T> Akk(A.data + k * ts + k * ts * A.ld, bk, bk, A.ld);

    // Column panel: A[k+1:, k] := A[k+1:, k] U_kk^-1.
    MatrixView<T> col(A.data + (k + 1) * ts + k * ts * A.ld, rest, bk, A.ld);
    tiled_trsm<T>(rt, Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                  T{1}, Akk, col, o);
    // Row panel: A[k, k+1:] := L_kk^-1 A[k, k+1:].
    MatrixView<T> row(A.data + k * ts + (k + 1) * ts * A.ld, bk, rest, A.ld);
    tiled_trsm<T>(rt, Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit, T{1},
                  Akk, row, o);
    // Trailing update: A[k+1:, k+1:] -= col * row.
    MatrixView<const T> col_c(col.data, rest, bk, A.ld);
    MatrixView<const T> row_c(row.data, bk, rest, A.ld);
    MatrixView<T> trailing(A.data + (k + 1) * ts + (k + 1) * ts * A.ld, rest,
                           rest, A.ld);
    tiled_gemm<T>(rt, Op::NoTrans, Op::NoTrans, T{-1}, col_c, row_c, T{1},
                  trailing, o);
  }
}

}  // namespace xkb::blas
