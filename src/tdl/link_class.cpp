#include "tdl/link_class.hpp"

#include <cstring>

namespace xkb::tdl {

const char* to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kNVLink2: return "NV2";
    case LinkClass::kNVLink1: return "NV1";
    case LinkClass::kPCIeP2P: return "PCIe";
    case LinkClass::kNIC: return "NIC";
    case LinkClass::kNone: return "none";
  }
  return "?";
}

int default_rank(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return 4;
    case LinkClass::kNVLink2: return 3;
    case LinkClass::kNVLink1: return 2;
    case LinkClass::kPCIeP2P: return 1;
    case LinkClass::kNIC: return 1;
    case LinkClass::kNone: return 0;
  }
  return 0;
}

const char* tpo_token(LinkClass c) {
  switch (c) {
    case LinkClass::kSelf: return "self";
    case LinkClass::kNVLink2: return "nv2";
    case LinkClass::kNVLink1: return "nv1";
    case LinkClass::kPCIeP2P: return "pcie";
    case LinkClass::kNIC: return "nic";
    case LinkClass::kNone: return "none";
  }
  return "?";
}

bool link_class_from_token(const char* token, LinkClass* out) {
  if (std::strcmp(token, "nv2") == 0) *out = LinkClass::kNVLink2;
  else if (std::strcmp(token, "nv1") == 0) *out = LinkClass::kNVLink1;
  else if (std::strcmp(token, "pcie") == 0) *out = LinkClass::kPCIeP2P;
  else if (std::strcmp(token, "nic") == 0) *out = LinkClass::kNIC;
  else return false;
  return true;
}

}  // namespace xkb::tdl
