#include "tdl/routing.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace xkb::tdl {

namespace {

constexpr int kNeutralRank = 1 << 20;

LinkClass weaker(LinkClass a, LinkClass b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

}  // namespace

PathMetrics identity_path() {
  PathMetrics p;
  p.cls = LinkClass::kSelf;
  p.bw_gbps = std::numeric_limits<double>::infinity();
  p.lat_s = 0.0;
  p.rank = kNeutralRank;
  p.hops = 0;
  return p;
}

PathMetrics extend(const PathMetrics& p, LinkClass cls, double bw_gbps,
                   double lat_s, int rank) {
  PathMetrics out;
  out.cls = weaker(p.cls, cls);
  out.bw_gbps = std::min(p.bw_gbps, bw_gbps);
  out.lat_s = std::max(p.lat_s, lat_s);
  out.rank = std::min(p.rank, rank);
  out.hops = p.hops + 1;
  return out;
}

bool path_better(const PathMetrics& a, const PathMetrics& b) {
  if (a.bw_gbps != b.bw_gbps) return a.bw_gbps > b.bw_gbps;
  return a.hops < b.hops;
}

std::vector<PathMetrics> widest_paths(const InfraGraph& g, int src,
                                      bool host_role) {
  const int n = static_cast<int>(g.names.size());
  std::vector<PathMetrics> best(n);
  std::vector<char> settled(static_cast<std::size_t>(n), 0);
  best[src] = identity_path();
  // Dijkstra on the bottleneck semiring.  The infrastructure graph is small
  // (O(devices/16) nodes), so the quadratic node selection is fine and the
  // ascending-index scan makes every tie-break deterministic.
  for (int round = 0; round < n; ++round) {
    int u = -1;
    for (int v = 0; v < n; ++v) {
      if (settled[v] || !best[v].ok()) continue;
      if (u < 0 || path_better(best[v], best[u])) u = v;
    }
    if (u < 0) break;
    settled[u] = 1;
    for (const InfraEdge& e : g.adj[u]) {
      const PathMetrics cand =
          extend(best[u], e.cls, host_role ? e.hostbw_gbps : e.bw_gbps,
                 e.lat_s, e.rank);
      if (!settled[e.peer] && path_better(cand, best[e.peer]))
        best[e.peer] = cand;
    }
  }
  return best;
}

Routed route(const Machine& m) {
  m.validate();
  Routed r;
  r.machine_name = m.name;
  r.default_latency_s = m.default_latency_s;
  r.pcie_fallback_gbps = m.pcie_fallback_gbps;

  // Split nodes into devices (indexed in declaration order -- these ARE the
  // GPU ids) and infrastructure (switches + hosts).
  const int total = static_cast<int>(m.nodes.size());
  std::vector<int> dev_of(static_cast<std::size_t>(total), -1);
  std::vector<int> infra_of(static_cast<std::size_t>(total), -1);
  for (int i = 0; i < total; ++i) {
    const Node& nd = m.nodes[static_cast<std::size_t>(i)];
    if (nd.kind == NodeKind::kDevice) {
      dev_of[static_cast<std::size_t>(i)] = r.num_devices++;
      r.dev_names.push_back(nd.name);
      r.local_bw_gbps.push_back(nd.mem_gbps);
    } else {
      infra_of[static_cast<std::size_t>(i)] =
          static_cast<int>(r.infra.names.size());
      r.infra.names.push_back(nd.name);
      r.infra.is_host.push_back(nd.kind == NodeKind::kHost ? 1 : 0);
    }
  }
  r.infra.adj.resize(r.infra.names.size());
  r.attach.resize(static_cast<std::size_t>(r.num_devices));

  for (const Link& l : m.links) {
    const int da = dev_of[static_cast<std::size_t>(l.a)];
    const int db = dev_of[static_cast<std::size_t>(l.b)];
    if (da >= 0 && db >= 0) {
      PathMetrics pm;
      pm.cls = l.cls;
      pm.bw_gbps = l.bw_gbps;
      pm.lat_s = l.lat_s;
      pm.rank = l.rank;
      pm.hops = 1;
      r.direct[{std::min(da, db), std::max(da, db)}] = pm;
    } else if (da < 0 && db < 0) {
      const int ia = infra_of[static_cast<std::size_t>(l.a)];
      const int ib = infra_of[static_cast<std::size_t>(l.b)];
      r.infra.adj[static_cast<std::size_t>(ia)].push_back(
          InfraEdge{ib, l.cls, l.bw_gbps, l.hostbw_gbps, l.lat_s, l.rank});
      r.infra.adj[static_cast<std::size_t>(ib)].push_back(
          InfraEdge{ia, l.cls, l.bw_gbps, l.hostbw_gbps, l.lat_s, l.rank});
    } else {
      const int dev = da >= 0 ? da : db;
      const int inf = infra_of[static_cast<std::size_t>(da >= 0 ? l.b : l.a)];
      r.attach[static_cast<std::size_t>(dev)].push_back(
          Attach{inf, l.cls, l.bw_gbps, l.hostbw_gbps, l.lat_s, l.rank});
    }
  }
  for (auto& edges : r.infra.adj)
    std::sort(edges.begin(), edges.end(),
              [](const InfraEdge& a, const InfraEdge& b) {
                return a.peer < b.peer;
              });
  for (auto& at : r.attach)
    std::sort(at.begin(), at.end(),
              [](const Attach& a, const Attach& b) { return a.infra < b.infra; });

  // Host resolution: for every device, the widest dev->host path in the
  // host role.  The first infrastructure node on that path identifies the
  // host link; devices entering through the same switch share the link
  // (DGX-1: two GPUs per PCIe switch), a device attached straight to a
  // host gets a dedicated link (Summit: one NVLink brick per GPU).
  std::map<int, std::vector<PathMetrics>> host_rows;  // per attach node
  std::map<std::pair<int, int>, int> link_ids;        // (attach, dev|-1) -> id
  r.host_link_of.resize(static_cast<std::size_t>(r.num_devices), -1);
  r.host_bw_gbps.resize(static_cast<std::size_t>(r.num_devices), 0.0);
  r.host_lat_s.resize(static_cast<std::size_t>(r.num_devices), 0.0);
  for (int g = 0; g < r.num_devices; ++g) {
    PathMetrics best;
    int best_attach = -1;
    for (const Attach& a : r.attach[static_cast<std::size_t>(g)]) {
      auto it = host_rows.find(a.infra);
      if (it == host_rows.end())
        it = host_rows.emplace(a.infra, widest_paths(r.infra, a.infra, true))
                 .first;
      const std::vector<PathMetrics>& row = it->second;
      for (std::size_t h = 0; h < row.size(); ++h) {
        if (!r.infra.is_host[h] || !row[h].ok()) continue;
        const PathMetrics cand = extend(row[h], a.cls, a.hostbw_gbps, a.lat_s,
                                        a.rank);
        if (!best.ok() || path_better(cand, best)) {
          best = cand;
          best_attach = a.infra;
        }
      }
    }
    if (!best.ok())
      throw std::invalid_argument(
          "machine '" + m.name + "': device '" +
          r.dev_names[static_cast<std::size_t>(g)] + "' has no path to a host");
    r.host_bw_gbps[static_cast<std::size_t>(g)] = best.bw_gbps;
    r.host_lat_s[static_cast<std::size_t>(g)] = best.lat_s;
    const bool dedicated =
        r.infra.is_host[static_cast<std::size_t>(best_attach)] != 0;
    const std::pair<int, int> key{best_attach, dedicated ? g : -1};
    auto [it, inserted] = link_ids.emplace(key, r.num_host_links);
    if (inserted) ++r.num_host_links;
    r.host_link_of[static_cast<std::size_t>(g)] = it->second;
  }
  return r;
}

}  // namespace xkb::tdl
