#include "tdl/tpo.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace xkb::tdl {

namespace {

/// Shortest decimal form that parses back to the same double ("96.4", not
/// "96.400000000000006").  Canonical: the same value always prints the same.
std::string fmt_double(double v) {
  for (int prec = 1; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Context for one line being parsed; all field errors funnel through fail().
struct LineCtx {
  const std::string& origin;
  std::size_t line = 0;
  std::string directive;

  [[noreturn]] void fail(const std::string& field,
                         const std::string& what) const {
    throw std::invalid_argument(origin + ":" + std::to_string(line) + ": " +
                                directive + ": field '" + field + "': " +
                                what);
  }

  std::string word(std::istringstream& in, const char* field) const {
    std::string w;
    if (!(in >> w)) fail(field, "missing value");
    return w;
  }

  double double_field(std::istringstream& in, const char* field) const {
    const std::string w = word(in, field);
    std::size_t pos = 0;
    double x = 0.0;
    try {
      x = std::stod(w, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != w.size()) fail(field, "'" + w + "' is not a number");
    // stod accepts "nan" and "inf", which defeat every downstream range
    // check and poison the widest-path arithmetic; a .tpo file never
    // legitimately contains either.
    if (!std::isfinite(x)) fail(field, "'" + w + "' is not finite");
    return x;
  }

  int int_field(std::istringstream& in, const char* field) const {
    const std::string w = word(in, field);
    std::size_t pos = 0;
    long x = 0;
    try {
      x = std::stol(w, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != w.size()) fail(field, "'" + w + "' is not an integer");
    return static_cast<int>(x);
  }

  std::string name_field(std::istringstream& in, const char* field) const {
    const std::string w = word(in, field);
    if (!valid_node_name(w))
      fail(field, "'" + w +
                      "' is not a valid name (letter first, then letters, "
                      "digits, '_', '-', '.')");
    return w;
  }

  void want_done(std::istringstream& in) const {
    std::string extra;
    if (in >> extra) fail("trailing", "unexpected token '" + extra + "'");
  }
};

}  // namespace

Machine parse_tpo(const std::string& text, const std::string& origin) {
  Machine m;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  bool saw_machine = false;
  std::set<std::pair<int, int>> linked;

  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line
    LineCtx ctx{origin, lineno, directive};

    if (directive == "machine") {
      if (saw_machine) ctx.fail("name", "duplicate 'machine' directive");
      m.name = ctx.name_field(ls, "name");
      saw_machine = true;
      ctx.want_done(ls);
      continue;
    }
    if (!saw_machine)
      ctx.fail("directive", "'machine <name>' must come first");

    if (directive == "latency") {
      m.default_latency_s = ctx.double_field(ls, "seconds");
      if (m.default_latency_s < 0.0)
        ctx.fail("seconds", "latency must be non-negative");
      ctx.want_done(ls);
    } else if (directive == "pcie-fallback") {
      m.pcie_fallback_gbps = ctx.double_field(ls, "gbps");
      if (!(m.pcie_fallback_gbps > 0.0))
        ctx.fail("gbps", "bandwidth must be positive");
      ctx.want_done(ls);
    } else if (directive == "host" || directive == "switch" ||
               directive == "dev") {
      Node nd;
      nd.name = ctx.name_field(ls, "name");
      nd.kind = directive == "host"     ? NodeKind::kHost
                : directive == "switch" ? NodeKind::kSwitch
                                        : NodeKind::kDevice;
      if (m.node_index(nd.name) >= 0)
        ctx.fail("name", "duplicate node name '" + nd.name + "'");
      std::string key;
      while (ls >> key) {
        if (key == "mem" && nd.kind == NodeKind::kDevice) {
          nd.mem_gbps = ctx.double_field(ls, "mem");
          if (!(nd.mem_gbps > 0.0))
            ctx.fail("mem", "bandwidth must be positive");
        } else {
          ctx.fail("option", "unknown option '" + key + "'");
        }
      }
      m.nodes.push_back(nd);
    } else if (directive == "link") {
      Link l;
      const std::string a = ctx.word(ls, "a");
      const std::string b = ctx.word(ls, "b");
      l.a = m.node_index(a);
      l.b = m.node_index(b);
      if (l.a < 0)
        ctx.fail("a", "node '" + a + "' not declared before this link");
      if (l.b < 0)
        ctx.fail("b", "node '" + b + "' not declared before this link");
      if (l.a == l.b) ctx.fail("b", "link from '" + a + "' to itself");
      if (!linked.insert({std::min(l.a, l.b), std::max(l.a, l.b)}).second)
        ctx.fail("b", "pair '" + a + " " + b + "' already linked");
      const std::string cls = ctx.word(ls, "class");
      if (!link_class_from_token(cls.c_str(), &l.cls))
        ctx.fail("class",
                 "'" + cls + "' is not one of nv2, nv1, pcie, nic");
      l.bw_gbps = ctx.double_field(ls, "gbps");
      if (!(l.bw_gbps > 0.0)) ctx.fail("gbps", "bandwidth must be positive");
      l.hostbw_gbps = -1.0;
      l.lat_s = -1.0;
      l.rank = -1;
      std::string key;
      while (ls >> key) {
        if (key == "lat") {
          if (l.lat_s >= 0.0) ctx.fail("lat", "duplicate option");
          l.lat_s = ctx.double_field(ls, "lat");
          if (l.lat_s < 0.0) ctx.fail("lat", "latency must be non-negative");
        } else if (key == "hostbw") {
          if (l.hostbw_gbps > 0.0) ctx.fail("hostbw", "duplicate option");
          l.hostbw_gbps = ctx.double_field(ls, "hostbw");
          if (!(l.hostbw_gbps > 0.0))
            ctx.fail("hostbw", "bandwidth must be positive");
        } else if (key == "rank") {
          if (l.rank >= 0) ctx.fail("rank", "duplicate option");
          l.rank = ctx.int_field(ls, "rank");
          if (l.rank < 1 || l.rank > 1000)
            ctx.fail("rank", "rank must be in [1, 1000]");
        } else {
          ctx.fail("option", "unknown option '" + key +
                                 "' (accepted: lat, hostbw, rank)");
        }
      }
      if (l.lat_s < 0.0) l.lat_s = m.default_latency_s;
      if (l.hostbw_gbps < 0.0) l.hostbw_gbps = l.bw_gbps;
      if (l.rank < 0) l.rank = default_rank(l.cls);
      m.links.push_back(l);
    } else {
      ctx.fail("directive",
               "unknown directive (accepted: machine, latency, "
               "pcie-fallback, host, switch, dev, link)");
    }
  }
  if (!saw_machine)
    throw std::invalid_argument(
        origin + ":1: machine: field 'name': missing 'machine <name>' header");
  m.validate();
  return m;
}

Machine parse_tpo_file(const std::string& path) {
  std::ifstream f(path);
  if (!f)
    throw std::invalid_argument("topology file '" + path +
                                "': cannot open for reading");
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_tpo(buf.str(), path);
}

std::string write_tpo(const Machine& m) {
  std::ostringstream os;
  os << "# xkb topology\n";
  os << "machine " << m.name << "\n";
  os << "latency " << fmt_double(m.default_latency_s) << "\n";
  os << "pcie-fallback " << fmt_double(m.pcie_fallback_gbps) << "\n";
  for (const Node& nd : m.nodes) {
    os << to_string(nd.kind) << " " << nd.name;
    if (nd.kind == NodeKind::kDevice && nd.mem_gbps != 750.0)
      os << " mem " << fmt_double(nd.mem_gbps);
    os << "\n";
  }
  for (const Link& l : m.links) {
    os << "link " << m.nodes[l.a].name << " " << m.nodes[l.b].name << " "
       << tpo_token(l.cls) << " " << fmt_double(l.bw_gbps);
    if (l.lat_s != m.default_latency_s) os << " lat " << fmt_double(l.lat_s);
    if (l.hostbw_gbps != l.bw_gbps)
      os << " hostbw " << fmt_double(l.hostbw_gbps);
    if (l.rank != default_rank(l.cls)) os << " rank " << l.rank;
    os << "\n";
  }
  return os.str();
}

}  // namespace xkb::tdl
