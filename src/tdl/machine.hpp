// The machine graph behind a topology: devices, hosts, switches, links.
//
// A Machine is the *description* -- what a .tpo file says, or what a preset
// builder emits.  It knows nothing about routing; xkb::tdl::route() derives
// the per-pair link classes, bandwidths, latencies and ranks that
// xkb::topo::Topology serves to the runtime.  Keeping description and
// derivation apart is the point of the TDL: the DGX-1 tables the paper
// measures (Fig. 2) become one .tpo file, and every other machine is just a
// different file.
#pragma once

#include <string>
#include <vector>

#include "tdl/link_class.hpp"

namespace xkb::tdl {

enum class NodeKind {
  kDevice,  ///< a GPU: end point of transfers, owns local memory
  kSwitch,  ///< a fabric hop (PCIe switch, NVSwitch, leaf/spine switch)
  kHost,    ///< a CPU/host memory: the origin of H2D / target of D2H
};

const char* to_string(NodeKind k);

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kDevice;
  /// Local memory bandwidth in GB/s (devices only; HBM2 default).
  double mem_gbps = 750.0;
};

/// One bidirectional link between two nodes.  `hostbw_gbps` is the
/// bandwidth the link sustains for *host* (pinned-memory DMA) traffic; it
/// defaults to `bw_gbps` and exists because fabric capacity and effective
/// pinned-host throughput differ on real machines -- the DGX-1's PCIe
/// switch uplink moves 17.2 GB/s of peer traffic but only 12.3 GB/s of
/// host traffic (paper Fig. 2).
struct Link {
  int a = -1, b = -1;        ///< node indices into Machine::nodes
  LinkClass cls = LinkClass::kPCIeP2P;
  double bw_gbps = 0.0;      ///< peer-role bandwidth, GB/s
  double hostbw_gbps = 0.0;  ///< host-role bandwidth, GB/s (== bw by default)
  double lat_s = 0.0;        ///< per-transfer latency, seconds
  int rank = 0;              ///< p2p_perf_rank contribution (class default)
};

struct Machine {
  std::string name;
  double default_latency_s = 10e-6;  ///< per-DMA latency unless a link says otherwise
  double pcie_fallback_gbps = 17.2;  ///< bandwidth a demoted NVLink route falls to

  std::vector<Node> nodes;  ///< declaration order (devices index in this order)
  std::vector<Link> links;

  /// Index into `nodes` by name, -1 if unknown.
  int node_index(const std::string& name) const;

  /// Number of kDevice nodes.
  int num_devices() const;

  // -- builder helpers (presets and tests; .tpo parsing validates inline) --
  int add_node(const std::string& name, NodeKind kind, double mem_gbps = 750.0);
  /// Adds a link with defaults resolved (lat = default_latency_s, hostbw =
  /// bw, rank = class default).  Returns the link index.
  int add_link(const std::string& a, const std::string& b, LinkClass cls,
               double bw_gbps);
  Link& last_link() { return links.back(); }

  /// Throws std::invalid_argument on an ill-formed description: duplicate
  /// or non-identifier node names, dangling or duplicate links, non-positive
  /// bandwidths, no device, or no host.
  void validate() const;
};

/// True if `s` is a legal node name: starts with a letter, continues with
/// letters, digits, '_', '-', '.' -- never parseable as an integer, so fault
/// plans can accept either device names or indices unambiguously.
bool valid_node_name(const std::string& s);

}  // namespace xkb::tdl
