// Link classes of the machine model (xkb::tdl).
//
// The class of a link is what the paper's topology-aware heuristic actually
// consumes: `p2p_perf_rank` mirrors cuDeviceGetP2PAttribute(
// CU_DEVICE_P2P_ATTRIBUTE_PERFORMANCE_RANK), a relative ordering of link
// quality -- the heuristic never sees raw bandwidths.  The enum lives in
// xkb::tdl (the layer below xkb::topo) because both the .tpo language and
// the routed Topology speak it; xkb::topo re-exports it unchanged.
//
// Enum order doubles as link strength: a routed path's class is the WEAKEST
// (largest-valued) class along it, so kNIC must sit between kPCIeP2P and
// kNone -- a path that crosses a NIC is never reported better than PCIe.
#pragma once

namespace xkb::tdl {

enum class LinkClass {
  kSelf,      ///< same device (local memory)
  kNVLink2,   ///< two bonded NVLink-2 lanes
  kNVLink1,   ///< one NVLink-2 lane
  kPCIeP2P,   ///< peer access over PCIe/QPI fabric
  kNIC,       ///< network interface between nodes (RDMA-style fabric)
  kNone,      ///< no peer path (must stage through host)
};

const char* to_string(LinkClass c);

/// Default `p2p_perf_rank` contribution of a link of this class.  A routed
/// path's rank is the MINIMUM over its links, so the weakest hop decides --
/// exactly how the dense DGX-1 table ranked whole routes.  NIC defaults to
/// the PCIe rank (a remote peer is never preferred over a local one; ties
/// break towards lower device ids as everywhere else); a .tpo link may
/// override its rank per link.
int default_rank(LinkClass c);

/// The .tpo token of a link class ("nv2", "nv1", "pcie", "nic").  kSelf and
/// kNone never appear on a declared link.
const char* tpo_token(LinkClass c);

/// Parse a .tpo class token; returns false if unknown.
bool link_class_from_token(const char* token, LinkClass* out);

}  // namespace xkb::tdl
