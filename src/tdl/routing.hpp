// Route derivation: from a Machine graph to the tables a Topology serves.
//
// Every quantity the runtime consumes is derived from shortest-bottleneck
// (widest) paths over the graph -- no special cases per machine:
//   * pair bandwidth  = MIN of link bandwidths along the widest path,
//   * pair class      = WEAKEST link class along it (NVLink path stays
//     NVLink, anything crossing PCIe reports PCIe, anything crossing a NIC
//     reports NIC),
//   * pair latency    = MAX of link latencies along it (DMA setup costs
//     overlap stage-by-stage; they do not add up, which is also what keeps
//     a default-latency graph at exactly the historical global 10 us),
//   * pair rank       = MIN of link ranks (the weakest hop decides, like
//     the dense DGX-1 table did),
//   * host link/bandwidth = the widest dev->host path in the host role
//     (links may sustain less pinned-host traffic than peer traffic).
// Ties break by fewer hops, then lower node index: fully deterministic.
//
// A direct device-device link is authoritative for its pair -- the driver
// does not re-route around a browned-out NVLink, and neither do we.  All
// other pairs route through the infrastructure graph (switches + hosts);
// devices are never intermediate hops.
//
// Scale: the infrastructure graph is small (O(devices/16) nodes even on a
// fat tree), and per-pair fabric queries combine a per-device attachment
// list (1-2 entries) with lazily computed widest-path rows, so a
// 1024-device machine never materialises a 1024x1024 table.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tdl/machine.hpp"

namespace xkb::tdl {

/// Aggregated metrics of one routed path (or one direct link).
struct PathMetrics {
  LinkClass cls = LinkClass::kNone;
  double bw_gbps = 0.0;  ///< bottleneck bandwidth; 0 = unreachable
  double lat_s = 0.0;    ///< max per-link latency
  int rank = 0;          ///< min per-link rank
  int hops = 0;
  bool ok() const { return bw_gbps > 0.0; }
};

/// One infrastructure edge (switch/host to switch/host).
struct InfraEdge {
  int peer = -1;
  LinkClass cls = LinkClass::kNone;
  double bw_gbps = 0.0;
  double hostbw_gbps = 0.0;
  double lat_s = 0.0;
  int rank = 0;
};

/// The switch/host subgraph, over which fabric paths are computed.
struct InfraGraph {
  std::vector<std::string> names;
  std::vector<char> is_host;
  std::vector<std::vector<InfraEdge>> adj;  ///< per node, sorted by peer
};

/// A device's direct link into the infrastructure.
struct Attach {
  int infra = -1;
  LinkClass cls = LinkClass::kNone;
  double bw_gbps = 0.0;
  double hostbw_gbps = 0.0;
  double lat_s = 0.0;
  int rank = 0;
};

/// Everything a Topology needs, in sparse form.
struct Routed {
  std::string machine_name;
  double default_latency_s = 10e-6;
  double pcie_fallback_gbps = 17.2;
  int num_devices = 0;
  std::vector<std::string> dev_names;
  std::vector<double> local_bw_gbps;

  /// Direct device-device links, keyed (min, max) device index.
  std::map<std::pair<int, int>, PathMetrics> direct;
  /// Per device, its infrastructure attachments (sorted by infra index).
  std::vector<std::vector<Attach>> attach;
  InfraGraph infra;

  std::vector<int> host_link_of;
  std::vector<double> host_bw_gbps;
  std::vector<double> host_lat_s;
  int num_host_links = 0;
};

/// Widest-path metrics from `src` to every infrastructure node.  In the
/// host role, link `hostbw` replaces `bw` as the bottleneck quantity.
/// Deterministic: ties break by hop count, then node index.
std::vector<PathMetrics> widest_paths(const InfraGraph& g, int src,
                                      bool host_role);

/// The zero-length path (neutral element of extend()): infinite bandwidth,
/// kSelf class, zero latency, neutral rank.
PathMetrics identity_path();

/// Extend a path by one link (bottleneck bw, weakest class, max latency,
/// min rank, +1 hop).
PathMetrics extend(const PathMetrics& p, LinkClass cls, double bw_gbps,
                   double lat_s, int rank);

/// True if `a` beats `b`: wider, or equally wide with fewer hops.
bool path_better(const PathMetrics& a, const PathMetrics& b);

/// Derive the sparse routing tables.  Throws std::invalid_argument if the
/// machine is ill-formed or some device cannot reach a host.
Routed route(const Machine& m);

}  // namespace xkb::tdl
