// The .tpo text format: a canonical writer and a line-precise parser.
//
// Same contract as the .wlg and .svt formats: every parse failure is one
// std::invalid_argument whose message is
//   "<origin>:<line>: <directive>: field '<name>': <what>"
// and the writer emits a canonical form that is a fixed point of
// write(parse(.)) -- optional fields equal to their default are dropped,
// doubles print in the shortest round-tripping form.
//
// Grammar (one directive per line, '#' starts a comment):
//   machine <name>                     required, once, before any node/link
//   latency <seconds>                  default per-DMA latency (10 us)
//   pcie-fallback <gbps>               demoted-NVLink floor bandwidth (17.2)
//   host <name>
//   switch <name>
//   dev <name> [mem <gbps>]            devices index in declaration order
//   link <a> <b> <class> <gbps> [lat <s>] [hostbw <gbps>] [rank <n>]
// where <class> is one of nv2, nv1, pcie, nic and <a>/<b> are previously
// declared nodes.  Links are bidirectional; a pair may be linked once.
#pragma once

#include <string>

#include "tdl/machine.hpp"

namespace xkb::tdl {

Machine parse_tpo(const std::string& text, const std::string& origin);
Machine parse_tpo_file(const std::string& path);
std::string write_tpo(const Machine& m);

}  // namespace xkb::tdl
