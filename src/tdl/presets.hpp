// Preset machine descriptions.
//
// These builders emit the same graphs as the shipped presets/*.tpo files
// (gated byte-for-byte in ctest) and, once routed, reproduce the historical
// hardwired tables of xkb::topo bit-identically -- dgx1() is the paper's
// DGX-1 of Table I / Figs. 1-2.
#pragma once

#include <string>

#include "tdl/machine.hpp"

namespace xkb::tdl {

/// The paper's DGX-1: 8 V100s on a hybrid cube-mesh, four PCIe switches.
Machine dgx1_machine();

/// PCIe-only node: every pair on the shared fabric (ablation worst case).
Machine pcie_only_machine(int num_gpus);

/// NVSwitch all-to-all node (DGX-2/A100-like).
Machine nvswitch_machine(int num_gpus, double gpu_gpu_gbps = 240.0);

/// Summit/Sierra-like node: CPU-attached NVLink, two sockets over an X-bus.
Machine summit_like_machine();

/// A multi-node fat tree: per node one host, one leaf switch and
/// `gpus_per_node` GPUs; every leaf uplinks to every spine over NIC links.
struct FatTreeSpec {
  int nodes = 2;
  int gpus_per_node = 8;
  int spines = 1;
  double leaf_bw_gbps = 16.0;   ///< GPU <-> leaf switch (PCIe)
  double host_bw_gbps = 16.0;   ///< leaf <-> host, host role
  double nic_bw_gbps = 12.5;    ///< leaf <-> spine (100 Gb/s class NIC)
  double nic_lat_s = 2e-6;      ///< NIC hop latency (on top of DMA setup)
};
Machine fat_tree_machine(const FatTreeSpec& spec);

/// Preset by name: "dgx1", "pcie8", "nvswitch8", "summit", "fat_tree_2x8".
/// Throws std::invalid_argument for unknown names.
Machine preset_machine(const std::string& name);

}  // namespace xkb::tdl
