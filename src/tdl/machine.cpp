#include "tdl/machine.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

namespace xkb::tdl {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kDevice: return "dev";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kHost: return "host";
  }
  return "?";
}

int Machine::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].name == name) return static_cast<int>(i);
  return -1;
}

int Machine::num_devices() const {
  int n = 0;
  for (const Node& nd : nodes)
    if (nd.kind == NodeKind::kDevice) ++n;
  return n;
}

int Machine::add_node(const std::string& name, NodeKind kind,
                      double mem_gbps) {
  nodes.push_back(Node{name, kind, mem_gbps});
  return static_cast<int>(nodes.size()) - 1;
}

int Machine::add_link(const std::string& a, const std::string& b,
                      LinkClass cls, double bw_gbps) {
  Link l;
  l.a = node_index(a);
  l.b = node_index(b);
  if (l.a < 0 || l.b < 0)
    throw std::invalid_argument("machine '" + name + "': link endpoint '" +
                                (l.a < 0 ? a : b) + "' is not a declared node");
  l.cls = cls;
  l.bw_gbps = bw_gbps;
  l.hostbw_gbps = bw_gbps;
  l.lat_s = default_latency_s;
  l.rank = default_rank(cls);
  links.push_back(l);
  return static_cast<int>(links.size()) - 1;
}

bool valid_node_name(const std::string& s) {
  if (s.empty() || !std::isalpha(static_cast<unsigned char>(s[0])))
    return false;
  for (char c : s)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-' &&
        c != '.')
      return false;
  return true;
}

void Machine::validate() const {
  auto bad = [this](const std::string& what) {
    throw std::invalid_argument("machine '" + name + "': " + what);
  };
  if (name.empty()) bad("empty machine name");
  if (!(default_latency_s >= 0.0) || !std::isfinite(default_latency_s))
    bad("default latency must be finite and non-negative");
  if (!(pcie_fallback_gbps > 0.0) || !std::isfinite(pcie_fallback_gbps))
    bad("pcie-fallback bandwidth must be finite and positive");

  std::set<std::string> names;
  int devs = 0, hosts = 0;
  for (const Node& nd : nodes) {
    if (!valid_node_name(nd.name))
      bad("node name '" + nd.name + "' is not a valid identifier");
    if (!names.insert(nd.name).second)
      bad("duplicate node name '" + nd.name + "'");
    if (nd.kind == NodeKind::kDevice) {
      ++devs;
      if (!(nd.mem_gbps > 0.0) || !std::isfinite(nd.mem_gbps))
        bad("device '" + nd.name + "' local bandwidth must be positive");
    }
    if (nd.kind == NodeKind::kHost) ++hosts;
  }
  if (devs == 0) bad("no devices declared");
  if (hosts == 0) bad("no host declared");

  std::set<std::pair<int, int>> pairs;
  for (const Link& l : links) {
    if (l.a < 0 || l.b < 0 || l.a >= static_cast<int>(nodes.size()) ||
        l.b >= static_cast<int>(nodes.size()))
      bad("link endpoint out of range");
    if (l.a == l.b) bad("link from '" + nodes[l.a].name + "' to itself");
    if (l.cls == LinkClass::kSelf || l.cls == LinkClass::kNone)
      bad("link '" + nodes[l.a].name + " " + nodes[l.b].name +
          "' must have a transferable class");
    if (!pairs.insert({std::min(l.a, l.b), std::max(l.a, l.b)}).second)
      bad("duplicate link '" + nodes[l.a].name + " " + nodes[l.b].name + "'");
    if (!(l.bw_gbps > 0.0) || !std::isfinite(l.bw_gbps) ||
        !(l.hostbw_gbps > 0.0) || !std::isfinite(l.hostbw_gbps))
      bad("link '" + nodes[l.a].name + " " + nodes[l.b].name +
          "' bandwidth must be finite and positive");
    if (!(l.lat_s >= 0.0) || !std::isfinite(l.lat_s))
      bad("link '" + nodes[l.a].name + " " + nodes[l.b].name +
          "' latency must be finite and non-negative");
    if (l.rank < 1 || l.rank > 1000)
      bad("link '" + nodes[l.a].name + " " + nodes[l.b].name +
          "' rank must be in [1, 1000]");
  }
}

}  // namespace xkb::tdl
