#include "tdl/presets.hpp"

#include <stdexcept>

namespace xkb::tdl {

namespace {

std::string num(int i) { return std::to_string(i); }

}  // namespace

Machine dgx1_machine() {
  Machine m;
  m.name = "DGX-1";
  m.pcie_fallback_gbps = 17.2;
  m.add_node("cpu", NodeKind::kHost);
  for (int s = 0; s < 4; ++s) m.add_node("pcie" + num(s), NodeKind::kSwitch);
  for (int g = 0; g < 8; ++g) m.add_node("gpu" + num(g), NodeKind::kDevice);
  // Each PCIe switch serves two adjacent GPUs; its uplink carries 17.2 GB/s
  // of peer traffic across the QPI fabric but only 12.3 GB/s of pinned-host
  // DMA (the measured split of the paper's Fig. 2).
  for (int s = 0; s < 4; ++s) {
    m.add_link("pcie" + num(s), "cpu", LinkClass::kPCIeP2P, 17.2);
    m.last_link().hostbw_gbps = 12.3;
  }
  for (int g = 0; g < 8; ++g)
    m.add_link("gpu" + num(g), "pcie" + num(g / 2), LinkClass::kPCIeP2P, 17.2);
  // Double-NVLink pairs (~96 GB/s measured, Fig. 2 green cells).
  const int nv2[][2] = {{0, 3}, {0, 4}, {1, 2}, {1, 5},
                        {2, 3}, {4, 7}, {5, 6}, {6, 7}};
  for (auto& p : nv2)
    m.add_link("gpu" + num(p[0]), "gpu" + num(p[1]), LinkClass::kNVLink2,
               96.4);
  // Single-NVLink pairs (~48 GB/s, Fig. 2 orange cells).
  const int nv1[][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 6},
                        {3, 7}, {4, 5}, {4, 6}, {5, 7}};
  for (auto& p : nv1)
    m.add_link("gpu" + num(p[0]), "gpu" + num(p[1]), LinkClass::kNVLink1,
               48.4);
  return m;
}

Machine pcie_only_machine(int num_gpus) {
  if (num_gpus < 1)
    throw std::invalid_argument("pcie_only: need at least one GPU");
  Machine m;
  m.name = "PCIe-only";
  m.pcie_fallback_gbps = 12.0;
  const int switches = (num_gpus + 1) / 2;
  m.add_node("cpu", NodeKind::kHost);
  for (int s = 0; s < switches; ++s)
    m.add_node("pcie" + num(s), NodeKind::kSwitch);
  for (int g = 0; g < num_gpus; ++g)
    m.add_node("gpu" + num(g), NodeKind::kDevice);
  for (int s = 0; s < switches; ++s) {
    m.add_link("pcie" + num(s), "cpu", LinkClass::kPCIeP2P, 12.0);
    m.last_link().hostbw_gbps = 16.0;
  }
  for (int g = 0; g < num_gpus; ++g) {
    m.add_link("gpu" + num(g), "pcie" + num(g / 2), LinkClass::kPCIeP2P, 12.0);
    m.last_link().hostbw_gbps = 16.0;
  }
  return m;
}

Machine nvswitch_machine(int num_gpus, double gpu_gpu_gbps) {
  if (num_gpus < 1)
    throw std::invalid_argument("nvswitch: need at least one GPU");
  Machine m;
  m.name = "NVSwitch";
  const int switches = (num_gpus + 1) / 2;
  m.add_node("cpu", NodeKind::kHost);
  m.add_node("nvsw", NodeKind::kSwitch);
  for (int s = 0; s < switches; ++s)
    m.add_node("pcie" + num(s), NodeKind::kSwitch);
  for (int g = 0; g < num_gpus; ++g)
    m.add_node("gpu" + num(g), NodeKind::kDevice);
  // The NVSwitch plane carries peer traffic only (it has no host uplink);
  // host traffic funnels through per-pair PCIe switches as before.
  for (int s = 0; s < switches; ++s)
    m.add_link("pcie" + num(s), "cpu", LinkClass::kPCIeP2P, 16.0);
  for (int g = 0; g < num_gpus; ++g) {
    m.add_link("gpu" + num(g), "nvsw", LinkClass::kNVLink2, gpu_gpu_gbps);
    m.add_link("gpu" + num(g), "pcie" + num(g / 2), LinkClass::kPCIeP2P, 16.0);
  }
  return m;
}

Machine summit_like_machine() {
  Machine m;
  m.name = "Summit-like";
  m.add_node("cpu0", NodeKind::kHost);
  m.add_node("cpu1", NodeKind::kHost);
  for (int g = 0; g < 6; ++g) m.add_node("gpu" + num(g), NodeKind::kDevice);
  // The X-bus between sockets: cross-socket peer routes stage over it.
  m.add_link("cpu0", "cpu1", LinkClass::kPCIeP2P, 17.2);
  // Each GPU has its own 50 GB/s NVLink path to its socket's CPU.
  for (int g = 0; g < 6; ++g)
    m.add_link("gpu" + num(g), "cpu" + num(g / 3), LinkClass::kNVLink1, 50.0);
  // Within a socket group {0,1,2} / {3,4,5}: one NVLink brick each pair.
  for (int s = 0; s < 2; ++s) {
    const int base = 3 * s;
    m.add_link("gpu" + num(base + 0), "gpu" + num(base + 1),
               LinkClass::kNVLink1, 48.4);
    m.add_link("gpu" + num(base + 0), "gpu" + num(base + 2),
               LinkClass::kNVLink1, 48.4);
    m.add_link("gpu" + num(base + 1), "gpu" + num(base + 2),
               LinkClass::kNVLink1, 48.4);
  }
  return m;
}

Machine fat_tree_machine(const FatTreeSpec& spec) {
  if (spec.nodes < 1 || spec.gpus_per_node < 1 || spec.spines < 1)
    throw std::invalid_argument("fat_tree: nodes, gpus_per_node and spines "
                                "must be positive");
  Machine m;
  m.name = "fat-tree-" + num(spec.nodes) + "x" + num(spec.gpus_per_node);
  m.pcie_fallback_gbps = spec.leaf_bw_gbps;
  for (int s = 0; s < spec.spines; ++s)
    m.add_node("spine" + num(s), NodeKind::kSwitch);
  for (int k = 0; k < spec.nodes; ++k) {
    m.add_node("cpu" + num(k), NodeKind::kHost);
    m.add_node("leaf" + num(k), NodeKind::kSwitch);
  }
  for (int g = 0; g < spec.nodes * spec.gpus_per_node; ++g)
    m.add_node("gpu" + num(g), NodeKind::kDevice);
  for (int k = 0; k < spec.nodes; ++k) {
    m.add_link("leaf" + num(k), "cpu" + num(k), LinkClass::kPCIeP2P,
               spec.leaf_bw_gbps);
    m.last_link().hostbw_gbps = spec.host_bw_gbps;
    for (int s = 0; s < spec.spines; ++s) {
      m.add_link("leaf" + num(k), "spine" + num(s), LinkClass::kNIC,
                 spec.nic_bw_gbps);
      m.last_link().lat_s = spec.nic_lat_s;
    }
  }
  for (int g = 0; g < spec.nodes * spec.gpus_per_node; ++g)
    m.add_link("gpu" + num(g), "leaf" + num(g / spec.gpus_per_node),
               LinkClass::kPCIeP2P, spec.leaf_bw_gbps);
  return m;
}

Machine preset_machine(const std::string& name) {
  if (name == "dgx1") return dgx1_machine();
  if (name == "pcie8") return pcie_only_machine(8);
  if (name == "nvswitch8") return nvswitch_machine(8);
  if (name == "summit") return summit_like_machine();
  if (name == "fat_tree_2x8") return fat_tree_machine(FatTreeSpec{});
  throw std::invalid_argument(
      "unknown topology preset '" + name +
      "' (have: dgx1, pcie8, nvswitch8, summit, fat_tree_2x8)");
}

}  // namespace xkb::tdl
