// Tests of the xkb::fault layer: plan parsing, deterministic injection,
// degraded-topology re-routing, transient-transfer retry, waiter
// re-planning, device-failure recovery (remap / promote / replay), the
// watchdog, and the two recovery-equivalence properties the design
// promises:
//
//   1. a fault that heals before any transfer uses it leaves the observable
//      event stream -- and therefore the xkb::check hash -- bit-identical
//      to a fault-free run;
//   2. a permanently demoted link produces the same makespan as running on
//      a statically-degraded topology from the start.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/library_model.hpp"
#include "fault/injector.hpp"
#include "obs/ledger.hpp"
#include "runtime/runtime.hpp"
#include "sim/watchdog.hpp"
#include "util/json.hpp"

namespace xkb::rt {
namespace {

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, TextFormatRoundTrips) {
  const std::string text =
      "seed 77\n"
      "fail-prob 0.125\n"
      "brownout 0.001 0 1 0.25 0.002\n"
      "brownout 0.003 2 3 0.5\n"
      "link-down 0.004 0 4\n"
      "xfail 0.005 d2d 1 2\n"
      "xfail 0.006 h2d -1 3\n"
      "xfail 0.007 any -1 -1\n"
      "device-fail 0.01 5\n";
  const fault::FaultPlan p = fault::FaultPlan::parse(text);
  EXPECT_EQ(p.seed, 77u);
  EXPECT_DOUBLE_EQ(p.fail_prob, 0.125);
  ASSERT_EQ(p.events.size(), 7u);
  EXPECT_EQ(p.events[0].kind, fault::FaultKind::kBrownout);
  EXPECT_DOUBLE_EQ(p.events[0].fraction, 0.25);
  EXPECT_DOUBLE_EQ(p.events[0].duration, 0.002);
  EXPECT_EQ(p.events[3].kind, fault::FaultKind::kTransferFail);
  EXPECT_EQ(p.events[3].xfer, fault::TransferKind::kD2D);
  EXPECT_EQ(p.events[6].kind, fault::FaultKind::kDeviceFail);
  EXPECT_EQ(p.events[6].a, 5);
  // to_text -> parse is the identity on the parsed representation.
  const fault::FaultPlan q = fault::FaultPlan::parse(p.to_text());
  EXPECT_EQ(q.seed, p.seed);
  ASSERT_EQ(q.events.size(), p.events.size());
  for (std::size_t i = 0; i < p.events.size(); ++i) {
    EXPECT_EQ(q.events[i].kind, p.events[i].kind);
    EXPECT_DOUBLE_EQ(q.events[i].t, p.events[i].t);
    EXPECT_EQ(q.events[i].a, p.events[i].a);
    EXPECT_EQ(q.events[i].b, p.events[i].b);
  }
}

TEST(FaultPlan, MalformedInputNamesTheOffendingLine) {
  EXPECT_THROW(fault::FaultPlan::parse("brownout nope 0 1 0.5\n"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("frobnicate 1 2 3\n"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("xfail 0.1 warp 0 1\n"),
               std::invalid_argument);
  try {
    fault::FaultPlan::parse("seed 1\n\nlink-down 0.1 0\n");
    FAIL() << "short link-down accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// Endpoints may be .tpo device names instead of indices: the parser keeps
// the symbolic form (index -1 until arm time) and to_text round-trips it.
TEST(FaultPlan, NamedEndpointsParseAndRoundTrip) {
  const std::string text =
      "seed 5\n"
      "brownout 0.001 gpu0 gpu3 0.25\n"
      "link-down 0.002 gpu1 4\n"
      "xfail 0.005 d2d gpu1 gpu2\n"
      "device-fail 0.01 gpu5\n";
  const fault::FaultPlan p = fault::FaultPlan::parse(text);
  ASSERT_EQ(p.events.size(), 4u);
  EXPECT_EQ(p.events[0].a_name, "gpu0");
  EXPECT_EQ(p.events[0].b_name, "gpu3");
  EXPECT_EQ(p.events[0].a, -1);
  // Mixed name/index is fine; the index side stays numeric.
  EXPECT_EQ(p.events[1].a_name, "gpu1");
  EXPECT_TRUE(p.events[1].b_name.empty());
  EXPECT_EQ(p.events[1].b, 4);
  EXPECT_EQ(p.events[2].a_name, "gpu1");
  EXPECT_EQ(p.events[2].b_name, "gpu2");
  EXPECT_EQ(p.events[3].a_name, "gpu5");
  // to_text keeps the symbolic spelling, so parse(to_text(parse(x)))
  // is the identity on names too.
  const fault::FaultPlan q = fault::FaultPlan::parse(p.to_text());
  ASSERT_EQ(q.events.size(), p.events.size());
  for (std::size_t i = 0; i < p.events.size(); ++i) {
    EXPECT_EQ(q.events[i].a_name, p.events[i].a_name);
    EXPECT_EQ(q.events[i].b_name, p.events[i].b_name);
    EXPECT_EQ(q.events[i].a, p.events[i].a);
    EXPECT_EQ(q.events[i].b, p.events[i].b);
  }
  // A statically-same named pair is as malformed as "0 0".
  EXPECT_THROW(fault::FaultPlan::parse("link-down 0.1 gpu0 gpu0\n"),
               std::invalid_argument);
}

// ------------------------------------------------------------- fixtures --

baselines::BenchResult bench(Blas3 routine, bool dod,
                             const fault::FaultPlan& plan = {},
                             std::size_t n = 8192,
                             topo::Topology topo = topo::Topology::dgx1()) {
  baselines::BenchConfig cfg;
  cfg.routine = routine;
  cfg.n = n;
  cfg.tile = 2048;
  cfg.data_on_device = dod;
  cfg.topology = std::move(topo);
  cfg.check.enabled = true;
  cfg.fault_plan = plan;
  auto model = baselines::make_xkblas(HeuristicConfig::xkblas());
  return model->run(cfg);
}

// ----------------------------------------------------------- equivalence --

// Property 1: faults that heal before any transfer could use them are
// invisible.  The brownout sits on a link the workload has not touched yet
// (t before any work) and heals instantly; the xfail targets a d2h at time
// 0 when no flush is in flight and is never consumed (probabilistic stream
// off).  Observable stream must hash identically to the fault-free run.
TEST(FaultEquivalence, HealedBeforeUseIsBitIdenticalToFaultFree) {
  const baselines::BenchResult clean = bench(Blas3::kGemm, false);
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_TRUE(clean.check_ok) << clean.check_report;

  fault::FaultPlan plan;
  plan.seed = 9;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kBrownout;
  e.t = 0.0;
  e.a = 0;
  e.b = 1;
  e.fraction = 0.01;
  e.duration = 1e-9;  // heals within the transfer latency floor
  plan.events.push_back(e);
  const baselines::BenchResult faulted = bench(Blas3::kGemm, false, plan);
  ASSERT_FALSE(faulted.failed) << faulted.error;
  EXPECT_TRUE(faulted.check_ok) << faulted.check_report;
  EXPECT_EQ(faulted.event_hash, clean.event_hash);
  EXPECT_DOUBLE_EQ(faulted.seconds, clean.seconds);
}

// Property 2: a link permanently demoted at t=0 behaves exactly like a
// topology that was built degraded: same makespan, same transfer counts.
TEST(FaultEquivalence, PermanentDemotionMatchesStaticallyDegradedTopology) {
  fault::FaultPlan plan;
  plan.seed = 3;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kLinkDown;
  e.t = 0.0;
  e.a = 0;
  e.b = 1;
  plan.events.push_back(e);
  e.a = 1;
  e.b = 0;
  plan.events.push_back(e);
  const baselines::BenchResult dynamic = bench(Blas3::kGemm, true, plan);
  ASSERT_FALSE(dynamic.failed) << dynamic.error;
  EXPECT_TRUE(dynamic.check_ok) << dynamic.check_report;

  topo::Topology degraded = topo::Topology::dgx1();
  degraded.demote_link(0, 1);
  degraded.demote_link(1, 0);
  const baselines::BenchResult statically =
      bench(Blas3::kGemm, true, {}, 8192, std::move(degraded));
  ASSERT_FALSE(statically.failed) << statically.error;
  EXPECT_DOUBLE_EQ(dynamic.seconds, statically.seconds);
  EXPECT_EQ(dynamic.transfers.d2d, statically.transfers.d2d);
  EXPECT_EQ(dynamic.transfers.h2d, statically.transfers.h2d);
}

// Named targets resolve against the armed machine's topology, so a plan
// written with .tpo device names is bit-identical to the same plan written
// with the indices those names resolve to.
TEST(FaultEquivalence, NamedTargetsHashIdenticalToIndexTargets) {
  const auto demotion_plan = [](const char* a, const char* b, const char* a2,
                                const char* b2) {
    std::ostringstream os;
    os << "seed 3\nlink-down 0 " << a << " " << b << "\nlink-down 0 " << a2
       << " " << b2 << "\n";
    return fault::FaultPlan::parse(os.str());
  };
  const baselines::BenchResult by_index =
      bench(Blas3::kGemm, true, demotion_plan("0", "1", "1", "0"));
  ASSERT_FALSE(by_index.failed) << by_index.error;
  const baselines::BenchResult by_name =
      bench(Blas3::kGemm, true, demotion_plan("gpu0", "gpu1", "gpu1", "gpu0"));
  ASSERT_FALSE(by_name.failed) << by_name.error;
  EXPECT_EQ(by_name.event_hash, by_index.event_hash);
  EXPECT_DOUBLE_EQ(by_name.seconds, by_index.seconds);
}

// A name the topology does not know fails at arm time (in the Runtime
// constructor) naming the offending device, not as a silent no-op.
TEST(FaultEffects, UnknownNamedDeviceIsDiagnosedAtArm) {
  const fault::FaultPlan plan =
      fault::FaultPlan::parse("seed 1\nlink-down 0.001 gpu0 gpu99\n");
  PlatformOptions popt;
  popt.functional = false;
  Platform plat(topo::Topology::dgx1(), PerfModel{}, popt);
  fault::Injector inj(plan);
  plat.set_fault(&inj);
  try {
    Runtime runtime(plat, std::make_unique<OwnerComputesScheduler>(false),
                    RuntimeOptions{});
    FAIL() << "unknown device name accepted at arm";
  } catch (const fault::FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("gpu99"), std::string::npos)
        << e.what();
  }
}

// Fault mutations are graph-edge operations on the routed pair: demote
// steps down the link hierarchy, brownout scales bandwidth class-preserving,
// and restore_link heals both back to the nominal snapshot exactly.
TEST(TopologyFault, GraphEdgeDemoteBrownoutHealRoundTrip) {
  topo::Topology t = topo::Topology::dgx1();
  // Direct double-NVLink pair 0<->3.
  const auto cls0 = t.link_class(0, 3);
  const double bw0 = t.gpu_bandwidth_gbps(0, 3);
  const int rank0 = t.p2p_perf_rank(0, 3);
  ASSERT_EQ(cls0, topo::LinkClass::kNVLink2);

  t.scale_link_bandwidth(0, 3, 0.25);
  EXPECT_EQ(t.link_class(0, 3), cls0) << "brownout preserves class";
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 3), bw0 * 0.25);
  t.restore_link(0, 3);
  EXPECT_EQ(t.link_class(0, 3), cls0);
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 3), bw0);
  EXPECT_EQ(t.p2p_perf_rank(0, 3), rank0);

  EXPECT_EQ(t.demote_link(0, 3), topo::LinkClass::kNVLink1);
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 3), bw0 * 0.5);
  EXPECT_EQ(t.demote_link(0, 3), topo::LinkClass::kPCIeP2P)
      << "second demotion hits the PCIe floor";
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 3), t.pcie_fallback_gbps());
  EXPECT_EQ(t.demote_link(0, 3), topo::LinkClass::kPCIeP2P)
      << "PCIe is the floor; demotion saturates";
  t.restore_link(0, 3);
  EXPECT_EQ(t.link_class(0, 3), cls0);
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 3), bw0);
  EXPECT_EQ(t.p2p_perf_rank(0, 3), rank0);

  // Fabric pair 0<->6 (no direct NVLink on the DGX-1): mutation
  // materialises a sparse override entry, healing drops it again (the
  // nominal snapshot stays, so compare against the mutated size).
  const double fbw0 = t.gpu_bandwidth_gbps(0, 6);
  const std::size_t bytes0 = t.sparse_bytes();
  t.scale_link_bandwidth(0, 6, 0.5);
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 6), fbw0 * 0.5);
  const std::size_t bytes_mutated = t.sparse_bytes();
  EXPECT_GT(bytes_mutated, bytes0) << "fabric override materialised";
  t.restore_link(0, 6);
  EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(0, 6), fbw0);
  EXPECT_LT(t.sparse_bytes(), bytes_mutated) << "heal drops the override";
}

// A brownout that *is* used must slow the run down: same work, less
// bandwidth on a busy link, strictly more virtual time.
TEST(FaultEffects, UsedBrownoutSlowsTheRun) {
  const baselines::BenchResult clean = bench(Blas3::kGemm, false);
  fault::FaultPlan plan;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kBrownout;
  e.t = 0.0;
  e.fraction = 0.05;  // 5% of nominal for the whole run
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      if (a != b) {
        e.a = a;
        e.b = b;
        plan.events.push_back(e);
      }
  const baselines::BenchResult slow = bench(Blas3::kGemm, false, plan);
  ASSERT_FALSE(slow.failed) << slow.error;
  EXPECT_TRUE(slow.check_ok) << slow.check_report;
  EXPECT_GT(slow.seconds, clean.seconds * 1.05);
  EXPECT_EQ(slow.tasks, clean.tasks);  // degraded, not dropped
}

// ------------------------------------------------------ transient faults --

TEST(FaultEffects, TransientTransferFailuresRetryAndComplete) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.fail_prob = 0.05;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kTransferFail;
  e.xfer = fault::TransferKind::kAny;
  for (double t : {0.0, 0.001, 0.002, 0.003}) {
    e.t = t;
    plan.events.push_back(e);
  }
  const baselines::BenchResult r = bench(Blas3::kGemm, false, plan);
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_TRUE(r.check_ok) << r.check_report;
  EXPECT_GT(r.transfers.transfer_aborts, 0u);
  EXPECT_EQ(r.transfers.transfer_retries, r.transfers.transfer_aborts);
}

// A certain-failure probability exhausts the retry budget and surfaces a
// diagnostic naming the cap, instead of looping forever.
TEST(FaultEffects, RetriesExhaustedIsDiagnosed) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.fail_prob = 1.0;
  const baselines::BenchResult r = bench(Blas3::kGemm, false, plan);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.error.find("retr"), std::string::npos) << r.error;
}

// A forced watchdog stall (dropped task completion + armed watchdog) must
// produce a flight-recorder dump: the last-N observable timeline, the stall
// reason, and a parseable ledger snapshot of the run state at death.
TEST(FaultEffects, WatchdogStallProducesAValidFlightDump) {
  baselines::BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  cfg.n = 8192;
  cfg.tile = 2048;
  cfg.check.enabled = true;
  cfg.check.faults.drop_completion_task = 10;
  cfg.obs.enabled = true;
  cfg.fault_plan.seed = 42;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kBrownout;
  e.t = 1.0;  // never reached; the plan only arms the watchdog
  e.a = 0;
  e.b = 1;
  e.fraction = 0.5;
  e.duration = 0.1;
  cfg.fault_plan.events.push_back(e);

  auto model = baselines::make_xkblas(HeuristicConfig::xkblas());
  const baselines::BenchResult r = model->run(cfg);
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.error.find("no observable progress"), std::string::npos)
      << r.error;
  ASSERT_FALSE(r.flight_json.empty());

  const util::JsonValue doc = util::json_parse(r.flight_json);
  EXPECT_EQ("xkb.obs.flight/1",
            doc.at("provenance").at("schema").as_string());
  EXPECT_FALSE(doc.at("timeline").as_array().empty());
  EXPECT_NE(doc.at("reason").as_string().find("watchdog-stall"),
            std::string::npos);
  // The embedded snapshot round-trips through the ledger parser.
  const obs::RunLedger snap = obs::ledger_from_json(doc.at("ledger"));
  EXPECT_EQ("GEMM", snap.meta.routine);
}

// -------------------------------------------------------- device failure --

// Low-level scenario: a task is bound to gpu1 while gpu1 dies; the task
// must remap to a live device and the run must complete with the checker
// clean.  The lost clean replica is reconstructed from the host copy.
struct FaultFixture {
  FaultFixture() : plat(make_platform()), runtime(make_runtime()) {}

  static Platform make_platform() {
    PlatformOptions po;
    po.functional = true;
    return Platform(topo::Topology::dgx1(), PerfModel{}, po);
  }
  Runtime make_runtime() {
    RuntimeOptions ro;
    ro.check.enabled = true;
    return Runtime(plat, std::make_unique<OwnerComputesScheduler>(), ro);
  }

  mem::DataHandle* tile(void* origin, std::size_t n = 8) {
    return runtime.registry().intern(origin, n, n, n, sizeof(double));
  }

  Platform plat;
  Runtime runtime;
};

double bufA[64], bufB[64], bufC[64];

TaskDesc work(mem::DataHandle* h, Access mode, int dev, const char* label) {
  TaskDesc d;
  d.label = label;
  d.accesses.push_back({h, mode});
  d.flops = 1e10;
  d.min_dim = 2048;
  d.forced_device = dev;
  return d;
}

TEST(DeviceFailure, QueuedTasksRemapAndRunCompletes) {
  FaultFixture f;
  mem::DataHandle* a = f.tile(bufA);
  // A chain on gpu1, with the failure injected (silently) before the chain
  // can finish.
  for (int i = 0; i < 4; ++i)
    f.runtime.submit(work(a, Access::kRW, 1, "chain"));
  f.plat.engine().schedule_silent_at(
      1e-6, [&f] { f.runtime.on_device_failure(1); });
  f.runtime.run();
  EXPECT_EQ(f.runtime.tasks_completed(), 4u);
  EXPECT_TRUE(f.plat.device_failed(1));
  EXPECT_GT(f.runtime.task_remaps() + f.runtime.task_replays(), 0u);
  ASSERT_NE(f.runtime.checker(), nullptr);
  EXPECT_TRUE(f.runtime.checker()->ok()) << f.runtime.checker()->report();
  // The surviving copy is authoritative somewhere alive.
  EXPECT_NE(a->dev[1].state, mem::ReplicaState::kValid);
}

TEST(DeviceFailure, LostDirtyReplicaIsRebuiltByReplay) {
  FaultFixture f;
  mem::DataHandle* a = f.tile(bufA);
  mem::DataHandle* c = f.tile(bufC);
  // Producer writes c on gpu1 (pure W: replayable); a consumer on gpu0
  // will need c *after* gpu1 died with the only (dirty) copy.
  f.runtime.submit(work(c, Access::kW, 1, "produce"));
  f.runtime.run();
  EXPECT_TRUE(c->dev[1].dirty);
  f.runtime.submit(work(a, Access::kW, 0, "warmup"));
  f.runtime.on_device_failure(1);
  TaskDesc consume = work(c, Access::kR, 0, "consume");
  f.runtime.submit(std::move(consume));
  f.runtime.run();
  EXPECT_GE(f.runtime.task_replays(), 1u);
  EXPECT_TRUE(f.runtime.checker()->ok()) << f.runtime.checker()->report();
  // The regenerated version is valid somewhere that is not gpu1.
  bool valid_elsewhere = c->host.state == mem::ReplicaState::kValid;
  for (int g = 0; g < 8; ++g)
    if (g != 1 && c->dev[g].state == mem::ReplicaState::kValid)
      valid_elsewhere = true;
  EXPECT_TRUE(valid_elsewhere);
}

TEST(DeviceFailure, UnreplayableDirtyLossIsPreciselyDiagnosed) {
  FaultFixture f;
  mem::DataHandle* c = f.tile(bufC);
  // kRW producer: the pre-image died with the replica, replay is unsound.
  f.runtime.submit(work(c, Access::kRW, 1, "accumulate"));
  f.runtime.run();
  EXPECT_TRUE(c->dev[1].dirty);
  try {
    f.runtime.on_device_failure(1);
    FAIL() << "kRW dirty loss was not diagnosed";
  } catch (const fault::UnrecoverableDataLoss& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("accumulate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("in place"), std::string::npos) << msg;
  }
}

TEST(DeviceFailure, CleanReplicaPromotionKeepsSurvivorAuthoritative) {
  FaultFixture f;
  mem::DataHandle* a = f.tile(bufA);
  // Write on gpu1, then read on gpu2: gpu2 now holds a *clean* copy while
  // gpu1 holds the dirty one.  When gpu1 dies the survivor on gpu2 must be
  // promoted to authoritative (dirty), not dropped.
  f.runtime.submit(work(a, Access::kW, 1, "w"));
  f.runtime.submit(work(a, Access::kR, 2, "r"));
  f.runtime.run();
  ASSERT_EQ(a->dev[2].state, mem::ReplicaState::kValid);
  ASSERT_TRUE(a->dev[1].dirty);
  f.runtime.on_device_failure(1);
  EXPECT_EQ(a->dev[2].state, mem::ReplicaState::kValid);
  EXPECT_TRUE(a->dev[2].dirty);  // promoted
  EXPECT_EQ(f.runtime.task_replays(), 0u);  // no replay needed
  f.runtime.submit(work(a, Access::kR, 0, "after"));
  f.runtime.run();
  EXPECT_TRUE(f.runtime.checker()->ok()) << f.runtime.checker()->report();
}

// End-to-end acceptance shape: an early device failure on a data-on-host
// GEMM (hundreds of chained optimistic receptions) re-plans every waiter
// whose source died and still completes with zero violations.
TEST(DeviceFailure, WaiterWhoseSourceDiesMidTransferReplansAndCompletes) {
  const baselines::BenchResult probe = bench(Blas3::kGemm, false);
  ASSERT_FALSE(probe.failed);
  bool hit = false;
  for (double frac : {0.02, 0.04, 0.06, 0.08, 0.10, 0.14, 0.18, 0.25}) {
    fault::FaultPlan plan;
    plan.seed = 42;
    fault::FaultEvent e;
    e.kind = fault::FaultKind::kDeviceFail;
    e.t = frac * probe.seconds;
    e.a = 1;
    plan.events.push_back(e);
    const baselines::BenchResult r = bench(Blas3::kGemm, false, plan);
    if (r.failed) continue;  // diagnosed loss: legal, try another instant
    EXPECT_TRUE(r.check_ok) << r.check_report;
    if (r.transfers.waiter_replans > 0) {
      hit = true;
      break;
    }
  }
  EXPECT_TRUE(hit) << "no instant caught a waiter mid-chain";
}

// ---------------------------------------------------------------- misc --

TEST(Watchdog, FiresOnceWhenNoProgressHappens) {
  sim::Engine eng;
  int fired = 0;
  sim::Watchdog::Options wo;
  wo.interval = 1e-3;
  wo.stuck_ticks = 3;
  sim::Watchdog wd(
      eng, wo, [] { return std::uint64_t{7}; },
      [&fired](std::uint64_t pending) {
        fired++;
        EXPECT_EQ(pending, 7u);
      });
  wd.ensure_armed();
  eng.run();
  EXPECT_EQ(fired, 1);
  // No observable events: the watchdog is silent machinery.
  EXPECT_EQ(eng.observable_processed(), 0u);
}

// Regression: a long but legitimate idle gap -- work outstanding, and an
// observable event already scheduled far past the stuck horizon -- must
// not read as a stall.  The service layer's arrival gaps hit exactly
// this: the next submission may be many stuck-windows away, yet its
// pending event proves the simulation is waiting, not wedged.
TEST(Watchdog, StaysQuietAcrossLegitimateIdleGaps) {
  sim::Engine eng;
  int fired = 0;
  std::uint64_t outstanding = 1;
  sim::Watchdog::Options wo;
  wo.interval = 1e-3;
  wo.stuck_ticks = 3;
  sim::Watchdog wd(
      eng, wo, [&outstanding] { return outstanding; },
      [&fired](std::uint64_t) { fired++; });
  wd.ensure_armed();
  // 500 stuck-windows of silence before the "arrival" completes the work.
  eng.schedule_at(1.5, [&outstanding] { outstanding = 0; });
  eng.run();
  EXPECT_EQ(fired, 0);
}

// The complement: once nothing observable is pending, the same quiet
// stretch IS a stall -- no fresh grace period after the last real event.
TEST(Watchdog, FiresWhenQuietWithNothingObservablePending) {
  sim::Engine eng;
  int fired = 0;
  sim::Watchdog::Options wo;
  wo.interval = 1e-3;
  wo.stuck_ticks = 3;
  sim::Watchdog wd(
      eng, wo, [] { return std::uint64_t{1}; },
      [&fired](std::uint64_t) { fired++; });
  wd.ensure_armed();
  eng.schedule_at(1e-4, [] {});  // real progress, then silence
  eng.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.observable_pending(), 0u);
}

TEST(Watchdog, DisarmsWhenWorkDrains) {
  sim::Engine eng;
  int fired = 0;
  std::uint64_t outstanding = 3;
  sim::Watchdog::Options wo;
  wo.interval = 1e-3;
  wo.stuck_ticks = 3;
  sim::Watchdog wd(
      eng, wo, [&outstanding] { return outstanding; },
      [&fired](std::uint64_t) { fired++; });
  wd.ensure_armed();
  eng.schedule_at(1.5e-3, [&outstanding] { outstanding = 0; });
  eng.run();
  EXPECT_EQ(fired, 0);
}

TEST(Options, NonsensicalRuntimeOptionsAreRejected) {
  PlatformOptions po;
  Platform plat(topo::Topology::dgx1(), PerfModel{}, po);
  RuntimeOptions bad;
  bad.prepare_window = 0;
  EXPECT_THROW(
      Runtime(plat, std::make_unique<OwnerComputesScheduler>(), bad),
      std::invalid_argument);
  bad = {};
  bad.steal_min_victim = 0;
  EXPECT_THROW(
      Runtime(plat, std::make_unique<OwnerComputesScheduler>(), bad),
      std::invalid_argument);
  bad = {};
  bad.task_overhead = -1e-6;
  EXPECT_THROW(
      Runtime(plat, std::make_unique<OwnerComputesScheduler>(), bad),
      std::invalid_argument);
}

TEST(Options, NonsensicalBenchConfigIsRejected) {
  baselines::BenchConfig cfg;
  cfg.tile = 0;
  EXPECT_THROW(baselines::make_xkblas(HeuristicConfig::xkblas())->run(cfg),
               std::invalid_argument);
  cfg = {};
  cfg.n = 1024;
  cfg.tile = 2048;  // tile > n
  EXPECT_THROW(baselines::make_xkblas(HeuristicConfig::xkblas())->run(cfg),
               std::invalid_argument);
}

TEST(Injector, UnconsumedTargetedFaultsAreSurfaced) {
  fault::FaultPlan plan;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kTransferFail;
  e.t = 1e9;  // long after the run ends: nobody consumes it
  e.xfer = fault::TransferKind::kD2H;
  plan.events.push_back(e);
  const baselines::BenchResult r = bench(Blas3::kGemm, false, plan);
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_NE(r.fault_json.find("\"unconsumed_xfail\":1"), std::string::npos)
      << r.fault_json;
}

}  // namespace
}  // namespace xkb::rt
