// Tests of the library models: supported-routine matrices, failure
// emulation, and -- most importantly -- the qualitative *shape* claims of
// the paper that the whole reproduction hangs on (who wins, where, why).
// These run at a reduced size (N=16384, tile 2048) to stay fast.
#include <gtest/gtest.h>

#include "baselines/common.hpp"
#include "baselines/composition.hpp"
#include "baselines/library_model.hpp"

namespace xkb::baselines {
namespace {

BenchConfig cfg_for(Blas3 r, std::size_t n = 16384) {
  BenchConfig cfg;
  cfg.routine = r;
  cfg.n = n;
  cfg.tile = 2048;
  return cfg;
}

TEST(Models, FactoryProducesAllEight) {
  const auto models = all_models();
  ASSERT_EQ(models.size(), 8u);
  std::vector<std::string> names;
  for (const auto& m : models) names.push_back(m->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "XKBlas"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Chameleon Tile"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "cuBLAS-XT"), names.end());
}

TEST(Models, RoutineSupportMatchesThePaper) {
  auto blasx = make_blasx();
  auto mg = make_cublasmg();
  auto dplasma = make_dplasma();
  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  // "cuBLAS-MG only implements GEMM; BLASX public code only contains GEMM;
  //  DPLASMA exploits GPUs with GEMM only."
  for (Blas3 r : {Blas3::kSymm, Blas3::kSyrk, Blas3::kSyr2k, Blas3::kTrmm,
                  Blas3::kTrsm}) {
    EXPECT_FALSE(blasx->supports(r));
    EXPECT_FALSE(mg->supports(r));
    EXPECT_FALSE(dplasma->supports(r));
    EXPECT_TRUE(xkblas->supports(r));
  }
  EXPECT_TRUE(blasx->supports(Blas3::kGemm));
  // XKBlas offers the 9 standard routines incl. the Hermitian trio.
  for (Blas3 r : {Blas3::kHemm, Blas3::kHerk, Blas3::kHer2k})
    EXPECT_TRUE(xkblas->supports(r));
}

TEST(Models, UnsupportedRoutineReportsUnsupported) {
  auto blasx = make_blasx();
  const BenchResult r = blasx->run(cfg_for(Blas3::kTrsm));
  EXPECT_FALSE(r.supported);
}

TEST(Models, BlasxFailsAbove45000) {
  auto blasx = make_blasx();
  const BenchResult r = blasx->run(cfg_for(Blas3::kGemm, 49152));
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.error.find("memory"), std::string::npos);
  EXPECT_FALSE(blasx->run(cfg_for(Blas3::kGemm, 32768)).failed);
}

TEST(Models, AllProduceSaneResults) {
  for (const auto& m : all_models()) {
    const BenchResult r = m->run(cfg_for(Blas3::kGemm));
    ASSERT_TRUE(r.supported) << m->name();
    ASSERT_FALSE(r.failed) << m->name();
    EXPECT_GT(r.tflops, 1.0) << m->name();
    EXPECT_LT(r.tflops, 62.4) << m->name() << " exceeds the platform peak";
    EXPECT_GT(r.tasks, 0u) << m->name();
    EXPECT_EQ(r.per_gpu.size(), 8u) << m->name();
  }
}

// ---- the paper's headline shape claims ----

TEST(PaperShape, XkblasWinsGemmDataOnHost) {
  const auto cfg = cfg_for(Blas3::kGemm);
  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  const double xk = xkblas->run(cfg).tflops;
  for (const auto& m : all_models()) {
    if (m->name() == "XKBlas") continue;
    const BenchResult r = m->run(cfg);
    if (!r.supported || r.failed) continue;
    EXPECT_GT(xk, r.tflops) << "XKBlas must outperform " << m->name();
  }
}

TEST(PaperShape, HeuristicAblationOrdering) {
  // Fig. 3: full XKBlas > no-heuristic >= both-disabled, for GEMM.
  const auto cfg = cfg_for(Blas3::kGemm, 24576);
  const double full =
      make_xkblas(rt::HeuristicConfig::xkblas())->run(cfg).tflops;
  const double no_heur =
      make_xkblas(rt::HeuristicConfig::no_heuristic())->run(cfg).tflops;
  const double no_topo =
      make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo())
          ->run(cfg).tflops;
  EXPECT_GT(full, no_heur * 1.1) << "optimistic heuristic must matter";
  EXPECT_GE(no_heur * 1.05, no_topo) << "GEMM is insensitive to topo alone";
}

TEST(PaperShape, Syr2kTopologySensitivity) {
  // Table II reports the *maximum* loss over N >= 16384: somewhere in that
  // range, disabling the topology ranking must cost SYR2K strictly more
  // than disabling only the optimistic heuristic.
  auto base = make_xkblas(rt::HeuristicConfig::xkblas());
  auto heur = make_xkblas(rt::HeuristicConfig::no_heuristic());
  auto topo = make_xkblas(rt::HeuristicConfig::no_heuristic_no_topo());
  double worst_heur = 0.0, worst_topo = 0.0;
  for (std::size_t n : {16384ul, 24576ul}) {
    const auto cfg = cfg_for(Blas3::kSyr2k, n);
    const double b = base->run(cfg).tflops;
    worst_heur = std::max(worst_heur, 1.0 - heur->run(cfg).tflops / b);
    worst_topo = std::max(worst_topo, 1.0 - topo->run(cfg).tflops / b);
  }
  EXPECT_GT(worst_topo, worst_heur)
      << "rank-blind source selection must cost SYR2K extra";
}

TEST(PaperShape, DataOnDeviceGains) {
  // Fig. 4: 2D block-cyclic pre-distribution beats data-on-host.
  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  for (Blas3 r : {Blas3::kGemm, Blas3::kSyr2k, Blas3::kTrsm}) {
    BenchConfig host_cfg = cfg_for(r);
    BenchConfig dod_cfg = host_cfg;
    dod_cfg.data_on_device = true;
    const double host = xkblas->run(host_cfg).tflops;
    const double dod = xkblas->run(dod_cfg).tflops;
    EXPECT_GT(dod, host) << blas3_name(r);
  }
}

TEST(PaperShape, CublasXtIsTransferBound) {
  // Fig. 6: cuBLAS-XT spends most GPU time in HtoD copies.
  const BenchResult r = make_cublasxt()->run(cfg_for(Blas3::kGemm, 32768));
  EXPECT_GT(r.breakdown.htod, r.breakdown.kernel);
  EXPECT_EQ(r.transfers.d2d, 0u) << "cuBLAS-XT never uses peer links";
}

TEST(PaperShape, XkblasTransferShareLowest) {
  // Fig. 6: XKBlas has the smallest transfer share of total GPU time.
  const auto cfg = cfg_for(Blas3::kGemm, 32768);
  auto share = [&](LibraryModel& m) {
    const BenchResult r = m.run(cfg);
    return r.breakdown.transfers() / r.breakdown.total();
  };
  auto xkblas = make_xkblas(rt::HeuristicConfig::xkblas());
  auto cham = make_chameleon(true);
  auto xt = make_cublasxt();
  const double xk = share(*xkblas);
  EXPECT_LT(xk, share(*cham));
  EXPECT_LT(xk, share(*xt));
  EXPECT_LT(xk, 0.35) << "paper: ~25% of total execution";
}

TEST(PaperShape, ChameleonLapackConversionPenalty) {
  // Fig. 5: Chameleon LAPACK pays host layout conversions; the Tile variant
  // does not.
  const auto cfg = cfg_for(Blas3::kGemm);
  const double tile = make_chameleon(true)->run(cfg).tflops;
  const double lapack = make_chameleon(false)->run(cfg).tflops;
  EXPECT_GT(tile, lapack * 1.5);
}

TEST(PaperShape, SlateFlatAndSlow) {
  // Fig. 5: Slate cannot exploit NVLink; its outer products round-trip C.
  const BenchResult r = make_slate()->run(cfg_for(Blas3::kGemm, 32768));
  EXPECT_LT(r.tflops, 20.0);
  EXPECT_EQ(r.transfers.d2d, 0u);
  EXPECT_GT(r.transfers.d2h, 256u) << "C tiles round-trip every step";
}

TEST(PaperShape, DropInReplacementRatios) {
  // Section IV-D: XKBlas up to ~3x cuBLAS-XT and ~5x Chameleon LAPACK.
  const auto cfg = cfg_for(Blas3::kGemm);
  const double xk = make_xkblas(rt::HeuristicConfig::xkblas())
                        ->run(cfg).tflops;
  const double xt = make_cublasxt()->run(cfg).tflops;
  const double cl = make_chameleon(false)->run(cfg).tflops;
  EXPECT_GT(xk / xt, 1.5);
  EXPECT_GT(xk / cl, 2.5);
}

TEST(PaperShape, CompositionBeatsSynchronised) {
  // Figs. 8-9: composing TRSM+GEMM without a barrier wins.
  ModelSpec xkblas;
  xkblas.name = "XKBlas";
  xkblas.heur = rt::HeuristicConfig::xkblas();
  xkblas.prepare_window = 16;
  const auto composed = run_trsm_gemm(xkblas, 16384, 2048, false);
  const auto synced = run_trsm_gemm(xkblas, 16384, 2048, true);
  EXPECT_GT(composed.tflops, synced.tflops);
}

TEST(PaperShape, XkblasImbalanceVsDmdas) {
  // Fig. 7: XKBlas's work stealing leaves more kernel-time imbalance on
  // SYR2K than Chameleon's dmdas.
  const auto cfg = cfg_for(Blas3::kSyr2k, 32768);
  auto imbalance = [](const BenchResult& r) {
    double kmin = 1e30, kmax = 0.0;
    for (const auto& b : r.per_gpu) {
      kmin = std::min(kmin, b.kernel);
      kmax = std::max(kmax, b.kernel);
    }
    return kmax / kmin;
  };
  const double xk = imbalance(
      make_xkblas(rt::HeuristicConfig::xkblas())->run(cfg));
  const double ch = imbalance(make_chameleon(true)->run(cfg));
  EXPECT_GT(xk, ch);
}

TEST(Composition, GanttIsProducedOnRequest) {
  ModelSpec spec;
  spec.name = "XKBlas";
  spec.heur = rt::HeuristicConfig::xkblas();
  const auto r = run_trsm_gemm(spec, 8192, 1024, false, /*want_gantt=*/true);
  EXPECT_NE(r.gantt.find("GPU 0"), std::string::npos);
  EXPECT_NE(r.gantt.find('K'), std::string::npos);
}

}  // namespace
}  // namespace xkb::baselines
