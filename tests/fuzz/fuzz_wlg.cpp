// Fuzz target: wl::parse_wlg, the .wlg workload-graph parser.
//
// Contract under fuzzing: for ANY byte string, parse_wlg either returns a
// validated WorkloadGraph or throws std::invalid_argument with a
// line-precise message.  Anything else -- another exception type, a
// crash, UB caught by sanitizers -- is a parser bug.  On accepted inputs
// the canonical writer must round-trip: parse(write(parse(x))) produces
// the same text, which pins writer/parser symmetry and validates that
// everything validate() lets through is representable.
//
// Found by this harness (fixed in the same change):
//   * "nan"/"inf" accepted for flops/eff_factor -- every downstream range
//     check is false for NaN, producing negative/non-finite kernel
//     durations that fire the engine's t >= now assertion.
//   * negative flops and eff_factor <= 0 accepted by validate().
//   * tile m*n*wordsize silently wrapping around std::size_t.
#include <cstdint>
#include <stdexcept>
#include <string>

#include "workload/workload.hpp"

#include "fuzz_common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const xkb::wl::WorkloadGraph g = xkb::wl::parse_wlg(text, "fuzz");
    // Round-trip: canonical text must reparse to the same canonical text.
    const std::string once = xkb::wl::write_wlg(g);
    const std::string twice =
        xkb::wl::write_wlg(xkb::wl::parse_wlg(once, "fuzz-rt"));
    if (once != twice) throw std::logic_error("wlg round-trip mismatch");
  } catch (const std::invalid_argument&) {
    // The one sanctioned failure mode: a precise parse/validate error.
  }
  return 0;
}
