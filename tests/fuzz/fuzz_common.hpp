// Shared scaffolding for the xkb fuzz harnesses.
//
// Each harness defines LLVMFuzzerTestOneInput (the libFuzzer entry point)
// and, unless compiled with -fsanitize=fuzzer (which supplies its own
// main), gets a standalone driver from this header:
//
//   fuzz_<target> file...                  # regression: replay corpus inputs
//   fuzz_<target> --mutate N file...       # N deterministic mutants per file
//
// The standalone driver is what ctest runs on every build: corpus replay
// plus a fixed-seed mutation smoke pass.  It needs no sanitizer, no
// clang, and no wall clock -- mutations come from a xorshift stream with
// a hard-coded seed, so a failure reproduces bit-identically everywhere.
// CI additionally runs the same harness under real libFuzzer for a
// time-boxed exploration pass (see .github/workflows: smoke-fuzz).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#ifndef XKB_FUZZ_WITH_LIBFUZZER

namespace xkb_fuzz {

inline std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Apply one deterministic mutation to `buf` (byte flip, truncate,
/// duplicate-slice, or ASCII splice of tokens that stress numeric paths).
inline void mutate(std::string& buf, std::uint64_t& s) {
  static const char* kSplices[] = {
      "nan",  "inf",   "-inf", "1e309", "-1",   "18446744073709551615",
      "0x10", "1e-309", " ",   "\t",    "#",    ":",
      "2147483648", "-2147483649", "999999999999999999999",
  };
  if (buf.empty()) {
    buf = "x";
    return;
  }
  switch (xorshift(s) % 4) {
    case 0: {  // flip a byte
      const std::size_t i = xorshift(s) % buf.size();
      buf[i] = static_cast<char>(xorshift(s) & 0x7f);
      break;
    }
    case 1: {  // truncate
      buf.resize(xorshift(s) % buf.size());
      break;
    }
    case 2: {  // duplicate a slice
      const std::size_t a = xorshift(s) % buf.size();
      const std::size_t n = xorshift(s) % (buf.size() - a) + 1;
      buf.insert(xorshift(s) % buf.size(), buf.substr(a, n));
      break;
    }
    default: {  // splice a numeric edge-case token
      const char* tok =
          kSplices[xorshift(s) % (sizeof(kSplices) / sizeof(*kSplices))];
      buf.insert(xorshift(s) % buf.size(), tok);
      break;
    }
  }
}

inline int standalone_main(int argc, char** argv) {
  int mutants = 0;
  int argi = 1;
  if (argi < argc && std::strcmp(argv[argi], "--mutate") == 0) {
    if (argi + 1 >= argc) {
      std::fprintf(stderr, "usage: %s [--mutate N] file...\n", argv[0]);
      return 2;
    }
    mutants = std::atoi(argv[argi + 1]);
    argi += 2;
  }
  if (argi >= argc) {
    std::fprintf(stderr, "usage: %s [--mutate N] file...\n", argv[0]);
    return 2;
  }
  std::size_t ran = 0;
  for (; argi < argc; ++argi) {
    std::ifstream in(argv[argi], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "fuzz: cannot read '%s'\n", argv[argi]);
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string seed = ss.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(seed.data()), seed.size());
    ++ran;
    // Deterministic mutants: same inputs on every machine, every run.
    std::uint64_t state = 0x9e3779b97f4a7c15ull ^ (ran * 0xff51afd7ed558ccdull);
    for (int m = 0; m < mutants; ++m) {
      std::string buf = seed;
      // A few stacked mutations reach deeper than single edits.
      const int edits = 1 + static_cast<int>(xorshift(state) % 3);
      for (int e = 0; e < edits; ++e) mutate(buf, state);
      LLVMFuzzerTestOneInput(
          reinterpret_cast<const std::uint8_t*>(buf.data()), buf.size());
      ++ran;
    }
  }
  std::fprintf(stderr, "fuzz: %zu input(s) OK\n", ran);
  return 0;
}

}  // namespace xkb_fuzz

int main(int argc, char** argv) {
  return xkb_fuzz::standalone_main(argc, argv);
}

#endif  // XKB_FUZZ_WITH_LIBFUZZER
