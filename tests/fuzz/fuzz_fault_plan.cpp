// Fuzz target: fault::FaultPlan::parse, the chaos-plan text parser.
//
// Contract under fuzzing: any byte string either yields a plan whose
// every event carries finite non-negative times, in-range endpoints, and
// fractions in (0, 1] -- or throws std::invalid_argument naming the bad
// line.  On accepted plans, to_text() must round-trip through parse() to
// the identical text.
//
// Found by this harness (fixed in the same change):
//   * `seed` parsed as double then cast to uint64_t: NaN and out-of-range
//     values make the cast undefined behaviour, and 2^64-1 silently
//     rounds; now parsed as a checked decimal token.
//   * "nan"/"inf" accepted for times/fractions/probabilities (NaN slips
//     every range check), breaking engine time arithmetic.
//   * endpoint integers beyond int range: undefined double-to-int cast.
//   * trailing junk after a brownout duration silently ignored.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"

#include "fuzz_common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const xkb::fault::FaultPlan plan = xkb::fault::FaultPlan::parse(text);
    // Post-conditions the engine relies on.
    for (const xkb::fault::FaultEvent& e : plan.events) {
      if (!std::isfinite(e.t) || e.t < 0)
        throw std::logic_error("accepted event with bad time");
      if (!std::isfinite(e.fraction))
        throw std::logic_error("accepted non-finite fraction");
      if (!std::isfinite(e.duration) || e.duration < 0)
        throw std::logic_error("accepted bad duration");
    }
    if (!std::isfinite(plan.fail_prob) || plan.fail_prob < 0 ||
        plan.fail_prob > 1)
      throw std::logic_error("accepted bad fail-prob");
    // Round-trip: canonical text reparses to identical canonical text.
    const std::string once = plan.to_text();
    const std::string twice =
        xkb::fault::FaultPlan::parse(once).to_text();
    if (once != twice) throw std::logic_error("plan round-trip mismatch");
  } catch (const std::invalid_argument&) {
    // The one sanctioned failure mode.
  }
  return 0;
}
