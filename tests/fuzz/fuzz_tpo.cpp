// Fuzz target: tdl::parse_tpo, the .tpo machine-description parser.
//
// Contract under fuzzing: any byte string either yields a validated
// Machine -- finite positive bandwidths, non-negative latencies, every
// link between declared nodes, every device reaching a host -- or throws
// std::invalid_argument with an origin:line:directive:field message.  On
// accepted machines, write_tpo() must be a fixed point through parse_tpo()
// (the canonical-writer property the committed presets are gated on), and
// routing the machine into a Topology must never throw for a validated
// description.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "tdl/machine.hpp"
#include "tdl/tpo.hpp"
#include "topo/topology.hpp"

#include "fuzz_common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const xkb::tdl::Machine m = xkb::tdl::parse_tpo(text, "fuzz.tpo");
    // Post-conditions the routing engine relies on.
    if (!std::isfinite(m.default_latency_s) || m.default_latency_s < 0)
      throw std::logic_error("accepted bad default latency");
    if (!std::isfinite(m.pcie_fallback_gbps) || m.pcie_fallback_gbps <= 0)
      throw std::logic_error("accepted bad pcie-fallback");
    for (const xkb::tdl::Link& l : m.links) {
      if (l.a < 0 || l.b < 0 ||
          l.a >= static_cast<int>(m.nodes.size()) ||
          l.b >= static_cast<int>(m.nodes.size()) || l.a == l.b)
        throw std::logic_error("accepted out-of-range link endpoint");
      if (!std::isfinite(l.bw_gbps) || l.bw_gbps <= 0)
        throw std::logic_error("accepted bad link bandwidth");
      if (!std::isfinite(l.hostbw_gbps) || l.hostbw_gbps <= 0)
        throw std::logic_error("accepted bad host bandwidth");
      if (!std::isfinite(l.lat_s) || l.lat_s < 0)
        throw std::logic_error("accepted bad link latency");
      if (l.rank < 1)
        throw std::logic_error("accepted bad link rank");
    }
    // Canonical writer fixed point: write -> parse -> write is identity.
    const std::string once = xkb::tdl::write_tpo(m);
    const std::string twice =
        xkb::tdl::write_tpo(xkb::tdl::parse_tpo(once, "fuzz.tpo"));
    if (once != twice) throw std::logic_error("tpo round-trip mismatch");
    // A validated machine must route without throwing (validate() already
    // guaranteed every device reaches a host).
    (void)xkb::topo::Topology::from_machine(m);
  } catch (const std::invalid_argument&) {
    // The one sanctioned failure mode.
  }
  return 0;
}
