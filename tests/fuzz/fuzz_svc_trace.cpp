// Fuzz target: svc::ArrivalTrace::parse, the .svt service-trace parser.
//
// Contract under fuzzing: any byte string either yields a trace whose
// invariants hold -- at least one tenant, finite non-negative
// non-decreasing arrival times, in-range tenant indices, positive
// shares, parseable workload specs -- or throws std::invalid_argument
// naming the bad line.  On accepted traces, to_text() must round-trip
// through parse() to the identical text.
//
// Found by this harness (fixed in the same change):
//   * "nan"/"inf" accepted for times/shares/deadlines (NaN defeats every
//     ordering check, then poisons engine time arithmetic).
//   * seed parsed as double then cast: large values silently rounded;
//     now a checked decimal token like the fault-plan parser's.
//   * an optional trailing deadline of "0.5junk" silently truncated.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "svc/arrivals.hpp"

#include "fuzz_common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const xkb::svc::ArrivalTrace tr = xkb::svc::ArrivalTrace::parse(text);
    // Post-conditions the service replay relies on.
    if (tr.tenants.empty())
      throw std::logic_error("accepted a trace with no tenants");
    for (const xkb::svc::TenantSpec& t : tr.tenants) {
      if (!std::isfinite(t.share) || t.share <= 0)
        throw std::logic_error("accepted a bad share");
      if (!std::isfinite(t.deadline) || t.deadline < 0)
        throw std::logic_error("accepted a bad tenant deadline");
    }
    double last = 0.0;
    for (const xkb::svc::Arrival& a : tr.arrivals) {
      if (!std::isfinite(a.t) || a.t < 0 || a.t < last)
        throw std::logic_error("accepted a bad arrival time");
      last = a.t;
      if (a.tenant < 0 || a.tenant >= static_cast<int>(tr.tenants.size()))
        throw std::logic_error("accepted an out-of-range tenant");
      if (!std::isfinite(a.deadline))
        throw std::logic_error("accepted a non-finite deadline");
    }
    // Round-trip: canonical text reparses to identical canonical text.
    const std::string once = tr.to_text();
    const std::string twice = xkb::svc::ArrivalTrace::parse(once).to_text();
    if (once != twice) throw std::logic_error("trace round-trip mismatch");
  } catch (const std::invalid_argument&) {
    // The one sanctioned failure mode.
  }
  return 0;
}
