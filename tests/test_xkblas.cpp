// Tests of the public XKBlas-style API (xkblas::Context): all nine
// routines end to end on the simulated DGX-1, lazy coherency semantics,
// 2D block-cyclic distribution, composition, and configuration switches.
#include <gtest/gtest.h>

#include <complex>

#include "core/xkblas.hpp"
#include "util/rng.hpp"

namespace {

using namespace xkblas;
using Z = std::complex<double>;

Options functional_options(std::size_t tile = 32) {
  Options o;
  o.platform.functional = true;
  o.tile = tile;
  return o;
}

constexpr std::size_t kN = 96;
constexpr double kTol = 1e-9;

struct Mats {
  xkb::Matrix<double> A{kN, kN}, B{kN, kN}, C{kN, kN};
  explicit Mats(std::uint64_t seed) {
    xkb::Rng rng(seed);
    xkb::fill_random(A, rng);
    xkb::fill_random(B, rng);
    xkb::fill_random(C, rng);
  }
};

TEST(ContextApi, GemmEndToEnd) {
  Mats m(1);
  xkb::Matrix<double> ref = m.C;
  xkb::host::gemm<double>(Op::NoTrans, Op::Trans, 2.0, m.A.view(), m.B.view(),
                          -1.0, ref.view());
  Context ctx(functional_options());
  ctx.gemm_async<double>(Op::NoTrans, Op::Trans, 2.0, m.A.view(), m.B.view(),
                         -1.0, m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());
  const double t = ctx.sync();
  EXPECT_GT(t, 0.0);
  EXPECT_LT(xkb::max_abs_diff(m.C, ref), kTol);
}

TEST(ContextApi, SymmEndToEnd) {
  Mats m(2);
  xkb::Matrix<double> ref = m.C;
  xkb::host::symm<double>(Side::Right, Uplo::Upper, 1.0, m.A.view(),
                          m.B.view(), 0.5, ref.view());
  Context ctx(functional_options());
  ctx.symm_async<double>(Side::Right, Uplo::Upper, 1.0, m.A.view(),
                         m.B.view(), 0.5, m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(m.C, ref), kTol);
}

TEST(ContextApi, SyrkEndToEnd) {
  Mats m(3);
  xkb::Matrix<double> ref = m.C;
  xkb::host::syrk<double>(Uplo::Lower, Op::NoTrans, 1.0, m.A.view(), 1.0,
                          ref.view());
  Context ctx(functional_options());
  ctx.syrk_async<double>(Uplo::Lower, Op::NoTrans, 1.0, m.A.view(), 1.0,
                         m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = j; i < kN; ++i)
      ASSERT_NEAR(m.C(i, j), ref(i, j), kTol);
}

TEST(ContextApi, Syr2kEndToEnd) {
  Mats m(4);
  xkb::Matrix<double> ref = m.C;
  xkb::host::syr2k<double>(Uplo::Lower, Op::NoTrans, 0.5, m.A.view(),
                           m.B.view(), 1.0, ref.view());
  Context ctx(functional_options());
  ctx.syr2k_async<double>(Uplo::Lower, Op::NoTrans, 0.5, m.A.view(),
                          m.B.view(), 1.0, m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = j; i < kN; ++i)
      ASSERT_NEAR(m.C(i, j), ref(i, j), kTol);
}

TEST(ContextApi, TrmmEndToEnd) {
  Mats m(5);
  xkb::Matrix<double> ref = m.B;
  xkb::host::trmm<double>(Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit,
                          1.5, m.A.view(), ref.view());
  Context ctx(functional_options());
  ctx.trmm_async<double>(Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit,
                         1.5, m.A.view(), m.B.view());
  ctx.memory_coherent_async<double>(m.B.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(m.B, ref), kTol);
}

TEST(ContextApi, TrsmEndToEnd) {
  Mats m(6);
  xkb::make_diag_dominant(m.A);
  xkb::Matrix<double> ref = m.B;
  xkb::host::trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                          1.0, m.A.view(), ref.view());
  Context ctx(functional_options());
  ctx.trsm_async<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                         1.0, m.A.view(), m.B.view());
  ctx.memory_coherent_async<double>(m.B.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(m.B, ref), 1e-8);
}

TEST(ContextApi, HermitianTrioEndToEnd) {
  xkb::Rng rng(7);
  xkb::Matrix<Z> A(kN, kN), B(kN, kN), C(kN, kN);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  for (std::size_t i = 0; i < kN; ++i) C(i, i) = Z{std::real(C(i, i))};

  xkb::Matrix<Z> r1 = C, r2 = C, r3 = C;
  const Z alpha{0.7, -0.2};
  xkb::host::hemm<Z>(Side::Left, Uplo::Lower, alpha, A.view(), B.view(),
                     Z{1.0}, r1.view());
  xkb::host::herk<Z>(Uplo::Lower, Op::NoTrans, 0.5, A.view(), 1.0, r2.view());
  xkb::host::her2k<Z>(Uplo::Lower, Op::NoTrans, alpha, A.view(), B.view(),
                      1.0, r3.view());

  for (int which = 0; which < 3; ++which) {
    xkb::Matrix<Z> out = C;
    Context ctx(functional_options());
    if (which == 0)
      ctx.hemm_async<Z>(Side::Left, Uplo::Lower, alpha, A.view(), B.view(),
                        Z{1.0}, out.view());
    else if (which == 1)
      ctx.herk_async<Z>(Uplo::Lower, Op::NoTrans, 0.5, A.view(), 1.0,
                        out.view());
    else
      ctx.her2k_async<Z>(Uplo::Lower, Op::NoTrans, alpha, A.view(), B.view(),
                         1.0, out.view());
    ctx.memory_coherent_async<Z>(out.view());
    ctx.sync();
    const xkb::Matrix<Z>& ref = which == 0 ? r1 : which == 1 ? r2 : r3;
    for (std::size_t j = 0; j < kN; ++j)
      for (std::size_t i = j; i < kN; ++i)
        ASSERT_LT(std::abs(out(i, j) - ref(i, j)), kTol)
            << "routine " << which;
  }
}

TEST(ContextApi, SinglePrecision) {
  xkb::Rng rng(8);
  xkb::Matrix<float> A(kN, kN), B(kN, kN), C(kN, kN);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  xkb::Matrix<float> ref = C;
  xkb::host::gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, A.view(), B.view(),
                         1.0f, ref.view());
  Context ctx(functional_options());
  ctx.gemm_async<float>(Op::NoTrans, Op::NoTrans, 1.0f, A.view(), B.view(),
                        1.0f, C.view());
  ctx.memory_coherent_async<float>(C.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(C, ref), 1e-3f);
}

TEST(ContextApi, LazyCoherency) {
  // Without memory_coherent, the host copy stays stale (lazy coherency).
  Mats m(9);
  xkb::Matrix<double> before = m.C;
  Context ctx(functional_options());
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.sync();
  EXPECT_DOUBLE_EQ(xkb::max_abs_diff(m.C, before), 0.0)
      << "host must not change before an explicit coherency request";
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  EXPECT_GT(xkb::max_abs_diff(m.C, before), 0.0);
}

TEST(ContextApi, DistributeThenComputeAvoidsHostTraffic) {
  Mats m(10);
  xkb::Matrix<double> ref = m.C;
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                          m.B.view(), 1.0, ref.view());
  Context ctx(functional_options());
  ctx.distribute_2d_block_cyclic_async<double>(m.A.view());
  ctx.distribute_2d_block_cyclic_async<double>(m.B.view());
  ctx.distribute_2d_block_cyclic_async<double>(m.C.view());
  ctx.sync();
  const std::size_t h2d_after_dist = ctx.rt().data_manager().stats().h2d;
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.sync();
  EXPECT_EQ(ctx.rt().data_manager().stats().h2d, h2d_after_dist)
      << "data-on-device run must not touch the host links";
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(m.C, ref), kTol);
}

TEST(ContextApi, DistributionFollowsGrid) {
  Mats m(11);
  Context ctx(functional_options());
  ctx.distribute_2d_block_cyclic_async<double>(m.A.view(), 4, 2);
  ctx.sync();
  // Tile (i, j) must live on GPU (i%4)*2 + (j%2).
  const std::size_t ts = ctx.options().tile;
  for (std::size_t i = 0; i < kN / ts; ++i)
    for (std::size_t j = 0; j < kN / ts; ++j) {
      xkb::mem::DataHandle* h =
          ctx.rt().registry().find(&m.A(i * ts, j * ts));
      ASSERT_NE(h, nullptr);
      const int want = static_cast<int>(i % 4) * 2 + static_cast<int>(j % 2);
      EXPECT_EQ(h->home_device, want);
      EXPECT_EQ(h->dev[want].state, xkb::mem::ReplicaState::kValid);
    }
}

TEST(ContextApi, CompositionInheritsDistribution) {
  // Second call reuses replicas placed by the first: fewer H2D than two
  // independent contexts would need.
  Mats m(12);
  Context ctx(functional_options());
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.sync();
  const std::size_t h2d_first = ctx.rt().data_manager().stats().h2d;
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.sync();
  EXPECT_EQ(ctx.rt().data_manager().stats().h2d, h2d_first)
      << "second call must find every tile already resident";
}

TEST(ContextApi, SchedulerOptions) {
  for (SchedulerKind kind : {SchedulerKind::kOwnerComputes,
                             SchedulerKind::kDmdas,
                             SchedulerKind::kRoundRobin}) {
    Mats m(13);
    xkb::Matrix<double> ref = m.C;
    xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                            m.B.view(), 1.0, ref.view());
    Options o = functional_options();
    o.scheduler = kind;
    Context ctx(o);
    ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                           m.B.view(), 1.0, m.C.view());
    ctx.memory_coherent_async<double>(m.C.view());
    ctx.sync();
    EXPECT_LT(xkb::max_abs_diff(m.C, ref), kTol);
  }
}

TEST(ContextApi, HeuristicSwitchesReachDataManager) {
  Options o = functional_options();
  o.runtime.heuristics = xkb::rt::HeuristicConfig::no_heuristic_no_topo();
  Context ctx(o);
  EXPECT_EQ(ctx.rt().data_manager().config().source,
            xkb::rt::SourcePolicy::kFirstValid);
  EXPECT_FALSE(ctx.rt().data_manager().config().optimistic_d2d);
}

TEST(ContextApi, AlternativeTopology) {
  Options o = functional_options();
  o.topology = xkb::topo::Topology::summit_like();
  Context ctx(o);
  EXPECT_EQ(ctx.platform().num_gpus(), 6);
  Mats m(14);
  xkb::Matrix<double> ref = m.C;
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                          m.B.view(), 1.0, ref.view());
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(m.C, ref), kTol);
}

TEST(ContextApi, VirtualTimeAdvancesMonotonically) {
  Mats m(15);
  Context ctx(functional_options());
  EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  const double t1 = ctx.sync();
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  const double t2 = ctx.sync();
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, t1);
}

}  // namespace

// Appended: host-overwrite semantics (mixed CPU/GPU pipelines).
namespace {
using namespace xkblas;

TEST(HostOverwrite, CpuWriteReachesSubsequentGpuReads) {
  Mats m(20);
  Context ctx(functional_options());
  // Replicate A on the devices via a first GEMM.
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.sync();
  // CPU rewrites A, declares it, then reruns: the result must reflect the
  // *new* A, not the stale device replicas.
  xkb::Rng rng2(21);
  xkb::fill_random(m.A, rng2);
  ctx.host_overwrite_async<double>(m.A.view());
  xkb::Matrix<double> C2(kN, kN, 0.0);
  xkb::Matrix<double> ref(kN, kN, 0.0);
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                          m.B.view(), 0.0, ref.view());
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 0.0, C2.view());
  ctx.memory_coherent_async<double>(C2.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(C2, ref), kTol);
}

TEST(HostOverwrite, InvalidatesDeviceReplicas) {
  Mats m(22);
  Context ctx(functional_options());
  ctx.distribute_2d_block_cyclic_async<double>(m.A.view());
  ctx.sync();
  ctx.host_overwrite_async<double>(m.A.view());
  ctx.sync();
  const std::size_t ts = ctx.options().tile;
  for (std::size_t i = 0; i < kN; i += ts)
    for (std::size_t j = 0; j < kN; j += ts) {
      xkb::mem::DataHandle* h = ctx.rt().registry().find(&m.A(i, j));
      ASSERT_NE(h, nullptr);
      EXPECT_TRUE(h->valid_devices().empty());
      EXPECT_EQ(h->host.state, xkb::mem::ReplicaState::kValid);
    }
}

TEST(HostOverwrite, OrderedAfterPendingWork) {
  // The overwrite is a writer task: it must wait for the flush of the
  // previous result (dataflow, not wall-clock, ordering).
  Mats m(23);
  Context ctx(functional_options());
  ctx.gemm_async<double>(Op::NoTrans, Op::NoTrans, 1.0, m.A.view(),
                         m.B.view(), 1.0, m.C.view());
  ctx.memory_coherent_async<double>(m.C.view());   // reader of C
  ctx.host_overwrite_async<double>(m.C.view());    // writer: must run last
  ctx.sync();
  xkb::Matrix<double> ref(kN, kN, 0.0);
  xkb::Rng rng(1);  // same seed pattern as Mats(23) C? -- not needed: just
  (void)rng;        // check the flush observed the computed value.
  // After the sequence, host C holds the GEMM result (flushed before the
  // declared overwrite), and no device replica remains.
  xkb::mem::DataHandle* h = ctx.rt().registry().find(&m.C(0, 0));
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->valid_devices().empty());
}

}  // namespace
