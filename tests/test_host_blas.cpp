// Tests of the reference host BLAS-3 kernels against brute-force
// definitions, over real and complex element types and parameter sweeps.
#include <gtest/gtest.h>

#include <complex>

#include "blas/host_blas.hpp"
#include "util/rng.hpp"

namespace xkb {
namespace {

using Z = std::complex<double>;

constexpr double kTol = 1e-11;

// Dense full-storage mirror of a symmetric/Hermitian/triangular operand so
// that every routine can be checked against one generic GEMM.
template <typename T>
Matrix<T> full_symmetric(const Matrix<T>& a, Uplo uplo) {
  const std::size_t n = a.rows();
  Matrix<T> f(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const bool stored = uplo == Uplo::Lower ? i >= j : i <= j;
      f(i, j) = stored ? a(i, j) : a(j, i);
    }
  return f;
}

template <typename T>
Matrix<T> full_hermitian(const Matrix<T>& a, Uplo uplo) {
  const std::size_t n = a.rows();
  Matrix<T> f(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) {
        f(i, i) = T{std::real(a(i, i))};
      } else {
        const bool stored = uplo == Uplo::Lower ? i > j : i < j;
        f(i, j) = stored ? a(i, j) : conj_if(a(j, i));
      }
    }
  return f;
}

template <typename T>
Matrix<T> full_triangular(const Matrix<T>& a, Uplo uplo, Diag diag) {
  const std::size_t n = a.rows();
  Matrix<T> f(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const bool stored = uplo == Uplo::Lower ? i >= j : i <= j;
      if (i == j && diag == Diag::Unit)
        f(i, i) = T{1};
      else
        f(i, j) = stored ? a(i, j) : T{};
    }
  return f;
}

template <typename T>
Matrix<T> random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix<T> a(m, n);
  fill_random(a, rng);
  return a;
}

TEST(HostGemm, MatchesManualSmall) {
  // C = A*B on a hand-computable 2x2 case.
  Matrix<double> a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, a.view(), b.view(), 0.0,
                     c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(HostGemm, BetaZeroIgnoresGarbage) {
  Matrix<double> a(3, 3), b(3, 3);
  Rng rng(11);
  fill_random(a, rng);
  fill_random(b, rng);
  Matrix<double> c1(3, 3, std::numeric_limits<double>::quiet_NaN());
  Matrix<double> c2(3, 3, 0.0);
  host::gemm<double>(Op::NoTrans, Op::NoTrans, 2.0, a.view(), b.view(), 0.0,
                     c1.view());
  host::gemm<double>(Op::NoTrans, Op::NoTrans, 2.0, a.view(), b.view(), 0.0,
                     c2.view());
  EXPECT_LT(max_abs_diff(c1, c2), kTol);
}

struct GemmCase {
  Op opa, opb;
  std::size_t m, n, k;
};

class GemmOps : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmOps, TransposeVariantsMatchExplicit) {
  const auto p = GetParam();
  Rng rng(99);
  // Stored operands sized so that op(A) is m-by-k, op(B) is k-by-n.
  Matrix<double> a = (p.opa == Op::NoTrans)
                         ? random_matrix<double>(p.m, p.k, rng)
                         : random_matrix<double>(p.k, p.m, rng);
  Matrix<double> b = (p.opb == Op::NoTrans)
                         ? random_matrix<double>(p.k, p.n, rng)
                         : random_matrix<double>(p.n, p.k, rng);
  Matrix<double> c = random_matrix<double>(p.m, p.n, rng);
  Matrix<double> c2 = c;

  // Explicitly transpose into plain operands.
  Matrix<double> ea(p.m, p.k), eb(p.k, p.n);
  for (std::size_t j = 0; j < p.k; ++j)
    for (std::size_t i = 0; i < p.m; ++i)
      ea(i, j) = p.opa == Op::NoTrans ? a(i, j) : a(j, i);
  for (std::size_t j = 0; j < p.n; ++j)
    for (std::size_t i = 0; i < p.k; ++i)
      eb(i, j) = p.opb == Op::NoTrans ? b(i, j) : b(j, i);

  host::gemm<double>(p.opa, p.opb, 1.5, a.view(), b.view(), 0.5, c.view());
  host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.5, ea.view(), eb.view(), 0.5,
                     c2.view());
  EXPECT_LT(max_abs_diff(c, c2), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GemmOps,
    ::testing::Values(GemmCase{Op::NoTrans, Op::NoTrans, 7, 5, 6},
                      GemmCase{Op::Trans, Op::NoTrans, 7, 5, 6},
                      GemmCase{Op::NoTrans, Op::Trans, 7, 5, 6},
                      GemmCase{Op::Trans, Op::Trans, 4, 9, 3}));

TEST(HostGemm, ConjTransComplex) {
  Rng rng(5);
  Matrix<Z> a = random_matrix<Z>(4, 3, rng);   // op(A) = A^H : 3x4
  Matrix<Z> b = random_matrix<Z>(4, 5, rng);   // 4x5
  Matrix<Z> c(3, 5);
  host::gemm<Z>(Op::ConjTrans, Op::NoTrans, Z{1.0}, a.view(), b.view(), Z{0.0},
                c.view());
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 3; ++i) {
      Z want{};
      for (std::size_t l = 0; l < 4; ++l) want += std::conj(a(l, i)) * b(l, j);
      EXPECT_LT(std::abs(c(i, j) - want), kTol);
    }
}

class UploSide
    : public ::testing::TestWithParam<std::tuple<Side, Uplo>> {};

TEST_P(UploSide, SymmMatchesFullGemm) {
  auto [side, uplo] = GetParam();
  Rng rng(21);
  const std::size_t m = 6, n = 5;
  const std::size_t na = side == Side::Left ? m : n;
  Matrix<double> a = random_matrix<double>(na, na, rng);
  Matrix<double> b = random_matrix<double>(m, n, rng);
  Matrix<double> c = random_matrix<double>(m, n, rng);
  Matrix<double> c2 = c;

  host::symm<double>(side, uplo, 2.0, a.view(), b.view(), 0.7, c.view());
  Matrix<double> fa = full_symmetric(a, uplo);
  if (side == Side::Left)
    host::gemm<double>(Op::NoTrans, Op::NoTrans, 2.0, fa.view(), b.view(),
                       0.7, c2.view());
  else
    host::gemm<double>(Op::NoTrans, Op::NoTrans, 2.0, b.view(), fa.view(),
                       0.7, c2.view());
  EXPECT_LT(max_abs_diff(c, c2), kTol);
}

TEST_P(UploSide, HemmMatchesFullGemm) {
  auto [side, uplo] = GetParam();
  Rng rng(22);
  const std::size_t m = 5, n = 4;
  const std::size_t na = side == Side::Left ? m : n;
  Matrix<Z> a = random_matrix<Z>(na, na, rng);
  Matrix<Z> b = random_matrix<Z>(m, n, rng);
  Matrix<Z> c = random_matrix<Z>(m, n, rng);
  Matrix<Z> c2 = c;

  host::hemm<Z>(side, uplo, Z{1.0, 0.5}, a.view(), b.view(), Z{0.3}, c.view());
  Matrix<Z> fa = full_hermitian(a, uplo);
  if (side == Side::Left)
    host::gemm<Z>(Op::NoTrans, Op::NoTrans, Z{1.0, 0.5}, fa.view(), b.view(),
                  Z{0.3}, c2.view());
  else
    host::gemm<Z>(Op::NoTrans, Op::NoTrans, Z{1.0, 0.5}, b.view(), fa.view(),
                  Z{0.3}, c2.view());
  EXPECT_LT(max_abs_diff(c, c2), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, UploSide,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper)));

class UploOp : public ::testing::TestWithParam<std::tuple<Uplo, Op>> {};

TEST_P(UploOp, SyrkMatchesFullGemm) {
  auto [uplo, op] = GetParam();
  if (op == Op::ConjTrans) GTEST_SKIP() << "syrk takes N/T only";
  Rng rng(31);
  const std::size_t n = 6, k = 4;
  Matrix<double> a = op == Op::NoTrans ? random_matrix<double>(n, k, rng)
                                       : random_matrix<double>(k, n, rng);
  Matrix<double> c = random_matrix<double>(n, n, rng);
  Matrix<double> ref = c;

  host::syrk<double>(uplo, op, 1.3, a.view(), 0.4, c.view());
  host::gemm<double>(op, op == Op::NoTrans ? Op::Trans : Op::NoTrans, 1.3,
                     a.view(), a.view(), 0.4, ref.view());
  // Only the uplo triangle of c is updated.
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) {
        EXPECT_NEAR(c(i, j), ref(i, j), kTol) << i << "," << j;
      }
    }
}

TEST_P(UploOp, Syr2kMatchesTwoGemms) {
  auto [uplo, op] = GetParam();
  if (op == Op::ConjTrans) GTEST_SKIP() << "syr2k takes N/T only";
  Rng rng(32);
  const std::size_t n = 5, k = 7;
  Matrix<double> a = op == Op::NoTrans ? random_matrix<double>(n, k, rng)
                                       : random_matrix<double>(k, n, rng);
  Matrix<double> b = op == Op::NoTrans ? random_matrix<double>(n, k, rng)
                                       : random_matrix<double>(k, n, rng);
  Matrix<double> c = random_matrix<double>(n, n, rng);
  Matrix<double> ref = c;

  host::syr2k<double>(uplo, op, 0.9, a.view(), b.view(), 1.1, c.view());
  const Op flip = op == Op::NoTrans ? Op::Trans : Op::NoTrans;
  host::gemm<double>(op, flip, 0.9, a.view(), b.view(), 1.1, ref.view());
  host::gemm<double>(op, flip, 0.9, b.view(), a.view(), 1.0, ref.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) {
        EXPECT_NEAR(c(i, j), ref(i, j), kTol);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, UploOp,
    ::testing::Combine(::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Op::NoTrans, Op::Trans)));

TEST(HostHerk, MatchesFullGemmConj) {
  Rng rng(41);
  const std::size_t n = 5, k = 4;
  Matrix<Z> a = random_matrix<Z>(n, k, rng);
  Matrix<Z> c = random_matrix<Z>(n, n, rng);
  // Hermitian C input: make diagonal real.
  for (std::size_t i = 0; i < n; ++i) c(i, i) = Z{std::real(c(i, i))};
  Matrix<Z> ref = c;

  host::herk<Z>(Uplo::Lower, Op::NoTrans, 2.0, a.view(), 0.5, c.view());
  host::gemm<Z>(Op::NoTrans, Op::ConjTrans, Z{2.0}, a.view(), a.view(), Z{0.5},
                ref.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      EXPECT_LT(std::abs(c(i, j) - ref(i, j)), kTol);
}

TEST(HostHer2k, MatchesTwoGemms) {
  Rng rng(42);
  const std::size_t n = 4, k = 6;
  Matrix<Z> a = random_matrix<Z>(n, k, rng);
  Matrix<Z> b = random_matrix<Z>(n, k, rng);
  Matrix<Z> c = random_matrix<Z>(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) c(i, i) = Z{std::real(c(i, i))};
  Matrix<Z> ref = c;

  const Z alpha{1.2, -0.3};
  host::her2k<Z>(Uplo::Lower, Op::NoTrans, alpha, a.view(), b.view(), 0.7,
                 c.view());
  host::gemm<Z>(Op::NoTrans, Op::ConjTrans, alpha, a.view(), b.view(), Z{0.7},
                ref.view());
  host::gemm<Z>(Op::NoTrans, Op::ConjTrans, std::conj(alpha), b.view(),
                a.view(), Z{1.0}, ref.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      EXPECT_LT(std::abs(c(i, j) - ref(i, j)), kTol);
}

struct TriCase {
  Side side;
  Uplo uplo;
  Op op;
  Diag diag;
};

class TriParams : public ::testing::TestWithParam<TriCase> {};

TEST_P(TriParams, TrmmMatchesFullGemm) {
  const auto p = GetParam();
  Rng rng(51);
  const std::size_t m = 6, n = 4;
  const std::size_t na = p.side == Side::Left ? m : n;
  Matrix<double> a = random_matrix<double>(na, na, rng);
  Matrix<double> b = random_matrix<double>(m, n, rng);
  Matrix<double> ref(m, n);

  Matrix<double> fa = full_triangular(a, p.uplo, p.diag);
  if (p.side == Side::Left)
    host::gemm<double>(p.op, Op::NoTrans, 1.4, fa.view(), b.view(), 0.0,
                       ref.view());
  else
    host::gemm<double>(Op::NoTrans, p.op, 1.4, b.view(), fa.view(), 0.0,
                       ref.view());

  host::trmm<double>(p.side, p.uplo, p.op, p.diag, 1.4, a.view(), b.view());
  EXPECT_LT(max_abs_diff(b, ref), kTol);
}

TEST_P(TriParams, TrsmInvertsTrmm) {
  const auto p = GetParam();
  Rng rng(52);
  const std::size_t m = 6, n = 4;
  const std::size_t na = p.side == Side::Left ? m : n;
  Matrix<double> a = random_matrix<double>(na, na, rng);
  make_diag_dominant(a);
  Matrix<double> x = random_matrix<double>(m, n, rng);
  Matrix<double> b = x;

  // b := op(A) * x (or x * op(A)); then solving must recover x.
  host::trmm<double>(p.side, p.uplo, p.op, p.diag, 1.0, a.view(), b.view());
  host::trsm<double>(p.side, p.uplo, p.op, p.diag, 1.0, a.view(), b.view());
  EXPECT_LT(max_abs_diff(b, x), 1e-9);
}

TEST_P(TriParams, TrsmAlphaScales) {
  const auto p = GetParam();
  Rng rng(53);
  const std::size_t m = 5, n = 3;
  const std::size_t na = p.side == Side::Left ? m : n;
  Matrix<double> a = random_matrix<double>(na, na, rng);
  make_diag_dominant(a);
  Matrix<double> b = random_matrix<double>(m, n, rng);
  Matrix<double> b2 = b;

  host::trsm<double>(p.side, p.uplo, p.op, p.diag, 3.0, a.view(), b.view());
  host::trsm<double>(p.side, p.uplo, p.op, p.diag, 1.0, a.view(), b2.view());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i)
      EXPECT_NEAR(b(i, j), 3.0 * b2(i, j), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TriParams,
    ::testing::Values(
        TriCase{Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit},
        TriCase{Side::Left, Uplo::Lower, Op::Trans, Diag::NonUnit},
        TriCase{Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit},
        TriCase{Side::Left, Uplo::Upper, Op::Trans, Diag::NonUnit},
        TriCase{Side::Right, Uplo::Lower, Op::NoTrans, Diag::NonUnit},
        TriCase{Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit},
        TriCase{Side::Right, Uplo::Upper, Op::NoTrans, Diag::NonUnit},
        TriCase{Side::Right, Uplo::Upper, Op::Trans, Diag::NonUnit},
        TriCase{Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit},
        TriCase{Side::Right, Uplo::Upper, Op::Trans, Diag::Unit}));

TEST(HostTrsmComplex, ConjTransSolve) {
  Rng rng(61);
  const std::size_t m = 5, n = 3;
  Matrix<Z> a = random_matrix<Z>(m, m, rng);
  make_diag_dominant(a);
  Matrix<Z> x = random_matrix<Z>(m, n, rng);
  Matrix<Z> b = x;
  host::trmm<Z>(Side::Left, Uplo::Lower, Op::ConjTrans, Diag::NonUnit, Z{1.0},
                a.view(), b.view());
  host::trsm<Z>(Side::Left, Uplo::Lower, Op::ConjTrans, Diag::NonUnit, Z{1.0},
                a.view(), b.view());
  EXPECT_LT(max_abs_diff(b, x), 1e-9);
}

}  // namespace
}  // namespace xkb
