// Tests of xkb::obs -- the metrics registry, the link-utilization probes,
// decision/flow capture, the critical-path analyzer and the enriched trace
// exports.
//
// Three groups: unit tests of the pieces (registry semantics the hot paths
// rely on, histogram bucketing, hand-built critical-path DAGs with known
// answers), invariant tests over a real observed run (probe occupancy vs
// trace records -- the two accounting paths must agree where they measure
// the same thing and differ exactly where documented), and export format
// tests (hostile CSV labels round-trip, control characters stay valid JSON,
// the enriched Chrome export carries the decision/flow/counter tracks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "baselines/common.hpp"
#include "baselines/library_model.hpp"
#include "blas/tiled.hpp"
#include "obs/critical_path.hpp"
#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "util/json.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "trace/export.hpp"

namespace xkb::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(Metrics, CounterAndSeriesAddressesAreStable) {
  MetricsRegistry reg;
  double* c = &reg.counter("a");
  Series* s = &reg.series("s");
  for (int i = 0; i < 100; ++i) {
    std::string k = "k", sn = "sn";
    k += std::to_string(i);
    sn += std::to_string(i);
    reg.counter(k) = i;
    reg.series(sn).sample(i, i);
  }
  EXPECT_EQ(c, &reg.counter("a"));
  EXPECT_EQ(s, &reg.series("s"));
}

TEST(Metrics, ResetValuesKeepsRegisteredNamesAndAddresses) {
  MetricsRegistry reg;
  double* c = &reg.counter("a");
  *c = 7.0;
  Series* s = &reg.series("s");
  s->sample(1.0, 2.0);
  reg.set_gauge("g", 3.0);
  reg.reset_values();
  EXPECT_TRUE(reg.has_counter("a"));
  EXPECT_EQ(c, &reg.counter("a"));
  EXPECT_EQ(0.0, *c);
  EXPECT_EQ(s, &reg.series("s"));
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(0.0, reg.gauge_value("g"));
}

TEST(Metrics, SeriesDeduplicatesAndOverwritesAtSameInstant) {
  Series s;
  s.sample(0.0, 1.0);
  s.sample(1.0, 1.0);  // same value: dropped (the series records changes)
  s.sample(2.0, 5.0);
  s.sample(2.0, 9.0);  // same instant: last write wins
  ASSERT_EQ(2u, s.points().size());
  EXPECT_EQ(1.0, s.points()[0].v);
  EXPECT_EQ(2.0, s.points()[1].t);
  EXPECT_EQ(9.0, s.points()[1].v);
  EXPECT_EQ(9.0, s.last());
}

TEST(Metrics, JsonIsDeterministicAndOrdered) {
  MetricsRegistry a, b;
  a.counter("z") = 1.0;
  a.counter("a") = 2.0;
  a.series("s").sample(0.5, 3.0);
  b.counter("a") = 2.0;  // reversed insertion order
  b.counter("z") = 1.0;
  b.series("s").sample(0.5, 3.0);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(std::string::npos, a.to_json().find("\"counters\""));
  EXPECT_NE(std::string::npos, a.to_json().find("\"series\""));
}

TEST(DelayHistogram, ZerosLandInBucketZeroAndQuantileIsCappedByMax) {
  DelayHistogram h;
  for (int i = 0; i < 90; ++i) h.add(0.0);
  for (int i = 0; i < 10; ++i) h.add(3e-3);
  EXPECT_EQ(90u, h.count[0]);
  EXPECT_EQ(0.0, h.quantile(0.5));
  // p95 falls in the (1e-3, 1e-2] bucket whose bound exceeds the observed
  // max; the estimate must not.
  EXPECT_DOUBLE_EQ(3e-3, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(3e-3, h.max);
}

TEST(DelayHistogram, EmptyHistogramReportsZeroEverywhere) {
  const DelayHistogram h;
  EXPECT_EQ(0u, h.n);
  EXPECT_EQ(0.0, h.mean());
  EXPECT_EQ(0.0, h.max);
  for (double q : {0.0, 0.5, 0.95, 1.0}) EXPECT_EQ(0.0, h.quantile(q));
}

TEST(DelayHistogram, SingleBucketQuantilesClampToObservedMax) {
  DelayHistogram h;
  for (int i = 0; i < 5; ++i) h.add(5e-6);  // all in the (1e-6, 1e-5] bucket
  EXPECT_EQ(5u, h.count[2]);
  // Every non-degenerate quantile lands in the one occupied bucket, whose
  // upper bound (1e-5) must be clamped to the observed max.
  for (double q : {0.01, 0.5, 0.95, 1.0}) EXPECT_DOUBLE_EQ(5e-6, h.quantile(q));
}

TEST(DelayHistogram, SaturatedSamplesLandInTheUnboundedTailBucket) {
  DelayHistogram h;
  h.add(0.5);  // beyond the last finite bound (1e-1)
  h.add(0.7);
  EXPECT_EQ(2u, h.count[DelayHistogram::kBuckets - 1]);
  // The tail bucket has no upper bound; the only honest estimate is max.
  EXPECT_DOUBLE_EQ(0.7, h.quantile(0.5));
  EXPECT_DOUBLE_EQ(0.7, h.quantile(1.0));
  EXPECT_DOUBLE_EQ(0.6, h.mean());
}

TEST(DelayHistogram, MergeOfDisjointRangesAddsPointwise) {
  DelayHistogram lo, hi;
  for (int i = 0; i < 4; ++i) lo.add(0.0);
  for (int i = 0; i < 4; ++i) hi.add(2e-2);  // (1e-2, 1e-1] bucket
  DelayHistogram m = lo;
  m.merge(hi);
  EXPECT_EQ(8u, m.n);
  EXPECT_EQ(4u, m.count[0]);
  EXPECT_EQ(4u, m.count[6]);
  EXPECT_DOUBLE_EQ(8e-2, m.sum);
  EXPECT_DOUBLE_EQ(2e-2, m.max);
  EXPECT_EQ(0.0, m.quantile(0.5));           // median still uncontended
  EXPECT_DOUBLE_EQ(2e-2, m.quantile(0.75));  // upper quartile from hi
  // Merging an empty histogram is the identity.
  DelayHistogram copy = m;
  m.merge(DelayHistogram{});
  EXPECT_EQ(copy.n, m.n);
  EXPECT_EQ(copy.sum, m.sum);
}

// ----------------------------------------------------------- critical path

trace::Record rec(trace::OpKind k, int dev, double s, double e, int peer = -1,
                  const std::string& label = "gemm") {
  trace::Record r;
  r.kind = k;
  r.device = dev;
  r.start = s;
  r.end = e;
  r.peer = peer;
  r.label = label;
  return r;
}

TEST(CriticalPath, HandBuiltDagAttributesEveryClass) {
  // HtoD(0) -> kernel(0) -> PtoP 0->4 (2xNVLink on the DGX-1) -> kernel(4)
  // -> DtoH(4), each enabled exactly by its predecessor's completion.
  const topo::Topology topo = topo::Topology::dgx1();
  ASSERT_EQ(topo::LinkClass::kNVLink2, topo.link_class(0, 4));
  trace::Trace tr;
  tr.add(rec(trace::OpKind::kHtoD, 0, 0.0, 1.0));
  tr.add(rec(trace::OpKind::kKernel, 0, 1.0, 3.0));
  tr.add(rec(trace::OpKind::kPtoP, 4, 3.0, 3.5, /*peer=*/0));
  tr.add(rec(trace::OpKind::kKernel, 4, 3.5, 5.0));
  tr.add(rec(trace::OpKind::kDtoH, 4, 5.0, 5.6));
  const CriticalPath cp = critical_path(tr, topo);
  EXPECT_EQ(5u, cp.ops.size());
  EXPECT_DOUBLE_EQ(3.5, cp.kernel);
  EXPECT_DOUBLE_EQ(1.6, cp.host);
  EXPECT_DOUBLE_EQ(0.5, cp.nvlink2);
  EXPECT_DOUBLE_EQ(0.0, cp.nvlink1);
  EXPECT_DOUBLE_EQ(0.0, cp.pcie);
  EXPECT_DOUBLE_EQ(0.0, cp.idle);
  EXPECT_DOUBLE_EQ(5.6, cp.span);
  EXPECT_DOUBLE_EQ(0.5 / 2.1, cp.nvlink_share());
  EXPECT_DOUBLE_EQ(3.5, cp.kernel_by_label.at("gemm"));
}

TEST(CriticalPath, PrefersCausalEnablerOverCoincidence) {
  // Two records end exactly when the dev-1 kernel starts: a kernel on an
  // unrelated device (longer) and the PtoP that delivered the operand to
  // dev 1.  The causal score must pick the transfer.
  const topo::Topology topo = topo::Topology::dgx1();
  trace::Trace tr;
  tr.add(rec(trace::OpKind::kKernel, 5, 0.0, 2.0, -1, "bystander"));
  tr.add(rec(trace::OpKind::kPtoP, 1, 1.5, 2.0, /*peer=*/0));
  tr.add(rec(trace::OpKind::kKernel, 1, 2.0, 3.0, -1, "consumer"));
  const CriticalPath cp = critical_path(tr, topo);
  ASSERT_EQ(topo::LinkClass::kNVLink1, topo.link_class(0, 1));
  EXPECT_DOUBLE_EQ(0.5, cp.nvlink1);
  EXPECT_EQ(1u, cp.kernel_by_label.count("consumer"));
  EXPECT_EQ(0u, cp.kernel_by_label.count("bystander"));
}

TEST(CriticalPath, TaskOverheadSliverCountsAsIdleNotABreak) {
  // The enabling transfer finishes 3us before the kernel starts (task
  // overhead); the walk must bridge the sliver and charge it as idle.
  const topo::Topology topo = topo::Topology::dgx1();
  trace::Trace tr;
  tr.add(rec(trace::OpKind::kPtoP, 1, 0.0, 1.0, /*peer=*/0));
  tr.add(rec(trace::OpKind::kKernel, 1, 1.000003, 2.0));
  const CriticalPath cp = critical_path(tr, topo);
  EXPECT_EQ(2u, cp.ops.size());
  EXPECT_DOUBLE_EQ(1.0, cp.nvlink1);
  EXPECT_NEAR(3e-6, cp.idle, 1e-12);
}

TEST(CriticalPath, GapsAndWindowStartAreIdle) {
  // A trace cleared mid-run starts at t0 = 10; the dev-0 kernels have a
  // true scheduling gap between them.
  const topo::Topology topo = topo::Topology::dgx1();
  trace::Trace tr;
  tr.add(rec(trace::OpKind::kKernel, 0, 10.0, 11.0));
  tr.add(rec(trace::OpKind::kKernel, 0, 12.0, 13.0));
  const CriticalPath cp = critical_path(tr, topo);
  EXPECT_EQ(2u, cp.ops.size());
  EXPECT_DOUBLE_EQ(2.0, cp.kernel);
  EXPECT_DOUBLE_EQ(1.0, cp.idle);  // only the inter-kernel gap
  EXPECT_DOUBLE_EQ(3.0, cp.span);  // relative to the window start
}

// ------------------------------------------------- observed-run invariants

struct ObservedRun {
  rt::Platform plat;
  Observability o;
  rt::TransferStats stats;

  explicit ObservedRun(Blas3 routine, std::size_t n,
                       std::size_t tile,
                       rt::HeuristicConfig heur = rt::HeuristicConfig::xkblas())
      : plat(topo::Topology::dgx1(), rt::PerfModel{}, {}),
        o(plat.num_gpus()) {
    plat.set_obs(&o);  // before the Runtime: it caches series pointers
    rt::RuntimeOptions ropt;
    ropt.heuristics = heur;
    ropt.task_overhead = 3e-6;
    ropt.prepare_window = 16;
    rt::Runtime runtime(plat, std::make_unique<rt::OwnerComputesScheduler>(),
                        ropt);
    blas::EmitOptions emit;
    emit.tile = tile;
    emit.attach_functional = false;
    auto [P, Q] = blas::default_grid(plat.num_gpus());
    emit.home = [P = P, Q = Q](std::size_t i, std::size_t j) {
      return static_cast<int>(i % static_cast<std::size_t>(P)) * Q +
             static_cast<int>(j % static_cast<std::size_t>(Q));
    };
    baselines::RoutinePlan plan =
        baselines::plan_routine(runtime, routine, n, emit, P, Q);
    plan.emit();
    plan.coherent();
    runtime.run();
    stats = runtime.data_manager().stats();
    o.finalize_registry();
  }
};

TEST(ObservedRun, LinkProbesMatchTraceOccupancy) {
  ObservedRun r(Blas3::kGemm, 4096, 512);
  const trace::Trace& tr = r.plat.trace();
  const double span = tr.span() - tr.t0();
  ASSERT_GT(span, 0.0);

  // Per-directed-link PtoP occupancy from the records, to compare against
  // the probes one-to-one (the op trace and the probes see the same
  // submissions on peer channels).
  std::map<std::pair<int, int>, double> p2p_busy;
  std::map<std::pair<int, int>, std::size_t> p2p_bytes;
  std::map<int, double> h2d_busy;  // per host link, from HtoD records
  for (const trace::Record& rec : tr.records()) {
    if (rec.kind == trace::OpKind::kPtoP) {
      p2p_busy[{rec.peer, rec.device}] += rec.end - rec.start;
      p2p_bytes[{rec.peer, rec.device}] += rec.bytes;
    } else if (rec.kind == trace::OpKind::kHtoD) {
      h2d_busy[r.plat.topology().host_link_of(rec.device)] +=
          rec.end - rec.start;
    }
  }

  std::size_t probes_with_ops = 0;
  for (const auto& l : r.o.links()) {
    if (l->ops() == 0) continue;
    ++probes_with_ops;
    // No probe can be busier than the traced window is long.
    EXPECT_LE(l->busy(), span * (1.0 + 1e-9)) << l->name();
    if (l->dir() == LinkDir::kP2P) {
      const auto key = std::make_pair(l->src(), l->dst());
      ASSERT_TRUE(p2p_busy.count(key)) << l->name();
      EXPECT_NEAR(p2p_busy[key], l->busy(), 1e-9 * (1.0 + p2p_busy[key]))
          << l->name();
      EXPECT_EQ(p2p_bytes[key], l->bytes()) << l->name();
    } else if (l->dir() == LinkDir::kH2D) {
      // Probes also see the shadow submissions of cross-switch PCIe peer
      // copies, which the op trace omits: probe busy >= record busy.
      EXPECT_GE(l->busy() + 1e-12, h2d_busy[l->dst()]) << l->name();
    }
  }
  EXPECT_GT(probes_with_ops, 0u);

  // Every PtoP pair in the trace has a probe counterpart.
  for (const auto& [key, busy] : p2p_busy) {
    const auto it = std::find_if(
        r.o.links().begin(), r.o.links().end(), [key = key](const auto& l) {
          return l->dir() == LinkDir::kP2P && l->src() == key.first &&
                 l->dst() == key.second;
        });
    ASSERT_NE(it, r.o.links().end());
    EXPECT_GT((*it)->ops(), 0u);
  }
}

TEST(ObservedRun, FlowsMatchWaitCountsAndTotalsMatchTrace) {
  ObservedRun r(Blas3::kGemm, 4096, 512);
  // Every optimistic or forced wait chains exactly one forwarded D2D copy.
  EXPECT_EQ(r.stats.optimistic_waits + r.stats.forced_waits,
            r.o.flows().size());
  EXPECT_GT(r.o.flows().size(), 0u);  // the heuristic must actually fire
  for (const Flow& f : r.o.flows()) {
    EXPECT_GE(f.dst_iv.start, f.src_iv.end - 1e-12);  // chained after rx
    EXPECT_NE(f.src_dev, f.dst_dev);
  }
  // The observed event stream reconciles with the runtime's own counters
  // and the trace breakdown.
  Observability::ReconcileView v;
  v.h2d = r.stats.h2d;
  v.d2h = r.stats.d2h;
  v.d2d = r.stats.d2d;
  v.optimistic_waits = r.stats.optimistic_waits;
  v.forced_waits = r.stats.forced_waits;
  const trace::Breakdown b = r.plat.trace().breakdown();
  v.htod = b.htod;
  v.dtoh = b.dtoh;
  v.ptop = b.ptop;
  v.kernel = b.kernel;
  v.htod_bytes = r.plat.trace().bytes(trace::OpKind::kHtoD);
  v.dtoh_bytes = r.plat.trace().bytes(trace::OpKind::kDtoH);
  v.ptop_bytes = r.plat.trace().bytes(trace::OpKind::kPtoP);
  const std::vector<std::string> bad = r.o.reconcile(v);
  EXPECT_TRUE(bad.empty()) << bad.front();
}

TEST(ObservedRun, DecisionsCoverEveryMissAndRegistryNamesExist) {
  ObservedRun r(Blas3::kGemm, 4096, 512);
  EXPECT_GT(r.o.decisions().size(), 0u);
  for (const Decision& d : r.o.decisions()) {
    EXPECT_GE(d.dst, 0);
    if (d.pick == Pick::kDevice || d.pick == Pick::kWaitDevice) {
      EXPECT_GE(d.picked_dev, 0);
    }
  }
  const MetricsRegistry& m = r.o.metrics();
  for (const char* name :
       {"transfers.h2d", "transfers.d2d", "transfers.d2h", "waits.optimistic",
        "waits.forced", "time.kernel", "time.htod", "time.ptop",
        "cache.hits", "cache.misses", "decisions", "flows",
        "gpu0.time.kernel", "gpu0.cache.misses"})
    EXPECT_TRUE(m.has_counter(name)) << name;
  EXPECT_EQ(static_cast<double>(r.o.decisions().size()),
            m.counter_value("decisions"));
  // Ready-queue depth was sampled for at least one device.
  bool any_ready = false;
  for (const auto& [name, s] : m.series_map())
    if (name.rfind("ready.gpu", 0) == 0 && !s.empty()) any_ready = true;
  EXPECT_TRUE(any_ready);
}

// ------------------------------------------------------------------ export

TEST(Export, EnrichedChromeJsonCarriesDecisionFlowAndCounterTracks) {
  ObservedRun r(Blas3::kGemm, 4096, 512);
  const std::string j = to_chrome_json(r.plat.trace(), r.o);
  EXPECT_NE(std::string::npos, j.find("\"ph\": \"s\""));   // flow start
  EXPECT_NE(std::string::npos, j.find("\"bp\": \"e\""));   // enclosing-slice
  EXPECT_NE(std::string::npos, j.find("\"ph\": \"f\""));   // flow finish
  EXPECT_NE(std::string::npos, j.find("optimistic-chain"));
  EXPECT_NE(std::string::npos, j.find("ready-queue"));     // counter track
  EXPECT_NE(std::string::npos, j.find("\"decide\""));      // decision track
  EXPECT_NE(std::string::npos, j.find("pick:"));
  // Object form with a provenance stamp wrapping the traceEvents array.
  EXPECT_EQ('{', j.front());
  EXPECT_NE(std::string::npos, j.find("\"provenance\""));
  EXPECT_NE(std::string::npos, j.find("\"xkb.obs.trace/1\""));
  EXPECT_NE(std::string::npos, j.find("\"traceEvents\": ["));
  EXPECT_EQ('\n', j.back());
  EXPECT_EQ('}', j[j.size() - 2]);
}

TEST(Export, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ("a\\u0001b", trace::json_escape(std::string("a\x01") + "b"));
  EXPECT_EQ("\\\"\\\\", trace::json_escape("\"\\"));
  EXPECT_EQ("\\n\\t\\r", trace::json_escape("\n\t\r"));
  EXPECT_EQ("\\u001f", trace::json_escape("\x1f"));
}

TEST(Export, JsonEscapePassesMultiByteUtf8Through) {
  // Continuation bytes are >= 0x80; a signed-char comparison against 0x20
  // would mangle them into \u00xx escapes.  They must pass through intact.
  EXPECT_EQ("caf\xc3\xa9", trace::json_escape("caf\xc3\xa9"));  // 2-byte é
  EXPECT_EQ("\xe6\x97\xa5\xe6\x9c\xac",                         // 3-byte 日本
            trace::json_escape("\xe6\x97\xa5\xe6\x9c\xac"));
  EXPECT_EQ("\xf0\x9f\x98\x80",                                 // 4-byte 😀
            trace::json_escape("\xf0\x9f\x98\x80"));
  // Mixed with characters that do need escaping.
  EXPECT_EQ("\\\"\xc3\xa9\\n", trace::json_escape("\"\xc3\xa9\n"));
}

TEST(Ledger, JsonRoundTripIsByteLossless) {
  ObservedRun r(Blas3::kGemm, 4096, 512);
  LedgerMeta m;
  m.lib = "XKBlas";
  m.routine = "GEMM";
  m.scenario = "data-on-host";
  m.n = 4096;
  m.tile = 512;
  m.seed = 7;
  const RunLedger l = build_ledger(r.plat.trace(), r.plat.topology(), &r.o,
                                   0xdeadbeefcafef00dULL, m);
  const std::string j1 = ledger_json(l);
  const RunLedger l2 = ledger_from_json(util::json_parse(j1));
  // Serialize -> parse -> serialize must be a fixed point: run_diff's file
  // mode and the flight recorder's embedded snapshot both rely on it.
  EXPECT_EQ(j1, ledger_json(l2));
  EXPECT_EQ(l.event_hash, l2.event_hash);
  EXPECT_EQ(l.decisions.size(), l2.decisions.size());
}

// Byte-for-byte golden pin of the enriched Perfetto/Chrome export on a tiny
// fixed run.  Any intentional change to the export format must regenerate
// the golden with XKB_UPDATE_GOLDEN=1.
TEST(Export, PerfettoGoldenFileIsByteForByteStable) {
  // Pin the provenance stamp so the artifact does not vary per commit.
  setenv("XKB_GIT_DESCRIBE", "golden", 1);
  setenv("XKB_BUILD_TYPE", "golden", 1);
  setenv("XKB_RUN_DATE", "golden", 1);
  ObservedRun r(Blas3::kGemm, 2048, 1024);
  const std::string j = to_chrome_json(r.plat.trace(), r.o);
  unsetenv("XKB_GIT_DESCRIBE");
  unsetenv("XKB_BUILD_TYPE");
  unsetenv("XKB_RUN_DATE");

  const std::string path = std::string(XKB_GOLDEN_DIR) + "/perfetto_tiny.json";
  if (std::getenv("XKB_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << j;
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing " << path
                  << " (run with XKB_UPDATE_GOLDEN=1 to generate)";
  std::stringstream want;
  want << in.rdbuf();
  ASSERT_EQ(want.str().size(), j.size())
      << "Perfetto export size drifted; regenerate the golden if intended";
  EXPECT_EQ(want.str(), j);
}

TEST(Export, HostileLabelsRoundTripThroughCsv) {
  trace::Trace tr;
  trace::Record a = rec(trace::OpKind::kKernel, 0, 0.0, 1.0);
  a.label = "gemm, \"quoted\"\nnewline";
  tr.add(a);
  trace::Record b = rec(trace::OpKind::kPtoP, 2, 1.0, 1.25, /*peer=*/3);
  b.label = ",,\"\",\r\n";
  b.bytes = 123;
  b.queued = 0.5;
  tr.add(b);
  const trace::Trace back = trace::from_csv(trace::to_csv(tr));
  ASSERT_EQ(2u, back.records().size());
  EXPECT_EQ(a.label, back.records()[0].label);
  EXPECT_EQ(b.label, back.records()[1].label);
  EXPECT_EQ(3, back.records()[1].peer);
  EXPECT_EQ(123u, back.records()[1].bytes);
  EXPECT_DOUBLE_EQ(0.5, back.records()[1].queued);
  EXPECT_DOUBLE_EQ(1.25, back.records()[1].end);
}

// ----------------------------------------------------- bench-config plumbing

TEST(BenchObs, ModelRunPopulatesMetricsJsonAndReconcilesUnderCheck) {
  baselines::BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  cfg.n = 4096;
  cfg.tile = 512;
  cfg.check.enabled = true;  // reconciliation becomes a checker violation
  cfg.obs.enabled = true;
  auto model = baselines::make_xkblas(rt::HeuristicConfig::xkblas());
  const baselines::BenchResult r = model->run(cfg);
  ASSERT_FALSE(r.failed);
  EXPECT_TRUE(r.check_ok) << r.check_report;
  ASSERT_TRUE(r.obs);
  ASSERT_FALSE(r.metrics_json.empty());
  EXPECT_NE(std::string::npos, r.metrics_json.find("\"critical_path\""));
  EXPECT_NE(std::string::npos, r.metrics_json.find("\"metrics\""));
  EXPECT_NE(std::string::npos, r.metrics_json.find("\"links\""));
  // Registry totals agree with the result's trace-derived breakdown.
  EXPECT_NEAR(r.breakdown.kernel,
              r.obs->metrics().counter_value("time.kernel"),
              1e-9 * (1.0 + r.breakdown.kernel));
}

TEST(BenchObs, DisabledObsLeavesResultEmpty) {
  baselines::BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  cfg.n = 4096;
  cfg.tile = 512;
  auto model = baselines::make_xkblas(rt::HeuristicConfig::xkblas());
  const baselines::BenchResult r = model->run(cfg);
  ASSERT_FALSE(r.failed);
  EXPECT_FALSE(r.obs);
  EXPECT_TRUE(r.metrics_json.empty());
}

}  // namespace
}  // namespace xkb::obs
