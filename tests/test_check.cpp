// Tests of xkb::check, the opt-in validation layer.
//
// Two halves: clean runs (the checker must stay silent on correct executions
// of every heuristic configuration -- a noisy checker is useless), and fault
// injection (each mutant class from the issue -- corrupted validity bit,
// skipped dependence edge, dropped completion event -- must be detected; a
// checker that cannot fail its mutants proves nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/library_model.hpp"
#include "runtime/runtime.hpp"

namespace xkb::rt {
namespace {

struct CheckedFixture {
  explicit CheckedFixture(check::Faults faults = {},
                          HeuristicConfig heur = HeuristicConfig::xkblas())
      : plat(make_platform()),
        runtime(plat, std::make_unique<OwnerComputesScheduler>(),
                make_options(heur, faults)) {}

  static Platform make_platform() {
    PlatformOptions po;
    po.functional = false;
    return Platform(topo::Topology::dgx1(), PerfModel{}, po);
  }
  static RuntimeOptions make_options(HeuristicConfig heur,
                                     check::Faults faults) {
    RuntimeOptions ro;
    ro.heuristics = heur;
    ro.check.enabled = true;
    ro.check.faults = faults;
    return ro;
  }

  mem::DataHandle* tile(void* origin, std::size_t n = 256) {
    return runtime.registry().intern(origin, n, n, n, sizeof(double));
  }

  TaskDesc touch(mem::DataHandle* h, Access mode, int dev) {
    TaskDesc d;
    d.label = "t";
    d.accesses.push_back({h, mode});
    d.flops = 1e9;
    d.min_dim = 1024;
    d.forced_device = dev;
    return d;
  }

  bool has_kind(check::ViolationKind k) const {
    const auto& v = runtime.checker()->violations();
    return std::any_of(v.begin(), v.end(),
                       [k](const check::Violation& x) { return x.kind == k; });
  }

  Platform plat;
  Runtime runtime;
};

double bufA[4], bufB[4];

TEST(Check, CleanRunIsViolationFree) {
  CheckedFixture f;
  mem::DataHandle* a = f.tile(bufA);
  mem::DataHandle* b = f.tile(bufB);
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.submit(f.touch(a, Access::kR, 1));   // D2D or fresh H2D
  f.runtime.submit(f.touch(a, Access::kR, 2));
  f.runtime.submit(f.touch(a, Access::kRW, 3));  // WAR + invalidations
  f.runtime.submit(f.touch(b, Access::kRW, 0));
  f.runtime.coherent_async(a);                   // D2H flush + host task
  f.runtime.run();
  const check::Checker* c = f.runtime.checker();
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->ok()) << c->report();
  EXPECT_EQ(c->total_violations(), 0u);
  EXPECT_TRUE(c->report().empty());
  // The hash folded real events, so it moved off the FNV offset basis.
  EXPECT_NE(c->event_hash(), 14695981039346656037ull);
}

TEST(Check, CleanUnderEveryHeuristicPreset) {
  for (const HeuristicConfig& heur :
       {HeuristicConfig::xkblas(), HeuristicConfig::no_heuristic(),
        HeuristicConfig::no_heuristic_no_topo()}) {
    CheckedFixture f({}, heur);
    mem::DataHandle* a = f.tile(bufA);
    for (int i = 0; i < 8; ++i)
      f.runtime.submit(f.touch(a, i % 3 == 0 ? Access::kRW : Access::kR,
                               i % f.runtime.num_gpus()));
    f.runtime.run();
    EXPECT_TRUE(f.runtime.checker()->ok()) << f.runtime.checker()->report();
  }
}

TEST(Check, CleanCheckedGemmThroughBaselines) {
  baselines::BenchConfig cfg;
  cfg.routine = Blas3::kGemm;
  cfg.n = 4096;
  cfg.tile = 1024;
  cfg.check.enabled = true;
  auto model = baselines::make_xkblas(HeuristicConfig::xkblas());
  baselines::BenchResult res = model->run(cfg);
  ASSERT_TRUE(res.supported);
  ASSERT_FALSE(res.failed);
  EXPECT_TRUE(res.check_ok) << res.check_report;
  EXPECT_EQ(res.check_violations, 0u);
  EXPECT_NE(res.event_hash, 0u);
}

// Mutant 1: lose the dependence edge between a writer and a subsequent
// reader of the same tile.  Their kernels become unordered in the
// happens-before relation and the race detector must say so.
TEST(Check, SkippedDependenceEdgeIsReportedAsRace) {
  check::Faults faults;
  faults.skip_edge_pred = 1;  // task ids are assigned from 1 in submit order
  faults.skip_edge_succ = 2;
  CheckedFixture f(faults);
  mem::DataHandle* a = f.tile(bufA);
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.submit(f.touch(a, Access::kR, 0));
  f.runtime.run();
  EXPECT_FALSE(f.runtime.checker()->ok());
  EXPECT_TRUE(f.has_kind(check::ViolationKind::kRace))
      << f.runtime.checker()->report();
}

TEST(Check, SkippedWriteWriteEdgeIsReportedAsRace) {
  check::Faults faults;
  faults.skip_edge_pred = 1;
  faults.skip_edge_succ = 2;
  CheckedFixture f(faults);
  mem::DataHandle* a = f.tile(bufA);
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.run();
  EXPECT_FALSE(f.runtime.checker()->ok());
  EXPECT_TRUE(f.has_kind(check::ViolationKind::kRace))
      << f.runtime.checker()->report();
}

// Mutant 2: swallow a completion event.  The successor never becomes ready
// and the progress auditor must dump it as stuck.
TEST(Check, DroppedCompletionIsReportedAsStuck) {
  check::Faults faults;
  faults.drop_completion_task = 1;
  CheckedFixture f(faults);
  mem::DataHandle* a = f.tile(bufA);
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.submit(f.touch(a, Access::kR, 1));  // depends on task 1
  f.runtime.run();
  // The runtime never observed the swallowed completion (nor, therefore,
  // its successor's): neither task counts as completed.
  EXPECT_EQ(f.runtime.tasks_completed(), 0u);
  EXPECT_FALSE(f.runtime.checker()->ok());
  EXPECT_TRUE(f.has_kind(check::ViolationKind::kProgress))
      << f.runtime.checker()->report();
}

// Mutant 3: corrupt a replica's validity bit directly (a replica claims to
// be valid on a device that never received the data).  The next read on
// that device observes a version that is not the latest write.
TEST(Check, CorruptedValidityBitIsReportedAsCoherence) {
  CheckedFixture f;
  mem::DataHandle* a = f.tile(bufA);
  f.runtime.submit(f.touch(a, Access::kRW, 0));
  f.runtime.run();
  ASSERT_TRUE(f.runtime.checker()->ok()) << f.runtime.checker()->report();

  a->dev[1].state = mem::ReplicaState::kValid;  // lie: GPU 1 has no bytes
  f.runtime.submit(f.touch(a, Access::kR, 1));
  f.runtime.run();
  EXPECT_FALSE(f.runtime.checker()->ok());
  EXPECT_TRUE(f.has_kind(check::ViolationKind::kCoherence))
      << f.runtime.checker()->report();
}

}  // namespace
}  // namespace xkb::rt
