// Tests of the interconnect topology models, checked against the paper's
// Fig. 1 (link classes) and Fig. 2 (bandwidth matrix) for the DGX-1.
#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace xkb::topo {
namespace {

TEST(Dgx1, EightGpus) {
  const Topology t = Topology::dgx1();
  EXPECT_EQ(t.num_gpus(), 8);
  EXPECT_EQ(t.name(), "DGX-1");
}

TEST(Dgx1, DoubleNvlinkPairsOfFig1) {
  const Topology t = Topology::dgx1();
  const int nv2[][2] = {{0, 3}, {0, 4}, {1, 2}, {1, 5},
                        {2, 3}, {4, 7}, {5, 6}, {6, 7}};
  for (auto& p : nv2) {
    EXPECT_EQ(t.link_class(p[0], p[1]), LinkClass::kNVLink2)
        << p[0] << "-" << p[1];
    EXPECT_EQ(t.link_class(p[1], p[0]), LinkClass::kNVLink2);
    EXPECT_NEAR(t.gpu_bandwidth_gbps(p[0], p[1]), 96.4, 1e-9);
  }
}

TEST(Dgx1, SingleNvlinkPairsOfFig1) {
  const Topology t = Topology::dgx1();
  const int nv1[][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 6},
                        {3, 7}, {4, 5}, {4, 6}, {5, 7}};
  for (auto& p : nv1) {
    EXPECT_EQ(t.link_class(p[0], p[1]), LinkClass::kNVLink1);
    EXPECT_NEAR(t.gpu_bandwidth_gbps(p[0], p[1]), 48.4, 1e-9);
  }
}

TEST(Dgx1, EveryGpuHasSixNvlinkLanes) {
  // Hybrid cube-mesh invariant: each V100 exposes 6 NVLink lanes
  // (2 lanes per NVLink2 pair + 1 per NVLink1 pair).
  const Topology t = Topology::dgx1();
  for (int g = 0; g < 8; ++g) {
    int lanes = 0;
    for (int o = 0; o < 8; ++o) {
      if (o == g) continue;
      if (t.link_class(g, o) == LinkClass::kNVLink2) lanes += 2;
      if (t.link_class(g, o) == LinkClass::kNVLink1) lanes += 1;
    }
    EXPECT_EQ(lanes, 6) << "GPU " << g;
  }
}

TEST(Dgx1, RemainingPairsUsePcie) {
  const Topology t = Topology::dgx1();
  // Cross-socket non-linked pairs, e.g. 0-5, 0-6, 0-7 (Fig. 2 ~17 GB/s).
  EXPECT_EQ(t.link_class(0, 5), LinkClass::kPCIeP2P);
  EXPECT_EQ(t.link_class(0, 6), LinkClass::kPCIeP2P);
  EXPECT_EQ(t.link_class(0, 7), LinkClass::kPCIeP2P);
  EXPECT_NEAR(t.gpu_bandwidth_gbps(0, 7), 17.2, 1e-9);
}

TEST(Dgx1, BandwidthMatrixSymmetric) {
  const Topology t = Topology::dgx1();
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(a, b), t.gpu_bandwidth_gbps(b, a));
}

TEST(Dgx1, PerfRankOrdersLinkClasses) {
  const Topology t = Topology::dgx1();
  EXPECT_GT(t.p2p_perf_rank(0, 3), t.p2p_perf_rank(0, 1));  // NV2 > NV1
  EXPECT_GT(t.p2p_perf_rank(0, 1), t.p2p_perf_rank(0, 7));  // NV1 > PCIe
  EXPECT_GT(t.p2p_perf_rank(0, 7), 0);                      // PCIe > none
}

TEST(Dgx1, PeersByRankSorted) {
  const Topology t = Topology::dgx1();
  const auto peers = t.peers_by_rank(0);
  ASSERT_EQ(peers.size(), 7u);
  for (std::size_t i = 1; i < peers.size(); ++i)
    EXPECT_GE(t.p2p_perf_rank(peers[i - 1], 0), t.p2p_perf_rank(peers[i], 0));
  // The two double-NVLink peers of GPU 0 come first.
  EXPECT_TRUE((peers[0] == 3 && peers[1] == 4) ||
              (peers[0] == 4 && peers[1] == 3));
}

TEST(Dgx1, FourSharedHostLinks) {
  const Topology t = Topology::dgx1();
  EXPECT_EQ(t.num_host_links(), 4);
  // Pairs (0,1), (2,3), (4,5), (6,7) share a PCIe switch.
  EXPECT_EQ(t.host_link_of(0), t.host_link_of(1));
  EXPECT_EQ(t.host_link_of(2), t.host_link_of(3));
  EXPECT_NE(t.host_link_of(1), t.host_link_of(2));
  EXPECT_NEAR(t.host_bandwidth_gbps(0), 12.3, 1e-9);
}

TEST(PcieOnly, NoNvlinkAnywhere) {
  const Topology t = Topology::pcie_only(4);
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b)
      if (a != b) {
        EXPECT_EQ(t.link_class(a, b), LinkClass::kPCIeP2P);
      }
}

TEST(NvSwitch, UniformAllToAll) {
  const Topology t = Topology::nvswitch(8, 240.0);
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b)
      if (a != b) {
        EXPECT_EQ(t.link_class(a, b), LinkClass::kNVLink2);
        EXPECT_DOUBLE_EQ(t.gpu_bandwidth_gbps(a, b), 240.0);
      }
}

TEST(SummitLike, FastHostLinks) {
  const Topology t = Topology::summit_like();
  EXPECT_EQ(t.num_gpus(), 6);
  for (int g = 0; g < 6; ++g)
    EXPECT_NEAR(t.host_bandwidth_gbps(g), 50.0, 1e-9);
  // Dedicated host links: no sharing.
  EXPECT_NE(t.host_link_of(0), t.host_link_of(1));
  // In-socket NVLink, cross-socket staged.
  EXPECT_EQ(t.link_class(0, 1), LinkClass::kNVLink1);
  EXPECT_EQ(t.link_class(0, 3), LinkClass::kPCIeP2P);
}

}  // namespace
}  // namespace xkb::topo
