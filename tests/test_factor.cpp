// Tests of the tiled one-sided factorizations (POTRF, GETRF-nopiv): the
// composition-of-BLAS-graphs use case the paper motivates, verified
// numerically on the simulated DGX-1 across schedulers and heuristics.
#include <gtest/gtest.h>

#include "core/xkblas.hpp"
#include "util/rng.hpp"

namespace {

using namespace xkblas;

constexpr std::size_t kN = 192;

xkb::Matrix<double> spd_matrix(std::uint64_t seed) {
  xkb::Rng rng(seed);
  xkb::Matrix<double> M(kN, kN), A(kN, kN);
  xkb::fill_random(M, rng);
  xkb::host::gemm<double>(Op::NoTrans, Op::Trans, 1.0, M.view(), M.view(),
                          0.0, A.view());
  for (std::size_t i = 0; i < kN; ++i) A(i, i) += kN;
  return A;
}

Options functional_options(std::size_t tile) {
  Options o;
  o.platform.functional = true;
  o.tile = tile;
  return o;
}

TEST(HostPotrf, LowerReconstructs) {
  xkb::Matrix<double> A = spd_matrix(1);
  xkb::Matrix<double> F = A;
  xkb::host::potrf<double>(Uplo::Lower, F.view());
  xkb::Matrix<double> L(kN, kN, 0.0);
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = j; i < kN; ++i) L(i, j) = F(i, j);
  xkb::Matrix<double> R(kN, kN);
  xkb::host::gemm<double>(Op::NoTrans, Op::Trans, 1.0, L.view(), L.view(),
                          0.0, R.view());
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = j; i < kN; ++i)
      ASSERT_NEAR(R(i, j), A(i, j), 1e-8 * kN);
}

TEST(HostPotrf, UpperReconstructs) {
  xkb::Matrix<double> A = spd_matrix(2);
  xkb::Matrix<double> F = A;
  xkb::host::potrf<double>(Uplo::Upper, F.view());
  xkb::Matrix<double> U(kN, kN, 0.0);
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = 0; i <= j; ++i) U(i, j) = F(i, j);
  xkb::Matrix<double> R(kN, kN);
  xkb::host::gemm<double>(Op::Trans, Op::NoTrans, 1.0, U.view(), U.view(),
                          0.0, R.view());
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = 0; i <= j; ++i)
      ASSERT_NEAR(R(i, j), A(i, j), 1e-8 * kN);
}

TEST(HostPotrf, RejectsIndefinite) {
  xkb::Matrix<double> A(4, 4, 0.0);
  A(0, 0) = -1.0;
  EXPECT_THROW(xkb::host::potrf<double>(Uplo::Lower, A.view()),
               std::domain_error);
}

TEST(HostGetrf, ReconstructsLU) {
  xkb::Rng rng(3);
  xkb::Matrix<double> A(64, 64);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::Matrix<double> F = A;
  xkb::host::getrf_nopiv<double>(F.view());
  xkb::Matrix<double> L(64, 64, 0.0), U(64, 64, 0.0), R(64, 64);
  for (std::size_t j = 0; j < 64; ++j) {
    for (std::size_t i = j + 1; i < 64; ++i) L(i, j) = F(i, j);
    L(j, j) = 1.0;
    for (std::size_t i = 0; i <= j; ++i) U(i, j) = F(i, j);
  }
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, L.view(), U.view(),
                          0.0, R.view());
  EXPECT_LT(xkb::max_abs_diff(R, A), 1e-8 * 64);
}

TEST(HostGetrf, RejectsZeroPivot) {
  xkb::Matrix<double> A(3, 3, 0.0);
  EXPECT_THROW(xkb::host::getrf_nopiv<double>(A.view()), std::domain_error);
}

class TiledPotrf : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TiledPotrf, MatchesHostFactorization) {
  const std::size_t tile = GetParam();
  xkb::Matrix<double> A = spd_matrix(7);
  xkb::Matrix<double> ref = A;
  xkb::host::potrf<double>(Uplo::Lower, ref.view());

  Context ctx(functional_options(tile));
  ctx.potrf_async<double>(Uplo::Lower, A.view());
  ctx.memory_coherent_async<double>(A.view());
  ctx.sync();
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = j; i < kN; ++i)
      ASSERT_NEAR(A(i, j), ref(i, j), 1e-8) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Tiles, TiledPotrf,
                         ::testing::Values(32u, 48u, 64u, 192u));

TEST(TiledPotrfUpper, MatchesHostFactorization) {
  xkb::Matrix<double> A = spd_matrix(8);
  xkb::Matrix<double> ref = A;
  xkb::host::potrf<double>(Uplo::Upper, ref.view());
  Context ctx(functional_options(48));
  ctx.potrf_async<double>(Uplo::Upper, A.view());
  ctx.memory_coherent_async<double>(A.view());
  ctx.sync();
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t i = 0; i <= j; ++i)
      ASSERT_NEAR(A(i, j), ref(i, j), 1e-8);
}

TEST(TiledPotrfSchedulers, AllSchedulersAgree) {
  xkb::Matrix<double> base = spd_matrix(9);
  xkb::Matrix<double> ref = base;
  xkb::host::potrf<double>(Uplo::Lower, ref.view());
  for (SchedulerKind kind : {SchedulerKind::kOwnerComputes,
                             SchedulerKind::kDmdas,
                             SchedulerKind::kRoundRobin}) {
    xkb::Matrix<double> A = base;
    Options o = functional_options(48);
    o.scheduler = kind;
    Context ctx(o);
    ctx.potrf_async<double>(Uplo::Lower, A.view());
    ctx.memory_coherent_async<double>(A.view());
    ctx.sync();
    for (std::size_t j = 0; j < kN; ++j)
      for (std::size_t i = j; i < kN; ++i)
        ASSERT_NEAR(A(i, j), ref(i, j), 1e-8);
  }
}

TEST(TiledGetrf, MatchesHostFactorization) {
  xkb::Rng rng(10);
  xkb::Matrix<double> A(kN, kN);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::Matrix<double> ref = A;
  xkb::host::getrf_nopiv<double>(ref.view());

  Context ctx(functional_options(48));
  ctx.getrf_nopiv_async<double>(A.view());
  ctx.memory_coherent_async<double>(A.view());
  ctx.sync();
  EXPECT_LT(xkb::max_abs_diff(A, ref), 1e-7);
}

TEST(TiledGetrf, ThenSolveComposes) {
  // Factor, then solve A x = b with two TRSMs -- a full composed pipeline.
  xkb::Rng rng(11);
  xkb::Matrix<double> A(kN, kN), B(kN, 8);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::fill_random(B, rng);
  xkb::Matrix<double> origA = A, origB = B;

  Context ctx(functional_options(48));
  ctx.getrf_nopiv_async<double>(A.view());
  // L y = b (unit lower), then U x = y.
  ctx.trsm_async<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::Unit,
                         1.0, A.view(), B.view());
  ctx.trsm_async<double>(Side::Left, Uplo::Upper, Op::NoTrans, Diag::NonUnit,
                         1.0, A.view(), B.view());
  ctx.memory_coherent_async<double>(B.view());
  ctx.sync();

  // Residual check: A x ~ b.
  xkb::Matrix<double> Ax(kN, 8);
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, origA.view(),
                          B.view(), 0.0, Ax.view());
  EXPECT_LT(xkb::max_abs_diff(Ax, origB), 1e-7);
}

}  // namespace

// Appended: composed solver layer (POTRS/POSV, GETRS/GESV).
namespace {
using namespace xkblas;

TEST(Solvers, PosvSolvesSpdSystem) {
  xkb::Matrix<double> A = spd_matrix(20);
  xkb::Matrix<double> origA = A;
  xkb::Rng rng(21);
  xkb::Matrix<double> B(kN, 16);
  xkb::fill_random(B, rng);
  xkb::Matrix<double> origB = B;

  Context ctx(functional_options(48));
  ctx.posv_async<double>(Uplo::Lower, A.view(), B.view());
  ctx.memory_coherent_async<double>(B.view());
  ctx.sync();

  xkb::Matrix<double> Ax(kN, 16);
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, origA.view(),
                          B.view(), 0.0, Ax.view());
  EXPECT_LT(xkb::max_abs_diff(Ax, origB), 1e-7);
}

TEST(Solvers, PosvUpperVariant) {
  xkb::Matrix<double> A = spd_matrix(22);
  xkb::Matrix<double> origA = A;
  xkb::Rng rng(23);
  xkb::Matrix<double> B(kN, 4);
  xkb::fill_random(B, rng);
  xkb::Matrix<double> origB = B;
  Context ctx(functional_options(64));
  ctx.posv_async<double>(Uplo::Upper, A.view(), B.view());
  ctx.memory_coherent_async<double>(B.view());
  ctx.sync();
  xkb::Matrix<double> Ax(kN, 4);
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, origA.view(),
                          B.view(), 0.0, Ax.view());
  EXPECT_LT(xkb::max_abs_diff(Ax, origB), 1e-7);
}

TEST(Solvers, GesvSolvesDiagDominantSystem) {
  xkb::Rng rng(24);
  xkb::Matrix<double> A(kN, kN), B(kN, 8);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::fill_random(B, rng);
  xkb::Matrix<double> origA = A, origB = B;
  Context ctx(functional_options(48));
  ctx.gesv_nopiv_async<double>(A.view(), B.view());
  ctx.memory_coherent_async<double>(B.view());
  ctx.sync();
  xkb::Matrix<double> Ax(kN, 8);
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0, origA.view(),
                          B.view(), 0.0, Ax.view());
  EXPECT_LT(xkb::max_abs_diff(Ax, origB), 1e-7);
}

}  // namespace
