// xkb::wl: generator structure, spec parsing, .wlg round-trips and
// line-precise errors, the runtime bridge under xkb::check, and the
// bit-identical equivalence of the bridged Fig. 8 composition with the
// baselines/composition.cpp emission.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "baselines/composition.hpp"
#include "baselines/workload_entry.hpp"
#include "workload/bridge.hpp"
#include "workload/workload.hpp"

namespace xkb::wl {
namespace {

using baselines::BenchResult;
using baselines::ModelSpec;
using baselines::run_workload;
using baselines::spec_for_library;
using baselines::WorkloadBenchConfig;

WorkloadSpec spec_of(const std::string& text) {
  return WorkloadSpec::parse(text);
}

// --- generators ----------------------------------------------------------

TEST(Generators, TrivialHasNoCrossTaskEdges) {
  const WorkloadGraph g = build(spec_of("trivial:width=4,depth=3"));
  EXPECT_EQ(g.tasks.size(), 12u);
  EXPECT_EQ(g.tiles.size(), 4u + 12u);  // inputs + one output per task
  // Only layer 0 reads anything (its external input).
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.input_tiles().size(), 4u);
  EXPECT_EQ(g.coherent.size(), 4u);  // last layer's outputs
}

TEST(Generators, Stencil1dReadsTheThreePointHalo) {
  const WorkloadGraph g = build(spec_of("stencil_1d:width=5,depth=3"));
  // Task (t=1, p=2) reads outputs 1, 2, 3 of layer 0 and writes its own.
  const TaskSpec& t = g.tasks[5 * 1 + 2];
  ASSERT_EQ(t.accesses.size(), 4u);
  EXPECT_EQ(t.accesses[0].mode, Mode::kR);
  EXPECT_EQ(t.accesses[3].mode, Mode::kW);
  // Boundary points lose one neighbour.
  EXPECT_EQ(g.tasks[5 * 1 + 0].accesses.size(), 3u);
  EXPECT_EQ(g.tasks[5 * 1 + 4].accesses.size(), 3u);
}

TEST(Generators, NearestRadixWidensTheHalo) {
  const WorkloadGraph g = build(spec_of("nearest:width=9,depth=2,radix=3"));
  const TaskSpec& mid = g.tasks[9 * 1 + 4];  // interior point, layer 1
  EXPECT_EQ(mid.accesses.size(), 7u + 1u);   // 2*radix+1 reads + write
}

TEST(Generators, FftReadsSelfAndButterflyPartner) {
  const WorkloadGraph g = build(spec_of("fft:width=8,depth=4"));
  // Layer t reads {p, p ^ 2^((t-1) % 3)}.
  for (std::size_t t = 1; t < 4; ++t)
    for (std::size_t p = 0; p < 8; ++p) {
      const TaskSpec& task = g.tasks[8 * t + p];
      ASSERT_EQ(task.accesses.size(), 3u) << "t=" << t << " p=" << p;
    }
  // t=1: stride 1, p=0 partners with 1: reads prev outputs of points 0, 1.
  const TaskSpec& b = g.tasks[8 * 1 + 0];
  EXPECT_EQ(b.accesses[0].tile, g.tasks[0].accesses.back().tile);
  EXPECT_EQ(b.accesses[1].tile, g.tasks[1].accesses.back().tile);
}

TEST(Generators, TreeHalvesLayerWidth) {
  const WorkloadGraph g = build(spec_of("tree:width=8,depth=4"));
  // Layer widths: 8, 4, 2, 1.
  EXPECT_EQ(g.tasks.size(), 8u + 4u + 2u + 1u);
  EXPECT_EQ(g.coherent.size(), 1u);  // the reduction root
  // A layer-1 task combines two layer-0 outputs.
  EXPECT_EQ(g.tasks[8].accesses.size(), 3u);
}

TEST(Generators, RandomIsSeededAndNeverDisconnected) {
  const WorkloadGraph a = build(spec_of("random:width=10,depth=6,seed=3"));
  const WorkloadGraph b = build(spec_of("random:width=10,depth=6,seed=3"));
  const WorkloadGraph c = build(spec_of("random:width=10,depth=6,seed=4"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const TaskSpec& t : a.tasks) {
    std::size_t reads = 0;
    for (const TaskAccessSpec& acc : t.accesses)
      if (acc.mode == Mode::kR) ++reads;
    EXPECT_GE(reads, 1u) << "task '" << t.label << "' has no incoming edge";
  }
}

TEST(Generators, DnnBuildsFwdBwdAndReductionTree) {
  const std::size_t W = 4, L = 3;
  const WorkloadGraph g = build(spec_of("dnn:width=4,depth=3"));
  // fwd W*L + loss W + bwd W*L + reduction (W-1)*L + update L.
  EXPECT_EQ(g.tasks.size(), W * L + W + W * L + (W - 1) * L + L);
  EXPECT_EQ(g.coherent.size(), L);  // the trained weights come home
  std::size_t wred = 0, wupd = 0;
  for (const TaskSpec& t : g.tasks) {
    if (t.label == "wred") ++wred;
    if (t.label == "wupd") ++wupd;
  }
  EXPECT_EQ(wred, (W - 1) * L);
  EXPECT_EQ(wupd, L);
}

TEST(Generators, DnnIsSeededViaItsOwnSubstream) {
  const WorkloadGraph a = build(spec_of("dnn:width=4,depth=3,seed=5"));
  const WorkloadGraph b = build(spec_of("dnn:width=4,depth=3,seed=5"));
  const WorkloadGraph c = build(spec_of("dnn:width=4,depth=3,seed=6"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // per-layer cost jitter comes from the "dnn" stream
}

TEST(Generators, DegenerateSpecsThrow) {
  EXPECT_THROW(build(spec_of("stencil_1d:width=0")), std::invalid_argument);
  EXPECT_THROW(build(spec_of("composition:n=100,tile=200")),
               std::invalid_argument);
}

// --- spec parsing --------------------------------------------------------

TEST(WorkloadSpec, ParsesAndRoundTrips) {
  const WorkloadSpec s =
      spec_of("random:width=16,depth=9,flops=2.5e8,bytes=1048576,prob=0.3,"
              "seed=99");
  EXPECT_EQ(s.kind, Generator::kRandom);
  EXPECT_EQ(s.width, 16u);
  EXPECT_EQ(s.depth, 9u);
  EXPECT_DOUBLE_EQ(s.flops, 2.5e8);
  EXPECT_EQ(s.bytes, 1048576u);
  EXPECT_DOUBLE_EQ(s.prob, 0.3);
  EXPECT_EQ(s.seed, 99u);
  const WorkloadSpec again = spec_of(s.to_string());
  EXPECT_EQ(again.to_string(), s.to_string());
}

TEST(WorkloadSpec, UnknownGeneratorListsAccepted) {
  try {
    spec_of("frobnicate:width=4");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frobnicate"), std::string::npos);
    for (const std::string& name : generator_names())
      EXPECT_NE(msg.find(name), std::string::npos) << name;
  }
}

TEST(WorkloadSpec, BadKeyAndValueNameTheField) {
  EXPECT_THROW(spec_of("fft:wdith=4"), std::invalid_argument);
  try {
    spec_of("fft:depth=banana");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("depth"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
}

// --- .wlg round-trip and parse errors ------------------------------------

TEST(Wlg, GraphSurvivesWriteParseWriteExactly) {
  for (const char* spec : {"stencil_1d:width=4,depth=3", "dnn:width=3,depth=2",
                           "composition:n=4096,tile=2048"}) {
    const WorkloadGraph g = build(spec_of(spec));
    const std::string text = write_wlg(g);
    const WorkloadGraph parsed = parse_wlg(text);
    EXPECT_EQ(parsed, g) << spec;
    EXPECT_EQ(write_wlg(parsed), text) << spec;  // canonical fixed point
  }
}

void expect_error_names(const std::string& text, const char* line_tag,
                        const char* field) {
  try {
    parse_wlg(text, "bad.wlg");
    FAIL() << "expected std::invalid_argument for: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;  // one-line error
    EXPECT_NE(msg.find(line_tag), std::string::npos) << msg;
    EXPECT_NE(msg.find(field), std::string::npos) << msg;
  }
}

TEST(Wlg, MalformedLinesNameLineAndField) {
  const std::string head = "workload t\ntile 0 4 4 8\n";
  expect_error_names(head + "task k 1 4 1 0 0 q:0\n", "bad.wlg:3", "access");
  expect_error_names(head + "task k 1 4 1 0 0 r:7\n", "bad.wlg:3", "access");
  expect_error_names(head + "task k x 4 1 0 0 r:0\n", "bad.wlg:3", "flops");
  expect_error_names(head + "tile 5 4 4 8\n", "bad.wlg:3", "id");
  expect_error_names(head + "coherent 9\n", "bad.wlg:3", "tile");
  expect_error_names(head + "frob 1 2\n", "bad.wlg:3", "directive");
  expect_error_names("tile 0 4 4 8\n", "workload", "name");
}

TEST(Wlg, CommentsAndBlanksAreIgnored) {
  const WorkloadGraph g = parse_wlg(
      "# header comment\n"
      "workload demo\n"
      "\n"
      "tile 0 8 8 8   # an input tile\n"
      "tile 1 8 8 8\n"
      "task copy 1e6 8 1 0 0 r:0 w:1\n"
      "coherent 1\n");
  EXPECT_EQ(g.name, "demo");
  EXPECT_EQ(g.tiles.size(), 2u);
  ASSERT_EQ(g.tasks.size(), 1u);
  EXPECT_EQ(g.tasks[0].accesses.size(), 2u);
  EXPECT_EQ(g.coherent.size(), 1u);
}

// --- the bridge under the full validation stack --------------------------

TEST(Bridge, WorkloadsRunCleanUnderCheckInBothPlacements) {
  const ModelSpec xkblas =
      spec_for_library("xkblas", rt::HeuristicConfig::xkblas());
  for (const char* spec : {"stencil_1d:width=6,depth=4", "tree:width=8,depth=4",
                           "dnn:width=4,depth=3"}) {
    const WorkloadGraph g = build(spec_of(spec));
    for (const bool dod : {false, true}) {
      WorkloadBenchConfig cfg;
      cfg.data_on_device = dod;
      cfg.check.enabled = true;
      const BenchResult r = run_workload(xkblas, g, cfg);
      EXPECT_FALSE(r.failed) << spec << ": " << r.error;
      EXPECT_TRUE(r.check_ok) << spec << ": " << r.check_report;
      EXPECT_GE(r.tasks, g.tasks.size()) << spec;
      EXPECT_GT(r.seconds, 0.0) << spec;
    }
  }
}

TEST(Bridge, ObsMetricsReconcileForWorkloads) {
  const WorkloadGraph g = build(spec_of("stencil_1d:width=8,depth=6"));
  WorkloadBenchConfig cfg;
  cfg.check.enabled = true;
  cfg.obs.enabled = true;
  const BenchResult r = run_workload(
      spec_for_library("xkblas", rt::HeuristicConfig::xkblas()), g, cfg);
  EXPECT_FALSE(r.failed) << r.error;
  EXPECT_TRUE(r.check_ok) << r.check_report;  // includes the obs reconcile
  EXPECT_NE(r.metrics_json.find("\"links\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"critical_path\""), std::string::npos);
}

TEST(Bridge, SpecForLibraryRejectsUnknownNamesWithTheList) {
  try {
    spec_for_library("frobnicas", rt::HeuristicConfig::xkblas());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const std::string& name : baselines::library_names())
      EXPECT_NE(msg.find(name), std::string::npos) << name;
  }
}

// --- Fig. 8 equivalence --------------------------------------------------

// The composition capture replayed through the generic bridge must
// reproduce baselines/composition.cpp bit for bit: same virtual makespan,
// same event-stream hash.  This is the proof that the bridge adds no second
// semantics -- a workload task graph and a BLAS emission are the same thing
// to the runtime.
TEST(Composition, BridgedReplayIsBitIdenticalToTheBlasEmission) {
  const ModelSpec xkblas =
      spec_for_library("xkblas", rt::HeuristicConfig::xkblas());
  const baselines::CompositionResult ref = baselines::run_trsm_gemm(
      xkblas, 8192, 2048, /*sync_between_calls=*/false, /*want_gantt=*/false,
      /*gantt_width=*/100, /*with_check=*/true);
  EXPECT_TRUE(ref.check_ok);

  const WorkloadGraph g = composition_graph(8192, 2048);
  EXPECT_TRUE(g.grid_placement);
  WorkloadBenchConfig cfg;
  cfg.check.enabled = true;
  const BenchResult r = run_workload(xkblas, g, cfg);
  EXPECT_FALSE(r.failed) << r.error;
  EXPECT_TRUE(r.check_ok) << r.check_report;

  EXPECT_EQ(r.event_hash, ref.event_hash);
  EXPECT_DOUBLE_EQ(r.seconds, ref.seconds);
  EXPECT_DOUBLE_EQ(r.tflops, ref.tflops);
}

// Same equivalence for the heuristic ablation: the bridge must not bake in
// any policy of its own.
TEST(Composition, BridgedReplayMatchesUnderTheAblationToo) {
  const ModelSpec blind =
      spec_for_library("xkblas", rt::HeuristicConfig::no_heuristic_no_topo());
  const baselines::CompositionResult ref = baselines::run_trsm_gemm(
      blind, 8192, 2048, false, false, 100, /*with_check=*/true);
  const WorkloadGraph g = composition_graph(8192, 2048);
  WorkloadBenchConfig cfg;
  cfg.check.enabled = true;
  const BenchResult r = run_workload(blind, g, cfg);
  EXPECT_FALSE(r.failed) << r.error;
  EXPECT_EQ(r.event_hash, ref.event_hash);
  EXPECT_DOUBLE_EQ(r.seconds, ref.seconds);
}

}  // namespace
}  // namespace xkb::wl
