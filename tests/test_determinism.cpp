// Determinism regression: the discrete-event engine orders events by
// (time, insertion sequence), so two runs of the same configuration must
// produce bit-identical event streams.  The checker's FNV hash over the
// stream makes "identical" checkable in one comparison; TransferStats are
// compared field-by-field as a second, coarser witness.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "baselines/library_model.hpp"
#include "baselines/workload_entry.hpp"
#include "util/selfprof.hpp"

namespace xkb::baselines {
namespace {

struct Preset {
  const char* name;
  rt::HeuristicConfig heur;
};

std::vector<Preset> presets() {
  return {
      {"xkblas", rt::HeuristicConfig::xkblas()},
      {"no_heuristic", rt::HeuristicConfig::no_heuristic()},
      {"no_heuristic_no_topo", rt::HeuristicConfig::no_heuristic_no_topo()},
  };
}

BenchResult run_once(const rt::HeuristicConfig& heur, Blas3 routine,
                     const fault::FaultPlan& plan = {},
                     topo::Topology topo = topo::Topology::dgx1()) {
  BenchConfig cfg;
  cfg.routine = routine;
  cfg.n = 8192;
  cfg.tile = 2048;
  cfg.check.enabled = true;
  cfg.fault_plan = plan;
  cfg.topology = std::move(topo);
  auto model = make_xkblas(heur);
  BenchResult res = model->run(cfg);
  EXPECT_TRUE(res.supported);
  EXPECT_FALSE(res.failed) << res.error;
  return res;
}

void expect_identical(const BenchResult& a, const BenchResult& b,
                      const char* what) {
  EXPECT_EQ(a.event_hash, b.event_hash) << what;
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.tasks, b.tasks) << what;
  EXPECT_EQ(a.transfers.h2d, b.transfers.h2d) << what;
  EXPECT_EQ(a.transfers.d2h, b.transfers.d2h) << what;
  EXPECT_EQ(a.transfers.d2d, b.transfers.d2d) << what;
  EXPECT_EQ(a.transfers.optimistic_waits, b.transfers.optimistic_waits)
      << what;
  EXPECT_EQ(a.transfers.forced_waits, b.transfers.forced_waits) << what;
  EXPECT_EQ(a.transfers.evict_flushes, b.transfers.evict_flushes) << what;
  EXPECT_EQ(a.transfers.oom_deferrals, b.transfers.oom_deferrals) << what;
}

TEST(Determinism, GemmIsBitIdenticalAcrossRerunsForEveryPreset) {
  for (const Preset& p : presets()) {
    BenchResult a = run_once(p.heur, Blas3::kGemm);
    BenchResult b = run_once(p.heur, Blas3::kGemm);
    EXPECT_TRUE(a.check_ok) << p.name << ": " << a.check_report;
    expect_identical(a, b, p.name);
  }
}

TEST(Determinism, TrsmIsBitIdenticalAcrossRerunsForEveryPreset) {
  for (const Preset& p : presets()) {
    BenchResult a = run_once(p.heur, Blas3::kTrsm);
    BenchResult b = run_once(p.heur, Blas3::kTrsm);
    EXPECT_TRUE(a.check_ok) << p.name << ": " << a.check_report;
    expect_identical(a, b, p.name);
  }
}

// The committed presets/dgx1.tpo IS the machine: routing the text file
// must yield bit-identical event streams to the built-in builder across
// the full heuristic preset matrix, for both a GEMM and a TRSM shape.
// This is the tentpole safety net -- any drift between the .tpo language,
// the routing engine and the historical tables shows up here first.
TEST(Determinism, Dgx1TpoFileIsBitIdenticalToBuilderAcrossPresetMatrix) {
  const std::string path = std::string(XKB_PRESET_DIR) + "/dgx1.tpo";
  for (const Preset& p : presets()) {
    for (const Blas3 routine : {Blas3::kGemm, Blas3::kTrsm}) {
      BenchResult built = run_once(p.heur, routine);
      BenchResult filed = run_once(p.heur, routine, {},
                                   topo::Topology::from_tpo_file(path));
      EXPECT_TRUE(filed.check_ok) << p.name << ": " << filed.check_report;
      expect_identical(built, filed, p.name);
    }
  }
}

// Faulted determinism: a seeded fault plan (targeted aborts + probabilistic
// failures + a brownout) must reproduce the observable event stream bit for
// bit across reruns -- the xkb::fault design invariant that makes every
// chaos finding replayable from just (workload, plan).
TEST(Determinism, SeededFaultPlanIsBitIdenticalAcrossReruns) {
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed 1234\n"
      "fail-prob 0.03\n"
      "brownout 0.002 0 1 0.2 0.01\n"
      "xfail 0.001 any -1 -1\n"
      "xfail 0.004 d2d -1 -1\n");
  BenchResult a = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, plan);
  BenchResult b = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, plan);
  EXPECT_TRUE(a.check_ok) << a.check_report;
  EXPECT_GT(a.transfers.transfer_aborts, 0u);  // the plan actually bit
  expect_identical(a, b, "seeded-fault-plan");
  EXPECT_EQ(a.transfers.transfer_aborts, b.transfers.transfer_aborts);
  EXPECT_EQ(a.transfers.transfer_retries, b.transfers.transfer_retries);
}

// A different fault seed drives a different probabilistic failure stream,
// so the hashes must differ -- otherwise the seed would be vacuous.
TEST(Determinism, FaultSeedDistinguishesRuns) {
  fault::FaultPlan p1 = fault::FaultPlan::parse("seed 1\nfail-prob 0.05\n");
  fault::FaultPlan p2 = fault::FaultPlan::parse("seed 2\nfail-prob 0.05\n");
  BenchResult a = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, p1);
  BenchResult b = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, p2);
  EXPECT_NE(a.event_hash, b.event_hash);
}

// Generic workloads (xkb::wl) through the submission bridge: a seeded
// `random` and a `dnn` graph rerun must be bit-identical, for every
// heuristic preset and both placements -- the workload analogue of the BLAS
// reruns above.
BenchResult run_workload_once(const std::string& spec_text,
                              const rt::HeuristicConfig& heur, bool dod) {
  const wl::WorkloadGraph g = wl::build(wl::WorkloadSpec::parse(spec_text));
  const ModelSpec spec = spec_for_library("xkblas", heur);
  WorkloadBenchConfig cfg;
  cfg.data_on_device = dod;
  cfg.check.enabled = true;
  BenchResult res = run_workload(spec, g, cfg);
  EXPECT_FALSE(res.failed) << res.error;
  EXPECT_TRUE(res.check_ok) << res.check_report;
  return res;
}

TEST(Determinism, SeededRandomWorkloadIsBitIdenticalAcrossReruns) {
  const std::string spec = "random:width=12,depth=10,seed=7,prob=0.2";
  for (const Preset& p : presets())
    for (const bool dod : {false, true}) {
      BenchResult a = run_workload_once(spec, p.heur, dod);
      BenchResult b = run_workload_once(spec, p.heur, dod);
      expect_identical(a, b, p.name);
    }
}

TEST(Determinism, DnnWorkloadIsBitIdenticalAcrossReruns) {
  const std::string spec = "dnn:width=8,depth=6,seed=11";
  for (const Preset& p : presets())
    for (const bool dod : {false, true}) {
      BenchResult a = run_workload_once(spec, p.heur, dod);
      BenchResult b = run_workload_once(spec, p.heur, dod);
      expect_identical(a, b, p.name);
    }
}

// A different master seed must drive a different random graph, hence a
// different event stream -- otherwise the seed would be vacuous.
TEST(Determinism, WorkloadSeedDistinguishesRuns) {
  BenchResult a = run_workload_once("random:width=12,depth=10,seed=1,prob=0.2",
                                    rt::HeuristicConfig::xkblas(), false);
  BenchResult b = run_workload_once("random:width=12,depth=10,seed=2,prob=0.2",
                                    rt::HeuristicConfig::xkblas(), false);
  EXPECT_NE(a.event_hash, b.event_hash);
}

// Differential gate for the calendar-queue engine: the full preset matrix
// (every heuristic preset x routine x placement), plus a seeded-fault run
// and a workload run, executed once on the reference binary-heap engine
// and once on the calendar queue, must produce bit-identical event hashes,
// makespans, transfer stats, and event counts.  This is the end-to-end
// witness that the queue swap changed the engine's speed and nothing else.
struct QueueImplGuard {
  sim::Engine::QueueImpl saved = sim::Engine::default_queue_impl();
  ~QueueImplGuard() { sim::Engine::set_default_queue_impl(saved); }
};

TEST(Determinism, CalendarEngineMatchesHeapEngineAcrossPresetMatrix) {
  QueueImplGuard guard;
  for (const Preset& p : presets())
    for (Blas3 routine : {Blas3::kGemm, Blas3::kTrsm, Blas3::kSyr2k})
      for (const bool dod : {false, true}) {
        BenchConfig cfg;
        cfg.routine = routine;
        cfg.n = 8192;
        cfg.tile = 2048;
        cfg.data_on_device = dod;
        cfg.check.enabled = true;
        sim::Engine::set_default_queue_impl(sim::Engine::QueueImpl::kHeap);
        const BenchResult a = make_xkblas(p.heur)->run(cfg);
        sim::Engine::set_default_queue_impl(sim::Engine::QueueImpl::kCalendar);
        const BenchResult b = make_xkblas(p.heur)->run(cfg);
        ASSERT_FALSE(a.failed) << a.error;
        ASSERT_FALSE(b.failed) << b.error;
        expect_identical(a, b, p.name);
        EXPECT_EQ(a.events_processed, b.events_processed) << p.name;
        EXPECT_EQ(a.events_observable, b.events_observable) << p.name;
      }
}

TEST(Determinism, CalendarEngineMatchesHeapEngineUnderFaultsAndWorkloads) {
  QueueImplGuard guard;
  const fault::FaultPlan plan = fault::FaultPlan::parse(
      "seed 1234\n"
      "fail-prob 0.03\n"
      "brownout 0.002 0 1 0.2 0.01\n"
      "xfail 0.001 any -1 -1\n");
  sim::Engine::set_default_queue_impl(sim::Engine::QueueImpl::kHeap);
  const BenchResult fa =
      run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, plan);
  const BenchResult wa = run_workload_once("dnn:width=8,depth=6,seed=11",
                                           rt::HeuristicConfig::xkblas(), true);
  sim::Engine::set_default_queue_impl(sim::Engine::QueueImpl::kCalendar);
  const BenchResult fb =
      run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm, plan);
  const BenchResult wb = run_workload_once("dnn:width=8,depth=6,seed=11",
                                           rt::HeuristicConfig::xkblas(), true);
  EXPECT_GT(fa.transfers.transfer_aborts, 0u);  // the plan actually bit
  expect_identical(fa, fb, "heap-vs-calendar seeded-fault");
  EXPECT_EQ(fa.events_processed, fb.events_processed);
  expect_identical(wa, wb, "heap-vs-calendar dnn workload");
  EXPECT_EQ(wa.events_processed, wb.events_processed);
}

// Different presets drive different transfer schedules, so their event
// streams should differ -- if every configuration hashed to the same value
// the hash would be vacuous.
TEST(Determinism, HashDistinguishesHeuristicConfigurations) {
  BenchResult on = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm);
  BenchResult off =
      run_once(rt::HeuristicConfig::no_heuristic_no_topo(), Blas3::kGemm);
  EXPECT_NE(on.event_hash, off.event_hash);
}

// The host self-profiler reads wall clock on hot paths but must never feed
// virtual time: a run with the profiler attached has to replay the exact
// same event stream as one without it.
TEST(Determinism, SelfProfilerAttachDoesNotPerturbTheEventStream) {
  BenchResult off = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm);
  prof::SelfProfiler sp;
  prof::SelfProfiler::activate(&sp);
  BenchResult on = run_once(rt::HeuristicConfig::xkblas(), Blas3::kGemm);
  prof::SelfProfiler::activate(nullptr);
  expect_identical(off, on, "selfprof-attach");
  // The profiler did observe the run it was attached to.
  const std::string table = sp.table_text();
  EXPECT_NE(std::string::npos, table.find("engine.run"));
  EXPECT_NE(std::string::npos, table.find("dm.fetch"));
}

}  // namespace
}  // namespace xkb::baselines
