// Randomized task-graph fuzzing of the runtime + coherence protocol.
//
// Random programs are generated over a pool of tiles: each task touches
// 1..3 random handles with random access modes and applies a deterministic
// affine mutation (x := a*x + b element-wise) to the tiles it writes.
// Because the runtime guarantees per-handle program order, the final host
// state must equal a sequential interpretation of the same program --
// regardless of scheduler, heuristics, device count, cache capacity or
// prefetch depth.  Any lost update, stale read, dropped invalidation or
// mis-ordered flush shows up as a numeric mismatch.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace xkb::rt {
namespace {

constexpr std::size_t kTile = 8;
constexpr std::size_t kTiles = 12;
constexpr int kTasks = 120;

struct Op0 {
  std::vector<int> reads;
  std::vector<int> writes;  // RW mutations, applied in `writes` order
  double a = 1.0, b = 0.0;  // x := a*x + b
  bool coherent = false;    // instead: flush one handle (reads[0])
  bool host_write = false;  // instead: CPU overwrite of writes[0]
};

/// Generate a random program (deterministic from seed).
std::vector<Op0> make_program(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op0> prog;
  for (int t = 0; t < kTasks; ++t) {
    Op0 op;
    const double kind = rng.next_double();
    if (kind < 0.08) {
      op.coherent = true;
      op.reads = {static_cast<int>(rng.next_below(kTiles))};
    } else if (kind < 0.14) {
      op.host_write = true;
      op.writes = {static_cast<int>(rng.next_below(kTiles))};
      op.a = rng.uniform(0.5, 1.5);
      op.b = rng.uniform(-1.0, 1.0);
    } else {
      const int nr = static_cast<int>(rng.next_below(3));
      for (int i = 0; i < nr; ++i)
        op.reads.push_back(static_cast<int>(rng.next_below(kTiles)));
      op.writes = {static_cast<int>(rng.next_below(kTiles))};
      op.a = rng.uniform(0.5, 1.5);
      op.b = rng.uniform(-1.0, 1.0);
    }
    prog.push_back(std::move(op));
  }
  return prog;
}

/// Sequential interpretation: mutations apply in program order; host_write
/// mutates the host copy directly; reads/coherent have no effect on state.
std::vector<Matrix<double>> interpret(const std::vector<Op0>& prog) {
  std::vector<Matrix<double>> tiles;
  for (std::size_t i = 0; i < kTiles; ++i) {
    Matrix<double> m(kTile, kTile);
    Rng rng(1000 + i);
    fill_random(m, rng);
    tiles.push_back(std::move(m));
  }
  for (const Op0& op : prog) {
    if (op.coherent) continue;
    for (int w : op.writes)
      for (std::size_t j = 0; j < kTile; ++j)
        for (std::size_t i = 0; i < kTile; ++i)
          tiles[w](i, j) = op.a * tiles[w](i, j) + op.b;
  }
  return tiles;
}

struct FuzzCfg {
  std::uint64_t seed;
  HeuristicConfig heur;
  bool dmdas;
  std::size_t capacity;  // per-device bytes
  int window;
};

void run_fuzz(const FuzzCfg& cfg) {
  const std::vector<Op0> prog = make_program(cfg.seed);
  const std::vector<Matrix<double>> expect = interpret(prog);

  // Fresh identical initial state for the simulated run.
  std::vector<Matrix<double>> tiles;
  for (std::size_t i = 0; i < kTiles; ++i) {
    Matrix<double> m(kTile, kTile);
    Rng rng(1000 + i);
    fill_random(m, rng);
    tiles.push_back(std::move(m));
  }

  PlatformOptions po;
  po.functional = true;
  po.device_capacity = cfg.capacity;
  Platform plat(topo::Topology::dgx1(), PerfModel{}, po);
  RuntimeOptions ro;
  ro.heuristics = cfg.heur;
  ro.prepare_window = cfg.window;
  std::unique_ptr<Scheduler> sched;
  if (cfg.dmdas)
    sched = std::make_unique<DmdasScheduler>();
  else
    sched = std::make_unique<OwnerComputesScheduler>();
  Runtime rt(plat, std::move(sched), ro);

  std::vector<mem::DataHandle*> handles;
  for (std::size_t i = 0; i < kTiles; ++i)
    handles.push_back(rt.registry().intern(tiles[i].data(), kTile, kTile,
                                           kTile, sizeof(double)));

  for (const Op0& op : prog) {
    if (op.coherent) {
      rt.coherent_async(handles[op.reads[0]]);
      continue;
    }
    if (op.host_write) {
      // Model the CPU mutation: ensure host validity via a coherent task,
      // mutate on completion is not expressible mid-graph, so we instead
      // express the CPU write as a host task pair: flush, then overwrite
      // declaration, applying the mutation to the host view in between via
      // the task's completion hook.
      mem::DataHandle* h = handles[op.writes[0]];
      rt.coherent_async(h);
      TaskDesc d;
      d.label = "host_mut";
      d.accesses.push_back({h, Access::kW});
      d.host_task = true;
      double* data = tiles[op.writes[0]].data();
      const double a = op.a, b = op.b;
      d.on_complete = [data, a, b] {
        for (std::size_t x = 0; x < kTile * kTile; ++x)
          data[x] = a * data[x] + b;
      };
      rt.submit(std::move(d));
      continue;
    }
    TaskDesc d;
    d.label = "mut";
    for (int r : op.reads) d.accesses.push_back({handles[r], Access::kR});
    for (int w : op.writes) d.accesses.push_back({handles[w], Access::kRW});
    d.flops = 1e8;
    d.min_dim = 256;
    const double a = op.a, b = op.b;
    const std::size_t nr = op.reads.size();
    d.fn = [a, b, nr](const FunctionalCtx& ctx) {
      // Touch the read buffers (so stale replicas would be observable as
      // crashes/garbage under ASAN-like scrutiny), mutate the written one.
      double sink = 0.0;
      for (std::size_t i = 0; i < nr; ++i) {
        ASSERT_NE(ctx.ptr(i), nullptr)
            << "read operand " << i << " handle " << ctx.handle(i)->id
            << " on device " << ctx.device() << " has no buffer";
        sink += static_cast<const double*>(ctx.ptr(i))[0];
      }
      (void)sink;
      ASSERT_NE(ctx.ptr(nr), nullptr)
          << "write operand handle " << ctx.handle(nr)->id << " on device "
          << ctx.device() << " has no buffer";
      auto* w = static_cast<double*>(ctx.ptr(nr));
      for (std::size_t x = 0; x < kTile * kTile; ++x) w[x] = a * w[x] + b;
    };
    rt.submit(std::move(d));
  }
  for (auto* h : handles) rt.coherent_async(h);
  rt.run();

  for (std::size_t i = 0; i < kTiles; ++i)
    ASSERT_LT(max_abs_diff(tiles[i], expect[i]), 1e-12)
        << "tile " << i << " diverged (seed " << cfg.seed << ")";
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, OwnerComputesFullHeuristics) {
  run_fuzz({GetParam(), HeuristicConfig::xkblas(), false, 32ull << 30, 6});
}

TEST_P(FuzzSeeds, DmdasNoHeuristics) {
  run_fuzz({GetParam(), HeuristicConfig::no_heuristic_no_topo(), true,
            32ull << 30, 6});
}

TEST_P(FuzzSeeds, TinyCacheEvictionPressure) {
  // Four tiles per device with a single-task prepare window: constant
  // eviction including dirty flushes.  (Device capacity must cover the
  // prepare window's pinned working set -- window x max task footprint of
  // 3 tiles, plus one slot for in-flight eviction flushes -- otherwise the
  // runtime reports out-of-device-memory after bounded deferral, which is
  // exercised by Eviction tests elsewhere.)
  run_fuzz({GetParam(), HeuristicConfig::xkblas(), false,
            4 * kTile * kTile * sizeof(double), 1});
}

TEST_P(FuzzSeeds, HostOnlySources) {
  run_fuzz({GetParam(), {SourcePolicy::kHostOnly, false}, false,
            32ull << 30, 4});
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace xkb::rt
