// Tests of the drop-in C-style API: option parsing, all wrappers against
// the reference kernels, context swapping, and the drop-in composition
// pattern (raw pointers + leading dimensions, no Context in sight).
#include <gtest/gtest.h>

#include "core/compat.hpp"
#include "util/rng.hpp"

namespace {

using namespace xkblas;
using Z = std::complex<double>;

class CompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Options opt;
    opt.platform.functional = true;
    opt.tile = 32;
    ctx_ = std::make_unique<Context>(opt);
    xkblas_set_context(ctx_.get());
  }
  void TearDown() override { xkblas_set_context(nullptr); }

  std::unique_ptr<Context> ctx_;
};

TEST_F(CompatTest, OptionParsing) {
  EXPECT_EQ(op_from_char('N'), Op::NoTrans);
  EXPECT_EQ(op_from_char('t'), Op::Trans);
  EXPECT_EQ(op_from_char('C'), Op::ConjTrans);
  EXPECT_EQ(uplo_from_char('L'), Uplo::Lower);
  EXPECT_EQ(uplo_from_char('u'), Uplo::Upper);
  EXPECT_EQ(side_from_char('R'), Side::Right);
  EXPECT_EQ(diag_from_char('U'), Diag::Unit);
  EXPECT_THROW(op_from_char('X'), std::invalid_argument);
  EXPECT_THROW(uplo_from_char('?'), std::invalid_argument);
}

TEST_F(CompatTest, DgemmMatchesReference) {
  const std::size_t n = 96;
  xkb::Rng rng(1);
  xkb::Matrix<double> A(n, n), B(n, n), C(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  xkb::Matrix<double> ref = C;
  xkb::host::gemm<double>(Op::Trans, Op::NoTrans, 1.5, A.view(), B.view(),
                          0.5, ref.view());
  xkblas_dgemm_async('T', 'N', n, n, n, 1.5, A.data(), n, B.data(), n, 0.5,
                     C.data(), n);
  xkblas_memory_coherent_async(n, n, C.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C, ref), 1e-9);
}

TEST_F(CompatTest, DsymmDsyrkDsyr2k) {
  const std::size_t n = 96;
  xkb::Rng rng(2);
  xkb::Matrix<double> A(n, n), B(n, n), C1(n, n), C2(n, n), C3(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C1, rng);
  C2 = C1;
  C3 = C1;
  xkb::Matrix<double> r1 = C1, r2 = C1, r3 = C1;
  xkb::host::symm<double>(Side::Left, Uplo::Lower, 1.0, A.view(), B.view(),
                          1.0, r1.view());
  xkb::host::syrk<double>(Uplo::Upper, Op::Trans, 0.5, A.view(), 1.0,
                          r2.view());
  xkb::host::syr2k<double>(Uplo::Lower, Op::NoTrans, 1.0, A.view(), B.view(),
                           0.0, r3.view());

  xkblas_dsymm_async('L', 'L', n, n, 1.0, A.data(), n, B.data(), n, 1.0,
                     C1.data(), n);
  xkblas_dsyrk_async('U', 'T', n, n, 0.5, A.data(), n, 1.0, C2.data(), n);
  xkblas_dsyr2k_async('L', 'N', n, n, 1.0, A.data(), n, B.data(), n, 0.0,
                      C3.data(), n);
  xkblas_memory_coherent_async(n, n, C1.data(), n);
  xkblas_memory_coherent_async(n, n, C2.data(), n);
  xkblas_memory_coherent_async(n, n, C3.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C1, r1), 1e-9);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i)
      ASSERT_NEAR(C2(i, j), r2(i, j), 1e-9);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      ASSERT_NEAR(C3(i, j), r3(i, j), 1e-9);
}

TEST_F(CompatTest, DtrmmDtrsm) {
  const std::size_t n = 96;
  xkb::Rng rng(3);
  xkb::Matrix<double> A(n, n), B1(n, n), B2(n, n);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::fill_random(B1, rng);
  B2 = B1;
  xkb::Matrix<double> r1 = B1, r2 = B1;
  xkb::host::trmm<double>(Side::Right, Uplo::Upper, Op::NoTrans,
                          Diag::NonUnit, 1.0, A.view(), r1.view());
  xkb::host::trsm<double>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                          2.0, A.view(), r2.view());
  xkblas_dtrmm_async('R', 'U', 'N', 'N', n, n, 1.0, A.data(), n, B1.data(),
                     n);
  xkblas_dtrsm_async('L', 'L', 'N', 'N', n, n, 2.0, A.data(), n, B2.data(),
                     n);
  xkblas_memory_coherent_async(n, n, B1.data(), n);
  xkblas_memory_coherent_async(n, n, B2.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(B1, r1), 1e-9);
  EXPECT_LT(xkb::max_abs_diff(B2, r2), 1e-8);
}

TEST_F(CompatTest, SgemmSinglePrecision) {
  const std::size_t n = 64;
  xkb::Rng rng(4);
  xkb::Matrix<float> A(n, n), B(n, n), C(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  xkb::Matrix<float> ref = C;
  xkb::host::gemm<float>(Op::NoTrans, Op::NoTrans, 1.0f, A.view(), B.view(),
                         1.0f, ref.view());
  xkblas_sgemm_async('N', 'N', n, n, n, 1.0f, A.data(), n, B.data(), n, 1.0f,
                     C.data(), n);
  xkblas_memory_coherent_async(n, n, C.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C, ref), 1e-3f);
}

TEST_F(CompatTest, ComplexHermitianTrio) {
  const std::size_t n = 64;
  xkb::Rng rng(5);
  xkb::Matrix<Z> A(n, n), B(n, n), C1(n, n), C2(n, n), C3(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C1, rng);
  for (std::size_t i = 0; i < n; ++i) C1(i, i) = Z{std::real(C1(i, i))};
  C2 = C1;
  C3 = C1;
  xkb::Matrix<Z> r1 = C1, r2 = C1, r3 = C1;
  const Z alpha{1.0, 0.5};
  xkb::host::hemm<Z>(Side::Left, Uplo::Lower, alpha, A.view(), B.view(),
                     Z{1.0}, r1.view());
  xkb::host::herk<Z>(Uplo::Lower, Op::NoTrans, 2.0, A.view(), 1.0, r2.view());
  xkb::host::her2k<Z>(Uplo::Lower, Op::NoTrans, alpha, A.view(), B.view(),
                      1.0, r3.view());
  xkblas_zhemm_async('L', 'L', n, n, alpha, A.data(), n, B.data(), n, Z{1.0},
                     C1.data(), n);
  xkblas_zherk_async('L', 'N', n, n, 2.0, A.data(), n, 1.0, C2.data(), n);
  xkblas_zher2k_async('L', 'N', n, n, alpha, A.data(), n, B.data(), n, 1.0,
                      C3.data(), n);
  xkblas_memory_coherent_async(n, n, C1.data(), n);
  xkblas_memory_coherent_async(n, n, C2.data(), n);
  xkblas_memory_coherent_async(n, n, C3.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C1, r1), 1e-9);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) {
      ASSERT_LT(std::abs(C2(i, j) - r2(i, j)), 1e-9);
      ASSERT_LT(std::abs(C3(i, j) - r3(i, j)), 1e-9);
    }
}

TEST_F(CompatTest, SubMatrixWithLeadingDimension) {
  // Drop-in calls on a sub-block of a bigger matrix (ld > m), the LAPACK
  // idiom legacy applications rely on.
  const std::size_t big = 128, n = 64;
  xkb::Rng rng(6);
  xkb::Matrix<double> A(big, big), B(big, big), C(big, big);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C, rng);
  xkb::Matrix<double> ref = C;
  xkb::host::gemm<double>(Op::NoTrans, Op::NoTrans, 1.0,
                          A.view().block(32, 32, n, n),
                          B.view().block(0, 0, n, n), 1.0,
                          ref.view().block(16, 48, n, n));
  xkblas_dgemm_async('N', 'N', n, n, n, 1.0, &A(32, 32), big, &B(0, 0), big,
                     1.0, &C(16, 48), big);
  xkblas_memory_coherent_async(n, n, &C(16, 48), big);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C, ref), 1e-9);
}

TEST(CompatDefault, LazyDefaultContext) {
  xkblas_set_context(nullptr);
  Context& a = xkblas_context();
  Context& b = xkblas_context();
  EXPECT_EQ(&a, &b) << "default context is created once";
  EXPECT_EQ(a.platform().num_gpus(), 8);
}

}  // namespace

// Appended: the remaining precision variants of the drop-in surface.
namespace {
using CF = std::complex<float>;

TEST_F(CompatTest, SingleRealVariants) {
  const std::size_t n = 64;
  xkb::Rng rng(31);
  xkb::Matrix<float> A(n, n), B(n, n), C1(n, n), C2(n, n), C3(n, n),
      B1(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C1, rng);
  C2 = C1;
  C3 = C1;
  B1 = B;
  xkb::Matrix<float> r1 = C1, r2 = C1, r3 = C1, rb = B;
  xkb::host::symm<float>(Side::Left, Uplo::Lower, 1.0f, A.view(), B.view(),
                         1.0f, r1.view());
  xkb::host::syrk<float>(Uplo::Lower, Op::NoTrans, 1.0f, A.view(), 1.0f,
                         r2.view());
  xkb::host::syr2k<float>(Uplo::Lower, Op::NoTrans, 1.0f, A.view(), B.view(),
                          1.0f, r3.view());
  xkb::host::trmm<float>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                         1.0f, A.view(), rb.view());

  xkblas_ssymm_async('L', 'L', n, n, 1.0f, A.data(), n, B.data(), n, 1.0f,
                     C1.data(), n);
  xkblas_ssyrk_async('L', 'N', n, n, 1.0f, A.data(), n, 1.0f, C2.data(), n);
  xkblas_ssyr2k_async('L', 'N', n, n, 1.0f, A.data(), n, B.data(), n, 1.0f,
                      C3.data(), n);
  xkblas_strmm_async('L', 'L', 'N', 'N', n, n, 1.0f, A.data(), n, B1.data(),
                     n);
  xkblas_memory_coherent_async(n, n, C1.data(), n);
  xkblas_memory_coherent_async(n, n, C2.data(), n);
  xkblas_memory_coherent_async(n, n, C3.data(), n);
  xkblas_memory_coherent_async(n, n, B1.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C1, r1), 1e-3f);
  EXPECT_LT(xkb::max_abs_diff(B1, rb), 1e-3f);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i) {
      ASSERT_NEAR(C2(i, j), r2(i, j), 1e-3f);
      ASSERT_NEAR(C3(i, j), r3(i, j), 1e-3f);
    }
}

TEST_F(CompatTest, ComplexSingleVariants) {
  const std::size_t n = 48;
  xkb::Rng rng(32);
  xkb::Matrix<CF> A(n, n), B(n, n), C1(n, n), C2(n, n);
  xkb::fill_random(A, rng);
  xkb::fill_random(B, rng);
  xkb::fill_random(C1, rng);
  for (std::size_t i = 0; i < n; ++i) C1(i, i) = CF{std::real(C1(i, i))};
  C2 = C1;
  xkb::Matrix<CF> r1 = C1, r2 = C1;
  const CF alpha{1.0f, -0.5f};
  xkb::host::gemm<CF>(Op::NoTrans, Op::ConjTrans, alpha, A.view(), B.view(),
                      CF{1.0f}, r1.view());
  xkb::host::herk<CF>(Uplo::Lower, Op::NoTrans, 1.5f, A.view(), 1.0f,
                      r2.view());
  xkblas_cgemm_async('N', 'C', n, n, n, alpha, A.data(), n, B.data(), n,
                     CF{1.0f}, C1.data(), n);
  xkblas_cherk_async('L', 'N', n, n, 1.5f, A.data(), n, 1.0f, C2.data(), n);
  xkblas_memory_coherent_async(n, n, C1.data(), n);
  xkblas_memory_coherent_async(n, n, C2.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(C1, r1), 1e-3f);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      ASSERT_LT(std::abs(C2(i, j) - r2(i, j)), 1e-3f);
}

TEST_F(CompatTest, CtrsmSolves) {
  const std::size_t n = 48;
  xkb::Rng rng(33);
  xkb::Matrix<CF> A(n, n), X(n, n);
  xkb::fill_random(A, rng);
  xkb::make_diag_dominant(A);
  xkb::fill_random(X, rng);
  xkb::Matrix<CF> B = X;
  xkb::host::trmm<CF>(Side::Left, Uplo::Lower, Op::NoTrans, Diag::NonUnit,
                      CF{1.0f}, A.view(), B.view());
  xkblas_ctrsm_async('L', 'L', 'N', 'N', n, n, CF{1.0f}, A.data(), n,
                     B.data(), n);
  xkblas_memory_coherent_async(n, n, B.data(), n);
  xkblas_sync();
  EXPECT_LT(xkb::max_abs_diff(B, X), 1e-2f);
}

}  // namespace
