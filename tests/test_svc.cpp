// xkb::svc: the admission state machine's edge cases (zero-capacity
// queues, unservable deadlines, capped retry backoff, quotas, brownout
// hysteresis), graceful degradation under a device failure with every
// tenant resident, the .svt trace format, and per-policy bit-identical
// reruns of a seeded soak.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "runtime/runtime.hpp"
#include "svc/arrivals.hpp"
#include "svc/svc.hpp"
#include "topo/topology.hpp"
#include "workload/workload.hpp"

namespace xkb::svc {
namespace {

std::shared_ptr<const wl::WorkloadGraph> graph_of(const std::string& s) {
  return std::make_shared<const wl::WorkloadGraph>(
      wl::build(wl::WorkloadSpec::parse(s)));
}

// A kernel long enough to pin its run slot across every timeline the
// tests below build (hundreds of milliseconds of virtual time).
const char* kBlocker = "trivial:width=1,depth=1,flops=1e12";
// A kernel in the tens of microseconds: far below any test deadline.
const char* kQuick = "trivial:width=1,depth=1,flops=1e8";

rt::PlatformOptions plat_opts() {
  rt::PlatformOptions p;
  p.functional = false;
  return p;
}

struct Harness {
  rt::Platform plat;
  std::unique_ptr<fault::Injector> inj;
  std::unique_ptr<rt::Runtime> runtime;
  std::unique_ptr<Service> service;

  explicit Harness(ServiceOptions opt = {},
                   const fault::FaultPlan& plan = {}, bool check = false)
      : plat(topo::Topology::dgx1(), rt::PerfModel{}, plat_opts()) {
    if (!plan.empty()) {
      inj = std::make_unique<fault::Injector>(plan);
      plat.set_fault(inj.get());
    }
    rt::RuntimeOptions ropt;
    ropt.check.enabled = check;
    runtime = std::make_unique<rt::Runtime>(
        plat, std::make_unique<rt::OwnerComputesScheduler>(), ropt);
    service = std::make_unique<Service>(*runtime, opt);
  }
};

// --- admission edge cases ------------------------------------------------

TEST(Admission, ZeroCapacityQueueAdmitsOnlyIntoAFreeSlot) {
  ServiceOptions opt;
  opt.max_running = 1;
  Harness h(opt);
  TenantSpec t;
  t.queue_cap = 0;
  const int id = h.service->add_tenant(t);

  const SubmitResult first =
      h.service->submit(id, JobSpec{"a", graph_of(kQuick), -1.0});
  EXPECT_TRUE(first.admitted);
  EXPECT_EQ(h.service->running(), 1u);

  // The slot is taken and the queue can hold nothing: shed.
  const SubmitResult second =
      h.service->submit(id, JobSpec{"b", graph_of(kQuick), -1.0});
  EXPECT_FALSE(second.admitted);
  EXPECT_FALSE(second.dead_letter);
  EXPECT_EQ(second.reason, Reject::kQueueFull);
  EXPECT_EQ(h.service->tenant_stats(id).rejected_queue_full, 1u);

  h.service->drain();
  EXPECT_EQ(h.service->stats().completed, 1u);
  EXPECT_EQ(h.service->in_system(), 0u);
}

TEST(Admission, QuotaBoundsATenantsJobsInSystem) {
  ServiceOptions opt;
  opt.max_running = 1;
  Harness h(opt);
  TenantSpec t;
  t.queue_cap = 16;
  t.max_in_system = 2;
  const int id = h.service->add_tenant(t);

  EXPECT_TRUE(h.service->submit(id, {"a", graph_of(kQuick), -1.0}).admitted);
  EXPECT_TRUE(h.service->submit(id, {"b", graph_of(kQuick), -1.0}).admitted);
  const SubmitResult r = h.service->submit(id, {"c", graph_of(kQuick), -1.0});
  EXPECT_FALSE(r.admitted);
  EXPECT_EQ(r.reason, Reject::kQuotaExceeded);
  EXPECT_EQ(h.service->tenant_stats(id).rejected_quota, 1u);
  h.service->drain();
  EXPECT_EQ(h.service->stats().completed, 2u);
}

TEST(Admission, UnknownTenantThrows) {
  Harness h;
  EXPECT_THROW(h.service->submit(3, {"x", graph_of(kQuick), -1.0}),
               std::exception);
}

// --- deadlines and the retry ladder --------------------------------------

TEST(Deadlines, BelowMinimumServiceDeadLettersImmediately) {
  Harness h;
  const int id = h.service->add_tenant({});
  // No queue wait or backoff schedule can make a 1ns budget feasible:
  // the graph's longest kernel alone exceeds it.
  const SubmitResult r =
      h.service->submit(id, JobSpec{"doomed", graph_of(kQuick), 1e-9});
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(r.dead_letter);
  ASSERT_EQ(h.service->records().size(), 1u);
  const JobRecord& rec = h.service->records()[0];
  EXPECT_EQ(rec.state, JobState::kDeadLetter);
  EXPECT_EQ(rec.started, -1.0);  // never launched
  EXPECT_NE(rec.reason.find("minimum service time"), std::string::npos);
  EXPECT_EQ(h.service->stats().dead_letters, 1u);
  EXPECT_EQ(h.service->in_system(), 0u);
  h.service->drain();  // nothing outstanding; must return cleanly
}

TEST(Deadlines, QueueExpiryRetriesWithCappedBackoffThenDeadLetters) {
  ServiceOptions opt;
  opt.max_running = 1;
  opt.max_retries = 3;
  opt.backoff_base = 1e-3;
  opt.backoff_cap = 2e-3;
  Harness h(opt);
  const int id = h.service->add_tenant({});

  ASSERT_TRUE(h.service->submit(id, {"blocker", graph_of(kBlocker), -1.0})
                  .admitted);
  const double D = 5e-3;
  ASSERT_TRUE(
      h.service->submit(id, JobSpec{"victim", graph_of(kQuick), D}).admitted);
  h.service->drain();

  ASSERT_EQ(h.service->records().size(), 2u);
  // Records append in completion order: the victim dead-letters while the
  // blocker still runs.
  const JobRecord& victim = h.service->records()[0];
  EXPECT_EQ(victim.name, "victim");
  EXPECT_EQ(victim.state, JobState::kDeadLetter);
  EXPECT_EQ(victim.attempts, 4);  // 1 + max_retries
  EXPECT_EQ(h.service->stats().retries, 3u);
  EXPECT_EQ(h.service->stats().expired, 4u);
  // Each attempt expires after D in the queue; retry k waits
  // min(base * 2^(k-1), cap): 1ms, 2ms, then 4ms CAPPED to 2ms.
  double expect = 0.0;
  const double backoffs[] = {1e-3, 2e-3, 2e-3};
  for (int a = 0; a < 3; ++a) expect = expect + D + backoffs[a];
  expect += D;  // the final, fatal expiry
  EXPECT_NEAR(victim.finished, expect, 1e-12);
  EXPECT_EQ(h.service->records()[1].state, JobState::kCompleted);
  EXPECT_EQ(h.service->in_system(), 0u);
}

// --- brownout hysteresis -------------------------------------------------

TEST(Brownout, ShedsOnlyBelowFloorPriorityAndExitsOnDrain) {
  ServiceOptions opt;
  opt.max_running = 1;
  opt.global_queue_cap = 8;  // enter at >= 6 queued, exit at <= 4
  opt.brownout_high_water = 0.75;
  opt.brownout_low_water = 0.5;
  opt.brownout_priority_floor = 1;
  Harness h(opt);
  TenantSpec lo;
  lo.name = "lo";
  lo.priority = 0;
  lo.queue_cap = 32;
  TenantSpec hi;
  hi.name = "hi";
  hi.priority = 1;
  hi.queue_cap = 32;
  const int lo_id = h.service->add_tenant(lo);
  const int hi_id = h.service->add_tenant(hi);

  ASSERT_TRUE(h.service->submit(hi_id, {"blocker", graph_of(kBlocker), -1.0})
                  .admitted);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(h.service
                    ->submit(lo_id, {"lo" + std::to_string(i),
                                     graph_of(kQuick), -1.0})
                    .admitted);
  EXPECT_TRUE(h.service->brownout());
  EXPECT_EQ(h.service->stats().brownout_enters, 1u);

  // In brownout the floor gates admission by priority, not by tenant.
  const SubmitResult shed =
      h.service->submit(lo_id, {"shed", graph_of(kQuick), -1.0});
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, Reject::kBrownout);
  EXPECT_TRUE(
      h.service->submit(hi_id, {"vip", graph_of(kQuick), -1.0}).admitted);

  h.service->drain();
  EXPECT_FALSE(h.service->brownout());
  EXPECT_EQ(h.service->stats().brownout_exits, 1u);
  EXPECT_EQ(h.service->stats().rejected_brownout, 1u);
  // Everything admitted still completed (shed load is the only casualty).
  EXPECT_EQ(h.service->stats().completed, h.service->stats().admitted);
}

// --- graceful degradation ------------------------------------------------

TEST(Degradation, DeviceFailureWithAllTenantsResidentStillDrains) {
  fault::FaultPlan plan;
  fault::FaultEvent kill;
  kill.kind = fault::FaultKind::kDeviceFail;
  kill.t = 1e-3;  // after launches spread across devices, before they end
  kill.a = 1;
  plan.events.push_back(kill);

  ServiceOptions opt;
  opt.max_running = 6;
  Harness h(opt, plan);
  const char* mix = "stencil_1d:width=4,depth=3,flops=1e9,bytes=1048576";
  std::vector<int> tenants;
  for (int t = 0; t < 3; ++t) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(t);
    tenants.push_back(h.service->add_tenant(spec));
  }
  for (int round = 0; round < 4; ++round)
    for (int t : tenants)
      ASSERT_TRUE(h.service
                      ->submit(t, {"j" + std::to_string(round),
                                   graph_of(mix), -1.0})
                      .admitted);

  h.service->drain();

  // The service survived: every admitted job reached a terminal state.
  EXPECT_EQ(h.service->in_system(), 0u);
  EXPECT_EQ(h.service->queued(), 0u);
  EXPECT_EQ(h.service->running(), 0u);
  const ServiceStats& s = h.service->stats();
  EXPECT_GT(s.completed, 0u);
  EXPECT_EQ(s.completed + s.dead_letters, h.service->records().size());
  for (const JobRecord& r : h.service->records())
    EXPECT_TRUE(r.state == JobState::kCompleted ||
                r.state == JobState::kDeadLetter);
  // The concurrency budget shrank with the blacklisted device: 6 * 7/8.
  EXPECT_EQ(h.service->effective_max_running(), 5);
  EXPECT_EQ(h.inj->counters().device_fails, 1u);
}

// --- .svt traces ---------------------------------------------------------

TEST(Trace, CanonicalTextIsAFixedPoint) {
  ArrivalTrace tr;
  tr.name = "unit";
  tr.seed = 7;
  TenantSpec t;
  t.name = "a";
  t.priority = 1;
  t.deadline = 0.25;
  tr.tenants.push_back(t);
  Arrival a;
  a.t = 0.5;
  a.tenant = 0;
  a.job = "a-j1";
  a.spec = "trivial:width=1,depth=1";
  tr.arrivals.push_back(a);
  const std::string once = tr.to_text();
  EXPECT_EQ(ArrivalTrace::parse(once).to_text(), once);
}

TEST(Trace, ErrorsNameTheLine) {
  const char* base =
      "service-trace t\n"
      "tenant a 0 1 8 16 0\n";
  EXPECT_THROW(ArrivalTrace::parse(std::string(base) + "frob 1 2\n"),
               std::invalid_argument);
  try {
    ArrivalTrace::parse(std::string(base) +
                        "arrive 1.0 0 j trivial:width=1,depth=1\n"
                        "arrive 0.5 0 k trivial:width=1,depth=1\n");
    FAIL() << "went back in time";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
  // Tenant rows are a header: they cannot appear mid-stream.
  EXPECT_THROW(ArrivalTrace::parse(std::string(base) +
                                   "arrive 1 0 j trivial:width=1,depth=1\n"
                                   "tenant b 0 1 8 16 0\n"),
               std::invalid_argument);
  // Workload specs are vetted at parse time, not at replay time.
  EXPECT_THROW(ArrivalTrace::parse(std::string(base) + "arrive 1 0 j frob\n"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalTrace::parse(std::string(base) +
                                   "arrive 1 0 j trivial:width=1 0.1 junk\n"),
               std::invalid_argument);
  EXPECT_THROW(ArrivalTrace::parse("seed 3\n"), std::invalid_argument);
}

TEST(Trace, PoissonStreamsAreIndependentOfTenantCount) {
  std::vector<TenantSpec> two(2), three(3);
  const ArrivalTrace a = poisson_trace(11, two, 1000.0, 80);
  const ArrivalTrace b = poisson_trace(11, three, 1000.0, 80);
  std::vector<double> ta, tb;
  for (const Arrival& x : a.arrivals)
    if (x.tenant == 0) ta.push_back(x.t);
  for (const Arrival& x : b.arrivals)
    if (x.tenant == 0) tb.push_back(x.t);
  const std::size_t n = std::min(ta.size(), tb.size());
  ASSERT_GT(n, 0u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ta[i], tb[i]);
}

// --- determinism ---------------------------------------------------------

std::string soak_digest(const ArrivalTrace& trace, Arbitration policy) {
  ServiceOptions opt;
  opt.arbitration = policy;
  Harness h(opt, {}, /*check=*/true);
  for (const TenantSpec& t : trace.tenants) h.service->add_tenant(t);
  std::map<std::string, std::shared_ptr<const wl::WorkloadGraph>> graphs;
  sim::Engine& eng = h.plat.engine();
  for (const Arrival& a : trace.arrivals) {
    auto& g = graphs[a.spec];
    if (!g) g = graph_of(a.spec);
    JobSpec js{a.job, g, a.deadline};
    eng.schedule_at(a.t, [svc = h.service.get(), t = a.tenant,
                          js = std::move(js)] { svc->submit(t, js); });
  }
  const double span = h.service->drain();
  std::ostringstream os;
  os.precision(17);
  os << span << "/" << h.runtime->checker()->event_hash();
  for (const JobRecord& r : h.service->records())
    os << "|" << r.id << "," << r.name << "," << to_string(r.state) << ","
       << r.arrival << "," << r.started << "," << r.finished << ","
       << r.attempts;
  const ServiceStats& s = h.service->stats();
  os << "|" << s.submitted << "," << s.admitted << "," << s.completed << ","
     << s.rejected_queue_full << "," << s.rejected_brownout << ","
     << s.retries << "," << s.dead_letters;
  EXPECT_TRUE(h.runtime->checker()->ok()) << h.runtime->checker()->report();
  return os.str();
}

TEST(Determinism, SeededSoakIsBitIdenticalPerPolicy) {
  std::vector<TenantSpec> tenants(3);
  for (int i = 0; i < 3; ++i) {
    tenants[i].name = "t" + std::to_string(i);
    tenants[i].priority = i;
    tenants[i].share = 1.0 + i;
    tenants[i].deadline = i == 2 ? 20e-3 : 0.0;
  }
  const ArrivalTrace trace = poisson_trace(42, tenants, 3000.0, 120);
  EXPECT_EQ(soak_digest(trace, Arbitration::kFairShare),
            soak_digest(trace, Arbitration::kFairShare));
  EXPECT_EQ(soak_digest(trace, Arbitration::kStrictPriority),
            soak_digest(trace, Arbitration::kStrictPriority));
}

}  // namespace
}  // namespace xkb::svc
