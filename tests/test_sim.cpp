// Tests of the discrete-event engine and FIFO resources.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/small_fn.hpp"

namespace xkb::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, SameTimeFifoBySequence) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, CallbacksCanScheduleMore) {
  Engine e;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 10) e.schedule_after(1.0, recur);
  };
  e.schedule_at(0.0, recur);
  e.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  e.schedule_at(5.0, [&] { ++fired; });
  e.run_until(2.0);
  EXPECT_EQ(fired, 1);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ResetClearsState) {
  Engine e;
  e.schedule_at(1.0, [] {});
  e.reset();
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Resource, SerializesSubmissions) {
  Engine e;
  FifoResource r(e, "s");
  auto a = r.submit(2.0, {});
  auto b = r.submit(3.0, {});
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 2.0);
  EXPECT_DOUBLE_EQ(b.start, 2.0);  // FIFO after the first
  EXPECT_DOUBLE_EQ(b.end, 5.0);
  EXPECT_DOUBLE_EQ(r.busy_time(), 5.0);
  EXPECT_EQ(r.ops(), 2u);
}

TEST(Resource, CompletionCallbackAtEnd) {
  Engine e;
  FifoResource r(e, "s");
  double done_at = -1.0;
  r.submit(4.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 4.0);
}

TEST(Resource, IdleGapThenSubmit) {
  Engine e;
  FifoResource r(e, "s");
  r.submit(1.0, [] {});  // completion event advances the clock to 1.0
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  e.schedule_after(5.0, [&] {
    auto iv = r.submit(1.0, {});
    EXPECT_DOUBLE_EQ(iv.start, 6.0);  // starts immediately, not at 1.0
  });
  e.run();
}

TEST(Channel, BandwidthAndLatency) {
  Engine e;
  Channel c(e, "link", 100.0, 0.5);  // 100 B/s, 0.5 s latency
  auto iv = c.transfer(200, {});
  EXPECT_DOUBLE_EQ(iv.duration(), 0.5 + 2.0);
  EXPECT_EQ(c.bytes_moved(), 200u);
}

TEST(Channel, ContentionDelaysSecondTransfer) {
  Engine e;
  Channel c(e, "link", 1e9, 0.0);  // 1 GB/s
  auto a = c.transfer(1'000'000'000, {});
  auto b = c.transfer(500'000'000, {});
  EXPECT_DOUBLE_EQ(a.end, 1.0);
  EXPECT_DOUBLE_EQ(b.start, 1.0);
  EXPECT_DOUBLE_EQ(b.end, 1.5);
}

TEST(Channel, AvailableAtTracksBacklog) {
  Engine e;
  Channel c(e, "link", 1e6, 0.0);
  EXPECT_DOUBLE_EQ(c.available_at(), 0.0);
  c.transfer(2'000'000, {});
  EXPECT_DOUBLE_EQ(c.available_at(), 2.0);
}

}  // namespace
}  // namespace xkb::sim

// Appended: engine stress and ordering properties.
namespace xkb::sim {
namespace {

TEST(EngineStress, ManyInterleavedEventsKeepOrder) {
  Engine e;
  std::vector<double> times;
  // Schedule 10k events at pseudo-random times; execution must be sorted.
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double t = static_cast<double>(x % 100000) * 1e-6;
    e.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  e.run();
  ASSERT_EQ(times.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(EngineStress, CascadingEventsFromCallbacks) {
  // Each event schedules two more until a depth limit: a 2^12-event tree.
  Engine e;
  int count = 0;
  std::function<void(int)> spawn = [&](int depth) {
    ++count;
    if (depth == 0) return;
    e.schedule_after(1e-6, [&spawn, depth] { spawn(depth - 1); });
    e.schedule_after(2e-6, [&spawn, depth] { spawn(depth - 1); });
  };
  e.schedule_at(0.0, [&spawn] { spawn(11); });
  e.run();
  EXPECT_EQ(count, (1 << 12) - 1);
}

TEST(EngineEdge, EventExactlyAtDeadlineRuns) {
  // run_until is inclusive: an event at t == deadline fires, and the clock
  // lands exactly on the deadline with nothing left behind.
  Engine e;
  int fired = 0;
  e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });  // same-time sibling also fires
  e.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_TRUE(e.empty());
}

TEST(EngineEdge, RunUntilAdvancesClockToDeadlineWhenQueueBusy) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run_until(3.0);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);  // time passed even though nothing ran
  EXPECT_FALSE(e.empty());
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

#ifdef NDEBUG
TEST(EngineEdge, SchedulePastClampsToNowInRelease) {
  // The documented contract: t < now() asserts in debug builds; release
  // builds clamp to now(), running the event after already-queued
  // same-time events.  (The debug half is compiled out with the assert.)
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    e.schedule_at(1.0, [&] { order.push_back(2); });  // same time: queued
    e.schedule_at(0.5, [&] { order.push_back(3); });  // past: clamps to 1.0
    order.push_back(1);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 1.0);  // the clock never went backwards
}
#endif

TEST(EngineEdge, ResetDestroysPendingCallbackCaptures) {
  // Pending callbacks own their captures; reset must release them (no
  // leak, no deferred execution).
  Engine e;
  auto token = std::make_shared<int>(42);
  bool ran = false;
  e.schedule_at(1.0, [token, &ran] { ran = true; });
  EXPECT_EQ(token.use_count(), 2);
  e.reset();
  EXPECT_EQ(token.use_count(), 1);  // capture destroyed with the event
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.events_processed(), 0u);
  // The engine is fully reusable afterwards, starting from t = 0.
  e.schedule_at(0.25, [&ran] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(e.now(), 0.25);
}

TEST(EngineEdge, ObserverSeesEveryEventInOrder) {
  Engine e;
  std::vector<std::uint64_t> seqs;
  e.set_observer([&](Time, std::uint64_t seq) { seqs.push_back(seq); });
  e.schedule_at(2.0, [] {});
  e.schedule_at(1.0, [] {});
  e.run();
  // The observer receives *observable ordinals* -- the position in the
  // dispatched observable stream, not the insertion sequence -- so it can
  // never see a gap even when silent events interleave.
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
  e.set_observer({});  // detaching must be safe
  e.schedule_at(3.0, [] {});
  e.run();
  EXPECT_EQ(seqs.size(), 2u);
}

TEST(EngineEdge, SilentEventsInvisibleToObserverAndMakespan) {
  Engine e;
  std::vector<std::uint64_t> seqs;
  std::vector<Time> times;
  e.set_observer([&](Time t, std::uint64_t seq) {
    times.push_back(t);
    seqs.push_back(seq);
  });
  int silent_ran = 0;
  e.schedule_silent_at(0.5, [&] { silent_ran++; });
  e.schedule_at(1.0, [] {});
  e.schedule_silent_at(1.5, [&] { silent_ran++; });
  e.schedule_at(2.0, [] {});
  e.schedule_silent_at(9.0, [&] { silent_ran++; });  // beyond the last
  e.run();
  // Silent events executed...
  EXPECT_EQ(silent_ran, 3);
  EXPECT_EQ(e.events_processed(), 5u);
  // ...but the observable stream has no gaps and no silent entries,
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(times, (std::vector<Time>{1.0, 2.0}));
  EXPECT_EQ(e.observable_processed(), 2u);
  // ...and the trailing silent tick does not stretch the makespan: once
  // the queue drains, the clock rewinds to the observable frontier so a
  // next phase starts exactly where the workload observably ended.
  EXPECT_DOUBLE_EQ(e.last_observable_time(), 2.0);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(EngineEdge, SilentAndObservableShareTheTieBreakSequence) {
  // A silent event scheduled before an observable one at the same instant
  // runs first (global insertion order), but the observable ordinal stream
  // is still dense.
  Engine e;
  std::vector<int> order;
  std::vector<std::uint64_t> seqs;
  e.set_observer([&](Time, std::uint64_t seq) { seqs.push_back(seq); });
  e.schedule_silent_at(1.0, [&] { order.push_back(0); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_silent_at(1.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1}));
}

// Regression for the run_until drain bug: run() always rewound the clock to
// the observable frontier when the queue drained on a trailing silent event,
// but run_until left now() at the silent tail (or the deadline), so a
// watchdog tick past the last completion leaked into the start time of work
// submitted for a later phase.  Both paths now share the drain contract.
TEST(EngineEdge, RunUntilRewindsPastTrailingSilentEvents) {
  Engine e;
  int ticks = 0;
  e.schedule_at(1.0, [] {});
  // A watchdog-style silent tick well past the last completion.
  e.schedule_silent_at(5.0, [&] { ++ticks; });
  const Time t = e.run_until(10.0);
  EXPECT_EQ(ticks, 1);  // the silent event itself still executed
  // Drained: the clock rests at the observable frontier, not at the silent
  // tail (5.0) and not at the deadline (10.0).
  EXPECT_DOUBLE_EQ(t, 1.0);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
  // A second phase resumes from the instant the first observably ended.
  e.schedule_after(1.0, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(EngineEdge, RunUntilSilentDrainMatchesSilentFreeRun) {
  // Makespan and observable event stream of a two-phase run_until-driven
  // run must be identical with and without trailing silent machinery.
  auto drive = [](bool with_silent) {
    Engine e;
    std::vector<std::pair<Time, std::uint64_t>> stream;
    e.set_observer([&](Time t, std::uint64_t seq) { stream.emplace_back(t, seq); });
    e.schedule_at(1.0, [] {});
    if (with_silent) e.schedule_silent_at(2.5, [] {});
    e.run_until(3.0);
    e.schedule_after(0.5, [] {});  // phase 2
    e.run_until(10.0);
    return std::tuple(e.now(), e.observable_processed(), stream);
  };
  EXPECT_EQ(drive(true), drive(false));
}

// ---- Calendar-queue-specific ordering properties ---------------------
// The engine's EventQueue hashes near-future events into time buckets; the
// tests below force the structurally interesting cases: exact bucket
// boundaries, events far beyond the window (overflow + rebuild), pushes
// into the already-adopted cursor bucket, and everything at one instant.

TEST(EngineQueue, BucketBoundaryTimesDispatchInTotalOrder) {
  // 10k events whose times sit exactly on multiples of a fixed step: every
  // candidate bucket boundary is hit, many times, in shuffled order.
  Engine e;
  std::vector<double> times;
  std::uint64_t x = 99;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double t = static_cast<double>(x % 512) * 0.125;  // exact in fp
    e.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  e.run();
  ASSERT_EQ(times.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(EngineQueue, AllEventsAtOneInstantKeepInsertionOrder) {
  // Degenerate calendar span (width would be 0): everything must still run,
  // FIFO by insertion sequence.
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i)
    e.schedule_at(7.25, [&order, i] { order.push_back(i); });
  e.run();
  ASSERT_EQ(order.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(EngineQueue, FarFutureOverflowAndRebuilds) {
  // Times spanning 12 orders of magnitude force repeated window rebuilds
  // from the overflow tier; order must survive every respan.
  Engine e;
  std::vector<double> times;
  std::uint64_t x = 7;
  for (int i = 0; i < 4000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const int mag = static_cast<int>(x % 12);
    const double t = static_cast<double>(1 + x % 997) * std::pow(10.0, mag - 6);
    e.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  e.run();
  ASSERT_EQ(times.size(), 4000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(EngineQueue, CallbacksPushIntoCurrentAndPastBuckets) {
  // Dispatch-time pushes land at now (the adopted cursor bucket) and just
  // after: the sorted-run catch-all must keep them ordered with events
  // already adopted.
  Engine e;
  std::vector<double> times;
  for (int i = 0; i < 200; ++i) {
    const double t = 1.0 + i * 0.01;
    e.schedule_at(t, [&e, &times, t] {
      times.push_back(t);
      if (times.size() % 3 == 0) {
        e.schedule_after(0.0, [&times, t] { times.push_back(t); });
        e.schedule_after(0.0051, [&times, t] { times.push_back(t + 0.0051); });
      }
    });
  }
  e.run();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

// Differential: the calendar queue and the reference binary heap must
// dispatch a randomized churn program in the identical total order.
TEST(EngineQueue, CalendarMatchesHeapOnRandomChurn) {
  auto drive = [](Engine::QueueImpl impl, std::uint64_t seed) {
    Engine e(impl);
    std::vector<std::pair<Time, int>> order;
    std::uint64_t x = seed;
    auto rnd = [&x] {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      return x >> 33;
    };
    int label = 0;
    // Self-sustaining churn: each event re-schedules 0-2 more with mixed
    // near/far horizons, some silent, until a budget runs out.
    int budget = 20000;
    std::function<void()> step = [&] {
      if (--budget <= 0) return;
      const int tag = label++;
      order.emplace_back(e.now(), tag);
      const int fan = static_cast<int>(rnd() % 3);
      for (int i = 0; i < fan; ++i) {
        const double dt = (rnd() % 5 == 0)
                              ? static_cast<double>(1 + rnd() % 1000) * 1e-1
                              : static_cast<double>(rnd() % 1000) * 1e-6;
        if (rnd() % 7 == 0)
          e.schedule_silent_after(dt, step);
        else
          e.schedule_after(dt, step);
      }
    };
    for (int i = 0; i < 64; ++i)
      e.schedule_at(static_cast<double>(rnd() % 100) * 1e-5, step);
    e.run();
    return std::tuple(order, e.events_processed(), e.observable_processed(),
                      e.now());
  };
  for (std::uint64_t seed : {1ull, 42ull, 1234ull}) {
    EXPECT_EQ(drive(Engine::QueueImpl::kCalendar, seed),
              drive(Engine::QueueImpl::kHeap, seed))
        << "seed " << seed;
  }
}

TEST(EngineQueue, ResetIsReusableAcrossImpls) {
  for (auto impl : {Engine::QueueImpl::kCalendar, Engine::QueueImpl::kHeap}) {
    Engine e(impl);
    for (int i = 0; i < 100; ++i)
      e.schedule_at(static_cast<double>(i) * 1e3, [] {});  // deep overflow
    e.reset();
    EXPECT_TRUE(e.empty());
    int ran = 0;
    e.schedule_at(1.0, [&] { ++ran; });
    e.run();
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(e.now(), 1.0);
  }
}

// ---- SmallFn (the engine's callback type) ----------------------------

TEST(SmallFnTest, InlineCaptureDoesNotAllocateAndRuns) {
  struct Big {
    double a[10];
  };
  static_assert(SmallFn::fits_inline<Big>());
  Big big{};
  big.a[9] = 4.5;
  double got = 0.0;
  SmallFn f([big, &got] { got = big.a[9]; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_DOUBLE_EQ(got, 4.5);
}

TEST(SmallFnTest, HeapFallbackForOversizedCaptures) {
  struct Huge {
    double a[32];
  };
  static_assert(!SmallFn::fits_inline<Huge>());
  Huge h{};
  h.a[31] = 7.0;
  double got = 0.0;
  SmallFn f([h, &got] { got = h.a[31]; });
  SmallFn g(std::move(f));  // pointer steal, no deep copy
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT: testing moved-from state
  g();
  EXPECT_DOUBLE_EQ(got, 7.0);
}

TEST(SmallFnTest, MoveTransfersOwnershipOfCaptures) {
  auto token = std::make_shared<int>(1);
  SmallFn a([token] {});
  EXPECT_EQ(token.use_count(), 2);
  SmallFn b(std::move(a));
  EXPECT_EQ(token.use_count(), 2);  // moved, not copied
  b.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFnTest, MoveOnlyCapturesAreSupported) {
  // The whole point of move-only callbacks: unique_ptr captures flow
  // through scheduling without shared_ptr workarounds.
  auto p = std::make_unique<int>(5);
  int got = 0;
  Engine e;
  e.schedule_at(1.0, [p = std::move(p), &got] { got = *p; });
  e.run();
  EXPECT_EQ(got, 5);
}

// ---- Channel bandwidth-reciprocal satellite --------------------------

TEST(Channel, TransferDurationIsExactDivision) {
  // The scheduling path must charge exactly latency + bytes/bw -- the
  // cached reciprocal (up to 1 ulp off) is for estimates only, because
  // event times feed the bit-sensitive xkb::check stream hash.
  Engine e;
  Channel c(e, "link", 12.3e9, 10e-6);
  const std::size_t bytes = 33554432;
  for (int rep = 0; rep < 3; ++rep) {  // memoized reps stay exact too
    auto iv = c.transfer(bytes, {});
    EXPECT_EQ(iv.duration(), 10e-6 + static_cast<double>(bytes) / 12.3e9);
  }
  // The estimate is division-free and within 1 ulp of the exact charge.
  EXPECT_NEAR(c.estimate(bytes), 10e-6 + static_cast<double>(bytes) / 12.3e9,
              1e-18);
}

TEST(Channel, SetBandwidthInvalidatesMemoAndReciprocal) {
  Engine e;
  Channel c(e, "link", 100.0, 0.0);
  EXPECT_DOUBLE_EQ(c.transfer(200, {}).duration(), 2.0);
  c.set_bandwidth(50.0);  // brownout to half rate
  EXPECT_DOUBLE_EQ(c.inv_bandwidth(), 1.0 / 50.0);
  // Same byte count as the memoized transfer: the memo must not serve the
  // old rate.
  EXPECT_DOUBLE_EQ(c.transfer(200, {}).duration(), 4.0);
  c.set_bandwidth(100.0);  // heal
  EXPECT_DOUBLE_EQ(c.transfer(200, {}).duration(), 2.0);
}

#ifndef NDEBUG
TEST(ChannelDeathTest, NonPositiveBandwidthAsserts) {
  // A malformed fault plan (brownout fraction 0, or a zero-rate route)
  // must trip the assert instead of silently scheduling inf occupancy.
  Engine e;
  EXPECT_DEATH(Channel(e, "bad", 0.0, 0.0), "bandwidth");
  Channel c(e, "link", 100.0, 0.0);
  EXPECT_DEATH(c.set_bandwidth(-1.0), "bandwidth");
}
#endif

TEST(ChannelStress, ThousandsOfTransfersConserveBytes) {
  Engine e;
  Channel c(e, "link", 12.3e9, 10e-6);
  std::size_t delivered = 0;
  const std::size_t each = 1 << 16;
  for (int i = 0; i < 5000; ++i)
    c.transfer(each, [&delivered, each] { delivered += each; });
  e.run();
  EXPECT_EQ(delivered, 5000 * each);
  EXPECT_EQ(c.bytes_moved(), 5000 * each);
  // Busy time equals the sum of per-transfer durations (serial link).
  EXPECT_NEAR(c.busy_time(), 5000 * (10e-6 + each / 12.3e9), 1e-6);
}

}  // namespace
}  // namespace xkb::sim
